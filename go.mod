module flbooster

go 1.22
