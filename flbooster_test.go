package flbooster

import (
	"testing"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// TestFacadeSecureAggregation drives the README quickstart path through the
// public facade only.
func TestFacadeSecureAggregation(t *testing.T) {
	p := NewProfile(SystemFLBooster, 128, 4)
	p.RBits = 14
	p.Device = gpu.SmallTestDevice()
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()

	grads := [][]float64{
		{0.12, -0.34}, {0.21, 0.43}, {-0.11, 0.22}, {0.05, -0.10},
	}
	sum, err := fed.SecureAggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.27, 0.21}
	bound := 4 * ctx.Quant.MaxError()
	for i := range want {
		if d := sum[i] - want[i]; d > bound || d < -bound {
			t.Fatalf("sum[%d] = %v, want %v", i, sum[i], want[i])
		}
	}
}

// TestFacadeSystems pins the exported system identifiers to the paper's
// names.
func TestFacadeSystems(t *testing.T) {
	if SystemFATE != "FATE" || SystemHAFLO != "HAFLO" || SystemFLBooster != "FLBooster" {
		t.Fatal("system names drifted from the paper")
	}
	if SystemNoGHE != "FLBooster w/o GHE" || SystemNoBC != "FLBooster w/o BC" {
		t.Fatal("ablation names drifted from the paper")
	}
}

// TestFacadePlatform exercises the Table-I surface through the facade.
func TestFacadePlatform(t *testing.T) {
	plat, err := NewPlatformOn(gpu.SmallTestDevice(), 7)
	if err != nil {
		t.Fatal(err)
	}
	a := []mpint.Nat{mpint.FromUint64(40)}
	b := []mpint.Nat{mpint.FromUint64(2)}
	sum, err := plat.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := sum[0].Uint64(); v != 42 {
		t.Fatalf("facade Add = %d", v)
	}
	if _, err := NewPlatformOn(gpu.Config{}, 1); err == nil {
		t.Fatal("invalid device config should fail")
	}
	if NewPlatform(1) == nil {
		t.Fatal("default platform should construct")
	}
	if RTX3090().SMs != 82 {
		t.Fatal("RTX 3090 model drifted")
	}
}
