// Package core is FLBooster's platform layer: it assembles the GPU-HE
// engine, encoding-quantization, batch compression, and the cryptosystems
// into the user-facing API surface of Table I — vectorized multi-precision
// arithmetic (add/sub/mul/div/mod), modular operations (mod_inv, mod_mul,
// mod_pow), and the Paillier/RSA operation families — plus the acceleration
// profiles the experiments compare.
package core

import (
	"fmt"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
	"flbooster/internal/rsa"
)

// Platform is one FLBooster instance bound to a (simulated) GPU.
type Platform struct {
	dev *gpu.Device
	eng *ghe.Engine
	pb  *paillier.GPUBackend
	rng *mpint.RNG
}

// New creates a platform over the given device configuration with the
// fine-grained resource manager. seed drives key generation and nonces;
// use a crypto-quality seed in production.
func New(cfg gpu.Config, seed uint64) (*Platform, error) {
	dev, err := gpu.New(cfg, true)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	eng, err := ghe.NewEngine(dev)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	pb, err := paillier.NewGPUBackend(eng)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Platform{dev: dev, eng: eng, pb: pb, rng: mpint.NewRNG(seed)}, nil
}

// Default creates a platform modelling the paper's RTX 3090 testbed.
func Default(seed uint64) *Platform {
	p, err := New(gpu.RTX3090(), seed)
	if err != nil {
		panic(err) // RTX3090 config is statically valid
	}
	return p
}

// Device exposes the underlying device for stats and utilization readings.
func (p *Platform) Device() *gpu.Device { return p.dev }

// Engine exposes the GPU-HE engine.
func (p *Platform) Engine() *ghe.Engine { return p.eng }

// --- Table I: fundamental vector arithmetic --------------------------------

// Add computes values1[i] + values2[i] on the device.
func (p *Platform) Add(values1, values2 []mpint.Nat) ([]mpint.Nat, error) {
	return p.eng.AddVec(values1, values2)
}

// Sub computes values1[i] − values2[i] on the device.
func (p *Platform) Sub(values1, values2 []mpint.Nat) ([]mpint.Nat, error) {
	return p.eng.SubVec(values1, values2)
}

// Mul computes values1[i] · values2[i] on the device.
func (p *Platform) Mul(values1, values2 []mpint.Nat) ([]mpint.Nat, error) {
	return p.eng.MulVec(values1, values2)
}

// Div computes values1[i] / values2[i] on the device.
func (p *Platform) Div(values1, values2 []mpint.Nat) ([]mpint.Nat, error) {
	return p.eng.DivVec(values1, values2)
}

// Mod computes x[i] mod n on the device.
func (p *Platform) Mod(x []mpint.Nat, n mpint.Nat) ([]mpint.Nat, error) {
	return p.eng.ModVec(x, n)
}

// --- Table I: modular operations --------------------------------------------

// ModInv computes x[i]⁻¹ mod n; every element must be invertible.
func (p *Platform) ModInv(x []mpint.Nat, n mpint.Nat) ([]mpint.Nat, error) {
	out := make([]mpint.Nat, len(x))
	for i, v := range x {
		inv, ok := mpint.ModInverse(v, n)
		if !ok {
			return nil, fmt.Errorf("core: element %d has no inverse mod n", i)
		}
		out[i] = inv
	}
	return out, nil
}

// ModMul computes values1[i] · values2[i] mod n via the device's Montgomery
// kernel; n must be odd.
func (p *Platform) ModMul(values1, values2 []mpint.Nat, n mpint.Nat) ([]mpint.Nat, error) {
	if n.IsZero() || n.IsEven() {
		return nil, fmt.Errorf("core: ModMul needs an odd modulus")
	}
	return p.eng.ModMulVec(values1, values2, mpint.NewMont(n))
}

// ModPow computes x[i]^e mod n via the device's sliding-window kernel;
// n must be odd.
func (p *Platform) ModPow(x []mpint.Nat, e, n mpint.Nat) ([]mpint.Nat, error) {
	if n.IsZero() || n.IsEven() {
		return nil, fmt.Errorf("core: ModPow needs an odd modulus")
	}
	return p.eng.ModExpVec(x, e, mpint.NewMont(n))
}

// --- Table I: Paillier family ------------------------------------------------

// PaillierKeyGen generates a Paillier key pair of the given size, with the
// primes searched on the device.
func (p *Platform) PaillierKeyGen(bits int) (*paillier.PrivateKey, error) {
	pr, q, err := p.eng.GeneratePrimePair(bits/2, p.rng.Uint64())
	if err != nil {
		return nil, fmt.Errorf("core: PaillierKeyGen: %w", err)
	}
	return paillier.NewKeyFromPrimes(pr, q)
}

// PaillierEncrypt encrypts a batch of plaintexts on the device.
func (p *Platform) PaillierEncrypt(pub *paillier.PublicKey, plaintexts []mpint.Nat) ([]paillier.Ciphertext, error) {
	return p.pb.EncryptVec(pub, plaintexts, p.rng.Uint64())
}

// PaillierDecrypt decrypts a batch of ciphertexts on the device.
func (p *Platform) PaillierDecrypt(priv *paillier.PrivateKey, cts []paillier.Ciphertext) ([]mpint.Nat, error) {
	return p.pb.DecryptVec(priv, cts)
}

// PaillierAdd computes the homomorphic addition of two ciphertext batches.
func (p *Platform) PaillierAdd(pub *paillier.PublicKey, a, b []paillier.Ciphertext) ([]paillier.Ciphertext, error) {
	return p.pb.AddVec(pub, a, b)
}

// --- Table I: RSA family ------------------------------------------------------

// RSAKeyGen generates an RSA key pair of the given size with device-searched
// primes.
func (p *Platform) RSAKeyGen(bits int) (*rsa.PrivateKey, error) {
	pr, q, err := p.eng.GeneratePrimePair(bits/2, p.rng.Uint64())
	if err != nil {
		return nil, fmt.Errorf("core: RSAKeyGen: %w", err)
	}
	return rsa.NewKeyFromPrimes(pr, q)
}

// RSAEncrypt encrypts a plaintext batch (one modexp kernel).
func (p *Platform) RSAEncrypt(pub *rsa.PublicKey, plaintexts []mpint.Nat) ([]rsa.Ciphertext, error) {
	for i, m := range plaintexts {
		if mpint.Cmp(m, pub.N) >= 0 {
			return nil, fmt.Errorf("core: RSAEncrypt element %d exceeds modulus", i)
		}
	}
	pows, err := p.eng.ModExpVec(plaintexts, pub.E, pub.Mont())
	if err != nil {
		return nil, err
	}
	out := make([]rsa.Ciphertext, len(pows))
	for i, c := range pows {
		out[i] = rsa.Ciphertext{C: c}
	}
	return out, nil
}

// RSADecrypt decrypts a ciphertext batch (one modexp kernel with the private
// exponent; per-element CRT is the serial path in internal/rsa).
func (p *Platform) RSADecrypt(priv *rsa.PrivateKey, cts []rsa.Ciphertext) ([]mpint.Nat, error) {
	bases := make([]mpint.Nat, len(cts))
	for i, c := range cts {
		if mpint.Cmp(c.C, priv.N) >= 0 {
			return nil, fmt.Errorf("core: RSADecrypt element %d out of range", i)
		}
		bases[i] = c.C
	}
	return p.eng.ModExpVec(bases, priv.D, priv.Mont())
}

// RSAMul computes the multiplicative homomorphism over two batches.
func (p *Platform) RSAMul(pub *rsa.PublicKey, a, b []rsa.Ciphertext) ([]rsa.Ciphertext, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("core: RSAMul length mismatch %d vs %d", len(a), len(b))
	}
	av := make([]mpint.Nat, len(a))
	bv := make([]mpint.Nat, len(b))
	for i := range a {
		av[i], bv[i] = a[i].C, b[i].C
	}
	prods, err := p.eng.ModMulVec(av, bv, pub.Mont())
	if err != nil {
		return nil, err
	}
	out := make([]rsa.Ciphertext, len(prods))
	for i, c := range prods {
		out[i] = rsa.Ciphertext{C: c}
	}
	return out, nil
}
