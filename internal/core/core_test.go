package core

import (
	"testing"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/rsa"
)

func testPlatform(t testing.TB) *Platform {
	t.Helper()
	p, err := New(gpu.SmallTestDevice(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func natVec(vals ...uint64) []mpint.Nat {
	out := make([]mpint.Nat, len(vals))
	for i, v := range vals {
		out[i] = mpint.FromUint64(v)
	}
	return out
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(gpu.Config{}, 1); err == nil {
		t.Fatal("zero config should fail")
	}
	if Default(1) == nil {
		t.Fatal("Default should construct")
	}
}

func TestVectorArithmetic(t *testing.T) {
	p := testPlatform(t)
	a := natVec(10, 20, 300)
	b := natVec(3, 5, 7)

	sum, err := p.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := []uint64{13, 25, 307}
	for i := range wantSum {
		if v, _ := sum[i].Uint64(); v != wantSum[i] {
			t.Fatalf("Add[%d] = %d", i, v)
		}
	}
	diff, err := p.Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := diff[2].Uint64(); v != 293 {
		t.Fatalf("Sub[2] = %d", v)
	}
	prod, err := p.Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := prod[1].Uint64(); v != 100 {
		t.Fatalf("Mul[1] = %d", v)
	}
	quot, err := p.Div(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := quot[2].Uint64(); v != 42 {
		t.Fatalf("Div[2] = %d", v)
	}
	rem, err := p.Mod(a, mpint.FromUint64(7))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rem[0].Uint64(); v != 3 {
		t.Fatalf("Mod[0] = %d", v)
	}
}

func TestModularOps(t *testing.T) {
	p := testPlatform(t)
	n := mpint.FromUint64(1000003) // prime, odd

	inv, err := p.ModInv(natVec(2, 3, 999), n)
	if err != nil {
		t.Fatal(err)
	}
	for i, base := range []uint64{2, 3, 999} {
		prod := mpint.ModMul(mpint.FromUint64(base), inv[i], n)
		if !prod.IsOne() {
			t.Fatalf("ModInv[%d] wrong", i)
		}
	}
	if _, err := p.ModInv(natVec(0), n); err == nil {
		t.Fatal("inverse of 0 should fail")
	}

	mm, err := p.ModMul(natVec(123456, 999999), natVec(654321, 999999), n)
	if err != nil {
		t.Fatal(err)
	}
	want := mpint.ModMul(mpint.FromUint64(123456), mpint.FromUint64(654321), n)
	if mpint.Cmp(mm[0], want) != 0 {
		t.Fatal("ModMul[0] wrong")
	}
	if _, err := p.ModMul(natVec(1), natVec(1), mpint.FromUint64(8)); err == nil {
		t.Fatal("even modulus should fail")
	}

	mp, err := p.ModPow(natVec(5, 7), mpint.FromUint64(1000002), n)
	if err != nil {
		t.Fatal(err)
	}
	// Fermat: a^(p-1) ≡ 1 mod p.
	if !mp[0].IsOne() || !mp[1].IsOne() {
		t.Fatal("ModPow violates Fermat")
	}
	if _, err := p.ModPow(natVec(1), mpint.One(), mpint.FromUint64(4)); err == nil {
		t.Fatal("even modulus should fail")
	}
}

func TestPaillierFamily(t *testing.T) {
	p := testPlatform(t)
	sk, err := p.PaillierKeyGen(128)
	if err != nil {
		t.Fatal(err)
	}
	ms := natVec(0, 1, 42, 123456789)
	cts, err := p.PaillierEncrypt(&sk.PublicKey, ms)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := p.PaillierDecrypt(sk, cts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if mpint.Cmp(dec[i], ms[i]) != 0 {
			t.Fatalf("Paillier round trip failed at %d", i)
		}
	}
	sums, err := p.PaillierAdd(&sk.PublicKey, cts, cts)
	if err != nil {
		t.Fatal(err)
	}
	dsum, err := p.PaillierDecrypt(sk, sums)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		want := mpint.ModAdd(ms[i], ms[i], sk.N)
		if mpint.Cmp(dsum[i], want) != 0 {
			t.Fatalf("PaillierAdd failed at %d", i)
		}
	}
}

func TestRSAFamily(t *testing.T) {
	p := testPlatform(t)
	sk, err := p.RSAKeyGen(128)
	if err != nil {
		t.Fatal(err)
	}
	ms := natVec(2, 42, 99999)
	cts, err := p.RSAEncrypt(&sk.PublicKey, ms)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := p.RSADecrypt(sk, cts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if mpint.Cmp(dec[i], ms[i]) != 0 {
			t.Fatalf("RSA round trip failed at %d", i)
		}
	}
	prods, err := p.RSAMul(&sk.PublicKey, cts, cts)
	if err != nil {
		t.Fatal(err)
	}
	dprod, err := p.RSADecrypt(sk, prods)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		want := mpint.ModMul(ms[i], ms[i], sk.N)
		if mpint.Cmp(dprod[i], want) != 0 {
			t.Fatalf("RSAMul failed at %d", i)
		}
	}
	if _, err := p.RSAEncrypt(&sk.PublicKey, []mpint.Nat{sk.N}); err == nil {
		t.Fatal("oversized plaintext should fail")
	}
	if _, err := p.RSADecrypt(sk, []rsa.Ciphertext{{C: sk.N}}); err == nil {
		t.Fatal("oversized ciphertext should fail")
	}
	if _, err := p.RSAMul(&sk.PublicKey, cts, cts[:1]); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestDeviceAccounting(t *testing.T) {
	p := testPlatform(t)
	if _, err := p.Add(natVec(1, 2), natVec(3, 4)); err != nil {
		t.Fatal(err)
	}
	if p.Device().Stats().KernelLaunches == 0 {
		t.Fatal("platform calls should launch kernels")
	}
	if p.Engine() == nil {
		t.Fatal("engine accessor broken")
	}
}
