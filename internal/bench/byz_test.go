package bench

import (
	"testing"

	"flbooster/internal/fl"
)

// TestByzCellsDeterministic: identical seeds must reproduce every cell of
// the sweep bit-for-bit — the committed BENCH_byz.json is a pure function
// of -seed.
func TestByzCellsDeterministic(t *testing.T) {
	grads := byzHonestGrads(7)
	byz := fl.AdversaryConfig{Seed: 7 ^ 0x1b2c, Kind: fl.AttackCollude, Fraction: 0.2, Drift: 2}
	defense := fl.DefensePolicy{Groups: byzGroups, Combiner: fl.CombineTrimmedMean, Trim: byzTrim}
	a, _, err := byzRound(7, 128, byz, defense, grads)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := byzRound(7, 128, byz, defense, grads)
	if err != nil {
		t.Fatal(err)
	}
	if l2dev(a, b) != 0 {
		t.Fatal("identical byz cells diverged")
	}
}

// TestByzHeadlineRatio is the acceptance criterion at test scale: with 20%
// scaling adversaries the undefended aggregate must land ≥10× further from
// the honest oracle than the trimmed-mean defense.
func TestByzHeadlineRatio(t *testing.T) {
	const seed, keyBits = 1, 128
	grads := byzHonestGrads(seed)
	honest, _, err := byzRound(seed, keyBits, fl.AdversaryConfig{}, fl.DefensePolicy{}, grads)
	if err != nil {
		t.Fatal(err)
	}
	byz := fl.AdversaryConfig{Seed: seed ^ 0x1b2c, Kind: fl.AttackScale, Fraction: 0.2, Factor: byzFactor}
	off, _, err := byzRound(seed, keyBits, byz, fl.DefensePolicy{}, grads)
	if err != nil {
		t.Fatal(err)
	}
	defense := fl.DefensePolicy{Groups: byzGroups, Combiner: fl.CombineTrimmedMean, Trim: byzTrim}
	defended, rep, err := byzRound(seed, keyBits, byz, defense, grads)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Defense == nil {
		t.Fatal("defended cell lost its defense report")
	}
	dOff, dDef := l2dev(off, honest), l2dev(defended, honest)
	if dDef <= 0 {
		t.Fatalf("defended deviation %v not positive", dDef)
	}
	if ratio := dOff / dDef; ratio < 10 {
		t.Fatalf("headline ratio %.2f below 10x (off %v, defended %v)", ratio, dOff, dDef)
	}
}
