// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation (Fig. 1, Tables III–VII, Figs. 6–8) it generates
// the workload, runs the competing systems through identical code paths,
// and prints rows in the paper's layout. See DESIGN.md §3 for the
// experiment index and EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
//
// Scale: paper cells are hours of a 4-server GPU cluster. The harness runs
// every experiment at a configurable dataset scale and key size, reporting
// the *modelled* end-to-end time (device cost model + Gigabit link model +
// measured model-compute) whose ratios are the reproduction target.
package bench

import (
	"fmt"
	"io"
	"time"

	"flbooster/internal/datasets"
	"flbooster/internal/fl"
	"flbooster/internal/gpu"
	"flbooster/internal/models"
	"flbooster/internal/obs"
)

// Config controls experiment scale.
type Config struct {
	// Scale shrinks every dataset (instances and features) by this factor.
	Scale float64
	// KeyBits lists the key sizes to sweep (the paper uses 1024/2048/4096).
	KeyBits []int
	// Parties is the participant count (the paper's cluster has 4 servers).
	Parties int
	// Epochs bounds convergence experiments.
	Epochs int
	// BatchSize for SGD models.
	BatchSize int
	// Seed drives all randomness.
	Seed uint64
	// Device is the modelled GPU.
	Device gpu.Config
	// NNHidden is the Hetero NN interactive-layer width.
	NNHidden int
	// Chunk is the streamed-pipeline chunk size in plaintexts per upload
	// chunk for every HE context (0 keeps the whole-batch sequential path).
	Chunk int
	// Devices is the simulated device count per GPU context: values of 1 or
	// more shard every vector HE op across a gpu.DeviceSet of that many
	// devices; 0 keeps the classic single-device engine.
	Devices int
	// Observe attaches one observability bundle (sim-time span recorder +
	// metrics registry, seeded from Seed) to every context the runner builds,
	// so experiments emit traces and metrics reconcilable against their
	// CostSnapshots.
	Observe bool
}

// Quick returns a configuration sized for laptop runs: heavily scaled
// datasets and reduced key sizes with the paper's 1:2:4 progression.
func Quick() Config {
	return Config{
		Scale:     0.0004,
		KeyBits:   []int{256, 512},
		Parties:   4,
		Epochs:    3,
		BatchSize: 64,
		Seed:      1,
		Device:    gpu.RTX3090(),
		NNHidden:  4,
	}
}

// Paper returns the paper's parameters (hours of compute at full scale —
// use only on a large machine with patience).
func Paper() Config {
	c := Quick()
	c.Scale = 1
	c.KeyBits = []int{1024, 2048, 4096}
	c.BatchSize = 1024
	c.Epochs = 10
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Scale <= 0 || c.Scale > 1:
		return fmt.Errorf("bench: scale must be in (0, 1], got %v", c.Scale)
	case len(c.KeyBits) == 0:
		return fmt.Errorf("bench: need at least one key size")
	case c.Parties < 2:
		return fmt.Errorf("bench: need at least two parties")
	case c.Epochs < 1:
		return fmt.Errorf("bench: need at least one epoch")
	case c.BatchSize < 1:
		return fmt.Errorf("bench: batch size must be positive")
	case c.NNHidden < 1:
		return fmt.Errorf("bench: NN hidden width must be positive")
	case c.Chunk < 0:
		return fmt.Errorf("bench: pipeline chunk size must be non-negative, got %d", c.Chunk)
	case c.Devices < 0:
		return &ConfigError{Field: "devices", Reason: fmt.Sprintf("device count must be non-negative, got %d", c.Devices)}
	case c.Devices > gpu.MaxDevices:
		return &ConfigError{Field: "devices", Reason: fmt.Sprintf("device count %d exceeds %d", c.Devices, gpu.MaxDevices)}
	}
	return nil
}

// ConfigError reports a benchmark configuration a run rejects up front,
// naming the offending field so CLI frontends can map it back to a flag.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string { return fmt.Sprintf("bench: invalid %s: %s", e.Field, e.Reason) }

// ModelNames lists the benchmark models in the paper's order.
func ModelNames() []string {
	return []string{"Homo LR", "Hetero LR", "Hetero SBT", "Hetero NN"}
}

// Runner caches datasets and HE contexts across experiments (key generation
// dominates setup cost) and exposes one method per table/figure.
type Runner struct {
	cfg  Config
	data map[string]*datasets.Dataset
	ctxs map[ctxKey]*fl.Context

	obs     *obs.Obs      // shared observability bundle (nil unless cfg.Observe)
	obsCtxs []*fl.Context // every context attached to obs, for reconciliation
}

type ctxKey struct {
	sys  fl.System
	bits int
}

// NewRunner validates the config and prepares caches.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{
		cfg:  cfg,
		data: make(map[string]*datasets.Dataset),
		ctxs: make(map[ctxKey]*fl.Context),
	}
	if cfg.Observe {
		r.obs = obs.New(cfg.Seed)
	}
	return r, nil
}

// Obs returns the runner's shared observability bundle (nil unless the
// config enabled Observe).
func (r *Runner) Obs() *obs.Obs { return r.obs }

// attachObs wires a context into the shared bundle under a unique label and
// registers it for reconciliation. No-op when observation is off.
func (r *Runner) attachObs(ctx *fl.Context, label string) {
	if r.obs == nil {
		return
	}
	ctx.AttachObs(r.obs, label)
	r.obsCtxs = append(r.obsCtxs, ctx)
}

// ReconcileObs publishes every attached context's layer metrics and asserts
// the mirrored cost counters equal each context's CostSnapshot — the
// invariant checked after every experiment. Nil when observation is off.
func (r *Runner) ReconcileObs() error {
	for _, ctx := range r.obsCtxs {
		ctx.PublishMetrics()
		if err := ctx.ReconcileObs(); err != nil {
			return err
		}
	}
	return nil
}

// dataset returns the (cached) scaled dataset by spec name.
func (r *Runner) dataset(spec datasets.Spec) (*datasets.Dataset, error) {
	if ds, ok := r.data[spec.Name]; ok {
		return ds, nil
	}
	ds, err := datasets.Generate(spec.Scaled(r.cfg.Scale), r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	r.data[spec.Name] = ds
	return ds, nil
}

// context returns a (cached) HE context for a system at a key size, with
// costs reset for the caller's experiment.
func (r *Runner) context(sys fl.System, keyBits int) (*fl.Context, error) {
	k := ctxKey{sys, keyBits}
	if ctx, ok := r.ctxs[k]; ok {
		ctx.Costs.Reset()
		if ctx.Device != nil {
			ctx.Device.ResetStats()
		}
		if ctx.DevSet != nil {
			ctx.DevSet.ResetStats()
		}
		return ctx, nil
	}
	p := fl.NewProfile(sys, keyBits, r.cfg.Parties)
	p.Device = r.cfg.Device
	p.Seed = r.cfg.Seed
	p.Chunk = r.cfg.Chunk
	p.Devices = r.cfg.Devices
	ctx, err := fl.NewContext(p)
	if err != nil {
		return nil, fmt.Errorf("bench: context %s/%d: %w", sys, keyBits, err)
	}
	r.attachObs(ctx, fmt.Sprintf("%s-%d", sys, keyBits))
	r.ctxs[k] = ctx
	return ctx, nil
}

// trainable is the per-model handle the harness drives.
type trainable interface {
	TrainEpoch() (float64, error)
	Loss() float64
	Close() error
}

// buildModel constructs a benchmark model by its paper name. ctx may be nil
// for the plaintext oracle.
func (r *Runner) buildModel(name string, ctx *fl.Context, ds *datasets.Dataset) (trainable, error) {
	opts := models.DefaultOptions()
	opts.BatchSize = r.cfg.BatchSize
	opts.Seed = r.cfg.Seed
	opts.Parties = r.cfg.Parties // plaintext oracles mirror the topology
	switch name {
	case "Homo LR":
		return models.NewHomoLR(ctx, ds, opts)
	case "Hetero LR":
		return models.NewHeteroLR(ctx, ds, opts)
	case "Hetero SBT":
		return models.NewHeteroSBT(ctx, ds, opts)
	case "Hetero NN":
		return models.NewHeteroNN(ctx, ds, r.cfg.NNHidden, opts)
	default:
		return nil, fmt.Errorf("bench: unknown model %q", name)
	}
}

// EpochResult is one measured cell.
type EpochResult struct {
	Dataset     string
	Model       string
	System      fl.System
	KeyBits     int
	Costs       fl.CostSnapshot
	Utilization float64
	Loss        float64
	WallTotal   time.Duration
}

// runEpochs trains `epochs` epochs of one model/system/dataset cell and
// returns the aggregate costs (averaged per epoch by the caller if needed).
func (r *Runner) runEpochs(modelName string, sys fl.System, keyBits int, spec datasets.Spec, epochs int) (EpochResult, error) {
	ds, err := r.dataset(spec)
	if err != nil {
		return EpochResult{}, err
	}
	ctx, err := r.context(sys, keyBits)
	if err != nil {
		return EpochResult{}, err
	}
	m, err := r.buildModel(modelName, ctx, ds)
	if err != nil {
		return EpochResult{}, err
	}
	defer m.Close()
	start := time.Now()
	var loss float64
	for e := 0; e < epochs; e++ {
		if loss, err = m.TrainEpoch(); err != nil {
			return EpochResult{}, fmt.Errorf("bench: %s/%s/%s k=%d: %w", modelName, sys, spec.Name, keyBits, err)
		}
	}
	return EpochResult{
		Dataset:     spec.Name,
		Model:       modelName,
		System:      sys,
		KeyBits:     keyBits,
		Costs:       ctx.Costs.Snapshot(),
		Utilization: ctx.Utilization(),
		Loss:        loss,
		WallTotal:   time.Since(start),
	}, nil
}

// fmtDur prints a duration in seconds with adaptive precision, matching the
// paper's "seconds" columns.
func fmtDur(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s >= 100:
		return fmt.Sprintf("%.1f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4f", s)
	}
}

// header prints an underlined experiment title.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
}
