package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"flbooster/internal/fl"
	"flbooster/internal/flnet"
	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/quant"
)

// The multi-fault chaos soak: a long run of secure-aggregation rounds under
// every fault class the platform claims to survive at once — seeded network
// chaos (drop/duplicate/reorder), injected device faults behind the checked
// engine, coordinator kill-and-recover at journal boundaries, and client
// drop/rejoin churn. Every completed round's result is checked bit-for-bit
// against a plain-arithmetic oracle (silent corruption is the one
// unforgivable outcome), and every failed round must surface a typed
// *fl.RoundError.

// SoakConfig parameterizes one soak run. All randomness derives from Seed:
// the same config replays the same fault schedule exactly.
type SoakConfig struct {
	Seed    uint64 `json:"seed"`
	Rounds  int    `json:"rounds"`
	Parties int    `json:"parties"`
	KeyBits int    `json:"key_bits"`
	// Dim is the gradient dimension per client.
	Dim int `json:"dim"`
	// Chunk > 0 uploads through the streamed chunked pipeline (exercising
	// reassembly dedup under duplication).
	Chunk int `json:"chunk"`
	// Quorum and PhaseTimeout shape the round policy (quorum < parties is
	// what lets chaos drop traffic without failing every round).
	Quorum       int           `json:"quorum"`
	PhaseTimeout time.Duration `json:"phase_timeout_ns"`
	// Network chaos probabilities, applied per message send.
	DropProb    float64 `json:"drop_prob"`
	DupProb     float64 `json:"dup_prob"`
	ReorderProb float64 `json:"reorder_prob"`
	// DeviceFaults arms the GPU fault injector (aborts, silent corruption,
	// OOMs) behind the checked engine.
	DeviceFaults bool `json:"device_faults"`
	// CrashProb is the per-round probability the coordinator is killed at a
	// journal boundary (round-start or aggregated, chosen by the schedule)
	// and recovered from the journal.
	CrashProb float64 `json:"crash_prob"`
	// ChurnProb is the per-round probability a client departs; it rejoins
	// RejoinAfter round boundaries later.
	ChurnProb   float64 `json:"churn_prob"`
	RejoinAfter int     `json:"rejoin_after"`
	// Adversaries arms the Byzantine injector with this many compromised
	// clients; the attack model rotates per round through the pre-drawn
	// schedule, composing with every other fault class.
	Adversaries int `json:"adversaries"`
	// DefenseGroups > 1 arms group-wise robust aggregation (trimmed-mean,
	// DefenseTrim groups per side) for every round of the soak.
	DefenseGroups int `json:"defense_groups"`
	DefenseTrim   int `json:"defense_trim"`
}

// DefaultSoakConfig returns the standard chaos mix at a given scale.
func DefaultSoakConfig(seed uint64, rounds, parties, keyBits int) SoakConfig {
	return SoakConfig{
		Seed:          seed,
		Rounds:        rounds,
		Parties:       parties,
		KeyBits:       keyBits,
		Dim:           8,
		Chunk:         2,
		Quorum:        parties - 1,
		PhaseTimeout:  200 * time.Millisecond,
		DropProb:      0.06,
		DupProb:       0.12,
		ReorderProb:   0.12,
		DeviceFaults:  true,
		CrashProb:     0.12,
		ChurnProb:     0.15,
		RejoinAfter:   2,
		Adversaries:   1,
		DefenseGroups: 3,
		DefenseTrim:   1,
	}
}

// SoakSummary is the committed record of a soak run. It carries only
// deterministic fields (counts, not wall-clock), so the same seed commits
// the same summary byte-for-byte.
type SoakSummary struct {
	Config SoakConfig `json:"config"`
	// Completed + Failed == Config.Rounds; every round resolves one way.
	Completed int `json:"completed_rounds"`
	Failed    int `json:"failed_rounds"`
	// Crashes counts coordinator kills, Recoveries journal recoveries
	// (always equal when the run finishes), ResumedRounds the rounds that
	// replayed a journaled aggregate instead of re-gathering.
	Crashes       int `json:"coordinator_crashes"`
	Recoveries    int `json:"recoveries"`
	ResumedRounds int `json:"resumed_rounds"`
	// Churn counters.
	Departures int `json:"client_departures"`
	Rejoins    int `json:"client_rejoins"`
	// Degraded counts completed rounds that dropped at least one client;
	// Duplicates and Retries total the per-round report counters.
	Degraded   int   `json:"degraded_rounds"`
	Duplicates int   `json:"duplicate_messages"`
	Retries    int64 `json:"send_retries"`
	// FailuresByPhase types every failed round by the phase its RoundError
	// names — the proof that no failure was untyped.
	FailuresByPhase map[string]int `json:"failures_by_phase"`
	// Byzantine counters: completed rounds whose included set held at least
	// one compromised client, completed rounds that ran the group defense,
	// and — zero tolerance — defended rounds whose aggregate escaped the
	// trimmed-mean bound (outside the honest groups' coordinate range while
	// the poisoned-group count was within the trim budget).
	AttackedRounds  int `json:"attacked_rounds"`
	DefendedRounds  int `json:"defended_rounds"`
	BoundViolations int `json:"bound_violations"`
	// JournalRecords is the final length of the epoch journal.
	JournalRecords int `json:"journal_records"`
	// The two zero-tolerance counters: completed rounds whose result
	// diverged from the arithmetic oracle, and failures that were not typed
	// *fl.RoundError values.
	Mismatches    int `json:"silent_corruption_mismatches"`
	UntypedErrors int `json:"untyped_errors"`
}

// soakSchedule is the pre-drawn fate of every round. Drawing everything up
// front from one RNG keeps the schedule identical no matter how many
// coordinator restarts happen mid-run.
type soakSchedule struct {
	grads       [][][]float64 // [round][party][dim]
	crash       []fl.EventKind
	churnDraw   []bool
	churnTarget []int
	attack      []fl.AttackKind // per-round attack model rotation
}

func drawSoakSchedule(cfg SoakConfig) soakSchedule {
	rng := mpint.NewRNG(cfg.Seed ^ 0x50a4) // salt the schedule stream off the key-gen seed
	sched := soakSchedule{
		grads:       make([][][]float64, cfg.Rounds),
		crash:       make([]fl.EventKind, cfg.Rounds),
		churnDraw:   make([]bool, cfg.Rounds),
		churnTarget: make([]int, cfg.Rounds),
		attack:      make([]fl.AttackKind, cfg.Rounds),
	}
	attacks := fl.KnownAttacks()
	for r := 0; r < cfg.Rounds; r++ {
		sched.grads[r] = make([][]float64, cfg.Parties)
		for c := 0; c < cfg.Parties; c++ {
			g := make([]float64, cfg.Dim)
			for i := range g {
				g[i] = rng.Float64()*0.5 - 0.25
			}
			sched.grads[r][c] = g
		}
		if rng.Float64() < cfg.CrashProb {
			sched.crash[r] = fl.EventRoundStart
			if rng.Float64() < 0.5 {
				sched.crash[r] = fl.EventAggregated
			}
		}
		sched.churnDraw[r] = rng.Float64() < cfg.ChurnProb
		sched.churnTarget[r] = rng.Intn(cfg.Parties)
		// Pre-drawn like everything else, so crashed re-runs of a round
		// replay the identical attack.
		sched.attack[r] = attacks[rng.Intn(len(attacks))]
	}
	return sched
}

// RunSoak executes the chaos soak and returns its summary. The run itself
// never fails on protocol faults — those are the point — only on harness
// errors (bad config, broken context construction).
func (cfg SoakConfig) validate() error {
	switch {
	case cfg.Rounds < 1:
		return fmt.Errorf("bench: soak needs at least one round")
	case cfg.Parties < 2:
		return fmt.Errorf("bench: soak needs at least two parties")
	case cfg.Dim < 1:
		return fmt.Errorf("bench: soak needs a positive gradient dimension")
	case cfg.RejoinAfter < 1:
		return fmt.Errorf("bench: soak rejoin delay must be positive")
	}
	return nil
}

func RunSoak(cfg SoakConfig) (SoakSummary, error) {
	if err := cfg.validate(); err != nil {
		return SoakSummary{}, err
	}
	sched := drawSoakSchedule(cfg)
	sum := SoakSummary{Config: cfg, FailuresByPhase: make(map[string]int)}

	profile := fl.NewProfile(fl.SystemFLBooster, cfg.KeyBits, cfg.Parties)
	profile.Seed = cfg.Seed
	profile.Device = gpu.SmallTestDevice()
	profile.RBits = 14
	profile.Chunk = cfg.Chunk
	profile.Round = fl.RoundPolicy{
		Quorum:       cfg.Quorum,
		PhaseTimeout: cfg.PhaseTimeout,
		MaxRetries:   2,
		Backoff:      time.Millisecond,
	}
	if cfg.Adversaries > 0 {
		// Factor 3 keeps boosted uploads inside the quantizer's ±1 bound
		// (gradients are drawn in [-0.25, 0.25)) so the attack is never
		// masked by clamping.
		profile.Byz = fl.AdversaryConfig{
			Seed: cfg.Seed ^ 0xb42, Kind: fl.AttackSignFlip, Count: cfg.Adversaries,
			Factor: 3, NoiseStd: 0.5, Drift: 0.5,
		}
	}
	if cfg.DefenseGroups > 1 {
		profile.Defense = fl.DefensePolicy{
			Groups: cfg.DefenseGroups, Combiner: fl.CombineTrimmedMean, Trim: cfg.DefenseTrim,
		}
	}
	if cfg.DeviceFaults {
		profile.Faults.Inject = gpu.FaultConfig{
			Seed:        cfg.Seed ^ 0xdead,
			AbortProb:   0.05,
			CorruptProb: 0.05,
			OOMProb:     0.05,
		}
		// Full result verification: with silent kernel corruption in the
		// fault mix, anything less would let corrupt ciphertexts through —
		// the soak's zero-mismatch bar is only honest if the checked layer
		// is actually armed to catch what the injector throws.
		profile.Faults.Check = ghe.CheckedConfig{VerifyFraction: 1, VerifySeed: cfg.Seed}
	}

	store := fl.NewMemStore()
	instance := 0 // coordinator incarnation, salts each chaos stream
	var crashArm fl.EventKind
	crashArmed := false

	boot := func() (*fl.Federation, error) {
		ctx, err := fl.NewContext(profile)
		if err != nil {
			return nil, err
		}
		fed, _, err := fl.Recover(ctx, store)
		if err != nil {
			return nil, err
		}
		fed.Transport = flnet.NewChaosTransport(fed.Transport, flnet.ChaosConfig{
			Seed:        cfg.Seed ^ uint64(instance)*0x9E3779B97F4A7C15,
			DropProb:    cfg.DropProb,
			DupProb:     cfg.DupProb,
			ReorderProb: cfg.ReorderProb,
		})
		instance++
		fed.Journal().Fail = func(rec fl.JournalRecord) error {
			if crashArmed && rec.Kind == crashArm {
				crashArmed = false
				return fl.ErrCoordinatorCrash
			}
			return nil
		}
		return fed, nil
	}

	fed, err := boot()
	if err != nil {
		return sum, err
	}
	defer func() { fed.Close() }()

	quant := fed.Ctx.Quant
	churnApplied := make([]bool, cfg.Rounds)
	rejoinAt := make(map[string]int)
	departed := ""

	for r := 0; r < cfg.Rounds; r++ {
		// Round-boundary churn, applied exactly once per round so a crashed
		// attempt replays against the same roster.
		if !churnApplied[r] {
			churnApplied[r] = true
			for name, due := range rejoinAt {
				if due <= r {
					if err := fed.Rejoin(name); err != nil {
						return sum, fmt.Errorf("bench: soak rejoin %s: %w", name, err)
					}
					delete(rejoinAt, name)
					departed = ""
					sum.Rejoins++
				}
			}
			if sched.churnDraw[r] && departed == "" {
				name := fl.ClientName(sched.churnTarget[r])
				if err := fed.Leave(name); err != nil {
					return sum, fmt.Errorf("bench: soak departure %s: %w", name, err)
				}
				departed = name
				rejoinAt[name] = r + cfg.RejoinAfter
				sum.Departures++
			}
		}
		if sched.crash[r] != "" && !crashArmed && sum.Crashes == sum.Recoveries {
			// Arm at most one kill per scheduled round; a recovered re-run of
			// the same round proceeds unarmed.
			crashArm = sched.crash[r]
			crashArmed = true
			sched.crash[r] = ""
		}
		if adv := fed.Adversary(); adv != nil {
			// Rotate the attack model per the pre-drawn schedule. Re-set on
			// every iteration (not just fresh rounds) so a recovered
			// coordinator's fresh injector replays the same attack.
			if err := adv.SetKind(sched.attack[r]); err != nil {
				return sum, fmt.Errorf("bench: soak attack rotation: %w", err)
			}
		}

		result, rep, err := fed.SecureAggregateReport(sched.grads[r])
		if err != nil {
			if errors.Is(err, fl.ErrCoordinatorCrash) {
				// The coordinator "process" died at a durable boundary: tear
				// it down and recover a fresh one from the journal, then
				// re-run the same round.
				sum.Crashes++
				crashArmed = false
				fed.Close()
				if fed, err = boot(); err != nil {
					return sum, fmt.Errorf("bench: soak recovery: %w", err)
				}
				sum.Recoveries++
				r--
				continue
			}
			sum.Failed++
			var rerr *fl.RoundError
			if errors.As(err, &rerr) {
				sum.FailuresByPhase[string(rerr.Phase)]++
			} else {
				sum.UntypedErrors++
			}
			continue
		}

		sum.Completed++
		if rep.Resumed {
			sum.ResumedRounds++
		}
		if rep.Degraded() {
			sum.Degraded++
		}
		sum.Duplicates += rep.Duplicates
		sum.Retries += rep.Retries

		// The arithmetic oracle: quantize the included clients' uploads (as
		// attacked — the adversary's rewrites are deterministic and keyed on
		// the replayed round ID), sum in plain integers per group, dequantize,
		// and combine exactly the way the protocol does. HE is exact on
		// quantized values, so a completed round that is not bit-identical to
		// this is silent corruption — whatever chaos, faults, crashes, churn,
		// or attacks the round survived.
		adv := fed.Adversary()
		uploads := make([][]float64, cfg.Parties)
		for i := range uploads {
			uploads[i] = adv.Apply(rep.Round, i, sched.grads[r][i])
		}
		attacked := false
		for _, name := range rep.Included {
			if i, ierr := fl.ClientIndex(name); ierr == nil && adv.IsMalicious(i) {
				attacked = true
			}
		}
		if attacked {
			sum.AttackedRounds++
		}
		if rep.Defense != nil {
			sum.DefendedRounds++
			want, groups, oerr := soakDefendedOracle(quant, uploads, rep, profile.Defense, cfg.Parties)
			if oerr != nil {
				return sum, fmt.Errorf("bench: soak defended oracle round %d: %w", r+1, oerr)
			}
			if !bitsEqual(result, want) {
				sum.Mismatches++
			}
			if soakBoundViolated(result, groups, rep, profile.Defense, adv, cfg.Parties) {
				sum.BoundViolations++
			}
		} else {
			want, oerr := soakOracle(quant, uploads, rep, cfg.Parties)
			if oerr != nil {
				return sum, fmt.Errorf("bench: soak oracle round %d: %w", r+1, oerr)
			}
			if !bitsEqual(result, want) {
				sum.Mismatches++
			}
		}
	}

	recs, err := fed.Journal().Records()
	if err != nil {
		return sum, err
	}
	sum.JournalRecords = len(recs)
	return sum, nil
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// soakOracle recomputes a completed round's expected result without HE:
// quantized integer sums over the included clients, dequantized for k
// contributors, scaled by parties/k exactly as the decrypt phase does.
func soakOracle(q *quant.Quantizer, grads [][]float64, rep fl.RoundReport, parties int) ([]float64, error) {
	if len(rep.Included) == 0 {
		return nil, fmt.Errorf("completed round included nobody")
	}
	var sums []uint64
	for _, name := range rep.Included {
		i, err := fl.ClientIndex(name)
		if err != nil {
			return nil, err
		}
		vals := q.QuantizeVec(grads[i])
		if sums == nil {
			sums = make([]uint64, len(vals))
		}
		for j, v := range vals {
			sums[j] += v
		}
	}
	k := len(rep.Included)
	want, err := q.DequantizeSumVec(sums, k)
	if err != nil {
		return nil, err
	}
	if k < parties {
		scale := float64(parties) / float64(k)
		for j := range want {
			want[j] *= scale
		}
	}
	return want, nil
}

// soakDefendedOracle recomputes a defended round's expected result in
// plaintext: per reported group, quantized integer sums over the group's
// (possibly attacked) uploads, dequantized at group size, reduced to the
// group mean, combined by the same pure combiner the clients ran, and scaled
// by the party count. It also returns the plaintext group updates for the
// trimming-bound check.
func soakDefendedOracle(q *quant.Quantizer, uploads [][]float64, rep fl.RoundReport, policy fl.DefensePolicy, parties int) ([]float64, []fl.GroupUpdate, error) {
	d := rep.Defense
	if len(d.GroupMembers) == 0 {
		return nil, nil, fmt.Errorf("defended round reported no group members")
	}
	groups := make([]fl.GroupUpdate, len(d.GroupMembers))
	for g, members := range d.GroupMembers {
		var sums []uint64
		for _, name := range members {
			i, err := fl.ClientIndex(name)
			if err != nil {
				return nil, nil, err
			}
			vals := q.QuantizeVec(uploads[i])
			if sums == nil {
				sums = make([]uint64, len(vals))
			}
			for j, v := range vals {
				sums[j] += v
			}
		}
		mean, err := q.DequantizeSumVec(sums, len(members))
		if err != nil {
			return nil, nil, err
		}
		for j := range mean {
			mean[j] /= float64(len(members))
		}
		groups[g] = fl.GroupUpdate{Mean: mean, Size: len(members)}
	}
	agg, err := policy.NewAggregator()
	if err != nil {
		return nil, nil, err
	}
	combined, _, err := agg.Combine(groups)
	if err != nil {
		return nil, nil, err
	}
	for j := range combined {
		combined[j] *= float64(parties)
	}
	return combined, groups, nil
}

// soakBoundViolated checks the trimmed-mean guarantee on a defended round:
// when the number of groups containing a compromised client is within the
// trim budget, every coordinate of the defended aggregate (at mean scale)
// must lie within the honest groups' coordinate range, modulo float
// rounding. Outside those preconditions the theorem makes no promise and
// the check passes vacuously.
func soakBoundViolated(result []float64, groups []fl.GroupUpdate, rep fl.RoundReport, policy fl.DefensePolicy, adv *fl.Adversary, parties int) bool {
	poisoned := 0
	honest := make([]fl.GroupUpdate, 0, len(groups))
	for g, members := range rep.Defense.GroupMembers {
		mal := false
		for _, name := range members {
			if i, err := fl.ClientIndex(name); err == nil && adv.IsMalicious(i) {
				mal = true
			}
		}
		if mal {
			poisoned++
		} else {
			honest = append(honest, groups[g])
		}
	}
	if poisoned == 0 || poisoned > policy.EffectiveTrim(len(groups)) || len(honest) == 0 {
		return false
	}
	for j := range result {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, gu := range honest {
			lo = math.Min(lo, gu.Mean[j])
			hi = math.Max(hi, gu.Mean[j])
		}
		v := result[j] / float64(parties)
		eps := 1e-9 * (1 + math.Abs(lo) + math.Abs(hi))
		if v < lo-eps || v > hi+eps {
			return true
		}
	}
	return false
}

// soakJSON is the committed soak summary artifact.
const soakJSON = "BENCH_soak.json"

// Soak runs the chaos soak at the runner's scale and writes both the human
// table and the BENCH_soak.json summary.
func (r *Runner) Soak(w io.Writer) error {
	keyBits := r.cfg.KeyBits[0]
	rounds := 60
	cfg := DefaultSoakConfig(r.cfg.Seed, rounds, r.cfg.Parties, keyBits)
	header(w, fmt.Sprintf("Chaos soak — %d multi-fault rounds (%d parties, %d-bit keys)",
		cfg.Rounds, cfg.Parties, cfg.KeyBits))
	fmt.Fprintf(w, "faults: drop %.0f%%, dup %.0f%%, reorder %.0f%%, device faults %v, crash %.0f%%/round, churn %.0f%%/round (rejoin after %d)\n",
		cfg.DropProb*100, cfg.DupProb*100, cfg.ReorderProb*100, cfg.DeviceFaults,
		cfg.CrashProb*100, cfg.ChurnProb*100, cfg.RejoinAfter)
	fmt.Fprintf(w, "adversary: %d compromised client(s), rotating attack per round; defense: trimmed-mean over %d groups (trim %d)\n\n",
		cfg.Adversaries, cfg.DefenseGroups, cfg.DefenseTrim)

	start := time.Now()
	sum, err := RunSoak(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	row := func(name string, v interface{}) { fmt.Fprintf(w, "%-28s %v\n", name, v) }
	row("rounds completed", fmt.Sprintf("%d/%d", sum.Completed, cfg.Rounds))
	row("rounds failed (typed)", sum.Failed)
	for phase, n := range sum.FailuresByPhase {
		row("  failed in "+phase, n)
	}
	row("coordinator crashes", sum.Crashes)
	row("journal recoveries", sum.Recoveries)
	row("rounds resumed at broadcast", sum.ResumedRounds)
	row("client departures", sum.Departures)
	row("client rejoins", sum.Rejoins)
	row("degraded rounds", sum.Degraded)
	row("duplicate messages dropped", sum.Duplicates)
	row("send retries", sum.Retries)
	row("attacked rounds", sum.AttackedRounds)
	row("defended rounds", sum.DefendedRounds)
	row("trimming-bound violations", sum.BoundViolations)
	row("journal records", sum.JournalRecords)
	row("silent corruption", sum.Mismatches)
	row("untyped errors", sum.UntypedErrors)
	fmt.Fprintf(w, "\nwall time %s\n", fmtDur(elapsed))

	if sum.Mismatches > 0 || sum.UntypedErrors > 0 || sum.BoundViolations > 0 {
		return fmt.Errorf("bench: soak detected %d silent corruptions, %d untyped errors, %d bound violations",
			sum.Mismatches, sum.UntypedErrors, sum.BoundViolations)
	}

	blob, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(soakJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "summary written to %s\n", soakJSON)
	return nil
}
