package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"flbooster/internal/fl"
)

// roundJSON is where Round writes its machine-readable report.
const roundJSON = "BENCH_round.json"

// Round-anatomy experiment parameters: an unpacked HAFLO profile so the
// nonce-pool depth (== the gradient dimension) covers every client batch, a
// chunk size that splits a batch into three pipeline chunks, and a modelled
// per-value model-compute cost charged identically to the baseline and the
// optimized variant so the overlap is measured against priced work, not
// free work.
const (
	roundGradDim     = 48
	roundRounds      = 3
	roundChunk       = 16
	roundCompPerVal  = 500 * time.Nanosecond
	roundMaxInflight = 4
	roundFanout      = 2
	roundGroups      = 2
)

// roundModes lists the protocol variants the experiment sweeps, in reporting
// order. Every mode runs a seed-baseline profile (no nonce pool, sequential
// waves) against the optimized profile (per-round pool rearm + wave overlap)
// and asserts the aggregates match bit for bit.
var roundModes = []string{"plain", "chunked", "defended", "tree", "classic"}

// roundRow is one protocol mode's baseline-vs-optimized cell.
type roundRow struct {
	Mode string `json:"mode"`
	// BaselineSimNs / OptimizedSimNs are the cumulative end-to-end round
	// costs (TotalSimOverlapped) over the experiment's rounds.
	BaselineSimNs  int64   `json:"baseline_sim_ns"`
	OptimizedSimNs int64   `json:"optimized_sim_ns"`
	Speedup        float64 `json:"speedup"`
	// BitExact reports every optimized round decrypting bit-identically to
	// the same-seed baseline round.
	BitExact bool `json:"bit_exact"`
	// PoolHits/PoolMisses are the optimized run's nonce-pool counters; the
	// rearm contract is hits with zero misses from the first batch on.
	PoolHits   int64 `json:"pool_hits"`
	PoolMisses int64 `json:"pool_misses"`
}

// roundReportFile is the BENCH_round.json schema.
type roundReportFile struct {
	KeyBits         int        `json:"key_bits"`
	Parties         int        `json:"parties"`
	GradDim         int        `json:"grad_dim"`
	Rounds          int        `json:"rounds"`
	Chunk           int        `json:"chunk"`
	CompSimPerValNs int64      `json:"comp_sim_per_value_ns"`
	Rows            []roundRow `json:"rows"`
	// RecoveryBitExact reports the crash-recovered optimized round (journal
	// replay + restored nonce cursor) matching the uninterrupted run.
	RecoveryBitExact bool `json:"recovery_bit_exact"`
	// Anatomy is the final optimized plain round's per-phase cost table;
	// Dominant names its most expensive phase.
	Anatomy  *fl.RoundAnatomy `json:"anatomy"`
	Dominant string           `json:"dominant"`
	// Speedup is the headline: the plain mode's end-to-end round improvement.
	Speedup  float64 `json:"speedup"`
	BitExact bool    `json:"bit_exact"`
}

// roundProfile builds one mode's profile. The optimized variant arms the
// nonce pool at the batch width and turns on compute/upload overlap; both
// variants price the same model compute so the comparison isolates the
// round-path optimizations.
func (r *Runner) roundProfile(keyBits int, mode string, optimized bool) fl.Profile {
	p := fl.NewProfile(fl.SystemHAFLO, keyBits, r.cfg.Parties)
	p.Device = r.cfg.Device
	p.Seed = r.cfg.Seed
	p.Overlap.CompSimPerValue = roundCompPerVal
	switch mode {
	case "chunked":
		p.Chunk = roundChunk
	case "defended":
		p.Defense = fl.DefensePolicy{Groups: roundGroups, Combiner: fl.CombineFedAvg}
	case "tree":
		p.Cohort = fl.CohortPolicy{Fanout: roundFanout, MaxInflight: roundMaxInflight}
	case "classic":
		p.ClassicKey = true
	}
	if optimized {
		p.NoncePool = roundGradDim
		p.Overlap.Enabled = true
	}
	return p
}

// roundGrads builds the round's deterministic per-client gradient vectors.
func roundGrads(round, parties int) [][]float64 {
	grads := make([][]float64, parties)
	for c := range grads {
		g := make([]float64, roundGradDim)
		for i := range g {
			g[i] = 0.3 * math.Sin(float64((round*parties+c)*roundGradDim+i+1))
		}
		grads[c] = g
	}
	return grads
}

// roundRun drives `rounds` secure-aggregation rounds over one context and
// returns the per-round aggregates, the cumulative overlapped sim cost, and
// the last round's report (for its anatomy).
func (r *Runner) roundRun(ctx *fl.Context, rounds int) ([][]float64, time.Duration, *fl.RoundReport, error) {
	fed := fl.NewFederation(ctx)
	defer fed.Close()
	sums := make([][]float64, 0, rounds)
	var last fl.RoundReport
	for rd := 0; rd < rounds; rd++ {
		sum, rep, err := fed.SecureAggregateReport(roundGrads(rd, ctx.Profile.Parties))
		if err != nil {
			return nil, 0, nil, err
		}
		sums = append(sums, sum)
		last = rep
	}
	return sums, ctx.Costs.Snapshot().TotalSimOverlapped(), &last, nil
}

// bitExactRounds compares two per-round aggregate sequences bit for bit.
func bitExactRounds(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for rd := range a {
		if len(a[rd]) != len(b[rd]) {
			return false
		}
		for i := range a[rd] {
			if math.Float64bits(a[rd][i]) != math.Float64bits(b[rd][i]) {
				return false
			}
		}
	}
	return true
}

// roundRecovery runs the optimized plain profile with a journal, stops the
// coordinator after two completed rounds, recovers a fresh one from the
// store, and checks the recovered third round against an uninterrupted run.
func (r *Runner) roundRecovery(keyBits int, want [][]float64) (bool, error) {
	store := fl.NewMemStore()
	p := r.roundProfile(keyBits, "plain", true)

	ctx, err := fl.NewContext(p)
	if err != nil {
		return false, err
	}
	r.attachObs(ctx, "round-recover-pre")
	j, err := fl.NewJournal(store)
	if err != nil {
		return false, err
	}
	fed := fl.NewFederation(ctx)
	fed.AttachJournal(j)
	got := make([][]float64, 0, roundRounds)
	for rd := 0; rd < roundRounds-1; rd++ {
		sum, err := fed.SecureAggregate(roundGrads(rd, p.Parties))
		if err != nil {
			fed.Close()
			return false, err
		}
		got = append(got, sum)
	}
	fed.Close() // the "crash": the coordinator is gone, the journal survives

	ctx2, err := fl.NewContext(p)
	if err != nil {
		return false, err
	}
	r.attachObs(ctx2, "round-recover-post")
	fed2, _, err := fl.Recover(ctx2, store)
	if err != nil {
		return false, err
	}
	defer fed2.Close()
	sum, err := fed2.SecureAggregate(roundGrads(roundRounds-1, p.Parties))
	if err != nil {
		return false, err
	}
	got = append(got, sum)
	return bitExactRounds(got, want), nil
}

// Round measures the end-to-end secure-aggregation round — not an isolated
// HE microbenchmark — across five protocol variants, comparing the seed
// baseline against the optimized round path (per-batch nonce-pool rearm,
// fixed-base g^m on classic keys, compute/upload wave overlap). Every
// optimized round must decrypt bit-identically to its baseline, the
// crash-recovered round must match the uninterrupted run, and the optimized
// path must never be slower; at production keys (≥2048 bits) the plain-round
// speedup must clear 1.15x. The final optimized round's per-phase anatomy is
// printed and recorded. Results go to w and to BENCH_round.json.
func (r *Runner) Round(w io.Writer) error {
	keyBits := 0
	for _, k := range r.cfg.KeyBits {
		if k > keyBits {
			keyBits = k
		}
	}
	header(w, fmt.Sprintf(
		"Round — end-to-end round anatomy: baseline vs optimized path, %d-bit key, %d parties, dim %d, %d rounds",
		keyBits, r.cfg.Parties, roundGradDim, roundRounds))
	fmt.Fprintf(w, "%-9s %14s %14s %9s %7s %7s %8s\n",
		"Mode", "BaselineSim", "OptimizedSim", "Speedup", "Exact", "Hits", "Misses")

	report := roundReportFile{
		KeyBits:         keyBits,
		Parties:         r.cfg.Parties,
		GradDim:         roundGradDim,
		Rounds:          roundRounds,
		Chunk:           roundChunk,
		CompSimPerValNs: int64(roundCompPerVal),
		BitExact:        true,
	}
	var plainOpt [][]float64
	for _, mode := range roundModes {
		base, err := fl.NewContext(r.roundProfile(keyBits, mode, false))
		if err != nil {
			return fmt.Errorf("bench: round %s baseline: %w", mode, err)
		}
		r.attachObs(base, "round-"+mode+"-base")
		baseSums, baseSim, _, err := r.roundRun(base, roundRounds)
		if err != nil {
			return fmt.Errorf("bench: round %s baseline: %w", mode, err)
		}

		opt, err := fl.NewContext(r.roundProfile(keyBits, mode, true))
		if err != nil {
			return fmt.Errorf("bench: round %s optimized: %w", mode, err)
		}
		r.attachObs(opt, "round-"+mode+"-opt")
		optSums, optSim, rep, err := r.roundRun(opt, roundRounds)
		if err != nil {
			return fmt.Errorf("bench: round %s optimized: %w", mode, err)
		}

		row := roundRow{
			Mode:           mode,
			BaselineSimNs:  int64(baseSim),
			OptimizedSimNs: int64(optSim),
			Speedup:        float64(baseSim) / float64(optSim),
			BitExact:       bitExactRounds(baseSums, optSums),
		}
		if opt.Pool != nil {
			st := opt.Pool.Stats()
			row.PoolHits, row.PoolMisses = st.Hits, st.Misses
		}
		if !row.BitExact {
			report.BitExact = false
		}
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(w, "%-9s %14s %14s %8.2fx %7v %7d %8d\n",
			mode, fmtDur(baseSim), fmtDur(optSim), row.Speedup, row.BitExact,
			row.PoolHits, row.PoolMisses)

		if mode == "plain" {
			plainOpt = optSums
			report.Speedup = row.Speedup
			report.Anatomy = rep.Anatomy
			if rep.Anatomy != nil {
				report.Dominant = rep.Anatomy.Dominant()
			}
		}
	}

	ok, err := r.roundRecovery(keyBits, plainOpt)
	if err != nil {
		return fmt.Errorf("bench: round recovery: %w", err)
	}
	report.RecoveryBitExact = ok
	if !ok {
		report.BitExact = false
	}
	fmt.Fprintf(w, "\ncrash-recovered optimized round bit-exact with uninterrupted run: %v\n", ok)
	if report.Anatomy != nil {
		fmt.Fprintf(w, "\n%s", report.Anatomy.Table())
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(roundJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	switch {
	case !report.BitExact:
		return fmt.Errorf("bench: optimized round path diverged from the baseline (see %s)", roundJSON)
	case roundSlowdown(report.Rows):
		return fmt.Errorf("bench: optimized round path slower than the baseline (see %s)", roundJSON)
	case keyBits >= 2048 && report.Speedup < 1.15:
		return fmt.Errorf("bench: plain-round speedup %.3fx below the 1.15x floor at %d-bit keys (see %s)",
			report.Speedup, keyBits, roundJSON)
	}
	fmt.Fprintf(w, "\nplain round %.2fx end-to-end, bit-exact across all modes; wrote %s\n",
		report.Speedup, roundJSON)
	return nil
}

// roundSlowdown reports any mode where the optimized path lost ground.
func roundSlowdown(rows []roundRow) bool {
	for _, row := range rows {
		if row.OptimizedSimNs > row.BaselineSimNs {
			return true
		}
	}
	return false
}
