package bench

import (
	"bytes"
	"io"
	"os"
	"testing"
)

// TestPipelineTraceDeterministicAndReconciled: the pipeline experiment with
// observation on must (a) leave the metrics mirror in exact agreement with
// every context's CostSnapshot and (b) emit a byte-identical trace on a
// same-seed rerun — spans carry only sim-time quantities, so two runs of
// the same workload may not differ.
func TestPipelineTraceDeterministicAndReconciled(t *testing.T) {
	// Pipeline writes BENCH_pipeline.json into the cwd; run in a temp dir.
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}()

	run := func() []byte {
		cfg := microConfig()
		cfg.Observe = true
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Pipeline(io.Discard); err != nil {
			t.Fatal(err)
		}
		if err := r.ReconcileObs(); err != nil {
			t.Fatalf("metrics/cost reconciliation: %v", err)
		}
		if r.Obs().Recorder().Len() == 0 {
			t.Fatal("pipeline experiment recorded no spans")
		}
		var buf bytes.Buffer
		if err := r.Obs().Recorder().WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed reruns produced different traces: %d vs %d bytes", len(a), len(b))
	}
}

// TestRunnerWithoutObserveHasNoBundle: observation stays strictly opt-in.
func TestRunnerWithoutObserveHasNoBundle(t *testing.T) {
	r, err := NewRunner(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Obs() != nil {
		t.Fatal("bundle attached without Observe")
	}
	if err := r.ReconcileObs(); err != nil {
		t.Fatalf("unobserved reconcile: %v", err)
	}
}
