package bench

import (
	"fmt"
	"io"
	"time"

	"flbooster/internal/fl"
	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// DeviceFaults measures resilient GPU-HE execution (DESIGN.md §7). It runs
// the same secure-aggregation workload three ways on the FLBooster profile:
//
//	clean     — healthy device, no injection
//	transient — seeded abort + silent-corruption faults with full residue
//	            verification; every fault is caught and retried (or served
//	            once from the host), so the run must stay bit-exact
//	killed    — the device dies mid-run (KillAtLaunch calibrated to half the
//	            clean run's kernel launches); the checked engine fails over
//	            to the bit-exact host engine and the run must still produce
//	            identical outputs
//
// The experiment *asserts* bit-exactness: any aggregate that differs from
// the clean run is an error, not a table row. Alongside the sim/wall
// timings it prints the fault, retry, verification, and fallback counters
// from the context's FaultReport.
func (r *Runner) DeviceFaults(w io.Writer) error {
	keyBits := r.cfg.KeyBits[0]
	parties := r.cfg.Parties
	rounds := r.cfg.Epochs
	header(w, fmt.Sprintf("Device faults — checked GPU-HE execution (%d parties, %d-bit keys, %d rounds)",
		parties, keyBits, rounds))

	rng := mpint.NewRNG(r.cfg.Seed)
	grads := make([][]float64, parties)
	for c := range grads {
		grads[c] = make([]float64, resilienceDim)
		for i := range grads[c] {
			grads[c][i] = rng.Float64()*0.5 - 0.25
		}
	}

	newCtx := func(pol fl.FaultPolicy) (*fl.Context, error) {
		p := fl.NewProfile(fl.SystemFLBooster, keyBits, parties)
		p.Seed = r.cfg.Seed
		p.Device = r.cfg.Device
		p.Faults = pol
		return fl.NewContext(p)
	}

	epoch := func(ctx *fl.Context) ([]float64, time.Duration, error) {
		fed := fl.NewFederation(ctx)
		defer fed.Close()
		var agg []float64
		start := time.Now()
		for i := 0; i < rounds; i++ {
			var err error
			if agg, _, err = fed.SecureAggregateReport(grads); err != nil {
				return nil, 0, err
			}
		}
		return agg, time.Since(start), nil
	}

	// Pass 1: fault-free run. Its aggregate is the reference every degraded
	// run must reproduce exactly, and its kernel-launch count calibrates the
	// mid-run kill point.
	cleanCtx, err := newCtx(fl.FaultPolicy{})
	if err != nil {
		return err
	}
	cleanAgg, cleanWall, err := epoch(cleanCtx)
	if err != nil {
		return fmt.Errorf("bench: clean device-fault epoch: %w", err)
	}
	cleanLaunches := cleanCtx.Device.Stats().KernelLaunches
	killAt := cleanLaunches / 2
	if killAt < 1 {
		killAt = 1
	}

	// Pass 2: transient faults under full verification.
	transCtx, err := newCtx(fl.FaultPolicy{
		Inject: gpu.FaultConfig{
			Seed:        r.cfg.Seed,
			AbortProb:   0.05,
			CorruptProb: 0.05,
		},
		Check: ghe.CheckedConfig{VerifyFraction: 1, VerifySeed: r.cfg.Seed},
	})
	if err != nil {
		return err
	}
	transAgg, transWall, err := epoch(transCtx)
	if err != nil {
		return fmt.Errorf("bench: transient device-fault epoch: %w", err)
	}

	// Pass 3: the device is killed mid-run and stays dead.
	killCtx, err := newCtx(fl.FaultPolicy{
		Inject: gpu.FaultConfig{Seed: r.cfg.Seed, KillAtLaunch: killAt},
	})
	if err != nil {
		return err
	}
	killAgg, killWall, err := epoch(killCtx)
	if err != nil {
		return fmt.Errorf("bench: killed-device epoch: %w", err)
	}

	if err := sameFloats("transient", cleanAgg, transAgg); err != nil {
		return err
	}
	if err := sameFloats("killed", cleanAgg, killAgg); err != nil {
		return err
	}
	rep := killCtx.FaultReport()
	if !rep.Checked.FellBack || rep.Health != gpu.DeviceFailed {
		return fmt.Errorf("bench: killed-device run did not fail over (health %s, fellBack %v)",
			rep.Health, rep.Checked.FellBack)
	}

	// Post-failover ciphertext check: both contexts have issued the same
	// number of nonce streams, so one more encryption must be bit-exact
	// between the healthy device path and the host fallback.
	cleanCts, err := cleanCtx.EncryptGradients(grads[0])
	if err != nil {
		return err
	}
	killCts, err := killCtx.EncryptGradients(grads[0])
	if err != nil {
		return err
	}
	if len(cleanCts) != len(killCts) {
		return fmt.Errorf("bench: post-kill ciphertext count %d, want %d", len(killCts), len(cleanCts))
	}
	for i := range cleanCts {
		if mpint.Cmp(cleanCts[i].C, killCts[i].C) != 0 {
			return fmt.Errorf("bench: post-kill ciphertext %d differs from the clean device path", i)
		}
	}

	fmt.Fprintf(w, "kill point: launch %d of %d (calibrated from the clean run)\n\n", killAt, cleanLaunches)
	fmt.Fprintf(w, "%-26s %10s %10s %9s %7s %7s %7s %9s %s\n",
		"Run", "Wall", "HE (sim)", "Health", "Inject", "Retry", "VFail", "Fallback", "Output")
	row := func(name string, wall time.Duration, ctx *fl.Context) {
		rep := ctx.FaultReport()
		fmt.Fprintf(w, "%-26s %10s %10s %9s %7d %7d %7d %9d %s\n",
			name, fmtDur(wall), fmtDur(ctx.Costs.Snapshot().HESim), rep.Health,
			rep.Injected.Total(), rep.Checked.Retries, rep.Checked.VerifyFailures,
			rep.Checked.FallbackOps, "bit-exact")
	}
	row("clean", cleanWall, cleanCtx)
	row("transient (verify all)", transWall, transCtx)
	row(fmt.Sprintf("killed (launch %d)", killAt), killWall, killCtx)
	fmt.Fprintf(w, "\nkilled run: %d launch failures, %d watchdog trips, %s simulated fault time, %s host fallback wall, %d/%d post-kill ciphertexts bit-exact\n",
		rep.LaunchFailures, rep.WatchdogTrips, fmtDur(rep.SimFaultTime),
		fmtDur(rep.Checked.FallbackWall), len(killCts), len(cleanCts))
	return nil
}

// sameFloats asserts exact (bit-level) equality of two aggregate vectors.
func sameFloats(name string, want, got []float64) error {
	if len(want) != len(got) {
		return fmt.Errorf("bench: %s run returned %d aggregates, want %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("bench: %s run aggregate %d = %v, want %v (fallback must be bit-exact)",
				name, i, got[i], want[i])
		}
	}
	return nil
}
