package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"flbooster/internal/fl"
)

// scaleJSON is where Scale writes its machine-readable report.
const scaleJSON = "BENCH_scale.json"

// Cross-device sweep parameters: a small gradient so the sweep measures
// coordination — not HE arithmetic — a reduced key that keeps 10⁵ simulated
// clients affordable, and a quantizer narrow enough that the sum of 10⁵
// contributions still fits one plaintext (RBits + log₂ N ≤ 63).
const (
	scaleKeyBits     = 64
	scaleRBits       = 16
	scaleGradDim     = 4
	scaleFanout      = 16
	scaleMaxInflight = 64
)

// scaleRow is one (client count, aggregation mode) cell of the sweep.
type scaleRow struct {
	Clients int    `json:"clients"`
	Mode    string `json:"mode"` // "flat" or "tree"
	// Fanout/Depth/Partials describe the aggregation hierarchy (tree only):
	// Partials counts the level sums forwarded up (the root's hop included).
	Fanout   int   `json:"fanout,omitempty"`
	Depth    int   `json:"tree_depth,omitempty"`
	Partials int64 `json:"tree_partials,omitempty"`
	// PeakLiveCts is the coordinator's high-water simultaneously-live
	// aggregate-path ciphertext count — the memory claim under test — and
	// PeakPerClient its ratio to the cohort size (1.0 for flat, →0 for tree).
	PeakLiveCts   int64   `json:"peak_live_cts"`
	PeakPerClient float64 `json:"peak_live_cts_per_client"`
	// CritPathSimNs is the modelled end-to-end round time at the streamed
	// phases' critical path; CommBytes the round's wire traffic.
	CritPathSimNs int64 `json:"crit_path_sim_ns"`
	CommBytes     int64 `json:"comm_bytes"`
	WallNs        int64 `json:"wall_ns"`
	// MatchesFlat reports the tree round decrypting bit-identically to the
	// same-seed flat round (tree rows only).
	MatchesFlat bool `json:"matches_flat,omitempty"`
}

// scaleReport is the BENCH_scale.json schema.
type scaleReport struct {
	KeyBits     int        `json:"key_bits"`
	RBits       int        `json:"r_bits"`
	GradDim     int        `json:"grad_dim"`
	Fanout      int        `json:"fanout"`
	MaxInflight int        `json:"max_inflight"`
	Rows        []scaleRow `json:"rows"`
	// BitExact is the sweep-wide conjunction of MatchesFlat.
	BitExact bool `json:"bit_exact"`
}

// scaleProfile builds the N-client sweep profile; fanout 0 keeps the flat
// protocol.
func (r *Runner) scaleProfile(clients, fanout int) fl.Profile {
	p := fl.NewProfile(fl.SystemHAFLO, scaleKeyBits, clients)
	p.Device = r.cfg.Device
	p.Seed = r.cfg.Seed
	p.RBits = scaleRBits
	if fanout > 0 {
		p.Cohort = fl.CohortPolicy{Fanout: fanout, MaxInflight: scaleMaxInflight}
	}
	return p
}

// scaleGrads builds N deterministic small gradient vectors.
func scaleGrads(clients int) [][]float64 {
	grads := make([][]float64, clients)
	for c := range grads {
		g := make([]float64, scaleGradDim)
		for i := range g {
			g[i] = 0.25 * math.Sin(float64(c*scaleGradDim+i))
		}
		grads[c] = g
	}
	return grads
}

// scaleRound runs one N-client secure-aggregation round and fills a row.
func (r *Runner) scaleRound(clients, fanout int) ([]float64, scaleRow, error) {
	ctx, err := fl.NewContext(r.scaleProfile(clients, fanout))
	if err != nil {
		return nil, scaleRow{}, err
	}
	mode := "flat"
	if fanout > 0 {
		mode = "tree"
	}
	r.attachObs(ctx, fmt.Sprintf("scale-%s-%d", mode, clients))
	fed := fl.NewFederation(ctx)
	defer fed.Close()
	start := time.Now()
	sum, rep, err := fed.SecureAggregateReport(scaleGrads(clients))
	if err != nil {
		return nil, scaleRow{}, fmt.Errorf("bench: %s round with %d clients: %w", mode, clients, err)
	}
	cs := ctx.Costs.Snapshot()
	row := scaleRow{
		Clients:       clients,
		Mode:          mode,
		PeakLiveCts:   rep.PeakLiveCts,
		PeakPerClient: float64(rep.PeakLiveCts) / float64(clients),
		CritPathSimNs: int64(cs.TotalSimOverlapped()),
		CommBytes:     cs.CommBytes,
		WallNs:        int64(time.Since(start)),
	}
	if ts := rep.Tree; ts != nil {
		row.Fanout = ts.Fanout
		row.Depth = ts.Depth
		row.Partials = ts.Forwards
	}
	return sum, row, nil
}

// Scale sweeps the simulated client count across flat and hierarchical
// aggregation, reporting the coordinator's peak live-ciphertext memory (per
// client) and the modelled critical-path round time, and asserting the tree
// round decrypts bit-identically to the flat one at every size. Results go
// to w and to BENCH_scale.json.
func (r *Runner) Scale(w io.Writer, sizes []int) error {
	if len(sizes) == 0 {
		sizes = []int{100, 1000, 10000, 100000}
	}
	header(w, fmt.Sprintf(
		"Scale — cross-device sweep: flat vs tree (fanout %d, window %d), %d-bit key, dim %d",
		scaleFanout, scaleMaxInflight, scaleKeyBits, scaleGradDim))
	fmt.Fprintf(w, "%9s %6s %14s %11s %14s %9s %6s\n",
		"Clients", "Mode", "PeakLiveCts", "Peak/Client", "CritPathSim", "Depth", "Exact")

	report := scaleReport{
		KeyBits:     scaleKeyBits,
		RBits:       scaleRBits,
		GradDim:     scaleGradDim,
		Fanout:      scaleFanout,
		MaxInflight: scaleMaxInflight,
		BitExact:    true,
	}
	for _, clients := range sizes {
		flatSum, flatRow, err := r.scaleRound(clients, 0)
		if err != nil {
			return err
		}
		treeSum, treeRow, err := r.scaleRound(clients, scaleFanout)
		if err != nil {
			return err
		}
		treeRow.MatchesFlat = len(flatSum) == len(treeSum)
		for i := range flatSum {
			if math.Float64bits(flatSum[i]) != math.Float64bits(treeSum[i]) {
				treeRow.MatchesFlat = false
			}
		}
		if !treeRow.MatchesFlat {
			report.BitExact = false
		}
		report.Rows = append(report.Rows, flatRow, treeRow)
		fmt.Fprintf(w, "%9d %6s %14d %11.4f %14s %9s %6s\n",
			clients, flatRow.Mode, flatRow.PeakLiveCts, flatRow.PeakPerClient,
			fmtDur(time.Duration(flatRow.CritPathSimNs)), "-", "-")
		fmt.Fprintf(w, "%9d %6s %14d %11.4f %14s %9d %6v\n",
			clients, treeRow.Mode, treeRow.PeakLiveCts, treeRow.PeakPerClient,
			fmtDur(time.Duration(treeRow.CritPathSimNs)), treeRow.Depth, treeRow.MatchesFlat)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(scaleJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	if !report.BitExact {
		return fmt.Errorf("bench: tree aggregation diverged from the flat protocol (see %s)", scaleJSON)
	}
	fmt.Fprintf(w, "\ntree rounds bit-exact with flat at every size; wrote %s\n", scaleJSON)
	return nil
}
