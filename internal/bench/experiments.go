package bench

import (
	"fmt"
	"io"

	"flbooster/internal/datasets"
	"flbooster/internal/fl"
	"flbooster/internal/models"
)

// Fig1 reproduces Figure 1: FATE's per-epoch running time for the four
// benchmark models, split into HE operations, communication, and the rest,
// at the first configured key size.
func (r *Runner) Fig1(w io.Writer) error {
	keyBits := r.cfg.KeyBits[0]
	header(w, fmt.Sprintf("Fig. 1 — FATE epoch anatomy at %d-bit keys (modelled seconds, scale %g)", keyBits, r.cfg.Scale))
	fmt.Fprintf(w, "%-12s %-10s %12s %12s %12s %12s %8s %8s\n",
		"Model", "Dataset", "Total", "HE", "Comm", "Other", "HE%", "Comm%")
	for _, model := range ModelNames() {
		for _, spec := range datasets.AllSpecs() {
			res, err := r.runEpochs(model, fl.SystemFATE, keyBits, spec, 1)
			if err != nil {
				return err
			}
			other, he, comm := res.Costs.Shares()
			fmt.Fprintf(w, "%-12s %-10s %12s %12s %12s %12s %7.1f%% %7.1f%%\n",
				model, spec.Name,
				fmtDur(res.Costs.TotalSim()), fmtDur(res.Costs.HESim),
				fmtDur(res.Costs.CommSim), fmtDur(res.Costs.OtherWall),
				he*100, comm*100)
			_ = other
		}
	}
	return nil
}

// Table3 reproduces Table III: average per-epoch running time for FATE,
// HAFLO, and FLBooster across models, datasets, and key sizes.
func (r *Runner) Table3(w io.Writer) error {
	header(w, fmt.Sprintf("Table III — average epoch time (modelled seconds, scale %g)", r.cfg.Scale))
	systems := []fl.System{fl.SystemFATE, fl.SystemHAFLO, fl.SystemFLBooster}
	fmt.Fprintf(w, "%-12s %6s  %-10s %12s %12s %12s %10s %10s\n",
		"Model", "Key", "Dataset", "FATE", "HAFLO", "FLBooster", "vs FATE", "vs HAFLO")
	for _, model := range ModelNames() {
		for _, keyBits := range r.cfg.KeyBits {
			for _, spec := range datasets.AllSpecs() {
				times := make(map[fl.System]float64, len(systems))
				for _, sys := range systems {
					res, err := r.runEpochs(model, sys, keyBits, spec, 1)
					if err != nil {
						return err
					}
					times[sys] = res.Costs.TotalSim().Seconds()
				}
				flb := times[fl.SystemFLBooster]
				speedFATE, speedHAFLO := 0.0, 0.0
				if flb > 0 {
					speedFATE = times[fl.SystemFATE] / flb
					speedHAFLO = times[fl.SystemHAFLO] / flb
				}
				fmt.Fprintf(w, "%-12s %6d  %-10s %12.4f %12.4f %12.4f %9.1fx %9.1fx\n",
					model, keyBits, spec.Name,
					times[fl.SystemFATE], times[fl.SystemHAFLO], flb,
					speedFATE, speedHAFLO)
			}
		}
	}
	return nil
}

// Table4 reproduces Table IV: HE-operation throughput in gradient instances
// per second for the three systems.
func (r *Runner) Table4(w io.Writer) error {
	header(w, fmt.Sprintf("Table IV — HE throughput (instances/second, scale %g)", r.cfg.Scale))
	systems := []fl.System{fl.SystemFATE, fl.SystemHAFLO, fl.SystemFLBooster}
	fmt.Fprintf(w, "%-12s %6s  %-10s %14s %14s %14s\n",
		"Model", "Key", "Dataset", "FATE", "HAFLO", "FLBooster")
	for _, model := range ModelNames() {
		for _, keyBits := range r.cfg.KeyBits {
			for _, spec := range datasets.AllSpecs() {
				row := make(map[fl.System]float64, len(systems))
				for _, sys := range systems {
					res, err := r.runEpochs(model, sys, keyBits, spec, 1)
					if err != nil {
						return err
					}
					row[sys] = res.Costs.Throughput()
				}
				fmt.Fprintf(w, "%-12s %6d  %-10s %14.0f %14.0f %14.0f\n",
					model, keyBits, spec.Name,
					row[fl.SystemFATE], row[fl.SystemHAFLO], row[fl.SystemFLBooster])
			}
		}
	}
	return nil
}

// Fig6 reproduces Figure 6: SM utilization of HAFLO (coarse resource
// allocation) versus FLBooster (fine-grained resource manager) per model and
// key size.
func (r *Runner) Fig6(w io.Writer) error {
	header(w, "Fig. 6 — GPU SM utilization in HE operations")
	fmt.Fprintf(w, "%-12s %6s %12s %12s\n", "Model", "Key", "HAFLO", "FLBooster")
	spec := datasets.SyntheticSpec
	for _, model := range ModelNames() {
		for _, keyBits := range r.cfg.KeyBits {
			var util [2]float64
			for i, sys := range []fl.System{fl.SystemHAFLO, fl.SystemFLBooster} {
				res, err := r.runEpochs(model, sys, keyBits, spec, 1)
				if err != nil {
					return err
				}
				util[i] = res.Utilization
			}
			fmt.Fprintf(w, "%-12s %6d %11.1f%% %11.1f%%\n",
				model, keyBits, util[0]*100, util[1]*100)
		}
	}
	return nil
}

// Table5 reproduces Table V: the ablation study — FLBooster versus the
// w/o-GHE and w/o-BC variants.
func (r *Runner) Table5(w io.Writer) error {
	header(w, fmt.Sprintf("Table V — ablation: module running time (modelled seconds, scale %g)", r.cfg.Scale))
	systems := []fl.System{fl.SystemFLBooster, fl.SystemNoGHE, fl.SystemNoBC}
	fmt.Fprintf(w, "%-12s %6s  %-10s %12s %12s %12s\n",
		"Model", "Key", "Dataset", "FLBooster", "w/o GHE", "w/o BC")
	for _, model := range ModelNames() {
		for _, keyBits := range r.cfg.KeyBits {
			for _, spec := range datasets.AllSpecs() {
				row := make(map[fl.System]float64, len(systems))
				for _, sys := range systems {
					res, err := r.runEpochs(model, sys, keyBits, spec, 1)
					if err != nil {
						return err
					}
					row[sys] = res.Costs.TotalSim().Seconds()
				}
				fmt.Fprintf(w, "%-12s %6d  %-10s %12.4f %12.4f %12.4f\n",
					model, keyBits, spec.Name,
					row[fl.SystemFLBooster], row[fl.SystemNoGHE], row[fl.SystemNoBC])
			}
		}
	}
	return nil
}

// Fig7 reproduces Figure 7: FLBooster's compression ratio per model and key
// size (≈ k/32 with the paper's r+b = 32 slots).
func (r *Runner) Fig7(w io.Writer) error {
	header(w, "Fig. 7 — batch compression ratio (plaintext values per ciphertext)")
	fmt.Fprintf(w, "%-12s %6s %12s %14s\n", "Model", "Key", "Measured", "Theoretical")
	spec := datasets.SyntheticSpec
	for _, model := range ModelNames() {
		for _, keyBits := range r.cfg.KeyBits {
			res, err := r.runEpochs(model, fl.SystemFLBooster, keyBits, spec, 1)
			if err != nil {
				return err
			}
			theo := float64(keyBits / 32)
			fmt.Fprintf(w, "%-12s %6d %11.1fx %13.1fx\n",
				model, keyBits, res.Costs.CompressionRatio(), theo)
		}
	}
	return nil
}

// Table6 reproduces Table VI: component time shares (others / HE / comm) of
// Homo LR at the first key size, per dataset and system.
func (r *Runner) Table6(w io.Writer) error {
	keyBits := r.cfg.KeyBits[0]
	header(w, fmt.Sprintf("Table VI — component shares, Homo LR at %d-bit keys", keyBits))
	fmt.Fprintf(w, "%-10s %-12s %9s %9s %9s %14s\n",
		"Dataset", "System", "Others", "HE ops", "Comm", "Total (s)")
	for _, spec := range datasets.AllSpecs() {
		for _, sys := range []fl.System{fl.SystemFATE, fl.SystemHAFLO, fl.SystemFLBooster} {
			res, err := r.runEpochs("Homo LR", sys, keyBits, spec, 1)
			if err != nil {
				return err
			}
			other, he, comm := res.Costs.Shares()
			fmt.Fprintf(w, "%-10s %-12s %8.1f%% %8.1f%% %8.1f%% %14s\n",
				spec.Name, sys, other*100, he*100, comm*100, fmtDur(res.Costs.TotalSim()))
		}
	}
	return nil
}

// Fig8 reproduces Figure 8: loss-versus-modelled-time convergence curves on
// the Synthetic dataset for FATE, HAFLO, and FLBooster.
func (r *Runner) Fig8(w io.Writer) error {
	keyBits := r.cfg.KeyBits[0]
	header(w, fmt.Sprintf("Fig. 8 — convergence on Synthetic at %d-bit keys (cumulative modelled seconds → loss)", keyBits))
	spec := datasets.SyntheticSpec
	for _, model := range ModelNames() {
		fmt.Fprintf(w, "\n%s:\n", model)
		fmt.Fprintf(w, "  %-12s", "System")
		for e := 1; e <= r.cfg.Epochs; e++ {
			fmt.Fprintf(w, "  %18s", fmt.Sprintf("epoch %d (t, loss)", e))
		}
		fmt.Fprintln(w)
		for _, sys := range []fl.System{fl.SystemFATE, fl.SystemHAFLO, fl.SystemFLBooster} {
			ds, err := r.dataset(spec)
			if err != nil {
				return err
			}
			ctx, err := r.context(sys, keyBits)
			if err != nil {
				return err
			}
			m, err := r.buildModel(model, ctx, ds)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-12s", sys)
			for e := 0; e < r.cfg.Epochs; e++ {
				loss, err := m.TrainEpoch()
				if err != nil {
					m.Close()
					return err
				}
				t := ctx.Costs.TotalSim().Seconds()
				fmt.Fprintf(w, "  %18s", fmt.Sprintf("(%.3fs, %.4f)", t, loss))
			}
			fmt.Fprintln(w)
			if err := m.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Table7 reproduces Table VII: the convergence bias (Eq. 15) of FLBooster's
// quantized pipeline against the exact plaintext baseline after the
// configured number of epochs.
func (r *Runner) Table7(w io.Writer) error {
	keyBits := r.cfg.KeyBits[0]
	header(w, fmt.Sprintf("Table VII — convergence bias at %d-bit keys, %d epochs", keyBits, r.cfg.Epochs))
	fmt.Fprintf(w, "%-12s", "Model")
	for _, spec := range datasets.AllSpecs() {
		fmt.Fprintf(w, " %10s", spec.Name)
	}
	fmt.Fprintln(w)
	for _, model := range ModelNames() {
		fmt.Fprintf(w, "%-12s", model)
		for _, spec := range datasets.AllSpecs() {
			ds, err := r.dataset(spec)
			if err != nil {
				return err
			}
			// Plaintext oracle.
			oracle, err := r.buildModel(model, nil, ds)
			if err != nil {
				return err
			}
			var lossO float64
			for e := 0; e < r.cfg.Epochs; e++ {
				if lossO, err = oracle.TrainEpoch(); err != nil {
					oracle.Close()
					return err
				}
			}
			oracle.Close()
			// FLBooster pipeline.
			res, err := r.runEpochs(model, fl.SystemFLBooster, keyBits, spec, r.cfg.Epochs)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %9.2f%%", models.ConvergenceBias(lossO, res.Loss)*100)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// All runs every experiment in the paper's order.
func (r *Runner) All(w io.Writer) error {
	steps := []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"table2", r.Table2}, {"fig1", r.Fig1}, {"table3", r.Table3}, {"table4", r.Table4},
		{"fig6", r.Fig6}, {"table5", r.Table5}, {"fig7", r.Fig7},
		{"table6", r.Table6}, {"fig8", r.Fig8}, {"table7", r.Table7},
	}
	for _, s := range steps {
		if err := s.fn(w); err != nil {
			return fmt.Errorf("bench: %s: %w", s.name, err)
		}
	}
	return nil
}

// Table2 reproduces Table II: statistics of the evaluation datasets, as
// generated at the configured scale, next to the paper's full-scale counts.
func (r *Runner) Table2(w io.Writer) error {
	header(w, fmt.Sprintf("Table II — dataset statistics (generated at scale %g vs paper full scale)", r.cfg.Scale))
	fmt.Fprintf(w, "%-10s %12s %12s %10s %10s %14s %14s\n",
		"Dataset", "Instances", "Features", "AvgNNZ", "Pos%", "Paper inst.", "Paper feat.")
	for _, spec := range datasets.AllSpecs() {
		ds, err := r.dataset(spec)
		if err != nil {
			return err
		}
		st := ds.Stats()
		fmt.Fprintf(w, "%-10s %12d %12d %10.1f %9.1f%% %14d %14d\n",
			st.Name, st.Instances, st.Features, st.AvgNNZ, st.Positives*100,
			spec.Instances, spec.Features)
	}
	return nil
}
