package bench

import (
	"strings"
	"testing"

	"flbooster/internal/fl"
)

// TestResilienceDemonstratesGracefulDegradation runs the straggler
// experiment at test scale and checks the printed table: the degraded epoch
// must drop exactly the straggler, and must land far below the stalled
// (wait-for-all) bound.
func TestResilienceDemonstratesGracefulDegradation(t *testing.T) {
	cfg := Quick()
	cfg.KeyBits = []int{256}
	cfg.Epochs = 2
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := r.Resilience(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"clean (all 4)",
		"straggler (quorum 3)",
		"stalled (wait-for-all)",
		"client0@gather",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFmtDropped(t *testing.T) {
	if got := fmtDropped(fl.RoundReport{}); got != "-" {
		t.Errorf("empty dropped = %q", got)
	}
	rep := fl.RoundReport{Dropped: map[string]fl.RoundPhase{
		"client2": fl.PhaseGather,
		"client0": fl.PhaseDecrypt,
	}}
	if got := fmtDropped(rep); got != "client0@decrypt client2@gather" {
		t.Errorf("fmtDropped = %q", got)
	}
}
