package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestDevsetSmoke runs the multi-device sharding sweep at CI size (D ∈
// {1, 2}, the Quick key sizes) and pins its claims: bit-exact rows at every
// device count, a speedup gate at the largest D, and a graceful death leg
// with real work stealing.
func TestDevsetSmoke(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	if err := os.Chdir(tmp); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	r, err := NewRunner(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := r.Devset(&out, []int{1, 2}); err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(filepath.Join(tmp, devsetJSON))
	if err != nil {
		t.Fatal(err)
	}
	var report devsetReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 2 {
		t.Fatalf("swept %d rows, want 2", len(report.Rows))
	}
	for _, row := range report.Rows {
		if !row.BitExact {
			t.Fatalf("D=%d row not bit-exact: %+v", row.Devices, row)
		}
		if row.Shards == 0 || row.SimNs <= 0 {
			t.Fatalf("D=%d row missing shard accounting: %+v", row.Devices, row)
		}
	}
	two := report.Rows[1]
	if two.Devices != 2 || two.Speedup < 1.5 {
		t.Fatalf("D=2 speedup %.2fx below the 1.5x gate", two.Speedup)
	}
	if two.ParallelNs >= two.SequentialNs {
		t.Fatalf("D=2 parallel span %d not under the sequential sum %d", two.ParallelNs, two.SequentialNs)
	}
	d := report.Death
	if d.Devices != 2 || !d.BitExact || d.Steals == 0 || d.RebalanceNs <= 0 {
		t.Fatalf("death leg %+v", d)
	}
	if d.LostThroughput >= 1.5/float64(d.Devices) {
		t.Fatalf("death leg lost %.2f of throughput, bound %.2f", d.LostThroughput, 1.5/float64(d.Devices))
	}
}

// TestDevsetConfigValidation: the device-count knob rejects out-of-range
// values with a typed ConfigError naming the field.
func TestDevsetConfigValidation(t *testing.T) {
	for _, devices := range []int{-1, 65} {
		cfg := Quick()
		cfg.Devices = devices
		_, err := NewRunner(cfg)
		var cerr *ConfigError
		if !errors.As(err, &cerr) || cerr.Field != "devices" {
			t.Fatalf("devices=%d: error %v, want a ConfigError for field devices", devices, err)
		}
	}
}
