package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRoundSmoke runs the end-to-end round-anatomy experiment at test keys
// and pins its contract: every optimized round decrypts bit-identically to
// its seed baseline (including the crash-recovered one), the optimized path
// is never slower, the nonce pool serves every round (hits without misses),
// and the final round's anatomy is populated and reconciles.
func TestRoundSmoke(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	if err := os.Chdir(tmp); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	cfg := Quick()
	// Round runs at the sweep's largest key; 256-bit keeps the 10-context
	// sweep (5 modes × baseline/optimized, plus recovery) inside the -race
	// smoke budget while exercising every code path the 2048-bit run does.
	cfg.KeyBits = []int{256}
	cfg.Observe = true // exercise the metrics mirror alongside the anatomy
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := r.Round(&out); err != nil {
		t.Fatal(err)
	}
	if err := r.ReconcileObs(); err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(filepath.Join(tmp, roundJSON))
	if err != nil {
		t.Fatal(err)
	}
	var report roundReportFile
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatal(err)
	}
	if !report.BitExact || !report.RecoveryBitExact {
		t.Fatalf("bit-exactness lost: modes %v, recovery %v", report.BitExact, report.RecoveryBitExact)
	}
	if len(report.Rows) != len(roundModes) {
		t.Fatalf("%d rows, want %d", len(report.Rows), len(roundModes))
	}
	for _, row := range report.Rows {
		if !row.BitExact {
			t.Fatalf("mode %s: optimized aggregates diverged", row.Mode)
		}
		if row.OptimizedSimNs > row.BaselineSimNs {
			t.Fatalf("mode %s: optimized round %dns slower than baseline %dns",
				row.Mode, row.OptimizedSimNs, row.BaselineSimNs)
		}
		if row.PoolHits == 0 || row.PoolMisses != 0 {
			t.Fatalf("mode %s: pool hits %d / misses %d, want hits with zero misses",
				row.Mode, row.PoolHits, row.PoolMisses)
		}
	}
	if report.Anatomy == nil || len(report.Anatomy.Phases) == 0 {
		t.Fatal("no round anatomy recorded")
	}
	if report.Dominant == "" {
		t.Fatal("no dominant phase named")
	}
	if !strings.Contains(out.String(), "per-phase cost anatomy") {
		t.Fatal("anatomy table missing from experiment output")
	}
}
