package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"flbooster/internal/fl"
	"flbooster/internal/mpint"
)

// The Byzantine-robustness experiment: sweep attack model × adversary
// fraction × defense and measure how far the decrypted aggregate lands from
// the honest-client oracle (an all-honest, undefended same-seed round over
// the same gradients). Every cell is one full secure-aggregation round —
// encryption, group-wise HE summation, robust combine — so the numbers
// measure the deployed defense, not a plaintext simulation. All randomness
// derives from the seed; the committed BENCH_byz.json replays bit-exactly.

// byzJSON is the committed robustness artifact.
const byzJSON = "BENCH_byz.json"

const (
	byzParties = 10 // 20% adversaries = 2 compromised clients
	byzGroups  = 5
	byzTrim    = 2 // per-side trim: tolerates both adversaries grouped apart
	byzDim     = 16
	byzFactor  = 25 // boosting multiplier; bounded by the quantizer range
	byzBound   = 8  // GradBound: keeps 25× boosted uploads un-clamped
)

// byzRow is one sweep cell.
type byzRow struct {
	Attack      string  `json:"attack"`
	Fraction    float64 `json:"fraction"`
	Adversaries int     `json:"adversaries"`
	Defense     string  `json:"defense"`
	// Deviation is the L2 distance of the round's aggregate from the
	// honest-client oracle.
	Deviation float64 `json:"deviation"`
	// MaxSuspicion is the defended round's highest per-group outlier score.
	MaxSuspicion  float64 `json:"max_suspicion,omitempty"`
	TrimmedCoords int64   `json:"trimmed_coords,omitempty"`
	Clipped       int     `json:"clipped,omitempty"`
	GroupsDropped int     `json:"groups_dropped,omitempty"`
}

// byzHeadline is the acceptance cell: 20% scaling adversaries, defense off
// versus trimmed-mean on.
type byzHeadline struct {
	Attack            string  `json:"attack"`
	Fraction          float64 `json:"fraction"`
	OffDeviation      float64 `json:"off_deviation"`
	DefendedDeviation float64 `json:"defended_deviation"`
	// Ratio is OffDeviation / DefendedDeviation — how many times closer the
	// defense pulls the aggregate to the honest oracle.
	Ratio float64 `json:"ratio"`
}

// byzReport is the BENCH_byz.json schema.
type byzReport struct {
	Seed       uint64      `json:"seed"`
	Parties    int         `json:"parties"`
	KeyBits    int         `json:"key_bits"`
	Dim        int         `json:"dim"`
	Groups     int         `json:"groups"`
	Trim       int         `json:"trim"`
	Factor     float64     `json:"factor"`
	HonestNorm float64     `json:"honest_norm"`
	Rows       []byzRow    `json:"rows"`
	Headline   byzHeadline `json:"headline"`
}

// byzDefenses lists the sweep's defense arms: off, then every combiner.
func byzDefenses() []fl.DefensePolicy {
	arms := []fl.DefensePolicy{{}}
	for _, kind := range fl.KnownCombiners() {
		arms = append(arms, fl.DefensePolicy{Groups: byzGroups, Combiner: kind, Trim: byzTrim})
	}
	return arms
}

// byzDefenseName labels a defense arm.
func byzDefenseName(d fl.DefensePolicy) string {
	if !d.Enabled() {
		return "off"
	}
	return string(d.Combiner)
}

// byzHonestGrads draws the honest per-client gradients: a shared descent
// direction in [-0.25, 0.25) plus small per-client jitter — the correlated
// shape of real FL updates. Low cross-client variance is what gives the
// group means a tight honest cluster for the combiners to defend.
func byzHonestGrads(seed uint64) [][]float64 {
	rng := mpint.NewRNG(seed ^ 0xb52a)
	base := make([]float64, byzDim)
	for i := range base {
		base[i] = 0.5*rng.Float64() - 0.25
	}
	out := make([][]float64, byzParties)
	for c := range out {
		g := make([]float64, byzDim)
		for i := range g {
			g[i] = base[i] + 0.02*(2*rng.Float64()-1)
		}
		out[c] = g
	}
	return out
}

// byzRound runs one secure-aggregation round of the sweep.
func byzRound(seed uint64, keyBits int, byz fl.AdversaryConfig, defense fl.DefensePolicy, grads [][]float64) ([]float64, fl.RoundReport, error) {
	p := fl.NewProfile(fl.SystemFATE, keyBits, byzParties)
	p.Seed = seed
	p.GradBound = byzBound
	p.Byz = byz
	p.Defense = defense
	ctx, err := fl.NewContext(p)
	if err != nil {
		return nil, fl.RoundReport{}, err
	}
	fed := fl.NewFederation(ctx)
	defer fed.Close()
	return fed.SecureAggregateReport(grads)
}

// Byz runs the robustness sweep and writes the table and BENCH_byz.json.
func (r *Runner) Byz(w io.Writer) error {
	keyBits := r.cfg.KeyBits[0]
	seed := r.cfg.Seed
	header(w, fmt.Sprintf("Byzantine robustness — attack × fraction × defense (%d parties, %d groups, %d-bit keys)",
		byzParties, byzGroups, keyBits))

	grads := byzHonestGrads(seed)
	honest, _, err := byzRound(seed, keyBits, fl.AdversaryConfig{}, fl.DefensePolicy{}, grads)
	if err != nil {
		return fmt.Errorf("bench: honest oracle round: %w", err)
	}

	report := byzReport{
		Seed: seed, Parties: byzParties, KeyBits: keyBits, Dim: byzDim,
		Groups: byzGroups, Trim: byzTrim, Factor: byzFactor,
		HonestNorm: l2vec(honest),
	}
	fmt.Fprintf(w, "honest oracle norm %.4f\n\n", report.HonestNorm)
	fmt.Fprintf(w, "%-10s %-5s %-13s %12s %10s\n", "attack", "frac", "defense", "L2 deviation", "suspicion")

	start := time.Now()
	for _, attack := range fl.KnownAttacks() {
		for _, fraction := range []float64{0.1, 0.2} {
			byz := fl.AdversaryConfig{
				Seed: seed ^ 0x1b2c, Kind: attack, Fraction: fraction,
				Factor: byzFactor, NoiseStd: 2, Drift: 2,
			}
			for _, defense := range byzDefenses() {
				sum, rep, err := byzRound(seed, keyBits, byz, defense, grads)
				if err != nil {
					return fmt.Errorf("bench: byz cell %s/%v/%s: %w",
						attack, fraction, byzDefenseName(defense), err)
				}
				row := byzRow{
					Attack:      string(attack),
					Fraction:    fraction,
					Adversaries: int(fraction * byzParties),
					Defense:     byzDefenseName(defense),
					Deviation:   l2dev(sum, honest),
				}
				if d := rep.Defense; d != nil {
					row.MaxSuspicion = d.MaxSuspicion()
					row.TrimmedCoords = d.Stats.TrimmedCoords
					row.Clipped = d.Stats.Clipped
					row.GroupsDropped = d.Stats.GroupsDropped
				}
				report.Rows = append(report.Rows, row)
				fmt.Fprintf(w, "%-10s %-5.2f %-13s %12.4f %10.3f\n",
					row.Attack, row.Fraction, row.Defense, row.Deviation, row.MaxSuspicion)
			}
		}
	}
	elapsed := time.Since(start)

	// The acceptance headline: 20% scaling adversaries must land the
	// undefended aggregate ≥10× further from the honest oracle than the
	// trimmed-mean defense does.
	var off, defended float64
	for _, row := range report.Rows {
		if row.Attack == string(fl.AttackScale) && row.Fraction == 0.2 {
			switch row.Defense {
			case "off":
				off = row.Deviation
			case string(fl.CombineTrimmedMean):
				defended = row.Deviation
			}
		}
	}
	report.Headline = byzHeadline{
		Attack: string(fl.AttackScale), Fraction: 0.2,
		OffDeviation: off, DefendedDeviation: defended,
	}
	if defended > 0 {
		report.Headline.Ratio = off / defended
	}
	fmt.Fprintf(w, "\nheadline: scale@20%% off %.4f vs trimmed-mean %.4f (%.1fx closer); wall time %s\n",
		off, defended, report.Headline.Ratio, fmtDur(elapsed))
	if report.Headline.Ratio < 10 {
		return fmt.Errorf("bench: defense headline ratio %.2f below the 10x target", report.Headline.Ratio)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(byzJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n", byzJSON)
	return nil
}

// l2vec is the L2 norm of v.
func l2vec(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// l2dev is the L2 distance between a and b.
func l2dev(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
