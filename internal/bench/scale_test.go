package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"flbooster/internal/fl"
)

// TestScaleSmoke runs the cross-device sweep at toy sizes and pins its two
// claims: the tree round is bit-exact with the flat protocol, and the
// coordinator's peak live-ciphertext count is bounded by the hierarchy
// (sublinear in the cohort), not by the client count.
func TestScaleSmoke(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	if err := os.Chdir(tmp); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	r, err := NewRunner(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := r.Scale(&out, []int{40, 100}); err != nil {
		t.Fatal(err)
	}

	blob, err := os.ReadFile(filepath.Join(tmp, scaleJSON))
	if err != nil {
		t.Fatal(err)
	}
	var report scaleReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatal(err)
	}
	if !report.BitExact {
		t.Fatal("tree rounds diverged from flat")
	}
	if len(report.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(report.Rows))
	}
	rows := map[[2]interface{}]scaleRow{}
	for _, row := range report.Rows {
		rows[[2]interface{}{row.Clients, row.Mode}] = row
	}
	for _, clients := range []int{40, 100} {
		flat := rows[[2]interface{}{clients, "flat"}]
		tree := rows[[2]interface{}{clients, "tree"}]
		if flat.PeakLiveCts == 0 || tree.PeakLiveCts == 0 {
			t.Fatalf("N=%d: peaks not populated (%d/%d)", clients, flat.PeakLiveCts, tree.PeakLiveCts)
		}
		// Flat holds every client's batch at once; the tree must hold only
		// the fanout·depth live set.
		if flat.PeakPerClient < 0.99 {
			t.Fatalf("N=%d: flat peak %v per client, want ≈1 batch each", clients, flat.PeakPerClient)
		}
		if tree.PeakLiveCts*2 >= flat.PeakLiveCts {
			t.Fatalf("N=%d: tree peak %d not sublinear vs flat %d", clients, tree.PeakLiveCts, flat.PeakLiveCts)
		}
		width := flat.PeakLiveCts / int64(clients)
		if bound := int64(tree.Depth+1) * int64(report.Fanout) * width; tree.PeakLiveCts > bound {
			t.Fatalf("N=%d: tree peak %d above the fanout·depth bound %d", clients, tree.PeakLiveCts, bound)
		}
		if !tree.MatchesFlat || tree.Depth == 0 || tree.Partials == 0 {
			t.Fatalf("N=%d: tree row %+v", clients, tree)
		}
	}
}

// BenchmarkScaleFlatRound is the allocation baseline for the scale sweep's
// flat protocol: one N-client secure-aggregation round, re-run over a single
// federation so the wire arena reaches steady state. Run with -benchmem; the
// hard allocation guard lives in fl's TestArenaCodecAllocs.
func BenchmarkScaleFlatRound(b *testing.B) {
	r, err := NewRunner(Quick())
	if err != nil {
		b.Fatal(err)
	}
	const clients = 64
	ctx, err := fl.NewContext(r.scaleProfile(clients, 0))
	if err != nil {
		b.Fatal(err)
	}
	fed := fl.NewFederation(ctx)
	defer fed.Close()
	grads := scaleGrads(clients)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.SecureAggregate(grads); err != nil {
			b.Fatal(err)
		}
	}
}
