package bench

import (
	"strings"
	"testing"
)

// TestDeviceFaultsExperiment runs the device-fault experiment at test scale.
// The experiment asserts bit-exactness internally, so a nil error already
// means the killed and transient runs reproduced the clean aggregates; here
// we additionally check the printed counters tell the failover story.
func TestDeviceFaultsExperiment(t *testing.T) {
	cfg := Quick()
	cfg.KeyBits = []int{256}
	cfg.Epochs = 2
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := r.DeviceFaults(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"clean",
		"transient (verify all)",
		"killed (launch",
		"failed",      // the killed run's health column
		"bit-exact",   // every run's output column
		"kill point:", // calibration line
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestDeviceFaultsDeterministic: the same config must print the identical
// fault/retry/fallback counters twice (wall timings differ, so compare the
// calibration line and counter columns via a full second run succeeding with
// the same kill point).
func TestDeviceFaultsDeterministic(t *testing.T) {
	run := func() string {
		cfg := Quick()
		cfg.KeyBits = []int{256}
		cfg.Epochs = 2
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := r.DeviceFaults(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	killLine := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "kill point:") {
				return line
			}
		}
		t.Fatalf("no kill-point line in:\n%s", out)
		return ""
	}
	a, b := run(), run()
	if killLine(a) != killLine(b) {
		t.Fatalf("kill calibration diverged:\n%s\n%s", killLine(a), killLine(b))
	}
}
