package bench

import (
	"reflect"
	"testing"
)

// TestSoakDeterministic runs the same soak config twice and requires
// identical summaries: the committed BENCH_soak.json must be a pure
// function of the seed, restarts and all.
func TestSoakDeterministic(t *testing.T) {
	cfg := DefaultSoakConfig(7, 16, 4, 128)
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("soak summaries diverged across identical runs:\n%+v\n%+v", a, b)
	}
	if a.Completed+a.Failed != cfg.Rounds {
		t.Fatalf("rounds unaccounted for: %+v", a)
	}
	if a.Mismatches != 0 || a.UntypedErrors != 0 {
		t.Fatalf("soak found corruption: %+v", a)
	}
	if a.Crashes != a.Recoveries {
		t.Fatalf("crashes %d != recoveries %d", a.Crashes, a.Recoveries)
	}
	if a.AttackedRounds == 0 || a.DefendedRounds == 0 {
		t.Fatalf("soak never exercised the adversary/defense: %+v", a)
	}
	if a.BoundViolations != 0 {
		t.Fatalf("defended aggregate escaped the trimming bound %d times: %+v", a.BoundViolations, a)
	}
}

// TestSoakValidates rejects nonsense configs.
func TestSoakValidates(t *testing.T) {
	bad := []SoakConfig{
		{Rounds: 0, Parties: 4, Dim: 4, RejoinAfter: 1},
		{Rounds: 5, Parties: 1, Dim: 4, RejoinAfter: 1},
		{Rounds: 5, Parties: 4, Dim: 0, RejoinAfter: 1},
		{Rounds: 5, Parties: 4, Dim: 4, RejoinAfter: 0},
	}
	for i, cfg := range bad {
		if _, err := RunSoak(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}
