package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"flbooster/internal/fl"
	"flbooster/internal/flnet"
	"flbooster/internal/mpint"
)

// resilienceDim is the gradient dimension for the resilience experiment:
// large enough that a round carries real HE work, small enough for a quick
// run at the default scale.
const resilienceDim = 24

// Resilience measures graceful degradation under a straggler. It runs one
// epoch of secure-aggregation rounds three ways over the same workload:
//
//	clean      — all parties healthy, strict policy
//	straggler  — one client's traffic delayed far past the phase deadline,
//	             quorum K = N-1, so each round proceeds without it
//	stalled    — the lower bound a strict (wait-for-all) server would pay,
//	             rounds × straggler delay, shown for contrast
//
// The phase deadline is calibrated from the measured clean round so the
// degraded epoch lands near the paper's target of ~1.2× fault-free time
// regardless of host speed.
func (r *Runner) Resilience(w io.Writer) error {
	keyBits := r.cfg.KeyBits[0]
	parties := r.cfg.Parties
	rounds := r.cfg.Epochs
	header(w, fmt.Sprintf("Resilience — K-of-N quorum vs a straggler (%d parties, %d-bit keys, %d rounds)",
		parties, keyBits, rounds))

	rng := mpint.NewRNG(r.cfg.Seed)
	grads := make([][]float64, parties)
	for c := range grads {
		grads[c] = make([]float64, resilienceDim)
		for i := range grads[c] {
			grads[c][i] = rng.Float64()*0.5 - 0.25
		}
	}

	newCtx := func(policy fl.RoundPolicy) (*fl.Context, error) {
		p := fl.NewProfile(fl.SystemFLBooster, keyBits, parties)
		p.Seed = r.cfg.Seed
		p.Device = r.cfg.Device
		p.Round = policy
		return fl.NewContext(p)
	}

	epoch := func(ctx *fl.Context, chaos *flnet.ChaosConfig) (time.Duration, fl.RoundReport, error) {
		fed := fl.NewFederation(ctx)
		defer fed.Close()
		if chaos != nil {
			fed.Transport = flnet.NewChaosTransport(fed.Transport, *chaos)
		}
		var rep fl.RoundReport
		start := time.Now()
		for i := 0; i < rounds; i++ {
			var err error
			if _, rep, err = fed.SecureAggregateReport(grads); err != nil {
				return 0, rep, err
			}
		}
		return time.Since(start), rep, nil
	}

	// Pass 1: fault-free epoch under the strict default policy.
	cleanCtx, err := newCtx(fl.RoundPolicy{})
	if err != nil {
		return err
	}
	clean, cleanRep, err := epoch(cleanCtx, nil)
	if err != nil {
		return fmt.Errorf("bench: clean resilience epoch: %w", err)
	}

	// Calibrate: budget ~20% of a clean round for waiting out the straggler,
	// floored against scheduler noise, so degraded ≈ 1.2× clean on any host.
	phaseTimeout := clean / time.Duration(rounds) / 5
	if phaseTimeout < 10*time.Millisecond {
		phaseTimeout = 10 * time.Millisecond
	}
	stragglerDelay := 10 * phaseTimeout

	degCtx, err := newCtx(fl.RoundPolicy{
		Quorum:       parties - 1,
		PhaseTimeout: phaseTimeout,
		MaxRetries:   2,
		Backoff:      time.Millisecond,
	})
	if err != nil {
		return err
	}
	degraded, degRep, err := epoch(degCtx, &flnet.ChaosConfig{
		Seed:           r.cfg.Seed,
		StragglerParty: fl.ClientName(0),
		StragglerDelay: stragglerDelay,
	})
	if err != nil {
		return fmt.Errorf("bench: straggler resilience epoch: %w", err)
	}

	stalled := time.Duration(rounds) * stragglerDelay

	fmt.Fprintf(w, "phase deadline %s, straggler delay %s (calibrated from the clean round)\n\n",
		fmtDur(phaseTimeout), fmtDur(stragglerDelay))
	fmt.Fprintf(w, "%-22s %12s %12s %10s %8s %s\n",
		"Run", "Epoch", "Per-round", "Ratio", "Retries", "Dropped")
	row := func(name string, d time.Duration, rep fl.RoundReport) {
		fmt.Fprintf(w, "%-22s %12s %12s %9.2fx %8d %s\n",
			name, fmtDur(d), fmtDur(d/time.Duration(rounds)),
			float64(d)/float64(clean), rep.Retries, fmtDropped(rep))
	}
	row(fmt.Sprintf("clean (all %d)", parties), clean, cleanRep)
	row(fmt.Sprintf("straggler (quorum %d)", parties-1), degraded, degRep)
	fmt.Fprintf(w, "%-22s %12s %12s %9.2fx %8s %s\n",
		"stalled (wait-for-all)", fmtDur(stalled), fmtDur(stragglerDelay),
		float64(stalled)/float64(clean), "-", "lower bound, never completes early")
	return nil
}

// fmtDropped renders a report's dropped set as party@phase pairs.
func fmtDropped(rep fl.RoundReport) string {
	if len(rep.Dropped) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(rep.Dropped))
	for party, phase := range rep.Dropped {
		parts = append(parts, fmt.Sprintf("%s@%s", party, phase))
	}
	sort.Strings(parts)
	out := parts[0]
	for _, p := range parts[1:] {
		out += " " + p
	}
	return out
}
