package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

// heoptJSON is where HEOpt writes its machine-readable report.
const heoptJSON = "BENCH_heopt.json"

// heoptFixedBaseItems is the vector length for the comb-height sweep;
// heoptPoolItems the encryption batch for the pool-depth sweep.
const (
	heoptFixedBaseItems = 48
	heoptPoolItems      = 32
	heoptDecryptIters   = 6
)

// heoptFixedBaseRow is one comb height measurement.
type heoptFixedBaseRow struct {
	// Height is the Lim–Lee comb height h (0 = engine auto-select).
	Height int `json:"height"`
	// HostNs is wall time for the whole vector on the host; SimNs the
	// simulated device time (table build + H2D + kernel).
	HostNs int64 `json:"host_ns"`
	SimNs  int64 `json:"sim_ns"`
	// Speedups are against the replicated-base ModExpVarVec path.
	HostSpeedup float64 `json:"host_speedup"`
	SimSpeedup  float64 `json:"sim_speedup"`
	// TableEntries is the shared table size uploaded once per vector.
	TableEntries int64 `json:"table_entries"`
}

// heoptFixedBase is the fixed-base section of the report.
type heoptFixedBase struct {
	KeyBits        int                 `json:"key_bits"`
	Items          int                 `json:"items"`
	BaselineHostNs int64               `json:"baseline_host_ns"`
	BaselineSimNs  int64               `json:"baseline_sim_ns"`
	Sweep          []heoptFixedBaseRow `json:"sweep"`
	Best           heoptFixedBaseRow   `json:"best"`
}

// heoptDecryptRow compares classic full-λ decryption against the
// reduced-exponent CRT path at one key size.
type heoptDecryptRow struct {
	KeyBits int `json:"key_bits"`
	// Host ns per decrypt, averaged over heoptDecryptIters ciphertexts.
	ClassicHostNs int64   `json:"classic_host_ns"`
	ReducedHostNs int64   `json:"reduced_host_ns"`
	HostSpeedup   float64 `json:"host_speedup"`
	// Sim ns for one DecryptVec batch: classic = one full-λ kernel over n²,
	// reduced = two half-exponent kernels over p² and q².
	ClassicSimNs int64   `json:"classic_sim_ns"`
	ReducedSimNs int64   `json:"reduced_sim_ns"`
	SimSpeedup   float64 `json:"sim_speedup"`
}

// heoptPoolRow is one nonce-pool depth measurement.
type heoptPoolRow struct {
	Depth int `json:"depth"`
	// OnlineSimNs is the device time EncryptVec left on the online clock;
	// PrecomputeSimNs the refill work reclassified off it.
	OnlineSimNs     int64 `json:"online_sim_ns"`
	PrecomputeSimNs int64 `json:"precompute_sim_ns"`
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	// OnlineSpeedup is depth-0 online time over this depth's online time.
	OnlineSpeedup float64 `json:"online_speedup"`
}

// heoptPool is the nonce-pool section of the report.
type heoptPool struct {
	KeyBits int            `json:"key_bits"`
	Items   int            `json:"items"`
	Sweep   []heoptPoolRow `json:"sweep"`
}

// heoptReport is the BENCH_heopt.json schema.
type heoptReport struct {
	KeyBits   []int             `json:"key_bits"`
	FixedBase heoptFixedBase    `json:"fixed_base"`
	Decrypt   []heoptDecryptRow `json:"decrypt"`
	Pool      heoptPool         `json:"pool"`
}

// HEOpt measures the three precomputation paths of the HE stack: the
// Lim–Lee fixed-base comb against the replicated-base kernel (height
// sweep), reduced-exponent CRT decryption against the full-λ classic path
// (per key size), and the offline nonce pool against inline nonce
// generation (depth sweep). Host wall time and simulated device time are
// reported side by side; results go to w and BENCH_heopt.json.
func (r *Runner) HEOpt(w io.Writer) error {
	report := heoptReport{KeyBits: r.cfg.KeyBits}
	if err := r.heoptFixedBase(w, &report); err != nil {
		return err
	}
	if err := r.heoptDecrypt(w, &report); err != nil {
		return err
	}
	if err := r.heoptPool(w, &report); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(heoptJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nbest comb height %d: %.2fx host, %.2fx sim; wrote %s\n",
		report.FixedBase.Best.Height, report.FixedBase.Best.HostSpeedup,
		report.FixedBase.Best.SimSpeedup, heoptJSON)
	return nil
}

// heoptFixedBase sweeps the comb height on a g^{m_i} workload at the
// largest configured key: fixed base, varying exponents of key-size bits,
// arithmetic mod n² — the shape of non-shortcut gᵐ encryption.
func (r *Runner) heoptFixedBase(w io.Writer, report *heoptReport) error {
	keyBits := r.cfg.KeyBits[len(r.cfg.KeyBits)-1]
	header(w, fmt.Sprintf("HEOpt — fixed-base comb sweep: %d items, %d-bit exponents mod n²", heoptFixedBaseItems, keyBits))

	rng := mpint.NewRNG(r.cfg.Seed + 90)
	n := rng.RandBits(2 * keyBits)
	n[0] |= 1
	m := mpint.NewMont(n)
	base := rng.RandBelow(n)
	exps := make([]mpint.Nat, heoptFixedBaseItems)
	bases := make([]mpint.Nat, heoptFixedBaseItems)
	for i := range exps {
		exps[i] = rng.RandBits(keyBits)
		bases[i] = base
	}

	baseEng, err := ghe.NewEngine(gpu.MustNew(r.cfg.Device, true))
	if err != nil {
		return err
	}
	start := time.Now()
	if _, err := baseEng.ModExpVarVec(bases, exps, m); err != nil {
		return err
	}
	baseHost := time.Since(start)
	baseSim := baseEng.Device().Stats().SimTime()
	fb := heoptFixedBase{
		KeyBits:        keyBits,
		Items:          heoptFixedBaseItems,
		BaselineHostNs: int64(baseHost),
		BaselineSimNs:  int64(baseSim),
	}
	fmt.Fprintf(w, "%8s %14s %14s %9s %9s %8s\n", "Height", "Host", "Sim", "HostSpd", "SimSpd", "Entries")
	fmt.Fprintf(w, "%8s %14s %14s %9s %9s %8s\n", "repl", fmtDur(baseHost), fmtDur(baseSim), "1.00x", "1.00x", "-")
	for h := 1; h <= 8; h++ {
		eng, err := ghe.NewEngine(gpu.MustNew(r.cfg.Device, true))
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := eng.FixedBaseExpVecH(base, exps, m, h); err != nil {
			return err
		}
		host := time.Since(start)
		sim := eng.Device().Stats().SimTime()
		row := heoptFixedBaseRow{
			Height:       h,
			HostNs:       int64(host),
			SimNs:        int64(sim),
			HostSpeedup:  float64(baseHost) / float64(host),
			SimSpeedup:   float64(baseSim) / float64(sim),
			TableEntries: eng.TableStats().Entries,
		}
		fb.Sweep = append(fb.Sweep, row)
		if row.HostSpeedup > fb.Best.HostSpeedup {
			fb.Best = row
		}
		fmt.Fprintf(w, "%8d %14s %14s %8.2fx %8.2fx %8d\n",
			h, fmtDur(host), fmtDur(sim), row.HostSpeedup, row.SimSpeedup, row.TableEntries)
	}
	report.FixedBase = fb
	return nil
}

// heoptDecrypt compares the classic and reduced decryption paths at every
// configured key size, on the host and under the simulated device clock.
func (r *Runner) heoptDecrypt(w io.Writer, report *heoptReport) error {
	header(w, "HEOpt — decryption: full-λ classic vs reduced-exponent CRT")
	fmt.Fprintf(w, "%8s %14s %14s %9s %14s %14s %9s\n",
		"KeyBits", "ClassicHost", "ReducedHost", "HostSpd", "ClassicSim", "ReducedSim", "SimSpd")
	for _, keyBits := range r.cfg.KeyBits {
		sk, err := paillier.GenerateKey(mpint.NewRNG(r.cfg.Seed+uint64(keyBits)), keyBits)
		if err != nil {
			return err
		}
		rng := mpint.NewRNG(r.cfg.Seed + 91)
		cs := make([]paillier.Ciphertext, heoptDecryptIters)
		for i := range cs {
			c, err := sk.Encrypt(rng.RandBelow(sk.N), rng)
			if err != nil {
				return err
			}
			cs[i] = c
		}
		start := time.Now()
		for _, c := range cs {
			if _, err := sk.DecryptClassic(c); err != nil {
				return err
			}
		}
		classicHost := time.Since(start) / heoptDecryptIters
		start = time.Now()
		for _, c := range cs {
			if _, err := sk.Decrypt(c); err != nil {
				return err
			}
		}
		reducedHost := time.Since(start) / heoptDecryptIters

		// Sim: the reduced backend path (two half-modulus kernels) against
		// the full-λ kernel over n² it replaced.
		reducedEng, err := ghe.NewEngine(gpu.MustNew(r.cfg.Device, true))
		if err != nil {
			return err
		}
		if _, err := paillier.MustGPUBackend(reducedEng).DecryptVec(sk, cs); err != nil {
			return err
		}
		reducedSim := reducedEng.Device().Stats().SimTime()
		classicEng, err := ghe.NewEngine(gpu.MustNew(r.cfg.Device, true))
		if err != nil {
			return err
		}
		bases := make([]mpint.Nat, len(cs))
		for i := range cs {
			bases[i] = cs[i].C
		}
		if _, err := classicEng.ModExpVec(bases, sk.Lambda, sk.MontN2()); err != nil {
			return err
		}
		classicSim := classicEng.Device().Stats().SimTime()

		row := heoptDecryptRow{
			KeyBits:       keyBits,
			ClassicHostNs: int64(classicHost),
			ReducedHostNs: int64(reducedHost),
			HostSpeedup:   float64(classicHost) / float64(reducedHost),
			ClassicSimNs:  int64(classicSim),
			ReducedSimNs:  int64(reducedSim),
			SimSpeedup:    float64(classicSim) / float64(reducedSim),
		}
		report.Decrypt = append(report.Decrypt, row)
		fmt.Fprintf(w, "%8d %14s %14s %8.2fx %14s %14s %8.2fx\n",
			keyBits, fmtDur(classicHost), fmtDur(reducedHost), row.HostSpeedup,
			fmtDur(classicSim), fmtDur(reducedSim), row.SimSpeedup)
	}
	return nil
}

// heoptPool sweeps the nonce-pool depth on one EncryptVec batch at the
// largest configured key, reporting how much device time each prefill depth
// moves from the online clock to the precompute clock.
func (r *Runner) heoptPool(w io.Writer, report *heoptReport) error {
	keyBits := r.cfg.KeyBits[len(r.cfg.KeyBits)-1]
	header(w, fmt.Sprintf("HEOpt — nonce pool depth sweep: %d-item EncryptVec, %d-bit key", heoptPoolItems, keyBits))
	sk, err := paillier.GenerateKey(mpint.NewRNG(r.cfg.Seed+uint64(keyBits)), keyBits)
	if err != nil {
		return err
	}
	rng := mpint.NewRNG(r.cfg.Seed + 92)
	ms := make([]mpint.Nat, heoptPoolItems)
	for i := range ms {
		ms[i] = rng.RandBelow(sk.N)
	}
	const seed = 9090
	ps := heoptPool{KeyBits: keyBits, Items: heoptPoolItems}
	fmt.Fprintf(w, "%8s %14s %14s %6s %6s %9s\n", "Depth", "OnlineSim", "PrecompSim", "Hits", "Miss", "Speedup")
	var coldOnline time.Duration
	for _, depth := range []int{0, heoptPoolItems / 2, heoptPoolItems, 2 * heoptPoolItems} {
		eng, err := ghe.NewEngine(gpu.MustNew(r.cfg.Device, true))
		if err != nil {
			return err
		}
		b := paillier.MustGPUBackend(eng)
		var hits, misses int64
		if depth > 0 {
			pool, err := paillier.NewNoncePool(&sk.PublicKey, eng, seed)
			if err != nil {
				return err
			}
			if _, err := pool.Prefill(depth); err != nil {
				return err
			}
			b.Pool = pool
		}
		if _, err := b.EncryptVec(&sk.PublicKey, ms, seed); err != nil {
			return err
		}
		if b.Pool != nil {
			hits, misses = b.Pool.Stats().Hits, b.Pool.Stats().Misses
		} else {
			misses = int64(len(ms))
		}
		st := eng.Device().Stats()
		row := heoptPoolRow{
			Depth:           depth,
			OnlineSimNs:     int64(st.SimTime()),
			PrecomputeSimNs: int64(st.SimPrecomputeTime),
			Hits:            hits,
			Misses:          misses,
		}
		if depth == 0 {
			coldOnline = st.SimTime()
			row.OnlineSpeedup = 1
		} else if st.SimTime() > 0 {
			row.OnlineSpeedup = float64(coldOnline) / float64(st.SimTime())
		}
		ps.Sweep = append(ps.Sweep, row)
		fmt.Fprintf(w, "%8d %14s %14s %6d %6d %8.2fx\n",
			depth, fmtDur(st.SimTime()), fmtDur(st.SimPrecomputeTime), hits, misses, row.OnlineSpeedup)
	}
	report.Pool = ps
	return nil
}
