package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

// devsetJSON is where Devset writes its machine-readable report.
const devsetJSON = "BENCH_devset.json"

// Devset workload parameters: an encrypt-heavy vector batch (encrypt, two
// homomorphic folds, decrypt) large enough that every swept device count
// gets multi-item shards.
const (
	devsetItems = 256
	devsetFolds = 2
	// devsetKillAt is the death leg's launch ordinal: device 1 aborts every
	// launch from its fifth on, landing mid-encrypt.
	devsetKillAt = 5
	// devsetBackoff keeps the death leg's modelled retry delay small against
	// kernel cost, so the lost-throughput bound measures rebalancing, not an
	// arbitrary penalty box.
	devsetBackoff = 100 * time.Microsecond
)

// devsetRow is one device count of the scaling sweep.
type devsetRow struct {
	Devices int `json:"devices"`
	// SimNs is the set's merged (max-over-devices) modelled time for the
	// whole workload; Speedup its ratio to the D=1 row.
	SimNs   int64   `json:"sim_ns"`
	Speedup float64 `json:"speedup_vs_1"`
	// ParallelNs/SequentialNs split the measured span from the
	// sum-over-devices cost the sharding saves.
	ParallelNs   int64 `json:"parallel_ns"`
	SequentialNs int64 `json:"sequential_ns"`
	Shards       int64 `json:"shards"`
	// BitExact reports the row's decrypted sums matching the D=1 reference
	// bit for bit.
	BitExact bool  `json:"bit_exact"`
	WallNs   int64 `json:"wall_ns"`
}

// devsetDeathRow is the graceful-degradation leg: one of D devices killed
// mid-batch.
type devsetDeathRow struct {
	Devices     int   `json:"devices"`
	SimNs       int64 `json:"sim_ns"`
	Steals      int64 `json:"steals"`
	RebalanceNs int64 `json:"rebalance_ns"`
	// LostThroughput is 1 − healthySim/deathSim: the fraction of the healthy
	// D-device throughput the fault costs. Must stay under 1.5/D.
	LostThroughput float64 `json:"lost_throughput"`
	BitExact       bool    `json:"bit_exact"`
}

// devsetReport is the BENCH_devset.json schema.
type devsetReport struct {
	KeyBits int            `json:"key_bits"`
	Items   int            `json:"items"`
	Folds   int            `json:"folds"`
	Rows    []devsetRow    `json:"rows"`
	Death   devsetDeathRow `json:"death"`
}

// devsetOut is one run's results: the ciphertext batch after the folds and
// the decrypted sums, both compared bit-for-bit across device counts.
type devsetOut struct {
	cts []paillier.Ciphertext
	dec []mpint.Nat
}

func (o devsetOut) equal(ref devsetOut) bool {
	if len(o.cts) != len(ref.cts) || len(o.dec) != len(ref.dec) {
		return false
	}
	for i := range o.cts {
		if mpint.Cmp(o.cts[i].C, ref.cts[i].C) != 0 {
			return false
		}
	}
	for i := range o.dec {
		if mpint.Cmp(o.dec[i], ref.dec[i]) != 0 {
			return false
		}
	}
	return true
}

// devsetRun executes the encrypt-heavy workload on a fresh D-device set and
// returns the results with the set's statistics. With kill set, device 1 is
// armed to die mid-encrypt.
func (r *Runner) devsetRun(sk *paillier.PrivateKey, ms []mpint.Nat, d int, kill bool) (devsetOut, gpu.SetStats, error) {
	set, err := gpu.NewDeviceSet(r.cfg.Device, true, d)
	if err != nil {
		return devsetOut{}, gpu.SetStats{}, err
	}
	check := ghe.CheckedConfig{}
	if kill {
		check.Backoff = devsetBackoff
		set.Device(1).SetFaultInjector(gpu.NewFaultInjector(gpu.FaultConfig{
			Seed: r.cfg.Seed, KillAtLaunch: devsetKillAt,
		}))
	}
	eng, err := ghe.NewShardedEngine(set, check)
	if err != nil {
		return devsetOut{}, gpu.SetStats{}, err
	}
	backend, err := paillier.NewGPUBackend(eng)
	if err != nil {
		return devsetOut{}, gpu.SetStats{}, err
	}
	pk := &sk.PublicKey
	cts, err := backend.EncryptVec(pk, ms, r.cfg.Seed)
	if err != nil {
		return devsetOut{}, gpu.SetStats{}, fmt.Errorf("bench: devset D=%d encrypt: %w", d, err)
	}
	sum := cts
	for f := 0; f < devsetFolds; f++ {
		if sum, err = backend.AddVec(pk, sum, cts); err != nil {
			return devsetOut{}, gpu.SetStats{}, fmt.Errorf("bench: devset D=%d fold %d: %w", d, f, err)
		}
	}
	dec, err := backend.DecryptVec(sk, sum)
	if err != nil {
		return devsetOut{}, gpu.SetStats{}, fmt.Errorf("bench: devset D=%d decrypt: %w", d, err)
	}
	return devsetOut{cts: sum, dec: dec}, set.Stats(), nil
}

// Devset sweeps the simulated device count over the encrypt-heavy workload
// at the config's largest key size, asserting near-linear sim-time scaling
// (speedup ≥ 0.75·D at the largest D) with bit-exact results at every D,
// then runs the 1-of-D death leg: one device killed mid-batch must stay
// bit-exact while losing less than 1.5/D of the healthy throughput. A nil
// devices slice sweeps {1, 2, 4, 8}. Results go to BENCH_devset.json.
func (r *Runner) Devset(w io.Writer, devices []int) error {
	if len(devices) == 0 {
		devices = []int{1, 2, 4, 8}
	}
	keyBits := r.cfg.KeyBits[len(r.cfg.KeyBits)-1]
	if r.cfg.Devices > 0 {
		found := false
		for _, d := range devices {
			found = found || d == r.cfg.Devices
		}
		if !found {
			devices = append(devices, r.cfg.Devices)
		}
	}
	// The scaling gate and the death leg both key off the largest device
	// count, so an appended -devices value must not end up last by accident.
	sort.Ints(devices)
	fmt.Fprintf(w, "Devset — multi-device sharding sweep: %d-bit key, %d items, %d folds\n",
		keyBits, devsetItems, devsetFolds)
	fmt.Fprintf(w, "%8s %14s %10s %8s %8s %10s\n", "devices", "sim", "speedup", "shards", "exact", "wall")

	sk, err := paillier.GenerateKey(mpint.NewRNG(r.cfg.Seed), keyBits)
	if err != nil {
		return fmt.Errorf("bench: devset keygen: %w", err)
	}
	rng := mpint.NewRNG(r.cfg.Seed + 1)
	ms := make([]mpint.Nat, devsetItems)
	for i := range ms {
		ms[i] = rng.RandBelow(sk.PublicKey.N)
	}

	report := devsetReport{KeyBits: keyBits, Items: devsetItems, Folds: devsetFolds}
	var ref devsetOut
	var baseSim time.Duration
	var lastHealthy devsetRow
	for i, d := range devices {
		start := time.Now()
		out, st, err := r.devsetRun(sk, ms, d, false)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		sim := st.SimParallelTime + st.HostSim
		row := devsetRow{
			Devices:      d,
			SimNs:        int64(sim),
			ParallelNs:   int64(st.SimParallelTime),
			SequentialNs: int64(st.SimSequentialTime),
			Shards:       st.Shards,
			WallNs:       int64(wall),
		}
		if i == 0 {
			ref, baseSim = out, sim
			row.BitExact, row.Speedup = true, 1
			if devices[0] != 1 {
				return fmt.Errorf("bench: devset sweep must start at D=1, got %d", devices[0])
			}
		} else {
			row.BitExact = out.equal(ref)
			row.Speedup = float64(baseSim) / float64(sim)
		}
		if !row.BitExact {
			return fmt.Errorf("bench: devset D=%d diverged from the sequential reference", d)
		}
		report.Rows = append(report.Rows, row)
		lastHealthy = row
		fmt.Fprintf(w, "%8d %14s %9.2fx %8d %8v %10s\n",
			d, fmtDur(sim), row.Speedup, row.Shards, row.BitExact, fmtDur(wall))
	}

	// Near-linear scaling gate at the largest healthy D.
	maxD := lastHealthy.Devices
	if minSpeedup := 0.75 * float64(maxD); maxD > 1 && lastHealthy.Speedup < minSpeedup {
		return fmt.Errorf("bench: devset speedup %.2fx at D=%d below the %.2fx near-linear gate",
			lastHealthy.Speedup, maxD, minSpeedup)
	}

	// Death leg: kill 1 of D mid-batch at the largest swept D.
	if maxD > 1 {
		out, st, err := r.devsetRun(sk, ms, maxD, true)
		if err != nil {
			return err
		}
		sim := st.SimParallelTime + st.HostSim
		death := devsetDeathRow{
			Devices:        maxD,
			SimNs:          int64(sim),
			Steals:         st.Steals,
			RebalanceNs:    int64(st.RebalanceSim),
			LostThroughput: 1 - float64(lastHealthy.SimNs)/float64(sim),
			BitExact:       out.equal(ref),
		}
		report.Death = death
		fmt.Fprintf(w, "death %2d %14s %9.2f%% %8d %8v   (steals %d)\n",
			maxD, fmtDur(sim), 100*death.LostThroughput, st.Shards, death.BitExact, death.Steals)
		if !death.BitExact {
			return fmt.Errorf("bench: devset death leg diverged from the sequential reference")
		}
		if death.Steals == 0 {
			return fmt.Errorf("bench: devset death leg triggered no work stealing")
		}
		if bound := 1.5 / float64(maxD); death.LostThroughput >= bound {
			return fmt.Errorf("bench: devset death leg lost %.1f%% of throughput, bound %.1f%%",
				100*death.LostThroughput, 100*bound)
		}
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(devsetJSON, append(blob, '\n'), 0o644)
}
