package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"flbooster/internal/fl"
	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// pipelineJSON is where Pipeline writes its machine-readable report.
const pipelineJSON = "BENCH_pipeline.json"

// pipelineTransferRate models pageable host staging buffers on the PCIe
// link. The device's peak copy-engine rate is only reachable from pinned
// memory; a federation client staging operand batches out of ordinary heap
// memory sees a fraction of it, which is exactly the transfer-heavy regime
// the Fig. 4 double-buffered pipeline targets.
const pipelineTransferRate = 6e9

// pipelineItems is the hom-add batch length for the chunk sweep.
const pipelineItems = 2048

// pipelineRow is one chunk-size measurement of the sweep.
type pipelineRow struct {
	// Chunk is items per chunk; Chunks the launches it took.
	Chunk  int   `json:"chunk"`
	Chunks int64 `json:"chunks"`
	// SeqSimNs is the chunked work run back-to-back; StreamSimNs the
	// critical path of the same chunks double-buffered across the h2d,
	// compute, and d2h streams.
	SeqSimNs    int64 `json:"seq_sim_ns"`
	StreamSimNs int64 `json:"stream_sim_ns"`
	// Speedup is the whole-batch sequential baseline over StreamSimNs, so
	// per-launch overheads of chunking count against the pipeline.
	Speedup float64 `json:"speedup"`
}

// pipelineRound is the end-to-end federation view: one secure-aggregation
// round with chunked uploads, sequential total vs overlapped total.
type pipelineRound struct {
	System      string  `json:"system"`
	KeyBits     int     `json:"key_bits"`
	Parties     int     `json:"parties"`
	GradDim     int     `json:"grad_dim"`
	Chunk       int     `json:"chunk"`
	Chunks      int64   `json:"chunks"`
	SeqSimNs    int64   `json:"seq_sim_ns"`
	StreamSimNs int64   `json:"stream_sim_ns"`
	Speedup     float64 `json:"speedup"`
}

// pipelineReport is the BENCH_pipeline.json schema.
type pipelineReport struct {
	KeyBits             int           `json:"key_bits"`
	Workload            string        `json:"workload"`
	Items               int           `json:"items"`
	TransferBytesPerSec float64       `json:"transfer_bytes_per_sec"`
	SeqWholeBatchNs     int64         `json:"seq_whole_batch_ns"`
	Sweep               []pipelineRow `json:"sweep"`
	Best                pipelineRow   `json:"best"`
	Round               pipelineRound `json:"round"`
}

// Pipeline sweeps the streamed-execution chunk size on a transfer-heavy
// hom-add workload at the largest configured key size, comparing the
// whole-batch sequential launch against the double-buffered pipeline, then
// runs one chunked federation round for the end-to-end view. Results go to
// w and to BENCH_pipeline.json.
func (r *Runner) Pipeline(w io.Writer) error {
	keyBits := r.cfg.KeyBits[len(r.cfg.KeyBits)-1]
	devCfg := r.cfg.Device
	devCfg.TransferBytesPerSec = pipelineTransferRate

	header(w, fmt.Sprintf("Pipeline — streamed chunk sweep: hom-add, %d-bit key, %d items, %.0f GB/s pageable transfers",
		keyBits, pipelineItems, pipelineTransferRate/1e9))

	// Hom-add operands live mod n², twice the key width.
	rng := mpint.NewRNG(r.cfg.Seed + 77)
	n := rng.RandBits(2 * keyBits)
	n[0] |= 1
	m := mpint.NewMont(n)
	a := make([]mpint.Nat, pipelineItems)
	b := make([]mpint.Nat, pipelineItems)
	for i := range a {
		a[i], b[i] = rng.RandBelow(n), rng.RandBelow(n)
	}

	// Whole-batch sequential baseline: one launch, no streaming.
	seqDev := gpu.MustNew(devCfg, true)
	seqDev.SetRecorder(r.obs.Recorder(), "sweep.whole.gpu")
	seqEng, err := ghe.NewEngine(seqDev)
	if err != nil {
		return err
	}
	if _, err := seqEng.ModMulVec(a, b, m); err != nil {
		return err
	}
	baseline := seqDev.Stats().SimTime()
	fmt.Fprintf(w, "%8s %8s %14s %14s %9s\n", "Chunk", "Launches", "Sequential", "Streamed", "Speedup")
	fmt.Fprintf(w, "%8s %8d %14s %14s %9s\n", "whole", 1, fmtDur(baseline), "-", "1.00x")

	report := pipelineReport{
		KeyBits:             keyBits,
		Workload:            "hom-add (ModMulVec mod n²)",
		Items:               pipelineItems,
		TransferBytesPerSec: pipelineTransferRate,
		SeqWholeBatchNs:     int64(baseline),
	}
	for _, chunk := range []int{64, 128, 256, 512, 1024} {
		dev := gpu.MustNew(devCfg, true)
		dev.SetRecorder(r.obs.Recorder(), fmt.Sprintf("sweep.chunk%d.gpu", chunk))
		eng, err := ghe.NewEngine(dev)
		if err != nil {
			return err
		}
		pipe := dev.NewPipeline(2)
		for base := 0; base < pipelineItems; base += chunk {
			end := base + chunk
			if end > pipelineItems {
				end = pipelineItems
			}
			pipe.Begin()
			_, mulErr := eng.ModMulVec(a[base:end], b[base:end], m)
			pipe.End()
			if mulErr != nil {
				return mulErr
			}
		}
		pipe.Close()
		st := dev.Stats()
		row := pipelineRow{
			Chunk:       chunk,
			Chunks:      st.StreamChunks,
			SeqSimNs:    int64(st.SimStreamSeqTime),
			StreamSimNs: int64(st.SimStreamTime),
			Speedup:     float64(baseline) / float64(st.SimStreamTime),
		}
		report.Sweep = append(report.Sweep, row)
		if row.Speedup > report.Best.Speedup {
			report.Best = row
		}
		fmt.Fprintf(w, "%8d %8d %14s %14s %8.2fx\n", row.Chunk, row.Chunks,
			fmtDur(st.SimStreamSeqTime), fmtDur(st.SimStreamTime), row.Speedup)
	}

	round, err := r.pipelineRound(w, keyBits, devCfg)
	if err != nil {
		return err
	}
	report.Round = round

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(pipelineJSON, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nbest chunk %d: %.2fx; wrote %s\n", report.Best.Chunk, report.Best.Speedup, pipelineJSON)
	return nil
}

// pipelineRound runs one secure-aggregation round with chunked uploads and
// reports the sequential vs overlapped end-to-end totals.
func (r *Runner) pipelineRound(w io.Writer, keyBits int, devCfg gpu.Config) (pipelineRound, error) {
	const dim = 256
	chunk := r.cfg.Chunk
	if chunk <= 0 {
		chunk = 4
	}
	p := fl.NewProfile(fl.SystemFLBooster, keyBits, r.cfg.Parties)
	p.Device = devCfg
	p.Seed = r.cfg.Seed
	p.Chunk = chunk
	ctx, err := fl.NewContext(p)
	if err != nil {
		return pipelineRound{}, err
	}
	r.attachObs(ctx, fmt.Sprintf("pipeline-round-%d", keyBits))
	fed := fl.NewFederation(ctx)
	defer fed.Close()

	rng := mpint.NewRNG(r.cfg.Seed + 78)
	grads := make([][]float64, r.cfg.Parties)
	for c := range grads {
		grads[c] = make([]float64, dim)
		for i := range grads[c] {
			grads[c][i] = rng.Float64()*0.5 - 0.25
		}
	}
	if _, err := fed.SecureAggregate(grads); err != nil {
		return pipelineRound{}, err
	}
	cs := ctx.Costs.Snapshot()
	round := pipelineRound{
		System:      string(fl.SystemFLBooster),
		KeyBits:     keyBits,
		Parties:     r.cfg.Parties,
		GradDim:     dim,
		Chunk:       chunk,
		Chunks:      cs.PipeChunks,
		SeqSimNs:    int64(cs.TotalSim()),
		StreamSimNs: int64(cs.TotalSimOverlapped()),
	}
	if round.StreamSimNs > 0 {
		round.Speedup = float64(round.SeqSimNs) / float64(round.StreamSimNs)
	}
	fmt.Fprintf(w, "\nRound (%d-bit, %d parties, dim %d, chunk %d): sequential %s, overlapped %s (%.2fx, %d chunks)\n",
		keyBits, r.cfg.Parties, dim, chunk,
		fmtDur(cs.TotalSim()), fmtDur(cs.TotalSimOverlapped()), round.Speedup, cs.PipeChunks)
	return round, nil
}
