package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"flbooster/internal/datasets"
	"flbooster/internal/fl"
	"flbooster/internal/gpu"
)

// microConfig keeps unit tests fast: tiny datasets, a 128-bit key, a small
// simulated device.
func microConfig() Config {
	cfg := Quick()
	cfg.Scale = 0.0002
	cfg.KeyBits = []int{128}
	cfg.Epochs = 2
	cfg.BatchSize = 32
	cfg.Device = gpu.RTX3090()
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := Quick().Validate(); err != nil {
		t.Fatalf("Quick config invalid: %v", err)
	}
	if err := Paper().Validate(); err != nil {
		t.Fatalf("Paper config invalid: %v", err)
	}
	bad := []Config{
		{},
		func() Config { c := Quick(); c.Scale = 2; return c }(),
		func() Config { c := Quick(); c.KeyBits = nil; return c }(),
		func() Config { c := Quick(); c.Parties = 1; return c }(),
		func() Config { c := Quick(); c.Epochs = 0; return c }(),
		func() Config { c := Quick(); c.BatchSize = 0; return c }(),
		func() Config { c := Quick(); c.NNHidden = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewRunner(Config{}); err == nil {
		t.Fatal("NewRunner should reject invalid configs")
	}
}

func TestRunnerCachesContextsAndData(t *testing.T) {
	r, err := NewRunner(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	c1, err := r.context(fl.SystemFATE, 128)
	if err != nil {
		t.Fatal(err)
	}
	c1.Costs.AddOther(123)
	c2, err := r.context(fl.SystemFATE, 128)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("context not cached")
	}
	if c2.Costs.TotalSim() != 0 {
		t.Fatal("cached context costs not reset")
	}
	d1, err := r.dataset(datasets.RCV1Spec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.dataset(datasets.RCV1Spec)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("dataset not cached")
	}
}

func TestBuildModelNames(t *testing.T) {
	r, err := NewRunner(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := r.dataset(datasets.SyntheticSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ModelNames() {
		m, err := r.buildModel(name, nil, ds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
	}
	if _, err := r.buildModel("nope", nil, ds); err == nil {
		t.Fatal("unknown model should fail")
	}
}

func TestRunEpochsPopulatesResult(t *testing.T) {
	r, err := NewRunner(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.runEpochs("Homo LR", fl.SystemFLBooster, 128, datasets.SyntheticSpec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Costs.HEOps == 0 || res.Costs.CommBytes == 0 || res.Loss <= 0 {
		t.Fatalf("incomplete result: %+v", res)
	}
	if res.Utilization <= 0 {
		t.Fatal("GPU profile should report utilization")
	}
}

func TestHeadlineOrderingHolds(t *testing.T) {
	// The reproduction's core claim at any scale: FLBooster beats HAFLO
	// beats FATE on modelled epoch time for the LR models.
	r, err := NewRunner(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	times := map[fl.System]float64{}
	for _, sys := range []fl.System{fl.SystemFATE, fl.SystemHAFLO, fl.SystemFLBooster} {
		res, err := r.runEpochs("Homo LR", sys, 128, datasets.RCV1Spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		times[sys] = res.Costs.TotalSim().Seconds()
	}
	if !(times[fl.SystemFLBooster] < times[fl.SystemHAFLO] && times[fl.SystemHAFLO] < times[fl.SystemFATE]) {
		t.Fatalf("ordering violated: %v", times)
	}
}

func TestAblationOrderingHolds(t *testing.T) {
	// Table V shape: the full system beats both ablations.
	r, err := NewRunner(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	times := map[fl.System]float64{}
	for _, sys := range []fl.System{fl.SystemFLBooster, fl.SystemNoGHE, fl.SystemNoBC} {
		res, err := r.runEpochs("Homo LR", sys, 128, datasets.RCV1Spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		times[sys] = res.Costs.TotalSim().Seconds()
	}
	if times[fl.SystemFLBooster] >= times[fl.SystemNoGHE] {
		t.Fatalf("removing GPU HE should slow the system: %v", times)
	}
	if times[fl.SystemFLBooster] >= times[fl.SystemNoBC] {
		t.Fatalf("removing batch compression should slow the system: %v", times)
	}
}

func TestAllExperimentsProduceRows(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness pass is slow")
	}
	r, err := NewRunner(microConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.All(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Fig. 1", "Table III", "Table IV", "Fig. 6", "Table V",
		"Fig. 7", "Table VI", "Fig. 8", "Table VII",
		"Homo LR", "Hetero LR", "Hetero SBT", "Hetero NN",
		"RCV1", "Avazu", "Synthetic", "FLBooster",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{{250, "250.0"}, {2.5, "2.50"}, {0.0042, "0.0042"}}
	for _, c := range cases {
		d := time.Duration(c.sec * float64(time.Second))
		if got := fmtDur(d); got != c.want {
			t.Errorf("fmtDur(%vs) = %q, want %q", c.sec, got, c.want)
		}
	}
}
