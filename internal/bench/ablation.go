package bench

import (
	"fmt"
	"io"
	"time"

	"flbooster/internal/fl"
	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// Ablation runs micro-ablations over the design decisions DESIGN.md §4
// calls out, beyond the paper's own Table V: the fine-grained resource
// manager, the Fig. 4 transfer/compute pipeline, the sliding-window width,
// and the limb-parallel Montgomery thread count.
func (r *Runner) Ablation(w io.Writer) error {
	if err := r.ablationResourceManager(w); err != nil {
		return err
	}
	if err := r.ablationPipeline(w); err != nil {
		return err
	}
	if err := r.ablationWindow(w); err != nil {
		return err
	}
	return r.ablationParMontThreads(w)
}

// ablationResourceManager compares fine vs coarse block-size selection at
// HE register pressures across key sizes (the mechanism behind Fig. 6).
func (r *Runner) ablationResourceManager(w io.Writer) error {
	header(w, "Ablation A — resource manager: occupancy at HE register loads")
	fmt.Fprintf(w, "%6s %8s %14s %14s %14s\n", "Key", "Regs/thr", "Coarse occ.", "Fine occ.", "Fine block")
	fine := gpu.NewResourceManager(r.cfg.Device, true)
	coarse := gpu.NewResourceManager(r.cfg.Device, false)
	for _, keyBits := range r.cfg.KeyBits {
		limbs := 2 * keyBits / 32 // HE kernels work mod n²
		regs := 24 + limbs
		if regs > 255 {
			regs = 255
		}
		cb := coarse.PickBlockSize(1<<20, regs, 0)
		fb := fine.PickBlockSize(1<<20, regs, 0)
		fmt.Fprintf(w, "%6d %8d %13.1f%% %13.1f%% %14d\n",
			keyBits, regs,
			coarse.Occupancy(cb, regs, 0)*100,
			fine.Occupancy(fb, regs, 0)*100, fb)
	}
	return nil
}

// ablationPipeline measures the modelled gain from overlapping PCIe
// transfers with kernels (§V / Fig. 4) on an encryption workload: the same
// batches streamed chunk-by-chunk through the double-buffered pipeline
// versus run back-to-back.
func (r *Runner) ablationPipeline(w io.Writer) error {
	header(w, "Ablation B — pipelined processing: sequential vs overlapped stages")
	fmt.Fprintf(w, "%6s %8s %6s %14s %14s %9s\n", "Key", "Batch", "Chunk", "Sequential", "Pipelined", "Gain")
	chunk := r.cfg.Chunk
	if chunk <= 0 {
		chunk = 8 // plaintexts per chunk when the CLI left streaming off
	}
	for _, keyBits := range r.cfg.KeyBits {
		ctx, err := r.context(fl.SystemFLBooster, keyBits)
		if err != nil {
			return err
		}
		saved := ctx.Profile.Chunk
		ctx.Profile.Chunk = chunk
		grads := make([]float64, 512)
		for i := range grads {
			grads[i] = 0.01 * float64(i%13)
		}
		// Several batches so the pipeline has something to overlap.
		for b := 0; b < 8; b++ {
			if _, err := ctx.EncryptGradients(grads); err != nil {
				ctx.Profile.Chunk = saved
				return err
			}
		}
		ctx.Profile.Chunk = saved
		st := ctx.Device.Stats()
		seq, pipe := st.SimTime(), st.SimTimeOverlapped()
		gain := 1.0
		if pipe > 0 {
			gain = float64(seq) / float64(pipe)
		}
		fmt.Fprintf(w, "%6d %8d %6d %14s %14s %8.2fx\n",
			keyBits, len(grads), chunk, fmtDur(seq), fmtDur(pipe), gain)
	}
	return nil
}

// ablationWindow sweeps the sliding-window width for modular
// exponentiation, the §IV-A3 design choice.
func (r *Runner) ablationWindow(w io.Writer) error {
	header(w, "Ablation C — sliding-window width for modular exponentiation")
	fmt.Fprintf(w, "%6s", "Key")
	widths := []uint{1, 2, 3, 4, 5, 6}
	for _, wd := range widths {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("w=%d", wd))
	}
	fmt.Fprintln(w)
	rng := mpint.NewRNG(r.cfg.Seed)
	for _, keyBits := range r.cfg.KeyBits {
		n := rng.RandBits(keyBits)
		n[0] |= 1
		m := mpint.NewMont(n)
		base := rng.RandBelow(n)
		e := rng.RandBits(keyBits)
		fmt.Fprintf(w, "%6d", keyBits)
		const reps = 3
		for _, wd := range widths {
			start := time.Now()
			for i := 0; i < reps; i++ {
				m.ExpWindow(base, e, wd)
			}
			fmt.Fprintf(w, " %12s", fmtDur(time.Since(start)/reps))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ablationParMontThreads sweeps the thread count of the limb-parallel
// Montgomery multiplication (Algorithm 2), measuring cooperative-kernel
// wall time per multiplication.
func (r *Runner) ablationParMontThreads(w io.Writer) error {
	header(w, "Ablation D — Algorithm 2 limb-parallel Montgomery, threads per multiplication")
	fmt.Fprintf(w, "%6s %8s %14s\n", "Key", "Threads", "Wall/mul")
	rng := mpint.NewRNG(r.cfg.Seed + 1)
	dev := gpu.MustNew(r.cfg.Device, true)
	for _, keyBits := range r.cfg.KeyBits {
		n := rng.RandBits(keyBits)
		n[0] |= 1
		m := mpint.NewMont(n)
		limbs := m.Limbs()
		a := make([]mpint.Nat, 16)
		b := make([]mpint.Nat, 16)
		for i := range a {
			a[i], b[i] = rng.RandBelow(n), rng.RandBelow(n)
		}
		for _, threads := range []int{1, 2, 4, 8, 16} {
			if limbs%threads != 0 {
				continue
			}
			pm, err := ghe.NewParMont(dev, m, threads)
			if err != nil {
				return err
			}
			start := time.Now()
			if _, err := pm.MulVec(a, b); err != nil {
				return err
			}
			per := time.Since(start) / time.Duration(len(a))
			fmt.Fprintf(w, "%6d %8d %14s\n", keyBits, threads, per)
		}
	}
	return nil
}
