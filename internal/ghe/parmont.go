package ghe

import (
	"fmt"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// ParMont executes the paper's Algorithm 2: a single Montgomery
// multiplication computed cooperatively by T threads of one block, each
// owning x = s/T contiguous limbs. Partial products accumulate into a
// shared-memory t vector; per-thread carry-outs propagate between segments
// via shared memory at block barriers — the "inter-thread communication" of
// §IV-A1 — and the conditional final subtraction runs after the last shift.
//
// This path exists for fidelity (it is differentially tested against the
// serial CIOS in mpint); the throughput-oriented vector kernels in engine.go
// instead parallelize across independent ciphertexts, which is how both the
// paper's system and this reproduction spend nearly all device time.
type ParMont struct {
	dev     *gpu.Device
	mont    *mpint.Mont
	threads int
	s       int // limbs per operand
	x       int // limbs per thread
}

// NewParMont prepares a parallel context for the modulus behind m, with T
// threads per multiplication. T must divide the limb count of the modulus.
func NewParMont(dev *gpu.Device, m *mpint.Mont, threads int) (*ParMont, error) {
	s := m.Limbs()
	if threads <= 0 || s%threads != 0 {
		return nil, fmt.Errorf("ghe: %d threads must evenly divide %d limbs", threads, s)
	}
	if threads > dev.Config().MaxThreadsPerSM {
		return nil, fmt.Errorf("ghe: %d threads exceed SM capacity %d", threads, dev.Config().MaxThreadsPerSM)
	}
	return &ParMont{dev: dev, mont: m, threads: threads, s: s, x: s / threads}, nil
}

// Shared memory layout for one block (sizes in 32-bit words):
//
//	[0 : s+2)          t, the running accumulator
//	[s+2 : s+2+T)      per-thread carry-outs
//	[s+2+T]            m_i, the reduction multiplier of the iteration
//	[s+2+T+1]          overflow flag for the final subtraction
const (
	tOff = 0
)

// MulVec computes a[i]*b[i]*R⁻¹ mod n for each pair, one cooperative block
// per pair. Inputs must be < n and in Montgomery form (as with mpint.Mont's
// Mul). Use MulOne to run a single multiplication.
func (p *ParMont) MulVec(a, b []mpint.Nat) ([]mpint.Nat, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("ghe: ParMont.MulVec length mismatch %d vs %d", len(a), len(b))
	}
	s, T := p.s, p.threads
	carryOff := s + 2
	miOff := carryOff + T
	sharedWords := miOff + 2

	n := p.mont.N().Words(s)
	n0inv := p.mont.N0Inv()
	out := make([]mpint.Nat, len(a))

	aw := make([][]mpint.Word, len(a))
	bw := make([][]mpint.Word, len(b))
	for i := range a {
		aw[i] = a[i].Words(s)
		bw[i] = b[i].Words(s)
	}

	err := p.dev.LaunchCooperative("parmont_cios", len(a), T, sharedWords, func(tc *gpu.ThreadCtx) {
		item := tc.Block
		lo := tc.Thread * p.x
		hi := lo + p.x
		t := tc.Shared[tOff : tOff+s+2]
		carries := tc.Shared[carryOff : carryOff+T]

		// Zero the accumulator cooperatively.
		for w := lo; w < hi; w++ {
			t[w] = 0
		}
		if tc.Thread == 0 {
			t[s], t[s+1] = 0, 0
		}
		tc.SyncThreads()

		for i := 0; i < s; i++ {
			bi := uint64(bw[item][i])

			// Phase 1: t += a · b_i, per-segment with carry-out.
			var carry uint64
			for w := lo; w < hi; w++ {
				pr := uint64(aw[item][w])*bi + uint64(t[w]) + carry
				t[w] = uint32(pr)
				carry = pr >> 32
			}
			carries[tc.Thread] = uint32(carry)
			tc.SyncThreads()
			// Thread 0 ripples segment carry-outs upward (cheap: T ≪ s).
			if tc.Thread == 0 {
				rippleCarries(t, carries, p.x, s)
			}
			tc.SyncThreads()

			// Phase 2: m_i = t[0] · n'₀ mod 2³² (thread 0 broadcasts).
			if tc.Thread == 0 {
				tc.Shared[miOff] = t[0] * n0inv
			}
			tc.SyncThreads()
			mi := uint64(tc.Shared[miOff])

			// Phase 3: t += m_i · n.
			carry = 0
			for w := lo; w < hi; w++ {
				pr := mi*uint64(n[w]) + uint64(t[w]) + carry
				t[w] = uint32(pr)
				carry = pr >> 32
			}
			carries[tc.Thread] = uint32(carry)
			tc.SyncThreads()
			if tc.Thread == 0 {
				rippleCarries(t, carries, p.x, s)
			}
			tc.SyncThreads()

			// Phase 4: shift t one word right. Each thread stages its new
			// segment locally so the write-back cannot race the reads.
			local := make([]uint32, p.x)
			for w := lo; w < hi; w++ {
				local[w-lo] = t[w+1]
			}
			tc.SyncThreads()
			copy(t[lo:hi], local)
			if tc.Thread == T-1 {
				t[s] = t[s+1]
				t[s+1] = 0
			}
			tc.SyncThreads()
		}

		// Final conditional subtraction (thread 0; once per multiplication).
		if tc.Thread == 0 {
			z := mpint.FromWords(t[:s])
			if t[s] != 0 || mpint.Cmp(z, p.mont.N()) >= 0 {
				zw := subModWords(t[:s], n)
				out[item] = mpint.FromWords(zw)
			} else {
				out[item] = z
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MulOne runs a single cooperative Montgomery multiplication.
func (p *ParMont) MulOne(a, b mpint.Nat) (mpint.Nat, error) {
	res, err := p.MulVec([]mpint.Nat{a}, []mpint.Nat{b})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// rippleCarries adds each segment's carry-out at the next segment's first
// word, propagating any cascade, and folds the final carry into t[s]/t[s+1].
func rippleCarries(t []uint32, carries []uint32, x, s int) {
	for th, c := range carries {
		if c == 0 {
			continue
		}
		pos := (th + 1) * x
		carry := uint64(c)
		for pos < s+2 && carry != 0 {
			sum := uint64(t[pos]) + carry
			t[pos] = uint32(sum)
			carry = sum >> 32
			pos++
		}
		carries[th] = 0
	}
}

// subModWords computes t - n over s-limb little-endian word slices, with the
// borrow-out cancelled by the implicit overflow limb.
func subModWords(t, n []uint32) []uint32 {
	z := make([]uint32, len(t))
	var borrow uint64
	for i := range t {
		d := uint64(t[i]) - uint64(n[i]) - borrow
		z[i] = uint32(d)
		borrow = (d >> 32) & 1
	}
	return z
}
