package ghe

import (
	"fmt"
	"time"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/obs"
)

// SimClock is an engine exposing a modelled online clock. A DeviceSet-backed
// engine has no single *gpu.Device for callers to read timings from; they
// read SimNow deltas instead.
type SimClock interface {
	// SimNow returns the engine's current modelled online time.
	SimNow() time.Duration
}

// OfflineEngine is an engine whose accrued cost can be reclassified as
// offline precompute (nonce-pool refills). BeginOffline marks the clocks;
// the returned func moves everything accrued since the mark into the
// precompute bill and returns the duration moved.
type OfflineEngine interface {
	BeginOffline() func() time.Duration
}

// ShardedEngine runs every vector HE op across a gpu.DeviceSet: the op
// splits into contiguous shards, each shard executes on its member device
// under the per-device checked discipline (retry + spot-verification, no
// host fallback — the scheduler owns failover), and shard results land in
// their exact positions of one output vector. Bit-exactness with a
// sequential engine holds by construction: every element is computed by the
// same kernel arithmetic at the same index, and nonce streams stay keyed by
// global item position, so no schedule — including mid-batch device death
// and work stealing — can change a single output bit.
type ShardedEngine struct {
	set  *gpu.DeviceSet
	subs []*CheckedEngine
	host *CPUEngine
}

// The sharded substrate is a drop-in streamed engine.
var (
	_ VectorEngine  = (*ShardedEngine)(nil)
	_ StreamEngine  = (*ShardedEngine)(nil)
	_ SimClock      = (*ShardedEngine)(nil)
	_ OfflineEngine = (*ShardedEngine)(nil)
)

// NewShardedEngine wraps a device set. Each member device gets its own
// CheckedEngine with the given policy, forced into NoHostFallback mode so a
// shard the device cannot serve surfaces its typed fault to the scheduler
// (which re-queues it) instead of silently degrading that device to host
// execution.
func NewShardedEngine(set *gpu.DeviceSet, cfg CheckedConfig) (*ShardedEngine, error) {
	if set == nil {
		return nil, fmt.Errorf("ghe: NewShardedEngine needs a device set")
	}
	cfg.NoHostFallback = true
	subs := make([]*CheckedEngine, set.Size())
	for i := range subs {
		eng, err := NewEngine(set.Device(i))
		if err != nil {
			return nil, err
		}
		sub, err := NewCheckedEngine(eng, cfg)
		if err != nil {
			return nil, err
		}
		subs[i] = sub
	}
	return &ShardedEngine{set: set, subs: subs, host: NewCPUEngine()}, nil
}

// Set exposes the underlying device set.
func (s *ShardedEngine) Set() *gpu.DeviceSet { return s.set }

// Sub exposes member device i's checked engine (tests and fault reports).
func (s *ShardedEngine) Sub(i int) *CheckedEngine { return s.subs[i] }

// StreamDevice implements StreamEngine. A sharded engine spans devices, so
// there is no single device for a caller-driven pipeline; callers skip
// per-chunk overlap scheduling and read the set's merged clock instead
// (SimNow), while each member device still pipelines internally.
func (s *ShardedEngine) StreamDevice() *gpu.Device { return nil }

// SimNow implements SimClock: the set's merged online clock.
func (s *ShardedEngine) SimNow() time.Duration { return s.set.SimTime() }

// BeginOffline implements OfflineEngine by bracketing the whole set.
func (s *ShardedEngine) BeginOffline() func() time.Duration { return s.set.BeginOffline() }

// Stats aggregates the checked-layer counters across the member engines.
func (s *ShardedEngine) Stats() CheckedStats {
	var agg CheckedStats
	for _, sub := range s.subs {
		st := sub.Stats()
		agg.Ops += st.Ops
		agg.LaunchFaults += st.LaunchFaults
		agg.Retries += st.Retries
		agg.VerifySamples += st.VerifySamples
		agg.VerifyFailures += st.VerifyFailures
		agg.FallbackOps += st.FallbackOps
		agg.FallbackWall += st.FallbackWall
		agg.BackoffSim += st.BackoffSim
		agg.FellBack = agg.FellBack || st.FellBack
	}
	return agg
}

// PublishMetrics publishes the aggregate checked-layer counters under
// prefix, plus per-device rows under prefix+".dev<i>".
func (s *ShardedEngine) PublishMetrics(reg *obs.Registry, prefix string) {
	agg := s.Stats()
	reg.Set(prefix+".ops", agg.Ops)
	reg.Set(prefix+".launch_faults", agg.LaunchFaults)
	reg.Set(prefix+".retries", agg.Retries)
	reg.Set(prefix+".verify_samples", agg.VerifySamples)
	reg.Set(prefix+".verify_failures", agg.VerifyFailures)
	reg.Set(prefix+".fallback_ops", agg.FallbackOps)
	reg.Set(prefix+".fallback_wall_ns", int64(agg.FallbackWall))
	reg.Set(prefix+".backoff_sim_ns", int64(agg.BackoffSim))
	fell := 0.0
	if agg.FellBack {
		fell = 1
	}
	reg.SetGauge(prefix+".fell_back", fell)
	for i, sub := range s.subs {
		sub.PublishMetrics(reg, fmt.Sprintf("%s.dev%d", prefix, i))
	}
}

// run shards one n-element vector op across the set. devOp serves a shard
// on one member's checked engine; hostOp is the all-devices-dead fallback.
// Both return exactly sh.Len() elements, copied into the shard's slots.
func (s *ShardedEngine) run(name string, n int, bytesPerItem int64,
	devOp func(sub *CheckedEngine, sh gpu.Shard) ([]mpint.Nat, error),
	hostOp func(sh gpu.Shard) ([]mpint.Nat, error)) ([]mpint.Nat, error) {
	out := make([]mpint.Nat, n)
	place := func(sh gpu.Shard, res []mpint.Nat) error {
		if len(res) != sh.Len() {
			return fmt.Errorf("ghe: sharded %s returned %d elements for %d-item shard", name, len(res), sh.Len())
		}
		copy(out[sh.Lo:sh.Hi], res)
		return nil
	}
	err := s.set.Run(gpu.ShardOp{
		Name:         name,
		Items:        n,
		BytesPerItem: bytesPerItem,
		Run: func(dev int, sh gpu.Shard) error {
			res, err := devOp(s.subs[dev], sh)
			if err != nil {
				return err
			}
			return place(sh, res)
		},
		Host: func(sh gpu.Shard) error {
			res, err := hostOp(sh)
			if err != nil {
				return err
			}
			return place(sh, res)
		},
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ModExpVec implements VectorEngine.
func (s *ShardedEngine) ModExpVec(bases []mpint.Nat, exp mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	return s.run("mod_exp_vec", len(bases), int64(m.Limbs())*4,
		func(sub *CheckedEngine, sh gpu.Shard) ([]mpint.Nat, error) {
			return sub.ModExpVec(bases[sh.Lo:sh.Hi], exp, m)
		},
		func(sh gpu.Shard) ([]mpint.Nat, error) {
			return s.host.ModExpVec(bases[sh.Lo:sh.Hi], exp, m)
		})
}

// ModExpVarVec implements VectorEngine.
func (s *ShardedEngine) ModExpVarVec(bases, exps []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	if len(bases) != len(exps) {
		return nil, fmt.Errorf("ghe: ModExpVarVec length mismatch %d vs %d", len(bases), len(exps))
	}
	return s.run("mod_exp_var_vec", len(bases), int64(m.Limbs())*8,
		func(sub *CheckedEngine, sh gpu.Shard) ([]mpint.Nat, error) {
			return sub.ModExpVarVec(bases[sh.Lo:sh.Hi], exps[sh.Lo:sh.Hi], m)
		},
		func(sh gpu.Shard) ([]mpint.Nat, error) {
			return s.host.ModExpVarVec(bases[sh.Lo:sh.Hi], exps[sh.Lo:sh.Hi], m)
		})
}

// FixedBaseExpVec implements VectorEngine. Each shard builds its member
// device's own comb table — the per-element results are canonical residues
// either way, so the shard boundary cannot change a bit.
func (s *ShardedEngine) FixedBaseExpVec(base mpint.Nat, exps []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	return s.run("fixed_base_exp_vec", len(exps), int64(m.Limbs())*4,
		func(sub *CheckedEngine, sh gpu.Shard) ([]mpint.Nat, error) {
			return sub.FixedBaseExpVec(base, exps[sh.Lo:sh.Hi], m)
		},
		func(sh gpu.Shard) ([]mpint.Nat, error) {
			return s.host.FixedBaseExpVec(base, exps[sh.Lo:sh.Hi], m)
		})
}

// ModMulVec implements VectorEngine.
func (s *ShardedEngine) ModMulVec(a, b []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("ghe: ModMulVec length mismatch %d vs %d", len(a), len(b))
	}
	return s.run("mod_mul_vec", len(a), int64(m.Limbs())*8,
		func(sub *CheckedEngine, sh gpu.Shard) ([]mpint.Nat, error) {
			return sub.ModMulVec(a[sh.Lo:sh.Hi], b[sh.Lo:sh.Hi], m)
		},
		func(sh gpu.Shard) ([]mpint.Nat, error) {
			return s.host.ModMulVec(a[sh.Lo:sh.Hi], b[sh.Lo:sh.Hi], m)
		})
}

// RandCoprimeVec implements VectorEngine. The stream stays keyed by global
// item index: shard [Lo, Hi) draws positions [Lo, Hi) of the (seed, m)
// stream no matter which device serves it, so pooled nonces are bit-exact
// across every D and every fault schedule.
func (s *ShardedEngine) RandCoprimeVec(n int, m mpint.Nat, seed uint64) ([]mpint.Nat, error) {
	return s.RandCoprimeRange(0, n, m, seed)
}

// RandCoprimeRange implements StreamEngine with the same global-position
// keying: shard [Lo, Hi) of a range at `base` covers stream positions
// [base+Lo, base+Hi).
func (s *ShardedEngine) RandCoprimeRange(base, n int, m mpint.Nat, seed uint64) ([]mpint.Nat, error) {
	if base < 0 {
		return nil, fmt.Errorf("ghe: RandCoprimeRange negative base %d", base)
	}
	return s.run("rand_coprime_vec", n, int64((m.BitLen()+31)/32)*4,
		func(sub *CheckedEngine, sh gpu.Shard) ([]mpint.Nat, error) {
			return sub.RandCoprimeRange(base+sh.Lo, sh.Len(), m, seed)
		},
		func(sh gpu.Shard) ([]mpint.Nat, error) {
			return s.host.RandCoprimeRange(base+sh.Lo, sh.Len(), m, seed)
		})
}
