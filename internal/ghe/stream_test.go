package ghe

import (
	"testing"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// chunkedCoprime concatenates RandCoprimeRange chunks of the given size.
func chunkedCoprime(t *testing.T, e StreamEngine, n, chunk int, m mpint.Nat, seed uint64) []mpint.Nat {
	t.Helper()
	var out []mpint.Nat
	for base := 0; base < n; base += chunk {
		c := chunk
		if base+c > n {
			c = n - base
		}
		part, err := e.RandCoprimeRange(base, c, m, seed)
		if err != nil {
			t.Fatalf("RandCoprimeRange(%d, %d): %v", base, c, err)
		}
		out = append(out, part...)
	}
	return out
}

// TestRandCoprimeRangeBitExact: for every substrate, any chunking of the
// nonce stream reproduces the sequential RandCoprimeVec values exactly.
func TestRandCoprimeRangeBitExact(t *testing.T) {
	r := mpint.NewRNG(41)
	n := r.RandPrime(96)
	const items, seed = 23, 1234
	engines := map[string]StreamEngine{
		"gpu":     testEngine(t),
		"checked": checkedEngine(t, gpu.FaultConfig{}, CheckedConfig{VerifyFraction: 1}),
		"cpu":     NewCPUEngine(),
	}
	want, err := NewCPUEngine().RandCoprimeVec(items, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range engines {
		seq, err := e.RandCoprimeVec(items, n, seed)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		for i := range want {
			if mpint.Cmp(seq[i], want[i]) != 0 {
				t.Fatalf("%s sequential[%d] differs from reference", name, i)
			}
		}
		for _, chunk := range []int{1, 4, 7, 23, 64} {
			got := chunkedCoprime(t, e, items, chunk, n, seed)
			for i := range want {
				if mpint.Cmp(got[i], want[i]) != 0 {
					t.Fatalf("%s chunk=%d: item %d differs from sequential", name, chunk, i)
				}
			}
		}
	}
}

// TestRandCoprimeRangeSurvivesRetry: a corrupting device with full
// verification forces mid-stream chunk retries, and the chunked stream is
// still bit-exact with the fault-free sequential path.
func TestRandCoprimeRangeSurvivesRetry(t *testing.T) {
	c := checkedEngine(t,
		gpu.FaultConfig{Seed: 3, CorruptProb: 0.5},
		CheckedConfig{MaxRetries: 8, VerifyFraction: 1})
	c.Device().SetHealthPolicy(gpu.HealthPolicy{DegradeAfter: 1, FailAfter: 1 << 30})
	r := mpint.NewRNG(42)
	n := r.RandPrime(96)
	const items, seed = 32, 777
	want, err := NewCPUEngine().RandCoprimeVec(items, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	got := chunkedCoprime(t, c, items, 8, n, seed)
	for i := range want {
		if mpint.Cmp(got[i], want[i]) != 0 {
			t.Fatalf("item %d differs after chunk retries", i)
		}
	}
	st := c.Stats()
	if st.Retries == 0 && st.FallbackOps == 0 {
		t.Fatalf("expected the corrupting device to force retries or host serves, got %+v", st)
	}
	if st.VerifyFailures == 0 {
		t.Fatalf("expected verification to catch at least one corruption, got %+v", st)
	}
}

// TestRandCoprimeRangeSurvivesFailover: the device dies mid-stream, later
// chunks fail over to the host, and the concatenated stream stays bit-exact.
func TestRandCoprimeRangeSurvivesFailover(t *testing.T) {
	c := checkedEngine(t,
		gpu.FaultConfig{Seed: 9, KillAtLaunch: 3},
		CheckedConfig{MaxRetries: 2, VerifyFraction: 1})
	r := mpint.NewRNG(43)
	n := r.RandPrime(96)
	const items, seed = 40, 555
	want, err := NewCPUEngine().RandCoprimeVec(items, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	got := chunkedCoprime(t, c, items, 8, n, seed)
	for i := range want {
		if mpint.Cmp(got[i], want[i]) != 0 {
			t.Fatalf("item %d differs across device failover", i)
		}
	}
	st := c.Stats()
	if !st.FellBack || st.FallbackOps == 0 {
		t.Fatalf("expected permanent failover mid-stream, got %+v", st)
	}
	if c.Device().Health() != gpu.DeviceFailed {
		t.Fatalf("device health = %s, want failed", c.Device().Health())
	}
}

func TestStreamDevice(t *testing.T) {
	eng := testEngine(t)
	if eng.StreamDevice() == nil {
		t.Fatal("device engine must expose its stream device")
	}
	c := checkedEngine(t, gpu.FaultConfig{}, CheckedConfig{})
	if c.StreamDevice() == nil {
		t.Fatal("checked engine must expose its stream device")
	}
	if NewCPUEngine().StreamDevice() != nil {
		t.Fatal("host engine must report no stream device")
	}
}

func TestRandCoprimeRangeRejectsBadArgs(t *testing.T) {
	eng := testEngine(t)
	n := mpint.FromUint64(101)
	if _, err := eng.RandCoprimeRange(-1, 4, n, 1); err == nil {
		t.Fatal("negative base accepted")
	}
	if _, err := eng.RandCoprimeRange(0, 4, mpint.One(), 1); err == nil {
		t.Fatal("modulus 1 accepted")
	}
	host := NewCPUEngine()
	if _, err := host.RandCoprimeRange(-1, 4, n, 1); err == nil {
		t.Fatal("host: negative base accepted")
	}
	if _, err := host.RandCoprimeRange(0, 4, mpint.One(), 1); err == nil {
		t.Fatal("host: modulus 1 accepted")
	}
}
