package ghe

import (
	"fmt"
	"sync/atomic"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// Per-item stream derivation, shared by the device kernels, the host
// fallback engine, and the CheckedEngine's verifier: each item owns an RNG
// seeded from (seed, item index), so results are reproducible,
// order-independent across the worker pool, and bit-exact between the
// device and host paths.

// randBitsAt is item i of a RandVec(bits, seed) stream.
func randBitsAt(seed uint64, i, bits int) mpint.Nat {
	return mpint.NewRNG(seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15).RandBits(bits)
}

// randCoprimeAt is item i of a RandCoprimeVec(m, seed) stream.
func randCoprimeAt(seed uint64, i int, m mpint.Nat) mpint.Nat {
	return mpint.NewRNG(seed ^ (uint64(i)+1)*0xD1B54A32D192ED03).RandCoprime(m)
}

// RandVec generates n random values with exactly `bits` significant bits on
// the device, one per-thread generator per item as the paper assigns a
// generator to each thread in a warp.
func (e *Engine) RandVec(n, bits int, seed uint64) ([]mpint.Nat, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("ghe: RandVec needs positive bit width, got %d", bits)
	}
	out := make([]mpint.Nat, n)
	kern := gpu.Kernel{
		Name:          "rand_vec",
		Items:         n,
		RegsPerThread: 16,
		WordOps:       int64((bits + 31) / 32),
		Poison:        poisonOut(out),
	}
	if _, err := e.dev.Launch(kern, func(i int) {
		out[i] = randBitsAt(seed, i, bits)
	}); err != nil {
		return nil, fmt.Errorf("ghe: RandVec: %w", err)
	}
	e.dev.CopyFromDevice(natBytes(n, (bits+31)/32))
	return out, nil
}

// RandCoprimeVec generates n values uniform in [1, m) and coprime with m —
// the r parameters of a batch of Paillier encryptions.
func (e *Engine) RandCoprimeVec(n int, m mpint.Nat, seed uint64) ([]mpint.Nat, error) {
	if m.IsZero() || m.IsOne() {
		return nil, fmt.Errorf("ghe: RandCoprimeVec modulus must be > 1")
	}
	out := make([]mpint.Nat, n)
	kern := gpu.Kernel{
		Name:          "rand_coprime_vec",
		Items:         n,
		RegsPerThread: 24,
		WordOps:       int64(4 * ((m.BitLen() + 31) / 32)),
		Poison:        poisonOut(out),
	}
	if _, err := e.dev.Launch(kern, func(i int) {
		out[i] = randCoprimeAt(seed, i, m)
	}); err != nil {
		return nil, fmt.Errorf("ghe: RandCoprimeVec: %w", err)
	}
	e.dev.CopyFromDevice(natBytes(n, (m.BitLen()+31)/32))
	return out, nil
}

// GeneratePrime searches for a `bits`-wide probable prime using one
// Miller–Rabin searcher per device thread; the first thread to find a prime
// wins. This is the key-generation path of §IV-A3.
func (e *Engine) GeneratePrime(bits int, seed uint64) (mpint.Nat, error) {
	if bits < 4 {
		return nil, fmt.Errorf("ghe: GeneratePrime width %d too small", bits)
	}
	searchers := e.dev.Config().SMs * 2
	var found atomic.Pointer[mpint.Nat]
	kern := gpu.Kernel{
		Name:          "gen_prime",
		Items:         searchers,
		RegsPerThread: regsForLimbs((bits + 31) / 32),
		// Expected candidates tested ≈ bits·ln2/searchers, each a modexp.
		WordOps:        modExpWordOps((bits+31)/32, bits),
		DivergentLanes: e.dev.Config().WarpSize - 1, // primality exits diverge
	}
	if _, err := e.dev.Launch(kern, func(i int) {
		rng := mpint.NewRNG(seed ^ (uint64(i)+1)*0xBF58476D1CE4E5B9)
		for attempt := 0; attempt < 1<<20; attempt++ {
			if found.Load() != nil {
				return
			}
			cand := rng.RandBits(bits)
			cand[0] |= 1
			if mpint.IsPrime(cand, rng) {
				found.CompareAndSwap(nil, &cand)
				return
			}
		}
	}); err != nil {
		return nil, fmt.Errorf("ghe: GeneratePrime: %w", err)
	}
	p := found.Load()
	if p == nil {
		return nil, fmt.Errorf("ghe: GeneratePrime found no prime (width %d)", bits)
	}
	e.dev.CopyFromDevice(natBytes(1, (bits+31)/32))
	return *p, nil
}

// GeneratePrimePair returns two distinct device-generated primes.
func (e *Engine) GeneratePrimePair(bits int, seed uint64) (p, q mpint.Nat, err error) {
	p, err = e.GeneratePrime(bits, seed)
	if err != nil {
		return nil, nil, err
	}
	for i := uint64(1); ; i++ {
		q, err = e.GeneratePrime(bits, seed+i*0x94D049BB133111EB)
		if err != nil {
			return nil, nil, err
		}
		if mpint.Cmp(p, q) != 0 {
			return p, q, nil
		}
	}
}
