package ghe

import (
	"testing"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

func testShardedEngine(t testing.TB, d int) *ShardedEngine {
	t.Helper()
	set, err := gpu.NewDeviceSet(gpu.SmallTestDevice(), true, d)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewShardedEngine(set, CheckedConfig{VerifyFraction: 0.2, VerifySeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sameVec(t *testing.T, tag string, got, want []mpint.Nat) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if mpint.Cmp(got[i], want[i]) != 0 {
			t.Fatalf("%s: element %d differs", tag, i)
		}
	}
}

// TestShardedMatchesSequentialEveryOp: every sharded vector op is bit-exact
// with the single-device engine across D ∈ {1,2,4,8}, lengths chosen to hit
// uneven shard splits and D > len.
func TestShardedMatchesSequentialEveryOp(t *testing.T) {
	r := mpint.NewRNG(5)
	nmod := r.RandPrime(128)
	m := mpint.NewMont(nmod)
	seq := testEngine(t)

	for _, d := range []int{1, 2, 4, 8} {
		for _, n := range []int{1, 3, 37} {
			sh := testShardedEngine(t, d)
			rr := mpint.NewRNG(9)
			bases := randVec(rr, n, nmod)
			exps := make([]mpint.Nat, n)
			for i := range exps {
				exps[i] = rr.RandBits(1 + rr.Intn(96))
			}
			exp := rr.RandBits(96)
			b2 := randVec(rr, n, nmod)

			want, err := seq.ModExpVec(bases, exp, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.ModExpVec(bases, exp, m)
			if err != nil {
				t.Fatalf("D=%d n=%d ModExpVec: %v", d, n, err)
			}
			sameVec(t, "mod_exp_vec", got, want)

			want, err = seq.ModExpVarVec(bases, exps, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err = sh.ModExpVarVec(bases, exps, m)
			if err != nil {
				t.Fatalf("D=%d n=%d ModExpVarVec: %v", d, n, err)
			}
			sameVec(t, "mod_exp_var_vec", got, want)

			want, err = seq.FixedBaseExpVec(bases[0], exps, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err = sh.FixedBaseExpVec(bases[0], exps, m)
			if err != nil {
				t.Fatalf("D=%d n=%d FixedBaseExpVec: %v", d, n, err)
			}
			sameVec(t, "fixed_base_exp_vec", got, want)

			want, err = seq.ModMulVec(bases, b2, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err = sh.ModMulVec(bases, b2, m)
			if err != nil {
				t.Fatalf("D=%d n=%d ModMulVec: %v", d, n, err)
			}
			sameVec(t, "mod_mul_vec", got, want)

			want, err = seq.RandCoprimeVec(n, nmod, 77)
			if err != nil {
				t.Fatal(err)
			}
			got, err = sh.RandCoprimeVec(n, nmod, 77)
			if err != nil {
				t.Fatalf("D=%d n=%d RandCoprimeVec: %v", d, n, err)
			}
			sameVec(t, "rand_coprime_vec", got, want)

			// Chunked nonce ranges stitch to the whole-batch stream no matter
			// the shard layout.
			lo, err := sh.RandCoprimeRange(0, n/2+1, nmod, 77)
			if err != nil {
				t.Fatal(err)
			}
			hi, err := sh.RandCoprimeRange(n/2+1, n-(n/2+1), nmod, 77)
			if err != nil {
				t.Fatal(err)
			}
			sameVec(t, "rand_coprime_range", append(lo, hi...), want)
		}
	}
}

// TestShardedMidBatchKill: a device that dies mid-batch loses its shards to
// healthy peers and the result stays bit-exact with the sequential engine.
func TestShardedMidBatchKill(t *testing.T) {
	r := mpint.NewRNG(6)
	nmod := r.RandPrime(128)
	m := mpint.NewMont(nmod)
	const n = 40
	bases := randVec(r, n, nmod)
	exp := r.RandBits(96)

	seq := testEngine(t)
	want, err := seq.ModExpVec(bases, exp, m)
	if err != nil {
		t.Fatal(err)
	}

	sh := testShardedEngine(t, 4)
	// Short backoff keeps the test fast; the scheduler's correctness must not
	// depend on the retry budget's timing.
	sh.Set().Device(2).SetFaultInjector(gpu.NewFaultInjector(gpu.FaultConfig{Seed: 3, KillAtLaunch: 1}))
	got, err := sh.ModExpVec(bases, exp, m)
	if err != nil {
		t.Fatalf("sharded op with dead device: %v", err)
	}
	sameVec(t, "mod_exp_vec under kill", got, want)

	st := sh.Set().Stats()
	if st.Steals == 0 {
		t.Fatalf("expected stolen shards, set stats %+v", st)
	}
	if cs := sh.Stats(); cs.LaunchFaults == 0 {
		t.Fatalf("checked layer should have observed the faults: %+v", cs)
	}
	// Subsequent ops skip the dead device entirely and still match.
	got2, err := sh.ModExpVec(bases, exp, m)
	if err != nil {
		t.Fatal(err)
	}
	sameVec(t, "mod_exp_vec after kill", got2, want)
}

// TestShardedAllDevicesDeadFallsBackToHost: killing the whole set routes the
// op through the CPU engine, still bit-exact.
func TestShardedAllDevicesDeadFallsBackToHost(t *testing.T) {
	r := mpint.NewRNG(7)
	nmod := r.RandPrime(96)
	m := mpint.NewMont(nmod)
	const n = 12
	bases := randVec(r, n, nmod)
	exp := r.RandBits(64)

	sh := testShardedEngine(t, 2)
	for i := 0; i < 2; i++ {
		sh.Set().Device(i).SetFaultInjector(gpu.NewFaultInjector(gpu.FaultConfig{Seed: uint64(i + 1), KillAtLaunch: 1}))
	}
	want, err := NewCPUEngine().ModExpVec(bases, exp, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.ModExpVec(bases, exp, m)
	if err != nil {
		t.Fatalf("host fallback: %v", err)
	}
	sameVec(t, "host fallback", got, want)
	if st := sh.Set().Stats(); st.HostShards == 0 {
		t.Fatalf("expected host-served shards: %+v", st)
	}
}

// TestCheckedNoHostFallbackSurfacesTypedError: the scheduler-facing mode
// must surface typed kernel errors instead of silently serving from the CPU.
func TestCheckedNoHostFallbackSurfacesTypedError(t *testing.T) {
	dev := gpu.MustNew(gpu.SmallTestDevice(), true)
	dev.SetFaultInjector(gpu.NewFaultInjector(gpu.FaultConfig{Seed: 1, KillAtLaunch: 1}))
	c := MustCheckedEngine(MustEngine(dev), CheckedConfig{NoHostFallback: true})
	r := mpint.NewRNG(8)
	nmod := r.RandPrime(96)
	m := mpint.NewMont(nmod)
	_, err := c.ModExpVec(randVec(r, 4, nmod), r.RandBits(32), m)
	if err == nil {
		t.Fatal("dead device with NoHostFallback must error")
	}
	if !gpu.IsKernelError(err) {
		t.Fatalf("want typed *gpu.KernelError, got %v", err)
	}
	if st := c.Stats(); st.FallbackOps != 0 {
		t.Fatalf("NoHostFallback must never serve from the host: %+v", st)
	}
	// The fellBack latch also surfaces typed, without touching the host.
	_, err = c.ModExpVec(randVec(r, 4, nmod), r.RandBits(32), m)
	if !gpu.IsKernelError(err) {
		t.Fatalf("latched failure must stay typed, got %v", err)
	}
}
