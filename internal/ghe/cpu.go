package ghe

import (
	"fmt"

	"flbooster/internal/mpint"
)

// VectorEngine is the vector interface of the GPU-HE layer as consumed by
// the Paillier backend: batched modular exponentiation, modular
// multiplication, and nonce generation. Engine (device), CheckedEngine
// (device + verification + retry + failover), and CPUEngine (pure host)
// all implement it, so callers degrade between substrates without code
// changes.
type VectorEngine interface {
	// ModExpVec computes bases[i]^exp mod m.N() for every i.
	ModExpVec(bases []mpint.Nat, exp mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error)
	// ModExpVarVec computes bases[i]^exps[i] mod m.N() for every i.
	ModExpVarVec(bases, exps []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error)
	// FixedBaseExpVec computes base^exps[i] mod m.N() for every i.
	FixedBaseExpVec(base mpint.Nat, exps []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error)
	// ModMulVec computes a[i]*b[i] mod m.N() for every i.
	ModMulVec(a, b []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error)
	// RandCoprimeVec generates n values uniform in [1, m) coprime with m.
	RandCoprimeVec(n int, m mpint.Nat, seed uint64) ([]mpint.Nat, error)
}

// Engine, CheckedEngine, and CPUEngine must stay interchangeable.
var (
	_ VectorEngine = (*Engine)(nil)
	_ VectorEngine = (*CheckedEngine)(nil)
	_ VectorEngine = (*CPUEngine)(nil)
)

// CPUEngine executes the vector interface serially on the host — the
// degraded-mode substrate a CheckedEngine fails over to when its device
// dies. Every method runs exactly the arithmetic of the matching device
// kernel (same mpint routines, same per-item stream derivation), so
// fallback results are bit-exact with healthy device results.
type CPUEngine struct{}

// NewCPUEngine returns the host engine.
func NewCPUEngine() *CPUEngine { return &CPUEngine{} }

// ModExpVec implements VectorEngine. The shared exponent's window schedule
// is recoded once, exactly like the device kernel.
func (*CPUEngine) ModExpVec(bases []mpint.Nat, exp mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	out := make([]mpint.Nat, len(bases))
	sched := mpint.CompileExpAuto(exp)
	for i := range bases {
		out[i] = m.ExpSched(bases[i], sched)
	}
	return out, nil
}

// ModExpVarVec implements VectorEngine.
func (*CPUEngine) ModExpVarVec(bases, exps []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	if len(bases) != len(exps) {
		return nil, fmt.Errorf("ghe: ModExpVarVec length mismatch %d vs %d", len(bases), len(exps))
	}
	out := make([]mpint.Nat, len(bases))
	for i := range bases {
		out[i] = m.Exp(bases[i], exps[i])
	}
	return out, nil
}

// FixedBaseExpVec implements VectorEngine through the same Lim–Lee comb the
// device kernel uses (same auto-height heuristic, same table), without
// replicating the base across the vector. Results stay bit-exact with the
// device path and with plain per-element Exp.
func (c *CPUEngine) FixedBaseExpVec(base mpint.Nat, exps []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	if len(exps) == 0 {
		return nil, nil
	}
	maxExpBits := 1
	for _, x := range exps {
		if b := x.BitLen(); b > maxExpBits {
			maxExpBits = b
		}
	}
	h := mpint.ChooseFixedBaseHeight(maxExpBits, len(exps))
	tbl := mpint.NewFixedBaseTable(m, base, maxExpBits, h)
	out := make([]mpint.Nat, len(exps))
	for i := range exps {
		out[i] = tbl.Exp(exps[i])
	}
	return out, nil
}

// ModMulVec implements VectorEngine.
func (*CPUEngine) ModMulVec(a, b []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("ghe: ModMulVec length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]mpint.Nat, len(a))
	for i := range a {
		out[i] = m.FromMont(m.Mul(m.ToMont(a[i]), m.ToMont(b[i])))
	}
	return out, nil
}

// RandCoprimeVec implements VectorEngine with the device kernel's exact
// per-item stream derivation.
func (*CPUEngine) RandCoprimeVec(n int, m mpint.Nat, seed uint64) ([]mpint.Nat, error) {
	if m.IsZero() || m.IsOne() {
		return nil, fmt.Errorf("ghe: RandCoprimeVec modulus must be > 1")
	}
	out := make([]mpint.Nat, n)
	for i := range out {
		out[i] = randCoprimeAt(seed, i, m)
	}
	return out, nil
}
