package ghe

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/obs"
)

// verifyPrime is the host-side verification modulus: device results are
// spot-checked by recomputing a sampled element on the host and comparing
// both values reduced mod this small prime. An injected single-item
// perturbation changes the residue with overwhelming probability, while the
// check itself stays a two-word reduction. Largest 32-bit prime.
const verifyPrime = 4294967291

// CheckedConfig parameterizes a CheckedEngine. The zero value gets sane
// defaults: 3 retries, 1ms base backoff capped at 64ms, verification off.
type CheckedConfig struct {
	// MaxRetries bounds re-executions of one vector op after device faults
	// or verification misses. Zero means the default of 3.
	MaxRetries int
	// Backoff is the base retry delay; attempt k waits Backoff<<k, capped at
	// BackoffCap. The wait is charged to the device's modelled clock
	// (Stats.SimFaultTime, an Eq. 10 degradation term), not slept on the
	// host, so degraded experiments report honest timings without running
	// slower than the faults they simulate.
	Backoff time.Duration
	// BackoffCap caps the exponential backoff.
	BackoffCap time.Duration
	// VerifyFraction is the fraction of result elements spot-verified per
	// op by host residue recomputation, in [0, 1]. Zero disables
	// verification — corrupted kernels then go undetected.
	VerifyFraction float64
	// VerifySeed drives the sampling of verified indices.
	VerifySeed uint64
	// NoHostFallback disables the CPU fallback entirely: an op that exhausts
	// its retry budget, or hits a Failed device, surfaces its typed
	// *gpu.KernelError instead of being served by the host. This is the mode
	// a DeviceSet member runs in — the shard scheduler owns failover, and a
	// per-device silent fallback would hide the fault from it.
	NoHostFallback bool
}

// withDefaults fills unset fields.
func (c CheckedConfig) withDefaults() CheckedConfig {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 64 * time.Millisecond
	}
	return c
}

// CheckedStats counts the checked layer's activity — the fault, retry, and
// fallback counters the benchmarks surface next to sim/wall timings.
type CheckedStats struct {
	// Ops is the number of vector operations issued.
	Ops int64
	// LaunchFaults counts failed device launch attempts observed.
	LaunchFaults int64
	// Retries counts re-executions after a fault or a verification miss.
	Retries int64
	// VerifySamples and VerifyFailures count residue spot-checks and the
	// corruptions they caught.
	VerifySamples  int64
	VerifyFailures int64
	// FallbackOps counts operations served by the host engine; FallbackWall
	// is the host time they took (degraded-mode cost, recorded separately).
	FallbackOps  int64
	FallbackWall time.Duration
	// BackoffSim is the simulated retry backoff charged to the device clock.
	BackoffSim time.Duration
	// FellBack reports the permanent failover latch: the device reached
	// Failed and every subsequent op runs on the host.
	FellBack bool
}

// CheckedEngine wraps a device Engine with the execution discipline a
// production GPU-HE deployment needs (DESIGN.md §7): typed launch failures
// are retried with capped exponential backoff, successful kernels are
// spot-verified by host residue checks, a device the health machine
// declares Failed is transparently replaced by the bit-exact CPUEngine, and
// every fault, retry, and fallback is counted.
type CheckedEngine struct {
	dev  *gpu.Device
	eng  *Engine
	host *CPUEngine
	cfg  CheckedConfig

	mu    sync.Mutex
	rng   *mpint.RNG
	stats CheckedStats
}

// NewCheckedEngine wraps e with the given policy.
func NewCheckedEngine(e *Engine, cfg CheckedConfig) (*CheckedEngine, error) {
	if e == nil {
		return nil, fmt.Errorf("ghe: NewCheckedEngine needs an engine")
	}
	cfg = cfg.withDefaults()
	return &CheckedEngine{
		dev:  e.Device(),
		eng:  e,
		host: NewCPUEngine(),
		cfg:  cfg,
		rng:  mpint.NewRNG(cfg.VerifySeed),
	}, nil
}

// MustCheckedEngine is NewCheckedEngine for known-good arguments; it panics
// on error. Intended for tests.
func MustCheckedEngine(e *Engine, cfg CheckedConfig) *CheckedEngine {
	c, err := NewCheckedEngine(e, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Device exposes the wrapped device.
func (c *CheckedEngine) Device() *gpu.Device { return c.dev }

// Stats returns a snapshot of the checked-layer counters.
func (c *CheckedEngine) Stats() CheckedStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// PublishMetrics snapshots the checked-layer counters into a metrics
// registry under the given prefix (DESIGN.md §9).
func (c *CheckedEngine) PublishMetrics(reg *obs.Registry, prefix string) {
	s := c.Stats()
	reg.Set(prefix+".ops", s.Ops)
	reg.Set(prefix+".launch_faults", s.LaunchFaults)
	reg.Set(prefix+".retries", s.Retries)
	reg.Set(prefix+".verify_samples", s.VerifySamples)
	reg.Set(prefix+".verify_failures", s.VerifyFailures)
	reg.Set(prefix+".fallback_ops", s.FallbackOps)
	reg.Set(prefix+".fallback_wall_ns", int64(s.FallbackWall))
	reg.Set(prefix+".backoff_sim_ns", int64(s.BackoffSim))
	ts := c.eng.TableStats()
	reg.Set(prefix+".table_builds", ts.Builds)
	reg.Set(prefix+".table_entries", ts.Entries)
	reg.Set(prefix+".table_ops", ts.Ops)
	fell := 0.0
	if s.FellBack {
		fell = 1
	}
	reg.SetGauge(prefix+".fell_back", fell)
}

// execute runs one vector op of n result elements under the checked
// discipline. gpuOp and hostOp run the op on the respective substrate;
// expect recomputes element i on the host for verification; got reads
// element i of the current attempt's result.
func (c *CheckedEngine) execute(op string, n int, gpuOp, hostOp func() error, expect, got func(i int) mpint.Nat) error {
	c.mu.Lock()
	c.stats.Ops++
	fellBack := c.stats.FellBack
	c.mu.Unlock()
	if fellBack {
		if c.cfg.NoHostFallback {
			return &gpu.KernelError{Kind: gpu.FaultDeviceFailed, Kernel: op}
		}
		return c.runHost(hostOp)
	}
	var lastKerr *gpu.KernelError
	for attempt := 0; ; attempt++ {
		err := gpuOp()
		if err != nil {
			// Only typed device failures are retryable; anything else is a
			// caller error (length mismatch, bad modulus) and surfaces as-is.
			var kerr *gpu.KernelError
			if !errors.As(err, &kerr) {
				return err
			}
			lastKerr = kerr
			c.mu.Lock()
			c.stats.LaunchFaults++
			c.mu.Unlock()
		} else if c.spotCheck(n, expect, got) {
			return nil
		} else {
			// The kernel reported success with corrupted contents: feed the
			// detection back into the device health machine and retry.
			c.dev.ReportFailure(op, gpu.FaultCorrupt)
			lastKerr = &gpu.KernelError{Kind: gpu.FaultCorrupt, Kernel: op}
		}
		if c.dev.Health() == gpu.DeviceFailed {
			c.mu.Lock()
			c.stats.FellBack = true
			c.mu.Unlock()
			if c.cfg.NoHostFallback {
				return lastKerr
			}
			return c.runHost(hostOp)
		}
		if attempt >= c.cfg.MaxRetries {
			// Retry budget spent without the device being declared dead: serve
			// this op from the host but keep the device in rotation — unless
			// failover belongs to the layer above.
			if c.cfg.NoHostFallback {
				return lastKerr
			}
			return c.runHost(hostOp)
		}
		backoff := c.cfg.Backoff << uint(attempt)
		if backoff > c.cfg.BackoffCap {
			backoff = c.cfg.BackoffCap
		}
		c.dev.ChargeFaultTime(backoff)
		c.mu.Lock()
		c.stats.Retries++
		c.stats.BackoffSim += backoff
		c.mu.Unlock()
	}
}

// runHost executes the op on the host engine, charging the wall time to the
// device's modelled clock so degraded rounds report their true cost.
func (c *CheckedEngine) runHost(hostOp func() error) error {
	start := time.Now()
	err := hostOp()
	wall := time.Since(start)
	c.dev.ChargeFaultTime(wall)
	c.mu.Lock()
	c.stats.FallbackOps++
	c.stats.FallbackWall += wall
	c.mu.Unlock()
	return err
}

// spotCheck verifies ceil(VerifyFraction·n) sampled elements by residue
// comparison against a host recomputation. Indices are sampled without
// replacement, so the checked count matches the documented fraction and
// VerifyFraction=1 deterministically checks every element. It reports
// whether the result passed (vacuously true with verification off).
func (c *CheckedEngine) spotCheck(n int, expect, got func(i int) mpint.Nat) bool {
	if c.cfg.VerifyFraction <= 0 || n == 0 || expect == nil {
		return true
	}
	samples := int(float64(n)*c.cfg.VerifyFraction + 0.999999)
	if samples < 1 {
		samples = 1
	}
	if samples > n {
		samples = n
	}
	p := mpint.FromUint64(verifyPrime)
	for _, i := range c.sampleIndices(n, samples) {
		c.mu.Lock()
		c.stats.VerifySamples++
		c.mu.Unlock()
		if mpint.Cmp(mpint.Mod(got(i), p), mpint.Mod(expect(i), p)) != 0 {
			c.mu.Lock()
			c.stats.VerifyFailures++
			c.mu.Unlock()
			return false
		}
	}
	return true
}

// sampleIndices picks `samples` distinct indices in [0, n). A full scan
// consumes no random draws; a partial one is a partial Fisher–Yates
// shuffle, so no index is checked twice within one attempt.
func (c *CheckedEngine) sampleIndices(n, samples int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if samples >= n {
		return idx
	}
	c.mu.Lock()
	for s := 0; s < samples; s++ {
		j := s + c.rng.Intn(n-s)
		idx[s], idx[j] = idx[j], idx[s]
	}
	c.mu.Unlock()
	return idx[:samples]
}

// ModExpVec implements VectorEngine.
func (c *CheckedEngine) ModExpVec(bases []mpint.Nat, exp mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	var out []mpint.Nat
	err := c.execute("mod_exp_vec", len(bases),
		func() (err error) { out, err = c.eng.ModExpVec(bases, exp, m); return },
		func() (err error) { out, err = c.host.ModExpVec(bases, exp, m); return },
		func(i int) mpint.Nat { return m.Exp(bases[i], exp) },
		func(i int) mpint.Nat { return out[i] })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ModExpVarVec implements VectorEngine.
func (c *CheckedEngine) ModExpVarVec(bases, exps []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	var out []mpint.Nat
	err := c.execute("mod_exp_var_vec", len(bases),
		func() (err error) { out, err = c.eng.ModExpVarVec(bases, exps, m); return },
		func() (err error) { out, err = c.host.ModExpVarVec(bases, exps, m); return },
		func(i int) mpint.Nat { return m.Exp(bases[i], exps[i]) },
		func(i int) mpint.Nat { return out[i] })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FixedBaseExpVec implements VectorEngine. Verification recomputes sampled
// elements through the generic sliding window — a path independent of the
// comb table, so a corrupted table entry (which would skew every element it
// feeds) cannot also corrupt the check.
func (c *CheckedEngine) FixedBaseExpVec(base mpint.Nat, exps []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	var out []mpint.Nat
	err := c.execute("fixed_base_exp_vec", len(exps),
		func() (err error) { out, err = c.eng.FixedBaseExpVec(base, exps, m); return },
		func() (err error) { out, err = c.host.FixedBaseExpVec(base, exps, m); return },
		func(i int) mpint.Nat { return m.Exp(base, exps[i]) },
		func(i int) mpint.Nat { return out[i] })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ModMulVec implements VectorEngine. Verification recomputes sampled
// elements through the plain (non-Montgomery) path, so a systematic kernel
// error cannot also corrupt the check.
func (c *CheckedEngine) ModMulVec(a, b []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	var out []mpint.Nat
	err := c.execute("mod_mul_vec", len(a),
		func() (err error) { out, err = c.eng.ModMulVec(a, b, m); return },
		func() (err error) { out, err = c.host.ModMulVec(a, b, m); return },
		func(i int) mpint.Nat { return mpint.ModMul(a[i], b[i], m.N()) },
		func(i int) mpint.Nat { return out[i] })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RandCoprimeVec implements VectorEngine. The per-item streams are
// deterministic in (seed, index), so verification and fallback reproduce
// the device's exact values.
func (c *CheckedEngine) RandCoprimeVec(n int, m mpint.Nat, seed uint64) ([]mpint.Nat, error) {
	var out []mpint.Nat
	err := c.execute("rand_coprime_vec", n,
		func() (err error) { out, err = c.eng.RandCoprimeVec(n, m, seed); return },
		func() (err error) { out, err = c.host.RandCoprimeVec(n, m, seed); return },
		func(i int) mpint.Nat { return randCoprimeAt(seed, i, m) },
		func(i int) mpint.Nat { return out[i] })
	if err != nil {
		return nil, err
	}
	return out, nil
}
