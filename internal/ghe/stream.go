package ghe

import (
	"fmt"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// StreamEngine is the chunked extension of VectorEngine: a streamed caller
// splits one logical vector op into chunks and needs (a) nonce generation
// addressable by *global* stream position, so chunk results are bit-exact
// with the whole-batch path regardless of chunk boundaries, and (b) access
// to the device whose stream pipeline schedules the chunks (nil for host
// engines — the caller then skips overlap scheduling).
//
// The per-item derivation already keys every nonce on (seed, index), so
// chunking never re-draws or shifts a stream: items [base, base+n) of a
// chunked run are the same values the sequential RandCoprimeVec(seed)
// produces at those positions, including when the CheckedEngine retries a
// chunk or fails it over to the host.
type StreamEngine interface {
	VectorEngine
	// RandCoprimeRange generates items [base, base+n) of the
	// RandCoprimeVec(m, seed) stream.
	RandCoprimeRange(base, n int, m mpint.Nat, seed uint64) ([]mpint.Nat, error)
	// StreamDevice returns the device whose streams schedule chunked ops,
	// or nil when the engine has no device (pure host execution).
	StreamDevice() *gpu.Device
}

// All three substrates stream.
var (
	_ StreamEngine = (*Engine)(nil)
	_ StreamEngine = (*CheckedEngine)(nil)
	_ StreamEngine = (*CPUEngine)(nil)
)

// StreamDevice implements StreamEngine.
func (e *Engine) StreamDevice() *gpu.Device { return e.dev }

// RandCoprimeRange implements StreamEngine: the kernel is the same
// rand_coprime_vec launch as the whole-batch path, with each thread's
// generator keyed by its global stream position.
func (e *Engine) RandCoprimeRange(base, n int, m mpint.Nat, seed uint64) ([]mpint.Nat, error) {
	if base < 0 {
		return nil, fmt.Errorf("ghe: RandCoprimeRange negative base %d", base)
	}
	if m.IsZero() || m.IsOne() {
		return nil, fmt.Errorf("ghe: RandCoprimeRange modulus must be > 1")
	}
	out := make([]mpint.Nat, n)
	kern := gpu.Kernel{
		Name:          "rand_coprime_vec",
		Items:         n,
		RegsPerThread: 24,
		WordOps:       int64(4 * ((m.BitLen() + 31) / 32)),
		Poison:        poisonOut(out),
	}
	if _, err := e.dev.Launch(kern, func(i int) {
		out[i] = randCoprimeAt(seed, base+i, m)
	}); err != nil {
		return nil, fmt.Errorf("ghe: RandCoprimeRange: %w", err)
	}
	e.dev.CopyFromDevice(natBytes(n, (m.BitLen()+31)/32))
	return out, nil
}

// StreamDevice implements StreamEngine.
func (c *CheckedEngine) StreamDevice() *gpu.Device { return c.dev }

// RandCoprimeRange implements StreamEngine under the checked discipline:
// verification recomputes sampled items at their global positions, and a
// chunk the device cannot produce fails over to the host with the exact
// same values — the stream invariant survives per-chunk retry and failover.
func (c *CheckedEngine) RandCoprimeRange(base, n int, m mpint.Nat, seed uint64) ([]mpint.Nat, error) {
	var out []mpint.Nat
	err := c.execute("rand_coprime_vec", n,
		func() (err error) { out, err = c.eng.RandCoprimeRange(base, n, m, seed); return },
		func() (err error) { out, err = c.host.RandCoprimeRange(base, n, m, seed); return },
		func(i int) mpint.Nat { return randCoprimeAt(seed, base+i, m) },
		func(i int) mpint.Nat { return out[i] })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StreamDevice implements StreamEngine: the host engine has no device and
// therefore nothing to overlap.
func (*CPUEngine) StreamDevice() *gpu.Device { return nil }

// RandCoprimeRange implements StreamEngine with the same per-item stream
// derivation as the device kernel.
func (*CPUEngine) RandCoprimeRange(base, n int, m mpint.Nat, seed uint64) ([]mpint.Nat, error) {
	if base < 0 {
		return nil, fmt.Errorf("ghe: RandCoprimeRange negative base %d", base)
	}
	if m.IsZero() || m.IsOne() {
		return nil, fmt.Errorf("ghe: RandCoprimeRange modulus must be > 1")
	}
	out := make([]mpint.Nat, n)
	for i := range out {
		out[i] = randCoprimeAt(seed, base+i, m)
	}
	return out, nil
}
