package ghe

import (
	"testing"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// checkedEngine builds a CheckedEngine over a fresh small device with the
// given fault injection and checking policy.
func checkedEngine(t testing.TB, inject gpu.FaultConfig, cfg CheckedConfig) *CheckedEngine {
	t.Helper()
	dev := gpu.MustNew(gpu.SmallTestDevice(), true)
	if inject.Enabled() {
		dev.SetFaultInjector(gpu.NewFaultInjector(inject))
	}
	return MustCheckedEngine(MustEngine(dev), cfg)
}

func TestCPUEngineParityWithDevice(t *testing.T) {
	eng := testEngine(t)
	host := NewCPUEngine()
	r := mpint.NewRNG(7)
	n := r.RandPrime(96)
	m := mpint.NewMont(n)
	bases := randVec(r, 20, n)
	exps := randVec(r, 20, n)
	exp := r.RandBits(80)

	type pair struct {
		name     string
		dev, cpu func() ([]mpint.Nat, error)
	}
	for _, p := range []pair{
		{"ModExpVec",
			func() ([]mpint.Nat, error) { return eng.ModExpVec(bases, exp, m) },
			func() ([]mpint.Nat, error) { return host.ModExpVec(bases, exp, m) }},
		{"ModExpVarVec",
			func() ([]mpint.Nat, error) { return eng.ModExpVarVec(bases, exps, m) },
			func() ([]mpint.Nat, error) { return host.ModExpVarVec(bases, exps, m) }},
		{"FixedBaseExpVec",
			func() ([]mpint.Nat, error) { return eng.FixedBaseExpVec(bases[0], exps, m) },
			func() ([]mpint.Nat, error) { return host.FixedBaseExpVec(bases[0], exps, m) }},
		{"ModMulVec",
			func() ([]mpint.Nat, error) { return eng.ModMulVec(bases, exps, m) },
			func() ([]mpint.Nat, error) { return host.ModMulVec(bases, exps, m) }},
		{"RandCoprimeVec",
			func() ([]mpint.Nat, error) { return eng.RandCoprimeVec(20, n, 99) },
			func() ([]mpint.Nat, error) { return host.RandCoprimeVec(20, n, 99) }},
	} {
		dv, err := p.dev()
		if err != nil {
			t.Fatalf("%s device: %v", p.name, err)
		}
		cv, err := p.cpu()
		if err != nil {
			t.Fatalf("%s host: %v", p.name, err)
		}
		for i := range dv {
			if mpint.Cmp(dv[i], cv[i]) != 0 {
				t.Fatalf("%s[%d]: host fallback not bit-exact with device", p.name, i)
			}
		}
	}
}

// TestCheckedRetriesTransientAborts: launch aborts are retried with simulated
// backoff until a clean attempt lands, and the result matches the host.
func TestCheckedRetriesTransientAborts(t *testing.T) {
	c := checkedEngine(t,
		gpu.FaultConfig{Seed: 5, AbortProb: 0.4},
		CheckedConfig{MaxRetries: 8})
	// Keep the device from latching Failed so the retry path is exercised.
	c.Device().SetHealthPolicy(gpu.HealthPolicy{DegradeAfter: 1, FailAfter: 1 << 30})
	r := mpint.NewRNG(8)
	n := r.RandPrime(96)
	m := mpint.NewMont(n)
	bases := randVec(r, 16, n)
	exp := r.RandBits(64)
	want, _ := NewCPUEngine().ModExpVec(bases, exp, m)
	for op := 0; op < 10; op++ {
		got, err := c.ModExpVec(bases, exp, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if mpint.Cmp(got[i], want[i]) != 0 {
				t.Fatalf("op %d element %d wrong after retries", op, i)
			}
		}
	}
	st := c.Stats()
	if st.LaunchFaults == 0 || st.Retries == 0 || st.BackoffSim == 0 {
		t.Fatalf("expected observed faults and retries: %+v", st)
	}
	if c.Device().Stats().SimFaultTime < st.BackoffSim {
		t.Fatal("retry backoff not charged to the device clock")
	}
}

// TestCheckedCatchesCorruption: with every launch silently corrupted and full
// verification, the residue check catches each attempt, the health machine
// fails the device, and the op completes correctly on the host.
func TestCheckedCatchesCorruption(t *testing.T) {
	c := checkedEngine(t,
		gpu.FaultConfig{Seed: 3, CorruptProb: 1},
		CheckedConfig{VerifyFraction: 1, VerifySeed: 3})
	r := mpint.NewRNG(9)
	n := r.RandPrime(96)
	m := mpint.NewMont(n)
	bases := randVec(r, 12, n)
	exp := r.RandBits(64)
	want, _ := NewCPUEngine().ModExpVec(bases, exp, m)
	got, err := c.ModExpVec(bases, exp, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if mpint.Cmp(got[i], want[i]) != 0 {
			t.Fatalf("element %d still corrupted after fallback", i)
		}
	}
	st := c.Stats()
	if st.VerifyFailures == 0 {
		t.Fatalf("verification did not catch the corruption: %+v", st)
	}
	if st.FallbackOps == 0 {
		t.Fatalf("corrupted op was not served from the host: %+v", st)
	}
	// Silent corruption never latches Failed: each poisoned launch reports
	// success (resetting the streak) before verification reports the miss, so
	// the device oscillates Healthy↔Degraded and stays in rotation — the
	// retry budget, not the health machine, bounds the damage.
	if st.FellBack {
		t.Fatalf("corruption alone must not latch permanent failover: %+v", st)
	}
	if h := c.Device().Health(); h == gpu.DeviceFailed {
		t.Fatal("silent corruption should not latch the device Failed")
	}
	if c.Device().Stats().FaultCorruptions == 0 {
		t.Fatal("detected corruptions were not fed back into the device counters")
	}
}

// TestCheckedFullVerificationNeverMissesCorruption is the corruption-escape
// regression: with VerifyFraction=1 every element of every launch is
// checked, so across many corrupted launches no poisoned result may ever
// reach the caller. (With-replacement sampling used to miss a single
// corrupted item with probability ~(1-1/n)^n ≈ 37% per launch.)
func TestCheckedFullVerificationNeverMissesCorruption(t *testing.T) {
	c := checkedEngine(t,
		gpu.FaultConfig{Seed: 17, CorruptProb: 0.5},
		CheckedConfig{VerifyFraction: 1, VerifySeed: 17, MaxRetries: 8})
	// Keep the device in rotation so every op keeps exercising the GPU path.
	c.Device().SetHealthPolicy(gpu.HealthPolicy{DegradeAfter: 1, FailAfter: 1 << 30})
	r := mpint.NewRNG(18)
	n := r.RandPrime(96)
	m := mpint.NewMont(n)
	bases := randVec(r, 8, n)
	exp := r.RandBits(48)
	want, _ := NewCPUEngine().ModExpVec(bases, exp, m)
	for op := 0; op < 40; op++ {
		got, err := c.ModExpVec(bases, exp, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if mpint.Cmp(got[i], want[i]) != 0 {
				t.Fatalf("op %d element %d: corruption escaped full verification", op, i)
			}
		}
	}
	if st := c.Stats(); st.VerifyFailures == 0 {
		t.Fatalf("expected corrupted launches to be caught: %+v", st)
	}
}

// TestSampleIndicesWithoutReplacement: a partial fraction checks distinct
// indices, and a full fraction covers every index exactly once.
func TestSampleIndicesWithoutReplacement(t *testing.T) {
	c := checkedEngine(t, gpu.FaultConfig{}, CheckedConfig{VerifyFraction: 0.5, VerifySeed: 2})
	for _, tc := range []struct{ n, samples int }{
		{1, 1}, {8, 3}, {16, 8}, {16, 15}, {9, 9}, {5, 7},
	} {
		idx := c.sampleIndices(tc.n, tc.samples)
		wantLen := tc.samples
		if wantLen > tc.n {
			wantLen = tc.n
		}
		if len(idx) != wantLen {
			t.Fatalf("sampleIndices(%d, %d) returned %d indices, want %d",
				tc.n, tc.samples, len(idx), wantLen)
		}
		seen := make(map[int]bool, len(idx))
		for _, i := range idx {
			if i < 0 || i >= tc.n {
				t.Fatalf("sampleIndices(%d, %d) returned out-of-range index %d", tc.n, tc.samples, i)
			}
			if seen[i] {
				t.Fatalf("sampleIndices(%d, %d) repeated index %d", tc.n, tc.samples, i)
			}
			seen[i] = true
		}
	}
}

// TestCheckedFailoverBitExact is the kill-one-device criterion at the engine
// level: after the device dies, every op transparently runs on the host and
// the results are bit-exact with a healthy device.
func TestCheckedFailoverBitExact(t *testing.T) {
	clean := testEngine(t)
	c := checkedEngine(t, gpu.FaultConfig{Seed: 1, KillAtLaunch: 1}, CheckedConfig{})
	r := mpint.NewRNG(10)
	n := r.RandPrime(96)
	m := mpint.NewMont(n)
	bases := randVec(r, 16, n)
	exp := r.RandBits(72)

	wantExp, err := clean.ModExpVec(bases, exp, m)
	if err != nil {
		t.Fatal(err)
	}
	gotExp, err := c.ModExpVec(bases, exp, m)
	if err != nil {
		t.Fatal(err)
	}
	wantRnd, err := clean.RandCoprimeVec(16, n, 77)
	if err != nil {
		t.Fatal(err)
	}
	gotRnd, err := c.RandCoprimeVec(16, n, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantExp {
		if mpint.Cmp(gotExp[i], wantExp[i]) != 0 {
			t.Fatalf("ModExpVec[%d] fallback not bit-exact", i)
		}
		if mpint.Cmp(gotRnd[i], wantRnd[i]) != 0 {
			t.Fatalf("RandCoprimeVec[%d] fallback not bit-exact", i)
		}
	}
	st := c.Stats()
	if !st.FellBack || st.FallbackOps == 0 || st.FallbackWall <= 0 {
		t.Fatalf("failover latch not recorded: %+v", st)
	}
	if h := c.Device().Health(); h != gpu.DeviceFailed {
		t.Fatalf("killed device health %s, want failed", h)
	}
}

// TestCheckedStatsDeterministic: identical seeds produce the identical
// fault/retry/fallback history.
func TestCheckedStatsDeterministic(t *testing.T) {
	run := func(seed uint64) CheckedStats {
		c := checkedEngine(t,
			gpu.FaultConfig{Seed: seed, AbortProb: 0.3, CorruptProb: 0.3},
			CheckedConfig{VerifyFraction: 1, VerifySeed: seed, MaxRetries: 4})
		r := mpint.NewRNG(11)
		n := r.RandPrime(96)
		m := mpint.NewMont(n)
		bases := randVec(r, 10, n)
		exp := r.RandBits(48)
		for op := 0; op < 6; op++ {
			if _, err := c.ModExpVec(bases, exp, m); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats()
	}
	a, b := run(21), run(21)
	if a != b {
		t.Fatalf("checked stats diverged for one seed:\n%+v\n%+v", a, b)
	}
	if a.LaunchFaults == 0 && a.VerifyFailures == 0 {
		t.Fatalf("expected some fault activity: %+v", a)
	}
}

// TestCheckedPassesThroughCallerErrors: non-device errors (length mismatch)
// surface immediately without burning retries.
func TestCheckedPassesThroughCallerErrors(t *testing.T) {
	c := checkedEngine(t, gpu.FaultConfig{}, CheckedConfig{})
	r := mpint.NewRNG(12)
	n := r.RandPrime(64)
	m := mpint.NewMont(n)
	bases := randVec(r, 4, n)
	if _, err := c.ModExpVarVec(bases, bases[:2], m); err == nil {
		t.Fatal("length mismatch must fail")
	}
	st := c.Stats()
	if st.Retries != 0 || st.LaunchFaults != 0 || st.FallbackOps != 0 {
		t.Fatalf("caller error consumed fault machinery: %+v", st)
	}
}

func TestCheckedConstructor(t *testing.T) {
	if _, err := NewCheckedEngine(nil, CheckedConfig{}); err == nil {
		t.Fatal("nil engine must be rejected")
	}
	if _, err := NewEngine(nil); err == nil {
		t.Fatal("nil device must be rejected")
	}
}
