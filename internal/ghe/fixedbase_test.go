package ghe

import (
	"testing"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// TestFixedBaseExpVecMatchesVarVec pins the comb kernel against the old
// replicated-base path bit-for-bit, across heights.
func TestFixedBaseExpVecMatchesVarVec(t *testing.T) {
	r := mpint.NewRNG(0xFB)
	n := r.RandPrime(128)
	m := mpint.NewMont(n)
	base := r.RandBelow(n)
	exps := make([]mpint.Nat, 24)
	for i := range exps {
		exps[i] = r.RandBits(1 + r.Intn(128))
	}
	exps[0], exps[1] = mpint.Zero(), mpint.One()
	bases := make([]mpint.Nat, len(exps))
	for i := range bases {
		bases[i] = base
	}
	ref := testEngine(t)
	want, err := ref.ModExpVarVec(bases, exps, m)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h <= 8; h++ {
		e := testEngine(t)
		got, err := e.FixedBaseExpVecH(base, exps, m, h)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		for i := range want {
			if mpint.Cmp(got[i], want[i]) != 0 {
				t.Fatalf("h=%d element %d: comb diverges from replicated-base path", h, i)
			}
		}
	}
}

// TestFixedBaseExpVecCheaperThanReplication pins the cost-model direction:
// at equal work the comb kernel must charge less simulated compute than
// replicating the base through the variable-base kernel, and the table's
// H2D upload must appear in the transfer counters.
func TestFixedBaseExpVecCheaperThanReplication(t *testing.T) {
	r := mpint.NewRNG(0xFC)
	n := r.RandPrime(256)
	m := mpint.NewMont(n)
	base := r.RandBelow(n)
	exps := randVec(r, 64, n)
	bases := make([]mpint.Nat, len(exps))
	for i := range bases {
		bases[i] = base
	}

	old := testEngine(t)
	if _, err := old.ModExpVarVec(bases, exps, m); err != nil {
		t.Fatal(err)
	}
	comb := testEngine(t)
	if _, err := comb.FixedBaseExpVec(base, exps, m); err != nil {
		t.Fatal(err)
	}
	oldSt, combSt := old.Device().Stats(), comb.Device().Stats()
	if combSt.SimComputeTime >= oldSt.SimComputeTime {
		t.Errorf("comb compute %v should undercut replicated-base %v", combSt.SimComputeTime, oldSt.SimComputeTime)
	}
	ts := comb.TableStats()
	if ts.Builds != 1 || ts.Ops != int64(len(exps)) || ts.Entries == 0 {
		t.Errorf("table stats: %+v", ts)
	}
	// Table upload: the comb path must move more bytes up than the shared-
	// exponent layout alone (exps + base + 2^h entries).
	if combSt.BytesHostToDev <= natBytes(len(exps), m.Limbs()) {
		t.Errorf("table H2D transfer missing: %d bytes", combSt.BytesHostToDev)
	}
}

// TestFixedBaseExpVecEmpty: a zero-length vector builds nothing and charges
// nothing.
func TestFixedBaseExpVecEmpty(t *testing.T) {
	e := testEngine(t)
	out, err := e.FixedBaseExpVec(mpint.FromUint64(5), nil, mpint.NewMont(mpint.FromUint64(1000003)))
	if err != nil || out != nil {
		t.Fatalf("empty vector: out=%v err=%v", out, err)
	}
	if st := e.Device().Stats(); st.KernelLaunches != 0 {
		t.Errorf("empty vector launched %d kernels", st.KernelLaunches)
	}
}

// TestCheckedFixedBaseCatchesCorruption: an injected silent corruption on the
// comb kernel is caught by the sliding-window recomputation (independent of
// the table) and healed by retry, keeping results bit-exact with the host.
func TestCheckedFixedBaseCatchesCorruption(t *testing.T) {
	c := checkedEngine(t,
		gpu.FaultConfig{Seed: 11, CorruptProb: 0.5},
		CheckedConfig{MaxRetries: 12, VerifyFraction: 1})
	c.Device().SetHealthPolicy(gpu.HealthPolicy{DegradeAfter: 2, FailAfter: 1 << 30})
	r := mpint.NewRNG(0xFD)
	n := r.RandPrime(96)
	m := mpint.NewMont(n)
	base := r.RandBelow(n)
	exps := randVec(r, 12, n)
	got, err := c.FixedBaseExpVec(base, exps, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exps {
		if mpint.Cmp(got[i], m.Exp(base, exps[i])) != 0 {
			t.Fatalf("element %d survived corrupted", i)
		}
	}
	if st := c.Stats(); st.VerifyFailures == 0 {
		t.Skip("injector never corrupted the comb kernel at this seed")
	}
}

// BenchmarkFixedBaseVecComb vs BenchmarkFixedBaseVecReplicated measure the
// host-side gain of the shared table (sim-time gains are asserted in tests).
func BenchmarkFixedBaseVecReplicated(b *testing.B) { benchFixedBaseVec(b, false) }
func BenchmarkFixedBaseVecComb(b *testing.B)       { benchFixedBaseVec(b, true) }

func benchFixedBaseVec(b *testing.B, comb bool) {
	r := mpint.NewRNG(0xFE)
	n := r.RandPrime(512)
	m := mpint.NewMont(n)
	base := r.RandBelow(n)
	exps := randVec(r, 32, n)
	bases := make([]mpint.Nat, len(exps))
	for i := range bases {
		bases[i] = base
	}
	e := MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if comb {
			_, err = e.FixedBaseExpVec(base, exps, m)
		} else {
			_, err = e.ModExpVarVec(bases, exps, m)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
