// Package ghe is the GPU-HE layer of FLBooster (§IV-A of the paper): it
// lowers multi-precision modular arithmetic onto the gpu substrate as
// data-parallel kernels (one work item per ciphertext) and provides the
// faithful limb-parallel Montgomery multiplication of Algorithm 2, where the
// threads of one block cooperate on a single multiplication through shared
// memory and barriers.
package ghe

import "flbooster/internal/mpint"

// Cost model: kernel word-op counts charged to the simulated device clock
// (the β_gpu term of Eq. 10). One "word op" is a 32-bit multiply-add.

// montMulWordOps approximates the CIOS inner-loop work for a k-limb modulus:
// k iterations, each with two k-limb multiply-accumulate passes.
func montMulWordOps(k int) int64 { return int64(2 * k * (k + 1)) }

// modExpWordOps approximates sliding-window exponentiation: about one
// squaring per exponent bit plus one multiply per window, with ~1.2 as the
// aggregate window factor, all in units of Montgomery multiplications.
func modExpWordOps(k, expBits int) int64 {
	if expBits < 1 {
		expBits = 1
	}
	return int64(float64(expBits)*1.2) * montMulWordOps(k)
}

// fixedBaseExpWordOps is the per-item cost of one Lim–Lee comb evaluation at
// height h: ⌈expBits/h⌉ squarings plus at most as many table multiplies —
// the reduced multiply count the precomputed table buys over the ~1.2·expBits
// multiplies of the sliding window.
func fixedBaseExpWordOps(k, expBits, h int) int64 {
	if expBits < 1 {
		expBits = 1
	}
	return mpint.FixedBaseExpMuls(expBits, h) * montMulWordOps(k)
}

// fixedBaseTableWordOps is the one-off cost of building the comb table:
// (h−1)·⌈expBits/h⌉ squarings plus 2^h−h−1 products, amortized across the
// whole vector by charging it as a single-item launch.
func fixedBaseTableWordOps(k, expBits, h int) int64 {
	if expBits < 1 {
		expBits = 1
	}
	return mpint.FixedBaseBuildMuls(expBits, h) * montMulWordOps(k)
}

// regsForLimbs models a kernel's per-thread register demand as a function of
// operand size: the working set of CIOS holds the accumulator row plus
// pointers and carries. Larger keys need more registers, which is what
// degrades SM occupancy at 4096-bit keys in Fig. 6.
func regsForLimbs(k int) int {
	r := 24 + k
	if r > 255 {
		r = 255
	}
	return r
}
