package ghe

import (
	"fmt"
	"sync"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// Engine executes vectorized multi-precision modular arithmetic on a
// simulated GPU. All methods follow the pipeline of Fig. 4: account the
// host→device copy, launch a data-parallel kernel (one item per element),
// account the device→host copy, and return host-side results.
type Engine struct {
	dev *gpu.Device

	mu    sync.Mutex
	table TableStats
}

// TableStats counts the engine's fixed-base precomputation activity — the
// comb tables built for FixedBaseExpVec launches and the elements they
// served (DESIGN.md §10).
type TableStats struct {
	// Builds is the number of comb tables constructed (one per vector op).
	Builds int64
	// Entries is the total 2^h table entries built and shipped to the device.
	Entries int64
	// Ops is the number of elements evaluated through a comb table.
	Ops int64
}

// NewEngine wraps a device.
func NewEngine(dev *gpu.Device) (*Engine, error) {
	if dev == nil {
		return nil, fmt.Errorf("ghe: NewEngine needs a device")
	}
	return &Engine{dev: dev}, nil
}

// MustEngine is NewEngine for known-good devices; it panics on error.
// Intended for tests.
func MustEngine(dev *gpu.Device) *Engine {
	e, err := NewEngine(dev)
	if err != nil {
		panic(err)
	}
	return e
}

// Device exposes the underlying device (for stats and utilization readings).
func (e *Engine) Device() *gpu.Device { return e.dev }

// TableStats returns a snapshot of the fixed-base table counters.
func (e *Engine) TableStats() TableStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.table
}

// natBytes is the device-transfer size of a vector of k-limb values.
func natBytes(n, k int) int64 { return int64(n) * int64(k) * 4 }

// poisonOut is the per-launch poison callback handed to the device: an
// injected corruption flips the low bit of one item of the result vector,
// which only the CheckedEngine's residue verification can catch. The flip
// never widens the value's limb layout, so an undetected corruption stays a
// silent wrong value instead of crashing downstream consumers.
func poisonOut(out []mpint.Nat) func(int) {
	return func(i int) {
		if out[i].Bit(0) == 0 {
			out[i] = mpint.Add(out[i], mpint.One())
		} else {
			out[i] = mpint.Sub(out[i], mpint.One())
		}
	}
}

// ModExpVec computes bases[i]^exp mod m.N() for every i.
func (e *Engine) ModExpVec(bases []mpint.Nat, exp mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	k := m.Limbs()
	e.dev.CopyToDevice(natBytes(len(bases), k) + natBytes(1, k))
	out := make([]mpint.Nat, len(bases))
	kern := gpu.Kernel{
		Name:          "mod_exp_vec",
		Items:         len(bases),
		RegsPerThread: regsForLimbs(k),
		WordOps:       modExpWordOps(k, exp.BitLen()),
		Poison:        poisonOut(out),
	}
	// The exponent is shared by every element: recode its window schedule
	// once on the host and replay it per lane, instead of rescanning the
	// exponent bits in every thread.
	sched := mpint.CompileExpAuto(exp)
	if _, err := e.dev.Launch(kern, func(i int) {
		out[i] = m.ExpSched(bases[i], sched)
	}); err != nil {
		return nil, fmt.Errorf("ghe: ModExpVec: %w", err)
	}
	e.dev.CopyFromDevice(natBytes(len(bases), k))
	return out, nil
}

// ModExpVarVec computes bases[i]^exps[i] mod m.N() for every i. bases and
// exps must have equal length.
func (e *Engine) ModExpVarVec(bases, exps []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	if len(bases) != len(exps) {
		return nil, fmt.Errorf("ghe: ModExpVarVec length mismatch %d vs %d", len(bases), len(exps))
	}
	k := m.Limbs()
	maxExpBits := 0
	for _, x := range exps {
		if b := x.BitLen(); b > maxExpBits {
			maxExpBits = b
		}
	}
	e.dev.CopyToDevice(2 * natBytes(len(bases), k))
	out := make([]mpint.Nat, len(bases))
	kern := gpu.Kernel{
		Name:          "mod_exp_var_vec",
		Items:         len(bases),
		RegsPerThread: regsForLimbs(k),
		WordOps:       modExpWordOps(k, maxExpBits),
		// Variable exponents make warp lanes take different window paths.
		DivergentLanes: e.dev.Config().WarpSize / 2,
		Poison:         poisonOut(out),
	}
	if _, err := e.dev.Launch(kern, func(i int) {
		out[i] = m.Exp(bases[i], exps[i])
	}); err != nil {
		return nil, fmt.Errorf("ghe: ModExpVarVec: %w", err)
	}
	e.dev.CopyFromDevice(natBytes(len(bases), k))
	return out, nil
}

// FixedBaseExpVec computes base^exps[i] mod m.N() for every i — Paillier's
// r^n noise terms and fixed-generator commitments. Unlike the variable-base
// kernel, the base is shared: a Lim–Lee comb table is precomputed once at
// the height that minimizes total multiplies for the batch, uploaded to the
// device, and every element then costs ~⌈bits/h⌉ multiplies instead of
// ~1.2·bits (see internal/mpint/fixedbase.go and DESIGN.md §10).
func (e *Engine) FixedBaseExpVec(base mpint.Nat, exps []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	return e.FixedBaseExpVecH(base, exps, m, 0)
}

// FixedBaseExpVecH is FixedBaseExpVec with a caller-chosen comb height
// (h ≤ 0 auto-picks) — exposed for the heopt height-sweep benchmark.
func (e *Engine) FixedBaseExpVecH(base mpint.Nat, exps []mpint.Nat, m *mpint.Mont, h int) ([]mpint.Nat, error) {
	if len(exps) == 0 {
		return nil, nil
	}
	k := m.Limbs()
	maxExpBits := 1
	for _, x := range exps {
		if b := x.BitLen(); b > maxExpBits {
			maxExpBits = b
		}
	}
	if h <= 0 {
		h = mpint.ChooseFixedBaseHeight(maxExpBits, len(exps))
	}
	h = mpint.ClampFixedBaseHeight(h, maxExpBits)

	// Upload the exponent vector and the (single) base.
	e.dev.CopyToDevice(natBytes(len(exps), k) + natBytes(1, k))

	// The table build runs as a one-item launch so its reduced-but-real cost
	// lands on the simulated clock (and in the trace as a fixed_base_table
	// span), amortized across the whole vector.
	var tbl *mpint.FixedBaseTable
	build := gpu.Kernel{
		Name:          "fixed_base_table",
		Items:         1,
		RegsPerThread: regsForLimbs(k),
		WordOps:       fixedBaseTableWordOps(k, maxExpBits, h),
	}
	if _, err := e.dev.Launch(build, func(int) {
		tbl = mpint.NewFixedBaseTable(m, base, maxExpBits, h)
	}); err != nil {
		return nil, fmt.Errorf("ghe: FixedBaseExpVec table build: %w", err)
	}
	// The finished table ships to the device once: 2^h entries of k limbs.
	e.dev.CopyToDevice(natBytes(tbl.Entries(), k))

	out := make([]mpint.Nat, len(exps))
	kern := gpu.Kernel{
		Name:          "fixed_base_exp_vec",
		Items:         len(exps),
		RegsPerThread: regsForLimbs(k),
		WordOps:       fixedBaseExpWordOps(k, maxExpBits, h),
		// Different exponents select different comb columns per lane.
		DivergentLanes: e.dev.Config().WarpSize / 2,
		Poison:         poisonOut(out),
	}
	if _, err := e.dev.Launch(kern, func(i int) {
		out[i] = tbl.Exp(exps[i])
	}); err != nil {
		return nil, fmt.Errorf("ghe: FixedBaseExpVec: %w", err)
	}
	e.dev.CopyFromDevice(natBytes(len(exps), k))

	e.mu.Lock()
	e.table.Builds++
	e.table.Entries += int64(tbl.Entries())
	e.table.Ops += int64(len(exps))
	e.mu.Unlock()
	return out, nil
}

// ModMulVec computes a[i]*b[i] mod m.N() for every i.
func (e *Engine) ModMulVec(a, b []mpint.Nat, m *mpint.Mont) ([]mpint.Nat, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("ghe: ModMulVec length mismatch %d vs %d", len(a), len(b))
	}
	k := m.Limbs()
	e.dev.CopyToDevice(2 * natBytes(len(a), k))
	out := make([]mpint.Nat, len(a))
	kern := gpu.Kernel{
		Name:          "mod_mul_vec",
		Items:         len(a),
		RegsPerThread: regsForLimbs(k),
		WordOps:       3 * montMulWordOps(k), // to-Mont ×2 conversions + multiply
		Poison:        poisonOut(out),
	}
	if _, err := e.dev.Launch(kern, func(i int) {
		out[i] = m.FromMont(m.Mul(m.ToMont(a[i]), m.ToMont(b[i])))
	}); err != nil {
		return nil, fmt.Errorf("ghe: ModMulVec: %w", err)
	}
	e.dev.CopyFromDevice(natBytes(len(a), k))
	return out, nil
}

// elementwise launches a light arithmetic kernel shared by the Table-I
// vector APIs (add/sub/mul/div/mod).
func (e *Engine) elementwise(name string, n, limbs int, inputs int, out []mpint.Nat, fn func(i int)) error {
	e.dev.CopyToDevice(int64(inputs) * natBytes(n, limbs))
	kern := gpu.Kernel{
		Name:          name,
		Items:         n,
		RegsPerThread: regsForLimbs(limbs),
		WordOps:       int64(limbs + 1),
		Poison:        poisonOut(out),
	}
	if _, err := e.dev.Launch(kern, fn); err != nil {
		return fmt.Errorf("ghe: %s: %w", name, err)
	}
	e.dev.CopyFromDevice(natBytes(n, limbs))
	return nil
}

// maxLimbs returns the limb count of the widest element across the vectors.
func maxLimbs(vecs ...[]mpint.Nat) int {
	k := 1
	for _, v := range vecs {
		for _, x := range v {
			if l := (x.BitLen() + 31) / 32; l > k {
				k = l
			}
		}
	}
	return k
}

// AddVec computes a[i]+b[i] for every i.
func (e *Engine) AddVec(a, b []mpint.Nat) ([]mpint.Nat, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("ghe: AddVec length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]mpint.Nat, len(a))
	err := e.elementwise("add_vec", len(a), maxLimbs(a, b), 2, out, func(i int) {
		out[i] = mpint.Add(a[i], b[i])
	})
	return out, err
}

// SubVec computes a[i]-b[i] for every i; it fails if any element underflows.
func (e *Engine) SubVec(a, b []mpint.Nat) ([]mpint.Nat, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("ghe: SubVec length mismatch %d vs %d", len(a), len(b))
	}
	for i := range a {
		if mpint.Cmp(a[i], b[i]) < 0 {
			return nil, fmt.Errorf("ghe: SubVec underflow at index %d", i)
		}
	}
	out := make([]mpint.Nat, len(a))
	err := e.elementwise("sub_vec", len(a), maxLimbs(a, b), 2, out, func(i int) {
		out[i] = mpint.Sub(a[i], b[i])
	})
	return out, err
}

// MulVec computes a[i]*b[i] for every i.
func (e *Engine) MulVec(a, b []mpint.Nat) ([]mpint.Nat, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("ghe: MulVec length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]mpint.Nat, len(a))
	err := e.elementwise("mul_vec", len(a), maxLimbs(a, b), 2, out, func(i int) {
		out[i] = mpint.Mul(a[i], b[i])
	})
	return out, err
}

// DivVec computes a[i]/b[i] for every i; it fails on a zero divisor.
func (e *Engine) DivVec(a, b []mpint.Nat) ([]mpint.Nat, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("ghe: DivVec length mismatch %d vs %d", len(a), len(b))
	}
	for i := range b {
		if b[i].IsZero() {
			return nil, fmt.Errorf("ghe: DivVec division by zero at index %d", i)
		}
	}
	out := make([]mpint.Nat, len(a))
	err := e.elementwise("div_vec", len(a), maxLimbs(a, b), 2, out, func(i int) {
		out[i] = mpint.Div(a[i], b[i])
	})
	return out, err
}

// ModVec computes a[i] mod n for every i; n must be nonzero.
func (e *Engine) ModVec(a []mpint.Nat, n mpint.Nat) ([]mpint.Nat, error) {
	if n.IsZero() {
		return nil, fmt.Errorf("ghe: ModVec zero modulus")
	}
	out := make([]mpint.Nat, len(a))
	err := e.elementwise("mod_vec", len(a), maxLimbs(a), 1, out, func(i int) {
		out[i] = mpint.Mod(a[i], n)
	})
	return out, err
}
