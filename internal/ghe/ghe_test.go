package ghe

import (
	"testing"

	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

func testEngine(t testing.TB) *Engine {
	t.Helper()
	return MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
}

func randVec(r *mpint.RNG, n int, below mpint.Nat) []mpint.Nat {
	v := make([]mpint.Nat, n)
	for i := range v {
		v[i] = r.RandBelow(below)
	}
	return v
}

func TestModExpVecMatchesSerial(t *testing.T) {
	e := testEngine(t)
	r := mpint.NewRNG(1)
	n := r.RandPrime(128)
	m := mpint.NewMont(n)
	bases := randVec(r, 50, n)
	exp := r.RandBits(96)
	got, err := e.ModExpVec(bases, exp, m)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bases {
		if mpint.Cmp(got[i], m.Exp(b, exp)) != 0 {
			t.Fatalf("ModExpVec[%d] mismatch", i)
		}
	}
	st := e.Device().Stats()
	if st.BytesHostToDev == 0 || st.BytesDevToHost == 0 || st.SimComputeTime <= 0 {
		t.Fatalf("device accounting missing: %+v", st)
	}
}

func TestModExpVarVec(t *testing.T) {
	e := testEngine(t)
	r := mpint.NewRNG(2)
	n := r.RandPrime(96)
	m := mpint.NewMont(n)
	bases := randVec(r, 30, n)
	exps := make([]mpint.Nat, 30)
	for i := range exps {
		exps[i] = r.RandBits(1 + r.Intn(80))
	}
	got, err := e.ModExpVarVec(bases, exps, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bases {
		if mpint.Cmp(got[i], m.Exp(bases[i], exps[i])) != 0 {
			t.Fatalf("ModExpVarVec[%d] mismatch", i)
		}
	}
	if _, err := e.ModExpVarVec(bases, exps[:5], m); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestFixedBaseExpVec(t *testing.T) {
	e := testEngine(t)
	r := mpint.NewRNG(3)
	n := r.RandPrime(96)
	m := mpint.NewMont(n)
	base := r.RandBelow(n)
	exps := []mpint.Nat{mpint.Zero(), mpint.One(), r.RandBits(64)}
	got, err := e.FixedBaseExpVec(base, exps, m)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].IsOne() {
		t.Errorf("base^0 = %s", got[0])
	}
	if mpint.Cmp(got[1], mpint.Mod(base, n)) != 0 {
		t.Errorf("base^1 mismatch")
	}
	if mpint.Cmp(got[2], m.Exp(base, exps[2])) != 0 {
		t.Errorf("base^e mismatch")
	}
}

func TestModMulVec(t *testing.T) {
	e := testEngine(t)
	r := mpint.NewRNG(4)
	n := r.RandPrime(128)
	m := mpint.NewMont(n)
	a := randVec(r, 40, n)
	b := randVec(r, 40, n)
	got, err := e.ModMulVec(a, b, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		want := mpint.ModMul(a[i], b[i], n)
		if mpint.Cmp(got[i], want) != 0 {
			t.Fatalf("ModMulVec[%d] = %s, want %s", i, got[i], want)
		}
	}
}

func TestElementwiseVectorAPIs(t *testing.T) {
	e := testEngine(t)
	r := mpint.NewRNG(5)
	bound := r.RandBits(128)
	a := randVec(r, 25, bound)
	b := randVec(r, 25, bound)
	sum, err := e.AddVec(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := e.SubVec(sum, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if mpint.Cmp(diff[i], a[i]) != 0 {
			t.Fatalf("AddVec/SubVec round trip failed at %d", i)
		}
	}
	prod, err := e.MulVec(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if mpint.Cmp(prod[i], mpint.Mul(a[i], b[i])) != 0 {
			t.Fatalf("MulVec mismatch at %d", i)
		}
	}
	bnz := make([]mpint.Nat, len(b))
	for i := range b {
		bnz[i] = mpint.AddWord(b[i], 1)
	}
	quot, err := e.DivVec(prod, bnz)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if mpint.Cmp(quot[i], mpint.Div(prod[i], bnz[i])) != 0 {
			t.Fatalf("DivVec mismatch at %d", i)
		}
	}
	n := r.RandPrime(64)
	rem, err := e.ModVec(a, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if mpint.Cmp(rem[i], mpint.Mod(a[i], n)) != 0 {
			t.Fatalf("ModVec mismatch at %d", i)
		}
	}
}

func TestVectorAPIErrors(t *testing.T) {
	e := testEngine(t)
	one := []mpint.Nat{mpint.One()}
	two := []mpint.Nat{mpint.FromUint64(2)}
	if _, err := e.AddVec(one, nil); err == nil {
		t.Error("AddVec length mismatch should fail")
	}
	if _, err := e.SubVec(one, two); err == nil {
		t.Error("SubVec underflow should fail")
	}
	if _, err := e.DivVec(one, []mpint.Nat{mpint.Zero()}); err == nil {
		t.Error("DivVec by zero should fail")
	}
	if _, err := e.ModVec(one, mpint.Zero()); err == nil {
		t.Error("ModVec zero modulus should fail")
	}
	if _, err := e.MulVec(one, nil); err == nil {
		t.Error("MulVec length mismatch should fail")
	}
	if _, err := e.ModMulVec(one, nil, mpint.NewMont(mpint.FromUint64(13))); err == nil {
		t.Error("ModMulVec length mismatch should fail")
	}
}

func TestParMontMatchesSerialCIOS(t *testing.T) {
	dev := gpu.MustNew(gpu.SmallTestDevice(), true)
	r := mpint.NewRNG(6)
	for _, threads := range []int{1, 2, 4, 8} {
		n := r.RandBits(256) // 8 limbs
		n[0] |= 1
		m := mpint.NewMont(n)
		pm, err := NewParMont(dev, m, threads)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]mpint.Nat, 16)
		b := make([]mpint.Nat, 16)
		for i := range a {
			a[i] = r.RandBelow(n)
			b[i] = r.RandBelow(n)
		}
		got, err := pm.MulVec(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			want := m.Mul(a[i], b[i])
			if mpint.Cmp(got[i], want) != 0 {
				t.Fatalf("T=%d: parallel CIOS[%d] = %s, want %s", threads, i, got[i], want)
			}
		}
	}
}

func TestParMontSingle(t *testing.T) {
	dev := gpu.MustNew(gpu.SmallTestDevice(), true)
	r := mpint.NewRNG(7)
	n := r.RandBits(128)
	n[0] |= 1
	m := mpint.NewMont(n)
	pm, err := NewParMont(dev, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := r.RandBelow(n), r.RandBelow(n)
	got, err := pm.MulOne(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(got, m.Mul(a, b)) != 0 {
		t.Fatal("MulOne mismatch")
	}
}

func TestParMontExercisesFinalSubtraction(t *testing.T) {
	// Operands near n make the conditional subtraction path likely; run many
	// random pairs to cover both branches.
	dev := gpu.MustNew(gpu.SmallTestDevice(), true)
	r := mpint.NewRNG(8)
	n := r.RandBits(128)
	n[0] |= 1
	m := mpint.NewMont(n)
	pm, err := NewParMont(dev, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	nm1 := mpint.SubWord(n, 1)
	for i := 0; i < 50; i++ {
		a := mpint.Sub(n, mpint.AddWord(mpint.FromUint64(uint64(i)), 1))
		got, err := pm.MulOne(a, nm1)
		if err != nil {
			t.Fatal(err)
		}
		if mpint.Cmp(got, m.Mul(a, nm1)) != 0 {
			t.Fatalf("near-modulus case %d mismatch", i)
		}
	}
}

func TestParMontGeometryErrors(t *testing.T) {
	dev := gpu.MustNew(gpu.SmallTestDevice(), true)
	m := mpint.NewMont(mpint.NewRNG(9).RandPrime(96)) // 3 limbs
	if _, err := NewParMont(dev, m, 2); err == nil {
		t.Fatal("non-divisible thread count should fail")
	}
	if _, err := NewParMont(dev, m, 0); err == nil {
		t.Fatal("zero threads should fail")
	}
	pm, err := NewParMont(dev, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.MulVec([]mpint.Nat{mpint.One()}, nil); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestRandVecDeterministicAndSized(t *testing.T) {
	e := testEngine(t)
	v1, err := e.RandVec(20, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.RandVec(20, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v1 {
		if v1[i].BitLen() != 64 {
			t.Fatalf("RandVec[%d] has %d bits", i, v1[i].BitLen())
		}
		if mpint.Cmp(v1[i], v2[i]) != 0 {
			t.Fatal("RandVec not deterministic for equal seeds")
		}
	}
	if _, err := e.RandVec(1, 0, 1); err == nil {
		t.Fatal("zero width should fail")
	}
}

func TestRandCoprimeVec(t *testing.T) {
	e := testEngine(t)
	m := mpint.FromUint64(2 * 3 * 5 * 7 * 11)
	v, err := e.RandCoprimeVec(50, m, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if !mpint.GCD(x, m).IsOne() {
			t.Fatalf("element %d not coprime", i)
		}
	}
	if _, err := e.RandCoprimeVec(1, mpint.One(), 1); err == nil {
		t.Fatal("modulus 1 should fail")
	}
}

func TestGeneratePrimePair(t *testing.T) {
	e := testEngine(t)
	p, q, err := e.GeneratePrimePair(64, 11)
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(p, q) == 0 {
		t.Fatal("pair not distinct")
	}
	r := mpint.NewRNG(0)
	if !mpint.IsPrime(p, r) || !mpint.IsPrime(q, r) {
		t.Fatal("device-generated value is composite")
	}
	if p.BitLen() != 64 || q.BitLen() != 64 {
		t.Fatalf("widths %d, %d", p.BitLen(), q.BitLen())
	}
	if _, err := e.GeneratePrime(2, 1); err == nil {
		t.Fatal("tiny width should fail")
	}
}

func TestCostModelMonotonicity(t *testing.T) {
	if montMulWordOps(64) <= montMulWordOps(32) {
		t.Error("CIOS cost should grow with limb count")
	}
	if modExpWordOps(32, 2048) <= modExpWordOps(32, 1024) {
		t.Error("modexp cost should grow with exponent bits")
	}
	if modExpWordOps(32, 0) <= 0 {
		t.Error("degenerate exponent should still cost something")
	}
	if regsForLimbs(1000) != 255 {
		t.Error("register demand should clamp at the hardware limit")
	}
	if regsForLimbs(32) >= regsForLimbs(128) {
		t.Error("register demand should grow with limbs")
	}
}

func BenchmarkModExpVec512(b *testing.B) {
	e := MustEngine(gpu.MustNew(gpu.RTX3090(), true))
	r := mpint.NewRNG(20)
	n := r.RandBits(512)
	n[0] |= 1
	m := mpint.NewMont(n)
	bases := randVec(r, 256, n)
	exp := r.RandBits(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ModExpVec(bases, exp, m); err != nil {
			b.Fatal(err)
		}
	}
}
