package paillier

import (
	"testing"
	"time"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// streamEncrypt feeds ms through a session in chunks of the given size and
// concatenates the results, summing the reported sequential sim cost.
func streamEncrypt(t *testing.T, b StreamBackend, pk *PublicKey, ms []mpint.Nat, seed uint64, chunk int) ([]Ciphertext, time.Duration) {
	t.Helper()
	sess, err := b.BeginEncrypt(pk, seed)
	if err != nil {
		t.Fatalf("BeginEncrypt: %v", err)
	}
	defer sess.Close()
	var out []Ciphertext
	var sim time.Duration
	for base := 0; base < len(ms); base += chunk {
		end := base + chunk
		if end > len(ms) {
			end = len(ms)
		}
		cts, d, err := sess.Next(ms[base:end])
		if err != nil {
			t.Fatalf("Next(%d:%d): %v", base, end, err)
		}
		out = append(out, cts...)
		sim += d
	}
	return out, sim
}

func sameCiphertexts(t *testing.T, label string, a, b []Ciphertext) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if mpint.Cmp(a[i].C, b[i].C) != 0 {
			t.Fatalf("%s: ciphertext %d differs between streamed and sequential paths", label, i)
		}
	}
}

func plaintexts(n int, mod mpint.Nat) []mpint.Nat {
	rng := mpint.NewRNG(2024)
	ms := make([]mpint.Nat, n)
	for i := range ms {
		ms[i] = rng.RandBelow(mod)
	}
	return ms
}

// TestStreamEncryptBitExactCPU: chunked CPU encryption reproduces the
// serial EncryptVec ciphertexts for every chunk size.
func TestStreamEncryptBitExactCPU(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	ms := plaintexts(21, pk.N)
	const seed = 31
	want, err := CPUBackend{}.EncryptVec(pk, ms, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 4, 8, 21, 64} {
		got, sim := streamEncrypt(t, CPUBackend{}, pk, ms, seed, chunk)
		sameCiphertexts(t, "cpu", want, got)
		if sim != 0 {
			t.Fatalf("cpu session reported sim time %v", sim)
		}
	}
}

// TestStreamEncryptBitExactGPU: chunked device encryption reproduces
// EncryptVec, reports per-chunk sim cost, and records measured overlap on
// the device when the session closes.
func TestStreamEncryptBitExactGPU(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	ms := plaintexts(24, pk.N)
	const seed = 77

	dev := gpu.MustNew(gpu.SmallTestDevice(), true)
	b := MustGPUBackend(ghe.MustEngine(dev))
	want, err := b.EncryptVec(pk, ms, seed)
	if err != nil {
		t.Fatal(err)
	}
	seqStats := dev.Stats()
	if seqStats.StreamOps != 0 {
		t.Fatalf("whole-batch path must not register stream ops")
	}

	dev2 := gpu.MustNew(gpu.SmallTestDevice(), true)
	b2 := MustGPUBackend(ghe.MustEngine(dev2))
	got, sim := streamEncrypt(t, b2, pk, ms, seed, 8)
	sameCiphertexts(t, "gpu", want, got)
	if sim <= 0 {
		t.Fatalf("device session reported no sim cost")
	}
	st := dev2.Stats()
	if st.StreamOps != 1 || st.StreamChunks != 3 {
		t.Fatalf("stream counters ops=%d chunks=%d, want 1 and 3", st.StreamOps, st.StreamChunks)
	}
	if st.SimStreamTime <= 0 || st.SimStreamTime > st.SimStreamSeqTime {
		t.Fatalf("overlap %v outside (0, %v]", st.SimStreamTime, st.SimStreamSeqTime)
	}
	if ov := st.SimTimeOverlapped(); ov > st.SimTime() {
		t.Fatalf("overlapped total %v exceeds sequential %v", ov, st.SimTime())
	}
	// The session's reported per-chunk costs are the device's sequential
	// accrual for the streamed work.
	if sim != st.SimStreamSeqTime {
		t.Fatalf("session sim sum %v != device stream seq %v", sim, st.SimStreamSeqTime)
	}
	// Decrypts round-trip.
	dec, err := b2.DecryptVec(sk, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		if mpint.Cmp(dec[i], ms[i]) != 0 {
			t.Fatalf("roundtrip %d differs", i)
		}
	}
}

// TestStreamEncryptCheckedRetry: one mid-pipeline chunk hits a corrupting
// kernel, the checked layer retries it, and the streamed ciphertexts stay
// bit-exact with the fault-free sequential path.
func TestStreamEncryptCheckedRetry(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	ms := plaintexts(24, pk.N)
	const seed = 99

	clean := gpu.MustNew(gpu.SmallTestDevice(), true)
	want, err := MustGPUBackend(ghe.MustEngine(clean)).EncryptVec(pk, ms, seed)
	if err != nil {
		t.Fatal(err)
	}

	dev := gpu.MustNew(gpu.SmallTestDevice(), true)
	dev.SetFaultInjector(gpu.NewFaultInjector(gpu.FaultConfig{Seed: 11, CorruptProb: 0.3}))
	dev.SetHealthPolicy(gpu.HealthPolicy{DegradeAfter: 1, FailAfter: 1 << 30})
	ce := ghe.MustCheckedEngine(ghe.MustEngine(dev), ghe.CheckedConfig{MaxRetries: 8, VerifyFraction: 1})
	got, _ := streamEncrypt(t, MustGPUBackend(ce), pk, ms, seed, 6)
	sameCiphertexts(t, "checked-retry", want, got)
	st := ce.Stats()
	if st.VerifyFailures == 0 || st.Retries == 0 {
		t.Fatalf("expected mid-stream corruption retries, got %+v", st)
	}
}

// TestStreamEncryptCheckedFailover: the device is killed mid-stream, later
// chunks fail over to the host engine, and the ciphertexts are still
// bit-exact with the sequential path.
func TestStreamEncryptCheckedFailover(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	ms := plaintexts(24, pk.N)
	const seed = 55

	clean := gpu.MustNew(gpu.SmallTestDevice(), true)
	want, err := MustGPUBackend(ghe.MustEngine(clean)).EncryptVec(pk, ms, seed)
	if err != nil {
		t.Fatal(err)
	}

	dev := gpu.MustNew(gpu.SmallTestDevice(), true)
	// Kill after the first chunk's kernels so the stream breaks mid-flight.
	dev.SetFaultInjector(gpu.NewFaultInjector(gpu.FaultConfig{Seed: 1, KillAtLaunch: 4}))
	ce := ghe.MustCheckedEngine(ghe.MustEngine(dev), ghe.CheckedConfig{MaxRetries: 2, VerifyFraction: 1})
	got, _ := streamEncrypt(t, MustGPUBackend(ce), pk, ms, seed, 6)
	sameCiphertexts(t, "checked-failover", want, got)
	st := ce.Stats()
	if !st.FellBack {
		t.Fatalf("expected permanent failover, got %+v", st)
	}
}

// TestStreamEncryptHostEngine: a GPUBackend over the pure-host CPUEngine
// streams without a device — no pipeline, zero sim cost, same ciphertexts.
func TestStreamEncryptHostEngine(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	ms := plaintexts(10, pk.N)
	const seed = 7
	b := MustGPUBackend(ghe.NewCPUEngine())
	want, err := b.EncryptVec(pk, ms, seed)
	if err != nil {
		t.Fatal(err)
	}
	got, sim := streamEncrypt(t, b, pk, ms, seed, 3)
	sameCiphertexts(t, "host-engine", want, got)
	if sim != 0 {
		t.Fatalf("host engine session reported sim time %v", sim)
	}
}

func TestBeginEncryptRejectsNilKey(t *testing.T) {
	if _, err := (CPUBackend{}).BeginEncrypt(nil, 1); err == nil {
		t.Fatal("cpu: nil key accepted")
	}
	if _, err := MustGPUBackend(ghe.NewCPUEngine()).BeginEncrypt(nil, 1); err == nil {
		t.Fatal("gpu: nil key accepted")
	}
}
