package paillier

import (
	"sync"
	"testing"
	"testing/quick"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// keyCache holds one generated key per size so the 512/1024/2048 sweeps pay
// keygen once per test binary.
var keyCache sync.Map

func keyOfSize(t testing.TB, bits int) *PrivateKey {
	t.Helper()
	if sk, ok := keyCache.Load(bits); ok {
		return sk.(*PrivateKey)
	}
	sk, err := GenerateKey(mpint.NewRNG(uint64(bits)), bits)
	if err != nil {
		t.Fatal(err)
	}
	keyCache.Store(bits, sk)
	return sk
}

// vectorEngines builds the three substrates the bit-exactness criteria
// quantify over: raw device, checked device, pure host.
func vectorEngines(t testing.TB) map[string]ghe.VectorEngine {
	t.Helper()
	eng := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	ceng := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	checked, err := ghe.NewCheckedEngine(ceng, ghe.CheckedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]ghe.VectorEngine{
		"gpu":     eng,
		"checked": checked,
		"cpu":     ghe.NewCPUEngine(),
	}
}

// TestDecryptReducedMatchesClassic: the reduced-exponent CRT path and the
// full-λ textbook path must agree bit-for-bit on every valid ciphertext,
// across the paper's key sizes, and both must invert Encrypt.
func TestDecryptReducedMatchesClassic(t *testing.T) {
	for _, bits := range []int{512, 1024, 2048} {
		sk := keyOfSize(t, bits)
		rng := mpint.NewRNG(uint64(bits) + 1)
		for i := 0; i < 8; i++ {
			m := rng.RandBelow(sk.N)
			c, err := sk.Encrypt(m, rng)
			if err != nil {
				t.Fatal(err)
			}
			reduced, err := sk.Decrypt(c)
			if err != nil {
				t.Fatal(err)
			}
			classic, err := sk.DecryptClassic(c)
			if err != nil {
				t.Fatal(err)
			}
			if mpint.Cmp(reduced, classic) != 0 {
				t.Fatalf("%d bits: reduced CRT diverges from classic decrypt", bits)
			}
			if mpint.Cmp(reduced, m) != 0 {
				t.Fatalf("%d bits: decrypt did not invert encrypt", bits)
			}
		}
	}
}

// TestDecryptReducedClassicG: the hp/hq constants must also work for a
// random g ∈ Z*_{n²} (no n+1 shortcut anywhere in the derivation).
func TestDecryptReducedClassicG(t *testing.T) {
	sk, err := GenerateKeyClassic(mpint.NewRNG(31), 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := mpint.NewRNG(32)
	for i := 0; i < 10; i++ {
		m := rng.RandBelow(sk.N)
		c, err := sk.Encrypt(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		reduced, _ := sk.Decrypt(c)
		classic, _ := sk.DecryptClassic(c)
		if mpint.Cmp(reduced, classic) != 0 || mpint.Cmp(reduced, m) != 0 {
			t.Fatal("classic-g reduced decrypt diverges")
		}
	}
}

// TestPropertyDecryptReducedEquivalence quantifies reduced ≡ classic over
// random homomorphic combinations, not just fresh encryptions.
func TestPropertyDecryptReducedEquivalence(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(33)
	f := func(a, b uint64, k uint16) bool {
		ca, err := sk.Encrypt(mpint.FromUint64(a), rng)
		if err != nil {
			return false
		}
		cb, err := sk.Encrypt(mpint.FromUint64(b), rng)
		if err != nil {
			return false
		}
		c := sk.MulPlain(sk.Add(ca, cb), mpint.FromUint64(uint64(k)+1))
		reduced, err := sk.Decrypt(c)
		if err != nil {
			return false
		}
		classic, err := sk.DecryptClassic(c)
		if err != nil {
			return false
		}
		return mpint.Cmp(reduced, classic) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDecryptVecReducedAcrossEngines: the backend's two half-modulus
// kernels must agree with the host path on every engine substrate.
func TestDecryptVecReducedAcrossEngines(t *testing.T) {
	sk := keyOfSize(t, 512)
	rng := mpint.NewRNG(34)
	ms := plaintexts(10, sk.N)
	for name, eng := range vectorEngines(t) {
		t.Run(name, func(t *testing.T) {
			b := MustGPUBackend(eng)
			cs, err := b.EncryptVec(&sk.PublicKey, ms, rng.Uint64())
			if err != nil {
				t.Fatal(err)
			}
			got, err := b.DecryptVec(sk, cs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ms {
				want, err := sk.DecryptClassic(cs[i])
				if err != nil {
					t.Fatal(err)
				}
				if mpint.Cmp(got[i], want) != 0 || mpint.Cmp(got[i], ms[i]) != 0 {
					t.Fatalf("element %d: vector decrypt diverges", i)
				}
			}
		})
	}
}

// TestDecryptVecReducedCheaperSim pins the cost-model direction: two
// half-size-modulus kernels with half-length exponents must charge less
// simulated compute than the one full-λ kernel over n² they replace.
func TestDecryptVecReducedCheaperSim(t *testing.T) {
	sk := keyOfSize(t, 512)
	ms := plaintexts(16, sk.N)
	reduced := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	b := MustGPUBackend(reduced)
	cs, err := b.EncryptVec(&sk.PublicKey, ms, 77)
	if err != nil {
		t.Fatal(err)
	}
	encryptCompute := reduced.Device().Stats().SimComputeTime
	if _, err := b.DecryptVec(sk, cs); err != nil {
		t.Fatal(err)
	}
	reducedCompute := reduced.Device().Stats().SimComputeTime - encryptCompute

	classic := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	bases := make([]mpint.Nat, len(cs))
	for i := range cs {
		bases[i] = cs[i].C
	}
	if _, err := classic.ModExpVec(bases, sk.Lambda, sk.MontN2()); err != nil {
		t.Fatal(err)
	}
	classicCompute := classic.Device().Stats().SimComputeTime
	if reducedCompute >= classicCompute {
		t.Errorf("reduced CRT sim compute %v should undercut full-λ %v", reducedCompute, classicCompute)
	}
}

// TestPooledEncryptBitExact: with a prefilled pool, EncryptVec must return
// exactly the ciphertexts of the unpooled path and of per-element
// EncryptWithNonce over the engine's nonce stream — on all three engines.
func TestPooledEncryptBitExact(t *testing.T) {
	sk := keyOfSize(t, 512)
	ms := plaintexts(12, sk.N)
	const seed = 4242
	for name, eng := range vectorEngines(t) {
		t.Run(name, func(t *testing.T) {
			se := eng.(ghe.StreamEngine)
			plain := MustGPUBackend(eng)
			want, err := plain.EncryptVec(&sk.PublicKey, ms, seed)
			if err != nil {
				t.Fatal(err)
			}
			// Cross-check against the scalar API on the same stream.
			rs, err := se.RandCoprimeRange(0, len(ms), sk.N, seed)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ms {
				c, err := sk.EncryptWithNonce(ms[i], rs[i])
				if err != nil {
					t.Fatal(err)
				}
				if mpint.Cmp(c.C, want[i].C) != 0 {
					t.Fatalf("element %d: EncryptVec diverges from EncryptWithNonce", i)
				}
			}
			pool, err := NewNoncePool(&sk.PublicKey, se, seed)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pool.Prefill(len(ms)); err != nil {
				t.Fatal(err)
			}
			pooled := MustGPUBackend(eng)
			pooled.Pool = pool
			got, err := pooled.EncryptVec(&sk.PublicKey, ms, seed)
			if err != nil {
				t.Fatal(err)
			}
			sameCiphertexts(t, name+" pooled", got, want)
			st := pool.Stats()
			if st.Hits != int64(len(ms)) || st.Misses != 0 {
				t.Errorf("pool stats after full hit: %+v", st)
			}
		})
	}
}

// TestPooledEncryptPartialServe: a pool holding fewer terms than the batch
// serves what it has; the inline remainder continues the same stream, so the
// result stays bit-exact and the stats split hits/misses.
func TestPooledEncryptPartialServe(t *testing.T) {
	sk := keyOfSize(t, 512)
	ms := plaintexts(12, sk.N)
	const seed = 515
	eng := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	want, err := MustGPUBackend(eng).EncryptVec(&sk.PublicKey, ms, seed)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewNoncePool(&sk.PublicKey, eng, seed)
	if err != nil {
		t.Fatal(err)
	}
	pool.Chunk = 4
	if _, err := pool.Prefill(5); err != nil {
		t.Fatal(err)
	}
	b := MustGPUBackend(eng)
	b.Pool = pool
	got, err := b.EncryptVec(&sk.PublicKey, ms, seed)
	if err != nil {
		t.Fatal(err)
	}
	sameCiphertexts(t, "partial serve", got, want)
	st := pool.Stats()
	if st.Hits != 5 || st.Misses != 7 {
		t.Errorf("hits/misses = %d/%d, want 5/7", st.Hits, st.Misses)
	}
	// A second batch under the same seed restarts at stream position 0,
	// which the drained pool cannot serve — full miss, still bit-exact.
	again, err := b.EncryptVec(&sk.PublicKey, ms, seed)
	if err != nil {
		t.Fatal(err)
	}
	sameCiphertexts(t, "drained pool", again, want)
	if st := pool.Stats(); st.Misses != 7+int64(len(ms)) {
		t.Errorf("drained pool misses = %d, want %d", st.Misses, 7+len(ms))
	}
}

// TestPooledSessionBitExact: chunked encryption popping from the pool must
// concatenate to the whole-batch unpooled result.
func TestPooledSessionBitExact(t *testing.T) {
	sk := keyOfSize(t, 512)
	ms := plaintexts(10, sk.N)
	const seed = 616
	eng := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	want, err := MustGPUBackend(eng).EncryptVec(&sk.PublicKey, ms, seed)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewNoncePool(&sk.PublicKey, eng, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Prefill(len(ms)); err != nil {
		t.Fatal(err)
	}
	b := MustGPUBackend(eng)
	b.Pool = pool
	got, _ := streamEncrypt(t, b, &sk.PublicKey, ms, seed, 3)
	sameCiphertexts(t, "pooled session", got, want)
	if st := pool.Stats(); st.Hits != int64(len(ms)) {
		t.Errorf("session hits = %d, want %d", st.Hits, len(ms))
	}
}

// TestPoolFaultRetryKeepsIndicesAligned: refilling through a faulty checked
// engine retries mid-stream, but the global-index nonce stream makes the
// retried chunk land on the same positions — pooled ciphertexts stay
// bit-exact with a clean engine's unpooled ones.
func TestPoolFaultRetryKeepsIndicesAligned(t *testing.T) {
	sk := keyOfSize(t, 512)
	ms := plaintexts(12, sk.N)
	const seed = 717
	clean := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	want, err := MustGPUBackend(clean).EncryptVec(&sk.PublicKey, ms, seed)
	if err != nil {
		t.Fatal(err)
	}
	dev := gpu.MustNew(gpu.SmallTestDevice(), true)
	dev.SetFaultInjector(gpu.NewFaultInjector(gpu.FaultConfig{Seed: 9, AbortProb: 0.3}))
	dev.SetHealthPolicy(gpu.HealthPolicy{DegradeAfter: 1 << 30, FailAfter: 1 << 30})
	checked, err := ghe.NewCheckedEngine(ghe.MustEngine(dev), ghe.CheckedConfig{MaxRetries: 20})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewNoncePool(&sk.PublicKey, checked, seed)
	if err != nil {
		t.Fatal(err)
	}
	pool.Chunk = 3
	if _, err := pool.Prefill(len(ms)); err != nil {
		t.Fatal(err)
	}
	b := MustGPUBackend(checked)
	b.Pool = pool
	got, err := b.EncryptVec(&sk.PublicKey, ms, seed)
	if err != nil {
		t.Fatal(err)
	}
	sameCiphertexts(t, "faulty refill", got, want)
	if checked.Stats().Retries == 0 {
		t.Skip("injector never fired during refill at this seed")
	}
}

// TestPoolPrefillChargesPrecompute: refill work must move off the online
// SimTime() clock into SimPrecomputeTime, and a subsequent pooled encrypt
// must charge less online compute than an unpooled one.
func TestPoolPrefillChargesPrecompute(t *testing.T) {
	sk := keyOfSize(t, 512)
	ms := plaintexts(16, sk.N)
	const seed = 818

	eng := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	pool, err := NewNoncePool(&sk.PublicKey, eng, seed)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := pool.Prefill(len(ms))
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Device().Stats()
	if moved <= 0 || st.SimPrecomputeTime != moved {
		t.Fatalf("prefill moved %v, device precompute %v", moved, st.SimPrecomputeTime)
	}
	if st.SimTime() != 0 {
		t.Fatalf("prefill left %v on the online clock", st.SimTime())
	}
	b := MustGPUBackend(eng)
	b.Pool = pool
	if _, err := b.EncryptVec(&sk.PublicKey, ms, seed); err != nil {
		t.Fatal(err)
	}
	pooledOnline := eng.Device().Stats().SimTime()

	ref := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	if _, err := MustGPUBackend(ref).EncryptVec(&sk.PublicKey, ms, seed); err != nil {
		t.Fatal(err)
	}
	unpooledOnline := ref.Device().Stats().SimTime()
	if pooledOnline >= unpooledOnline {
		t.Errorf("pooled online %v should undercut unpooled %v", pooledOnline, unpooledOnline)
	}
}

// TestRerandomizeVecPreservesPlaintexts across both backends; the GPU
// backend draws its noise from the pool.
func TestRerandomizeVecPreservesPlaintexts(t *testing.T) {
	sk := keyOfSize(t, 512)
	ms := plaintexts(8, sk.N)
	eng := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	pool, err := NewNoncePool(&sk.PublicKey, eng, 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Prefill(len(ms)); err != nil {
		t.Fatal(err)
	}
	gb := MustGPUBackend(eng)
	gb.Pool = pool
	for _, b := range []Backend{CPUBackend{}, gb} {
		cs, err := b.EncryptVec(&sk.PublicKey, ms, 98)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := b.RerandomizeVec(&sk.PublicKey, cs, 99)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ms {
			if mpint.Cmp(rr[i].C, cs[i].C) == 0 {
				t.Fatalf("%s: ciphertext %d unchanged by rerandomize", b.Name(), i)
			}
			got, err := sk.Decrypt(rr[i])
			if err != nil {
				t.Fatal(err)
			}
			if mpint.Cmp(got, ms[i]) != 0 {
				t.Fatalf("%s: rerandomize changed plaintext %d", b.Name(), i)
			}
		}
	}
	if st := pool.Stats(); st.Hits != int64(len(ms)) {
		t.Errorf("rerandomize pool hits = %d, want %d", st.Hits, len(ms))
	}
}

// TestPoolReseed: retargeting the pool at a new seed discards the old
// stream and serves the new one.
func TestPoolReseed(t *testing.T) {
	sk := keyOfSize(t, 512)
	ms := plaintexts(6, sk.N)
	eng := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	pool, err := NewNoncePool(&sk.PublicKey, eng, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Prefill(6); err != nil {
		t.Fatal(err)
	}
	pool.Reseed(2)
	if pool.Ready() != 0 || pool.Seed() != 2 {
		t.Fatalf("reseed left ready=%d seed=%d", pool.Ready(), pool.Seed())
	}
	if _, err := pool.Prefill(6); err != nil {
		t.Fatal(err)
	}
	want, err := MustGPUBackend(eng).EncryptVec(&sk.PublicKey, ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := MustGPUBackend(eng)
	b.Pool = pool
	got, err := b.EncryptVec(&sk.PublicKey, ms, 2)
	if err != nil {
		t.Fatal(err)
	}
	sameCiphertexts(t, "reseeded", got, want)
	if st := pool.Stats(); st.Hits != int64(len(ms)) {
		t.Errorf("reseeded pool hits = %d, want %d", st.Hits, len(ms))
	}
}

// TestNoncePoolValidation covers the constructor error paths.
func TestNoncePoolValidation(t *testing.T) {
	sk := keyOfSize(t, 512)
	if _, err := NewNoncePool(nil, ghe.NewCPUEngine(), 1); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := NewNoncePool(&sk.PublicKey, nil, 1); err == nil {
		t.Error("nil engine accepted")
	}
}

func BenchmarkDecryptClassic1024(b *testing.B) { benchDecrypt(b, 1024, true) }
func BenchmarkDecryptReduced1024(b *testing.B) { benchDecrypt(b, 1024, false) }
func BenchmarkDecryptClassic2048(b *testing.B) { benchDecrypt(b, 2048, true) }
func BenchmarkDecryptReduced2048(b *testing.B) { benchDecrypt(b, 2048, false) }

func benchDecrypt(b *testing.B, bits int, classic bool) {
	sk := keyOfSize(b, bits)
	rng := mpint.NewRNG(7)
	c, err := sk.Encrypt(rng.RandBelow(sk.N), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if classic {
			_, err = sk.DecryptClassic(c)
		} else {
			_, err = sk.Decrypt(c)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
