package paillier

import (
	"testing"
	"testing/quick"

	"flbooster/internal/mpint"
)

// Property tests over the Paillier homomorphism. The key is generated once;
// properties quantify over plaintexts and scalars.

func TestPropertyAdditiveHomomorphism(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(100)
	f := func(a, b uint64) bool {
		ma, mb := mpint.FromUint64(a), mpint.FromUint64(b)
		ca, err := sk.Encrypt(ma, rng)
		if err != nil {
			return false
		}
		cb, err := sk.Encrypt(mb, rng)
		if err != nil {
			return false
		}
		got, err := sk.Decrypt(sk.Add(ca, cb))
		if err != nil {
			return false
		}
		return mpint.Cmp(got, mpint.ModAdd(ma, mb, sk.N)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyScalarDistributes(t *testing.T) {
	// k·(a+b) == k·a + k·b under the homomorphism.
	sk := testKey(t)
	rng := mpint.NewRNG(101)
	f := func(a, b uint32, k uint16) bool {
		if k == 0 {
			k = 1
		}
		ka := mpint.FromUint64(uint64(k))
		ca, err := sk.Encrypt(mpint.FromUint64(uint64(a)), rng)
		if err != nil {
			return false
		}
		cb, err := sk.Encrypt(mpint.FromUint64(uint64(b)), rng)
		if err != nil {
			return false
		}
		left, err := sk.Decrypt(sk.MulPlain(sk.Add(ca, cb), ka))
		if err != nil {
			return false
		}
		right, err := sk.Decrypt(sk.Add(sk.MulPlain(ca, ka), sk.MulPlain(cb, ka)))
		if err != nil {
			return false
		}
		return mpint.Cmp(left, right) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAddCommutesAndAssociates(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(102)
	enc := func(v uint64) Ciphertext {
		c, err := sk.Encrypt(mpint.FromUint64(v), rng)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	dec := func(c Ciphertext) uint64 {
		m, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := m.Uint64()
		return v
	}
	f := func(a, b, c uint32) bool {
		ca, cb, cc := enc(uint64(a)), enc(uint64(b)), enc(uint64(c))
		comm := dec(sk.Add(ca, cb)) == dec(sk.Add(cb, ca))
		assoc := dec(sk.Add(sk.Add(ca, cb), cc)) == dec(sk.Add(ca, sk.Add(cb, cc)))
		return comm && assoc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestLongHomomorphicChain(t *testing.T) {
	// Summing many ciphertexts must stay exact: the federated aggregation of
	// a large cohort.
	sk := testKey(t)
	rng := mpint.NewRNG(103)
	var want uint64
	acc, err := sk.Encrypt(mpint.Zero(), rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v := rng.Uint64() & 0xFFFFF
		want += v
		c, err := sk.Encrypt(mpint.FromUint64(v), rng)
		if err != nil {
			t.Fatal(err)
		}
		acc = sk.Add(acc, c)
	}
	got, err := sk.Decrypt(acc)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Uint64(); v != want {
		t.Fatalf("chain sum = %d, want %d", v, want)
	}
}
