package paillier

import (
	"encoding/binary"
	"fmt"

	"flbooster/internal/mpint"
)

// Wire encoding of keys: a magic byte, then length-prefixed big-endian
// component values. Used by the TCP demo and anywhere a key pair must cross
// a process boundary.

const (
	publicKeyMagic  = 0x50 // 'P'
	privateKeyMagic = 0x53 // 'S'
)

func appendNat(buf []byte, n mpint.Nat) []byte {
	b := n.Bytes()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func readNat(buf []byte) (mpint.Nat, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("paillier: truncated length prefix")
	}
	l := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint32(len(buf)) < l {
		return nil, nil, fmt.Errorf("paillier: truncated value (%d < %d)", len(buf), l)
	}
	return mpint.FromBytes(buf[:l]), buf[l:], nil
}

// MarshalBinary encodes the public key (n, g).
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	buf := []byte{publicKeyMagic}
	buf = appendNat(buf, pk.N)
	buf = appendNat(buf, pk.G)
	return buf, nil
}

// UnmarshalPublicKey decodes a public key and rebuilds its cached contexts.
func UnmarshalPublicKey(data []byte) (*PublicKey, error) {
	if len(data) < 1 || data[0] != publicKeyMagic {
		return nil, fmt.Errorf("paillier: not a public key encoding")
	}
	n, rest, err := readNat(data[1:])
	if err != nil {
		return nil, err
	}
	g, rest, err := readNat(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("paillier: %d trailing bytes in public key", len(rest))
	}
	if n.BitLen() < 16 {
		return nil, fmt.Errorf("paillier: implausibly small modulus")
	}
	pk := &PublicKey{N: n, G: g, N2: mpint.Mul(n, n)}
	pk.montN2 = mpint.NewMont(pk.N2)
	pk.plusOne = mpint.Cmp(g, mpint.AddWord(n, 1)) == 0
	return pk, nil
}

// MarshalBinary encodes the private key (p, q, g); every derived component
// is recomputed on load so the encoding cannot go stale or inconsistent.
func (sk *PrivateKey) MarshalBinary() ([]byte, error) {
	buf := []byte{privateKeyMagic}
	buf = appendNat(buf, sk.P)
	buf = appendNat(buf, sk.Q)
	buf = appendNat(buf, sk.G)
	return buf, nil
}

// UnmarshalPrivateKey decodes a private key and re-derives λ, μ, and the
// CRT precomputation.
func UnmarshalPrivateKey(data []byte) (*PrivateKey, error) {
	if len(data) < 1 || data[0] != privateKeyMagic {
		return nil, fmt.Errorf("paillier: not a private key encoding")
	}
	p, rest, err := readNat(data[1:])
	if err != nil {
		return nil, err
	}
	q, rest, err := readNat(rest)
	if err != nil {
		return nil, err
	}
	g, rest, err := readNat(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("paillier: %d trailing bytes in private key", len(rest))
	}
	n := mpint.Mul(p, q)
	if mpint.Cmp(g, mpint.AddWord(n, 1)) == 0 {
		g = nil // let newKey select the n+1 fast path
	}
	sk, err := newKey(p, q, g)
	if err != nil {
		return nil, fmt.Errorf("paillier: decoded key invalid: %w", err)
	}
	return sk, nil
}
