package paillier

import (
	"testing"

	"flbooster/internal/mpint"
)

func TestPublicKeyRoundTrip(t *testing.T) {
	sk := testKey(t)
	data, err := sk.PublicKey.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pk, err := UnmarshalPublicKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(pk.N, sk.N) != 0 || mpint.Cmp(pk.G, sk.G) != 0 {
		t.Fatal("components diverged")
	}
	if !pk.plusOne {
		t.Fatal("n+1 fast path not restored")
	}
	// The decoded key must encrypt values the original key decrypts.
	rng := mpint.NewRNG(1)
	m := mpint.FromUint64(31337)
	c, err := pk.Encrypt(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(got, m) != 0 {
		t.Fatal("cross-key round trip failed")
	}
}

func TestPrivateKeyRoundTrip(t *testing.T) {
	sk := testKey(t)
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sk2, err := UnmarshalPrivateKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(sk2.Lambda, sk.Lambda) != 0 || mpint.Cmp(sk2.Mu, sk.Mu) != 0 {
		t.Fatal("derived components diverged after re-derivation")
	}
	rng := mpint.NewRNG(2)
	m := mpint.FromUint64(987654321)
	c, err := sk.Encrypt(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk2.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(got, m) != 0 {
		t.Fatal("decoded private key cannot decrypt")
	}
}

func TestClassicKeyMarshalRoundTrip(t *testing.T) {
	sk, err := GenerateKeyClassic(mpint.NewRNG(3), 128)
	if err != nil {
		t.Fatal(err)
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sk2, err := UnmarshalPrivateKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if sk2.plusOne {
		t.Fatal("classic g must not restore as n+1")
	}
	rng := mpint.NewRNG(4)
	m := mpint.FromUint64(55)
	c, err := sk2.Encrypt(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(got, m) != 0 {
		t.Fatal("classic-key round trip failed")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	sk := testKey(t)
	pub, _ := sk.PublicKey.MarshalBinary()
	priv, _ := sk.MarshalBinary()
	cases := [][]byte{
		nil,
		{0x00},
		pub[:3],                      // truncated
		append(pub, 0xFF),            // trailing garbage
		priv[:5],                     // truncated private
		append(priv, 0x01),           // trailing garbage
		{publicKeyMagic, 1, 0, 0, 0}, // body shorter than prefix
	}
	for i, data := range cases {
		if _, err := UnmarshalPublicKey(data); err == nil {
			if _, err2 := UnmarshalPrivateKey(data); err2 == nil {
				t.Errorf("case %d decoded as something", i)
			}
		}
	}
	// Swapped magic bytes must be rejected.
	if _, err := UnmarshalPublicKey(priv); err == nil {
		t.Error("private encoding accepted as public key")
	}
	if _, err := UnmarshalPrivateKey(pub); err == nil {
		t.Error("public encoding accepted as private key")
	}
}
