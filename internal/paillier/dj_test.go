package paillier

import (
	"testing"

	"flbooster/internal/mpint"
)

func djKey(t testing.TB, s int) *DJKey {
	t.Helper()
	k, err := GenerateDJKey(mpint.NewRNG(uint64(5000+s)), 128, s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestDJRoundTripAllDegrees(t *testing.T) {
	for s := 1; s <= 4; s++ {
		s := s
		t.Run(string(rune('0'+s)), func(t *testing.T) {
			k := djKey(t, s)
			rng := mpint.NewRNG(1)
			for i := 0; i < 10; i++ {
				m := rng.RandBelow(k.ns)
				c, err := k.Encrypt(m, rng)
				if err != nil {
					t.Fatal(err)
				}
				got, err := k.Decrypt(c)
				if err != nil {
					t.Fatal(err)
				}
				if mpint.Cmp(got, m) != 0 {
					t.Fatalf("s=%d round trip failed: got %s, want %s", s, got, m)
				}
			}
		})
	}
}

func TestDJPlaintextSpaceGrows(t *testing.T) {
	// The whole point of the generalization: s·k payload bits at (s+1)·k
	// wire bits, versus Paillier's k at 2k.
	k1 := djKey(t, 1)
	k3 := djKey(t, 3)
	if k3.PlaintextBits() < 3*k1.PlaintextBits()-8 {
		t.Fatalf("degree 3 payload %d bits, degree 1 %d", k3.PlaintextBits(), k1.PlaintextBits())
	}
	// Utilization s/(s+1): degree 3 carries 3k bits in 4k wire = 75% vs 50%.
	u1 := float64(k1.PlaintextBits()) / float64(8*k1.CiphertextBytes())
	u3 := float64(k3.PlaintextBits()) / float64(8*k3.CiphertextBytes())
	if u3 <= u1 {
		t.Fatalf("degree 3 utilization %v should beat degree 1's %v", u3, u1)
	}
}

func TestDJHomomorphicAddition(t *testing.T) {
	k := djKey(t, 3)
	rng := mpint.NewRNG(2)
	for i := 0; i < 10; i++ {
		a := rng.RandBelow(k.ns)
		b := rng.RandBelow(k.ns)
		ca, err := k.Encrypt(a, rng)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := k.Encrypt(b, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Decrypt(k.Add(ca, cb))
		if err != nil {
			t.Fatal(err)
		}
		if mpint.Cmp(got, mpint.ModAdd(a, b, k.ns)) != 0 {
			t.Fatal("DJ homomorphic addition failed")
		}
	}
}

func TestDJMulPlain(t *testing.T) {
	k := djKey(t, 2)
	rng := mpint.NewRNG(3)
	m := rng.RandBelow(k.ns)
	tScalar := mpint.FromUint64(123457)
	c, err := k.Encrypt(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Decrypt(k.MulPlain(c, tScalar))
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(got, mpint.ModMul(m, tScalar, k.ns)) != 0 {
		t.Fatal("DJ scalar multiplication failed")
	}
}

func TestDJDegree1MatchesPaillier(t *testing.T) {
	// s = 1 is Paillier: a DJ key and a Paillier key built from the same
	// primes must decrypt each other's ciphertexts.
	r := mpint.NewRNG(4)
	p, q := r.RandSafePrimePair(64)
	dk, err := NewDJKeyFromPrimes(p, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewKeyFromPrimes(p, q)
	if err != nil {
		t.Fatal(err)
	}
	m := mpint.FromUint64(987654321)
	c, err := dk.Encrypt(m, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(Ciphertext{C: c.C})
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(got, m) != 0 {
		t.Fatalf("DJ(s=1) ciphertext decrypted to %s under Paillier, want %s", got, m)
	}
}

func TestDJValidation(t *testing.T) {
	if _, err := GenerateDJKey(mpint.NewRNG(1), 128, 0); err == nil {
		t.Error("degree 0 should fail")
	}
	if _, err := GenerateDJKey(mpint.NewRNG(1), 128, 9); err == nil {
		t.Error("degree 9 should fail")
	}
	if _, err := GenerateDJKey(mpint.NewRNG(1), 8, 2); err == nil {
		t.Error("tiny key should fail")
	}
	k := djKey(t, 2)
	if _, err := k.Encrypt(k.ns, mpint.NewRNG(1)); err == nil {
		t.Error("oversized plaintext should fail")
	}
	if _, err := k.Decrypt(DJCiphertext{}); err == nil {
		t.Error("zero ciphertext should fail")
	}
	if _, err := k.Decrypt(DJCiphertext{C: k.ns1}); err == nil {
		t.Error("out-of-range ciphertext should fail")
	}
	r := mpint.NewRNG(5)
	p := r.RandPrime(64)
	if _, err := NewDJKeyFromPrimes(p, p, 2); err == nil {
		t.Error("p == q should fail")
	}
}

func TestDJLargePayloadPacking(t *testing.T) {
	// A degree-4 ciphertext at a 128-bit n carries ~512 payload bits — pack
	// 16 32-bit values into ONE ciphertext and aggregate homomorphically.
	k := djKey(t, 4)
	rng := mpint.NewRNG(6)
	const slots, width = 12, 34 // 34-bit slots: 32 data + 2 guard
	pack := func(vals []uint64) mpint.Nat {
		var z mpint.Nat
		for i := len(vals) - 1; i >= 0; i-- {
			z = mpint.Add(mpint.Lsh(z, width), mpint.FromUint64(vals[i]))
		}
		return z
	}
	sums := make([]uint64, slots)
	var agg DJCiphertext
	for party := 0; party < 3; party++ {
		vals := make([]uint64, slots)
		for i := range vals {
			vals[i] = rng.Uint64() & (1<<32 - 1)
			sums[i] += vals[i]
		}
		c, err := k.Encrypt(pack(vals), rng)
		if err != nil {
			t.Fatal(err)
		}
		if party == 0 {
			agg = c
		} else {
			agg = k.Add(agg, c)
		}
	}
	plain, err := k.Decrypt(agg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < slots; i++ {
		got, _ := mpint.Rsh(plain, uint(i*width)).Uint64()
		got &= 1<<width - 1
		if got != sums[i] {
			t.Fatalf("slot %d = %d, want %d", i, got, sums[i])
		}
	}
}
