package paillier

import (
	"testing"

	"flbooster/internal/mpint"
)

// TestAccumulatorMatchesFold asserts a per-group accumulator reproduces the
// direct AddVec fold over the same batches, bit for bit.
func TestAccumulatorMatchesFold(t *testing.T) {
	sk := testKey(t)
	be := CPUBackend{}
	batches := make([][]Ciphertext, 3)
	for b := range batches {
		pts := []mpint.Nat{
			mpint.FromUint64(uint64(10 + b)),
			mpint.FromUint64(uint64(100 + 7*b)),
		}
		cts, err := be.EncryptVec(&sk.PublicKey, pts, uint64(900+b))
		if err != nil {
			t.Fatal(err)
		}
		batches[b] = cts
	}

	acc, err := NewAccumulator(&sk.PublicKey, be)
	if err != nil {
		t.Fatal(err)
	}
	for _, cts := range batches {
		if err := acc.Add(cts); err != nil {
			t.Fatal(err)
		}
	}
	if acc.Batches() != len(batches) {
		t.Fatalf("Batches() = %d, want %d", acc.Batches(), len(batches))
	}
	got, err := acc.Sum()
	if err != nil {
		t.Fatal(err)
	}

	want := batches[0]
	for _, cts := range batches[1:] {
		want, err = be.AddVec(&sk.PublicKey, want, cts)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("sum width %d, want %d", len(got), len(want))
	}
	for i := range got {
		if mpint.Cmp(got[i].C, want[i].C) != 0 {
			t.Fatalf("slot %d diverges from the AddVec fold", i)
		}
	}

	pts, err := be.DecryptVec(sk, got)
	if err != nil {
		t.Fatal(err)
	}
	for i, wantv := range []uint64{10 + 11 + 12, 100 + 107 + 114} {
		if v, ok := pts[i].Uint64(); !ok || v != wantv {
			t.Fatalf("decrypted slot %d = %v, want %d", i, pts[i], wantv)
		}
	}
}

// TestAccumulatorIsolation: two accumulators over disjoint batches never mix.
func TestAccumulatorIsolation(t *testing.T) {
	sk := testKey(t)
	be := CPUBackend{}
	enc := func(v uint64, seed uint64) []Ciphertext {
		cts, err := be.EncryptVec(&sk.PublicKey, []mpint.Nat{mpint.FromUint64(v)}, seed)
		if err != nil {
			t.Fatal(err)
		}
		return cts
	}
	a, _ := NewAccumulator(&sk.PublicKey, be)
	b, _ := NewAccumulator(&sk.PublicKey, be)
	if err := a.Add(enc(3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(enc(4, 2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(enc(50, 3)); err != nil {
		t.Fatal(err)
	}
	for i, tc := range []struct {
		acc  *Accumulator
		want uint64
	}{{a, 7}, {b, 50}} {
		sum, err := tc.acc.Sum()
		if err != nil {
			t.Fatal(err)
		}
		pts, err := be.DecryptVec(sk, sum)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := pts[0].Uint64(); !ok || v != tc.want {
			t.Fatalf("accumulator %d = %v, want %d", i, pts[0], tc.want)
		}
	}
}

func TestAccumulatorErrors(t *testing.T) {
	sk := testKey(t)
	be := CPUBackend{}
	if _, err := NewAccumulator(nil, be); err == nil {
		t.Error("nil public key should fail")
	}
	if _, err := NewAccumulator(&sk.PublicKey, nil); err == nil {
		t.Error("nil backend should fail")
	}
	acc, err := NewAccumulator(&sk.PublicKey, be)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Sum(); err == nil {
		t.Error("sum of an empty accumulator should fail")
	}
	if err := acc.Add(nil); err == nil {
		t.Error("empty batch should fail")
	}
	cts, err := be.EncryptVec(&sk.PublicKey, []mpint.Nat{mpint.FromUint64(1), mpint.FromUint64(2)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(cts); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(cts[:1]); err == nil {
		t.Error("width mismatch should fail")
	}
}
