// Package paillier implements the Paillier additively homomorphic
// cryptosystem (Paillier, EUROCRYPT 1999) on top of internal/mpint, exactly
// as §III-B of the paper describes: keys from two large primes p and q with
// λ = lcm(p−1, q−1); encryption E(m) = gᵐ·rⁿ mod n²; decryption
// D(c) = L(c^λ mod n²) / L(g^λ mod n²) mod n with L(x) = (x−1)/n; and the
// additive homomorphism E(m₁)·E(m₂) = E(m₁+m₂).
//
// Key generation defaults to g = n+1, which makes gᵐ a single modular
// multiplication (1 + m·n mod n²) without changing the scheme's semantics;
// GenerateKeyClassic draws a random g ∈ Z*_{n²} as the paper states it, and
// every operation works with either form. Decryption uses the CRT split
// over p² and q² — the standard 4× speedup.
package paillier

import (
	"fmt"

	"flbooster/internal/mpint"
)

// PublicKey holds (g, n) plus cached values every operation needs.
type PublicKey struct {
	N  mpint.Nat // modulus n = p·q
	G  mpint.Nat // generator g
	N2 mpint.Nat // n²

	montN2  *mpint.Mont // Montgomery context mod n²
	plusOne bool        // g == n+1 fast path
}

// PrivateKey extends the public key with the trapdoor.
type PrivateKey struct {
	PublicKey
	P, Q   mpint.Nat // the prime factors
	Lambda mpint.Nat // λ = lcm(p−1, q−1)
	Mu     mpint.Nat // μ = L(g^λ mod n²)⁻¹ mod n

	// CRT acceleration for c^λ mod n².
	p2, q2     mpint.Nat
	montP2     *mpint.Mont
	montQ2     *mpint.Mont
	q2InvModP2 mpint.Nat // (q²)⁻¹ mod p²

	// Reduced-exponent CRT decryption (§III-B optimisation): instead of one
	// full-λ exponentiation per prime square, decrypt with exponent p−1
	// (resp. q−1) — half the bits of λ — and fold the L(g^λ)⁻¹ correction
	// into per-prime constants hp = L_p(g^{p−1} mod p²)⁻¹ mod p. The halves
	// recombine over p and q with Garner's formula.
	pm1, qm1 mpint.Nat // p−1, q−1: the reduced decryption exponents
	hp, hq   mpint.Nat // L_p(g^{p−1})⁻¹ mod p, L_q(g^{q−1})⁻¹ mod q
	qInvModP mpint.Nat // q⁻¹ mod p
}

// Ciphertext is a Paillier ciphertext: an element of Z*_{n²}.
type Ciphertext struct {
	C mpint.Nat
}

// KeyBits returns the modulus size in bits (the paper's "key size").
func (pk *PublicKey) KeyBits() int { return pk.N.BitLen() }

// CiphertextBytes is the wire size of one ciphertext (2k bits for a k-bit
// key) — the ciphertext expansion that drives the communication overhead.
func (pk *PublicKey) CiphertextBytes() int { return (pk.N2.BitLen() + 7) / 8 }

// MontN2 exposes the n² Montgomery context for the vectorized GPU backend.
func (pk *PublicKey) MontN2() *mpint.Mont { return pk.montN2 }

// GenerateKey creates a key pair with an n of exactly `bits` bits, using the
// g = n+1 construction. rng supplies the primes (use mpint.NewCryptoRNG for
// real deployments; seeded RNGs keep experiments reproducible).
func GenerateKey(rng *mpint.RNG, bits int) (*PrivateKey, error) {
	if bits < 16 {
		return nil, fmt.Errorf("paillier: key size %d too small", bits)
	}
	for {
		p, q := rng.RandSafePrimePair(bits / 2)
		sk, err := newKey(p, q, nil)
		if err != nil {
			continue // e.g. gcd(pq, (p-1)(q-1)) ≠ 1; redraw
		}
		if sk.N.BitLen() != bits {
			continue
		}
		return sk, nil
	}
}

// GenerateKeyClassic creates a key pair with a random g ∈ Z*_{n²} satisfying
// gcd(L(g^λ mod n²), n) = 1 — the textbook construction from §III-B.
func GenerateKeyClassic(rng *mpint.RNG, bits int) (*PrivateKey, error) {
	if bits < 16 {
		return nil, fmt.Errorf("paillier: key size %d too small", bits)
	}
	for {
		p, q := rng.RandSafePrimePair(bits / 2)
		n := mpint.Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		n2 := mpint.Mul(n, n)
		g := rng.RandCoprime(n2)
		sk, err := newKey(p, q, g)
		if err != nil {
			continue
		}
		return sk, nil
	}
}

// NewKeyFromPrimes assembles a key pair from externally generated primes —
// the path the GPU key generator (ghe.GeneratePrimePair) feeds.
func NewKeyFromPrimes(p, q mpint.Nat) (*PrivateKey, error) {
	return newKey(p, q, nil)
}

func newKey(p, q, g mpint.Nat) (*PrivateKey, error) {
	if mpint.Cmp(p, q) == 0 {
		return nil, fmt.Errorf("paillier: p and q must differ")
	}
	n := mpint.Mul(p, q)
	n2 := mpint.Mul(n, n)
	pm1 := mpint.SubWord(p, 1)
	qm1 := mpint.SubWord(q, 1)
	if !mpint.GCD(n, mpint.Mul(pm1, qm1)).IsOne() {
		return nil, fmt.Errorf("paillier: gcd(n, φ(n)) must be 1")
	}
	lambda := mpint.LCM(pm1, qm1)

	pk := PublicKey{N: n, N2: n2, montN2: mpint.NewMont(n2)}
	if g == nil {
		pk.G = mpint.AddWord(n, 1)
		pk.plusOne = true
	} else {
		pk.G = g
	}

	sk := &PrivateKey{
		PublicKey: pk,
		P:         p, Q: q,
		Lambda: lambda,
		p2:     mpint.Mul(p, p),
		q2:     mpint.Mul(q, q),
	}
	sk.montP2 = mpint.NewMont(sk.p2)
	sk.montQ2 = mpint.NewMont(sk.q2)
	inv, ok := mpint.ModInverse(sk.q2, sk.p2)
	if !ok {
		return nil, fmt.Errorf("paillier: q² not invertible mod p²")
	}
	sk.q2InvModP2 = inv

	// μ = L(g^λ mod n²)⁻¹ mod n; with g = n+1, g^λ mod n² = 1 + λn, so
	// L = λ mod n and μ = λ⁻¹ mod n.
	gl := sk.expN2(pk.G, lambda)
	l := pk.lFunc(gl)
	mu, ok := mpint.ModInverse(l, n)
	if !ok {
		return nil, fmt.Errorf("paillier: L(g^λ) not invertible mod n (bad g)")
	}
	sk.Mu = mu

	// Reduced-exponent constants. g^{p−1} mod p² ≡ 1 mod p by Fermat, so
	// L_p applies; invertibility of the result mod p holds for every valid
	// g (it fails exactly when L(g^λ) is not invertible mod n, which the μ
	// computation above already rejected), but we check and redraw anyway.
	sk.pm1, sk.qm1 = pm1, qm1
	hp, ok := mpint.ModInverse(lHalf(sk.montP2.Exp(pk.G, pm1), p), p)
	if !ok {
		return nil, fmt.Errorf("paillier: L_p(g^(p-1)) not invertible mod p (bad g)")
	}
	hq, ok := mpint.ModInverse(lHalf(sk.montQ2.Exp(pk.G, qm1), q), q)
	if !ok {
		return nil, fmt.Errorf("paillier: L_q(g^(q-1)) not invertible mod q (bad g)")
	}
	qInv, ok := mpint.ModInverse(mpint.Mod(q, p), p)
	if !ok {
		return nil, fmt.Errorf("paillier: q not invertible mod p")
	}
	sk.hp, sk.hq, sk.qInvModP = hp, hq, qInv
	return sk, nil
}

// lHalf computes L_p(x) = (x−1)/p for x < p² with x ≡ 1 mod p; the quotient
// is already reduced mod p.
func lHalf(x, p mpint.Nat) mpint.Nat {
	return mpint.Div(mpint.Sub(x, mpint.One()), p)
}

// lFunc computes L(x) = (x−1)/n.
func (pk *PublicKey) lFunc(x mpint.Nat) mpint.Nat {
	return mpint.Div(mpint.Sub(x, mpint.One()), pk.N)
}

// expN2 computes base^e mod n² via the CRT split when the private key is
// available: x ≡ base^e mod p², mod q² recombined with Garner's formula.
func (sk *PrivateKey) expN2(base, e mpint.Nat) mpint.Nat {
	xp := sk.montP2.Exp(base, e)
	xq := sk.montQ2.Exp(base, e)
	// x = xq + q²·((xp − xq)·(q²)⁻¹ mod p²)
	diff := mpint.ModSub(xp, mpint.Mod(xq, sk.p2), sk.p2)
	h := mpint.ModMul(diff, sk.q2InvModP2, sk.p2)
	return mpint.Add(xq, mpint.Mul(sk.q2, h))
}

// GPowM computes gᵐ mod n², using the (1 + m·n) shortcut when g = n+1.
func (pk *PublicKey) GPowM(m mpint.Nat) mpint.Nat {
	if pk.plusOne {
		return mpint.ModAdd(mpint.One(), mpint.Mod(mpint.Mul(m, pk.N), pk.N2), pk.N2)
	}
	return pk.montN2.Exp(pk.G, m)
}

// Encrypt encrypts a plaintext m < n with fresh randomness from rng:
// E(m) = gᵐ·rⁿ mod n² (Eq. 3).
func (pk *PublicKey) Encrypt(m mpint.Nat, rng *mpint.RNG) (Ciphertext, error) {
	if mpint.Cmp(m, pk.N) >= 0 {
		return Ciphertext{}, fmt.Errorf("paillier: plaintext (%d bits) must be < n (%d bits)",
			m.BitLen(), pk.N.BitLen())
	}
	r := rng.RandCoprime(pk.N)
	return pk.EncryptWithNonce(m, r)
}

// EncryptWithNonce encrypts with a caller-chosen nonce r (for deterministic
// tests and for the GPU backend, which draws nonces on-device).
func (pk *PublicKey) EncryptWithNonce(m, r mpint.Nat) (Ciphertext, error) {
	if mpint.Cmp(m, pk.N) >= 0 {
		return Ciphertext{}, fmt.Errorf("paillier: plaintext exceeds modulus")
	}
	gm := pk.GPowM(m)
	rn := pk.montN2.Exp(r, pk.N)
	return Ciphertext{C: mpint.ModMul(gm, rn, pk.N2)}, nil
}

// Decrypt recovers the plaintext with the reduced-exponent CRT path:
// m_p = L_p(c^{p−1} mod p²)·hp mod p and m_q likewise, recombined with
// Garner's formula m = m_q + q·((m_p − m_q)·q⁻¹ mod p). The exponents are
// half the bits of λ, so each prime-square exponentiation does roughly half
// the Montgomery multiplies of the classic D(c) = L(c^λ mod n²)·μ mod n —
// which DecryptClassic still provides, bit-exact with this path on every
// valid ciphertext.
func (sk *PrivateKey) Decrypt(c Ciphertext) (mpint.Nat, error) {
	if c.C.IsZero() || mpint.Cmp(c.C, sk.N2) >= 0 {
		return nil, fmt.Errorf("paillier: ciphertext out of range")
	}
	mp := sk.halfDecrypt(c.C, sk.montP2, sk.pm1, sk.hp, sk.P)
	mq := sk.halfDecrypt(c.C, sk.montQ2, sk.qm1, sk.hq, sk.Q)
	return sk.garner(mp, mq), nil
}

// DecryptClassic recovers the plaintext via the textbook full-λ route:
// D(c) = L(c^λ mod n²)·μ mod n (Eq. 4), with the n² exponentiation CRT-split
// over p² and q². Kept as the differential-testing reference for Decrypt.
func (sk *PrivateKey) DecryptClassic(c Ciphertext) (mpint.Nat, error) {
	if c.C.IsZero() || mpint.Cmp(c.C, sk.N2) >= 0 {
		return nil, fmt.Errorf("paillier: ciphertext out of range")
	}
	cl := sk.expN2(c.C, sk.Lambda)
	return mpint.ModMul(sk.lFunc(cl), sk.Mu, sk.N), nil
}

// halfDecrypt computes L_prime(c^{prime−1} mod prime²)·h mod prime — one
// prime's share of the reduced-exponent decryption.
func (sk *PrivateKey) halfDecrypt(c mpint.Nat, m *mpint.Mont, em1, h, prime mpint.Nat) mpint.Nat {
	return mpint.ModMul(lHalf(m.Exp(c, em1), prime), h, prime)
}

// garner recombines the per-prime plaintext shares into m mod n:
// m = m_q + q·((m_p − m_q)·q⁻¹ mod p).
func (sk *PrivateKey) garner(mp, mq mpint.Nat) mpint.Nat {
	diff := mpint.ModSub(mp, mpint.Mod(mq, sk.P), sk.P)
	h := mpint.ModMul(diff, sk.qInvModP, sk.P)
	return mpint.Add(mq, mpint.Mul(sk.Q, h))
}

// Add computes the homomorphic addition E(m₁+m₂) = E(m₁)·E(m₂) mod n²
// (Eq. 5).
func (pk *PublicKey) Add(a, b Ciphertext) Ciphertext {
	return Ciphertext{C: mpint.ModMul(a.C, b.C, pk.N2)}
}

// AddPlain computes E(m + k) from E(m) and a plaintext k: E(m)·gᵏ mod n².
func (pk *PublicKey) AddPlain(c Ciphertext, k mpint.Nat) Ciphertext {
	return Ciphertext{C: mpint.ModMul(c.C, pk.GPowM(k), pk.N2)}
}

// MulPlain computes E(k·m) from E(m) and a plaintext scalar k: E(m)ᵏ mod n².
func (pk *PublicKey) MulPlain(c Ciphertext, k mpint.Nat) Ciphertext {
	return Ciphertext{C: pk.montN2.Exp(c.C, k)}
}

// Rerandomize multiplies by a fresh encryption of zero, unlinking the
// ciphertext from its origin without changing the plaintext.
func (pk *PublicKey) Rerandomize(c Ciphertext, rng *mpint.RNG) Ciphertext {
	r := rng.RandCoprime(pk.N)
	rn := pk.montN2.Exp(r, pk.N)
	return Ciphertext{C: mpint.ModMul(c.C, rn, pk.N2)}
}
