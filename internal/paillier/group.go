package paillier

import "fmt"

// Accumulator is a per-group homomorphic aggregation context: it folds
// ciphertext batches into a running sum through a backend, one context per
// secure-aggregation group, so group-wise robust aggregation can sum each
// group's clients independently without ever mixing sub-aggregates. The
// first batch fixes the vector length; later batches must match it.
type Accumulator struct {
	pk      *PublicKey
	backend Backend
	sum     []Ciphertext
	batches int
}

// NewAccumulator builds an empty aggregation context.
func NewAccumulator(pk *PublicKey, backend Backend) (*Accumulator, error) {
	if pk == nil {
		return nil, fmt.Errorf("paillier: NewAccumulator needs a public key")
	}
	if backend == nil {
		return nil, fmt.Errorf("paillier: NewAccumulator needs a backend")
	}
	return &Accumulator{pk: pk, backend: backend}, nil
}

// Add folds one client's ciphertext batch into the group sum.
func (a *Accumulator) Add(cts []Ciphertext) error {
	if len(cts) == 0 {
		return fmt.Errorf("paillier: accumulate an empty batch")
	}
	if a.sum == nil {
		a.sum = append([]Ciphertext(nil), cts...)
		a.batches = 1
		return nil
	}
	if len(cts) != len(a.sum) {
		return fmt.Errorf("paillier: accumulate %d ciphertexts into a %d-wide group", len(cts), len(a.sum))
	}
	sum, err := a.backend.AddVec(a.pk, a.sum, cts)
	if err != nil {
		return err
	}
	a.sum = sum
	a.batches++
	return nil
}

// Batches returns how many client batches were folded in.
func (a *Accumulator) Batches() int { return a.batches }

// Sum returns the group's homomorphic sum. It fails on an empty context —
// an empty group has no aggregate, and returning one silently would let a
// grouping bug masquerade as a zero update.
func (a *Accumulator) Sum() ([]Ciphertext, error) {
	if a.sum == nil {
		return nil, fmt.Errorf("paillier: sum of an empty accumulator")
	}
	return a.sum, nil
}
