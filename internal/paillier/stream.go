package paillier

import (
	"fmt"
	"time"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// StreamBackend extends Backend with chunked encryption: the caller opens a
// session, feeds successive chunks of one logical plaintext vector in
// order, and gets ciphertexts bit-exact with a single whole-batch
// EncryptVec call under the same seed. On a device backend every chunk is
// also scheduled onto the device's H2D/compute/D2H streams, so closing the
// session records the measured overlapped cost next to the sequential sum.
type StreamBackend interface {
	Backend
	// BeginEncrypt opens a chunked encryption session under pk and seed.
	BeginEncrypt(pk *PublicKey, seed uint64) (EncryptSession, error)
}

// EncryptSession is one in-flight chunked encryption. Chunks must be fed in
// stream order (the CPU nonce stream is sequential; the device stream is
// indexed but the pipeline models in-order chunks), from a single
// goroutine. Close is idempotent and must be called when done.
type EncryptSession interface {
	// Next encrypts the next chunk and returns its ciphertexts together
	// with the chunk's sequential simulated HE cost (zero on substrates
	// without a modelled clock).
	Next(ms []mpint.Nat) ([]Ciphertext, time.Duration, error)
	// Close ends the session, charging any measured stream overlap to the
	// device counters.
	Close()
}

// Both backends stream.
var (
	_ StreamBackend = (*GPUBackend)(nil)
	_ StreamBackend = CPUBackend{}
)

// BeginEncrypt implements StreamBackend. The serial CPU path draws every
// nonce from one RNG session, so chunked encryption simply keeps that RNG
// across chunks — bit-exactness with EncryptVec follows from feeding chunks
// in order.
func (CPUBackend) BeginEncrypt(pk *PublicKey, seed uint64) (EncryptSession, error) {
	if pk == nil {
		return nil, fmt.Errorf("paillier: BeginEncrypt needs a public key")
	}
	return &cpuEncryptSession{pk: pk, rng: mpint.NewRNG(seed)}, nil
}

type cpuEncryptSession struct {
	pk   *PublicKey
	rng  *mpint.RNG
	base int
}

// Next implements EncryptSession.
func (s *cpuEncryptSession) Next(ms []mpint.Nat) ([]Ciphertext, time.Duration, error) {
	out := make([]Ciphertext, len(ms))
	for i, m := range ms {
		c, err := s.pk.Encrypt(m, s.rng)
		if err != nil {
			return nil, 0, fmt.Errorf("paillier: cpu EncryptSession[%d]: %w", s.base+i, err)
		}
		out[i] = c
	}
	s.base += len(ms)
	return out, 0, nil
}

// Close implements EncryptSession.
func (*cpuEncryptSession) Close() {}

// BeginEncrypt implements StreamBackend. The engine must be a
// ghe.StreamEngine (all shipped engines are): chunked nonce generation is
// addressed by global stream position, so chunk boundaries never change the
// r values, and the CheckedEngine's retry/failover of a single chunk
// reproduces the same positions.
func (g *GPUBackend) BeginEncrypt(pk *PublicKey, seed uint64) (EncryptSession, error) {
	if pk == nil {
		return nil, fmt.Errorf("paillier: BeginEncrypt needs a public key")
	}
	se, ok := g.Engine.(ghe.StreamEngine)
	if !ok {
		return nil, fmt.Errorf("paillier: engine %T does not support streamed encryption", g.Engine)
	}
	s := &gpuEncryptSession{g: g, pk: pk, seed: seed, eng: se}
	if dev := se.StreamDevice(); dev != nil {
		s.pipe = dev.NewPipeline(2)
	} else if clk, ok := g.Engine.(ghe.SimClock); ok {
		// No single device to pipeline on (a sharded multi-device engine),
		// but the substrate still keeps a modelled clock: per-chunk cost is
		// read as SimNow deltas instead of pipeline chunks.
		s.clk = clk
	}
	return s, nil
}

type gpuEncryptSession struct {
	g    *GPUBackend
	pk   *PublicKey
	seed uint64
	eng  ghe.StreamEngine
	pipe *gpu.Pipeline // nil when the engine runs without a device
	clk  ghe.SimClock  // set when pipe is nil but the engine has a clock
	base int
	done bool
}

// Next implements EncryptSession: the same chunk shape as EncryptVec
// (nonce terms from the pool or the two online kernels, then the hom-mul
// combine) with nonce positions offset by the session's global base,
// bracketed as one pipeline chunk.
func (s *gpuEncryptSession) Next(ms []mpint.Nat) ([]Ciphertext, time.Duration, error) {
	for i, m := range ms {
		if mpint.Cmp(m, s.pk.N) >= 0 {
			return nil, 0, fmt.Errorf("paillier: gpu EncryptSession[%d]: plaintext exceeds modulus", s.base+i)
		}
	}
	if s.pipe != nil {
		s.pipe.Begin()
	}
	var clkMark time.Duration
	if s.clk != nil {
		clkMark = s.clk.SimNow()
	}
	rn, err := s.g.nonceTerms(s.pk, s.base, len(ms), s.seed)
	if err != nil {
		return nil, 0, fmt.Errorf("paillier: gpu EncryptSession: %w", err)
	}
	gm, err := s.g.gPowMVec(s.pk, ms)
	if err != nil {
		return nil, 0, fmt.Errorf("paillier: gpu EncryptSession g^m: %w", err)
	}
	prod, err := s.eng.ModMulVec(gm, rn, s.pk.MontN2())
	if err != nil {
		return nil, 0, fmt.Errorf("paillier: gpu EncryptSession combine: %w", err)
	}
	var seq time.Duration
	if s.pipe != nil {
		seq, _ = s.pipe.End()
	} else if s.clk != nil {
		seq = s.clk.SimNow() - clkMark
	}
	out := make([]Ciphertext, len(ms))
	for i := range prod {
		out[i] = Ciphertext{C: prod[i]}
	}
	s.base += len(ms)
	return out, seq, nil
}

// Close implements EncryptSession, folding the pipeline's critical path
// into the device's stream counters.
func (s *gpuEncryptSession) Close() {
	if s.done {
		return
	}
	s.done = true
	if s.pipe != nil {
		s.pipe.Close()
	}
}
