package paillier

import (
	"fmt"

	"flbooster/internal/mpint"
)

// Damgård–Jurik generalization of Paillier (reference [21] of the paper):
// for a degree s ≥ 1, ciphertexts live in Z*_{n^(s+1)} and the plaintext
// space grows to Z_{n^s}, so one ciphertext carries s·k bits of payload at
// (s+1)·k bits of wire — asymptotically doubling batch compression's
// plaintext space utilization as s grows. s = 1 is exactly Paillier.
//
// Encryption: c = (1+n)^m · r^(n^s) mod n^(s+1).
// Decryption: c^λ ≡ (1+n)^(m·λ) mod n^(s+1); the discrete log of (1+n)^x is
// extracted by the paper's recursive algorithm (djLog below), then m is
// recovered with λ⁻¹ mod n^s.
type DJKey struct {
	// N is the modulus; S the degree.
	N mpint.Nat
	S int

	lambda    mpint.Nat
	ns        mpint.Nat   // n^s (plaintext modulus)
	ns1       mpint.Nat   // n^(s+1) (ciphertext modulus)
	npow      []mpint.Nat // npow[j] = n^j for j ≤ s+1
	mont      *mpint.Mont // mod n^(s+1)
	lambdaInv mpint.Nat   // λ⁻¹ mod n^s
}

// DJCiphertext is a Damgård–Jurik ciphertext in Z*_{n^(s+1)}.
type DJCiphertext struct {
	C mpint.Nat
}

// GenerateDJKey builds a degree-s key with an n of `bits` bits.
func GenerateDJKey(rng *mpint.RNG, bits, s int) (*DJKey, error) {
	if s < 1 || s > 8 {
		return nil, fmt.Errorf("paillier: DJ degree %d out of [1, 8]", s)
	}
	if bits < 16 {
		return nil, fmt.Errorf("paillier: DJ key size %d too small", bits)
	}
	for {
		p, q := rng.RandSafePrimePair(bits / 2)
		k, err := NewDJKeyFromPrimes(p, q, s)
		if err != nil {
			continue
		}
		if k.N.BitLen() != bits {
			continue
		}
		return k, nil
	}
}

// NewDJKeyFromPrimes assembles a degree-s key from primes.
func NewDJKeyFromPrimes(p, q mpint.Nat, s int) (*DJKey, error) {
	if mpint.Cmp(p, q) == 0 {
		return nil, fmt.Errorf("paillier: p and q must differ")
	}
	if s < 1 || s > 8 {
		return nil, fmt.Errorf("paillier: DJ degree %d out of [1, 8]", s)
	}
	n := mpint.Mul(p, q)
	pm1 := mpint.SubWord(p, 1)
	qm1 := mpint.SubWord(q, 1)
	if !mpint.GCD(n, mpint.Mul(pm1, qm1)).IsOne() {
		return nil, fmt.Errorf("paillier: gcd(n, φ(n)) must be 1")
	}
	k := &DJKey{N: n, S: s, lambda: mpint.LCM(pm1, qm1)}
	k.npow = make([]mpint.Nat, s+2)
	k.npow[0] = mpint.One()
	for j := 1; j <= s+1; j++ {
		k.npow[j] = mpint.Mul(k.npow[j-1], n)
	}
	k.ns = k.npow[s]
	k.ns1 = k.npow[s+1]
	k.mont = mpint.NewMont(k.ns1)
	inv, ok := mpint.ModInverse(k.lambda, k.ns)
	if !ok {
		return nil, fmt.Errorf("paillier: λ not invertible mod n^s")
	}
	k.lambdaInv = inv
	return k, nil
}

// PlaintextBits is the payload capacity of one ciphertext (s·k bits).
func (k *DJKey) PlaintextBits() int { return k.ns.BitLen() - 1 }

// CiphertextBytes is the wire size of one ciphertext ((s+1)·k bits).
func (k *DJKey) CiphertextBytes() int { return (k.ns1.BitLen() + 7) / 8 }

// onePlusNPow computes (1+n)^m mod n^(s+1) by the binomial expansion —
// Σ_{j=0..s} C(m, j)·n^j — which needs only s multiplications instead of a
// full modexp.
func (k *DJKey) onePlusNPow(m mpint.Nat) mpint.Nat {
	acc := mpint.One()
	term := mpint.One() // C(m, j)·n^j mod n^(s+1), j = 0
	for j := 1; j <= k.S; j++ {
		// term *= (m − j + 1)/j · n  — the division by j is exact on the
		// binomial coefficient; carry it as a modular inverse.
		mj := mpint.ModSub(mpint.Mod(m, k.ns1), mpint.FromUint64(uint64(j-1)), k.ns1)
		term = mpint.ModMul(term, mj, k.ns1)
		invJ, ok := mpint.ModInverse(mpint.FromUint64(uint64(j)), k.ns1)
		if !ok {
			// j shares a factor with n — impossible for small j and large
			// primes; fall back to the direct power for safety.
			return k.mont.Exp(mpint.AddWord(k.N, 1), m)
		}
		term = mpint.ModMul(term, invJ, k.ns1)
		term = mpint.ModMul(term, k.N, k.ns1)
		acc = mpint.ModAdd(acc, term, k.ns1)
	}
	return acc
}

// Encrypt encrypts m < n^s.
func (k *DJKey) Encrypt(m mpint.Nat, rng *mpint.RNG) (DJCiphertext, error) {
	if mpint.Cmp(m, k.ns) >= 0 {
		return DJCiphertext{}, fmt.Errorf("paillier: DJ plaintext (%d bits) must be < n^s (%d bits)",
			m.BitLen(), k.ns.BitLen())
	}
	r := rng.RandCoprime(k.N)
	gm := k.onePlusNPow(m)
	rns := k.mont.Exp(r, k.ns)
	return DJCiphertext{C: mpint.ModMul(gm, rns, k.ns1)}, nil
}

// djLog extracts x from a = (1+n)^x mod n^(s+1) with x < n^s — the
// recursive discrete-log algorithm of the Damgård–Jurik paper.
func (k *DJKey) djLog(a mpint.Nat) mpint.Nat {
	x := mpint.Zero()
	for j := 1; j <= k.S; j++ {
		nj := k.npow[j]
		// t1 = L(a mod n^(j+1)) = (a mod n^(j+1) − 1) / n, reduced mod n^j.
		t1 := mpint.Mod(mpint.Div(mpint.Sub(mpint.Mod(a, k.npow[j+1]), mpint.One()), k.N), nj)
		t2 := x.Clone()
		xj := x.Clone()
		for kk := 2; kk <= j; kk++ {
			xj = mpint.ModSub(xj, mpint.One(), nj)
			t2 = mpint.ModMul(t2, xj, nj)
			// t1 -= t2 · n^(k−1) / k!
			invFact, ok := mpint.ModInverse(factorial(kk), nj)
			if !ok {
				// cannot happen for k! coprime to n
				panic("paillier: factorial not invertible mod n^j")
			}
			sub := mpint.ModMul(mpint.ModMul(t2, k.npow[kk-1], nj), invFact, nj)
			t1 = mpint.ModSub(t1, sub, nj)
		}
		x = t1
	}
	return x
}

// factorial returns k! as a Nat (k ≤ 8 here, so this stays tiny).
func factorial(k int) mpint.Nat {
	f := uint64(1)
	for i := 2; i <= k; i++ {
		f *= uint64(i)
	}
	return mpint.FromUint64(f)
}

// Decrypt recovers m = djLog(c^λ)·λ⁻¹ mod n^s.
func (k *DJKey) Decrypt(c DJCiphertext) (mpint.Nat, error) {
	if c.C.IsZero() || mpint.Cmp(c.C, k.ns1) >= 0 {
		return nil, fmt.Errorf("paillier: DJ ciphertext out of range")
	}
	cl := k.mont.Exp(c.C, k.lambda)
	ml := k.djLog(cl)
	return mpint.ModMul(ml, k.lambdaInv, k.ns), nil
}

// Add is the additive homomorphism mod n^s.
func (k *DJKey) Add(a, b DJCiphertext) DJCiphertext {
	return DJCiphertext{C: mpint.ModMul(a.C, b.C, k.ns1)}
}

// MulPlain computes E(t·m) = E(m)^t.
func (k *DJKey) MulPlain(c DJCiphertext, t mpint.Nat) DJCiphertext {
	return DJCiphertext{C: k.mont.Exp(c.C, t)}
}
