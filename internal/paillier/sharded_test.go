package paillier

import (
	"testing"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// shardedBackend builds a GPUBackend over a D-device sharded engine.
func shardedBackend(t testing.TB, d int) (*GPUBackend, *ghe.ShardedEngine) {
	t.Helper()
	set, err := gpu.NewDeviceSet(gpu.SmallTestDevice(), true, d)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ghe.NewShardedEngine(set, ghe.CheckedConfig{VerifyFraction: 0.1, VerifySeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGPUBackend(eng)
	if err != nil {
		t.Fatal(err)
	}
	return b, eng
}

// singleBackend is the sequential reference: one device, no sharding.
func singleBackend(t testing.TB) *GPUBackend {
	t.Helper()
	b, err := NewGPUBackend(ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true)))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sameCts(t *testing.T, tag string, got, want []Ciphertext) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if mpint.Cmp(got[i].C, want[i].C) != 0 {
			t.Fatalf("%s: ciphertext %d differs", tag, i)
		}
	}
}

// TestShardedBackendBitExact: the full Paillier vector API through a device
// set matches the single-device backend bit-for-bit across D ∈ {1,2,4,8}.
func TestShardedBackendBitExact(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	rng := mpint.NewRNG(21)
	const n = 19
	ms := make([]mpint.Nat, n)
	for i := range ms {
		ms[i] = rng.RandBelow(pk.N)
	}
	ref := singleBackend(t)
	wantCts, err := ref.EncryptVec(pk, ms, 42)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, err := ref.AddVec(pk, wantCts, wantCts)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range []int{1, 2, 4, 8} {
		b, _ := shardedBackend(t, d)
		cts, err := b.EncryptVec(pk, ms, 42)
		if err != nil {
			t.Fatalf("D=%d EncryptVec: %v", d, err)
		}
		sameCts(t, "encrypt", cts, wantCts)
		sum, err := b.AddVec(pk, cts, cts)
		if err != nil {
			t.Fatalf("D=%d AddVec: %v", d, err)
		}
		sameCts(t, "add", sum, wantSum)
		dec, err := b.DecryptVec(sk, sum)
		if err != nil {
			t.Fatalf("D=%d DecryptVec: %v", d, err)
		}
		for i := range dec {
			want := mpint.Mod(mpint.Add(ms[i], ms[i]), pk.N)
			if mpint.Cmp(dec[i], want) != 0 {
				t.Fatalf("D=%d decrypt[%d] mismatch", d, i)
			}
		}
	}
}

// TestShardedBackendPooledNoncesBitExact: a prefilled pool over the sharded
// engine serves the same global-index stream, so pooled encryption equals
// unpooled encryption equals the single-device reference.
func TestShardedBackendPooledNoncesBitExact(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	rng := mpint.NewRNG(22)
	const n = 17
	ms := make([]mpint.Nat, n)
	for i := range ms {
		ms[i] = rng.RandBelow(pk.N)
	}
	ref := singleBackend(t)
	want, err := ref.EncryptVec(pk, ms, 99)
	if err != nil {
		t.Fatal(err)
	}

	b, eng := shardedBackend(t, 4)
	pool, err := NewNoncePool(pk, eng, 99)
	if err != nil {
		t.Fatal(err)
	}
	pool.Chunk = 5 // uneven chunks stress the global-index stitching
	moved, err := pool.Prefill(n)
	if err != nil {
		t.Fatal(err)
	}
	if moved <= 0 {
		t.Fatal("sharded prefill should reclassify accrued set time")
	}
	if got := eng.Set().SimTime(); got != 0 {
		t.Fatalf("online set clock after prefill = %v, want 0", got)
	}
	if st := eng.Set().Stats(); st.SimPrecomputeTime != moved {
		t.Fatalf("set precompute %v, want %v", st.SimPrecomputeTime, moved)
	}

	b.Pool = pool
	got, err := b.EncryptVec(pk, ms, 99)
	if err != nil {
		t.Fatal(err)
	}
	sameCts(t, "pooled encrypt", got, want)
	if st := pool.Stats(); st.Hits != int64(n) {
		t.Fatalf("pool hits = %d, want %d (stats %+v)", st.Hits, n, st)
	}
}

// TestShardedSessionSeqCost: chunked sessions over a sharded engine have no
// single-device pipeline, but each chunk still reports a modelled cost from
// the set's merged clock — and stays bit-exact with the whole-batch path.
func TestShardedSessionSeqCost(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	rng := mpint.NewRNG(23)
	const n = 12
	ms := make([]mpint.Nat, n)
	for i := range ms {
		ms[i] = rng.RandBelow(pk.N)
	}
	b, _ := shardedBackend(t, 2)
	want, err := b.EncryptVec(pk, ms, 7)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := b.BeginEncrypt(pk, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var got []Ciphertext
	for lo := 0; lo < n; lo += 5 {
		hi := lo + 5
		if hi > n {
			hi = n
		}
		cts, seq, err := sess.Next(ms[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if seq <= 0 {
			t.Fatalf("chunk [%d,%d) reported no modelled cost", lo, hi)
		}
		got = append(got, cts...)
	}
	sameCts(t, "session", got, want)
}

// TestShardedBackendMidBatchKill: killing one of four devices mid-encrypt
// leaves the ciphertexts bit-exact with the healthy reference.
func TestShardedBackendMidBatchKill(t *testing.T) {
	sk := testKey(t)
	pk := &sk.PublicKey
	rng := mpint.NewRNG(24)
	const n = 16
	ms := make([]mpint.Nat, n)
	for i := range ms {
		ms[i] = rng.RandBelow(pk.N)
	}
	ref := singleBackend(t)
	want, err := ref.EncryptVec(pk, ms, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, eng := shardedBackend(t, 4)
	// The kill lands mid-batch: the first launches succeed, then device 1
	// aborts everything from its third launch on.
	eng.Set().Device(1).SetFaultInjector(gpu.NewFaultInjector(gpu.FaultConfig{Seed: 2, KillAtLaunch: 3}))
	got, err := b.EncryptVec(pk, ms, 13)
	if err != nil {
		t.Fatalf("EncryptVec under mid-batch kill: %v", err)
	}
	sameCts(t, "encrypt under kill", got, want)
	dec, err := b.DecryptVec(sk, got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if mpint.Cmp(dec[i], ms[i]) != 0 {
			t.Fatalf("decrypt[%d] mismatch after kill", i)
		}
	}
}
