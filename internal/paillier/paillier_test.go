package paillier

import (
	"testing"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// testKey generates a small key once per test binary; 256 bits keeps the
// suite fast while exercising multi-limb arithmetic end to end.
func testKey(t testing.TB) *PrivateKey {
	t.Helper()
	sk, err := GenerateKey(mpint.NewRNG(1000), 256)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestKeyGeneration(t *testing.T) {
	sk := testKey(t)
	if sk.KeyBits() != 256 {
		t.Fatalf("key size = %d, want 256", sk.KeyBits())
	}
	if mpint.Cmp(mpint.Mul(sk.P, sk.Q), sk.N) != 0 {
		t.Fatal("n != p*q")
	}
	want := mpint.LCM(mpint.SubWord(sk.P, 1), mpint.SubWord(sk.Q, 1))
	if mpint.Cmp(sk.Lambda, want) != 0 {
		t.Fatal("lambda != lcm(p-1, q-1)")
	}
	if sk.CiphertextBytes() < 2*256/8 {
		t.Fatalf("ciphertext bytes %d below 2k bits", sk.CiphertextBytes())
	}
}

func TestGenerateKeyRejectsTinySize(t *testing.T) {
	if _, err := GenerateKey(mpint.NewRNG(1), 8); err == nil {
		t.Fatal("8-bit key should be rejected")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(2)
	for i := 0; i < 30; i++ {
		m := rng.RandBelow(sk.N)
		c, err := sk.Encrypt(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if mpint.Cmp(got, m) != 0 {
			t.Fatalf("round trip failed: got %s, want %s", got, m)
		}
	}
}

func TestEncryptRejectsOversizedPlaintext(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.Encrypt(sk.N, mpint.NewRNG(3)); err == nil {
		t.Fatal("m = n should be rejected")
	}
}

func TestDecryptRejectsBadCiphertext(t *testing.T) {
	sk := testKey(t)
	if _, err := sk.Decrypt(Ciphertext{}); err == nil {
		t.Fatal("zero ciphertext should be rejected")
	}
	if _, err := sk.Decrypt(Ciphertext{C: sk.N2}); err == nil {
		t.Fatal("out-of-range ciphertext should be rejected")
	}
}

func TestHomomorphicAddition(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(4)
	for i := 0; i < 20; i++ {
		m1 := rng.RandBelow(sk.N)
		m2 := rng.RandBelow(sk.N)
		c1, _ := sk.Encrypt(m1, rng)
		c2, _ := sk.Encrypt(m2, rng)
		sum, err := sk.Decrypt(sk.Add(c1, c2))
		if err != nil {
			t.Fatal(err)
		}
		want := mpint.ModAdd(m1, m2, sk.N)
		if mpint.Cmp(sum, want) != 0 {
			t.Fatalf("E(m1)*E(m2) decrypts to %s, want %s", sum, want)
		}
	}
}

func TestAddPlainAndMulPlain(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(5)
	m := rng.RandBelow(sk.N)
	k := rng.RandBelow(mpint.FromUint64(1 << 30))
	c, _ := sk.Encrypt(m, rng)

	sum, err := sk.Decrypt(sk.AddPlain(c, k))
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(sum, mpint.ModAdd(m, k, sk.N)) != 0 {
		t.Fatal("AddPlain wrong")
	}

	prod, err := sk.Decrypt(sk.MulPlain(c, k))
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(prod, mpint.ModMul(m, k, sk.N)) != 0 {
		t.Fatal("MulPlain wrong")
	}
}

func TestRerandomizePreservesPlaintext(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(6)
	m := rng.RandBelow(sk.N)
	c, _ := sk.Encrypt(m, rng)
	c2 := sk.Rerandomize(c, rng)
	if mpint.Cmp(c.C, c2.C) == 0 {
		t.Fatal("rerandomized ciphertext unchanged")
	}
	got, err := sk.Decrypt(c2)
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(got, m) != 0 {
		t.Fatal("rerandomize changed plaintext")
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(7)
	m := mpint.FromUint64(42)
	c1, _ := sk.Encrypt(m, rng)
	c2, _ := sk.Encrypt(m, rng)
	if mpint.Cmp(c1.C, c2.C) == 0 {
		t.Fatal("two encryptions of the same plaintext should differ")
	}
}

func TestClassicKeyG(t *testing.T) {
	sk, err := GenerateKeyClassic(mpint.NewRNG(8), 128)
	if err != nil {
		t.Fatal(err)
	}
	if sk.plusOne {
		t.Fatal("classic key should not use the n+1 fast path")
	}
	rng := mpint.NewRNG(9)
	for i := 0; i < 10; i++ {
		m := rng.RandBelow(sk.N)
		c, err := sk.Encrypt(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if mpint.Cmp(got, m) != 0 {
			t.Fatal("classic-g round trip failed")
		}
	}
}

func TestNewKeyFromPrimesValidation(t *testing.T) {
	r := mpint.NewRNG(10)
	p := r.RandPrime(64)
	if _, err := NewKeyFromPrimes(p, p); err == nil {
		t.Fatal("p == q should be rejected")
	}
	q := r.RandPrime(64)
	sk, err := NewKeyFromPrimes(p, q)
	if err != nil {
		t.Fatal(err)
	}
	m := mpint.FromUint64(12345)
	c, _ := sk.Encrypt(m, r)
	got, _ := sk.Decrypt(c)
	if mpint.Cmp(got, m) != 0 {
		t.Fatal("from-primes key round trip failed")
	}
}

func backends(t testing.TB) []Backend {
	eng := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	return []Backend{CPUBackend{}, MustGPUBackend(eng)}
}

func TestBackendsAgree(t *testing.T) {
	sk := testKey(t)
	rng := mpint.NewRNG(11)
	ms := make([]mpint.Nat, 12)
	ks := make([]mpint.Nat, 12)
	for i := range ms {
		ms[i] = rng.RandBelow(sk.N)
		ks[i] = rng.RandBelow(mpint.FromUint64(1 << 20))
	}
	for _, b := range backends(t) {
		t.Run(b.Name(), func(t *testing.T) {
			cs, err := b.EncryptVec(&sk.PublicKey, ms, 99)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := b.DecryptVec(sk, cs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ms {
				if mpint.Cmp(dec[i], ms[i]) != 0 {
					t.Fatalf("round trip failed at %d", i)
				}
			}
			sums, err := b.AddVec(&sk.PublicKey, cs, cs)
			if err != nil {
				t.Fatal(err)
			}
			dsums, err := b.DecryptVec(sk, sums)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ms {
				want := mpint.ModAdd(ms[i], ms[i], sk.N)
				if mpint.Cmp(dsums[i], want) != 0 {
					t.Fatalf("AddVec failed at %d", i)
				}
			}
			prods, err := b.MulPlainVec(&sk.PublicKey, cs, ks)
			if err != nil {
				t.Fatal(err)
			}
			dprods, err := b.DecryptVec(sk, prods)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ms {
				want := mpint.ModMul(ms[i], ks[i], sk.N)
				if mpint.Cmp(dprods[i], want) != 0 {
					t.Fatalf("MulPlainVec failed at %d", i)
				}
			}
		})
	}
}

func TestBackendErrorPaths(t *testing.T) {
	sk := testKey(t)
	for _, b := range backends(t) {
		if _, err := b.EncryptVec(&sk.PublicKey, []mpint.Nat{sk.N}, 1); err == nil {
			t.Errorf("%s: oversized plaintext should fail", b.Name())
		}
		if _, err := b.DecryptVec(sk, []Ciphertext{{C: sk.N2}}); err == nil {
			t.Errorf("%s: out-of-range ciphertext should fail", b.Name())
		}
		if _, err := b.AddVec(&sk.PublicKey, make([]Ciphertext, 2), make([]Ciphertext, 3)); err == nil {
			t.Errorf("%s: AddVec length mismatch should fail", b.Name())
		}
		if _, err := b.MulPlainVec(&sk.PublicKey, make([]Ciphertext, 2), nil); err == nil {
			t.Errorf("%s: MulPlainVec length mismatch should fail", b.Name())
		}
	}
}

func TestGPUKeyFromDevicePrimes(t *testing.T) {
	eng := ghe.MustEngine(gpu.MustNew(gpu.SmallTestDevice(), true))
	p, q, err := eng.GeneratePrimePair(64, 123)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewKeyFromPrimes(p, q)
	if err != nil {
		t.Fatal(err)
	}
	rng := mpint.NewRNG(12)
	m := mpint.FromUint64(777)
	c, err := sk.Encrypt(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(got, m) != 0 {
		t.Fatal("device-prime key round trip failed")
	}
}

func BenchmarkEncrypt256(b *testing.B) {
	sk := testKey(b)
	rng := mpint.NewRNG(20)
	m := rng.RandBelow(sk.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Encrypt(m, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt256(b *testing.B) {
	sk := testKey(b)
	rng := mpint.NewRNG(21)
	c, _ := sk.Encrypt(rng.RandBelow(sk.N), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}
