package paillier

import (
	"fmt"
	"reflect"

	"flbooster/internal/ghe"
	"flbooster/internal/mpint"
)

// Backend executes batched Paillier operations. The CPU backend runs every
// element serially (the FATE baseline); the GPU backend launches the
// vectorized kernels of internal/ghe (the HAFLO / FLBooster configurations).
type Backend interface {
	// Name identifies the backend in experiment reports.
	Name() string
	// EncryptVec encrypts every plaintext under pk.
	EncryptVec(pk *PublicKey, ms []mpint.Nat, seed uint64) ([]Ciphertext, error)
	// DecryptVec decrypts every ciphertext under sk.
	DecryptVec(sk *PrivateKey, cs []Ciphertext) ([]mpint.Nat, error)
	// AddVec computes the pairwise homomorphic addition of two batches.
	AddVec(pk *PublicKey, a, b []Ciphertext) ([]Ciphertext, error)
	// MulPlainVec raises each ciphertext to the matching plaintext scalar.
	MulPlainVec(pk *PublicKey, cs []Ciphertext, ks []mpint.Nat) ([]Ciphertext, error)
	// RerandomizeVec multiplies each ciphertext by a fresh encryption of
	// zero drawn from the seed's nonce stream, unlinking ciphertexts from
	// their origin without changing plaintexts.
	RerandomizeVec(pk *PublicKey, cs []Ciphertext, seed uint64) ([]Ciphertext, error)
}

// CPUBackend performs every HE operation serially on the host, as FATE's
// Python/CPU implementation does.
type CPUBackend struct{}

// Name implements Backend.
func (CPUBackend) Name() string { return "cpu-serial" }

// EncryptVec implements Backend.
func (CPUBackend) EncryptVec(pk *PublicKey, ms []mpint.Nat, seed uint64) ([]Ciphertext, error) {
	rng := mpint.NewRNG(seed)
	out := make([]Ciphertext, len(ms))
	for i, m := range ms {
		c, err := pk.Encrypt(m, rng)
		if err != nil {
			return nil, fmt.Errorf("paillier: cpu EncryptVec[%d]: %w", i, err)
		}
		out[i] = c
	}
	return out, nil
}

// DecryptVec implements Backend.
func (CPUBackend) DecryptVec(sk *PrivateKey, cs []Ciphertext) ([]mpint.Nat, error) {
	out := make([]mpint.Nat, len(cs))
	for i, c := range cs {
		m, err := sk.Decrypt(c)
		if err != nil {
			return nil, fmt.Errorf("paillier: cpu DecryptVec[%d]: %w", i, err)
		}
		out[i] = m
	}
	return out, nil
}

// AddVec implements Backend.
func (CPUBackend) AddVec(pk *PublicKey, a, b []Ciphertext) ([]Ciphertext, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("paillier: AddVec length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]Ciphertext, len(a))
	for i := range a {
		out[i] = pk.Add(a[i], b[i])
	}
	return out, nil
}

// MulPlainVec implements Backend.
func (CPUBackend) MulPlainVec(pk *PublicKey, cs []Ciphertext, ks []mpint.Nat) ([]Ciphertext, error) {
	if len(cs) != len(ks) {
		return nil, fmt.Errorf("paillier: MulPlainVec length mismatch %d vs %d", len(cs), len(ks))
	}
	out := make([]Ciphertext, len(cs))
	for i := range cs {
		out[i] = pk.MulPlain(cs[i], ks[i])
	}
	return out, nil
}

// RerandomizeVec implements Backend with the sequential host RNG stream.
func (CPUBackend) RerandomizeVec(pk *PublicKey, cs []Ciphertext, seed uint64) ([]Ciphertext, error) {
	rng := mpint.NewRNG(seed)
	out := make([]Ciphertext, len(cs))
	for i, c := range cs {
		out[i] = pk.Rerandomize(c, rng)
	}
	return out, nil
}

// GPUBackend lowers batched operations onto the GPU-HE engine, following the
// pipeline of Fig. 4: convert, copy to device, compute in parallel, copy
// back. The engine is any ghe.VectorEngine — the raw device engine, the
// checked wrapper with retry/verify/fallback, or the pure-host fallback —
// so the backend degrades between substrates without code changes.
type GPUBackend struct {
	Engine ghe.VectorEngine
	// Pool optionally serves precomputed rⁿ noise terms to EncryptVec,
	// RerandomizeVec, and streamed encryption sessions. Because the pool
	// draws from the same global-index nonce stream the engine defines,
	// attaching it never changes results — only how much exponentiation
	// work remains on the online path. Nil disables pooling.
	Pool *NoncePool
}

// NewGPUBackend wraps a GPU-HE vector engine. Typed nils (e.g. a nil
// *ghe.Engine boxed in the interface) are rejected like bare nil, so the
// backend cannot be built around an engine that panics on first use.
func NewGPUBackend(e ghe.VectorEngine) (*GPUBackend, error) {
	if e == nil || isNilEngine(e) {
		return nil, fmt.Errorf("paillier: NewGPUBackend needs an engine")
	}
	return &GPUBackend{Engine: e}, nil
}

// isNilEngine reports whether the interface boxes a nil pointer value.
func isNilEngine(e ghe.VectorEngine) bool {
	v := reflect.ValueOf(e)
	switch v.Kind() {
	case reflect.Ptr, reflect.Map, reflect.Slice, reflect.Chan, reflect.Func:
		return v.IsNil()
	}
	return false
}

// MustGPUBackend is NewGPUBackend for known-good engines; it panics on
// error. Intended for tests.
func MustGPUBackend(e ghe.VectorEngine) *GPUBackend {
	g, err := NewGPUBackend(e)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements Backend.
func (g *GPUBackend) Name() string { return "gpu-he" }

// nonceTerms returns the rⁿ mod n² noise terms for global nonce-stream
// positions [base, base+count) under seed. Ready terms pop from the
// attached pool — a hit skips the online exponentiation entirely — and the
// remainder is drawn and exponentiated through the engine from the same
// stream positions, so results are identical with or without a pool.
func (g *GPUBackend) nonceTerms(pk *PublicKey, base, count int, seed uint64) ([]mpint.Nat, error) {
	if count == 0 {
		return nil, nil
	}
	var ready []mpint.Nat
	if g.Pool != nil {
		ready = g.Pool.take(pk, seed, base, count)
		if len(ready) == count {
			return ready, nil
		}
	}
	at, need := base+len(ready), count-len(ready)
	var rs []mpint.Nat
	var err error
	if se, ok := g.Engine.(ghe.StreamEngine); ok {
		rs, err = se.RandCoprimeRange(at, need, pk.N, seed)
	} else if at == 0 {
		rs, err = g.Engine.RandCoprimeVec(need, pk.N, seed)
	} else {
		return nil, fmt.Errorf("paillier: engine %T cannot draw nonces at stream offset %d", g.Engine, at)
	}
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu nonces at %d: %w", at, err)
	}
	rn, err := g.Engine.ModExpVec(rs, pk.N, pk.MontN2())
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu r^n at %d: %w", at, err)
	}
	if len(ready) == 0 {
		return rn, nil
	}
	return append(ready, rn...), nil
}

// gPowMVec computes the gᵐ term for a batch. Under the g = n+1 shortcut
// each term is two word-level host ops. A classic generator makes every
// term a full n-bit-exponent modexp — but the base is fixed across the
// batch, so it runs as one fixed-base comb kernel (device-modelled, one
// shared precomputed table) instead of a host loop of independent Exp
// calls. Results are identical either way.
func (g *GPUBackend) gPowMVec(pk *PublicKey, ms []mpint.Nat) ([]mpint.Nat, error) {
	if pk.plusOne {
		gm := make([]mpint.Nat, len(ms))
		for i, m := range ms {
			gm[i] = pk.GPowM(m)
		}
		return gm, nil
	}
	return g.Engine.FixedBaseExpVec(pk.G, ms, pk.MontN2())
}

// EncryptVec implements Backend. gᵐ uses the n+1 shortcut on the host (two
// word-level ops per element; a fixed-base kernel for classic generators)
// while the expensive rⁿ modexp batch comes from the nonce pool or runs as
// one device kernel, then a hom-mul kernel combines them.
func (g *GPUBackend) EncryptVec(pk *PublicKey, ms []mpint.Nat, seed uint64) ([]Ciphertext, error) {
	for i, m := range ms {
		if mpint.Cmp(m, pk.N) >= 0 {
			return nil, fmt.Errorf("paillier: gpu EncryptVec[%d]: plaintext exceeds modulus", i)
		}
	}
	rn, err := g.nonceTerms(pk, 0, len(ms), seed)
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu EncryptVec: %w", err)
	}
	gm, err := g.gPowMVec(pk, ms)
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu EncryptVec g^m: %w", err)
	}
	prod, err := g.Engine.ModMulVec(gm, rn, pk.MontN2())
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu EncryptVec combine: %w", err)
	}
	out := make([]Ciphertext, len(ms))
	for i := range prod {
		out[i] = Ciphertext{C: prod[i]}
	}
	return out, nil
}

// RerandomizeVec implements Backend: each ciphertext is multiplied by a
// ready (or freshly computed) rⁿ noise term in one hom-mul kernel.
func (g *GPUBackend) RerandomizeVec(pk *PublicKey, cs []Ciphertext, seed uint64) ([]Ciphertext, error) {
	rn, err := g.nonceTerms(pk, 0, len(cs), seed)
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu RerandomizeVec: %w", err)
	}
	cv := make([]mpint.Nat, len(cs))
	for i := range cs {
		cv[i] = cs[i].C
	}
	prod, err := g.Engine.ModMulVec(cv, rn, pk.MontN2())
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu RerandomizeVec combine: %w", err)
	}
	out := make([]Ciphertext, len(cs))
	for i := range prod {
		out[i] = Ciphertext{C: prod[i]}
	}
	return out, nil
}

// DecryptVec implements Backend with the reduced-exponent CRT split: two
// shared-exponent kernels over the half-size moduli p² and q² (exponents
// p−1 and q−1, half the bits of λ, on operands with half the limbs), then
// the cheap L(·)·h and Garner recombination per element on the host.
func (g *GPUBackend) DecryptVec(sk *PrivateKey, cs []Ciphertext) ([]mpint.Nat, error) {
	bases := make([]mpint.Nat, len(cs))
	for i, c := range cs {
		if c.C.IsZero() || mpint.Cmp(c.C, sk.N2) >= 0 {
			return nil, fmt.Errorf("paillier: gpu DecryptVec[%d]: ciphertext out of range", i)
		}
		bases[i] = c.C
	}
	xp, err := g.Engine.ModExpVec(bases, sk.pm1, sk.montP2)
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu DecryptVec c^(p-1): %w", err)
	}
	xq, err := g.Engine.ModExpVec(bases, sk.qm1, sk.montQ2)
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu DecryptVec c^(q-1): %w", err)
	}
	out := make([]mpint.Nat, len(cs))
	for i := range cs {
		mp := mpint.ModMul(lHalf(xp[i], sk.P), sk.hp, sk.P)
		mq := mpint.ModMul(lHalf(xq[i], sk.Q), sk.hq, sk.Q)
		out[i] = sk.garner(mp, mq)
	}
	return out, nil
}

// AddVec implements Backend as a single modular-multiplication kernel.
func (g *GPUBackend) AddVec(pk *PublicKey, a, b []Ciphertext) ([]Ciphertext, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("paillier: AddVec length mismatch %d vs %d", len(a), len(b))
	}
	av := make([]mpint.Nat, len(a))
	bv := make([]mpint.Nat, len(b))
	for i := range a {
		av[i], bv[i] = a[i].C, b[i].C
	}
	prod, err := g.Engine.ModMulVec(av, bv, pk.MontN2())
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu AddVec: %w", err)
	}
	out := make([]Ciphertext, len(a))
	for i := range prod {
		out[i] = Ciphertext{C: prod[i]}
	}
	return out, nil
}

// MulPlainVec implements Backend as a variable-exponent modexp kernel.
func (g *GPUBackend) MulPlainVec(pk *PublicKey, cs []Ciphertext, ks []mpint.Nat) ([]Ciphertext, error) {
	if len(cs) != len(ks) {
		return nil, fmt.Errorf("paillier: MulPlainVec length mismatch %d vs %d", len(cs), len(ks))
	}
	bases := make([]mpint.Nat, len(cs))
	for i, c := range cs {
		bases[i] = c.C
	}
	pow, err := g.Engine.ModExpVarVec(bases, ks, pk.MontN2())
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu MulPlainVec: %w", err)
	}
	out := make([]Ciphertext, len(cs))
	for i := range pow {
		out[i] = Ciphertext{C: pow[i]}
	}
	return out, nil
}
