package paillier

import (
	"fmt"
	"reflect"

	"flbooster/internal/ghe"
	"flbooster/internal/mpint"
)

// Backend executes batched Paillier operations. The CPU backend runs every
// element serially (the FATE baseline); the GPU backend launches the
// vectorized kernels of internal/ghe (the HAFLO / FLBooster configurations).
type Backend interface {
	// Name identifies the backend in experiment reports.
	Name() string
	// EncryptVec encrypts every plaintext under pk.
	EncryptVec(pk *PublicKey, ms []mpint.Nat, seed uint64) ([]Ciphertext, error)
	// DecryptVec decrypts every ciphertext under sk.
	DecryptVec(sk *PrivateKey, cs []Ciphertext) ([]mpint.Nat, error)
	// AddVec computes the pairwise homomorphic addition of two batches.
	AddVec(pk *PublicKey, a, b []Ciphertext) ([]Ciphertext, error)
	// MulPlainVec raises each ciphertext to the matching plaintext scalar.
	MulPlainVec(pk *PublicKey, cs []Ciphertext, ks []mpint.Nat) ([]Ciphertext, error)
}

// CPUBackend performs every HE operation serially on the host, as FATE's
// Python/CPU implementation does.
type CPUBackend struct{}

// Name implements Backend.
func (CPUBackend) Name() string { return "cpu-serial" }

// EncryptVec implements Backend.
func (CPUBackend) EncryptVec(pk *PublicKey, ms []mpint.Nat, seed uint64) ([]Ciphertext, error) {
	rng := mpint.NewRNG(seed)
	out := make([]Ciphertext, len(ms))
	for i, m := range ms {
		c, err := pk.Encrypt(m, rng)
		if err != nil {
			return nil, fmt.Errorf("paillier: cpu EncryptVec[%d]: %w", i, err)
		}
		out[i] = c
	}
	return out, nil
}

// DecryptVec implements Backend.
func (CPUBackend) DecryptVec(sk *PrivateKey, cs []Ciphertext) ([]mpint.Nat, error) {
	out := make([]mpint.Nat, len(cs))
	for i, c := range cs {
		m, err := sk.Decrypt(c)
		if err != nil {
			return nil, fmt.Errorf("paillier: cpu DecryptVec[%d]: %w", i, err)
		}
		out[i] = m
	}
	return out, nil
}

// AddVec implements Backend.
func (CPUBackend) AddVec(pk *PublicKey, a, b []Ciphertext) ([]Ciphertext, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("paillier: AddVec length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]Ciphertext, len(a))
	for i := range a {
		out[i] = pk.Add(a[i], b[i])
	}
	return out, nil
}

// MulPlainVec implements Backend.
func (CPUBackend) MulPlainVec(pk *PublicKey, cs []Ciphertext, ks []mpint.Nat) ([]Ciphertext, error) {
	if len(cs) != len(ks) {
		return nil, fmt.Errorf("paillier: MulPlainVec length mismatch %d vs %d", len(cs), len(ks))
	}
	out := make([]Ciphertext, len(cs))
	for i := range cs {
		out[i] = pk.MulPlain(cs[i], ks[i])
	}
	return out, nil
}

// GPUBackend lowers batched operations onto the GPU-HE engine, following the
// pipeline of Fig. 4: convert, copy to device, compute in parallel, copy
// back. The engine is any ghe.VectorEngine — the raw device engine, the
// checked wrapper with retry/verify/fallback, or the pure-host fallback —
// so the backend degrades between substrates without code changes.
type GPUBackend struct {
	Engine ghe.VectorEngine
}

// NewGPUBackend wraps a GPU-HE vector engine. Typed nils (e.g. a nil
// *ghe.Engine boxed in the interface) are rejected like bare nil, so the
// backend cannot be built around an engine that panics on first use.
func NewGPUBackend(e ghe.VectorEngine) (*GPUBackend, error) {
	if e == nil || isNilEngine(e) {
		return nil, fmt.Errorf("paillier: NewGPUBackend needs an engine")
	}
	return &GPUBackend{Engine: e}, nil
}

// isNilEngine reports whether the interface boxes a nil pointer value.
func isNilEngine(e ghe.VectorEngine) bool {
	v := reflect.ValueOf(e)
	switch v.Kind() {
	case reflect.Ptr, reflect.Map, reflect.Slice, reflect.Chan, reflect.Func:
		return v.IsNil()
	}
	return false
}

// MustGPUBackend is NewGPUBackend for known-good engines; it panics on
// error. Intended for tests.
func MustGPUBackend(e ghe.VectorEngine) *GPUBackend {
	g, err := NewGPUBackend(e)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements Backend.
func (g *GPUBackend) Name() string { return "gpu-he" }

// EncryptVec implements Backend. gᵐ uses the n+1 shortcut on the host (two
// word-level ops per element) while the expensive rⁿ modexp batch runs as
// one device kernel, then a hom-mul kernel combines them.
func (g *GPUBackend) EncryptVec(pk *PublicKey, ms []mpint.Nat, seed uint64) ([]Ciphertext, error) {
	for i, m := range ms {
		if mpint.Cmp(m, pk.N) >= 0 {
			return nil, fmt.Errorf("paillier: gpu EncryptVec[%d]: plaintext exceeds modulus", i)
		}
	}
	rs, err := g.Engine.RandCoprimeVec(len(ms), pk.N, seed)
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu EncryptVec nonces: %w", err)
	}
	rn, err := g.Engine.ModExpVec(rs, pk.N, pk.MontN2())
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu EncryptVec r^n: %w", err)
	}
	gm := make([]mpint.Nat, len(ms))
	for i, m := range ms {
		gm[i] = pk.GPowM(m)
	}
	prod, err := g.Engine.ModMulVec(gm, rn, pk.MontN2())
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu EncryptVec combine: %w", err)
	}
	out := make([]Ciphertext, len(ms))
	for i := range prod {
		out[i] = Ciphertext{C: prod[i]}
	}
	return out, nil
}

// DecryptVec implements Backend: one c^λ kernel, then the cheap L(·)·μ
// host-side finish per element.
func (g *GPUBackend) DecryptVec(sk *PrivateKey, cs []Ciphertext) ([]mpint.Nat, error) {
	bases := make([]mpint.Nat, len(cs))
	for i, c := range cs {
		if c.C.IsZero() || mpint.Cmp(c.C, sk.N2) >= 0 {
			return nil, fmt.Errorf("paillier: gpu DecryptVec[%d]: ciphertext out of range", i)
		}
		bases[i] = c.C
	}
	cl, err := g.Engine.ModExpVec(bases, sk.Lambda, sk.MontN2())
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu DecryptVec c^λ: %w", err)
	}
	out := make([]mpint.Nat, len(cs))
	for i := range cl {
		out[i] = mpint.ModMul(sk.lFunc(cl[i]), sk.Mu, sk.N)
	}
	return out, nil
}

// AddVec implements Backend as a single modular-multiplication kernel.
func (g *GPUBackend) AddVec(pk *PublicKey, a, b []Ciphertext) ([]Ciphertext, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("paillier: AddVec length mismatch %d vs %d", len(a), len(b))
	}
	av := make([]mpint.Nat, len(a))
	bv := make([]mpint.Nat, len(b))
	for i := range a {
		av[i], bv[i] = a[i].C, b[i].C
	}
	prod, err := g.Engine.ModMulVec(av, bv, pk.MontN2())
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu AddVec: %w", err)
	}
	out := make([]Ciphertext, len(a))
	for i := range prod {
		out[i] = Ciphertext{C: prod[i]}
	}
	return out, nil
}

// MulPlainVec implements Backend as a variable-exponent modexp kernel.
func (g *GPUBackend) MulPlainVec(pk *PublicKey, cs []Ciphertext, ks []mpint.Nat) ([]Ciphertext, error) {
	if len(cs) != len(ks) {
		return nil, fmt.Errorf("paillier: MulPlainVec length mismatch %d vs %d", len(cs), len(ks))
	}
	bases := make([]mpint.Nat, len(cs))
	for i, c := range cs {
		bases[i] = c.C
	}
	pow, err := g.Engine.ModExpVarVec(bases, ks, pk.MontN2())
	if err != nil {
		return nil, fmt.Errorf("paillier: gpu MulPlainVec: %w", err)
	}
	out := make([]Ciphertext, len(cs))
	for i := range pow {
		out[i] = Ciphertext{C: pow[i]}
	}
	return out, nil
}
