package paillier

import (
	"testing"

	"flbooster/internal/ghe"
)

// TestNewGPUBackendRejectsNilEngines: both a bare nil and a typed nil boxed
// in the interface must be rejected at construction, not panic on first use.
func TestNewGPUBackendRejectsNilEngines(t *testing.T) {
	if _, err := NewGPUBackend(nil); err == nil {
		t.Fatal("nil engine must be rejected")
	}
	if _, err := NewGPUBackend((*ghe.Engine)(nil)); err == nil {
		t.Fatal("typed-nil *ghe.Engine must be rejected")
	}
	if _, err := NewGPUBackend((*ghe.CheckedEngine)(nil)); err == nil {
		t.Fatal("typed-nil *ghe.CheckedEngine must be rejected")
	}
	if _, err := NewGPUBackend((*ghe.CPUEngine)(nil)); err == nil {
		t.Fatal("typed-nil *ghe.CPUEngine must be rejected")
	}
	if b, err := NewGPUBackend(ghe.NewCPUEngine()); err != nil || b == nil {
		t.Fatalf("valid engine rejected: %v", err)
	}
}
