package paillier

import (
	"fmt"
	"sync"
	"time"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
)

// NoncePool precomputes Paillier noise terms offline. Encryption's dominant
// cost is rⁿ mod n² — an n-bit exponentiation that does not depend on the
// plaintext — so a pool can compute batches of (r, rⁿ) pairs during idle
// sim-time and let the online path pop a ready pair per ciphertext.
//
// Determinism: the pool draws from the same global-index nonce stream that
// ghe.StreamEngine.RandCoprimeRange defines — pair i under seed s is
// identical whether it was precomputed, computed inline by EncryptVec, or
// recomputed after a mid-stream fault retry. A pooled encryption is
// therefore bit-exact with its unpooled counterpart; the pool only moves
// work off the online path, never changes results.
//
// Cost accounting: Prefill brackets its device work with
// gpu.Device.ReclassifyPrecompute, so precomputed batches charge
// SimPrecomputeTime instead of the online SimTime() clock.
type NoncePool struct {
	mu   sync.Mutex
	pk   *PublicKey
	eng  ghe.StreamEngine
	seed uint64
	head int // global stream index of rns[0]
	rns  []mpint.Nat

	// Chunk is the refill batch size fed through the device pipeline;
	// defaults to 32 when zero or negative.
	Chunk int

	stats PoolStats
}

// PoolStats counts pool traffic: how many noise terms the online path got
// for free (Hits) versus had to compute inline (Misses), and what the
// offline refills cost.
type PoolStats struct {
	// Hits and Misses count noise terms requested on the online path that
	// were served ready versus computed inline.
	Hits, Misses int64
	// Refills counts Prefill calls that did work; Precomputed counts the
	// noise terms they produced.
	Refills     int64
	Precomputed int64
	// RefillSim is the simulated device time reclassified from the online
	// clock to SimPrecomputeTime across all refills.
	RefillSim time.Duration
}

// NewNoncePool builds a pool over pk's nonce stream under seed. The engine
// must address nonces by global stream position (every shipped engine
// does); the device, when present, charges refills as precompute time.
func NewNoncePool(pk *PublicKey, eng ghe.StreamEngine, seed uint64) (*NoncePool, error) {
	if pk == nil {
		return nil, fmt.Errorf("paillier: NewNoncePool needs a public key")
	}
	if eng == nil {
		return nil, fmt.Errorf("paillier: NewNoncePool needs a stream engine")
	}
	return &NoncePool{pk: pk, eng: eng, seed: seed}, nil
}

// Seed returns the nonce-stream seed the pool currently serves.
func (p *NoncePool) Seed() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seed
}

// Ready returns how many precomputed pairs are waiting.
func (p *NoncePool) Ready() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.rns)
}

// Stats returns a snapshot of the pool counters.
func (p *NoncePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Reseed discards every precomputed pair and retargets the pool at a new
// stream: seed's global index 0 onward. Call before Prefill when the next
// encryption batch will run under a different seed.
func (p *NoncePool) Reseed(seed uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seed = seed
	p.head = 0
	p.rns = p.rns[:0]
}

// Prefill precomputes noise terms until `count` pairs are ready, feeding
// Chunk-sized batches through the device's H2D/compute/D2H streams so
// successive refill chunks overlap. The device work is reclassified as
// SimPrecomputeTime (returned), leaving the online SimTime() clock
// untouched — the accounting that makes "offline" mean something under the
// simulated clock. Engines without a device refill on the host for free.
//
// A chunk appends to the pool only after both its r-draw and its
// rⁿ-exponentiation succeed, so a mid-chunk fault retry inside a checked
// engine can never desynchronize the pool against the global stream cursor.
func (p *NoncePool) Prefill(count int) (time.Duration, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	need := count - len(p.rns)
	if need <= 0 {
		return 0, nil
	}
	chunk := p.Chunk
	if chunk <= 0 {
		chunk = 32
	}
	dev := p.eng.StreamDevice()
	var mark gpu.Stats
	var pipe *gpu.Pipeline
	var finish func() time.Duration
	if dev != nil {
		mark = dev.Stats()
		pipe = dev.NewPipeline(2)
	} else if off, ok := p.eng.(ghe.OfflineEngine); ok {
		// Deviceless but clocked (a sharded multi-device engine): bracket the
		// whole refill and reclassify the set's accrued cost as precompute.
		finish = off.BeginOffline()
	}
	refillErr := func(err error) (time.Duration, error) {
		if pipe != nil {
			pipe.Close()
			p.stats.RefillSim += dev.ReclassifyPrecompute(mark)
		} else if finish != nil {
			p.stats.RefillSim += finish()
		}
		return 0, err
	}
	for done := 0; done < need; {
		n := chunk
		if rest := need - done; n > rest {
			n = rest
		}
		if pipe != nil {
			pipe.Begin()
		}
		base := p.head + len(p.rns)
		rs, err := p.eng.RandCoprimeRange(base, n, p.pk.N, p.seed)
		if err != nil {
			return refillErr(fmt.Errorf("paillier: pool refill nonces at %d: %w", base, err))
		}
		rns, err := p.eng.ModExpVec(rs, p.pk.N, p.pk.MontN2())
		if err != nil {
			return refillErr(fmt.Errorf("paillier: pool refill r^n at %d: %w", base, err))
		}
		if pipe != nil {
			pipe.End()
		}
		p.rns = append(p.rns, rns...)
		done += n
		p.stats.Precomputed += int64(n)
	}
	p.stats.Refills++
	var moved time.Duration
	if pipe != nil {
		pipe.Close()
		moved = dev.ReclassifyPrecompute(mark)
		p.stats.RefillSim += moved
	} else if finish != nil {
		moved = finish()
		p.stats.RefillSim += moved
	}
	return moved, nil
}

// take pops up to `count` ready rⁿ terms for global stream positions
// [base, base+count) under (pk, seed). Positions the pool cannot serve —
// wrong key, wrong seed, misaligned base, or an empty pool — count as
// misses and return short (possibly nil); the caller computes the
// remainder inline from position base+len(served).
func (p *NoncePool) take(pk *PublicKey, seed uint64, base, count int) []mpint.Nat {
	if count <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if seed != p.seed || base != p.head || len(p.rns) == 0 ||
		pk != p.pk && mpint.Cmp(pk.N, p.pk.N) != 0 {
		p.stats.Misses += int64(count)
		return nil
	}
	k := count
	if k > len(p.rns) {
		k = len(p.rns)
	}
	served := make([]mpint.Nat, k)
	copy(served, p.rns[:k])
	p.rns = p.rns[k:]
	p.head += k
	p.stats.Hits += int64(k)
	p.stats.Misses += int64(count - k)
	return served
}
