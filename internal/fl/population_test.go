package fl

import (
	"strings"
	"testing"
)

func testRoster(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = ClientName(i)
	}
	return names
}

// TestSampleCohortDeterministicSubset pins the cohort sampler's contract:
// the sample is a pure function of (roster, k, seed, round), a true subset
// of the requested size, and comes back in canonical roster order.
func TestSampleCohortDeterministicSubset(t *testing.T) {
	active := testRoster(10)
	a := SampleCohort(active, 4, 7, 3)
	b := SampleCohort(active, 4, 7, 3)
	if !sameMembers(a, b) {
		t.Fatalf("same inputs sampled different cohorts: %v vs %v", a, b)
	}
	if len(a) != 4 {
		t.Fatalf("cohort size %d, want 4", len(a))
	}
	pos := make(map[string]int, len(active))
	for i, name := range active {
		pos[name] = i
	}
	last := -1
	for _, name := range a {
		p, ok := pos[name]
		if !ok {
			t.Fatalf("cohort member %q not in the roster", name)
		}
		if p <= last {
			t.Fatalf("cohort %v not in canonical roster order", a)
		}
		last = p
	}
}

// TestSampleCohortVariesAcrossRoundsAndSeeds: different rounds (and
// different seeds) must draw different cohorts often enough that the
// scheduler actually rotates clients instead of pinning one subset.
func TestSampleCohortVariesAcrossRoundsAndSeeds(t *testing.T) {
	active := testRoster(12)
	distinct := map[string]bool{}
	for round := uint64(1); round <= 16; round++ {
		distinct[strings.Join(SampleCohort(active, 5, 99, round), ",")] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("16 rounds drew only %d distinct cohorts", len(distinct))
	}
	if sameMembers(SampleCohort(active, 5, 1, 1), SampleCohort(active, 5, 2, 1)) {
		// Two specific seeds colliding is possible in principle but this pair
		// is fixed, so a collision here means the seed is being ignored.
		t.Fatal("seed does not influence the sample")
	}
}

// TestSampleCohortDegenerateSizes: k ≤ 0 and k ≥ N schedule the whole
// roster, and the returned slice is a copy the caller may keep.
func TestSampleCohortDegenerateSizes(t *testing.T) {
	active := testRoster(5)
	for _, k := range []int{0, -1, 5, 9} {
		got := SampleCohort(active, k, 3, 1)
		if !sameMembers(got, active) {
			t.Fatalf("k=%d: got %v, want the full roster", k, got)
		}
		got[0] = "mutated"
		if active[0] != ClientName(0) {
			t.Fatal("sample aliases the roster slice")
		}
		active[0] = ClientName(0)
	}
}

func TestCohortPolicyValidate(t *testing.T) {
	good := []CohortPolicy{
		{},
		{Size: 3},
		{Fanout: 2},
		{Size: 4, Fanout: 8, MaxInflight: 2},
	}
	for _, cp := range good {
		if err := cp.Validate(4); err != nil {
			t.Errorf("%+v: unexpected error %v", cp, err)
		}
	}
	bad := []CohortPolicy{
		{Size: -1},
		{Size: 5},
		{Fanout: -2},
		{Fanout: 1},
		{MaxInflight: -1},
	}
	for _, cp := range bad {
		if err := cp.Validate(4); err == nil {
			t.Errorf("%+v validated against 4 parties", cp)
		}
	}
	if (CohortPolicy{}).Enabled() {
		t.Fatal("zero policy must mean the flat protocol")
	}
	if !(CohortPolicy{Size: 2}).Sampling() || !(CohortPolicy{Fanout: 2}).Tree() {
		t.Fatal("policy togglers broken")
	}
}

// TestProfileRejectsQuorumAboveCohort: a quorum the sampled cohort can never
// satisfy must be a configuration error, not a round that fails forever.
func TestProfileRejectsQuorumAboveCohort(t *testing.T) {
	p := testProfile(SystemFATE)
	p.Cohort = CohortPolicy{Size: 2}
	p.Round.Quorum = 3
	if err := p.Validate(); err == nil {
		t.Fatal("quorum 3 over a 2-client cohort validated")
	}
	p.Round.Quorum = 2
	if err := p.Validate(); err != nil {
		t.Fatalf("quorum == cohort size should validate: %v", err)
	}
}
