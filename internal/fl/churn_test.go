package fl

import (
	"testing"

	"flbooster/internal/flnet"
)

// TestChurnLeaveRejoinAdmission walks the roster life-cycle across round
// boundaries: a departed client stops contributing (with the scale
// compensating), a rejoin parks it as pending, and the next round boundary
// admits it — reported in RoundReport.Admitted.
func TestChurnLeaveRejoinAdmission(t *testing.T) {
	p := quorumProfile(SystemFLBooster)
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	grads := epochGrads(1, p.Parties, 4)[0]

	// Round 1: full federation.
	_, rep, err := fed.SecureAggregateReport(grads)
	if err != nil || len(rep.Included) != 4 || rep.Scale != 1 {
		t.Fatalf("round 1: rep %+v err %v", rep, err)
	}

	// client1 departs; round 2 runs with the remaining three at scale 4/3.
	if err := fed.Leave(ClientName(1)); err != nil {
		t.Fatal(err)
	}
	_, rep, err = fed.SecureAggregateReport(grads)
	if err != nil {
		t.Fatalf("round 2: %v", err)
	}
	if len(rep.Included) != 3 || rep.Scale != 4.0/3.0 {
		t.Fatalf("round 2: rep %+v", rep)
	}
	for _, name := range rep.Included {
		if name == ClientName(1) {
			t.Fatalf("departed client included: %+v", rep)
		}
	}

	// Rejoin parks the client: it is pending, not active, until the boundary.
	if err := fed.Rejoin(ClientName(1)); err != nil {
		t.Fatal(err)
	}
	if got := fed.Roster().Pending(); len(got) != 1 || got[0] != ClientName(1) {
		t.Fatalf("pending %v", got)
	}
	if got := fed.Roster().Active(); len(got) != 3 {
		t.Fatalf("active %v before the boundary", got)
	}

	// Round 3 admits it at the boundary and runs full again.
	_, rep, err = fed.SecureAggregateReport(grads)
	if err != nil {
		t.Fatalf("round 3: %v", err)
	}
	if len(rep.Admitted) != 1 || rep.Admitted[0] != ClientName(1) {
		t.Fatalf("round 3 admitted %v", rep.Admitted)
	}
	if len(rep.Included) != 4 || rep.Scale != 1 {
		t.Fatalf("round 3: rep %+v", rep)
	}
}

// TestChurnLeaveRejoinSameRound is the regression for the tightest churn
// window: a client that leaves and rejoins between the same two round
// boundaries must be admitted exactly once, contribute normally, and burn
// none of the round's drop budget. Repeated rejoin requests in the window
// must be rejected rather than queueing a double admission.
func TestChurnLeaveRejoinSameRound(t *testing.T) {
	p := quorumProfile(SystemFLBooster) // quorum 3 of 4
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	grads := epochGrads(1, p.Parties, 4)[0]

	// Leave and rejoin with no round in between: the client is pending, and
	// every further rejoin in the same window is a rejected double-admit.
	if err := fed.Leave(ClientName(2)); err != nil {
		t.Fatal(err)
	}
	if err := fed.Rejoin(ClientName(2)); err != nil {
		t.Fatal(err)
	}
	if err := fed.Rejoin(ClientName(2)); err == nil {
		t.Fatal("double rejoin within the same round window accepted")
	}
	if got := fed.Roster().Pending(); len(got) != 1 || got[0] != ClientName(2) {
		t.Fatalf("pending %v, want just %s", got, ClientName(2))
	}

	// The next boundary admits it exactly once; the round runs full, with no
	// drop recorded — the leave/rejoin cycle must not count against the
	// quorum budget.
	_, rep, err := fed.SecureAggregateReport(grads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Admitted) != 1 || rep.Admitted[0] != ClientName(2) {
		t.Fatalf("admitted %v, want exactly one %s", rep.Admitted, ClientName(2))
	}
	if len(rep.Included) != p.Parties || rep.Scale != 1 {
		t.Fatalf("round after same-window churn degraded: %+v", rep)
	}
	if len(rep.Dropped) != 0 {
		t.Fatalf("same-window churn burned drop budget: %+v", rep.Dropped)
	}
	if got := len(fed.Roster().Active()); got != p.Parties {
		t.Fatalf("active %d after admission, want %d", got, p.Parties)
	}
	if got := fed.Roster().Pending(); len(got) != 0 {
		t.Fatalf("client still pending after admission: %v", got)
	}

	// A second run of the cycle ending below the boundary: the pending
	// client is not active, so it cannot leave again — the departed state is
	// single-entry, not a counter.
	if err := fed.Leave(ClientName(2)); err != nil {
		t.Fatal(err)
	}
	if err := fed.Rejoin(ClientName(2)); err != nil {
		t.Fatal(err)
	}
	if err := fed.Leave(ClientName(2)); err == nil {
		t.Fatal("pending client accepted a second departure")
	}
}

// TestChurnRosterErrors: the roster rejects invalid transitions.
func TestChurnRosterErrors(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFATE))
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	if err := fed.Leave("server"); err == nil {
		t.Fatal("server accepted as departing client")
	}
	if err := fed.Leave("client99"); err == nil {
		t.Fatal("unknown client departed")
	}
	if err := fed.Rejoin(ClientName(0)); err == nil {
		t.Fatal("active client rejoined")
	}
	if err := fed.Leave(ClientName(0)); err != nil {
		t.Fatal(err)
	}
	if err := fed.Leave(ClientName(0)); err == nil {
		t.Fatal("double departure accepted")
	}
	if err := fed.Rejoin(ClientName(0)); err != nil {
		t.Fatal(err)
	}
	if err := fed.Rejoin(ClientName(0)); err == nil {
		t.Fatal("double rejoin accepted")
	}
}

// TestChurnBelowQuorumFailsTyped: once departures push the active roster
// below an explicit quorum, rounds fail with a typed admit-phase error until
// someone rejoins.
func TestChurnBelowQuorumFailsTyped(t *testing.T) {
	p := quorumProfile(SystemFATE) // quorum 3 of 4
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	grads := epochGrads(1, p.Parties, 3)[0]
	for _, name := range []string{ClientName(0), ClientName(1)} {
		if err := fed.Leave(name); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err = fed.SecureAggregateReport(grads)
	asRoundError(t, err, PhaseAdmit)

	// A rejoin at the boundary restores quorum and the next round runs.
	if err := fed.Rejoin(ClientName(0)); err != nil {
		t.Fatal(err)
	}
	_, rep, err := fed.SecureAggregateReport(grads)
	if err != nil || len(rep.Included) != 3 {
		t.Fatalf("post-rejoin round: rep %+v err %v", rep, err)
	}
}

// TestResumeHandshakeMidRound injects session-resume probes from a departed
// client into the server's queue while a round is in flight: a token naming
// the in-flight (epoch, round, attempt) gets resume-ok, a stale one gets
// resume-wait pointing at the next round boundary — and the in-flight round
// completes unperturbed either way.
func TestResumeHandshakeMidRound(t *testing.T) {
	cases := []struct {
		name     string
		tok      flnet.SessionToken
		wantKind string
	}{
		{"exact token resumes", flnet.SessionToken{Epoch: 0, Round: 1, Attempt: 1}, flnet.KindResumeOK},
		{"stale token waits", flnet.SessionToken{Epoch: 0, Round: 0, Attempt: 1}, flnet.KindResumeWait},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := quorumProfile(SystemFLBooster)
			ctx, err := NewContext(p)
			if err != nil {
				t.Fatal(err)
			}
			fed := NewFederation(ctx)
			defer fed.Close()
			// client3 departed; its probe reaches the server mid-gather.
			if err := fed.Leave(ClientName(3)); err != nil {
				t.Fatal(err)
			}
			probe := flnet.Message{
				From: ClientName(3), To: ServerName, Kind: flnet.KindResume,
				Round: 1, Payload: tc.tok.Encode(),
			}
			if err := fed.Transport.Send(probe); err != nil {
				t.Fatal(err)
			}

			grads := epochGrads(1, p.Parties, 4)[0]
			_, rep, err := fed.SecureAggregateReport(grads)
			if err != nil {
				t.Fatalf("round with probe in flight: %v", err)
			}
			if len(rep.Included) != 3 || rep.Degraded() {
				t.Fatalf("probe perturbed the round: %+v", rep)
			}

			// The departed client received exactly one admission reply.
			reply, err := fed.Transport.Recv(ClientName(3))
			if err != nil {
				t.Fatal(err)
			}
			if reply.Kind != tc.wantKind {
				t.Fatalf("reply kind %q, want %q", reply.Kind, tc.wantKind)
			}
			tok, err := flnet.DecodeSessionToken(reply.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantKind == flnet.KindResumeOK && tok != tc.tok {
				t.Fatalf("resume-ok token %+v", tok)
			}
			if tc.wantKind == flnet.KindResumeWait && (tok.Round != 2 || tok.Attempt != 1) {
				t.Fatalf("resume-wait token %+v, want next boundary round 2", tok)
			}
		})
	}
}
