package fl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Roster tracks which clients are live across rounds. A departed client
// stops being scheduled; one that comes back is parked as pending and only
// re-admitted at the next round boundary — never mid-round, so a rejoiner
// can observe the in-flight round but not perturb it.
type Roster struct {
	order   []string
	active  map[string]bool
	pending map[string]bool
}

// NewRoster builds a roster with every named client active.
func NewRoster(names []string) *Roster {
	r := &Roster{
		order:   append([]string(nil), names...),
		active:  make(map[string]bool, len(names)),
		pending: make(map[string]bool),
	}
	for _, n := range names {
		r.active[n] = true
	}
	return r
}

// known reports whether name is a roster member at all.
func (r *Roster) known(name string) bool {
	for _, n := range r.order {
		if n == name {
			return true
		}
	}
	return false
}

// Leave marks a client departed, effective immediately for future rounds.
func (r *Roster) Leave(name string) error {
	if !r.known(name) {
		return fmt.Errorf("fl: unknown client %q", name)
	}
	if !r.active[name] {
		return fmt.Errorf("fl: client %q already departed", name)
	}
	delete(r.active, name)
	delete(r.pending, name)
	return nil
}

// Rejoin parks a departed client for admission at the next round boundary.
func (r *Roster) Rejoin(name string) error {
	if !r.known(name) {
		return fmt.Errorf("fl: unknown client %q", name)
	}
	if r.active[name] {
		return fmt.Errorf("fl: client %q is already active", name)
	}
	if r.pending[name] {
		return fmt.Errorf("fl: client %q is already waiting to rejoin", name)
	}
	r.pending[name] = true
	return nil
}

// admit moves every pending client to active — the round-boundary admission
// step — and returns the admitted names in canonical order.
func (r *Roster) admit() []string {
	if len(r.pending) == 0 {
		return nil
	}
	var admitted []string
	for _, n := range r.order {
		if r.pending[n] {
			r.active[n] = true
			delete(r.pending, n)
			admitted = append(admitted, n)
		}
	}
	return admitted
}

// Active returns the live clients in canonical (client-index) order.
func (r *Roster) Active() []string {
	out := make([]string, 0, len(r.active))
	for _, n := range r.order {
		if r.active[n] {
			out = append(out, n)
		}
	}
	return out
}

// Pending returns the clients awaiting round-boundary admission, sorted.
func (r *Roster) Pending() []string {
	out := make([]string, 0, len(r.pending))
	for n := range r.pending {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Restore resets the roster to exactly the given active set (a journal's
// last round-start membership); everyone else is departed, nobody pending.
func (r *Roster) Restore(active []string) {
	r.active = make(map[string]bool, len(active))
	r.pending = make(map[string]bool)
	for _, n := range active {
		r.active[n] = true
	}
}

// ClientIndex inverts ClientName: "client3" -> 3.
func ClientIndex(name string) (int, error) {
	digits, ok := strings.CutPrefix(name, "client")
	if !ok {
		return 0, fmt.Errorf("fl: %q is not a client name", name)
	}
	i, err := strconv.Atoi(digits)
	if err != nil || i < 0 || ClientName(i) != name {
		return 0, fmt.Errorf("fl: %q is not a client name", name)
	}
	return i, nil
}
