package fl

import (
	"errors"
	"math"
	"path/filepath"
	"testing"
)

// epochGrads builds deterministic per-round, per-client gradient vectors.
func epochGrads(rounds, parties, dim int) [][][]float64 {
	out := make([][][]float64, rounds)
	for r := range out {
		out[r] = make([][]float64, parties)
		for c := range out[r] {
			g := make([]float64, dim)
			for i := range g {
				g[i] = 0.01*float64(r+1) - 0.003*float64(c) + 0.001*float64(i)
			}
			out[r][c] = g
		}
	}
	return out
}

func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestCoordinatorCrashRecoveryBitExact is the kill-and-restart acceptance
// test: a coordinator killed mid-epoch — at the round-start boundary (before
// any encryption) and at the aggregated boundary (after gather) — recovers
// from a file-backed journal and finishes the epoch with every round's
// result bit-identical to an uninterrupted same-seed run.
func TestCoordinatorCrashRecoveryBitExact(t *testing.T) {
	const rounds, crashRound = 5, 3
	profile := testProfile(SystemFLBooster)
	grads := epochGrads(rounds, profile.Parties, 6)

	// The uninterrupted reference epoch.
	refCtx, err := NewContext(profile)
	if err != nil {
		t.Fatal(err)
	}
	refFed := NewFederation(refCtx)
	defer refFed.Close()
	ref := make([][]float64, rounds)
	for r := 0; r < rounds; r++ {
		if ref[r], err = refFed.SecureAggregate(grads[r]); err != nil {
			t.Fatalf("reference round %d: %v", r+1, err)
		}
	}

	for _, boundary := range []EventKind{EventRoundStart, EventAggregated} {
		t.Run(string(boundary), func(t *testing.T) {
			store, err := OpenFileStore(filepath.Join(t.TempDir(), "epoch.wal"))
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			j, err := NewJournal(store)
			if err != nil {
				t.Fatal(err)
			}
			// Kill the coordinator the moment the chosen boundary of the
			// crash round becomes durable.
			j.Fail = func(rec JournalRecord) error {
				if rec.Kind == boundary && rec.Round == crashRound {
					return ErrCoordinatorCrash
				}
				return nil
			}

			ctx, err := NewContext(profile)
			if err != nil {
				t.Fatal(err)
			}
			fed := NewFederation(ctx)
			fed.AttachJournal(j)
			results := make([][]float64, rounds)
			crashed := false
			for r := 0; r < rounds && !crashed; r++ {
				results[r], err = fed.SecureAggregate(grads[r])
				if err != nil {
					if !errors.Is(err, ErrCoordinatorCrash) {
						t.Fatalf("round %d: %v", r+1, err)
					}
					if r+1 != crashRound {
						t.Fatalf("crashed in round %d, armed for %d", r+1, crashRound)
					}
					crashed = true
				}
			}
			if !crashed {
				t.Fatal("crash hook never fired")
			}
			fed.Close()

			// Restart: a fresh context from the same profile (deterministic
			// keys) recovered from the journal file.
			ctx2, err := NewContext(profile)
			if err != nil {
				t.Fatal(err)
			}
			fed2, state, err := Recover(ctx2, store)
			if err != nil {
				t.Fatal(err)
			}
			defer fed2.Close()
			if state.Resume == nil || state.Resume.Round != crashRound {
				t.Fatalf("recovery found no resume point for round %d: %+v", crashRound, state)
			}
			wantPhase := PhaseUpload
			if boundary == EventAggregated {
				wantPhase = PhaseBroadcast
			}
			if state.Resume.Phase != wantPhase {
				t.Fatalf("resume phase %s, want %s", state.Resume.Phase, wantPhase)
			}
			for r := crashRound - 1; r < rounds; r++ {
				sum, rep, err := fed2.SecureAggregateReport(grads[r])
				if err != nil {
					t.Fatalf("recovered round %d: %v", r+1, err)
				}
				if rep.Round != uint64(r)+1 {
					t.Fatalf("recovered round ID %d, want %d", rep.Round, r+1)
				}
				if r+1 == crashRound {
					if rep.Attempt != 2 {
						t.Fatalf("re-run of round %d has attempt %d", r+1, rep.Attempt)
					}
					if wantResumed := boundary == EventAggregated; rep.Resumed != wantResumed {
						t.Fatalf("round %d resumed=%v at boundary %s", r+1, rep.Resumed, boundary)
					}
				}
				results[r] = sum
			}

			for r := 0; r < rounds; r++ {
				if !sameBits(results[r], ref[r]) {
					t.Fatalf("boundary %s: round %d diverged from the uninterrupted run\n got %v\nwant %v",
						boundary, r+1, results[r], ref[r])
				}
			}

			// The journal must replay to a clean, fully-terminal epoch whose
			// completed-round digests match what an uninterrupted journal of
			// the same epoch would record.
			recs, err := fed2.Journal().Records()
			if err != nil {
				t.Fatal(err)
			}
			final, err := Replay(recs)
			if err != nil {
				t.Fatal(err)
			}
			if final.Resume != nil || final.Completed != rounds || final.LastRound != rounds {
				t.Fatalf("final journal state %+v", final)
			}
		})
	}
}

// TestRecoveryDigestsMatchUninterruptedJournal compares the journaled
// aggregate digests of a crashed-and-recovered epoch against an
// uninterrupted journaled epoch: every completed round must record the
// identical ciphertext digest, the byte-level form of bit-exact recovery.
func TestRecoveryDigestsMatchUninterruptedJournal(t *testing.T) {
	const rounds, crashRound = 4, 2
	profile := testProfile(SystemFLBooster)
	profile.Chunk = 2 // exercise the chunked upload path under recovery too
	grads := epochGrads(rounds, profile.Parties, 6)

	runEpoch := func(store JournalStore, crash bool) map[uint64]uint64 {
		t.Helper()
		j, err := NewJournal(store)
		if err != nil {
			t.Fatal(err)
		}
		if crash {
			j.Fail = func(rec JournalRecord) error {
				if rec.Kind == EventAggregated && rec.Round == crashRound && rec.Attempt == 1 {
					return ErrCoordinatorCrash
				}
				return nil
			}
		}
		ctx, err := NewContext(profile)
		if err != nil {
			t.Fatal(err)
		}
		fed := NewFederation(ctx)
		fed.AttachJournal(j)
		for r := 0; r < rounds; r++ {
			if _, err := fed.SecureAggregate(grads[r]); err != nil {
				if !crash || !errors.Is(err, ErrCoordinatorCrash) {
					t.Fatalf("round %d: %v", r+1, err)
				}
				fed.Close()
				ctx2, err := NewContext(profile)
				if err != nil {
					t.Fatal(err)
				}
				fed, _, err = Recover(ctx2, store)
				if err != nil {
					t.Fatal(err)
				}
				r-- // re-run the crashed round on the recovered coordinator
			}
		}
		defer fed.Close()
		recs, err := fed.Journal().Records()
		if err != nil {
			t.Fatal(err)
		}
		state, err := Replay(recs)
		if err != nil {
			t.Fatal(err)
		}
		if state.Completed != rounds {
			t.Fatalf("epoch completed %d/%d rounds", state.Completed, rounds)
		}
		return state.Digests
	}

	clean := runEpoch(NewMemStore(), false)
	crashed := runEpoch(NewMemStore(), true)
	for r := uint64(1); r <= rounds; r++ {
		if clean[r] != crashed[r] {
			t.Fatalf("round %d digest %#x after recovery, want %#x", r, crashed[r], clean[r])
		}
	}
}

// TestRecoverOnEmptyJournal: recovering from a fresh store is a plain cold
// start — round 1 next, nothing resumed.
func TestRecoverOnEmptyJournal(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFATE))
	if err != nil {
		t.Fatal(err)
	}
	fed, state, err := Recover(ctx, NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Close()
	if state.Resume != nil || state.Records != 0 || fed.Round() != 0 {
		t.Fatalf("cold start state %+v round %d", state, fed.Round())
	}
	grads := epochGrads(1, ctx.Profile.Parties, 3)[0]
	if _, rep, err := fed.SecureAggregateReport(grads); err != nil || rep.Round != 1 || rep.Attempt != 1 {
		t.Fatalf("first round after cold start: rep %+v err %v", rep, err)
	}
}

// asRoundError asserts err is a *RoundError in the given phase.
func asRoundError(t *testing.T, err error, phase RoundPhase) *RoundError {
	t.Helper()
	var rerr *RoundError
	if !errors.As(err, &rerr) {
		t.Fatalf("untyped error %T: %v", err, err)
	}
	if rerr.Phase != phase {
		t.Fatalf("error phase %s, want %s: %v", rerr.Phase, phase, rerr)
	}
	return rerr
}
