package fl

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, j *Journal, recs ...JournalRecord) {
	t.Helper()
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileStoreSyncsDirOnCreate pins the open-create-sync sequence: creating
// the journal file fsyncs its parent directory (making the file's existence
// durable, not just its records), reopening an existing journal does not,
// and a directory-sync failure fails the open instead of being swallowed.
func TestFileStoreSyncsDirOnCreate(t *testing.T) {
	dir := t.TempDir()
	var synced []string
	orig := dirSync
	dirSync = func(d string) error {
		synced = append(synced, d)
		return nil
	}
	defer func() { dirSync = orig }()

	path := filepath.Join(dir, "epoch.wal")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("creating the journal synced %v, want exactly [%s]", synced, dir)
	}
	mustAppend(t, mustJournal(t, s), JournalRecord{Kind: EventRoundStart, Round: 1, Attempt: 1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening the existing file must not re-sync the directory.
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 {
		t.Fatalf("reopening an existing journal synced the directory again: %v", synced)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// A failed directory sync is a failed open: the store must not come up
	// with its durability story half-told.
	dirSync = func(string) error { return errors.New("sync refused") }
	if _, err := OpenFileStore(filepath.Join(dir, "other.wal")); err == nil {
		t.Fatal("open succeeded despite the directory sync failing")
	}
}

// mustJournal wraps NewJournal for tests that only need a working journal.
func mustJournal(t *testing.T, store JournalStore) *Journal {
	t.Helper()
	j, err := NewJournal(store)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestJournalStoresRoundTrip exercises both stores through the same
// append/load cycle: sequence numbers are stamped contiguously and records
// come back exactly as written.
func TestJournalStoresRoundTrip(t *testing.T) {
	stores := map[string]JournalStore{"mem": NewMemStore()}
	fs, err := OpenFileStore(filepath.Join(t.TempDir(), "epoch.wal"))
	if err != nil {
		t.Fatal(err)
	}
	stores["file"] = fs
	for name, store := range stores {
		t.Run(name, func(t *testing.T) {
			j, err := NewJournal(store)
			if err != nil {
				t.Fatal(err)
			}
			payload := []byte{1, 2, 3}
			mustAppend(t, j,
				JournalRecord{Kind: EventRoundStart, Round: 1, Attempt: 1, Cursor: 7, Members: []string{"client0", "client1"}},
				JournalRecord{Kind: EventAggregated, Round: 1, Attempt: 1, Members: []string{"client0"}, Digest: PayloadDigest(payload), Payload: payload},
				JournalRecord{Kind: EventRoundDone, Round: 1, Attempt: 1, Digest: PayloadDigest(payload), Cursor: 9},
			)
			recs, err := j.Records()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 3 {
				t.Fatalf("loaded %d records", len(recs))
			}
			for i, rec := range recs {
				if rec.Seq != uint64(i)+1 {
					t.Fatalf("record %d has seq %d", i, rec.Seq)
				}
			}
			if string(recs[1].Payload) != string(payload) || recs[1].Members[0] != "client0" {
				t.Fatalf("aggregate record mangled: %+v", recs[1])
			}
			// A reopened journal continues the sequence.
			j2, err := NewJournal(store)
			if err != nil {
				t.Fatal(err)
			}
			mustAppend(t, j2, JournalRecord{Kind: EventRoundStart, Round: 2, Attempt: 1})
			recs, err = j2.Records()
			if err != nil {
				t.Fatal(err)
			}
			if recs[len(recs)-1].Seq != 4 {
				t.Fatalf("reopened journal continued at seq %d", recs[len(recs)-1].Seq)
			}
		})
	}
}

// TestFileStoreToleratesTornTail simulates dying mid-append: a truncated
// final line is discarded, but garbage in the middle of the file is an
// error — that is corruption, not a crash artifact.
func TestFileStoreToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epoch.wal")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJournal(fs)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j,
		JournalRecord{Kind: EventRoundStart, Round: 1, Attempt: 1},
		JournalRecord{Kind: EventRoundDone, Round: 1, Attempt: 1},
	)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Torn tail: a partial record with no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"kind":"round-sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := fs2.Load()
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records past a torn tail", len(recs))
	}
	// NewJournal must position after the last *intact* record.
	j2, err := NewJournal(fs2)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j2, JournalRecord{Kind: EventRoundStart, Round: 2, Attempt: 1})
	fs2.Close()

	// Interior corruption: make the first line unparsable.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[0] = '#'
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	fs3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs3.Close()
	if _, err := fs3.Load(); err == nil {
		t.Fatal("interior corruption loaded without error")
	}
}

// TestReplayGrammar walks Replay through complete, failed, and open rounds
// and asserts the replayed state — including both resume boundaries.
func TestReplayGrammar(t *testing.T) {
	payload := []byte("aggregate")
	digest := PayloadDigest(payload)
	seq := func(recs []JournalRecord) []JournalRecord {
		for i := range recs {
			recs[i].Seq = uint64(i) + 1
		}
		return recs
	}

	t.Run("terminal rounds", func(t *testing.T) {
		st, err := Replay(seq([]JournalRecord{
			{Kind: EventRoundStart, Epoch: 2, Round: 1, Attempt: 1, Cursor: 10, Members: []string{"client0", "client1"}},
			{Kind: EventAggregated, Round: 1, Attempt: 1, Cursor: 11, Digest: digest, Payload: payload},
			{Kind: EventRoundDone, Round: 1, Attempt: 1, Cursor: 11, Digest: digest},
			{Kind: EventRoundStart, Epoch: 2, Round: 2, Attempt: 1, Cursor: 11, Members: []string{"client0"}},
			{Kind: EventRoundFailed, Epoch: 2, Round: 2, Attempt: 1, Cursor: 13, Phase: PhaseGather, Reason: "below quorum"},
		}))
		if err != nil {
			t.Fatal(err)
		}
		if st.Resume != nil || st.Completed != 1 || st.Failed != 1 || st.LastRound != 2 || st.Cursor != 13 || st.Epoch != 2 {
			t.Fatalf("state %+v", st)
		}
		if st.Digests[1] != digest || len(st.Members) != 1 {
			t.Fatalf("state %+v", st)
		}
	})

	t.Run("open round resumes at upload", func(t *testing.T) {
		st, err := Replay(seq([]JournalRecord{
			{Kind: EventRoundStart, Round: 1, Attempt: 1, Cursor: 5},
			{Kind: EventRoundDone, Round: 1, Attempt: 1, Cursor: 6},
			{Kind: EventRoundStart, Round: 2, Attempt: 3, Cursor: 6, Members: []string{"client0"}},
		}))
		if err != nil {
			t.Fatal(err)
		}
		rp := st.Resume
		if rp == nil || rp.Round != 2 || rp.Attempt != 3 || rp.Phase != PhaseUpload || rp.Cursor != 6 {
			t.Fatalf("resume %+v", rp)
		}
	})

	t.Run("open round resumes at broadcast", func(t *testing.T) {
		st, err := Replay(seq([]JournalRecord{
			{Kind: EventRoundStart, Round: 1, Attempt: 1, Cursor: 5},
			{Kind: EventAggregated, Round: 1, Attempt: 1, Cursor: 9, Members: []string{"client0", "client2"}, Digest: digest, Payload: payload},
		}))
		if err != nil {
			t.Fatal(err)
		}
		rp := st.Resume
		if rp == nil || rp.Phase != PhaseBroadcast || rp.Cursor != 9 || rp.Digest != digest || len(rp.Included) != 2 {
			t.Fatalf("resume %+v", rp)
		}
	})

	t.Run("drained closes the open round", func(t *testing.T) {
		st, err := Replay(seq([]JournalRecord{
			{Kind: EventRoundStart, Round: 1, Attempt: 1},
			{Kind: EventDrained, Round: 1, Cursor: 4},
		}))
		if err != nil {
			t.Fatal(err)
		}
		if st.Resume != nil || st.Drained != 1 || st.Cursor != 4 {
			t.Fatalf("state %+v", st)
		}
	})

	t.Run("violations fail loudly", func(t *testing.T) {
		bad := [][]JournalRecord{
			// Sequence gap.
			{{Seq: 2, Kind: EventRoundStart, Round: 1}},
			// Two different rounds open at once.
			seq([]JournalRecord{{Kind: EventRoundStart, Round: 1}, {Kind: EventRoundStart, Round: 2}}),
			// Aggregate without an open round.
			seq([]JournalRecord{{Kind: EventAggregated, Round: 1, Digest: digest, Payload: payload}}),
			// Aggregate whose payload fails its digest.
			seq([]JournalRecord{{Kind: EventRoundStart, Round: 1}, {Kind: EventAggregated, Round: 1, Digest: digest ^ 1, Payload: payload}}),
			// Terminal record for a round that never started.
			seq([]JournalRecord{{Kind: EventRoundDone, Round: 1}}),
			// Unknown event kind.
			seq([]JournalRecord{{Kind: "round-paused", Round: 1}}),
		}
		for i, recs := range bad {
			if _, err := Replay(recs); err == nil {
				t.Fatalf("case %d replayed without error", i)
			}
		}
	})
}

// TestCrashRecoveryReplaysSampledCohort is the cross-device durability
// test: a sampling + tree-aggregating coordinator is killed between
// round-start and aggregated (the round-start record is durable, nothing
// after it is), recovered from the journal, and the replayed round must
// sample the identical cohort and journal a byte-identical aggregate — at
// the aggregated boundary too, where recovery replays the journaled payload
// instead of re-running the round.
func TestCrashRecoveryReplaysSampledCohort(t *testing.T) {
	const rounds, crashRound = 4, 2
	profile := testProfile(SystemFLBooster)
	profile.Parties = 7
	profile.Cohort = CohortPolicy{Size: 4, Fanout: 2, MaxInflight: 2}
	grads := epochGrads(rounds, profile.Parties, 5)

	runEpoch := func(store JournalStore, boundary EventKind) map[uint64]uint64 {
		t.Helper()
		j := mustJournal(t, store)
		if boundary != "" {
			j.Fail = func(rec JournalRecord) error {
				if rec.Kind == boundary && rec.Round == crashRound && rec.Attempt == 1 {
					return ErrCoordinatorCrash
				}
				return nil
			}
		}
		ctx, err := NewContext(profile)
		if err != nil {
			t.Fatal(err)
		}
		fed := NewFederation(ctx)
		fed.AttachJournal(j)
		for r := 0; r < rounds; r++ {
			if _, err := fed.SecureAggregate(grads[r]); err != nil {
				if boundary == "" || !errors.Is(err, ErrCoordinatorCrash) {
					t.Fatalf("round %d: %v", r+1, err)
				}
				fed.Close()
				ctx2, err := NewContext(profile)
				if err != nil {
					t.Fatal(err)
				}
				fed, _, err = Recover(ctx2, store)
				if err != nil {
					t.Fatal(err)
				}
				r-- // re-run the crashed round on the recovered coordinator
			}
		}
		defer fed.Close()
		recs, err := fed.Journal().Records()
		if err != nil {
			t.Fatal(err)
		}

		// The crashed round's round-start records — one per attempt — must
		// carry the identical sampled cohort, and it must match what the
		// sampler derives from the journaled roster.
		var cohorts [][]string
		for _, rec := range recs {
			if rec.Kind == EventRoundStart && rec.Round == crashRound {
				cohorts = append(cohorts, rec.Cohort)
			}
		}
		if len(cohorts) == 0 {
			t.Fatal("no round-start record journaled a cohort")
		}
		for _, cohort := range cohorts {
			if len(cohort) != profile.Cohort.Size {
				t.Fatalf("journaled cohort %v, want size %d", cohort, profile.Cohort.Size)
			}
			if !sameMembers(cohort, cohorts[0]) {
				t.Fatalf("attempts sampled different cohorts: %v vs %v", cohort, cohorts[0])
			}
		}
		state, err := Replay(recs)
		if err != nil {
			t.Fatal(err)
		}
		if state.Completed != rounds {
			t.Fatalf("epoch completed %d/%d rounds", state.Completed, rounds)
		}
		return state.Digests
	}

	clean := runEpoch(NewMemStore(), "")
	for _, boundary := range []EventKind{EventRoundStart, EventAggregated} {
		t.Run(string(boundary), func(t *testing.T) {
			crashed := runEpoch(NewMemStore(), boundary)
			for r := uint64(1); r <= rounds; r++ {
				if clean[r] != crashed[r] {
					t.Fatalf("round %d digest %#x after recovery, want %#x", r, crashed[r], clean[r])
				}
			}
		})
	}
}

// TestJournalFailHook verifies the crash-simulation contract: the record the
// hook fires on is durable, and the caller sees the hook's error.
func TestJournalFailHook(t *testing.T) {
	store := NewMemStore()
	j, err := NewJournal(store)
	if err != nil {
		t.Fatal(err)
	}
	j.Fail = func(rec JournalRecord) error {
		if rec.Kind == EventAggregated {
			return ErrCoordinatorCrash
		}
		return nil
	}
	mustAppend(t, j, JournalRecord{Kind: EventRoundStart, Round: 1, Attempt: 1})
	err = j.Append(JournalRecord{Kind: EventAggregated, Round: 1, Attempt: 1, Digest: PayloadDigest(nil)})
	if !errors.Is(err, ErrCoordinatorCrash) {
		t.Fatalf("hook error not surfaced: %v", err)
	}
	recs, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("crashed append not durable: %d records", len(recs))
	}
}
