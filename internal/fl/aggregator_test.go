package fl

import (
	"math"
	"sort"
	"testing"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDefensePolicyValidation(t *testing.T) {
	good := []DefensePolicy{
		{},
		{Groups: 3},
		{Groups: 5, Combiner: CombineKrum, Trim: 2},
		{Groups: 4, Combiner: CombineNormClip, ClipNorm: 1.5},
	}
	for i, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("policy %d should validate: %v", i, err)
		}
	}
	bad := []DefensePolicy{
		{Groups: -1},
		{Groups: 3, Trim: -1},
		{Groups: 3, ClipNorm: -1},
		{Groups: 3, Combiner: "bogus"},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("policy %d should fail: %+v", i, d)
		}
	}
	if (DefensePolicy{Groups: 1}).Enabled() {
		t.Error("one group is not a defense")
	}
	if !(DefensePolicy{Groups: 2}).Enabled() {
		t.Error("two groups arm the defense")
	}
}

func TestEffectiveTrim(t *testing.T) {
	cases := []struct {
		trim, groups, want int
	}{
		{0, 5, 1},  // default
		{2, 5, 2},  // fits
		{3, 5, 2},  // clamped: (5-1)/2
		{1, 2, 0},  // cannot trim below one survivor
		{10, 3, 1}, // clamped: (3-1)/2
	}
	for _, c := range cases {
		if got := (DefensePolicy{Trim: c.trim}).EffectiveTrim(c.groups); got != c.want {
			t.Errorf("EffectiveTrim(trim=%d, groups=%d) = %d, want %d", c.trim, c.groups, got, c.want)
		}
	}
}

func TestNewAggregatorFactory(t *testing.T) {
	for _, kind := range KnownCombiners() {
		agg, err := (DefensePolicy{Groups: 3, Combiner: kind}).NewAggregator()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if agg.Name() != string(kind) {
			t.Errorf("combiner %q reports name %q", kind, agg.Name())
		}
	}
	agg, err := (DefensePolicy{Groups: 3}).NewAggregator()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Name() != string(CombineTrimmedMean) {
		t.Errorf("default combiner = %q, want trimmed-mean", agg.Name())
	}
}

func TestFedAvgIsWeightedMean(t *testing.T) {
	groups := []GroupUpdate{
		{Mean: []float64{1, 10}, Size: 3},
		{Mean: []float64{4, -2}, Size: 1},
	}
	out, stats, err := FedAvg{}.Combine(groups)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{(3*1 + 4) / 4.0, (3*10 - 2) / 4.0}
	for i := range want {
		if !approx(out[i], want[i], 1e-12) {
			t.Fatalf("fedavg[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if len(stats.Suspicion) != 2 {
		t.Error("fedavg should report (zero) suspicion per group")
	}
}

func TestTrimmedMeanSuppressesOutlierWithinHonestRange(t *testing.T) {
	honest := [][]float64{{0.1, -0.2}, {0.12, -0.18}, {0.09, -0.22}, {0.11, -0.19}}
	groups := make([]GroupUpdate, 0, 5)
	for _, m := range honest {
		groups = append(groups, GroupUpdate{Mean: m, Size: 2})
	}
	groups = append(groups, GroupUpdate{Mean: []float64{100, -100}, Size: 2})

	out, stats, err := TrimmedMean{Trim: 1}.Combine(groups)
	if err != nil {
		t.Fatal(err)
	}
	// The provable bound: with ≤ Trim Byzantine groups every output
	// coordinate lies within the honest groups' range.
	for i := range out {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, m := range honest {
			lo, hi = math.Min(lo, m[i]), math.Max(hi, m[i])
		}
		if out[i] < lo || out[i] > hi {
			t.Fatalf("trimmed-mean[%d] = %v outside honest range [%v, %v]", i, out[i], lo, hi)
		}
	}
	if stats.TrimmedCoords != 2*1*2 {
		t.Errorf("TrimmedCoords = %d, want 4", stats.TrimmedCoords)
	}
	// The outlier group must carry the highest suspicion.
	maxg := 0
	for g, s := range stats.Suspicion {
		if s > stats.Suspicion[maxg] {
			maxg = g
		}
	}
	if maxg != 4 {
		t.Errorf("most suspect group = %d, want the outlier 4", maxg)
	}
}

func TestMedianCombiner(t *testing.T) {
	groups := []GroupUpdate{
		{Mean: []float64{1}, Size: 1},
		{Mean: []float64{2}, Size: 1},
		{Mean: []float64{900}, Size: 1},
	}
	out, _, err := Median{}.Combine(groups)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Fatalf("median = %v, want 2", out[0])
	}
	groups = groups[:2]
	out, _, err = Median{}.Combine(groups)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1.5 {
		t.Fatalf("even median = %v, want 1.5", out[0])
	}
}

func TestNormClipBoundsBoostedGroup(t *testing.T) {
	groups := []GroupUpdate{
		{Mean: []float64{0.3, 0.4}, Size: 1}, // norm 0.5
		{Mean: []float64{0.4, 0.3}, Size: 1}, // norm 0.5
		{Mean: []float64{30, 40}, Size: 1},   // norm 50: boosted
	}
	out, stats, err := NormClip{}.Combine(groups)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Clipped != 1 {
		t.Fatalf("Clipped = %d, want 1", stats.Clipped)
	}
	// With the median bound (0.5) the clipped group contributes at most a
	// norm-0.5 vector, so the mean's norm is at most 0.5.
	if n := l2norm(out); n > 0.5+1e-12 {
		t.Fatalf("clipped mean norm = %v, want ≤ 0.5", n)
	}
	if stats.Suspicion[2] <= stats.Suspicion[0] {
		t.Error("boosted group should be most suspect")
	}
	// An explicit bound is honoured.
	_, stats, err = NormClip{Bound: 100}.Combine(groups)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Clipped != 0 {
		t.Error("bound 100 should clip nothing")
	}
}

func TestKrumDropsFarthestGroup(t *testing.T) {
	groups := []GroupUpdate{
		{Mean: []float64{0.1, 0.1}, Size: 1},
		{Mean: []float64{0.11, 0.09}, Size: 1},
		{Mean: []float64{0.09, 0.1}, Size: 1},
		{Mean: []float64{50, -50}, Size: 1},
	}
	out, stats, err := Krum{Drop: 1}.Combine(groups)
	if err != nil {
		t.Fatal(err)
	}
	if stats.GroupsDropped != 1 {
		t.Fatalf("GroupsDropped = %d, want 1", stats.GroupsDropped)
	}
	// The survivors' average stays near the honest cluster.
	if math.Abs(out[0]-0.1) > 0.02 || math.Abs(out[1]-0.1) > 0.12 {
		t.Fatalf("krum output %v strayed from the honest cluster", out)
	}
	maxg := 0
	for g, s := range stats.Suspicion {
		if s > stats.Suspicion[maxg] {
			maxg = g
		}
	}
	if maxg != 3 {
		t.Errorf("highest Krum score on group %d, want 3", maxg)
	}
}

func TestCombinersRejectMalformedGroups(t *testing.T) {
	combiners := []Aggregator{FedAvg{}, TrimmedMean{}, Median{}, NormClip{}, Krum{}}
	bad := [][]GroupUpdate{
		nil,
		{{Mean: []float64{1}, Size: 0}},
		{{Mean: []float64{1}, Size: 1}, {Mean: []float64{1, 2}, Size: 1}},
	}
	for _, agg := range combiners {
		for i, groups := range bad {
			if _, _, err := agg.Combine(groups); err == nil {
				t.Errorf("%s: malformed input %d should fail", agg.Name(), i)
			}
		}
	}
}

func TestAssignGroupsProperties(t *testing.T) {
	members := make([]string, 10)
	for i := range members {
		members[i] = ClientName(i)
	}
	g1 := AssignGroups(members, 4, 7, 3)
	g2 := AssignGroups(members, 4, 7, 3)
	if len(g1) != 4 {
		t.Fatalf("got %d groups, want 4", len(g1))
	}
	// Deterministic: same (seed, round, members) → same partition.
	for g := range g1 {
		if len(g1[g]) != len(g2[g]) {
			t.Fatal("assignment not deterministic")
		}
		for i := range g1[g] {
			if g1[g][i] != g2[g][i] {
				t.Fatal("assignment not deterministic")
			}
		}
	}
	// Exact partition: every member exactly once, no empty groups.
	seen := map[string]int{}
	for _, grp := range g1 {
		if len(grp) == 0 {
			t.Fatal("empty group")
		}
		for _, m := range grp {
			seen[m]++
		}
		// Canonical order within a group.
		if !sort.SliceIsSorted(grp, func(a, b int) bool {
			var x, y int
			for i, m := range members {
				if m == grp[a] {
					x = i
				}
				if m == grp[b] {
					y = i
				}
			}
			return x < y
		}) {
			t.Fatal("group not in canonical member order")
		}
	}
	if len(seen) != len(members) {
		t.Fatalf("partition covers %d members, want %d", len(seen), len(members))
	}
	for m, n := range seen {
		if n != 1 {
			t.Fatalf("member %s appears %d times", m, n)
		}
	}
	// Near-equal sizes from round-robin dealing.
	for _, grp := range g1 {
		if len(grp) < 2 || len(grp) > 3 {
			t.Fatalf("10 members over 4 groups should give sizes 2–3, got %d", len(grp))
		}
	}
	// Different rounds (generically) shuffle differently.
	g3 := AssignGroups(members, 4, 7, 4)
	diff := false
	for g := range g1 {
		for i := range g1[g] {
			if i >= len(g3[g]) || g1[g][i] != g3[g][i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("round should perturb the assignment")
	}
	// G clamps to the member count; tiny rosters still get non-empty groups.
	small := AssignGroups(members[:2], 5, 1, 1)
	if len(small) != 2 {
		t.Fatalf("G must clamp to member count, got %d groups", len(small))
	}
}

func TestDefenseReportMaxSuspicion(t *testing.T) {
	var nilRep *DefenseReport
	if nilRep.MaxSuspicion() != 0 {
		t.Error("nil report suspicion should be 0")
	}
	rep := &DefenseReport{Stats: CombineStats{Suspicion: []float64{0.2, 0.9, 0.1}}}
	if rep.MaxSuspicion() != 0.9 {
		t.Errorf("MaxSuspicion = %v, want 0.9", rep.MaxSuspicion())
	}
}
