package fl

import (
	"testing"

	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

func TestEncryptValuesUnpackedIgnoresPacker(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{-0.5, 0, 0.5, 0.999}
	cts, err := ctx.EncryptValuesUnpacked(vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(cts) != len(vals) {
		t.Fatalf("unpacked encryption produced %d ciphertexts for %d values", len(cts), len(vals))
	}
	// Round trip through DecryptRaw + manual dequantization.
	raws, err := ctx.DecryptRaw(cts)
	if err != nil {
		t.Fatal(err)
	}
	for i, raw := range raws {
		got := ctx.Quant.Dequantize(raw)
		if d := got - vals[i]; d > ctx.Quant.MaxError() || d < -ctx.Quant.MaxError() {
			t.Fatalf("value %d: %v vs %v", i, got, vals[i])
		}
	}
}

func TestDecryptRawOverflowDetected(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFATE))
	if err != nil {
		t.Fatal(err)
	}
	big := mpint.NewRNG(1).RandBits(100) // wider than 64 bits
	cts, err := ctx.EncryptNats([]mpint.Nat{big}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.DecryptRaw(cts); err == nil {
		t.Fatal("overflowing raw plaintext should be reported")
	}
}

func TestEncryptZero(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFATE))
	if err != nil {
		t.Fatal(err)
	}
	z, err := ctx.EncryptZero()
	if err != nil {
		t.Fatal(err)
	}
	raws, err := ctx.DecryptRaw([]paillier.Ciphertext{z})
	if err != nil {
		t.Fatal(err)
	}
	if raws[0] != 0 {
		t.Fatalf("E(0) decrypted to %d", raws[0])
	}
}

func TestReduceSum(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	// Sum 1..9 homomorphically.
	pts := make([]mpint.Nat, 9)
	for i := range pts {
		pts[i] = mpint.FromUint64(uint64(i + 1))
	}
	cts, err := ctx.EncryptNats(pts, int64(len(pts)))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ctx.ReduceSum(cts)
	if err != nil {
		t.Fatal(err)
	}
	raws, err := ctx.DecryptRaw([]paillier.Ciphertext{sum})
	if err != nil {
		t.Fatal(err)
	}
	if raws[0] != 45 {
		t.Fatalf("ReduceSum = %d, want 45", raws[0])
	}
	if _, err := ctx.ReduceSum(nil); err == nil {
		t.Fatal("empty reduce should fail")
	}
	// Single element passes through.
	one, err := ctx.ReduceSum(cts[:1])
	if err != nil {
		t.Fatal(err)
	}
	raws, err = ctx.DecryptRaw([]paillier.Ciphertext{one})
	if err != nil {
		t.Fatal(err)
	}
	if raws[0] != 1 {
		t.Fatalf("single-element reduce = %d", raws[0])
	}
}

func TestWeightedSum(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFATE))
	if err != nil {
		t.Fatal(err)
	}
	pts := []mpint.Nat{mpint.FromUint64(3), mpint.FromUint64(5), mpint.FromUint64(7), mpint.FromUint64(11)}
	cts, err := ctx.EncryptNats(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 2*3 + 0*5 + 1*7 + 10*11 = 123
	sum, err := ctx.WeightedSum(cts, []uint64{2, 0, 1, 10})
	if err != nil {
		t.Fatal(err)
	}
	raws, err := ctx.DecryptRaw([]paillier.Ciphertext{sum})
	if err != nil {
		t.Fatal(err)
	}
	if raws[0] != 123 {
		t.Fatalf("WeightedSum = %d, want 123", raws[0])
	}
	// All-zero scalars produce E(0).
	zero, err := ctx.WeightedSum(cts, []uint64{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	raws, err = ctx.DecryptRaw([]paillier.Ciphertext{zero})
	if err != nil {
		t.Fatal(err)
	}
	if raws[0] != 0 {
		t.Fatalf("zero-weight sum = %d", raws[0])
	}
	if _, err := ctx.WeightedSum(cts, []uint64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}
