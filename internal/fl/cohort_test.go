package fl

import (
	"testing"
	"time"

	"flbooster/internal/flnet"
	"flbooster/internal/gpu"
)

// cohortProfile returns a 9-party test profile; mutate Cohort/Defense/Chunk
// per case.
func cohortProfile(sys System) Profile {
	p := NewProfile(sys, 128, 9)
	p.Device = gpu.SmallTestDevice()
	p.RBits = 14
	return p
}

// runEpochDigests runs `rounds` rounds on a journaled federation and returns
// the decrypted sums plus the journaled per-round aggregate digests.
func runEpochDigests(t *testing.T, p Profile, rounds int) ([][]float64, map[uint64]uint64, []RoundReport) {
	t.Helper()
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	store := NewMemStore()
	fed.AttachJournal(mustJournal(t, store))
	grads := epochGrads(rounds, p.Parties, 6)
	sums := make([][]float64, rounds)
	reps := make([]RoundReport, rounds)
	for r := 0; r < rounds; r++ {
		sum, rep, err := fed.SecureAggregateReport(grads[r])
		if err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
		sums[r], reps[r] = sum, rep
	}
	recs, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	state, err := Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	return sums, state.Digests, reps
}

// TestTreeRoundBitExactWithFlat is the refactor's acceptance bar: for the
// same profile and seed, a hierarchical round must journal byte-identical
// aggregates and decrypt bit-identical sums to the flat protocol — plain,
// chunk-streamed, and defended (grouped robust aggregation composed with
// tree levels) alike.
func TestTreeRoundBitExactWithFlat(t *testing.T) {
	const rounds = 3
	cases := []struct {
		name string
		prep func(*Profile)
	}{
		{"plain", func(p *Profile) {}},
		{"chunked", func(p *Profile) { p.Chunk = 2 }},
		{"defended", func(p *Profile) { p.Defense = DefensePolicy{Groups: 3} }},
		{"defended-chunked", func(p *Profile) {
			p.Defense = DefensePolicy{Groups: 3, Combiner: CombineMedian}
			p.Chunk = 2
		}},
		{"sampled", func(p *Profile) { p.Cohort.Size = 6 }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			flatP := cohortProfile(SystemFLBooster)
			c.prep(&flatP)
			treeP := flatP
			treeP.Cohort.Fanout = 3
			treeP.Cohort.MaxInflight = 4
			// In the sampled case both runs share Cohort.Size — only the
			// aggregation topology differs between them.
			flatSums, flatDigests, flatReps := runEpochDigests(t, flatP, rounds)
			treeSums, treeDigests, treeReps := runEpochDigests(t, treeP, rounds)
			for r := 0; r < rounds; r++ {
				if !sameBits(flatSums[r], treeSums[r]) {
					t.Fatalf("round %d sums diverged\nflat %v\ntree %v", r+1, flatSums[r], treeSums[r])
				}
				if flatDigests[uint64(r+1)] != treeDigests[uint64(r+1)] {
					t.Fatalf("round %d journaled digests diverged: %#x vs %#x",
						r+1, flatDigests[uint64(r+1)], treeDigests[uint64(r+1)])
				}
				if !sameMembers(flatReps[r].Included, treeReps[r].Included) {
					t.Fatalf("round %d included sets diverged: %v vs %v",
						r+1, flatReps[r].Included, treeReps[r].Included)
				}
				if treeReps[r].Tree == nil || flatReps[r].Tree != nil {
					t.Fatalf("round %d tree stats on the wrong mode", r+1)
				}
			}
		})
	}
}

// TestTreeRoundBoundsLiveCiphertexts: the report's live-ciphertext
// high-water mark must be sublinear in the cohort for a tree round and
// exactly cohort·width for the flat baseline.
func TestTreeRoundBoundsLiveCiphertexts(t *testing.T) {
	flatP := cohortProfile(SystemFLBooster)
	treeP := flatP
	treeP.Cohort.Fanout = 3

	grads := epochGrads(1, flatP.Parties, 6)[0]
	run := func(p Profile) RoundReport {
		ctx, err := NewContext(p)
		if err != nil {
			t.Fatal(err)
		}
		fed := NewFederation(ctx)
		defer fed.Close()
		if _, rep, err := fed.SecureAggregateReport(grads); err != nil {
			t.Fatal(err)
		} else {
			return rep
		}
		return RoundReport{}
	}
	flat := run(flatP)
	tree := run(treeP)
	if flat.PeakLiveCts == 0 || tree.PeakLiveCts == 0 {
		t.Fatalf("peaks not populated: flat %d tree %d", flat.PeakLiveCts, tree.PeakLiveCts)
	}
	if tree.PeakLiveCts >= flat.PeakLiveCts {
		t.Fatalf("tree peak %d not below flat peak %d", tree.PeakLiveCts, flat.PeakLiveCts)
	}
	if tree.Tree == nil || tree.Tree.Leaves != flatP.Parties {
		t.Fatalf("tree stats %+v", tree.Tree)
	}
	if flat.CohortSize != flatP.Parties || tree.CohortSize != flatP.Parties {
		t.Fatalf("cohort sizes %d/%d", flat.CohortSize, tree.CohortSize)
	}
}

// TestSampledCohortSchedulesSubset: with Cohort.Size < N only the sampled
// clients contribute, the aggregate is scaled to the full-federation
// estimate, and successive rounds rotate the cohort.
func TestSampledCohortSchedulesSubset(t *testing.T) {
	p := cohortProfile(SystemFLBooster)
	p.Cohort = CohortPolicy{Size: 5, Fanout: 2}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	grads := epochGrads(2, p.Parties, 4)
	var firstCohort []string
	for r := 0; r < 2; r++ {
		sum, rep, err := fed.SecureAggregateReport(grads[r])
		if err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
		if rep.CohortSize != 5 || len(rep.Included) != 5 {
			t.Fatalf("round %d scheduled %d/%d clients", r+1, len(rep.Included), rep.CohortSize)
		}
		if rep.Scale < 1.79 || rep.Scale > 1.81 {
			t.Fatalf("round %d scale %v, want 9/5", r+1, rep.Scale)
		}
		if len(sum) != 4 {
			t.Fatalf("round %d sum has %d dims", r+1, len(sum))
		}
		if r == 0 {
			firstCohort = rep.Included
		} else if sameMembers(firstCohort, rep.Included) {
			t.Log("rounds 1 and 2 drew the same cohort (possible but unlikely)")
		}
	}
}

// lastChunkDropper silently discards the final chunk of the victim's upload,
// leaving a half-received reassembly buffered at the server.
type lastChunkDropper struct {
	flnet.Transport
	victim string
}

func (d *lastChunkDropper) Send(msg flnet.Message) error {
	if msg.From == d.victim && msg.Kind == "gradc" {
		if idx, total, _, err := flnet.DecodeChunk(msg.Payload); err == nil && idx == total-1 {
			return nil // vanishes on the wire
		}
	}
	return d.Transport.Send(msg)
}

// TestTreeRoundSurvivesDroppedUpload: a client whose upload is silently
// dropped mid-wave is cut off at the wave deadline, charged as late, and
// the quorum round completes with the scaled estimate — the tree-mode
// mirror of the flat straggler test.
func TestTreeRoundSurvivesDroppedUpload(t *testing.T) {
	p := cohortProfile(SystemFATE) // no batching: dim 2 at Chunk 1 = 2 chunks
	p.Cohort = CohortPolicy{Fanout: 3, MaxInflight: 4}
	p.Round = RoundPolicy{
		Quorum:       8,
		PhaseTimeout: 200 * time.Millisecond,
		MaxRetries:   1,
		Backoff:      time.Millisecond,
	}
	p.Chunk = 1 // chunked uploads, so the cutoff releases a real half-buffer
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	fed.Transport = &lastChunkDropper{Transport: fed.Transport, victim: ClientName(2)}

	grads := make([][]float64, p.Parties)
	for i := range grads {
		grads[i] = []float64{0.1, -0.2}
	}
	sum, rep, err := fed.SecureAggregateReport(grads)
	if err != nil {
		t.Fatalf("tree quorum round should survive one dropped upload: %v", err)
	}
	if len(rep.Included) != p.Parties-1 {
		t.Fatalf("included %v", rep.Included)
	}
	if phase, ok := rep.Dropped[ClientName(2)]; !ok || phase != PhaseGather {
		t.Fatalf("dropped %v, want client2 lost in gather", rep.Dropped)
	}
	bound := float64(p.Parties) * rep.Scale * ctx.Quant.MaxError()
	want := []float64{0.1 * float64(p.Parties), -0.2 * float64(p.Parties)}
	for i := range want {
		if d := sum[i] - want[i]; d > bound || d < -bound {
			t.Fatalf("sum[%d] = %v, want %v ± %v", i, sum[i], want[i], bound)
		}
	}
	late := ctx.Costs.Snapshot()
	if late.LateChunks == 0 || late.LateBytes == 0 {
		t.Fatalf("cutoff did not charge late traffic: %+v", late)
	}
}
