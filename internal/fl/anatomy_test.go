package fl

import (
	"testing"
	"time"

	"flbooster/internal/flnet"
)

// optimizedProfile is the full round-path optimization bundle: chunked
// streaming, a nonce pool sized to the batch, and compute/upload overlap.
func optimizedProfile(sys System, dim int) Profile {
	p := testProfile(sys)
	p.Chunk = 4
	p.NoncePool = dim
	p.Overlap = OverlapPolicy{Enabled: true, CompSimPerValue: 200 * time.Nanosecond}
	return p
}

// TestRoundAnatomyDeterministic pins the anatomy's contract: two same-seed
// rounds render byte-identical tables, and the phase rows sum to the round's
// whole-run cost delta — the same reconciliation discipline ReconcileObs
// enforces for the metrics mirror.
func TestRoundAnatomyDeterministic(t *testing.T) {
	const dim = 24
	grads := testGrads(4, dim)
	run := func() (string, PhaseCost, PhaseCost) {
		p := optimizedProfile(SystemHAFLO, dim)
		p.Observe = true
		ctx, err := NewContext(p)
		if err != nil {
			t.Fatal(err)
		}
		fed := NewFederation(ctx)
		defer fed.Close()
		before := ctx.Costs.Snapshot()
		_, rep, err := fed.SecureAggregateReport(grads)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Anatomy == nil || len(rep.Anatomy.Phases) == 0 {
			t.Fatalf("round report carries no anatomy: %+v", rep)
		}
		if err := ctx.ReconcileObs(); err != nil {
			t.Fatal(err)
		}
		whole := phaseDelta(before, ctx.Costs.Snapshot())
		return rep.Anatomy.Table(), rep.Anatomy.Total(), whole
	}

	tab1, total, whole := run()
	tab2, _, _ := run()
	if tab1 != tab2 {
		t.Fatalf("same-seed anatomy tables differ:\n%s\nvs\n%s", tab1, tab2)
	}
	whole.Phase = total.Phase
	if total != whole {
		t.Fatalf("phase rows sum to %+v, whole-round delta is %+v", total, whole)
	}
	if total.HESimNs == 0 || total.CommSimNs == 0 || total.EncodeSimNs == 0 || total.CompSimNs == 0 {
		t.Fatalf("anatomy missing a cost component: %+v", total)
	}
}

// TestRoundAnatomyNestedCombine: a defended round's decrypt phase nests a
// combine phase; the child row must precede its parent and the parent row
// must not double-count the child's cost.
func TestRoundAnatomyNestedCombine(t *testing.T) {
	p := testProfile(SystemHAFLO)
	p.Defense = DefensePolicy{Groups: 2, Combiner: CombineFedAvg}
	_, _, rep := runRound(t, p, testGrads(4, 8), 1)
	idx := map[string]int{}
	for i, ph := range rep.Anatomy.Phases {
		idx[ph.Phase] = i
	}
	ci, ok1 := idx["combine"]
	di, ok2 := idx["decrypt"]
	if !ok1 || !ok2 || ci > di {
		t.Fatalf("combine/decrypt rows missing or misordered: %+v", rep.Anatomy.Phases)
	}
	// The rows sum to the round total; with double-counting the sum would
	// exceed the whole-round HE time.
	var heSum int64
	for _, ph := range rep.Anatomy.Phases {
		heSum += ph.HESimNs
	}
	if heSum != rep.Anatomy.Total().HESimNs {
		t.Fatalf("per-phase HE sums to %d, total row says %d", heSum, rep.Anatomy.Total().HESimNs)
	}
}

// TestPoolRearmAcrossRounds is the regression for the silently-cold pool:
// before the per-batch rearm, only the first batch after NewContext found
// warm nonces and every later round ran unpooled. Round 2 must pop from the
// pool (hits grow) without a single miss.
func TestPoolRearmAcrossRounds(t *testing.T) {
	const dim = 16
	p := testProfile(SystemHAFLO)
	p.NoncePool = dim
	p.Observe = true
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	grads := testGrads(4, dim)

	hits := func() (int64, int64) {
		ctx.PublishMetrics()
		reg := ctx.Obs.Metrics()
		pre := "pool." + ctx.ObsLabel() + "."
		return reg.Counter(pre + "hits"), reg.Counter(pre + "misses")
	}

	if _, err := fed.SecureAggregate(grads); err != nil {
		t.Fatal(err)
	}
	h1, m1 := hits()
	if h1 == 0 || m1 != 0 {
		t.Fatalf("round 1: pool hits %d / misses %d, want warm pops", h1, m1)
	}
	if _, err := fed.SecureAggregate(grads); err != nil {
		t.Fatal(err)
	}
	h2, m2 := hits()
	if h2 <= h1 || m2 != 0 {
		t.Fatalf("round 2 ran unpooled: hits %d→%d, misses %d", h1, h2, m2)
	}
}

// TestSharesDenominator pins both Shares variants: sequential runs divide by
// TotalSim, streamed runs (PipeChunks > 0) by TotalSimOverlapped so the
// fractions sum against the headline those runs report.
func TestSharesDenominator(t *testing.T) {
	seq := &Costs{}
	seq.AddHE(0, 100, 1, 1)
	seq.AddComm(300, 10)
	seq.AddOther(40)
	seq.AddEncode(0, 40, 4)
	seq.AddComp(20)
	s := seq.Snapshot()
	if got, want := s.TotalSim(), 500*time.Nanosecond; got != want {
		t.Fatalf("TotalSim = %v, want %v", got, want)
	}
	other, he, comm := s.Shares()
	if other != 0.2 || he != 0.2 || comm != 0.6 {
		t.Fatalf("sequential shares = %v/%v/%v, want 0.2/0.2/0.6", other, he, comm)
	}

	// The same run streamed: 200ns of the sequential cost ran as pipeline
	// chunks whose critical path measured 100ns, so the denominator drops to
	// 400ns and the fractions sum above 1 — the overlap hides sequential cost.
	ov := &Costs{}
	ov.AddHE(0, 100, 1, 1)
	ov.AddComm(300, 10)
	ov.AddOther(40)
	ov.AddEncode(0, 40, 4)
	ov.AddComp(20)
	ov.AddPipeline(200, 100, 2)
	s = ov.Snapshot()
	if got, want := s.TotalSimOverlapped(), 400*time.Nanosecond; got != want {
		t.Fatalf("TotalSimOverlapped = %v, want %v", got, want)
	}
	other, he, comm = s.Shares()
	if other != 0.25 || he != 0.25 || comm != 0.75 {
		t.Fatalf("overlapped shares = %v/%v/%v, want 0.25/0.25/0.75", other, he, comm)
	}
}

// TestTotalSimOverlappedClamp: a snapshot whose sequential pipeline charge
// exceeds its total (a client dropped mid-pipeline keeps its sequential
// charge with no overlap credit) clamps at zero instead of going negative.
func TestTotalSimOverlappedClamp(t *testing.T) {
	s := CostSnapshot{HESim: 100, PipeSeqSim: 500, PipeSim: 10}
	if got := s.TotalSimOverlapped(); got != 0 {
		t.Fatalf("TotalSimOverlapped = %v, want clamp at 0", got)
	}
	s = CostSnapshot{HESim: 600, PipeSeqSim: 500, PipeSim: 10}
	if got := s.TotalSimOverlapped(); got != 110 {
		t.Fatalf("TotalSimOverlapped = %v, want 110", got)
	}
}

// TestDropMidPipelineOverlappedSane sweeps an injected send failure across
// the round's send sequence so some runs lose a client mid-chunked-upload
// under the overlapped wave scheduler. Every completed round must keep the
// overlapped total inside [0, TotalSim] — the dropped client's sequential
// charges stay, only completed uploads earn overlap credit.
func TestDropMidPipelineOverlappedSane(t *testing.T) {
	const dim = 8
	grads := testGrads(4, dim)
	degraded := 0
	for failAt := int64(1); failAt <= 20; failAt++ {
		p := optimizedProfile(SystemHAFLO, dim)
		p.Chunk = 2
		p.Round = RoundPolicy{Quorum: 3, PhaseTimeout: 200 * time.Millisecond}
		ctx, err := NewContext(p)
		if err != nil {
			t.Fatal(err)
		}
		fed := NewFederation(ctx)
		faulty := flnet.NewFaultyTransport(fed.Transport)
		faulty.FailSendAt = failAt
		fed.Transport = faulty
		_, rep, err := fed.SecureAggregateReport(grads)
		fed.Close()
		if err != nil {
			continue // below quorum or server-side failure: typed and fine
		}
		if rep.Degraded() {
			degraded++
		}
		cs := ctx.Costs.Snapshot()
		if ov := cs.TotalSimOverlapped(); ov < 0 || ov > cs.TotalSim() {
			t.Fatalf("failAt=%d: overlapped total %v outside [0, %v]", failAt, ov, cs.TotalSim())
		}
	}
	if degraded == 0 {
		t.Fatal("no injected failure produced a degraded completed round")
	}
}
