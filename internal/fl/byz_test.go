package fl

import (
	"errors"
	"math"
	"path/filepath"
	"testing"
)

// byzProfile is a CPU profile of six parties with a boosted (scale-10)
// single adversary; callers arm the defense on top.
func byzProfile() Profile {
	p := testProfile(SystemFATE)
	p.Parties = 6
	p.Byz = AdversaryConfig{Seed: 21, Kind: AttackScale, Count: 1, Factor: 10}
	return p
}

// byzGrads: small honest gradients so even the 10× boosted upload stays
// inside the quantizer's bound (no clamping masks the attack).
func byzGrads(parties, dim int) [][]float64 {
	out := make([][]float64, parties)
	for c := range out {
		g := make([]float64, dim)
		for i := range g {
			g[i] = 0.04 + 0.002*float64(c) - 0.003*float64(i)
		}
		out[c] = g
	}
	return out
}

func l2diff(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// honestOracle runs the same gradients through an all-honest, undefended
// same-seed federation — the ground truth the defended aggregate should
// track.
func honestOracle(t *testing.T, p Profile, grads [][]float64) []float64 {
	t.Helper()
	p.Byz = AdversaryConfig{}
	p.Defense = DefensePolicy{}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	sum, err := fed.SecureAggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestDefendedRoundSuppressesScalingAdversary is the tentpole end-to-end:
// one boosted client poisons an undefended aggregate; the trimmed-mean
// group defense pulls the result back near the honest oracle.
func TestDefendedRoundSuppressesScalingAdversary(t *testing.T) {
	p := byzProfile()
	grads := byzGrads(p.Parties, 4)
	honest := honestOracle(t, p, grads)

	run := func(defense DefensePolicy) ([]float64, RoundReport) {
		t.Helper()
		prof := p
		prof.Defense = defense
		ctx, err := NewContext(prof)
		if err != nil {
			t.Fatal(err)
		}
		fed := NewFederation(ctx)
		defer fed.Close()
		sum, rep, err := fed.SecureAggregateReport(grads)
		if err != nil {
			t.Fatal(err)
		}
		return sum, rep
	}

	attacked, rep := run(DefensePolicy{})
	if rep.Defense != nil {
		t.Fatal("undefended round should not carry a defense report")
	}
	defended, drep := run(DefensePolicy{Groups: 3, Combiner: CombineTrimmedMean})
	if drep.Defense == nil {
		t.Fatal("defended round must carry a defense report")
	}
	if drep.Defense.Combiner != string(CombineTrimmedMean) || drep.Defense.Groups != 3 {
		t.Fatalf("defense report = %+v", drep.Defense)
	}
	if got := len(drep.Defense.GroupMembers); got != 3 {
		t.Fatalf("report lists %d groups' members, want 3", got)
	}

	dAtt, dDef := l2diff(attacked, honest), l2diff(defended, honest)
	if dAtt <= dDef {
		t.Fatalf("defense did not help: attacked dev %v ≤ defended dev %v", dAtt, dDef)
	}
	if dAtt < 3*dDef {
		t.Fatalf("defense too weak: attacked dev %v, defended dev %v", dAtt, dDef)
	}
}

// TestDefendedFedAvgMatchesPlainRound: the FedAvg combiner behind the group
// interface reproduces the undefended aggregate (same seed, same honest
// clients) up to quantization/float tolerance — grouping alone changes
// nothing.
func TestDefendedFedAvgMatchesPlainRound(t *testing.T) {
	p := testProfile(SystemFLBooster)
	grads := byzGrads(p.Parties, 5)

	run := func(defense DefensePolicy) []float64 {
		t.Helper()
		prof := p
		prof.Defense = defense
		ctx, err := NewContext(prof)
		if err != nil {
			t.Fatal(err)
		}
		fed := NewFederation(ctx)
		defer fed.Close()
		sum, err := fed.SecureAggregate(grads)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	plain := run(DefensePolicy{})
	grouped := run(DefensePolicy{Groups: 2, Combiner: CombineFedAvg})
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	tol := 4*ctx.Quant.MaxError() + 1e-9
	for i := range plain {
		if math.Abs(plain[i]-grouped[i]) > tol {
			t.Fatalf("slot %d: plain %v vs grouped fedavg %v (tol %v)", i, plain[i], grouped[i], tol)
		}
	}
}

// TestByzRoundsReplayBitExact: two same-seed federations under attack and
// defense produce bit-identical results round after round.
func TestByzRoundsReplayBitExact(t *testing.T) {
	p := byzProfile()
	p.Defense = DefensePolicy{Groups: 3, Combiner: CombineMedian}
	const rounds = 3
	grads := epochGrads(rounds, p.Parties, 4)

	runs := make([][][]float64, 2)
	for run := range runs {
		ctx, err := NewContext(p)
		if err != nil {
			t.Fatal(err)
		}
		fed := NewFederation(ctx)
		for r := 0; r < rounds; r++ {
			sum, err := fed.SecureAggregate(grads[r])
			if err != nil {
				t.Fatal(err)
			}
			runs[run] = append(runs[run], sum)
		}
		fed.Close()
	}
	for r := 0; r < rounds; r++ {
		if !sameBits(runs[0][r], runs[1][r]) {
			t.Fatalf("round %d diverged between same-seed runs", r+1)
		}
	}
}

// TestDefendedCrashRecoveryBitExact kills the coordinator at the aggregated
// boundary of a defended, attacked round and asserts the recovered epoch —
// which replays the journaled grouped aggregate — stays bit-identical to an
// uninterrupted run. Attack draws are keyed on round IDs, which replay.
func TestDefendedCrashRecoveryBitExact(t *testing.T) {
	const rounds, crashRound = 4, 2
	p := byzProfile()
	p.Defense = DefensePolicy{Groups: 3, Combiner: CombineTrimmedMean}
	grads := epochGrads(rounds, p.Parties, 4)

	refCtx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	refFed := NewFederation(refCtx)
	ref := make([][]float64, rounds)
	for r := 0; r < rounds; r++ {
		if ref[r], err = refFed.SecureAggregate(grads[r]); err != nil {
			t.Fatalf("reference round %d: %v", r+1, err)
		}
	}
	refFed.Close()

	store, err := OpenFileStore(filepath.Join(t.TempDir(), "byz.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	j, err := NewJournal(store)
	if err != nil {
		t.Fatal(err)
	}
	j.Fail = func(rec JournalRecord) error {
		if rec.Kind == EventAggregated && rec.Round == crashRound {
			return ErrCoordinatorCrash
		}
		return nil
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	fed.AttachJournal(j)
	crashed := false
	for r := 0; r < rounds && !crashed; r++ {
		if _, err := fed.SecureAggregate(grads[r]); err != nil {
			if !errors.Is(err, ErrCoordinatorCrash) {
				t.Fatalf("round %d: %v", r+1, err)
			}
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("crash hook never fired")
	}
	fed.Close()

	ctx2, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed2, state, err := Recover(ctx2, store)
	if err != nil {
		t.Fatal(err)
	}
	defer fed2.Close()
	if state.Resume == nil || state.Resume.Phase != PhaseBroadcast {
		t.Fatalf("expected a broadcast-boundary resume point, got %+v", state.Resume)
	}
	for r := crashRound - 1; r < rounds; r++ {
		sum, rep, err := fed2.SecureAggregateReport(grads[r])
		if err != nil {
			t.Fatalf("recovered round %d: %v", r+1, err)
		}
		if r+1 == crashRound && !rep.Resumed {
			t.Fatal("crash round should resume the journaled grouped aggregate")
		}
		if rep.Defense == nil {
			t.Fatalf("recovered round %d lost its defense report", r+1)
		}
		if !sameBits(sum, ref[r]) {
			t.Fatalf("recovered round %d diverged from the uninterrupted run", r+1)
		}
	}
}

// TestDefenseObservability: a defended, attacked, observed round publishes
// the byz/defense counters.
func TestDefenseObservability(t *testing.T) {
	p := byzProfile()
	p.Defense = DefensePolicy{Groups: 3}
	p.Observe = true
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	if _, _, err := fed.SecureAggregateReport(byzGrads(p.Parties, 3)); err != nil {
		t.Fatal(err)
	}
	reg := ctx.Obs.Metrics()
	pre := "fl." + ctx.ObsLabel() + "."
	if got := reg.Counter(pre + "byz_attacks"); got != 1 {
		t.Errorf("byz_attacks = %d, want 1", got)
	}
	if got := reg.Counter(pre + "defense_groups"); got != 3 {
		t.Errorf("defense_groups = %d, want 3", got)
	}
	if got := reg.Counter(pre + "defense_rounds"); got != 1 {
		t.Errorf("defense_rounds = %d, want 1", got)
	}
	if got := reg.Counter(pre + "defense_trimmed"); got <= 0 {
		t.Errorf("defense_trimmed = %d, want > 0", got)
	}
}
