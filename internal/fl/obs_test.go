package fl

import (
	"strings"
	"testing"
)

// obsGrads builds a small deterministic workload for observability tests.
func obsGrads(parties, dim int) [][]float64 {
	grads := make([][]float64, parties)
	for c := range grads {
		grads[c] = make([]float64, dim)
		for i := range grads[c] {
			grads[c][i] = float64((c+1)*(i+1)%7)/28.0 - 0.1
		}
	}
	return grads
}

// TestObservedRoundReconciles: a profile with Observe runs a chunked round,
// emits phase and per-chunk spans, mirrors its cost counters into the
// registry, and reconciles exactly against the CostSnapshot. A tampered
// counter must be caught.
func TestObservedRoundReconciles(t *testing.T) {
	p := NewProfile(SystemFATE, 128, 3)
	p.Seed = 7
	p.Chunk = 2
	p.Observe = true
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Obs == nil || ctx.ObsLabel() != "FATE" {
		t.Fatalf("Observe profile did not attach a bundle (label %q)", ctx.ObsLabel())
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	if _, err := fed.SecureAggregate(obsGrads(3, 8)); err != nil {
		t.Fatal(err)
	}

	ctx.PublishMetrics()
	if err := ctx.ReconcileObs(); err != nil {
		t.Fatalf("metrics drifted from the cost snapshot: %v", err)
	}

	spans := ctx.Obs.Recorder().Spans()
	if len(spans) == 0 {
		t.Fatal("observed round recorded no spans")
	}
	var phases, chunks int
	for _, s := range spans {
		switch s.Lane {
		case "fl.round":
			phases++
		case "fl.encrypt", "fl.send":
			chunks++
		}
	}
	if phases != 5 {
		t.Fatalf("%d round-phase spans, want 5 (upload gather aggregate broadcast decrypt)", phases)
	}
	if chunks == 0 {
		t.Fatal("chunked uploads recorded no encrypt/send spans")
	}

	reg := ctx.Obs.Metrics()
	if reg.Counter("fl.FATE.rounds") != 1 {
		t.Fatalf("rounds counter = %d, want 1", reg.Counter("fl.FATE.rounds"))
	}
	cs := ctx.Costs.Snapshot()
	if got := reg.Counter("fl.FATE.chunks_reassembled"); got != cs.PipeChunks {
		t.Fatalf("chunks_reassembled = %d, want every pipelined chunk (%d)", got, cs.PipeChunks)
	}
	if reg.Counter("net.FATE.msgs") == 0 {
		t.Fatal("transport meter was not published")
	}

	reg.Add("fl.FATE.he_ops", 1)
	if err := ctx.ReconcileObs(); err == nil {
		t.Fatal("tampered counter must fail reconciliation")
	} else if !strings.Contains(err.Error(), "he_ops") {
		t.Fatalf("drift error does not name the counter: %v", err)
	}
}

// TestCostsResetZeroesMirroredCounters: resetting the accumulator must also
// zero the mirrored registry counters or the next run could never reconcile.
func TestCostsResetZeroesMirroredCounters(t *testing.T) {
	p := NewProfile(SystemFATE, 128, 2)
	p.Seed = 11
	p.Observe = true
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	if _, err := fed.SecureAggregate(obsGrads(2, 4)); err != nil {
		t.Fatal(err)
	}
	reg := ctx.Obs.Metrics()
	if reg.Counter("fl.FATE.he_ops") == 0 {
		t.Fatal("round mirrored no HE ops")
	}
	ctx.Costs.Reset()
	if got := reg.Counter("fl.FATE.he_ops"); got != 0 {
		t.Fatalf("he_ops survived Costs.Reset: %d", got)
	}
	if err := ctx.ReconcileObs(); err != nil {
		t.Fatalf("post-reset reconciliation failed: %v", err)
	}
}

// TestUnobservedContextIsInert: without Observe, every observability entry
// point is a cheap no-op and reconciliation trivially passes.
func TestUnobservedContextIsInert(t *testing.T) {
	p := NewProfile(SystemFATE, 128, 2)
	p.Seed = 3
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Obs != nil {
		t.Fatal("bundle attached without Observe")
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	if _, err := fed.SecureAggregate(obsGrads(2, 4)); err != nil {
		t.Fatal(err)
	}
	ctx.PublishMetrics()
	if err := ctx.ReconcileObs(); err != nil {
		t.Fatalf("unobserved reconcile: %v", err)
	}
}
