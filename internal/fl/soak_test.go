// The chaos soak smoke test lives in an external test package so it can
// drive the fl layer through the bench harness's multi-fault soak engine
// without an import cycle (bench imports fl).
package fl_test

import (
	"testing"
	"time"

	"flbooster/internal/bench"
)

// TestSoakSmoke is the CI-sized chaos soak (`make soak-smoke`): a seeded
// multi-fault run — network chaos, device faults, coordinator kills with
// journal recovery, client churn — that must finish quickly and with the
// two zero-tolerance invariants intact: no completed round deviates from
// the arithmetic oracle, and no failure is untyped. The seed and elevated
// crash/churn probabilities are chosen so the short run still exercises at
// least one coordinator recovery and one full depart/rejoin cycle.
func TestSoakSmoke(t *testing.T) {
	cfg := bench.DefaultSoakConfig(3, 12, 4, 128)
	cfg.CrashProb = 0.3
	cfg.ChurnProb = 0.3

	start := time.Now()
	sum, err := bench.RunSoak(cfg)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("smoke soak took %v, budget 30s", elapsed)
	}
	if sum.Mismatches != 0 {
		t.Fatalf("silent corruption in %d rounds: %+v", sum.Mismatches, sum)
	}
	if sum.UntypedErrors != 0 {
		t.Fatalf("%d untyped round failures: %+v", sum.UntypedErrors, sum)
	}
	if sum.Completed+sum.Failed != cfg.Rounds {
		t.Fatalf("rounds unaccounted for: %+v", sum)
	}
	if sum.Crashes == 0 || sum.Recoveries != sum.Crashes {
		t.Fatalf("smoke run exercised no coordinator recovery: %+v", sum)
	}
	if sum.Departures == 0 || sum.Rejoins == 0 {
		t.Fatalf("smoke run exercised no churn cycle: %+v", sum)
	}
	if sum.Completed == 0 {
		t.Fatalf("no round completed under chaos: %+v", sum)
	}
	if sum.AttackedRounds == 0 || sum.DefendedRounds == 0 {
		t.Fatalf("smoke run exercised no adversary/defense round: %+v", sum)
	}
	if sum.BoundViolations != 0 {
		t.Fatalf("defended aggregate escaped the trimming bound %d times: %+v", sum.BoundViolations, sum)
	}
	t.Logf("smoke soak: %d/%d completed, %d crashes, %d departures, %d attacked, %v wall",
		sum.Completed, cfg.Rounds, sum.Crashes, sum.Departures, sum.AttackedRounds, elapsed)
}
