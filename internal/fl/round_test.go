package fl

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRoundPolicyEffectiveQuorum(t *testing.T) {
	cases := []struct {
		quorum, parties, want int
	}{
		{0, 4, 4},  // zero means all
		{3, 4, 3},  // explicit K-of-N
		{4, 4, 4},  // full strength
		{9, 4, 4},  // clamped (Validate rejects this, but resolve safely)
		{-1, 4, 4}, // negative treated as unset
	}
	for _, c := range cases {
		if got := (RoundPolicy{Quorum: c.quorum}).EffectiveQuorum(c.parties); got != c.want {
			t.Errorf("EffectiveQuorum(%d of %d) = %d, want %d", c.quorum, c.parties, got, c.want)
		}
	}
}

func TestRoundPolicyValidate(t *testing.T) {
	if err := (RoundPolicy{}).Validate(4); err != nil {
		t.Fatalf("zero policy must be valid: %v", err)
	}
	ok := RoundPolicy{Quorum: 3, PhaseTimeout: time.Second, MaxRetries: 2, Backoff: time.Millisecond}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("sound policy rejected: %v", err)
	}
	bad := []RoundPolicy{
		{Quorum: -1},
		{Quorum: 5},
		{PhaseTimeout: -time.Second},
		{MaxRetries: -1},
		{Backoff: -time.Millisecond},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("bad policy %d accepted: %+v", i, p)
		}
	}
}

func TestProfileValidatesRoundPolicy(t *testing.T) {
	p := NewProfile(SystemFATE, 1024, 4)
	p.Round.Quorum = 7
	if err := p.Validate(); err == nil {
		t.Fatal("profile with impossible quorum should fail validation")
	}
}

func TestRoundErrorFormatting(t *testing.T) {
	e := &RoundError{Round: 3, Phase: PhaseGather, Party: "client1", Err: errSentinel}
	msg := e.Error()
	for _, want := range []string{"round 3", "gather", "client1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	anon := &RoundError{Round: 1, Phase: PhaseDecrypt, Err: errSentinel}
	if strings.Contains(anon.Error(), "party") {
		t.Errorf("party-less error should not name a party: %q", anon.Error())
	}
}

var errSentinel = errors.New("boom")

func TestRoundReportDegraded(t *testing.T) {
	if (RoundReport{}).Degraded() {
		t.Fatal("empty report is not degraded")
	}
	r := RoundReport{Dropped: map[string]RoundPhase{"client0": PhaseGather}}
	if !r.Degraded() {
		t.Fatal("report with drops is degraded")
	}
}
