package fl

import (
	"fmt"
	"sync"

	"flbooster/internal/mpint"
)

// The Byzantine-adversary injector: the client-harness counterpart of the
// network ChaosTransport and the device fault injector. A seeded cohort of
// clients is compromised at construction, and every compromised client's
// local gradient vector is rewritten by an attack model before it is
// quantized and encrypted — exactly where a malicious participant would
// poison a real deployment, underneath the secure-aggregation machinery
// that hides it from the server. All randomness (who is compromised, what
// each attack draws per round) derives from the config seed and the round
// ID, so every attack scenario replays bit-exactly — including across
// coordinator crash recovery, where the re-run round keeps its round ID.

// AttackKind names one Byzantine client behaviour.
type AttackKind string

// The attack models, from crude to coordinated.
const (
	// AttackNone: no attack; the zero AdversaryConfig is honest.
	AttackNone AttackKind = ""
	// AttackSignFlip: the client uploads −g instead of g, steering the
	// aggregate away from descent.
	AttackSignFlip AttackKind = "sign-flip"
	// AttackScale: the client boosts its update by Factor — the classic
	// model-replacement/boosting attack.
	AttackScale AttackKind = "scale"
	// AttackNoise: the client adds zero-mean Gaussian noise of standard
	// deviation NoiseStd to every coordinate.
	AttackNoise AttackKind = "noise"
	// AttackZero: the client uploads the zero vector (a free-rider /
	// constant-update attack that drags the aggregate toward zero).
	AttackZero AttackKind = "zero"
	// AttackCollude: every compromised client uploads the same target
	// vector, drawn per round from the shared adversary seed — a colluding
	// cohort pushing the aggregate toward a common poisoned direction.
	AttackCollude AttackKind = "collude"
)

// KnownAttacks lists the attack models in reporting order (AttackNone
// excluded).
func KnownAttacks() []AttackKind {
	return []AttackKind{AttackSignFlip, AttackScale, AttackNoise, AttackZero, AttackCollude}
}

func knownAttack(k AttackKind) bool {
	if k == AttackNone {
		return true
	}
	for _, a := range KnownAttacks() {
		if a == k {
			return true
		}
	}
	return false
}

// AdversaryConfig arms the Byzantine injector. The zero value injects
// nothing.
type AdversaryConfig struct {
	// Seed drives compromise selection and every per-round attack draw.
	Seed uint64
	// Kind selects the attack model; AttackNone disables the injector.
	Kind AttackKind
	// Fraction of clients compromised, rounded down with a floor of one
	// when positive. Count overrides it when set.
	Fraction float64
	// Count is the explicit number of compromised clients (0 = derive from
	// Fraction).
	Count int
	// Factor is the boosting multiplier for AttackScale (default 10).
	Factor float64
	// NoiseStd is the Gaussian standard deviation for AttackNoise
	// (default 1).
	NoiseStd float64
	// Drift bounds the per-coordinate magnitude of the colluders' shared
	// target for AttackCollude (default 1).
	Drift float64
}

// Enabled reports whether the config compromises anyone.
func (c AdversaryConfig) Enabled() bool {
	return c.Kind != AttackNone && (c.Count > 0 || c.Fraction > 0)
}

// Validate reports configuration errors for a federation of `parties`.
func (c AdversaryConfig) Validate(parties int) error {
	switch {
	case !knownAttack(c.Kind):
		return fmt.Errorf("fl: unknown attack kind %q", c.Kind)
	case c.Fraction < 0 || c.Fraction >= 1:
		return fmt.Errorf("fl: adversary fraction %v outside [0, 1)", c.Fraction)
	case c.Count < 0:
		return fmt.Errorf("fl: negative adversary count %d", c.Count)
	case c.Count >= parties && c.Count > 0:
		return fmt.Errorf("fl: %d adversaries need at least %d parties", c.Count, c.Count+1)
	case c.Factor < 0:
		return fmt.Errorf("fl: negative attack factor %v", c.Factor)
	case c.NoiseStd < 0:
		return fmt.Errorf("fl: negative attack noise %v", c.NoiseStd)
	case c.Drift < 0:
		return fmt.Errorf("fl: negative collusion drift %v", c.Drift)
	case c.Kind == AttackNone && (c.Count > 0 || c.Fraction > 0):
		return fmt.Errorf("fl: adversary cohort configured without an attack kind")
	}
	return nil
}

// cohortSize resolves Count/Fraction for a party count. An armed config
// always compromises at least one client and never all of them.
func (c AdversaryConfig) cohortSize(parties int) int {
	if !c.Enabled() {
		return 0
	}
	n := c.Count
	if n == 0 {
		n = int(c.Fraction * float64(parties))
		if n == 0 {
			n = 1
		}
	}
	if n >= parties {
		n = parties - 1
	}
	return n
}

// AdversaryStats counts injector activity.
type AdversaryStats struct {
	// Compromised is the cohort size.
	Compromised int
	// Applications counts gradient vectors rewritten by an attack.
	Applications int64
	// ByKind breaks Applications down per attack model (the kind can be
	// rotated between rounds by harnesses).
	ByKind map[AttackKind]int64
}

// Adversary is the armed injector: a fixed seeded cohort plus the attack
// model applied at each upload. Safe for concurrent use.
type Adversary struct {
	seed      uint64
	parties   int
	malicious map[int]bool

	mu    sync.Mutex
	kind  AttackKind
	cfg   AdversaryConfig
	stats AdversaryStats
}

// NewAdversary arms an injector over `parties` clients. A disabled config
// returns a nil Adversary — nil is the honest injector and is safe to call.
func NewAdversary(cfg AdversaryConfig, parties int) (*Adversary, error) {
	if err := cfg.Validate(parties); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if cfg.Factor == 0 {
		cfg.Factor = 10
	}
	if cfg.NoiseStd == 0 {
		cfg.NoiseStd = 1
	}
	if cfg.Drift == 0 {
		cfg.Drift = 1
	}
	n := cfg.cohortSize(parties)
	// Seeded partial Fisher–Yates over the client indices: the first n
	// positions of the shuffle are the compromised cohort.
	idx := make([]int, parties)
	for i := range idx {
		idx[i] = i
	}
	rng := mpint.NewRNG(cfg.Seed ^ 0xb12e)
	malicious := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		j := i + rng.Intn(parties-i)
		idx[i], idx[j] = idx[j], idx[i]
		malicious[idx[i]] = true
	}
	return &Adversary{
		seed:      cfg.Seed,
		parties:   parties,
		malicious: malicious,
		kind:      cfg.Kind,
		cfg:       cfg,
		stats: AdversaryStats{
			Compromised: n,
			ByKind:      make(map[AttackKind]int64),
		},
	}, nil
}

// IsMalicious reports whether client i is in the compromised cohort. A nil
// adversary compromises nobody.
func (a *Adversary) IsMalicious(i int) bool {
	return a != nil && a.malicious[i]
}

// Malicious returns the compromised client indices in ascending order.
func (a *Adversary) Malicious() []int {
	if a == nil {
		return nil
	}
	out := make([]int, 0, len(a.malicious))
	for i := 0; i < a.parties; i++ {
		if a.malicious[i] {
			out = append(out, i)
		}
	}
	return out
}

// Kind returns the current attack model.
func (a *Adversary) Kind() AttackKind {
	if a == nil {
		return AttackNone
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.kind
}

// SetKind switches the attack model between rounds — the hook adversarial
// schedules (the soak, the byz sweep) use to rotate attacks over one fixed
// cohort. Switching mid-round is a harness bug, not supported.
func (a *Adversary) SetKind(k AttackKind) error {
	if a == nil {
		return fmt.Errorf("fl: SetKind on a nil adversary")
	}
	if !knownAttack(k) || k == AttackNone {
		return fmt.Errorf("fl: unknown attack kind %q", k)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.kind = k
	return nil
}

// Stats returns a snapshot of the injector counters.
func (a *Adversary) Stats() AdversaryStats {
	if a == nil {
		return AdversaryStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := a.stats
	out.ByKind = make(map[AttackKind]int64, len(a.stats.ByKind))
	for k, v := range a.stats.ByKind {
		out.ByKind[k] = v
	}
	return out
}

// colludeStream is the pseudo-client index of the colluders' shared draw
// stream — outside any real client index.
const colludeStream = 1<<31 - 1

// attackRNG derives the deterministic stream for one (round, client) draw.
// Colluding draws pass colludeStream for the whole cohort so the target is
// shared.
func (a *Adversary) attackRNG(round uint64, client int) *mpint.RNG {
	return mpint.NewRNG(a.seed ^ round*0x9E3779B97F4A7C15 ^ uint64(client)*0xBF58476D1CE4E5B9 ^ 0xad7e)
}

// Apply rewrites client i's gradient vector for the given round when the
// client is compromised; honest clients (and a nil adversary) get the input
// back untouched. The returned slice is a fresh copy for compromised
// clients — the caller's honest gradients are never mutated, so oracles can
// re-derive both views.
func (a *Adversary) Apply(round uint64, client int, grads []float64) []float64 {
	if !a.IsMalicious(client) {
		return grads
	}
	a.mu.Lock()
	kind := a.kind
	cfg := a.cfg
	a.stats.Applications++
	a.stats.ByKind[kind]++
	a.mu.Unlock()

	out := make([]float64, len(grads))
	switch kind {
	case AttackSignFlip:
		for i, g := range grads {
			out[i] = -g
		}
	case AttackScale:
		for i, g := range grads {
			out[i] = cfg.Factor * g
		}
	case AttackNoise:
		rng := a.attackRNG(round, client)
		for i, g := range grads {
			out[i] = g + cfg.NoiseStd*rng.NormFloat64()
		}
	case AttackZero:
		// out is already the zero vector.
	case AttackCollude:
		// One shared stream for the whole cohort: every colluder uploads
		// the identical per-round target.
		rng := a.attackRNG(round, colludeStream)
		for i := range out {
			out[i] = cfg.Drift * (2*rng.Float64() - 1)
		}
	default:
		copy(out, grads)
	}
	return out
}
