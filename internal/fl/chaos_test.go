package fl

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"flbooster/internal/flnet"
)

// TestChaosRoundsCompleteOrFailTyped is the chaos acceptance suite: under
// seeded probabilistic drops, delays, duplication, and reordering, every
// SecureAggregate call must either complete (via retry or K-of-N quorum,
// with dropped clients reported) or return a typed phase/party error — and
// do either within the configured deadlines, never hang.
func TestChaosRoundsCompleteOrFailTyped(t *testing.T) {
	grads := [][]float64{{0.1, -0.3}, {0.1, -0.3}, {0.1, -0.3}, {0.1, -0.3}}
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ctx, err := NewContext(quorumProfile(SystemFLBooster))
			if err != nil {
				t.Fatal(err)
			}
			fed := NewFederation(ctx)
			defer fed.Close()
			chaos := flnet.NewChaosTransport(fed.Transport, flnet.ChaosConfig{
				Seed:        seed,
				DropProb:    0.15,
				DupProb:     0.15,
				ReorderProb: 0.2,
				Delay:       time.Millisecond,
			})
			fed.Transport = chaos

			completed := 0
			for round := 0; round < 4; round++ {
				start := time.Now()
				sum, rep, err := fed.SecureAggregateReport(grads)
				elapsed := time.Since(start)
				// Phase deadlines are 200ms; with retries and four phases a
				// round must resolve within a couple of seconds either way.
				if elapsed > 10*time.Second {
					t.Fatalf("round %d took %v: deadline not enforced", round, elapsed)
				}
				if err != nil {
					var rerr *RoundError
					if !errors.As(err, &rerr) {
						t.Fatalf("round %d: untyped failure %T: %v", round, err, err)
					}
					if rerr.Phase == "" {
						t.Fatalf("round %d: error missing phase: %v", round, rerr)
					}
					continue
				}
				completed++
				// A client lost before aggregation must not appear in
				// Included; a decrypt-phase drop legitimately can (its
				// gradient was aggregated, only its result copy was lost).
				for party, phase := range rep.Dropped {
					if phase == PhaseDecrypt {
						continue
					}
					for _, inc := range rep.Included {
						if inc == party {
							t.Fatalf("round %d: %s dropped in %s yet included: %+v", round, party, phase, rep)
						}
					}
				}
				if len(rep.Included) < 3 {
					t.Fatalf("round %d completed below quorum: %+v", round, rep)
				}
				// Identical client gradients: the scaled estimate must match
				// the true full-federation sum whatever subset contributed.
				bound := 4 * rep.Scale * ctx.Quant.MaxError()
				for i, want := range []float64{0.4, -1.2} {
					if d := sum[i] - want; d > bound || d < -bound {
						t.Fatalf("round %d sum[%d] = %v, want %v ± %v (report %+v)",
							round, i, sum[i], want, bound, rep)
					}
				}
			}
			t.Logf("seed %d: %d/4 rounds completed, stats %+v", seed, completed, chaos.Stats())
		})
	}
}

// TestStragglerDegradesGracefully delays every message from one client far
// past the phase deadline: each round must complete with the other three
// clients in roughly clean-round time plus the deadline — not stall for the
// straggler.
func TestStragglerDegradesGracefully(t *testing.T) {
	const rounds = 3
	const phaseTimeout = 150 * time.Millisecond
	const stragglerDelay = 2 * time.Second
	grads := [][]float64{{0.1, 0.2}, {0.1, 0.2}, {0.1, 0.2}, {0.1, 0.2}}

	run := func(straggle bool) (time.Duration, RoundReport) {
		p := quorumProfile(SystemFLBooster)
		p.Round.PhaseTimeout = phaseTimeout
		ctx, err := NewContext(p)
		if err != nil {
			t.Fatal(err)
		}
		fed := NewFederation(ctx)
		defer fed.Close()
		if straggle {
			fed.Transport = flnet.NewChaosTransport(fed.Transport, flnet.ChaosConfig{
				Seed:           11,
				StragglerParty: ClientName(0),
				StragglerDelay: stragglerDelay,
			})
		}
		var rep RoundReport
		start := time.Now()
		for i := 0; i < rounds; i++ {
			var err error
			_, rep, err = fed.SecureAggregateReport(grads)
			if err != nil {
				t.Fatalf("straggle=%v round %d: %v", straggle, i, err)
			}
		}
		return time.Since(start), rep
	}

	clean, cleanRep := run(false)
	if cleanRep.Degraded() {
		t.Fatalf("clean run dropped clients: %+v", cleanRep)
	}
	degraded, degradedRep := run(true)
	if phase, ok := degradedRep.Dropped[ClientName(0)]; !ok || phase != PhaseGather {
		t.Fatalf("straggler not reported dropped in gather: %+v", degradedRep)
	}
	if len(degradedRep.Included) != 3 {
		t.Fatalf("degraded round included %v", degradedRep.Included)
	}

	// The whole point: the epoch pays at most the phase deadline per round,
	// never the straggler's delay.
	budget := clean + rounds*phaseTimeout + time.Second
	if degraded > budget {
		t.Fatalf("degraded epoch %v exceeds budget %v (clean %v)", degraded, budget, clean)
	}
	if degraded > rounds*stragglerDelay {
		t.Fatalf("degraded epoch %v suggests the round waited for the straggler", degraded)
	}
	t.Logf("clean epoch %v, degraded epoch %v (budget %v)", clean, degraded, budget)
}
