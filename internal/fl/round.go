package fl

import (
	"fmt"
	"time"
)

// RoundPhase names one stage of the secure-aggregation state machine — the
// label a RoundError carries so operators see where a round died.
type RoundPhase string

// The four phases of the Fig. 2 round, in execution order.
const (
	// PhaseUpload: clients encrypt local gradients and send them.
	PhaseUpload RoundPhase = "upload"
	// PhaseGather: the server collects uploads until quorum or deadline.
	PhaseGather RoundPhase = "gather"
	// PhaseBroadcast: the server returns the homomorphic aggregate.
	PhaseBroadcast RoundPhase = "broadcast"
	// PhaseDecrypt: clients receive and decrypt the aggregate.
	PhaseDecrypt RoundPhase = "decrypt"
	// PhaseAdmit: the pre-round boundary where departed clients are checked
	// against quorum and rejoining clients are admitted. A round that cannot
	// start (active roster below quorum) fails here.
	PhaseAdmit RoundPhase = "admit"
)

// RoundError is the typed failure of a federation round: which round, which
// phase, and — when one party is at fault — which party.
type RoundError struct {
	Round uint64
	Phase RoundPhase
	Party string
	Err   error
}

// Error implements error.
func (e *RoundError) Error() string {
	if e.Party != "" {
		return fmt.Sprintf("fl: round %d failed in %s phase (party %s): %v", e.Round, e.Phase, e.Party, e.Err)
	}
	return fmt.Sprintf("fl: round %d failed in %s phase: %v", e.Round, e.Phase, e.Err)
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *RoundError) Unwrap() error { return e.Err }

// RoundPolicy governs how a federation round degrades under faults. The
// zero value is the strict protocol: every party must respond, no deadline,
// no retransmission — exactly the pre-policy behaviour.
type RoundPolicy struct {
	// Quorum is the minimum number of client contributions a round needs;
	// 0 (or Parties) means all clients are required. With Quorum K < N the
	// server proceeds once K uploads arrive and the deadline expires, and
	// the aggregate is scaled by N/K to stay an unbiased estimate.
	Quorum int
	// PhaseTimeout bounds each phase's blocking receives; 0 disables
	// deadlines. Tolerating *silent* drops (as opposed to failed sends,
	// which the sender observes) requires a positive PhaseTimeout.
	PhaseTimeout time.Duration
	// MaxRetries re-attempts failed sends before dropping the party.
	MaxRetries int
	// Backoff is the initial retry backoff (doubled per attempt, jittered);
	// 0 retries immediately.
	Backoff time.Duration
}

// EffectiveQuorum resolves the policy's quorum for a party count.
func (rp RoundPolicy) EffectiveQuorum(parties int) int {
	if rp.Quorum <= 0 || rp.Quorum > parties {
		return parties
	}
	return rp.Quorum
}

// Validate reports configuration errors for a federation of `parties`.
func (rp RoundPolicy) Validate(parties int) error {
	switch {
	case rp.Quorum < 0:
		return fmt.Errorf("fl: negative quorum %d", rp.Quorum)
	case rp.Quorum > parties:
		return fmt.Errorf("fl: quorum %d exceeds %d parties", rp.Quorum, parties)
	case rp.PhaseTimeout < 0:
		return fmt.Errorf("fl: negative phase timeout %v", rp.PhaseTimeout)
	case rp.MaxRetries < 0:
		return fmt.Errorf("fl: negative retry count %d", rp.MaxRetries)
	case rp.Backoff < 0:
		return fmt.Errorf("fl: negative backoff %v", rp.Backoff)
	}
	return nil
}

// RoundReport describes how a round actually went: who contributed, who was
// dropped (and in which phase), how much retransmission it took, and the
// scale factor applied to keep a quorum aggregate unbiased.
type RoundReport struct {
	// Round is the state machine's monotonically increasing round ID.
	Round uint64
	// Included lists clients whose gradients made it into the aggregate.
	Included []string
	// Dropped maps a dropped client to the phase that lost it.
	Dropped map[string]RoundPhase
	// Retries counts send re-attempts across all phases.
	Retries int64
	// Stale counts discarded messages from earlier rounds.
	Stale int
	// Duplicates counts discarded repeat messages within this round.
	Duplicates int
	// Scale is parties/len(Included) — 1 for a full round.
	Scale float64
	// Attempt counts executions of this round across coordinator restarts
	// (1 = first run, 2 = first re-run after a crash, ...).
	Attempt uint32
	// Resumed is true when the round skipped straight to broadcast by
	// replaying a journaled aggregate instead of re-gathering uploads.
	Resumed bool
	// Admitted lists clients re-admitted at this round's boundary after a
	// departure.
	Admitted []string
	// CohortSize is how many clients the round scheduled: the sampled cohort
	// size, or the full active roster when sampling is off.
	CohortSize int
	// PeakLiveCts is the coordinator's high-water count of simultaneously
	// live aggregate-path ciphertexts: cohort·width for a flat round, the
	// tree's fanout·depth-bounded peak for a hierarchical one.
	PeakLiveCts int64
	// Tree describes the hierarchical aggregation of a tree round (summed
	// across groups when the round is also defended). Nil for flat rounds.
	Tree *TreeStats
	// Defense describes the group-wise robust aggregation of a defended
	// round: the partition, the combiner, and what it suppressed. Nil for
	// plain (undefended) rounds.
	Defense *DefenseReport
	// Anatomy is the round's per-phase cost table: deterministic sim-time
	// per protocol phase, split by cost component.
	Anatomy *RoundAnatomy
}

// Degraded reports whether the round completed without all parties.
func (r RoundReport) Degraded() bool { return len(r.Dropped) > 0 }
