package fl

import (
	"fmt"
	"math"
	"sort"

	"flbooster/internal/mpint"
)

// Group-wise robust aggregation. Secure aggregation hides individual
// updates, so classical robust statistics (which need per-client vectors)
// cannot run directly. Instead the K reporting clients are partitioned into
// G seeded groups, each group is HE-summed exactly as before, and only the
// G group sums are ever decrypted. A pluggable combiner then merges the
// group means robustly, suppressing outlier groups. Privacy degrades only
// to group granularity (the server/decryptor learns G sub-aggregates, never
// an individual update when groups hold ≥2 clients); robustness holds as
// long as the number of groups containing a Byzantine client stays within
// the combiner's breakdown point.

// CombinerKind names a robust group-combiner.
type CombinerKind string

// The combiners, all implementing Aggregator.
const (
	// CombineFedAvg: the size-weighted mean of the group means — exactly
	// FedAvg, no robustness. The honest baseline behind the same interface.
	CombineFedAvg CombinerKind = "fedavg"
	// CombineTrimmedMean: per coordinate, drop the Trim highest and Trim
	// lowest group values and average the rest.
	CombineTrimmedMean CombinerKind = "trimmed-mean"
	// CombineMedian: the coordinate-wise median of the group means.
	CombineMedian CombinerKind = "median"
	// CombineNormClip: scale every group mean whose L2 norm exceeds the
	// bound down onto the ball, then take the size-weighted mean. With
	// ClipNorm 0 the bound is the median group norm.
	CombineNormClip CombinerKind = "norm-clip"
	// CombineKrum: Krum-style group selection — score each group by the sum
	// of its squared distances to its closest peers, drop the Trim
	// highest-scored groups, and average the survivors.
	CombineKrum CombinerKind = "krum"
)

// KnownCombiners lists the combiners in reporting order.
func KnownCombiners() []CombinerKind {
	return []CombinerKind{CombineFedAvg, CombineTrimmedMean, CombineMedian, CombineNormClip, CombineKrum}
}

func knownCombiner(k CombinerKind) bool {
	for _, c := range KnownCombiners() {
		if c == k {
			return true
		}
	}
	return false
}

// DefensePolicy configures group-wise robust aggregation. The zero value
// disables it (plain single-aggregate rounds, byte-identical to the
// pre-defense protocol).
type DefensePolicy struct {
	// Groups is G, the number of secure-aggregation groups; values above 1
	// enable the defense. G is clamped to the number of reporting clients.
	Groups int
	// Combiner selects the robust combiner (default trimmed-mean).
	Combiner CombinerKind
	// Trim is the number of groups trimmed per side (trimmed-mean) or
	// dropped outright (krum); default 1. It is clamped so at least one
	// group always survives.
	Trim int
	// ClipNorm is the norm-clip L2 bound; 0 derives it per round as the
	// median group-mean norm.
	ClipNorm float64
}

// Enabled reports whether the policy arms the defense.
func (d DefensePolicy) Enabled() bool { return d.Groups > 1 }

// Validate reports configuration errors.
func (d DefensePolicy) Validate() error {
	switch {
	case d.Groups < 0:
		return fmt.Errorf("fl: negative defense group count %d", d.Groups)
	case d.Trim < 0:
		return fmt.Errorf("fl: negative defense trim %d", d.Trim)
	case d.ClipNorm < 0:
		return fmt.Errorf("fl: negative defense clip norm %v", d.ClipNorm)
	}
	if d.Enabled() && d.Combiner != "" && !knownCombiner(d.Combiner) {
		return fmt.Errorf("fl: unknown defense combiner %q", d.Combiner)
	}
	return nil
}

// EffectiveTrim resolves the trim count for G groups: at most Trim (default
// 1), clamped so trimming leaves at least one group.
func (d DefensePolicy) EffectiveTrim(groups int) int {
	t := d.Trim
	if t == 0 {
		t = 1
	}
	if max := (groups - 1) / 2; t > max {
		t = max
	}
	if t < 0 {
		t = 0
	}
	return t
}

// NewAggregator builds the policy's combiner.
func (d DefensePolicy) NewAggregator() (Aggregator, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	kind := d.Combiner
	if kind == "" {
		kind = CombineTrimmedMean
	}
	switch kind {
	case CombineFedAvg:
		return FedAvg{}, nil
	case CombineTrimmedMean:
		return TrimmedMean{Trim: d.Trim}, nil
	case CombineMedian:
		return Median{}, nil
	case CombineNormClip:
		return NormClip{Bound: d.ClipNorm}, nil
	case CombineKrum:
		return Krum{Drop: d.Trim}, nil
	}
	return nil, fmt.Errorf("fl: unknown defense combiner %q", kind)
}

// GroupUpdate is one decrypted group sub-aggregate, presented to combiners
// as the group's mean update with its contributor count.
type GroupUpdate struct {
	// Mean is the group's mean gradient vector (group sum / Size).
	Mean []float64
	// Size is the number of clients securely aggregated into this group.
	Size int
}

// CombineStats describes what a combiner suppressed.
type CombineStats struct {
	// TrimmedCoords counts coordinate slots discarded by per-coordinate
	// trimming (trimmed-mean: 2·t·dim).
	TrimmedCoords int64 `json:"trimmed_coords,omitempty"`
	// GroupsDropped counts groups excluded wholesale (krum).
	GroupsDropped int `json:"groups_dropped,omitempty"`
	// Clipped counts groups whose norm was clipped (norm-clip).
	Clipped int `json:"clipped,omitempty"`
	// Suspicion is a per-group outlier score in combiner-specific units:
	// trim participation for trimmed-mean/median, norm/bound for norm-clip,
	// the Krum score for krum, zero for fedavg. Higher is more suspect.
	Suspicion []float64 `json:"suspicion,omitempty"`
}

// Aggregator combines decrypted group updates into one robust mean
// estimate. Implementations must be pure functions of their inputs so every
// decrypting client reaches the identical result.
type Aggregator interface {
	// Name identifies the combiner in reports and metrics.
	Name() string
	// Combine returns the robust mean update over the groups.
	Combine(groups []GroupUpdate) ([]float64, CombineStats, error)
}

// validateGroups rejects the malformed inputs every combiner shares.
func validateGroups(groups []GroupUpdate) (dim int, err error) {
	if len(groups) == 0 {
		return 0, fmt.Errorf("fl: combine with no groups")
	}
	dim = len(groups[0].Mean)
	for g, gu := range groups {
		if gu.Size < 1 {
			return 0, fmt.Errorf("fl: group %d has size %d", g, gu.Size)
		}
		if len(gu.Mean) != dim {
			return 0, fmt.Errorf("fl: group %d has %d coordinates, want %d", g, len(gu.Mean), dim)
		}
	}
	return dim, nil
}

// FedAvg is the non-robust baseline: the size-weighted mean of the group
// means, i.e. exactly the all-client mean.
type FedAvg struct{}

// Name implements Aggregator.
func (FedAvg) Name() string { return string(CombineFedAvg) }

// Combine implements Aggregator.
func (FedAvg) Combine(groups []GroupUpdate) ([]float64, CombineStats, error) {
	dim, err := validateGroups(groups)
	if err != nil {
		return nil, CombineStats{}, err
	}
	out := make([]float64, dim)
	total := 0
	for _, gu := range groups {
		total += gu.Size
		for i, v := range gu.Mean {
			out[i] += float64(gu.Size) * v
		}
	}
	for i := range out {
		out[i] /= float64(total)
	}
	return out, CombineStats{Suspicion: make([]float64, len(groups))}, nil
}

// TrimmedMean is the coordinate-wise trimmed mean over group means: per
// coordinate the Trim lowest and Trim highest group values are discarded
// and the rest averaged (unweighted — groups are near-equal sized by
// construction). With at most Trim Byzantine groups, every output
// coordinate provably lies within the range of the honest groups' values.
type TrimmedMean struct {
	// Trim is the per-side trim count (0 means 1), clamped so at least one
	// group survives.
	Trim int
}

// Name implements Aggregator.
func (t TrimmedMean) Name() string { return string(CombineTrimmedMean) }

// Combine implements Aggregator.
func (t TrimmedMean) Combine(groups []GroupUpdate) ([]float64, CombineStats, error) {
	dim, err := validateGroups(groups)
	if err != nil {
		return nil, CombineStats{}, err
	}
	trim := DefensePolicy{Trim: t.Trim}.EffectiveTrim(len(groups))
	out := make([]float64, dim)
	stats := CombineStats{Suspicion: make([]float64, len(groups))}
	type coord struct {
		v float64
		g int
	}
	col := make([]coord, len(groups))
	for i := 0; i < dim; i++ {
		for g, gu := range groups {
			col[g] = coord{gu.Mean[i], g}
		}
		// Deterministic order: by value, group index breaking ties.
		sort.Slice(col, func(a, b int) bool {
			if col[a].v != col[b].v {
				return col[a].v < col[b].v
			}
			return col[a].g < col[b].g
		})
		var sum float64
		for k := trim; k < len(col)-trim; k++ {
			sum += col[k].v
		}
		out[i] = sum / float64(len(col)-2*trim)
		for k := 0; k < trim; k++ {
			stats.Suspicion[col[k].g]++
			stats.Suspicion[col[len(col)-1-k].g]++
		}
	}
	stats.TrimmedCoords = int64(2*trim) * int64(dim)
	// Normalize suspicion to the fraction of coordinates a group was
	// trimmed on.
	if dim > 0 {
		for g := range stats.Suspicion {
			stats.Suspicion[g] /= float64(dim)
		}
	}
	return out, stats, nil
}

// Median is the coordinate-wise median of the group means (the trimmed mean
// at maximal trim; breakdown point just under half the groups).
type Median struct{}

// Name implements Aggregator.
func (Median) Name() string { return string(CombineMedian) }

// Combine implements Aggregator.
func (Median) Combine(groups []GroupUpdate) ([]float64, CombineStats, error) {
	dim, err := validateGroups(groups)
	if err != nil {
		return nil, CombineStats{}, err
	}
	out := make([]float64, dim)
	stats := CombineStats{Suspicion: make([]float64, len(groups))}
	col := make([]float64, len(groups))
	for i := 0; i < dim; i++ {
		for g, gu := range groups {
			col[g] = gu.Mean[i]
		}
		sort.Float64s(col)
		mid := len(col) / 2
		if len(col)%2 == 1 {
			out[i] = col[mid]
		} else {
			out[i] = (col[mid-1] + col[mid]) / 2
		}
	}
	// Suspicion: distance of each group's mean from the median vector,
	// normalized by the largest (pure reporting; the median needs no drop
	// decision).
	var maxd float64
	for g, gu := range groups {
		stats.Suspicion[g] = l2dist(gu.Mean, out)
		if stats.Suspicion[g] > maxd {
			maxd = stats.Suspicion[g]
		}
	}
	if maxd > 0 {
		for g := range stats.Suspicion {
			stats.Suspicion[g] /= maxd
		}
	}
	return out, stats, nil
}

// NormClip scales every group mean whose L2 norm exceeds the bound down
// onto the ball of that radius, then takes the size-weighted mean — the
// defense of choice against boosting/scaling attacks.
type NormClip struct {
	// Bound is the L2 radius; 0 derives it per call as the median group
	// norm (robust as long as most groups are honest).
	Bound float64
}

// Name implements Aggregator.
func (n NormClip) Name() string { return string(CombineNormClip) }

// Combine implements Aggregator.
func (n NormClip) Combine(groups []GroupUpdate) ([]float64, CombineStats, error) {
	dim, err := validateGroups(groups)
	if err != nil {
		return nil, CombineStats{}, err
	}
	norms := make([]float64, len(groups))
	for g, gu := range groups {
		norms[g] = l2norm(gu.Mean)
	}
	bound := n.Bound
	if bound == 0 {
		sorted := append([]float64(nil), norms...)
		sort.Float64s(sorted)
		mid := len(sorted) / 2
		if len(sorted)%2 == 1 {
			bound = sorted[mid]
		} else {
			bound = (sorted[mid-1] + sorted[mid]) / 2
		}
	}
	stats := CombineStats{Suspicion: make([]float64, len(groups))}
	out := make([]float64, dim)
	total := 0
	for g, gu := range groups {
		scale := 1.0
		if bound > 0 && norms[g] > bound {
			scale = bound / norms[g]
			stats.Clipped++
		}
		if bound > 0 {
			stats.Suspicion[g] = norms[g] / bound
		}
		total += gu.Size
		for i, v := range gu.Mean {
			out[i] += float64(gu.Size) * scale * v
		}
	}
	for i := range out {
		out[i] /= float64(total)
	}
	return out, stats, nil
}

// Krum scores each group by the sum of squared L2 distances to its
// G−Drop−2 nearest peers (the groups a Byzantine cohort cannot all be) and
// averages the G−Drop lowest-scored groups, size-weighted — multi-Krum at
// group granularity.
type Krum struct {
	// Drop is how many highest-scored groups are excluded (0 means 1),
	// clamped so at least one group survives.
	Drop int
}

// Name implements Aggregator.
func (k Krum) Name() string { return string(CombineKrum) }

// Combine implements Aggregator.
func (k Krum) Combine(groups []GroupUpdate) ([]float64, CombineStats, error) {
	dim, err := validateGroups(groups)
	if err != nil {
		return nil, CombineStats{}, err
	}
	drop := DefensePolicy{Trim: k.Drop}.EffectiveTrim(len(groups))
	stats := CombineStats{Suspicion: make([]float64, len(groups))}
	// Pairwise squared distances; score = sum over the closest
	// len(groups)-drop-2 peers (at least one).
	neighbours := len(groups) - drop - 2
	if neighbours < 1 {
		neighbours = 1
	}
	if neighbours > len(groups)-1 {
		neighbours = len(groups) - 1
	}
	dists := make([]float64, len(groups))
	for g, gu := range groups {
		dists = dists[:0]
		for h, hu := range groups {
			if h == g {
				continue
			}
			d := l2dist(gu.Mean, hu.Mean)
			dists = append(dists, d*d)
		}
		sort.Float64s(dists)
		var score float64
		for i := 0; i < neighbours && i < len(dists); i++ {
			score += dists[i]
		}
		stats.Suspicion[g] = score
	}
	// Keep the len(groups)-drop lowest-scored groups; ties break on group
	// index so selection is deterministic.
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := order[a], order[b]
		if stats.Suspicion[ga] != stats.Suspicion[gb] {
			return stats.Suspicion[ga] < stats.Suspicion[gb]
		}
		return ga < gb
	})
	keep := order[:len(groups)-drop]
	sort.Ints(keep)
	stats.GroupsDropped = drop
	out := make([]float64, dim)
	total := 0
	for _, g := range keep {
		gu := groups[g]
		total += gu.Size
		for i, v := range gu.Mean {
			out[i] += float64(gu.Size) * v
		}
	}
	for i := range out {
		out[i] /= float64(total)
	}
	return out, stats, nil
}

func l2norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func l2dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AssignGroups partitions members into at most `groups` seeded near-equal
// groups: a seeded shuffle dealt round-robin, each group then restored to
// the members' original (canonical) order. The assignment is a pure
// function of (seed, round, members, groups), so the coordinator, every
// decrypting client, crash-recovered re-runs, and plaintext oracles all
// derive the identical partition. Groups never come back empty.
func AssignGroups(members []string, groups int, seed, round uint64) [][]string {
	g := groups
	if g > len(members) {
		g = len(members)
	}
	if g < 1 {
		g = 1
	}
	pos := make(map[string]int, len(members))
	for i, m := range members {
		pos[m] = i
	}
	shuffled := append([]string(nil), members...)
	rng := mpint.NewRNG(seed ^ round*0x9E3779B97F4A7C15 ^ 0x6a0f)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	out := make([][]string, g)
	for i, m := range shuffled {
		out[i%g] = append(out[i%g], m)
	}
	for _, grp := range out {
		sort.Slice(grp, func(a, b int) bool { return pos[grp[a]] < pos[grp[b]] })
	}
	return out
}

// DefenseReport records one defended round's group anatomy for
// RoundReport, soak oracles, and the byz experiment.
type DefenseReport struct {
	// Combiner names the aggregator that merged the groups.
	Combiner string `json:"combiner"`
	// Groups is the effective group count (after clamping to the reporting
	// client count); GroupSizes and GroupMembers describe the partition.
	Groups       int        `json:"groups"`
	GroupSizes   []int      `json:"group_sizes"`
	GroupMembers [][]string `json:"group_members,omitempty"`
	// Stats is what the combiner suppressed.
	Stats CombineStats `json:"stats"`
}

// MaxSuspicion returns the highest per-group suspicion score (0 when none).
func (d *DefenseReport) MaxSuspicion() float64 {
	if d == nil {
		return 0
	}
	var max float64
	for _, s := range d.Stats.Suspicion {
		if s > max {
			max = s
		}
	}
	return max
}
