package fl

import (
	"fmt"
	"time"

	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

// Vertical-protocol helpers. The hetero models exchange two kinds of HE
// payloads: *aggregatable* vectors (partial scores, histograms) that batch
// compression can pack because downstream use is slot-wise addition, and
// *per-sample* ciphertexts (residuals, gradient/hessian terms) that feed
// per-sample homomorphic multiply-accumulate and therefore stay one value
// per ciphertext under every profile. The methods below are the per-sample
// path; EncryptGradients/DecryptAggregated remain the aggregatable path.

// EncryptValuesUnpacked encrypts one quantized value per ciphertext
// regardless of the batch-compression setting.
func (c *Context) EncryptValuesUnpacked(vals []float64) ([]paillier.Ciphertext, error) {
	qs := c.Quant.QuantizeVec(vals)
	pts := make([]mpint.Nat, len(qs))
	for i, q := range qs {
		pts[i] = mpint.FromUint64(q)
	}
	base := c.simBase()
	start := time.Now()
	cts, err := c.Backend.EncryptVec(&c.Key.PublicKey, pts, c.nextSeed())
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	c.Costs.AddHE(wall, c.simSince(base, wall), int64(len(cts)), int64(len(vals)))
	c.Costs.AddCompression(int64(len(vals)), int64(len(cts)))
	return cts, nil
}

// DecryptRaw decrypts ciphertexts to raw unsigned plaintext values (no
// dequantization) — the weighted homomorphic sums of the vertical gradient
// step, which callers decode with their own correction terms.
func (c *Context) DecryptRaw(cts []paillier.Ciphertext) ([]uint64, error) {
	base := c.simBase()
	start := time.Now()
	pts, err := c.Backend.DecryptVec(c.Key, cts)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	c.Costs.AddHE(wall, c.simSince(base, wall), int64(len(cts)), int64(len(cts)))
	out := make([]uint64, len(pts))
	for i, pt := range pts {
		v, ok := pt.Uint64()
		if !ok {
			return nil, fmt.Errorf("fl: raw plaintext %d overflows 64 bits (%d bits)", i, pt.BitLen())
		}
		out[i] = v
	}
	return out, nil
}

// EncryptZero returns a fresh encryption of zero (the neutral accumulator
// for homomorphic sums).
func (c *Context) EncryptZero() (paillier.Ciphertext, error) {
	cts, err := c.EncryptNats([]mpint.Nat{mpint.Zero()}, 1)
	if err != nil {
		return paillier.Ciphertext{}, err
	}
	return cts[0], nil
}

// EncryptNats encrypts caller-prepared plaintexts, charging `instances`
// logical values to the throughput counter (callers that pack several
// values per plaintext pass the packed value count).
func (c *Context) EncryptNats(pts []mpint.Nat, instances int64) ([]paillier.Ciphertext, error) {
	base := c.simBase()
	start := time.Now()
	cts, err := c.Backend.EncryptVec(&c.Key.PublicKey, pts, c.nextSeed())
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	c.Costs.AddHE(wall, c.simSince(base, wall), int64(len(cts)), instances)
	return cts, nil
}

// ReduceSum homomorphically folds a batch into a single ciphertext by
// pairwise tree reduction, using the vectorized AddVec kernel at every
// level so the GPU profiles keep their parallelism.
func (c *Context) ReduceSum(cts []paillier.Ciphertext) (paillier.Ciphertext, error) {
	if len(cts) == 0 {
		return paillier.Ciphertext{}, fmt.Errorf("fl: ReduceSum of empty batch")
	}
	work := make([]paillier.Ciphertext, len(cts))
	copy(work, cts)
	for len(work) > 1 {
		half := len(work) / 2
		base := c.simBase()
		start := time.Now()
		sums, err := c.Backend.AddVec(&c.Key.PublicKey, work[:half], work[half:2*half])
		if err != nil {
			return paillier.Ciphertext{}, err
		}
		wall := time.Since(start)
		c.Costs.AddHE(wall, c.simSince(base, wall), int64(half), int64(half))
		if len(work)%2 == 1 {
			sums = append(sums, work[len(work)-1])
		}
		work = sums
	}
	return work[0], nil
}

// WeightedSum computes E(Σ scalars[i]·plain(cts[i])) for non-negative
// integer scalars: the homomorphic multiply-accumulate at the heart of the
// vertical gradient/histogram steps. Zero scalars are skipped.
func (c *Context) WeightedSum(cts []paillier.Ciphertext, scalars []uint64) (paillier.Ciphertext, error) {
	if len(cts) != len(scalars) {
		return paillier.Ciphertext{}, fmt.Errorf("fl: WeightedSum length mismatch %d vs %d", len(cts), len(scalars))
	}
	sel := make([]paillier.Ciphertext, 0, len(cts))
	exps := make([]mpint.Nat, 0, len(cts))
	ones := make([]paillier.Ciphertext, 0, len(cts))
	for i, s := range scalars {
		switch s {
		case 0:
		case 1:
			ones = append(ones, cts[i])
		default:
			sel = append(sel, cts[i])
			exps = append(exps, mpint.FromUint64(s))
		}
	}
	terms := ones
	if len(sel) > 0 {
		pows, err := c.MulPlainCiphertexts(sel, exps)
		if err != nil {
			return paillier.Ciphertext{}, err
		}
		terms = append(terms, pows...)
	}
	if len(terms) == 0 {
		return c.EncryptZero()
	}
	return c.ReduceSum(terms)
}
