package fl

import (
	"fmt"
	"strings"
	"time"
)

// PhaseCost is one protocol phase's slice of a round's cost anatomy: the
// sim-time each cost component accrued while the phase ran, plus the
// operation and byte counts behind them. Only modelled (sim) quantities
// appear — wall times vary run to run, and the anatomy's contract is that
// the same seed produces a byte-identical table. Pipeline columns carry the
// phase's share of the streamed-overlap accounting: PipeSeqNs is the
// sequential sum already included in the component columns, PipeNs the
// measured critical path that replaces it under overlap.
type PhaseCost struct {
	Phase       string `json:"phase"`
	EncodeSimNs int64  `json:"encode_sim_ns"`
	HESimNs     int64  `json:"he_sim_ns"`
	CommSimNs   int64  `json:"comm_sim_ns"`
	CompSimNs   int64  `json:"comp_sim_ns"`
	PipeSeqNs   int64  `json:"pipe_seq_ns"`
	PipeNs      int64  `json:"pipe_ns"`
	HEOps       int64  `json:"he_ops"`
	CommBytes   int64  `json:"comm_bytes"`
}

// TotalSimNs is the phase's sequential sim-time: every component summed.
func (p PhaseCost) TotalSimNs() int64 {
	return p.EncodeSimNs + p.HESimNs + p.CommSimNs + p.CompSimNs
}

// OverlappedSimNs swaps the phase's sequential pipeline portion for its
// measured critical path, clamped at zero like CostSnapshot.
func (p PhaseCost) OverlappedSimNs() int64 {
	t := p.TotalSimNs() - p.PipeSeqNs + p.PipeNs
	if t < 0 {
		return 0
	}
	return t
}

// add accumulates q's components into p (phase name untouched).
func (p PhaseCost) add(q PhaseCost) PhaseCost {
	p.EncodeSimNs += q.EncodeSimNs
	p.HESimNs += q.HESimNs
	p.CommSimNs += q.CommSimNs
	p.CompSimNs += q.CompSimNs
	p.PipeSeqNs += q.PipeSeqNs
	p.PipeNs += q.PipeNs
	p.HEOps += q.HEOps
	p.CommBytes += q.CommBytes
	return p
}

// sub removes q's components from p — how a closing frame deducts its
// nested phases so each row reports only its own cost.
func (p PhaseCost) sub(q PhaseCost) PhaseCost {
	p.EncodeSimNs -= q.EncodeSimNs
	p.HESimNs -= q.HESimNs
	p.CommSimNs -= q.CommSimNs
	p.CompSimNs -= q.CompSimNs
	p.PipeSeqNs -= q.PipeSeqNs
	p.PipeNs -= q.PipeNs
	p.HEOps -= q.HEOps
	p.CommBytes -= q.CommBytes
	return p
}

// phaseDelta is the cost accrued between two snapshots, as a PhaseCost.
func phaseDelta(before, after CostSnapshot) PhaseCost {
	return PhaseCost{
		EncodeSimNs: int64(after.EncodeSim - before.EncodeSim),
		HESimNs:     int64(after.HESim - before.HESim),
		CommSimNs:   int64(after.CommSim - before.CommSim),
		CompSimNs:   int64(after.CompSim - before.CompSim),
		PipeSeqNs:   int64(after.PipeSeqSim - before.PipeSeqSim),
		PipeNs:      int64(after.PipeSim - before.PipeSim),
		HEOps:       after.HEOps - before.HEOps,
		CommBytes:   after.CommBytes - before.CommBytes,
	}
}

// RoundAnatomy is the per-phase cost table of one federation round: which
// phase spent what, in deterministic sim-time. Phases appear in
// frame-closing order, so a nested phase (combine inside decrypt) precedes
// its parent and every row reports only its own cost — the rows sum to the
// round's whole-run cost delta, the same reconciliation discipline
// Context.ReconcileObs enforces for the metrics mirror.
type RoundAnatomy struct {
	Round  uint64      `json:"round"`
	Phases []PhaseCost `json:"phases"`
}

// Total sums every phase's components into one row named "total".
func (a *RoundAnatomy) Total() PhaseCost {
	t := PhaseCost{Phase: "total"}
	for _, p := range a.Phases {
		t = t.add(p)
	}
	return t
}

// TotalSimNs is the round's sequential sim-time across all phases.
func (a *RoundAnatomy) TotalSimNs() int64 { return a.Total().TotalSimNs() }

// OverlappedSimNs is the round's sim-time with streamed phases at their
// measured critical path.
func (a *RoundAnatomy) OverlappedSimNs() int64 { return a.Total().OverlappedSimNs() }

// Dominant names the phase with the largest overlapped sim-time — the term
// an optimization pass should attack first. Ties break toward the earlier
// row, so the answer is deterministic.
func (a *RoundAnatomy) Dominant() string {
	best, at := int64(-1), ""
	for _, p := range a.Phases {
		if t := p.OverlappedSimNs(); t > best {
			best, at = t, p.Phase
		}
	}
	return at
}

// Table renders the anatomy as a fixed-width text table. Every column is a
// deterministic sim quantity, so two same-seed rounds render byte-identical
// tables.
func (a *RoundAnatomy) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "round %d per-phase cost anatomy (sim time)\n", a.Round)
	fmt.Fprintf(&b, "%-11s %12s %12s %12s %12s %12s %12s %12s\n",
		"phase", "encode", "he", "comm", "comp", "pipe-seq", "pipe", "overlapped")
	row := func(p PhaseCost) {
		fmt.Fprintf(&b, "%-11s %12s %12s %12s %12s %12s %12s %12s\n",
			p.Phase,
			time.Duration(p.EncodeSimNs), time.Duration(p.HESimNs),
			time.Duration(p.CommSimNs), time.Duration(p.CompSimNs),
			time.Duration(p.PipeSeqNs), time.Duration(p.PipeNs),
			time.Duration(p.OverlappedSimNs()))
	}
	for _, p := range a.Phases {
		row(p)
	}
	row(a.Total())
	fmt.Fprintf(&b, "dominant phase: %s\n", a.Dominant())
	return b.String()
}
