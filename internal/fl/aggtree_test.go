package fl

import (
	"bytes"
	"testing"
	"time"

	"flbooster/internal/paillier"
)

// encryptBatches encrypts n distinct gradient batches of the given width.
func encryptBatches(t *testing.T, ctx *Context, n, width int) [][]paillier.Ciphertext {
	t.Helper()
	out := make([][]paillier.Ciphertext, n)
	for i := range out {
		g := make([]float64, width)
		for j := range g {
			g[j] = 0.01*float64(i+1) + 0.001*float64(j)
		}
		cts, err := ctx.EncryptGradients(g)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = cts
	}
	return out
}

// TestAggTreeRootMatchesFlatFold is the tree's correctness bar: for any
// leaf count around the fanout boundaries, the tree's root must be
// byte-identical to the flat left-fold over the same batches.
func TestAggTreeRootMatchesFlatFold(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	for _, leaves := range []int{1, 2, 3, 4, 8, 9, 10, 13} {
		batches := encryptBatches(t, ctx, leaves, 6)
		flat, err := ctx.AggregateCiphertexts(batches)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := ctx.NewAggTree(3)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches {
			if err := tree.Add(b); err != nil {
				t.Fatal(err)
			}
		}
		root, err := tree.Root()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeCiphertexts(root), encodeCiphertexts(flat)) {
			t.Fatalf("%d leaves: tree root diverged from the flat fold", leaves)
		}
		st := tree.Stats()
		if st.Leaves != leaves || st.Fanout != 3 {
			t.Fatalf("%d leaves: stats %+v", leaves, st)
		}
	}
}

// TestAggTreePeakBoundedByFanoutDepth pins the memory claim the refactor
// exists for: the high-water live-ciphertext count is bounded by one
// running partial per level plus the batch in flight — (depth+1)·width —
// and stays far below the flat path's leaves·width.
func TestAggTreePeakBoundedByFanoutDepth(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	const leaves, width = 27, 4
	batches := encryptBatches(t, ctx, leaves, width)
	wctx := len(batches[0]) // ciphertexts per batch after packing
	tree, err := ctx.NewAggTree(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := tree.Add(b); err != nil {
			t.Fatal(err)
		}
		if live := tree.LiveCts(); live > int64((tree.Stats().Depth+1)*wctx) {
			t.Fatalf("live %d exceeds the level bound", live)
		}
	}
	if _, err := tree.Root(); err != nil {
		t.Fatal(err)
	}
	st := tree.Stats()
	if st.PeakLiveCts > int64((st.Depth+1)*wctx) {
		t.Fatalf("peak %d exceeds (depth+1)·width = %d", st.PeakLiveCts, (st.Depth+1)*wctx)
	}
	if st.PeakLiveCts >= int64(leaves*wctx) {
		t.Fatalf("peak %d not sublinear in %d leaves", st.PeakLiveCts, leaves)
	}
	if st.Depth < 3 || st.Forwards == 0 || st.Folds == 0 {
		t.Fatalf("27 leaves at fanout 3 should cascade: %+v", st)
	}
	if len(st.LevelSimNs) != st.Depth {
		t.Fatalf("level times %v for depth %d", st.LevelSimNs, st.Depth)
	}
}

func TestAggTreeValidation(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFATE))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.NewAggTree(1); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	newAcc := func() (*paillier.Accumulator, error) {
		return paillier.NewAccumulator(&ctx.Key.PublicKey, ctx.Backend)
	}
	fold := func(acc *paillier.Accumulator, cts []paillier.Ciphertext) (time.Duration, error) {
		return 0, acc.Add(cts)
	}
	if _, err := NewAggTree(2, nil, fold, nil); err == nil {
		t.Fatal("nil accumulator hook accepted")
	}
	if _, err := NewAggTree(2, newAcc, nil, nil); err == nil {
		t.Fatal("nil fold hook accepted")
	}
	tree, err := NewAggTree(2, newAcc, fold, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Add(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := tree.Root(); err == nil {
		t.Fatal("root of an empty tree succeeded")
	}
}

func TestTreeStatsMerge(t *testing.T) {
	var s TreeStats
	s.merge(TreeStats{Fanout: 4, Depth: 2, Leaves: 5, Folds: 3, Forwards: 2, PeakLiveCts: 6, LevelSimNs: []int64{10, 20}})
	s.merge(TreeStats{Fanout: 4, Depth: 3, Leaves: 4, Folds: 2, Forwards: 3, PeakLiveCts: 4, LevelSimNs: []int64{1, 2, 3}})
	want := TreeStats{Fanout: 4, Depth: 3, Leaves: 9, Folds: 5, Forwards: 5, PeakLiveCts: 10, LevelSimNs: []int64{11, 22, 3}}
	if s.Fanout != want.Fanout || s.Depth != want.Depth || s.Leaves != want.Leaves ||
		s.Folds != want.Folds || s.Forwards != want.Forwards || s.PeakLiveCts != want.PeakLiveCts {
		t.Fatalf("merged %+v, want %+v", s, want)
	}
	for i, ns := range want.LevelSimNs {
		if s.LevelSimNs[i] != ns {
			t.Fatalf("level %d time %d, want %d", i, s.LevelSimNs[i], ns)
		}
	}
}
