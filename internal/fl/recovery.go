package fl

// Recover rebuilds a coordinator from its write-ahead journal after a crash:
// it replays the store's records, restores the nonce-stream cursor and the
// client roster to their journaled positions, and parks the incomplete round
// (if one was open) so the next SecureAggregate call re-runs it from its
// last safe boundary — upload when only round-start is durable, broadcast
// when the aggregate is. Because the cursor is restored, the re-run draws
// the exact nonce stream the lost attempt would have: the recovered epoch's
// aggregates are bit-identical to an uninterrupted run.
//
// ctx must be built from the same profile (same seed) as the crashed
// coordinator's — key generation is deterministic, so the keys match. The
// journal stays attached for the recovered epoch's appends.
func Recover(ctx *Context, store JournalStore) (*Federation, *RecoveryState, error) {
	j, err := NewJournal(store)
	if err != nil {
		return nil, nil, err
	}
	recs, err := j.Records()
	if err != nil {
		return nil, nil, err
	}
	state, err := Replay(recs)
	if err != nil {
		return nil, nil, err
	}
	f := NewFederation(ctx)
	f.journal = j
	f.epoch = state.Epoch
	if state.Members != nil {
		f.roster.Restore(state.Members)
	}
	if rp := state.Resume; rp != nil {
		f.round = rp.Round - 1
		f.nextAttempt = rp.Attempt + 1
		f.resume = rp
		ctx.RestoreSeedCursor(rp.Cursor)
	} else {
		f.round = state.LastRound
		if state.Records > 0 {
			ctx.RestoreSeedCursor(state.Cursor)
		}
	}
	ctx.metricAdd("recoveries", 1)
	return f, &state, nil
}
