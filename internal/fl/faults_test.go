package fl

import (
	"errors"
	"testing"
	"time"

	"flbooster/internal/flnet"
	"flbooster/internal/mpint"
)

// TestSecureAggregateSurfacesTransportFailures injects failures at each
// protocol phase and verifies the round fails fast with a clear error
// instead of hanging or producing a corrupt aggregate.
func TestSecureAggregateSurfacesTransportFailures(t *testing.T) {
	grads := [][]float64{{0.1}, {0.2}, {0.3}, {0.4}}
	// Phases: 4 uploads, 4 server recvs, 4 broadcasts, 4 client recvs.
	for _, fault := range []struct {
		name string
		prep func(*flnet.FaultyTransport)
	}{
		{"upload-send", func(f *flnet.FaultyTransport) { f.FailSendAt = 1 }},
		{"server-recv", func(f *flnet.FaultyTransport) { f.FailRecvAt = 2 }},
		{"broadcast-send", func(f *flnet.FaultyTransport) { f.FailSendAt = 6 }},
		{"client-recv", func(f *flnet.FaultyTransport) { f.FailRecvAt = 5 }},
	} {
		fault := fault
		t.Run(fault.name, func(t *testing.T) {
			ctx, err := NewContext(testProfile(SystemFLBooster))
			if err != nil {
				t.Fatal(err)
			}
			fed := NewFederation(ctx)
			defer fed.Close()
			ft := flnet.NewFaultyTransport(fed.Transport)
			fault.prep(ft)
			fed.Transport = ft
			if _, err := fed.SecureAggregate(grads); err == nil {
				t.Fatal("injected fault did not surface")
			}
		})
	}
}

// TestSecureAggregateRecoversAfterTransientFault verifies a federation can
// run a clean round after a failed one (no stuck state in the context).
func TestSecureAggregateRecoversAfterTransientFault(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	grads := [][]float64{{0.1, 0.2}, {0.1, 0.2}, {0.1, 0.2}, {0.1, 0.2}}

	fed := NewFederation(ctx)
	ft := flnet.NewFaultyTransport(fed.Transport)
	ft.FailSendAt = 1
	fed.Transport = ft
	if _, err := fed.SecureAggregate(grads); err == nil {
		t.Fatal("expected the first round to fail")
	}
	fed.Close()

	// A fresh federation over the same context must work.
	fed2 := NewFederation(ctx)
	defer fed2.Close()
	sum, err := fed2.SecureAggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	bound := 4 * ctx.Quant.MaxError()
	if d := sum[0] - 0.4; d > bound || d < -bound {
		t.Fatalf("recovered round produced %v, want 0.4", sum[0])
	}
}

// quorumProfile returns a test profile tolerating one straggler: quorum 3 of
// 4, a short phase deadline, and a couple of fast retries.
func quorumProfile(sys System) Profile {
	p := testProfile(sys)
	p.Round = RoundPolicy{
		Quorum:       3,
		PhaseTimeout: 200 * time.Millisecond,
		MaxRetries:   2,
		Backoff:      time.Millisecond,
	}
	return p
}

// TestQuorumRoundSurvivesDroppedUpload drops one client's upload entirely:
// the round must complete with K-1 contributions, report the dropped party,
// and return the scaled full-federation estimate.
func TestQuorumRoundSurvivesDroppedUpload(t *testing.T) {
	ctx, err := NewContext(quorumProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	ft := flnet.NewFaultyTransport(fed.Transport)
	ft.DropFrom = ClientName(2)
	ft.DropKind = "grads"
	fed.Transport = ft

	// Identical gradients so the scaled 3-of-4 estimate equals the true sum.
	grads := [][]float64{{0.1, -0.2}, {0.1, -0.2}, {0.1, -0.2}, {0.1, -0.2}}
	sum, rep, err := fed.SecureAggregateReport(grads)
	if err != nil {
		t.Fatalf("quorum round should survive one dropped upload: %v", err)
	}
	if len(rep.Included) != 3 {
		t.Fatalf("included = %v", rep.Included)
	}
	if phase, ok := rep.Dropped[ClientName(2)]; !ok || phase != PhaseGather {
		t.Fatalf("dropped = %v, want client2 lost in gather", rep.Dropped)
	}
	if rep.Scale < 1.32 || rep.Scale > 1.34 {
		t.Fatalf("scale = %v, want 4/3", rep.Scale)
	}
	bound := 4 * rep.Scale * ctx.Quant.MaxError()
	for i, want := range []float64{0.4, -0.8} {
		if d := sum[i] - want; d > bound || d < -bound {
			t.Fatalf("sum[%d] = %v, want %v ± %v", i, sum[i], want, bound)
		}
	}
}

// TestDuplicateBroadcastLeavesAggregateUnchanged duplicates every message:
// the gather phase must deduplicate uploads (a doubled contribution would
// double the sum) and the decrypt phase must discard repeat aggregates.
func TestDuplicateBroadcastLeavesAggregateUnchanged(t *testing.T) {
	ctx, err := NewContext(quorumProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	fed.Transport = flnet.NewChaosTransport(fed.Transport, flnet.ChaosConfig{Seed: 5, DupProb: 1})

	grads := [][]float64{{0.1}, {0.1}, {0.1}, {0.1}}
	sum, rep, err := fed.SecureAggregateReport(grads)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates == 0 {
		t.Fatal("duplicated uploads were not detected")
	}
	bound := 4 * ctx.Quant.MaxError()
	if d := sum[0] - 0.4; d > bound || d < -bound {
		t.Fatalf("duplicates corrupted the aggregate: %v, want 0.4", sum[0])
	}
	// A second round must also be clean: leftover duplicate aggregates from
	// round 1 are stale now and must be discarded, not decrypted.
	sum2, rep2, err := fed.SecureAggregateReport(grads)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Stale == 0 {
		t.Fatal("stale round-1 duplicates were not discarded in round 2")
	}
	if d := sum2[0] - 0.4; d > bound || d < -bound {
		t.Fatalf("round 2 aggregate corrupted by stale traffic: %v", sum2[0])
	}
}

// TestStaleRoundMessageDiscarded injects a reordered leftover from an old
// round directly into the server queue; the round ID must exclude it.
func TestStaleRoundMessageDiscarded(t *testing.T) {
	ctx, err := NewContext(quorumProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()

	// A forged "grads" message from a past round (Round 0 < current 1), with
	// a payload that would double client0's contribution if aggregated.
	cts, err := ctx.EncryptGradients([]float64{0.9})
	if err != nil {
		t.Fatal(err)
	}
	nats := make([]mpint.Nat, len(cts))
	for i, c := range cts {
		nats[i] = c.C
	}
	stale := flnet.Message{
		From: ClientName(0), To: ServerName, Kind: "grads", Round: 0,
		Payload: flnet.EncodeNats(nats),
	}
	if err := fed.Transport.Send(stale); err != nil {
		t.Fatal(err)
	}

	grads := [][]float64{{0.1}, {0.1}, {0.1}, {0.1}}
	sum, rep, err := fed.SecureAggregateReport(grads)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stale == 0 {
		t.Fatal("stale message was not counted as discarded")
	}
	bound := 4 * ctx.Quant.MaxError()
	if d := sum[0] - 0.4; d > bound || d < -bound {
		t.Fatalf("stale message leaked into the aggregate: %v, want 0.4", sum[0])
	}
}

// TestRoundErrorTyping verifies failures carry phase and party.
func TestRoundErrorTyping(t *testing.T) {
	p := testProfile(SystemFLBooster) // strict policy: no quorum slack
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	ft := flnet.NewFaultyTransport(fed.Transport)
	ft.FailSendAt = 1
	fed.Transport = ft
	_, err = fed.SecureAggregate([][]float64{{0.1}, {0.2}, {0.3}, {0.4}})
	var rerr *RoundError
	if !errors.As(err, &rerr) {
		t.Fatalf("want *RoundError, got %T: %v", err, err)
	}
	if rerr.Phase != PhaseUpload || rerr.Party != ClientName(0) || rerr.Round != 1 {
		t.Fatalf("round error = %+v", rerr)
	}
	if rerr.Unwrap() == nil {
		t.Fatal("cause not preserved")
	}
}

// TestRetryPolicyAbsorbsTransientSendFailure: with retries configured, a
// one-shot injected send failure must not abort the round, and the rework
// must be charged to the communication cost model.
func TestRetryPolicyAbsorbsTransientSendFailure(t *testing.T) {
	ctx, err := NewContext(quorumProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	ft := flnet.NewFaultyTransport(fed.Transport)
	ft.FailSendAt = 1
	fed.Transport = ft

	grads := [][]float64{{0.1}, {0.1}, {0.1}, {0.1}}
	sum, rep, err := fed.SecureAggregateReport(grads)
	if err != nil {
		t.Fatalf("retry should absorb the transient failure: %v", err)
	}
	if rep.Retries == 0 {
		t.Fatal("report did not count the retry")
	}
	if rep.Degraded() {
		t.Fatalf("no client should be dropped: %+v", rep)
	}
	if ctx.Costs.Snapshot().RetryMsgs == 0 {
		t.Fatal("retry traffic not charged to the cost model")
	}
	bound := 4 * ctx.Quant.MaxError()
	if d := sum[0] - 0.4; d > bound || d < -bound {
		t.Fatalf("sum = %v, want 0.4", sum[0])
	}
}

// TestQuorumBelowThresholdFails drops two uploads when only one loss is
// budgeted: the round must fail with a typed gather error, within the
// deadline rather than hanging.
func TestQuorumBelowThresholdFails(t *testing.T) {
	p := quorumProfile(SystemFLBooster)
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	fed.Transport = flnet.NewChaosTransport(fed.Transport, flnet.ChaosConfig{Seed: 1, DropProb: 1})

	start := time.Now()
	_, err = fed.SecureAggregate([][]float64{{0.1}, {0.1}, {0.1}, {0.1}})
	var rerr *RoundError
	if !errors.As(err, &rerr) || rerr.Phase != PhaseGather {
		t.Fatalf("want gather-phase RoundError, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failure took %v; deadline not honoured", elapsed)
	}
}
