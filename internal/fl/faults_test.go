package fl

import (
	"testing"

	"flbooster/internal/flnet"
)

// TestSecureAggregateSurfacesTransportFailures injects failures at each
// protocol phase and verifies the round fails fast with a clear error
// instead of hanging or producing a corrupt aggregate.
func TestSecureAggregateSurfacesTransportFailures(t *testing.T) {
	grads := [][]float64{{0.1}, {0.2}, {0.3}, {0.4}}
	// Phases: 4 uploads, 4 server recvs, 4 broadcasts, 4 client recvs.
	for _, fault := range []struct {
		name string
		prep func(*flnet.FaultyTransport)
	}{
		{"upload-send", func(f *flnet.FaultyTransport) { f.FailSendAt = 1 }},
		{"server-recv", func(f *flnet.FaultyTransport) { f.FailRecvAt = 2 }},
		{"broadcast-send", func(f *flnet.FaultyTransport) { f.FailSendAt = 6 }},
		{"client-recv", func(f *flnet.FaultyTransport) { f.FailRecvAt = 5 }},
	} {
		fault := fault
		t.Run(fault.name, func(t *testing.T) {
			ctx, err := NewContext(testProfile(SystemFLBooster))
			if err != nil {
				t.Fatal(err)
			}
			fed := NewFederation(ctx)
			defer fed.Close()
			ft := flnet.NewFaultyTransport(fed.Transport)
			fault.prep(ft)
			fed.Transport = ft
			if _, err := fed.SecureAggregate(grads); err == nil {
				t.Fatal("injected fault did not surface")
			}
		})
	}
}

// TestSecureAggregateRecoversAfterTransientFault verifies a federation can
// run a clean round after a failed one (no stuck state in the context).
func TestSecureAggregateRecoversAfterTransientFault(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	grads := [][]float64{{0.1, 0.2}, {0.1, 0.2}, {0.1, 0.2}, {0.1, 0.2}}

	fed := NewFederation(ctx)
	ft := flnet.NewFaultyTransport(fed.Transport)
	ft.FailSendAt = 1
	fed.Transport = ft
	if _, err := fed.SecureAggregate(grads); err == nil {
		t.Fatal("expected the first round to fail")
	}
	fed.Close()

	// A fresh federation over the same context must work.
	fed2 := NewFederation(ctx)
	defer fed2.Close()
	sum, err := fed2.SecureAggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	bound := 4 * ctx.Quant.MaxError()
	if d := sum[0] - 0.4; d > bound || d < -bound {
		t.Fatalf("recovered round produced %v, want 0.4", sum[0])
	}
}
