// Package fl is the federated-learning framework substrate: acceleration
// profiles (the FATE / HAFLO / FLBooster configurations plus the paper's
// ablations), the HE context that runs the Fig. 4 pipeline with full cost
// accounting (HE time, communication time, other time — the anatomy of
// Tables III, V and VI), and the secure-aggregation protocol of Fig. 2 that
// the four benchmark models in internal/models train over.
package fl

import (
	"fmt"
	"time"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
)

// System identifies which evaluated system a profile reproduces.
type System string

// The systems compared throughout the paper's evaluation.
const (
	// SystemFATE: serial CPU Paillier, no compression — the baseline
	// framework (FATE v1.x behaviour).
	SystemFATE System = "FATE"
	// SystemHAFLO: GPU-accelerated HE operations with coarse resource
	// allocation, no compression.
	SystemHAFLO System = "HAFLO"
	// SystemFLBooster: GPU HE with the fine-grained resource manager plus
	// batch compression — the full system.
	SystemFLBooster System = "FLBooster"
	// SystemNoGHE: FLBooster without GPU HE (ablation "w/o GHE").
	SystemNoGHE System = "FLBooster w/o GHE"
	// SystemNoBC: FLBooster without batch compression (ablation "w/o BC").
	SystemNoBC System = "FLBooster w/o BC"
)

// Profile is one acceleration configuration. All five systems share every
// code path except the toggles below, so ablation comparisons isolate
// exactly the module under study.
type Profile struct {
	// System names the configuration.
	System System
	// KeyBits is the Paillier key size (the paper sweeps 1024/2048/4096;
	// tests use smaller keys).
	KeyBits int
	// Parties is the number of federated participants p.
	Parties int
	// RBits is the quantization width; the paper uses r+b = 32 with two
	// overflow bits at p = 4 (so r = 30).
	RBits uint
	// GradBound is the quantizer's α.
	GradBound float64
	// UseGPU routes HE batches through the GPU-HE engine.
	UseGPU bool
	// UseBatch enables batch compression.
	UseBatch bool
	// FineRM selects the fine-grained resource manager.
	FineRM bool
	// Device is the GPU model for GPU profiles.
	Device gpu.Config
	// Devices is the simulated device count for GPU profiles: values of 1 or
	// more build a gpu.DeviceSet of that many Device-configured members and
	// shard every vector HE op across them (work stealing under faults, merged
	// max-over-devices clock). Zero keeps the classic single-device engine.
	// Ignored on CPU profiles.
	Devices int
	// Seed drives every random choice for reproducibility.
	Seed uint64
	// Chunk is the streamed-pipeline chunk size in plaintexts per chunk:
	// when positive, encryption runs chunked through the device streams and
	// uploads overlap the next chunk's compute (§V-B / Fig. 4, actually
	// executed). Zero keeps the whole-batch sequential path.
	Chunk int
	// NoncePool, when positive on a GPU profile, precomputes that many
	// Paillier rⁿ noise terms offline (charged as device precompute time,
	// not online sim-time) so the next encryption batch pops ready noise.
	// Results are bit-exact with the unpooled path; zero disables the pool.
	// Ignored on CPU profiles.
	NoncePool int
	// Round governs fault tolerance of federation rounds: quorum, phase
	// deadlines, and send retries. The zero value is the strict protocol
	// (all parties required, no deadline, no retransmission).
	Round RoundPolicy
	// Faults governs fault tolerance of the GPU-HE substrate: device fault
	// injection and the checked-execution policy (retries, verification,
	// CPU fallback). The zero value injects nothing and checks with
	// defaults. Ignored on CPU profiles.
	Faults FaultPolicy
	// Byz arms the seeded Byzantine-client injector: a fixed compromised
	// cohort rewrites its gradient uploads per the configured attack model.
	// The zero value is an all-honest federation.
	Byz AdversaryConfig
	// Defense arms group-wise robust aggregation: clients are partitioned
	// into seeded groups, HE-summed per group, and only the group sums are
	// decrypted and robustly combined. The zero value keeps the plain
	// single-aggregate round, byte-identical to the pre-defense protocol.
	Defense DefensePolicy
	// Cohort configures cross-device scale: per-round seeded cohort sampling
	// (Size clients scheduled out of the Parties population), hierarchical
	// fan-out-bounded tree aggregation with streaming partial folds, and
	// bounded in-flight uploads. The zero value keeps the flat all-parties
	// round, byte-identical to the pre-cohort protocol.
	Cohort CohortPolicy
	// Overlap configures the round runtime's compute/upload overlap: modelled
	// per-party model computation scheduled on a lane of its own so the wave's
	// encrypt and send streams can run other parties' uploads underneath it.
	// The zero value charges no model compute and keeps per-party uploads on
	// their own stream pairs (the pre-overlap accounting).
	Overlap OverlapPolicy
	// ClassicKey generates the Paillier key with a random generator g instead
	// of the g = n+1 shortcut, making the encrypt-side g^m term a full modular
	// exponentiation — the configuration fixed-base precomputation targets.
	// Ciphertexts under either generator decrypt identically.
	ClassicKey bool
	// Observe attaches a sim-time span recorder and metrics registry to the
	// context at construction (seeded from Seed), so rounds emit traces and
	// the cost counters mirror into metrics. Off by default: the nil
	// recorder/registry path is zero-cost.
	Observe bool
}

// OverlapPolicy models per-party computation and its overlap with the
// upload phase. CompSimPerValue is the modelled forward/backward cost of one
// gradient value; with Enabled the round runtime schedules that compute on a
// per-party lane and overlaps the cohort's encrypt+send underneath it,
// charging the wave at its measured critical path. With CompSimPerValue set
// but Enabled false the same compute is charged sequentially — the baseline
// the overlap is measured against, so both paths price the same work.
type OverlapPolicy struct {
	Enabled         bool
	CompSimPerValue time.Duration
}

// compSim returns the modelled model-compute cost of n gradient values.
func (o OverlapPolicy) compSim(n int) time.Duration {
	return time.Duration(n) * o.CompSimPerValue
}

// FaultPolicy is the device-side counterpart of RoundPolicy: what faults to
// inject into the simulated GPU and how the checked execution layer reacts.
type FaultPolicy struct {
	// Inject configures the seeded device fault injector; the zero value
	// injects no faults.
	Inject gpu.FaultConfig
	// Check configures retry/verification/fallback; zero fields take the
	// CheckedConfig defaults.
	Check ghe.CheckedConfig
}

// NewProfile returns the standard configuration for a system at the given
// key size and party count.
func NewProfile(sys System, keyBits, parties int) Profile {
	p := Profile{
		System:    sys,
		KeyBits:   keyBits,
		Parties:   parties,
		RBits:     30, // r + b = 32 at p ≤ 4, the paper's setting
		GradBound: 1,
		Device:    gpu.RTX3090(),
		Seed:      1,
	}
	switch sys {
	case SystemFATE:
		// all toggles off
	case SystemHAFLO:
		p.UseGPU = true
	case SystemFLBooster:
		p.UseGPU, p.UseBatch, p.FineRM = true, true, true
	case SystemNoGHE:
		p.UseBatch = true
	case SystemNoBC:
		p.UseGPU, p.FineRM = true, true
	default:
		// Unknown systems keep every toggle off and are rejected by
		// Validate, so the error surfaces from NewContext instead of a
		// constructor panic.
	}
	return p
}

// knownSystem reports whether sys is one of the evaluated configurations.
func knownSystem(sys System) bool {
	for _, s := range AllSystems() {
		if s == sys {
			return true
		}
	}
	return false
}

// Validate reports profile configuration errors.
func (p Profile) Validate() error {
	switch {
	case !knownSystem(p.System):
		return fmt.Errorf("fl: unknown system %q", p.System)
	case p.KeyBits < 32:
		return fmt.Errorf("fl: key size %d too small", p.KeyBits)
	case p.Parties < 1:
		return fmt.Errorf("fl: need at least one party, got %d", p.Parties)
	case p.RBits < 2:
		return fmt.Errorf("fl: r = %d too small", p.RBits)
	case p.GradBound <= 0:
		return fmt.Errorf("fl: gradient bound must be positive")
	case p.Chunk < 0:
		return fmt.Errorf("fl: negative pipeline chunk size %d", p.Chunk)
	case p.NoncePool < 0:
		return fmt.Errorf("fl: negative nonce pool depth %d", p.NoncePool)
	case p.Devices < 0:
		return fmt.Errorf("fl: negative device count %d", p.Devices)
	case p.Devices > gpu.MaxDevices:
		return fmt.Errorf("fl: device count %d exceeds %d", p.Devices, gpu.MaxDevices)
	case p.Overlap.CompSimPerValue < 0:
		return fmt.Errorf("fl: negative model-compute cost %v per value", p.Overlap.CompSimPerValue)
	}
	if err := p.Round.Validate(p.Parties); err != nil {
		return err
	}
	if err := p.Byz.Validate(p.Parties); err != nil {
		return err
	}
	if err := p.Defense.Validate(); err != nil {
		return err
	}
	if err := p.Cohort.Validate(p.Parties); err != nil {
		return err
	}
	// A quorum above the sampled cohort size could never be met: every round
	// would fail at admission, so reject the combination up front.
	if p.Cohort.Size > 0 && p.Round.Quorum > p.Cohort.Size {
		return fmt.Errorf("fl: quorum %d exceeds cohort size %d", p.Round.Quorum, p.Cohort.Size)
	}
	if p.UseGPU {
		if err := p.Device.Validate(); err != nil {
			return fmt.Errorf("fl: GPU profile: %w", err)
		}
	}
	return nil
}

// AllSystems lists the five configurations in reporting order.
func AllSystems() []System {
	return []System{SystemFATE, SystemHAFLO, SystemFLBooster, SystemNoGHE, SystemNoBC}
}
