package fl

import (
	"sync"

	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

// wireArena pools the flat round path's per-round scratch: the nat slices
// the wire codec builds, the decoded per-client ciphertext batches, and the
// batch-of-batches the plain aggregate folds over. Only provably-dead
// scratch is pooled — message payload bytes are never reused, because the
// transport may hold a delivered payload beyond the round — so pooling
// changes allocation counts, never results.
type wireArena struct {
	nats    sync.Pool // *[]mpint.Nat
	cts     sync.Pool // *[]paillier.Ciphertext
	batches sync.Pool // *[][]paillier.Ciphertext
}

func (a *wireArena) getNats(n int) []mpint.Nat {
	if p, _ := a.nats.Get().(*[]mpint.Nat); p != nil && cap(*p) >= n {
		return (*p)[:0]
	}
	return make([]mpint.Nat, 0, n)
}

func (a *wireArena) putNats(s []mpint.Nat) {
	for i := range s {
		s[i] = nil
	}
	s = s[:0]
	a.nats.Put(&s)
}

func (a *wireArena) getCts(n int) []paillier.Ciphertext {
	if p, _ := a.cts.Get().(*[]paillier.Ciphertext); p != nil && cap(*p) >= n {
		return (*p)[:0]
	}
	return make([]paillier.Ciphertext, 0, n)
}

func (a *wireArena) putCts(s []paillier.Ciphertext) {
	for i := range s {
		s[i] = paillier.Ciphertext{}
	}
	s = s[:0]
	a.cts.Put(&s)
}

func (a *wireArena) getBatches(n int) [][]paillier.Ciphertext {
	if p, _ := a.batches.Get().(*[][]paillier.Ciphertext); p != nil && cap(*p) >= n {
		return (*p)[:0]
	}
	return make([][]paillier.Ciphertext, 0, n)
}

func (a *wireArena) putBatches(s [][]paillier.Ciphertext) {
	for i := range s {
		s[i] = nil
	}
	s = s[:0]
	a.batches.Put(&s)
}
