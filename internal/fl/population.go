package fl

import (
	"fmt"
	"sort"

	"flbooster/internal/mpint"
)

// Cross-device population scheduling. A production federation registers far
// more clients than any one round can carry: each round seeded-samples a
// cohort of K participants from the N active clients and runs the protocol
// over the cohort alone, scaling the aggregate by N/K exactly as quorum
// rounds already do. Sampling is keyed by (seed, round), so a crash-recovered
// re-run of a round draws the identical cohort from the identical roster —
// the property journal recovery's bit-exactness depends on.

// CohortPolicy configures cross-device scale: how many clients a round
// schedules out of the active population, how the cohort's uploads are
// aggregated, and how many uploads may be in flight at once. The zero value
// keeps the flat all-parties round, byte-identical to the pre-cohort
// protocol.
type CohortPolicy struct {
	// Size is K, the number of clients sampled per round; 0 (or a value at
	// or above the active roster size) schedules every active client.
	Size int
	// Fanout, when ≥ 2, aggregates the cohort through a hierarchical tree of
	// that fan-out: interior nodes HE-sum their children and forward one
	// partial, so coordinator live-set memory is bounded by the tree depth
	// instead of the cohort size. 0 keeps the flat left-fold aggregation.
	Fanout int
	// MaxInflight bounds how many client uploads the tree round admits at
	// once (backpressure): the next wave is not asked to upload until the
	// current wave resolved. 0 admits the whole cohort at once. Ignored by
	// flat rounds, whose upload phase is already sequential.
	MaxInflight int
}

// Sampling reports whether the policy samples a sub-population cohort.
func (cp CohortPolicy) Sampling() bool { return cp.Size > 0 }

// Tree reports whether the policy aggregates through a hierarchy.
func (cp CohortPolicy) Tree() bool { return cp.Fanout > 0 }

// Enabled reports whether the policy changes the round at all.
func (cp CohortPolicy) Enabled() bool { return cp.Sampling() || cp.Tree() }

// Validate reports configuration errors for a population of `parties`.
func (cp CohortPolicy) Validate(parties int) error {
	switch {
	case cp.Size < 0:
		return fmt.Errorf("fl: negative cohort size %d", cp.Size)
	case cp.Size > parties:
		return fmt.Errorf("fl: cohort size %d exceeds %d parties", cp.Size, parties)
	case cp.Fanout < 0:
		return fmt.Errorf("fl: negative aggregation fan-out %d", cp.Fanout)
	case cp.Fanout == 1:
		return fmt.Errorf("fl: aggregation fan-out must be ≥ 2 (or 0 for flat)")
	case cp.MaxInflight < 0:
		return fmt.Errorf("fl: negative in-flight upload bound %d", cp.MaxInflight)
	}
	return nil
}

// cohortSeedSalt keeps the cohort sampler's RNG stream disjoint from the
// group-assignment stream (AssignGroups), which mixes the same (seed, round).
const cohortSeedSalt = 0xc0407

// SampleCohort seeded-samples k of the active clients for one round,
// returned in canonical (roster) order. It is a pure function of
// (active, k, seed, round): the coordinator, a crash-recovered re-run over
// the journal-restored roster, and any oracle all derive the identical
// cohort. k ≤ 0 or k ≥ len(active) schedules everyone.
func SampleCohort(active []string, k int, seed, round uint64) []string {
	if k <= 0 || k >= len(active) {
		return append([]string(nil), active...)
	}
	pos := make(map[string]int, len(active))
	for i, m := range active {
		pos[m] = i
	}
	// Partial Fisher–Yates: the first k slots of the shuffle are a uniform
	// k-subset without paying for the full permutation.
	pool := append([]string(nil), active...)
	rng := mpint.NewRNG(seed ^ round*0x9E3779B97F4A7C15 ^ cohortSeedSalt)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	cohort := pool[:k]
	sort.Slice(cohort, func(a, b int) bool { return pos[cohort[a]] < pos[cohort[b]] })
	return cohort
}
