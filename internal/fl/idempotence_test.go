package fl

import (
	"fmt"
	"testing"

	"flbooster/internal/flnet"
)

// TestDuplicateDeliveryIdempotence runs SecureAggregate under a transport
// that duplicates *every* message and asserts the aggregate is bit-exact
// with the clean run across three seeds — for both the whole-batch upload
// ("grads" dedup by sender) and the chunked upload ("gradc" dedup by chunk
// index through the reassembler). Duplication must be visible in the report,
// never in the result.
func TestDuplicateDeliveryIdempotence(t *testing.T) {
	for _, chunk := range []int{0, 2} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("chunk%d/seed%d", chunk, seed), func(t *testing.T) {
				p := testProfile(SystemFLBooster)
				p.Chunk = chunk
				grads := epochGrads(1, p.Parties, 6)[0]

				run := func(duplicate bool) ([]float64, RoundReport) {
					ctx, err := NewContext(p)
					if err != nil {
						t.Fatal(err)
					}
					fed := NewFederation(ctx)
					defer fed.Close()
					if duplicate {
						fed.Transport = flnet.NewChaosTransport(fed.Transport, flnet.ChaosConfig{
							Seed:    seed,
							DupProb: 1.0,
						})
					}
					sum, rep, err := fed.SecureAggregateReport(grads)
					if err != nil {
						t.Fatalf("duplicate=%v: %v", duplicate, err)
					}
					return sum, rep
				}

				clean, cleanRep := run(false)
				duped, dupedRep := run(true)
				if !sameBits(clean, duped) {
					t.Fatalf("aggregate diverged under 100%% duplication\n got %v\nwant %v", duped, clean)
				}
				if cleanRep.Duplicates != 0 {
					t.Fatalf("clean run reported duplicates: %+v", cleanRep)
				}
				if dupedRep.Duplicates == 0 {
					t.Fatalf("100%% duplication produced no counted duplicates: %+v", dupedRep)
				}
				if len(dupedRep.Included) != p.Parties {
					t.Fatalf("duplication dropped clients: %+v", dupedRep)
				}
			})
		}
	}
}
