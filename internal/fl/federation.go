package fl

import (
	"fmt"

	"flbooster/internal/flnet"
	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

// Federation wires a Context to a transport and executes the SGD secure-
// aggregation round of Fig. 2: clients encrypt local gradients and upload
// ciphertexts, the server aggregates homomorphically and broadcasts, clients
// decrypt and update. Party names are "client<i>" and "server".
type Federation struct {
	Ctx       *Context
	Transport flnet.Transport
	parties   []string
}

// ClientName returns the canonical name of client i.
func ClientName(i int) string { return fmt.Sprintf("client%d", i) }

// ServerName is the canonical aggregation-server party name.
const ServerName = "server"

// NewFederation builds a federation over the context's party count with an
// in-process transport on the context's link model.
func NewFederation(ctx *Context) *Federation {
	names := make([]string, 0, ctx.Profile.Parties+1)
	for i := 0; i < ctx.Profile.Parties; i++ {
		names = append(names, ClientName(i))
	}
	names = append(names, ServerName)
	return &Federation{
		Ctx:       ctx,
		Transport: flnet.NewSimTransport(ctx.Link, names...),
		parties:   names,
	}
}

// SecureAggregate executes one full round: grads[i] is client i's local
// gradient vector (all equal length). It returns the element-wise sum as
// decrypted by the clients. Every ciphertext crossing the wire is charged
// to the communication component.
func (f *Federation) SecureAggregate(grads [][]float64) ([]float64, error) {
	p := f.Ctx.Profile.Parties
	if len(grads) != p {
		return nil, fmt.Errorf("fl: %d gradient vectors for %d parties", len(grads), p)
	}
	count := len(grads[0])
	for i, g := range grads {
		if len(g) != count {
			return nil, fmt.Errorf("fl: client %d has %d gradients, want %d", i, len(g), count)
		}
	}

	// Upload phase: every client encrypts and sends to the server.
	for i := 0; i < p; i++ {
		cts, err := f.Ctx.EncryptGradients(grads[i])
		if err != nil {
			return nil, fmt.Errorf("fl: client %d encrypt: %w", i, err)
		}
		payload := encodeCiphertexts(cts)
		msg := flnet.Message{From: ClientName(i), To: ServerName, Kind: "grads", Payload: payload}
		if err := f.Transport.Send(msg); err != nil {
			return nil, err
		}
		f.Ctx.RecordTransfer(msg.WireSize())
	}

	// Server phase: receive p batches, aggregate homomorphically.
	batches := make([][]paillier.Ciphertext, 0, p)
	for i := 0; i < p; i++ {
		msg, err := f.Transport.Recv(ServerName)
		if err != nil {
			return nil, err
		}
		cts, err := decodeCiphertexts(msg.Payload)
		if err != nil {
			return nil, fmt.Errorf("fl: server decode from %s: %w", msg.From, err)
		}
		batches = append(batches, cts)
	}
	agg, err := f.Ctx.AggregateCiphertexts(batches)
	if err != nil {
		return nil, err
	}

	// Broadcast phase: server returns the aggregate to every client.
	aggPayload := encodeCiphertexts(agg)
	for i := 0; i < p; i++ {
		msg := flnet.Message{From: ServerName, To: ClientName(i), Kind: "agg", Payload: aggPayload}
		if err := f.Transport.Send(msg); err != nil {
			return nil, err
		}
		f.Ctx.RecordTransfer(msg.WireSize())
	}

	// Client phase: decrypt once (all clients hold the private key in the
	// Fig. 2 layout; decrypting once keeps host time proportional without
	// changing the protocol's traffic, which was charged above).
	var result []float64
	for i := 0; i < p; i++ {
		msg, err := f.Transport.Recv(ClientName(i))
		if err != nil {
			return nil, err
		}
		if i == 0 {
			cts, err := decodeCiphertexts(msg.Payload)
			if err != nil {
				return nil, err
			}
			result, err = f.Ctx.DecryptAggregated(cts, count, p)
			if err != nil {
				return nil, err
			}
		}
	}
	return result, nil
}

// Close releases the transport.
func (f *Federation) Close() error { return f.Transport.Close() }

// encodeCiphertexts frames a ciphertext batch for the wire.
func encodeCiphertexts(cts []paillier.Ciphertext) []byte {
	nats := make([]mpint.Nat, len(cts))
	for i, c := range cts {
		nats[i] = c.C
	}
	return flnet.EncodeNats(nats)
}

// decodeCiphertexts parses a batch framed by encodeCiphertexts.
func decodeCiphertexts(b []byte) ([]paillier.Ciphertext, error) {
	nats, err := flnet.DecodeNats(b)
	if err != nil {
		return nil, err
	}
	cts := make([]paillier.Ciphertext, len(nats))
	for i, n := range nats {
		cts[i] = paillier.Ciphertext{C: n}
	}
	return cts, nil
}
