package fl

import (
	"errors"
	"fmt"
	"time"

	"flbooster/internal/flnet"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/obs"
	"flbooster/internal/paillier"
)

// Federation wires a Context to a transport and executes the SGD secure-
// aggregation round of Fig. 2 as a fault-tolerant state machine: clients
// encrypt local gradients and upload ciphertexts, the server aggregates
// homomorphically once the context's RoundPolicy quorum is met, and clients
// decrypt the (possibly scaled) aggregate. Every message carries the round's
// monotonically increasing ID; stale or duplicate messages from earlier
// rounds are discarded, never aggregated. Party names are "client<i>" and
// "server".
type Federation struct {
	Ctx       *Context
	Transport flnet.Transport
	parties   []string

	round      uint64
	lastReport RoundReport
}

// ClientName returns the canonical name of client i.
func ClientName(i int) string { return fmt.Sprintf("client%d", i) }

// ServerName is the canonical aggregation-server party name.
const ServerName = "server"

// NewFederation builds a federation over the context's party count with an
// in-process transport on the context's link model.
func NewFederation(ctx *Context) *Federation {
	names := make([]string, 0, ctx.Profile.Parties+1)
	for i := 0; i < ctx.Profile.Parties; i++ {
		names = append(names, ClientName(i))
	}
	names = append(names, ServerName)
	return &Federation{
		Ctx:       ctx,
		Transport: flnet.NewSimTransport(ctx.Link, names...),
		parties:   names,
	}
}

// Round returns the ID of the most recently started round.
func (f *Federation) Round() uint64 { return f.round }

// LastReport returns the report of the most recently completed round.
func (f *Federation) LastReport() RoundReport { return f.lastReport }

// SecureAggregate executes one full round: grads[i] is client i's local
// gradient vector (all equal length). It returns the element-wise sum as
// decrypted by the clients — scaled to the full-federation estimate when a
// quorum round dropped stragglers. Every ciphertext crossing the wire is
// charged to the communication component.
func (f *Federation) SecureAggregate(grads [][]float64) ([]float64, error) {
	sum, _, err := f.SecureAggregateReport(grads)
	return sum, err
}

// SecureAggregateReport is SecureAggregate plus the round's RoundReport:
// which clients contributed, which were dropped and where, retry counts, and
// the applied scale factor. On failure it returns a *RoundError naming the
// phase (and party, when one is at fault).
func (f *Federation) SecureAggregateReport(grads [][]float64) ([]float64, RoundReport, error) {
	p := f.Ctx.Profile.Parties
	if len(grads) != p {
		return nil, RoundReport{}, fmt.Errorf("fl: %d gradient vectors for %d parties", len(grads), p)
	}
	count := len(grads[0])
	for i, g := range grads {
		if len(g) != count {
			return nil, RoundReport{}, fmt.Errorf("fl: client %d has %d gradients, want %d", i, len(g), count)
		}
	}
	policy := f.Ctx.Profile.Round
	if err := policy.Validate(p); err != nil {
		return nil, RoundReport{}, err
	}

	f.round++
	st := newRoundState(f, policy, count)
	result, err := st.run(grads)
	f.lastReport = st.report()
	f.observeRound(f.lastReport, err)
	if err != nil {
		return nil, f.lastReport, err
	}
	return result, f.lastReport, nil
}

// observeRound publishes one completed round's protocol counters into the
// context's metrics registry and refreshes the transport meter. No-op
// without an attached observability bundle.
func (f *Federation) observeRound(rep RoundReport, err error) {
	c := f.Ctx
	if c.Obs == nil {
		return
	}
	c.metricAdd("rounds", 1)
	if err != nil {
		c.metricAdd("round_failures", 1)
	}
	c.metricAdd("round_drops", int64(len(rep.Dropped)))
	c.metricAdd("round_stale", int64(rep.Stale))
	c.metricAdd("round_dups", int64(rep.Duplicates))
	c.Obs.Metrics().SetGauge("fl."+c.obsPrefix+".round_scale", rep.Scale)
	if mt, ok := f.Transport.(interface{ Meter() *flnet.Meter }); ok {
		mt.Meter().Publish(c.Obs.Metrics(), "net."+c.obsPrefix)
	}
}

// Close releases the transport.
func (f *Federation) Close() error { return f.Transport.Close() }

// ---- round state machine -------------------------------------------------

// roundState carries one SecureAggregate execution through its four phases.
type roundState struct {
	f      *Federation
	id     uint64
	policy RoundPolicy
	quorum int
	count  int // gradient dimension

	send    func(flnet.Message) error
	retrier *flnet.RetryTransport // nil when MaxRetries is 0

	uploaded    []string                         // clients whose upload send succeeded
	batches     map[string][]paillier.Ciphertext // gathered uploads by client
	pending     map[string]*partialUpload        // chunked uploads being reassembled
	included    []string                         // aggregation order
	reached     []string                         // clients the broadcast reached
	dropped     map[string]RoundPhase            // dropped client -> losing phase
	stale, dups int
}

// partialUpload reassembles one client's chunked upload.
type partialUpload struct {
	total  int
	chunks map[int][]paillier.Ciphertext
}

func newRoundState(f *Federation, policy RoundPolicy, count int) *roundState {
	st := &roundState{
		f:       f,
		id:      f.round,
		policy:  policy,
		quorum:  policy.EffectiveQuorum(f.Ctx.Profile.Parties),
		count:   count,
		batches: make(map[string][]paillier.Ciphertext),
		pending: make(map[string]*partialUpload),
		dropped: make(map[string]RoundPhase),
	}
	st.send = f.Transport.Send
	if policy.MaxRetries > 0 {
		st.retrier = flnet.NewRetryTransport(f.Transport, flnet.RetryPolicy{
			MaxRetries: policy.MaxRetries,
			Backoff:    policy.Backoff,
			Seed:       f.Ctx.Profile.Seed ^ f.round,
		})
		// Retransmissions are real wire traffic: charge each re-attempt to
		// the communication component so the cost model stays honest.
		st.retrier.OnRetry = func(msg flnet.Message, attempt int, err error) {
			f.Ctx.Costs.AddRetry(f.Ctx.Link.TransferTime(msg.WireSize()), msg.WireSize())
		}
		st.send = st.retrier.Send
	}
	return st
}

func (st *roundState) report() RoundReport {
	rep := RoundReport{
		Round:      st.id,
		Included:   st.included,
		Dropped:    st.dropped,
		Stale:      st.stale,
		Duplicates: st.dups,
		Scale:      1,
	}
	if st.retrier != nil {
		rep.Retries = st.retrier.Retries()
	}
	if n := len(st.included); n > 0 {
		rep.Scale = float64(st.f.Ctx.Profile.Parties) / float64(n)
	}
	return rep
}

// drop records a lost client and enforces the quorum budget: once more than
// parties-quorum clients are gone, the round fails with a typed error naming
// the phase and party that exhausted the budget.
func (st *roundState) drop(phase RoundPhase, party string, cause error) *RoundError {
	if _, ok := st.dropped[party]; !ok {
		st.dropped[party] = phase
	}
	if len(st.dropped) > st.f.Ctx.Profile.Parties-st.quorum {
		return &RoundError{Round: st.id, Phase: phase, Party: party, Err: cause}
	}
	return nil
}

// fail builds the typed error for a phase-level (no single party) failure.
func (st *roundState) fail(phase RoundPhase, party string, cause error) *RoundError {
	return &RoundError{Round: st.id, Phase: phase, Party: party, Err: cause}
}

// recv performs one transport receive honouring the phase deadline.
func (st *roundState) recv(party string, deadline time.Time) (flnet.Message, error) {
	if deadline.IsZero() {
		return st.f.Transport.Recv(party)
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return flnet.Message{}, fmt.Errorf("%w: party %q (phase deadline elapsed)", flnet.ErrTimeout, party)
	}
	return st.f.Transport.RecvTimeout(party, remaining)
}

// phaseDeadline starts a deadline clock for one phase.
func (st *roundState) phaseDeadline() time.Time {
	if st.policy.PhaseTimeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(st.policy.PhaseTimeout)
}

func (st *roundState) run(grads [][]float64) ([]float64, error) {
	if err := st.phaseSpan("upload", func() error { return st.upload(grads) }); err != nil {
		return nil, err
	}
	if err := st.phaseSpan("gather", st.gather); err != nil {
		return nil, err
	}
	var agg []paillier.Ciphertext
	if err := st.phaseSpan("aggregate", func() error {
		var err error
		agg, err = st.aggregate()
		return err
	}); err != nil {
		return nil, err
	}
	if err := st.phaseSpan("broadcast", func() error { return st.broadcast(agg) }); err != nil {
		return nil, err
	}
	var result []float64
	if err := st.phaseSpan("decrypt", func() error {
		var err error
		result, err = st.decrypt()
		return err
	}); err != nil {
		return nil, err
	}
	return result, nil
}

// phaseSpan runs one protocol phase and records it as a span on the
// context's sim cost clock, so every round leaves a phase-by-phase trace.
// Without a recorder the phase runs bare.
func (st *roundState) phaseSpan(phase string, fn func() error) error {
	ctx := st.f.Ctx
	rec := ctx.Obs.Recorder()
	if rec == nil {
		return fn()
	}
	start := ctx.SimCost()
	err := fn()
	rec.Record(obs.Span{
		Phase: fmt.Sprintf("round%d.%s", st.id, phase),
		Party: ctx.obsPrefix + ".fl",
		Lane:  "fl.round",
		Start: start,
		Dur:   ctx.SimCost() - start,
	})
	return err
}

// upload: every client encrypts and sends to the server. A send that still
// fails after the retry policy drops the client (within the quorum budget);
// a local encryption fault is not a network fault and aborts the round.
// With a positive Profile.Chunk each client uploads through the streamed
// pipeline: chunk i is on the wire while chunk i+1 is still encrypting.
func (st *roundState) upload(grads [][]float64) error {
	for i := 0; i < st.f.Ctx.Profile.Parties; i++ {
		if st.f.Ctx.Profile.Chunk > 0 {
			if err := st.uploadClientChunked(i, grads[i]); err != nil {
				return err
			}
			continue
		}
		name := ClientName(i)
		cts, err := st.f.Ctx.EncryptGradients(grads[i])
		if err != nil {
			return fmt.Errorf("fl: client %d encrypt: %w", i, err)
		}
		msg := flnet.Message{
			From: name, To: ServerName, Kind: "grads", Round: st.id,
			Payload: encodeCiphertexts(cts),
		}
		if err := st.send(msg); err != nil {
			if rerr := st.drop(PhaseUpload, name, err); rerr != nil {
				return rerr
			}
			continue
		}
		st.uploaded = append(st.uploaded, name)
		st.f.Ctx.RecordTransfer(msg.WireSize())
	}
	return nil
}

// gradChunk is one encrypted chunk handed from the encrypting producer to
// the sending consumer.
type gradChunk struct {
	index int
	cts   []paillier.Ciphertext
	heSim time.Duration
}

// errUploadAborted signals the producer that the consumer stopped taking
// chunks (the client was dropped); it is not a round failure.
var errUploadAborted = errors.New("fl: chunked upload aborted")

// uploadClientChunked runs one client's upload as a bounded producer/
// consumer pipeline: a goroutine encrypts chunks through the streamed HE
// session and a two-chunk channel feeds the wire, so the send of chunk i
// overlaps the encryption of chunk i+1. The overlap is also accounted: the
// chunks' HE and wire costs are scheduled onto an encrypt stream and a send
// stream, and the measured critical path lands in Costs.AddPipeline next to
// the sequential totals.
func (st *roundState) uploadClientChunked(i int, grads []float64) error {
	ctx := st.f.Ctx
	name := ClientName(i)
	chunkPts := ctx.Profile.Chunk
	total := (ctx.PlaintextCount(len(grads)) + chunkPts - 1) / chunkPts
	if total == 0 {
		total = 1 // an empty vector still uploads one empty chunk
	}

	ch := make(chan gradChunk, 2) // the bounded double buffer between compute and wire
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(ch)
		errc <- ctx.EncryptGradientsStream(grads, func(index int, cts []paillier.Ciphertext, heSim time.Duration) error {
			select {
			case ch <- gradChunk{index: index, cts: cts, heSim: heSim}:
				return nil
			case <-stop:
				return errUploadAborted
			}
		})
	}()

	enc := gpu.NewStream("encrypt")
	wire := gpu.NewStream("send")
	rec := ctx.Obs.Recorder()
	origin := ctx.SimCost() // anchor stream-relative chunk spans on the cost clock
	var seqSim time.Duration
	var chunks int64
	var sendErr error
	for chk := range ch {
		if sendErr != nil {
			continue // drain the producer after a failed send
		}
		ev := enc.Schedule(chk.heSim)
		msg := flnet.Message{
			From: name, To: ServerName, Kind: "gradc", Round: st.id,
			Payload: flnet.EncodeChunk(uint32(chk.index), uint32(total), encodeCiphertexts(chk.cts)),
		}
		if err := st.send(msg); err != nil {
			sendErr = err
			close(stop)
			continue
		}
		comm := ctx.Link.TransferTime(msg.WireSize())
		sent := wire.Schedule(comm, ev) // the chunk hits the wire once it is encrypted
		if rec != nil {
			phase := fmt.Sprintf("round%d.chunk%d", st.id, chk.index)
			party := ctx.obsPrefix + "." + name
			rec.Record(obs.Span{Phase: phase, Party: party, Lane: "fl.encrypt",
				Start: origin + ev.At - chk.heSim, Dur: chk.heSim})
			rec.Record(obs.Span{Phase: phase, Party: party, Lane: "fl.send",
				Start: origin + sent.At - comm, Dur: comm})
		}
		seqSim += chk.heSim + comm
		chunks++
		ctx.RecordTransfer(msg.WireSize())
	}
	if err := <-errc; err != nil && !errors.Is(err, errUploadAborted) {
		return fmt.Errorf("fl: client %d encrypt: %w", i, err)
	}
	if sendErr != nil {
		// The dropped client's chunks stay at their sequential cost — the
		// overlapped accounting only credits completed uploads.
		if rerr := st.drop(PhaseUpload, name, sendErr); rerr != nil {
			return rerr
		}
		return nil
	}
	span := enc.Clock()
	if w := wire.Clock(); w > span {
		span = w
	}
	ctx.Costs.AddPipeline(seqSim, span, chunks)
	st.uploaded = append(st.uploaded, name)
	return nil
}

// gather: the server collects uploads for the current round. Messages from
// earlier rounds are stale artifacts of stragglers and are discarded, as are
// duplicates. With a deadline, the server proceeds once the quorum holds at
// expiry; without one it waits for every successful uploader.
func (st *roundState) gather() error {
	deadline := st.phaseDeadline()
	for len(st.batches) < len(st.uploaded) {
		msg, err := st.recv(ServerName, deadline)
		if err != nil {
			if flnet.IsTimeout(err) {
				if len(st.batches) >= st.quorum {
					break // quorum reached: proceed without the stragglers
				}
				return st.fail(PhaseGather, "", fmt.Errorf(
					"deadline with %d/%d uploads (quorum %d): %w",
					len(st.batches), len(st.uploaded), st.quorum, err))
			}
			// A hard receive failure at the server is not a straggler.
			return st.fail(PhaseGather, "", err)
		}
		if msg.Round != st.id || (msg.Kind != "grads" && msg.Kind != "gradc") {
			st.stale++
			continue
		}
		if _, done := st.batches[msg.From]; done {
			st.dups++
			continue
		}
		switch msg.Kind {
		case "grads":
			cts, err := decodeCiphertexts(msg.Payload)
			if err != nil {
				return st.fail(PhaseGather, msg.From, fmt.Errorf("server decode: %w", err))
			}
			st.batches[msg.From] = cts
		case "gradc":
			if err := st.acceptChunk(msg); err != nil {
				return err
			}
		}
	}
	// Anyone who uploaded but never arrived was lost in transit.
	for _, name := range st.uploaded {
		if _, ok := st.batches[name]; ok {
			st.included = append(st.included, name)
		} else if rerr := st.drop(PhaseGather, name, fmt.Errorf("upload missed the phase deadline")); rerr != nil {
			return rerr
		}
	}
	if len(st.included) < st.quorum {
		return st.fail(PhaseGather, "", fmt.Errorf("%d/%d uploads below quorum %d",
			len(st.included), st.f.Ctx.Profile.Parties, st.quorum))
	}
	return nil
}

// acceptChunk folds one "gradc" message into the sender's partial upload;
// when the last chunk lands, the batch is reassembled in chunk order and
// promoted to st.batches. Duplicated chunks (retransmissions, transport
// duplication) are counted and ignored; chunk-order arrival is not assumed.
func (st *roundState) acceptChunk(msg flnet.Message) error {
	index, total, body, err := flnet.DecodeChunk(msg.Payload)
	if err != nil {
		return st.fail(PhaseGather, msg.From, fmt.Errorf("server decode: %w", err))
	}
	p := st.pending[msg.From]
	if p == nil {
		p = &partialUpload{total: int(total), chunks: make(map[int][]paillier.Ciphertext)}
		st.pending[msg.From] = p
	}
	if p.total != int(total) {
		return st.fail(PhaseGather, msg.From, fmt.Errorf(
			"server decode: chunk total changed mid-upload (%d vs %d)", total, p.total))
	}
	if _, dup := p.chunks[int(index)]; dup {
		st.dups++
		return nil
	}
	cts, err := decodeCiphertexts(body)
	if err != nil {
		return st.fail(PhaseGather, msg.From, fmt.Errorf("server decode chunk %d: %w", index, err))
	}
	p.chunks[int(index)] = cts
	if len(p.chunks) == p.total {
		var all []paillier.Ciphertext
		for k := 0; k < p.total; k++ {
			all = append(all, p.chunks[k]...)
		}
		st.batches[msg.From] = all
		delete(st.pending, msg.From)
		st.f.Ctx.metricAdd("chunks_reassembled", int64(p.total))
	}
	return nil
}

// aggregate homomorphically sums the gathered batches in upload order.
func (st *roundState) aggregate() ([]paillier.Ciphertext, error) {
	batches := make([][]paillier.Ciphertext, 0, len(st.included))
	for _, name := range st.included {
		batches = append(batches, st.batches[name])
	}
	agg, err := st.f.Ctx.AggregateCiphertexts(batches)
	if err != nil {
		return nil, st.fail(PhaseGather, "", err)
	}
	return agg, nil
}

// broadcast: the server returns the aggregate to every included client.
func (st *roundState) broadcast(agg []paillier.Ciphertext) error {
	payload := encodeCiphertexts(agg)
	for _, name := range st.included {
		msg := flnet.Message{From: ServerName, To: name, Kind: "agg", Round: st.id, Payload: payload}
		if err := st.send(msg); err != nil {
			if rerr := st.drop(PhaseBroadcast, name, err); rerr != nil {
				return rerr
			}
			continue
		}
		st.reached = append(st.reached, name)
		st.f.Ctx.RecordTransfer(msg.WireSize())
	}
	if len(st.reached) == 0 {
		return st.fail(PhaseBroadcast, "", fmt.Errorf("aggregate reached no client"))
	}
	return nil
}

// decrypt: each reached client consumes its aggregate copy; the first valid
// copy is decrypted once (all clients hold the private key in the Fig. 2
// layout, so one decryption keeps host time proportional without changing
// the protocol's traffic). A quorum aggregate of K of N clients is scaled by
// N/K so callers keep seeing a full-federation estimate.
func (st *roundState) decrypt() ([]float64, error) {
	// The deadline bounds waiting for traffic only: every copy is drained
	// before any HE decryption runs, so slow local compute can never expire
	// the clock on a client whose message already arrived.
	deadline := st.phaseDeadline()
	copies := make([]flnet.Message, 0, len(st.reached))
	for _, name := range st.reached {
		for {
			msg, err := st.recv(name, deadline)
			if err != nil {
				if rerr := st.drop(PhaseDecrypt, name, err); rerr != nil {
					return nil, rerr
				}
				break
			}
			if msg.Round != st.id || msg.Kind != "agg" {
				st.stale++
				continue // keep waiting for this round's aggregate
			}
			copies = append(copies, msg)
			break
		}
	}
	var result []float64
	for _, msg := range copies {
		if result != nil {
			break
		}
		cts, err := decodeCiphertexts(msg.Payload)
		if err != nil {
			if rerr := st.drop(PhaseDecrypt, msg.To, err); rerr != nil {
				return nil, rerr
			}
			continue
		}
		k := len(st.included)
		sums, err := st.f.Ctx.DecryptAggregated(cts, st.count, k)
		if err != nil {
			return nil, st.fail(PhaseDecrypt, msg.To, err)
		}
		if p := st.f.Ctx.Profile.Parties; k < p {
			scale := float64(p) / float64(k)
			for i := range sums {
				sums[i] *= scale
			}
		}
		result = sums
	}
	if result == nil {
		return nil, st.fail(PhaseDecrypt, "", fmt.Errorf("no client obtained the aggregate"))
	}
	return result, nil
}

// encodeCiphertexts frames a ciphertext batch for the wire.
func encodeCiphertexts(cts []paillier.Ciphertext) []byte {
	nats := make([]mpint.Nat, len(cts))
	for i, c := range cts {
		nats[i] = c.C
	}
	return flnet.EncodeNats(nats)
}

// decodeCiphertexts parses a batch framed by encodeCiphertexts.
func decodeCiphertexts(b []byte) ([]paillier.Ciphertext, error) {
	nats, err := flnet.DecodeNats(b)
	if err != nil {
		return nil, err
	}
	cts := make([]paillier.Ciphertext, len(nats))
	for i, n := range nats {
		cts[i] = paillier.Ciphertext{C: n}
	}
	return cts, nil
}
