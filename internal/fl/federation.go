package fl

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"flbooster/internal/flnet"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/obs"
	"flbooster/internal/paillier"
)

// Federation wires a Context to a transport and executes the SGD secure-
// aggregation round of Fig. 2 as a fault-tolerant state machine: clients
// encrypt local gradients and upload ciphertexts, the server aggregates
// homomorphically once the context's RoundPolicy quorum is met, and clients
// decrypt the (possibly scaled) aggregate. Every message carries the round's
// monotonically increasing ID; stale or duplicate messages from earlier
// rounds are discarded, never aggregated. Party names are "client<i>" and
// "server".
type Federation struct {
	Ctx       *Context
	Transport flnet.Transport
	parties   []string

	round      uint64
	lastReport RoundReport
	adversary  *Adversary // nil unless Profile.Byz arms the injector

	// Durability and churn state: the (optional) write-ahead journal, the
	// epoch this coordinator serves, the live-client roster, and the resume
	// position a crash recovery parked for the next round.
	epoch       uint64
	journal     *Journal
	roster      *Roster
	nextAttempt uint32
	resume      *ResumePoint

	// arena pools the flat round path's codec scratch and gathered batches
	// across rounds; results are unchanged, only steady-state allocations.
	arena wireArena
}

// ClientName returns the canonical name of client i.
func ClientName(i int) string { return fmt.Sprintf("client%d", i) }

// ServerName is the canonical aggregation-server party name.
const ServerName = "server"

// NewFederation builds a federation over the context's party count with an
// in-process transport on the context's link model.
func NewFederation(ctx *Context) *Federation {
	names := make([]string, 0, ctx.Profile.Parties+1)
	for i := 0; i < ctx.Profile.Parties; i++ {
		names = append(names, ClientName(i))
	}
	names = append(names, ServerName)
	// Profile.Validate (run by NewContext) already vetted the adversary
	// config, so construction cannot fail here; a disabled config yields the
	// nil (honest) injector.
	adv, _ := NewAdversary(ctx.Profile.Byz, ctx.Profile.Parties)
	return &Federation{
		Ctx:       ctx,
		Transport: flnet.NewSimTransport(ctx.Link, names...),
		parties:   names,
		roster:    NewRoster(names[:len(names)-1]),
		adversary: adv,
	}
}

// Adversary returns the armed Byzantine injector (nil when the federation is
// all-honest). Harnesses use it to rotate the attack model between rounds.
func (f *Federation) Adversary() *Adversary { return f.adversary }

// Round returns the ID of the most recently started round.
func (f *Federation) Round() uint64 { return f.round }

// LastReport returns the report of the most recently completed round.
func (f *Federation) LastReport() RoundReport { return f.lastReport }

// Epoch returns the epoch this coordinator serves (0 unless recovered).
func (f *Federation) Epoch() uint64 { return f.epoch }

// AttachJournal wires a write-ahead journal into the federation: every
// round transition is appended durably before the round acts on it, making
// the coordinator crash-recoverable via Recover. A nil journal detaches.
func (f *Federation) AttachJournal(j *Journal) { f.journal = j }

// Journal returns the attached journal (nil when durability is off).
func (f *Federation) Journal() *Journal { return f.journal }

// Roster returns the live-client roster.
func (f *Federation) Roster() *Roster { return f.roster }

// Leave marks a client departed: it stops being scheduled from the next
// round on. The in-flight round (if any) is unaffected.
func (f *Federation) Leave(name string) error {
	if err := f.roster.Leave(name); err != nil {
		return err
	}
	f.Ctx.metricAdd("client_departures", 1)
	return nil
}

// Rejoin parks a departed client for admission at the next round boundary —
// never mid-round, so a returning client cannot perturb the current round.
func (f *Federation) Rejoin(name string) error {
	if err := f.roster.Rejoin(name); err != nil {
		return err
	}
	f.Ctx.metricAdd("rejoin_requests", 1)
	return nil
}

// journalAppend stamps the epoch onto rec and appends it durably; a no-op
// without an attached journal. The returned error is fatal to the round —
// a transition that cannot be made durable must not be acted on.
func (f *Federation) journalAppend(rec JournalRecord) error {
	if f.journal == nil {
		return nil
	}
	rec.Epoch = f.epoch
	if err := f.journal.Append(rec); err != nil {
		return err
	}
	c := f.Ctx
	c.metricAdd("journal_records", 1)
	if c.Obs != nil {
		c.Obs.Metrics().SetMax("fl."+c.obsPrefix+".journal_round", int64(rec.Round))
	}
	return nil
}

// takeAttempt consumes the recovery-provided attempt number for the round
// about to run (1 when this is a fresh execution).
func (f *Federation) takeAttempt() uint32 {
	a := f.nextAttempt
	f.nextAttempt = 0
	if a == 0 {
		a = 1
	}
	return a
}

// takeResume consumes the parked resume point if it targets the round about
// to run.
func (f *Federation) takeResume() *ResumePoint {
	rp := f.resume
	f.resume = nil
	if rp != nil && rp.Round != f.round {
		return nil
	}
	return rp
}

// SecureAggregate executes one full round: grads[i] is client i's local
// gradient vector (all equal length). It returns the element-wise sum as
// decrypted by the clients — scaled to the full-federation estimate when a
// quorum round dropped stragglers. Every ciphertext crossing the wire is
// charged to the communication component.
func (f *Federation) SecureAggregate(grads [][]float64) ([]float64, error) {
	sum, _, err := f.SecureAggregateReport(grads)
	return sum, err
}

// SecureAggregateReport is SecureAggregate plus the round's RoundReport:
// which clients contributed, which were dropped and where, retry counts, and
// the applied scale factor. On failure it returns a *RoundError naming the
// phase (and party, when one is at fault).
func (f *Federation) SecureAggregateReport(grads [][]float64) ([]float64, RoundReport, error) {
	p := f.Ctx.Profile.Parties
	if len(grads) != p {
		return nil, RoundReport{}, fmt.Errorf("fl: %d gradient vectors for %d parties", len(grads), p)
	}
	count := len(grads[0])
	for i, g := range grads {
		if len(g) != count {
			return nil, RoundReport{}, fmt.Errorf("fl: client %d has %d gradients, want %d", i, len(g), count)
		}
	}
	policy := f.Ctx.Profile.Round
	if err := policy.Validate(p); err != nil {
		return nil, RoundReport{}, err
	}

	// Round boundary: departed clients are out, rejoiners come back in.
	admitted := f.roster.admit()
	if len(admitted) > 0 {
		f.Ctx.metricAdd("rejoins_admitted", int64(len(admitted)))
	}
	active := f.roster.Active()

	f.round++
	attempt := f.takeAttempt()
	resume := f.takeResume()
	// Cross-device scheduling: sample this round's cohort from the active
	// roster. The sample is a pure function of (roster, seed, round), and the
	// roster itself is journaled, so a crash-recovered re-run draws the
	// identical cohort — cross-checked against the journaled one below.
	cohort := active
	var sampled []string
	if cp := f.Ctx.Profile.Cohort; cp.Sampling() && cp.Size < len(active) {
		cohort = SampleCohort(active, cp.Size, f.Ctx.Profile.Seed, f.round)
		sampled = cohort
		f.Ctx.metricAdd("cohorts_sampled", 1)
	}
	if resume != nil && resume.Cohort != nil && !sameMembers(resume.Cohort, cohort) {
		return nil, RoundReport{}, fmt.Errorf(
			"fl: recovered round %d resamples a different cohort (journal has %d members, got %d)",
			f.round, len(resume.Cohort), len(cohort))
	}
	// The round-start record is durable before any client encrypts: its
	// cursor is the position a recovered coordinator rewinds to when it must
	// re-run this round from scratch.
	if err := f.journalAppend(JournalRecord{
		Kind: EventRoundStart, Round: f.round, Attempt: attempt,
		Cursor: f.Ctx.SeedCursor(), Members: active, Cohort: sampled,
	}); err != nil {
		return nil, RoundReport{}, err
	}

	st := newRoundState(f, policy, count, cohort, attempt, resume)
	var result []float64
	var err error
	if rerr := f.admissionError(cohort, policy); rerr != nil {
		err = rerr
	} else {
		result, err = st.run(grads)
	}
	f.lastReport = st.report()
	f.lastReport.Admitted = admitted
	f.observeRound(f.lastReport, err)
	if err != nil {
		// A simulated coordinator crash means the process died at a durable
		// boundary: nothing after that boundary — including a round-failed
		// record — can have been written.
		if !errors.Is(err, ErrCoordinatorCrash) {
			rec := JournalRecord{
				Kind: EventRoundFailed, Round: f.round, Attempt: attempt,
				Cursor: f.Ctx.SeedCursor(), Reason: err.Error(),
			}
			var re *RoundError
			if errors.As(err, &re) {
				rec.Phase, rec.Party = re.Phase, re.Party
			}
			if jerr := f.journalAppend(rec); jerr != nil {
				return nil, f.lastReport, jerr
			}
		}
		return nil, f.lastReport, err
	}
	if jerr := f.journalAppend(JournalRecord{
		Kind: EventRoundDone, Round: f.round, Attempt: attempt,
		Cursor: f.Ctx.SeedCursor(), Members: st.included, Digest: st.aggDigest,
	}); jerr != nil {
		return nil, f.lastReport, jerr
	}
	return result, f.lastReport, nil
}

// admissionError fails a round that cannot start: an explicit quorum the
// scheduled cohort no longer covers, or no active clients at all.
func (f *Federation) admissionError(cohort []string, policy RoundPolicy) *RoundError {
	if len(cohort) == 0 {
		return &RoundError{Round: f.round, Phase: PhaseAdmit, Err: fmt.Errorf("no active clients")}
	}
	if policy.Quorum > 0 && len(cohort) < policy.Quorum {
		return &RoundError{Round: f.round, Phase: PhaseAdmit, Err: fmt.Errorf(
			"%d active clients below quorum %d", len(cohort), policy.Quorum)}
	}
	return nil
}

// sameMembers reports whether two canonical-order member lists are equal.
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// observeRound publishes one completed round's protocol counters into the
// context's metrics registry and refreshes the transport meter. No-op
// without an attached observability bundle.
func (f *Federation) observeRound(rep RoundReport, err error) {
	c := f.Ctx
	if c.Obs == nil {
		return
	}
	c.metricAdd("rounds", 1)
	if err != nil {
		c.metricAdd("round_failures", 1)
	}
	c.metricAdd("round_drops", int64(len(rep.Dropped)))
	c.metricAdd("round_stale", int64(rep.Stale))
	c.metricAdd("round_dups", int64(rep.Duplicates))
	c.Obs.Metrics().SetGauge("fl."+c.obsPrefix+".round_scale", rep.Scale)
	if d := rep.Defense; d != nil {
		c.metricAdd("defense_rounds", 1)
		c.metricAdd("defense_trimmed", d.Stats.TrimmedCoords)
		c.metricAdd("defense_clips", int64(d.Stats.Clipped))
		c.metricAdd("defense_dropped", int64(d.Stats.GroupsDropped))
		c.Obs.Metrics().SetGauge("fl."+c.obsPrefix+".defense_suspicion", d.MaxSuspicion())
	}
	if mt, ok := f.Transport.(interface{ Meter() *flnet.Meter }); ok {
		mt.Meter().Publish(c.Obs.Metrics(), "net."+c.obsPrefix)
	}
}

// Close releases the transport.
func (f *Federation) Close() error { return f.Transport.Close() }

// ---- round state machine -------------------------------------------------

// roundState carries one SecureAggregate execution through its four phases.
type roundState struct {
	f      *Federation
	id     uint64
	policy RoundPolicy
	quorum int
	count  int // gradient dimension

	active  []string     // the clients this round schedules (the sampled cohort; the full roster when sampling is off)
	attempt uint32       // execution count across coordinator restarts
	resume  *ResumePoint // non-nil when recovering a journaled round

	send    func(flnet.Message) error
	retrier *flnet.RetryTransport // nil when MaxRetries is 0

	uploaded    []string                         // clients whose upload send succeeded
	batches     map[string][]paillier.Ciphertext // gathered uploads by client (flat mode)
	pending     map[string]*flnet.Reassembler    // chunked uploads being reassembled
	included    []string                         // aggregation order
	reached     []string                         // clients the broadcast reached
	dropped     map[string]RoundPhase            // dropped client -> losing phase
	stale, dups int

	// Tree-mode state: uploads stream straight into the (per-group)
	// aggregation trees instead of accumulating in st.batches, and resolved
	// tracks which cohort members have been folded or cut off.
	tree       *AggTree
	groupTrees []*AggTree
	groupOf    map[string]int
	resolved   map[string]bool
	treeStats  *TreeStats

	reasmBytes int64 // live chunk-buffer bytes across pending reassemblers
	peakLive   int64 // high-water simultaneously-live aggregate-path ciphertexts

	aggPayload []byte // the encoded aggregate, journaled before broadcast
	aggDigest  uint64
	resumed    bool // round replayed a journaled aggregate

	defense *DefenseReport // the defended round's group anatomy (nil when plain)

	// Per-phase cost anatomy: phaseSpan brackets every phase with a cost
	// snapshot frame; the stack handles nesting (combine inside decrypt) by
	// deducting a closed child's delta from its parent's row.
	anat   *RoundAnatomy
	frames []anatFrame
}

// anatFrame is one open phase on the anatomy stack.
type anatFrame struct {
	name  string
	start CostSnapshot
	child PhaseCost // closed nested phases, deducted from this frame's row
}

// defended reports whether this round runs group-wise robust aggregation.
func (st *roundState) defended() bool { return st.f.Ctx.Profile.Defense.Enabled() }

// treeMode reports whether this round aggregates through a hierarchy.
func (st *roundState) treeMode() bool { return st.f.Ctx.Profile.Cohort.Tree() }

func newRoundState(f *Federation, policy RoundPolicy, count int, active []string, attempt uint32, resume *ResumePoint) *roundState {
	st := &roundState{
		f:       f,
		id:      f.round,
		policy:  policy,
		quorum:  policy.EffectiveQuorum(len(active)),
		count:   count,
		active:  active,
		attempt: attempt,
		resume:  resume,
		batches: make(map[string][]paillier.Ciphertext),
		pending: make(map[string]*flnet.Reassembler),
		dropped: make(map[string]RoundPhase),
		anat:    &RoundAnatomy{Round: f.round},
	}
	st.send = f.Transport.Send
	if policy.MaxRetries > 0 {
		st.retrier = flnet.NewRetryTransport(f.Transport, flnet.RetryPolicy{
			MaxRetries: policy.MaxRetries,
			Backoff:    policy.Backoff,
			Seed:       f.Ctx.Profile.Seed ^ f.round,
		})
		// Retransmissions are real wire traffic: charge each re-attempt to
		// the communication component so the cost model stays honest.
		st.retrier.OnRetry = func(msg flnet.Message, attempt int, err error) {
			f.Ctx.Costs.AddRetry(f.Ctx.Link.TransferTime(msg.WireSize()), msg.WireSize())
		}
		st.send = st.retrier.Send
	}
	return st
}

func (st *roundState) report() RoundReport {
	rep := RoundReport{
		Round:      st.id,
		Included:   st.included,
		Dropped:    st.dropped,
		Stale:      st.stale,
		Duplicates: st.dups,
		Scale:      1,
		Attempt:    st.attempt,
		Resumed:    st.resumed,
	}
	if st.retrier != nil {
		rep.Retries = st.retrier.Retries()
	}
	if n := len(st.included); n > 0 {
		rep.Scale = float64(st.f.Ctx.Profile.Parties) / float64(n)
	}
	rep.Defense = st.defense
	rep.CohortSize = len(st.active)
	rep.PeakLiveCts = st.peakLive
	rep.Tree = st.treeStats
	rep.Anatomy = st.anat
	return rep
}

// drop records a lost client and enforces the quorum budget: once more than
// active-quorum clients are gone, the round fails with a typed error naming
// the phase and party that exhausted the budget.
func (st *roundState) drop(phase RoundPhase, party string, cause error) *RoundError {
	if _, ok := st.dropped[party]; !ok {
		st.dropped[party] = phase
	}
	if len(st.dropped) > len(st.active)-st.quorum {
		return &RoundError{Round: st.id, Phase: phase, Party: party, Err: cause}
	}
	return nil
}

// fail builds the typed error for a phase-level (no single party) failure.
func (st *roundState) fail(phase RoundPhase, party string, cause error) *RoundError {
	return &RoundError{Round: st.id, Phase: phase, Party: party, Err: cause}
}

// recv performs one transport receive honouring the phase deadline.
func (st *roundState) recv(party string, deadline time.Time) (flnet.Message, error) {
	if deadline.IsZero() {
		return st.f.Transport.Recv(party)
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return flnet.Message{}, fmt.Errorf("%w: party %q (phase deadline elapsed)", flnet.ErrTimeout, party)
	}
	return st.f.Transport.RecvTimeout(party, remaining)
}

// phaseDeadline starts a deadline clock for one phase.
func (st *roundState) phaseDeadline() time.Time {
	if st.policy.PhaseTimeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(st.policy.PhaseTimeout)
}

func (st *roundState) run(grads [][]float64) ([]float64, error) {
	if st.resume != nil && st.resume.Phase == PhaseBroadcast {
		// The crashed attempt already gathered and aggregated: rehydrate the
		// journaled aggregate and resume at the broadcast boundary.
		if err := st.restoreAggregate(); err != nil {
			return nil, err
		}
	} else if st.treeMode() {
		// Hierarchical rounds stream: upload and gather merge into one
		// contribute phase whose admission waves fold completed uploads
		// straight into the aggregation tree and release their buffers.
		if err := st.phaseSpan("contribute", func() error { return st.contribute(grads) }); err != nil {
			return nil, err
		}
		if err := st.phaseSpan("aggregate", st.aggregate); err != nil {
			return nil, err
		}
	} else {
		if err := st.phaseSpan("upload", func() error { return st.upload(grads) }); err != nil {
			return nil, err
		}
		if err := st.phaseSpan("gather", st.gather); err != nil {
			return nil, err
		}
		if err := st.phaseSpan("aggregate", st.aggregate); err != nil {
			return nil, err
		}
	}
	if err := st.phaseSpan("broadcast", st.broadcast); err != nil {
		return nil, err
	}
	var result []float64
	if err := st.phaseSpan("decrypt", func() error {
		var err error
		result, err = st.decrypt()
		return err
	}); err != nil {
		return nil, err
	}
	return result, nil
}

// phaseSpan runs one protocol phase, collects its cost delta into the
// round's anatomy, and — with a recorder attached — also records it as a
// span on the context's sim cost clock, so every round leaves a
// phase-by-phase trace. Anatomy collection is unconditional: it reads only
// the cost accumulator, which is always live.
func (st *roundState) phaseSpan(phase string, fn func() error) error {
	ctx := st.f.Ctx
	start := ctx.SimCost()
	st.frames = append(st.frames, anatFrame{name: phase, start: ctx.Costs.Snapshot()})
	err := fn()
	st.closeFrame()
	if rec := ctx.Obs.Recorder(); rec != nil {
		rec.Record(obs.Span{
			Phase: fmt.Sprintf("round%d.%s", st.id, phase),
			Party: ctx.obsPrefix + ".fl",
			Lane:  "fl.round",
			Start: start,
			Dur:   ctx.SimCost() - start,
		})
	}
	return err
}

// closeFrame pops the innermost phase frame: its cost delta minus any
// nested phases' deltas becomes the phase's anatomy row, and the full delta
// rolls up into the parent frame so the parent's own row excludes it.
// Rows therefore land in frame-closing order (children before parents) and
// sum exactly to the round's whole-run cost delta.
func (st *roundState) closeFrame() {
	n := len(st.frames) - 1
	fr := st.frames[n]
	st.frames = st.frames[:n]
	delta := phaseDelta(fr.start, st.f.Ctx.Costs.Snapshot())
	row := delta.sub(fr.child)
	row.Phase = fr.name
	st.anat.Phases = append(st.anat.Phases, row)
	if n > 0 {
		st.frames[n-1].child = st.frames[n-1].child.add(delta)
	}
}

// clientGrads resolves client i's upload for this round: honest clients
// upload their local gradients unchanged; a compromised client's vector is
// rewritten by the armed attack model — before quantization and encryption,
// exactly where a real malicious participant would poison its update.
func (st *roundState) clientGrads(i int, grads [][]float64) []float64 {
	if st.f.adversary.IsMalicious(i) {
		st.f.Ctx.metricAdd("byz_attacks", 1)
	}
	return st.f.adversary.Apply(st.id, i, grads[i])
}

// upload: every client encrypts and sends to the server. A send that still
// fails after the retry policy drops the client (within the quorum budget);
// a local encryption fault is not a network fault and aborts the round.
// With a positive Profile.Chunk each client uploads through the streamed
// pipeline: chunk i is on the wire while chunk i+1 is still encrypting.
func (st *roundState) upload(grads [][]float64) error { return st.uploadWave(st.active, grads) }

// uploadWave runs the upload send loop for one slice of the cohort — the
// whole cohort in flat mode, one bounded admission wave in tree mode.
// Clients encrypt in cohort order either way, so the nonce-stream cursor
// advances identically in both modes and across crash-recovered re-runs.
// Per-party model compute (Profile.Overlap.CompSimPerValue) is charged
// before each client's encryption; with Overlap.Enabled the wave instead
// runs through the overlap scheduler, which charges the identical work but
// credits the wave at its measured critical path.
func (st *roundState) uploadWave(wave []string, grads [][]float64) error {
	ctx := st.f.Ctx
	if ctx.Profile.Overlap.Enabled {
		return st.uploadWaveOverlapped(wave, grads)
	}
	for _, name := range wave {
		i, err := ClientIndex(name)
		if err != nil {
			return st.fail(PhaseUpload, name, err)
		}
		g := st.clientGrads(i, grads)
		if comp := ctx.Profile.Overlap.compSim(len(g)); comp > 0 {
			ctx.Costs.AddComp(comp)
		}
		if ctx.Profile.Chunk > 0 {
			if err := st.uploadClientChunked(i, g); err != nil {
				return err
			}
			continue
		}
		cts, err := ctx.EncryptGradients(g)
		if err != nil {
			return fmt.Errorf("fl: client %d encrypt: %w", i, err)
		}
		msg := flnet.Message{
			From: name, To: ServerName, Kind: "grads", Round: st.id,
			Payload: st.f.encodeCts(cts),
		}
		if err := st.send(msg); err != nil {
			if rerr := st.drop(PhaseUpload, name, err); rerr != nil {
				return rerr
			}
			continue
		}
		st.uploaded = append(st.uploaded, name)
		ctx.RecordTransfer(msg.WireSize())
	}
	return nil
}

// uploadWaveOverlapped schedules one wave's uploads across shared encrypt
// and send streams, with each party's model compute + encode on a lane of
// its own: client i+1's compute runs while client i's batch encrypts and
// client i-1's is on the wire. Every cost is charged exactly as on the
// sequential path — the scheduler only adds one wave-level AddPipeline
// record whose critical path replaces the completed uploads' sequential sum
// in TotalSimOverlapped. Dropped clients are excluded from both the
// sequential credit and the stream events, so their charges stay
// conservative (sequential), matching the chunked-upload convention.
func (st *roundState) uploadWaveOverlapped(wave []string, grads [][]float64) error {
	ctx := st.f.Ctx
	enc := gpu.NewStream("encrypt")
	wire := gpu.NewStream("send")
	var waveSeq time.Duration
	var waveChunks int64
	completed := 0
	for _, name := range wave {
		i, err := ClientIndex(name)
		if err != nil {
			return st.fail(PhaseUpload, name, err)
		}
		g := st.clientGrads(i, grads)
		comp := ctx.Profile.Overlap.compSim(len(g))
		if comp > 0 {
			ctx.Costs.AddComp(comp)
		}
		lane := comp + encodeSim(len(g))
		compEv := gpu.NewStream("comp." + name).Schedule(lane)
		if ctx.Profile.Chunk > 0 {
			seqSim, chunks, ok, err := st.streamClientChunks(i, g, enc, wire, compEv)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			waveSeq += lane + seqSim
			waveChunks += chunks
			completed++
			continue
		}
		heBefore := ctx.Costs.Snapshot().HESim
		cts, err := ctx.EncryptGradients(g)
		if err != nil {
			return fmt.Errorf("fl: client %d encrypt: %w", i, err)
		}
		he := ctx.Costs.Snapshot().HESim - heBefore
		msg := flnet.Message{
			From: name, To: ServerName, Kind: "grads", Round: st.id,
			Payload: st.f.encodeCts(cts),
		}
		if err := st.send(msg); err != nil {
			if rerr := st.drop(PhaseUpload, name, err); rerr != nil {
				return rerr
			}
			continue
		}
		st.uploaded = append(st.uploaded, name)
		ctx.RecordTransfer(msg.WireSize())
		comm := ctx.Link.TransferTime(msg.WireSize())
		ev := enc.Schedule(he, compEv) // encrypt once the party's compute is done
		wire.Schedule(comm, ev)        // then the batch hits the wire
		waveSeq += lane + he + comm
		waveChunks++ // a whole-batch upload is one unit on the streams
		completed++
	}
	if completed > 0 {
		span := enc.Clock()
		if w := wire.Clock(); w > span {
			span = w
		}
		// A client dropped mid-upload leaves chunks it already scheduled on
		// the shared streams, but its charges stay sequential (it earns no
		// credit), so the measured span can exceed the credited sequential
		// sum. Clamp: overlap credit must never make the wave slower than its
		// sequential accounting.
		if span > waveSeq {
			span = waveSeq
		}
		ctx.Costs.AddPipeline(waveSeq, span, waveChunks)
	}
	return nil
}

// gradChunk is one encrypted chunk handed from the encrypting producer to
// the sending consumer.
type gradChunk struct {
	index int
	cts   []paillier.Ciphertext
	heSim time.Duration
}

// errUploadAborted signals the producer that the consumer stopped taking
// chunks (the client was dropped); it is not a round failure.
var errUploadAborted = errors.New("fl: chunked upload aborted")

// uploadClientChunked runs one client's chunked upload on a private stream
// pair — the sequential-wave accounting, one AddPipeline record per client.
func (st *roundState) uploadClientChunked(i int, grads []float64) error {
	ctx := st.f.Ctx
	enc := gpu.NewStream("encrypt")
	wire := gpu.NewStream("send")
	seqSim, chunks, ok, err := st.streamClientChunks(i, grads, enc, wire)
	if err != nil || !ok {
		return err
	}
	span := enc.Clock()
	if w := wire.Clock(); w > span {
		span = w
	}
	ctx.Costs.AddPipeline(seqSim, span, chunks)
	return nil
}

// streamClientChunks runs one client's upload as a bounded producer/
// consumer pipeline: a goroutine encrypts chunks through the streamed HE
// session and a two-chunk channel feeds the wire, so the send of chunk i
// overlaps the encryption of chunk i+1. The chunks' HE and wire costs are
// scheduled onto the caller's encrypt and send streams (the first chunk
// waits on `after` — the party's model-compute lane under the overlap
// scheduler). Returns the sequential sum, the chunk count, and whether the
// upload completed; a dropped client (failed send, within the quorum
// budget) returns ok=false with its costs left at their sequential charge —
// the overlapped accounting only credits completed uploads.
func (st *roundState) streamClientChunks(i int, grads []float64, enc, wire *gpu.Stream, after ...gpu.Event) (seqSim time.Duration, chunks int64, ok bool, err error) {
	ctx := st.f.Ctx
	name := ClientName(i)
	chunkPts := ctx.Profile.Chunk
	total := (ctx.PlaintextCount(len(grads)) + chunkPts - 1) / chunkPts
	if total == 0 {
		total = 1 // an empty vector still uploads one empty chunk
	}

	ch := make(chan gradChunk, 2) // the bounded double buffer between compute and wire
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer close(ch)
		errc <- ctx.EncryptGradientsStream(grads, func(index int, cts []paillier.Ciphertext, heSim time.Duration) error {
			select {
			case ch <- gradChunk{index: index, cts: cts, heSim: heSim}:
				return nil
			case <-stop:
				return errUploadAborted
			}
		})
	}()

	rec := ctx.Obs.Recorder()
	origin := ctx.SimCost() // anchor stream-relative chunk spans on the cost clock
	var sendErr error
	first := true
	for chk := range ch {
		if sendErr != nil {
			continue // drain the producer after a failed send
		}
		var ev gpu.Event
		if first {
			ev = enc.Schedule(chk.heSim, after...)
			first = false
		} else {
			ev = enc.Schedule(chk.heSim)
		}
		msg := flnet.Message{
			From: name, To: ServerName, Kind: "gradc", Round: st.id,
			Payload: flnet.EncodeChunk(uint32(chk.index), uint32(total), st.f.encodeCts(chk.cts)),
		}
		if err := st.send(msg); err != nil {
			sendErr = err
			close(stop)
			continue
		}
		comm := ctx.Link.TransferTime(msg.WireSize())
		sent := wire.Schedule(comm, ev) // the chunk hits the wire once it is encrypted
		if rec != nil {
			phase := fmt.Sprintf("round%d.chunk%d", st.id, chk.index)
			party := ctx.obsPrefix + "." + name
			rec.Record(obs.Span{Phase: phase, Party: party, Lane: "fl.encrypt",
				Start: origin + ev.At - chk.heSim, Dur: chk.heSim})
			rec.Record(obs.Span{Phase: phase, Party: party, Lane: "fl.send",
				Start: origin + sent.At - comm, Dur: comm})
		}
		seqSim += chk.heSim + comm
		chunks++
		ctx.RecordTransfer(msg.WireSize())
	}
	if err := <-errc; err != nil && !errors.Is(err, errUploadAborted) {
		return 0, 0, false, fmt.Errorf("fl: client %d encrypt: %w", i, err)
	}
	if sendErr != nil {
		if rerr := st.drop(PhaseUpload, name, sendErr); rerr != nil {
			return 0, 0, false, rerr
		}
		return 0, 0, false, nil
	}
	st.uploaded = append(st.uploaded, name)
	return seqSim, chunks, true, nil
}

// gather: the server collects uploads for the current round. Messages from
// earlier rounds are stale artifacts of stragglers and are discarded, as are
// duplicates. With a deadline, the server proceeds once the quorum holds at
// expiry; without one it waits for every successful uploader.
func (st *roundState) gather() error {
	deadline := st.phaseDeadline()
	for len(st.batches) < len(st.uploaded) {
		msg, err := st.recv(ServerName, deadline)
		if err != nil {
			if flnet.IsTimeout(err) {
				if len(st.batches) >= st.quorum {
					// Quorum reached: proceed without the stragglers. Their
					// half-received chunk buffers are dead weight — release
					// them and charge the wasted traffic as late arrivals.
					st.releasePending(true)
					break
				}
				return st.fail(PhaseGather, "", fmt.Errorf(
					"deadline with %d/%d uploads (quorum %d): %w",
					len(st.batches), len(st.uploaded), st.quorum, err))
			}
			// A hard receive failure at the server is not a straggler.
			return st.fail(PhaseGather, "", err)
		}
		if msg.Kind == flnet.KindResume {
			// A churned client probing for readmission mid-round: answer the
			// handshake without letting it into the in-flight round.
			st.answerResume(msg)
			continue
		}
		if msg.Round != st.id || (msg.Kind != "grads" && msg.Kind != "gradc") {
			st.stale++
			continue
		}
		if _, done := st.batches[msg.From]; done {
			st.dups++
			continue
		}
		switch msg.Kind {
		case "grads":
			cts, err := st.f.decodeCts(msg.Payload)
			if err != nil {
				return st.fail(PhaseGather, msg.From, fmt.Errorf("server decode: %w", err))
			}
			st.batches[msg.From] = cts
		case "gradc":
			cts, err := st.acceptChunk(msg)
			if err != nil {
				return err
			}
			if cts != nil {
				st.batches[msg.From] = cts
			}
		}
	}
	// Anyone who uploaded but never arrived was lost in transit.
	for _, name := range st.uploaded {
		if _, ok := st.batches[name]; ok {
			st.included = append(st.included, name)
		} else if rerr := st.drop(PhaseGather, name, fmt.Errorf("upload missed the phase deadline")); rerr != nil {
			return rerr
		}
	}
	if len(st.included) < st.quorum {
		return st.fail(PhaseGather, "", fmt.Errorf("%d/%d uploads below quorum %d",
			len(st.included), len(st.active), st.quorum))
	}
	return nil
}

// answerResume replies to one session-resume probe. Only a token that
// matches the in-flight (epoch, round, attempt) exactly may keep uploading
// into this round; anything else — a stale round, a pre-crash attempt, a
// foreign epoch — is told the next round boundary it may join. Either way
// the in-flight round's state is untouched.
func (st *roundState) answerResume(msg flnet.Message) {
	ctx := st.f.Ctx
	decision := flnet.AdmissionDecision{
		Kind:  flnet.KindResumeWait,
		Token: flnet.SessionToken{Epoch: st.f.epoch, Round: st.id + 1, Attempt: 1},
	}
	if tok, err := flnet.DecodeSessionToken(msg.Payload); err == nil {
		adm := flnet.Admission{Current: flnet.SessionToken{Epoch: st.f.epoch, Round: st.id, Attempt: st.attempt}}
		decision = adm.Decide(tok)
	}
	reply := flnet.Message{From: ServerName, To: msg.From, Kind: decision.Kind, Round: st.id, Payload: decision.Token.Encode()}
	if err := st.send(reply); err == nil {
		ctx.RecordTransfer(reply.WireSize())
	}
	if decision.Kind == flnet.KindResumeOK {
		ctx.metricAdd("rejoin_resumes", 1)
	} else {
		ctx.metricAdd("rejoin_waits", 1)
	}
}

// acceptChunk folds one "gradc" message into the sender's reassembler; when
// the last chunk lands, the batch is decoded in chunk order, the chunk
// buffers are released (the reassembled payload's usefulness ends at
// decode), and the decoded ciphertexts are returned — nil while the upload
// is still incomplete. The reassembler's invariants turn transport chaos
// into typed outcomes: an exact duplicate (retransmission, ChaosTransport
// duplication) is counted and dropped, while a conflicting rewrite, an
// out-of-range index, or a changed total poisons the upload and fails the
// round — never a silent overwrite. Buffered bytes are tracked across all
// in-flight reassemblers as the reassembly_bytes_peak high-water metric.
func (st *roundState) acceptChunk(msg flnet.Message) ([]paillier.Ciphertext, error) {
	index, total, body, err := flnet.DecodeChunk(msg.Payload)
	if err != nil {
		st.f.Ctx.metricAdd("chunk_rejects", 1)
		return nil, st.fail(PhaseGather, msg.From, fmt.Errorf("server decode: %w", err))
	}
	asm := st.pending[msg.From]
	if asm == nil {
		asm, err = flnet.NewReassembler(total)
		if err != nil {
			st.f.Ctx.metricAdd("chunk_rejects", 1)
			return nil, st.fail(PhaseGather, msg.From, fmt.Errorf("server reassembly: %w", err))
		}
		st.pending[msg.From] = asm
	}
	before := asm.Bytes()
	done, err := asm.Accept(index, total, body)
	st.trackReasm(asm.Bytes() - before)
	if err != nil {
		var ce *flnet.ChunkError
		if errors.As(err, &ce) && ce.Ignorable() {
			st.dups++
			st.f.Ctx.metricAdd("chunk_dup_rejects", 1)
			return nil, nil
		}
		st.f.Ctx.metricAdd("chunk_rejects", 1)
		return nil, st.fail(PhaseGather, msg.From, fmt.Errorf("server reassembly: %w", err))
	}
	if !done {
		return nil, nil
	}
	bodies, err := asm.Assemble()
	if err != nil {
		return nil, st.fail(PhaseGather, msg.From, err)
	}
	var all []paillier.Ciphertext
	for k, b := range bodies {
		cts, err := decodeCiphertexts(b)
		if err != nil {
			return nil, st.fail(PhaseGather, msg.From, fmt.Errorf("server decode chunk %d: %w", k, err))
		}
		all = append(all, cts...)
	}
	st.trackReasm(-asm.Release())
	delete(st.pending, msg.From)
	st.f.Ctx.metricAdd("chunks_reassembled", int64(asm.Total()))
	return all, nil
}

// trackReasm adjusts the live reassembly-byte total and maintains its
// high-water metric.
func (st *roundState) trackReasm(delta int64) {
	st.reasmBytes += delta
	if delta > 0 {
		st.f.Ctx.metricMax("reassembly_bytes_peak", st.reasmBytes)
	}
}

// releaseUpload frees one client's half-received chunk buffers. When charge
// is set the released chunks and bytes are charged to the late-arrival
// counters — traffic that was paid for on the wire but never aggregated.
func (st *roundState) releaseUpload(name string, charge bool) {
	asm := st.pending[name]
	if asm == nil {
		return
	}
	chunks := int64(asm.Received())
	freed := asm.Release()
	st.trackReasm(-freed)
	delete(st.pending, name)
	if charge {
		st.f.Ctx.Costs.AddLate(chunks, freed)
		st.f.Ctx.metricAdd("late_uploads", 1)
	}
}

// releasePending frees every in-flight reassembler — the late-arrival
// cutoff for stragglers whose round has moved on without them.
func (st *roundState) releasePending(charge bool) {
	for _, name := range st.uploaded {
		st.releaseUpload(name, charge)
	}
}

// ---- hierarchical (tree-mode) contribution -------------------------------

// initTrees builds this round's aggregation tree(s). A defended tree round
// partitions the scheduled cohort — not the final included set, which a
// streaming fold cannot wait for — so a client dropped mid-wave simply
// leaves its group's tree one contribution lighter rather than reshaping
// the partition. With zero drops the cohort partition and the flat path's
// included-set partition are the same list, which is what keeps the two
// modes bit-exact on clean rounds.
func (st *roundState) initTrees() error {
	ctx := st.f.Ctx
	fanout := ctx.Profile.Cohort.Fanout
	st.resolved = make(map[string]bool, len(st.active))
	if !st.defended() {
		tree, err := ctx.NewAggTree(fanout)
		if err != nil {
			return st.fail(PhaseGather, "", err)
		}
		st.tree = tree
		return nil
	}
	groups := AssignGroups(st.active, ctx.Profile.Defense.Groups, ctx.Profile.Seed, st.id)
	st.groupTrees = make([]*AggTree, len(groups))
	st.groupOf = make(map[string]int, len(st.active))
	for g, members := range groups {
		tree, err := ctx.NewAggTree(fanout)
		if err != nil {
			return st.fail(PhaseGather, "", err)
		}
		st.groupTrees[g] = tree
		for _, name := range members {
			st.groupOf[name] = g
		}
	}
	return nil
}

// contribute is the tree round's merged upload+gather phase: the cohort is
// admitted in bounded waves of MaxInflight clients, each completed upload is
// folded straight into its aggregation tree and its buffers released, and
// anything still unresolved when a wave's deadline expires is cut off and
// charged as late traffic. Coordinator memory is therefore bounded by the
// admission window plus the tree's fanout·depth live set — never by the
// cohort size.
func (st *roundState) contribute(grads [][]float64) error {
	if err := st.initTrees(); err != nil {
		return err
	}
	window := st.f.Ctx.Profile.Cohort.MaxInflight
	if window <= 0 || window > len(st.active) {
		window = len(st.active)
	}
	for base := 0; base < len(st.active); base += window {
		end := base + window
		if end > len(st.active) {
			end = len(st.active)
		}
		if err := st.uploadWave(st.active[base:end], grads); err != nil {
			return err
		}
		if err := st.gatherWave(); err != nil {
			return err
		}
	}
	// Every wave either folded or cut off its members; anything left pending
	// here is a protocol bug, but release defensively so buffers never leak.
	st.releasePending(true)
	st.sortIncluded()
	if len(st.included) < st.quorum {
		return st.fail(PhaseGather, "", fmt.Errorf("%d/%d uploads below quorum %d",
			len(st.included), len(st.active), st.quorum))
	}
	return nil
}

// gatherWave drains the current admission wave: it waits for every uploader
// not yet resolved, folding each completed batch into the tree the moment
// it reassembles. A wave deadline that expires cuts the stragglers off —
// their buffers are released and their traffic charged as late — instead of
// failing the round outright; quorum is judged once, over the whole cohort,
// at the end of contribute.
func (st *roundState) gatherWave() error {
	deadline := st.phaseDeadline()
	waiting := make(map[string]bool)
	for _, name := range st.uploaded {
		if !st.resolved[name] {
			waiting[name] = true
		}
	}
	for len(waiting) > 0 {
		msg, err := st.recv(ServerName, deadline)
		if err != nil {
			if flnet.IsTimeout(err) {
				return st.cutoff(waiting, err)
			}
			return st.fail(PhaseGather, "", err)
		}
		if msg.Kind == flnet.KindResume {
			st.answerResume(msg)
			continue
		}
		if msg.Round != st.id || (msg.Kind != "grads" && msg.Kind != "gradc") {
			st.stale++
			continue
		}
		if st.resolved[msg.From] || !waiting[msg.From] {
			st.dups++
			continue
		}
		switch msg.Kind {
		case "grads":
			cts, err := decodeCiphertexts(msg.Payload)
			if err != nil {
				return st.fail(PhaseGather, msg.From, fmt.Errorf("server decode: %w", err))
			}
			if err := st.foldContribution(msg.From, cts); err != nil {
				return err
			}
			delete(waiting, msg.From)
		case "gradc":
			cts, err := st.acceptChunk(msg)
			if err != nil {
				return err
			}
			if cts != nil {
				if err := st.foldContribution(msg.From, cts); err != nil {
					return err
				}
				delete(waiting, msg.From)
			}
		}
	}
	return nil
}

// foldContribution streams one client's completed upload into its
// aggregation tree and marks the client included. In cohort order the fold
// sequence matches arrival order, not canonical order — HE addition is
// commutative and the backend deterministic, so the root is byte-identical
// regardless; included is re-sorted to canonical order before it is
// journaled.
func (st *roundState) foldContribution(name string, cts []paillier.Ciphertext) error {
	tree := st.tree
	if st.defended() {
		tree = st.groupTrees[st.groupOf[name]]
	}
	if err := tree.Add(cts); err != nil {
		return st.fail(PhaseGather, name, err)
	}
	st.resolved[name] = true
	st.included = append(st.included, name)
	return nil
}

// cutoff resolves every still-waiting member of the current wave as late:
// buffers released, traffic charged, client dropped (within the quorum
// budget). The wave moves on; the cohort-wide quorum check happens at the
// end of contribute.
func (st *roundState) cutoff(waiting map[string]bool, cause error) error {
	for _, name := range st.uploaded {
		if !waiting[name] {
			continue
		}
		st.resolved[name] = true
		st.releaseUpload(name, true)
		if rerr := st.drop(PhaseGather, name, fmt.Errorf("upload missed the wave cutoff: %w", cause)); rerr != nil {
			return rerr
		}
	}
	return nil
}

// sortIncluded restores the canonical cohort order: tree folds happen in
// arrival order, but the journal, the report, and the grouped decryptors
// all speak canonical order, and the flat path's byte-identical journal
// records depend on it.
func (st *roundState) sortIncluded() {
	pos := make(map[string]int, len(st.active))
	for i, name := range st.active {
		pos[name] = i
	}
	sort.Slice(st.included, func(i, j int) bool {
		return pos[st.included[i]] < pos[st.included[j]]
	})
}

// observeLivePeak records a high-water candidate for the coordinator's
// simultaneously-live aggregate-path ciphertext count.
func (st *roundState) observeLivePeak(n int64) {
	if n > st.peakLive {
		st.peakLive = n
	}
	st.f.Ctx.metricMax("live_cts_peak", n)
}

// aggregate homomorphically sums the gathered batches in upload order and
// journals the result — the mid-round safe point. Once the aggregated
// record is durable, a coordinator crash no longer costs the gathered
// uploads: recovery resumes at the broadcast boundary with this payload.
// A defended round sums each seeded group through its own aggregation
// context instead and frames the G sub-aggregates (with their group sizes —
// the round's group metadata) into one grouped payload, journaled the same
// way, so crash recovery replays defended rounds unchanged.
func (st *roundState) aggregate() error {
	var err error
	switch {
	case st.treeMode() && st.defended():
		err = st.aggregateGroupedTree()
	case st.treeMode():
		err = st.aggregateTree()
	case st.defended():
		err = st.aggregateGrouped()
	default:
		err = st.aggregatePlain()
	}
	if err != nil {
		return err
	}
	st.aggDigest = PayloadDigest(st.aggPayload)
	return st.f.journalAppend(JournalRecord{
		Kind: EventAggregated, Round: st.id, Attempt: st.attempt,
		Cursor: st.f.Ctx.SeedCursor(), Members: st.included,
		Digest: st.aggDigest, Payload: st.aggPayload,
	})
}

// aggregatePlain is the undefended single-aggregate sum.
func (st *roundState) aggregatePlain() error {
	a := &st.f.arena
	batches := a.getBatches(len(st.included))
	live := int64(0)
	for _, name := range st.included {
		batches = append(batches, st.batches[name])
		live += int64(len(st.batches[name]))
	}
	// The flat path holds every gathered batch live at once — the O(K·width)
	// baseline the tree refactor exists to beat.
	st.observeLivePeak(live)
	agg, err := st.f.Ctx.AggregateCiphertexts(batches)
	if err != nil {
		a.putBatches(batches)
		return st.fail(PhaseGather, "", err)
	}
	st.aggPayload = st.f.encodeCts(agg)
	// Once the aggregate is framed the gathered batches are dead — but only
	// when the sum is a fresh slice: a single-batch aggregate aliases
	// batches[0], which must stay out of the pool.
	if len(batches) > 1 {
		for _, name := range st.included {
			a.putCts(st.batches[name])
			delete(st.batches, name)
		}
		a.putCts(agg)
	}
	a.putBatches(batches)
	return nil
}

// aggregateTree flushes the streamed aggregation tree to its root — the
// single partial every interior level has been folding toward — and frames
// it exactly like the flat path's aggregate, so broadcast, decrypt, journal
// replay, and digests are mode-blind.
func (st *roundState) aggregateTree() error {
	root, err := st.tree.Root()
	if err != nil {
		return st.fail(PhaseGather, "", err)
	}
	st.aggPayload = st.f.encodeCts(root)
	st.finishTree(st.tree.Stats())
	return nil
}

// aggregateGroupedTree flushes one tree per non-empty defense group and
// frames the G roots as a grouped payload, identical in shape to the flat
// defended path. Group sizes count the clients actually folded (the
// included set), so the decryptors' coverage cross-check still holds on
// degraded rounds.
func (st *roundState) aggregateGroupedTree() error {
	counts := make([]int, len(st.groupTrees))
	for _, name := range st.included {
		counts[st.groupOf[name]]++
	}
	var sizes []int
	var blobs [][]byte
	var merged TreeStats
	for g, tree := range st.groupTrees {
		if counts[g] == 0 {
			continue // every member dropped: no aggregate to ship for this group
		}
		root, err := tree.Root()
		if err != nil {
			return st.fail(PhaseGather, "", err)
		}
		sizes = append(sizes, counts[g])
		blobs = append(blobs, st.f.encodeCts(root))
		merged.merge(tree.Stats())
	}
	payload, err := flnet.EncodeGroupAgg(sizes, blobs)
	if err != nil {
		return st.fail(PhaseGather, "", err)
	}
	st.aggPayload = payload
	st.f.Ctx.metricAdd("defense_groups", int64(len(sizes)))
	st.finishTree(merged)
	return nil
}

// finishTree publishes one tree round's statistics: the report fields, the
// high-water gauges, and the per-level span breakdown.
func (st *roundState) finishTree(stats TreeStats) {
	st.treeStats = &stats
	st.observeLivePeak(stats.PeakLiveCts)
	st.f.Ctx.metricAdd("tree_folds", stats.Folds)
	st.f.Ctx.metricMax("tree_depth", int64(stats.Depth))
	st.treeSpans(stats)
}

// treeSpans records the tree's per-level HE time as stacked spans ending at
// the current sim-cost clock, so traces show where the hierarchy spent its
// fold time level by level.
func (st *roundState) treeSpans(stats TreeStats) {
	ctx := st.f.Ctx
	rec := ctx.Obs.Recorder()
	if rec == nil {
		return
	}
	var total time.Duration
	for _, ns := range stats.LevelSimNs {
		total += time.Duration(ns)
	}
	start := ctx.SimCost() - total
	for l, ns := range stats.LevelSimNs {
		d := time.Duration(ns)
		rec.Record(obs.Span{
			Phase: fmt.Sprintf("round%d.tree.level%d", st.id, l),
			Party: ctx.obsPrefix + ".fl",
			Lane:  "fl.tree",
			Start: start,
			Dur:   d,
		})
		start += d
	}
}

// aggregateGrouped partitions the reporting clients into the policy's seeded
// groups and HE-sums each group independently. Only the G group sums ever
// reach a decryptor — individual updates stay hidden inside their group's
// secure aggregate.
func (st *roundState) aggregateGrouped() error {
	policy := st.f.Ctx.Profile.Defense
	groups := AssignGroups(st.included, policy.Groups, st.f.Ctx.Profile.Seed, st.id)
	grouped := make([][][]paillier.Ciphertext, len(groups))
	sizes := make([]int, len(groups))
	live := int64(0)
	for g, members := range groups {
		sizes[g] = len(members)
		grouped[g] = make([][]paillier.Ciphertext, 0, len(members))
		for _, name := range members {
			grouped[g] = append(grouped[g], st.batches[name])
			live += int64(len(st.batches[name]))
		}
	}
	st.observeLivePeak(live)
	sums, err := st.f.Ctx.AggregateGrouped(grouped)
	if err != nil {
		return st.fail(PhaseGather, "", err)
	}
	blobs := make([][]byte, len(sums))
	for g, cts := range sums {
		blobs[g] = st.f.encodeCts(cts)
	}
	payload, err := flnet.EncodeGroupAgg(sizes, blobs)
	if err != nil {
		return st.fail(PhaseGather, "", err)
	}
	st.aggPayload = payload
	st.f.Ctx.metricAdd("defense_groups", int64(len(groups)))
	return nil
}

// restoreAggregate rehydrates the round from a journaled aggregate after a
// crash: uploads and aggregation already happened in the lost attempt, so
// the round verifies the payload against its digest and resumes at the
// broadcast boundary.
func (st *roundState) restoreAggregate() error {
	rp := st.resume
	if PayloadDigest(rp.Payload) != rp.Digest {
		return st.fail(PhaseBroadcast, "", fmt.Errorf("journaled aggregate fails its digest"))
	}
	st.included = append([]string(nil), rp.Included...)
	st.aggPayload = rp.Payload
	st.aggDigest = rp.Digest
	st.resumed = true
	st.f.Ctx.metricAdd("rounds_resumed", 1)
	return nil
}

// broadcast: the server returns the aggregate to every included client.
// Defended rounds broadcast under the grouped kind so decryptors parse the
// grouped frame; the resumed path inherits the kind from the (unchanged)
// profile, matching the journaled payload's framing.
func (st *roundState) broadcast() error {
	payload := st.aggPayload
	kind := "agg"
	if st.defended() {
		kind = flnet.KindGroupAgg
	}
	for _, name := range st.included {
		msg := flnet.Message{From: ServerName, To: name, Kind: kind, Round: st.id, Payload: payload}
		if err := st.send(msg); err != nil {
			if rerr := st.drop(PhaseBroadcast, name, err); rerr != nil {
				return rerr
			}
			continue
		}
		st.reached = append(st.reached, name)
		st.f.Ctx.RecordTransfer(msg.WireSize())
	}
	if len(st.reached) == 0 {
		return st.fail(PhaseBroadcast, "", fmt.Errorf("aggregate reached no client"))
	}
	return nil
}

// decrypt: each reached client consumes its aggregate copy; the first valid
// copy is decrypted once (all clients hold the private key in the Fig. 2
// layout, so one decryption keeps host time proportional without changing
// the protocol's traffic). A quorum aggregate of K of N clients is scaled by
// N/K so callers keep seeing a full-federation estimate.
func (st *roundState) decrypt() ([]float64, error) {
	// The deadline bounds waiting for traffic only: every copy is drained
	// before any HE decryption runs, so slow local compute can never expire
	// the clock on a client whose message already arrived.
	deadline := st.phaseDeadline()
	wantKind := "agg"
	if st.defended() {
		wantKind = flnet.KindGroupAgg
	}
	copies := make([]flnet.Message, 0, len(st.reached))
	for _, name := range st.reached {
		for {
			msg, err := st.recv(name, deadline)
			if err != nil {
				if rerr := st.drop(PhaseDecrypt, name, err); rerr != nil {
					return nil, rerr
				}
				break
			}
			if msg.Round != st.id || msg.Kind != wantKind {
				st.stale++
				continue // keep waiting for this round's aggregate
			}
			copies = append(copies, msg)
			break
		}
	}
	var result []float64
	for _, msg := range copies {
		if result != nil {
			break
		}
		if st.defended() {
			sums, derr, ferr := st.decryptGroupedCopy(msg)
			if ferr != nil {
				return nil, st.fail(PhaseDecrypt, msg.To, ferr)
			}
			if derr != nil {
				if rerr := st.drop(PhaseDecrypt, msg.To, derr); rerr != nil {
					return nil, rerr
				}
				continue
			}
			result = sums
			continue
		}
		cts, err := decodeCiphertexts(msg.Payload)
		if err != nil {
			if rerr := st.drop(PhaseDecrypt, msg.To, err); rerr != nil {
				return nil, rerr
			}
			continue
		}
		k := len(st.included)
		sums, err := st.f.Ctx.DecryptAggregated(cts, st.count, k)
		if err != nil {
			return nil, st.fail(PhaseDecrypt, msg.To, err)
		}
		if p := st.f.Ctx.Profile.Parties; k < p {
			scale := float64(p) / float64(k)
			for i := range sums {
				sums[i] *= scale
			}
		}
		result = sums
	}
	if result == nil {
		return nil, st.fail(PhaseDecrypt, "", fmt.Errorf("no client obtained the aggregate"))
	}
	return result, nil
}

// deriveGroups re-derives the defended round's group partition the way the
// aggregator built it: a flat round partitions the included set, a tree
// round partitions the scheduled cohort (the fold could not wait for the
// final included set) and then intersects each group with the clients that
// actually contributed, dropping groups that emptied out. Both are pure
// functions of journaled state — included members plus the resampled
// cohort, which broadcast-phase recovery cross-checks — so crash-recovered
// decryptors reach the identical partition.
func (st *roundState) deriveGroups() [][]string {
	ctx := st.f.Ctx
	policy := ctx.Profile.Defense
	if !st.treeMode() {
		return AssignGroups(st.included, policy.Groups, ctx.Profile.Seed, st.id)
	}
	in := make(map[string]bool, len(st.included))
	for _, name := range st.included {
		in[name] = true
	}
	var members [][]string
	for _, group := range AssignGroups(st.active, policy.Groups, ctx.Profile.Seed, st.id) {
		var kept []string
		for _, name := range group {
			if in[name] {
				kept = append(kept, name)
			}
		}
		if len(kept) > 0 {
			members = append(members, kept)
		}
	}
	return members
}

// decryptGroupedCopy decrypts one grouped-aggregate copy — only the G group
// sums are ever decrypted — and runs the robust combiner over the group
// means. The combiner is a pure function of the decrypted groups, so every
// decrypting client reaches the identical defended result. A payload that
// fails to parse or contradicts the seeded assignment returns a non-nil
// decode error (the copy is dropped, the next one is tried); decryption and
// combiner failures are fatal to the round.
func (st *roundState) decryptGroupedCopy(msg flnet.Message) (result []float64, decodeErr, fatalErr error) {
	ctx := st.f.Ctx
	policy := ctx.Profile.Defense
	sizes, blobs, err := flnet.DecodeGroupAgg(msg.Payload)
	if err != nil {
		return nil, err, nil
	}
	// Every decryptor re-derives the seeded partition — a pure function of
	// journaled round state — and checks the frame's group metadata against
	// it, so a corrupted frame cannot silently reshape the groups.
	members := st.deriveGroups()
	if len(members) != len(sizes) {
		return nil, fmt.Errorf("fl: frame carries %d groups, assignment says %d", len(sizes), len(members)), nil
	}
	covered := 0
	for g, m := range members {
		if len(m) != sizes[g] {
			return nil, fmt.Errorf("fl: group %d carries %d contributors, assignment says %d", g, sizes[g], len(m)), nil
		}
		covered += sizes[g]
	}
	if covered != len(st.included) {
		return nil, fmt.Errorf("fl: groups cover %d clients, round included %d", covered, len(st.included)), nil
	}
	groups := make([]GroupUpdate, len(blobs))
	for g, blob := range blobs {
		cts, err := decodeCiphertexts(blob)
		if err != nil {
			return nil, fmt.Errorf("group %d: %w", g, err), nil
		}
		sum, err := ctx.DecryptAggregated(cts, st.count, sizes[g])
		if err != nil {
			return nil, nil, fmt.Errorf("group %d: %w", g, err)
		}
		for i := range sum {
			sum[i] /= float64(sizes[g])
		}
		groups[g] = GroupUpdate{Mean: sum, Size: sizes[g]}
	}
	agg, err := policy.NewAggregator()
	if err != nil {
		return nil, nil, err
	}
	var combined []float64
	var stats CombineStats
	if err := st.phaseSpan("combine", func() error {
		var cerr error
		combined, stats, cerr = agg.Combine(groups)
		return cerr
	}); err != nil {
		return nil, nil, err
	}
	// The robust combine estimates the per-client mean update; scale it to
	// the full-federation sum estimate the protocol has always returned
	// (identical to the plain path's N/K-scaled sum under FedAvg).
	for i := range combined {
		combined[i] *= float64(ctx.Profile.Parties)
	}
	st.defense = &DefenseReport{
		Combiner:     agg.Name(),
		Groups:       len(groups),
		GroupSizes:   sizes,
		GroupMembers: members,
		Stats:        stats,
	}
	return combined, nil, nil
}

// encodeCiphertexts frames a ciphertext batch for the wire.
func encodeCiphertexts(cts []paillier.Ciphertext) []byte {
	nats := make([]mpint.Nat, len(cts))
	for i, c := range cts {
		nats[i] = c.C
	}
	return flnet.EncodeNats(nats)
}

// encodeCts is encodeCiphertexts through the federation's wire arena: the
// nat scratch is pooled, the returned payload is always fresh bytes (the
// transport may hold a delivered payload beyond the round).
func (f *Federation) encodeCts(cts []paillier.Ciphertext) []byte {
	nats := f.arena.getNats(len(cts))
	for _, c := range cts {
		nats = append(nats, c.C)
	}
	payload := flnet.EncodeNats(nats)
	f.arena.putNats(nats)
	return payload
}

// decodeCts parses a batch into an arena-pooled ciphertext slice; the slice
// returns to the pool once the round's aggregate retires it.
func (f *Federation) decodeCts(b []byte) ([]paillier.Ciphertext, error) {
	nats, err := flnet.DecodeNatsInto(f.arena.getNats(0), b)
	if err != nil {
		return nil, err
	}
	cts := f.arena.getCts(len(nats))
	for _, n := range nats {
		cts = append(cts, paillier.Ciphertext{C: n})
	}
	f.arena.putNats(nats)
	return cts, nil
}

// decodeCiphertexts parses a batch framed by encodeCiphertexts.
func decodeCiphertexts(b []byte) ([]paillier.Ciphertext, error) {
	nats, err := flnet.DecodeNats(b)
	if err != nil {
		return nil, err
	}
	cts := make([]paillier.Ciphertext, len(nats))
	for i, n := range nats {
		cts[i] = paillier.Ciphertext{C: n}
	}
	return cts, nil
}
