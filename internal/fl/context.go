package fl

import (
	"fmt"
	"strings"
	"time"

	"flbooster/internal/batch"
	"flbooster/internal/flnet"
	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/obs"
	"flbooster/internal/paillier"
	"flbooster/internal/quant"
)

// Context is one acceleration configuration instantiated: the Paillier key,
// the HE backend the profile selects, the encoding-quantization and batch-
// compression layers, the (possibly nil) GPU device, the link model, and the
// cost tracker every operation reports into. It implements the pipelined
// processing of Fig. 4.
type Context struct {
	Profile Profile
	Key     *paillier.PrivateKey
	Backend paillier.Backend
	Quant   *quant.Quantizer
	Packer  *batch.Packer       // nil when batch compression is off
	Device  *gpu.Device         // nil on CPU profiles and device-set profiles
	DevSet  *gpu.DeviceSet      // non-nil when Profile.Devices >= 1: the sharded fleet
	Checked *ghe.CheckedEngine  // nil on CPU and device-set profiles; the resilient GPU-HE path
	Sharded *ghe.ShardedEngine  // non-nil when DevSet is: the sharded vector engine
	Pool    *paillier.NoncePool // nil unless Profile.NoncePool > 0 on a GPU profile
	Link    flnet.Link
	Costs   *Costs
	// Obs is the observability bundle (span recorder + metrics registry)
	// attached via AttachObs or Profile.Observe; nil means tracing/metrics
	// are off and every instrumentation call is a no-op.
	Obs       *obs.Obs
	obsPrefix string
	seed      uint64
}

// NewContext builds a context from a profile, generating a fresh key pair
// from the profile's seed.
func NewContext(p Profile) (*Context, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ctx := &Context{
		Profile: p,
		Link:    flnet.FATEEffectiveLink(),
		Costs:   &Costs{},
		seed:    p.Seed,
	}
	q, err := quant.New(p.GradBound, p.RBits, p.Parties)
	if err != nil {
		return nil, err
	}
	ctx.Quant = q
	if p.UseBatch {
		pk, err := batch.New(q, p.KeyBits)
		if err != nil {
			return nil, err
		}
		ctx.Packer = pk
	}
	if p.UseGPU && p.Devices >= 1 {
		set, err := gpu.NewDeviceSet(p.Device, p.FineRM, p.Devices)
		if err != nil {
			return nil, err
		}
		if p.Faults.Inject.Enabled() {
			// Each member fails independently: derive a distinct injector seed
			// per device so a profile-driven fault pattern does not kill the
			// whole fleet in lockstep.
			for i := 0; i < set.Size(); i++ {
				cfg := p.Faults.Inject
				cfg.Seed += uint64(i) * 0x9e3779b97f4a7c15
				set.Device(i).SetFaultInjector(gpu.NewFaultInjector(cfg))
			}
		}
		sharded, err := ghe.NewShardedEngine(set, p.Faults.Check)
		if err != nil {
			return nil, err
		}
		backend, err := paillier.NewGPUBackend(sharded)
		if err != nil {
			return nil, err
		}
		ctx.DevSet = set
		ctx.Sharded = sharded
		ctx.Backend = backend
	} else if p.UseGPU {
		dev, err := gpu.New(p.Device, p.FineRM)
		if err != nil {
			return nil, err
		}
		if p.Faults.Inject.Enabled() {
			dev.SetFaultInjector(gpu.NewFaultInjector(p.Faults.Inject))
		}
		eng, err := ghe.NewEngine(dev)
		if err != nil {
			return nil, err
		}
		// All GPU profiles run through the checked engine: launch failures
		// retry with backoff, sampled results are verified, and a Failed
		// device transparently fails over to bit-exact host execution.
		checked, err := ghe.NewCheckedEngine(eng, p.Faults.Check)
		if err != nil {
			return nil, err
		}
		backend, err := paillier.NewGPUBackend(checked)
		if err != nil {
			return nil, err
		}
		ctx.Device = dev
		ctx.Checked = checked
		ctx.Backend = backend
	} else {
		ctx.Backend = paillier.CPUBackend{}
	}
	keyGen := paillier.GenerateKey
	if p.ClassicKey {
		// A classic random generator g makes the g^m term a full modular
		// exponentiation — the configuration where fixed-base precomputation
		// has something to accelerate on the encrypt path.
		keyGen = paillier.GenerateKeyClassic
	}
	key, err := keyGen(mpint.NewRNG(p.Seed), p.KeyBits)
	if err != nil {
		return nil, fmt.Errorf("fl: key generation: %w", err)
	}
	ctx.Key = key
	if p.Observe {
		ctx.AttachObs(obs.New(p.Seed), string(p.System))
	}
	if p.UseGPU && p.NoncePool > 0 {
		var eng ghe.StreamEngine = ctx.Checked
		if ctx.Sharded != nil {
			eng = ctx.Sharded
		}
		pool, err := paillier.NewNoncePool(&key.PublicKey, eng, 0)
		if err != nil {
			return nil, err
		}
		if p.Chunk > 0 {
			pool.Chunk = p.Chunk
		}
		ctx.Pool = pool
		ctx.Backend.(*paillier.GPUBackend).Pool = pool
		if _, err := ctx.PrefillNonces(p.NoncePool); err != nil {
			return nil, fmt.Errorf("fl: nonce prefill: %w", err)
		}
	}
	return ctx, nil
}

// PrefillNonces retargets the nonce pool at the seed the next HE batch will
// draw and precomputes count rⁿ noise terms offline through the device
// pipeline, charged as SimPrecomputeTime rather than online sim-time — the
// "idle between rounds" work of the precompute layer. NewContext calls it
// once so the first encryption batch starts warm; callers may re-arm it
// between rounds. Returns the reclassified precompute time; a no-op without
// a pool.
func (c *Context) PrefillNonces(count int) (time.Duration, error) {
	if c.Pool == nil || count <= 0 {
		return 0, nil
	}
	c.Pool.Reseed(c.peekSeed())
	return c.Pool.Prefill(count)
}

// armPool re-arms the nonce pool for the HE batch about to run: retarget at
// the seed the batch will draw (the pool drops stale pairs from the previous
// batch) and top up to min(Profile.NoncePool, pts) noise terms. Without this
// every batch after the NewContext prefill silently ran unpooled — the pool
// only warms one seed, and nextSeed advances per batch. Called by both
// encrypt paths just before they consume the seed; a no-op without a pool.
func (c *Context) armPool(pts int) error {
	if c.Pool == nil || pts <= 0 {
		return nil
	}
	want := c.Profile.NoncePool
	if pts < want {
		want = pts
	}
	if c.Pool.Seed() != c.peekSeed() {
		c.Pool.Reseed(c.peekSeed())
	}
	_, err := c.Pool.Prefill(want)
	return err
}

// sanitizeLabel makes a label safe as a metric-name and trace-party segment.
func sanitizeLabel(label string) string {
	return strings.ReplaceAll(strings.TrimSpace(label), " ", "_")
}

// AttachObs wires the observability bundle into the context and its layers:
// the cost accumulator mirrors counters into o's registry under
// "fl.<label>", and the device (if any) records sim-time spans under the
// party "<label>.gpu". A nil bundle detaches. Labels distinguish contexts
// sharing one bundle; an empty label falls back to the profile's system.
func (c *Context) AttachObs(o *obs.Obs, label string) {
	if label == "" {
		label = string(c.Profile.System)
	}
	label = sanitizeLabel(label)
	c.Obs = o
	c.obsPrefix = label
	c.Costs.Observe(o.Metrics(), "fl."+label)
	if c.Device != nil {
		c.Device.SetRecorder(o.Recorder(), label+".gpu")
	}
	if c.DevSet != nil {
		c.DevSet.SetRecorder(o.Recorder(), label+".gpu")
	}
}

// ObsLabel returns the sanitized label AttachObs installed ("" when
// unattached).
func (c *Context) ObsLabel() string { return c.obsPrefix }

// PublishMetrics pulls the current layer statistics — device, checked
// engine — into the attached registry as absolute counters/gauges under
// "gpu.<label>" and "ghe.<label>". No-op without an attached bundle.
func (c *Context) PublishMetrics() {
	if c.Obs == nil {
		return
	}
	reg := c.Obs.Metrics()
	if c.Device != nil {
		c.Device.PublishMetrics(reg, "gpu."+c.obsPrefix)
	}
	if c.DevSet != nil {
		c.DevSet.PublishMetrics(reg, "gpu."+c.obsPrefix)
	}
	if c.Checked != nil {
		c.Checked.PublishMetrics(reg, "ghe."+c.obsPrefix)
	}
	if c.Sharded != nil {
		c.Sharded.PublishMetrics(reg, "ghe."+c.obsPrefix)
	}
	if c.Pool != nil {
		// "pool." sits outside the reconciled "fl.<label>" cost-mirror set:
		// pool traffic is substrate bookkeeping, not a protocol cost.
		st := c.Pool.Stats()
		pre := "pool." + c.obsPrefix + "."
		reg.Set(pre+"hits", st.Hits)
		reg.Set(pre+"misses", st.Misses)
		reg.Set(pre+"refills", st.Refills)
		reg.Set(pre+"precomputed", st.Precomputed)
		reg.Set(pre+"refill_sim_ns", int64(st.RefillSim))
		reg.SetGauge(pre+"ready", float64(c.Pool.Ready()))
	}
}

// ReconcileObs asserts the metrics registry's mirrored cost counters equal
// the CostSnapshot — the invariant that event-time metric publication and
// the accumulator never drift. Call at a quiescent point (no round in
// flight). Returns nil when unattached.
func (c *Context) ReconcileObs() error {
	if c.Obs == nil {
		return nil
	}
	reg := c.Obs.Metrics()
	s := c.Costs.Snapshot()
	pre := "fl." + c.obsPrefix + "."
	checks := []struct {
		name string
		want int64
	}{
		{"he_ops", s.HEOps},
		{"instances", s.Instances},
		{"he_sim_ns", int64(s.HESim)},
		{"comm_msgs", s.CommMsgs},
		{"comm_bytes", s.CommBytes},
		{"comm_sim_ns", int64(s.CommSim)},
		{"retry_msgs", s.RetryMsgs},
		{"pipe_chunks", s.PipeChunks},
		{"pipe_seq_ns", int64(s.PipeSeqSim)},
		{"pipe_ns", int64(s.PipeSim)},
		{"late_chunks", s.LateChunks},
		{"late_bytes", s.LateBytes},
		{"plainvals", s.Plainvals},
		{"ciphertexts", s.Ciphertexts},
		{"encode_sim_ns", int64(s.EncodeSim)},
		{"encode_vals", s.EncodeVals},
		{"comp_sim_ns", int64(s.CompSim)},
	}
	for _, ck := range checks {
		if got := reg.Counter(pre + ck.name); got != ck.want {
			return fmt.Errorf("fl: metrics/cost drift: %s%s = %d, snapshot says %d", pre, ck.name, got, ck.want)
		}
	}
	return c.reconcileDevSet(reg)
}

// reconcileDevSet asserts the published per-device metric rows sum to the
// device set's aggregate row for every additive counter — the invariant that
// sharded dispatch never loses or double-counts device work. Publishes first
// so the rows reflect current stats; a no-op on single-device and CPU
// profiles.
func (c *Context) reconcileDevSet(reg *obs.Registry) error {
	if c.DevSet == nil {
		return nil
	}
	c.PublishMetrics()
	pre := "gpu." + c.obsPrefix
	additive := []string{
		"launches", "threads", "warps", "bytes_h2d", "bytes_d2h",
		"sim_transfer_ns", "sim_compute_ns", "sim_fault_ns",
		"sim_precompute_ns", "launch_failures", "watchdog_trips",
	}
	for _, name := range additive {
		var sum int64
		for i := 0; i < c.DevSet.Size(); i++ {
			sum += reg.Counter(fmt.Sprintf("%s.dev%d.%s", pre, i, name))
		}
		if agg := reg.Counter(pre + "." + name); agg != sum {
			return fmt.Errorf("fl: device-set drift: %s.%s = %d, per-device rows sum to %d", pre, name, agg, sum)
		}
	}
	return nil
}

// SimCost returns the context's sim cost clock: modelled HE, wire, encode,
// and model-compute time accrued so far. Round phases are stamped on this
// clock, so spans from the cost-model path line up with the device and
// pipeline spans.
func (c *Context) SimCost() time.Duration {
	s := c.Costs.Snapshot()
	return s.HESim + s.CommSim + s.EncodeSim + s.CompSim
}

// metricAdd bumps one protocol counter under the context's "fl.<label>."
// prefix; a no-op without an attached bundle. These counters sit outside
// the cost-mirror set, so they survive Costs.Reset and are not reconciled.
func (c *Context) metricAdd(name string, delta int64) {
	if c.Obs == nil || delta == 0 {
		return
	}
	c.Obs.Metrics().Add("fl."+c.obsPrefix+"."+name, delta)
}

// metricMax raises one high-water counter under the context's "fl.<label>."
// prefix; a no-op without an attached bundle. Like metricAdd these sit
// outside the reconciled cost-mirror set.
func (c *Context) metricMax(name string, v int64) {
	if c.Obs == nil {
		return
	}
	c.Obs.Metrics().SetMax("fl."+c.obsPrefix+"."+name, v)
}

// SeedCursor returns the nonce-stream cursor: the state nextSeed advances
// once per HE batch. Journaling it at round boundaries is what makes crash
// recovery bit-exact — a recovered coordinator restores the cursor and every
// re-encrypted batch draws the same nonce stream the lost attempt would have.
func (c *Context) SeedCursor() uint64 { return c.seed }

// RestoreSeedCursor rewinds (or fast-forwards) the nonce-stream cursor to a
// journaled position and re-arms the nonce pool, if any, at the batch the
// cursor implies.
func (c *Context) RestoreSeedCursor(cursor uint64) {
	c.seed = cursor
	if c.Pool != nil {
		c.Pool.Reseed(c.peekSeed())
	}
}

// nextSeed derives a fresh nonce-stream seed per HE batch.
func (c *Context) nextSeed() uint64 {
	c.seed = c.peekSeed()
	return c.seed
}

// peekSeed returns the seed nextSeed will hand the next HE batch without
// consuming it, so the pool can warm exactly that batch's nonce stream.
func (c *Context) peekSeed() uint64 {
	return c.seed*6364136223846793005 + 1442695040888963407
}

// simDelta reads the device's modelled time before/after a batch. For CPU
// profiles the modelled time equals the measured wall time.
func (c *Context) simBase() time.Duration {
	switch {
	case c.Device != nil:
		return c.Device.Stats().SimTime()
	case c.DevSet != nil:
		return c.DevSet.SimTime()
	}
	return 0
}

func (c *Context) simSince(base time.Duration, wall time.Duration) time.Duration {
	switch {
	case c.Device != nil:
		return c.Device.Stats().SimTime() - base
	case c.DevSet != nil:
		return c.DevSet.SimTime() - base
	}
	return wall
}

// EncodePlaintexts converts a gradient vector into HE plaintexts: always
// quantized (Encoding-Quantization layer); packed n-per-plaintext when batch
// compression is on, one-per-plaintext otherwise.
func (c *Context) EncodePlaintexts(grads []float64) ([]mpint.Nat, error) {
	vals := c.Quant.QuantizeVec(grads)
	if c.Packer != nil {
		return c.Packer.Pack(vals)
	}
	out := make([]mpint.Nat, len(vals))
	for i, v := range vals {
		out[i] = mpint.FromUint64(v)
	}
	return out, nil
}

// DecodeAggregates inverts EncodePlaintexts for aggregated sums over
// `parties` contributions, producing `count` gradient values.
func (c *Context) DecodeAggregates(pts []mpint.Nat, count, parties int) ([]float64, error) {
	if c.Packer != nil {
		return c.Packer.DecodeAggregated(pts, count, parties)
	}
	if len(pts) != count {
		return nil, fmt.Errorf("fl: %d plaintexts for %d values", len(pts), count)
	}
	sums := make([]uint64, count)
	for i, pt := range pts {
		v, ok := pt.Uint64()
		if !ok {
			return nil, fmt.Errorf("fl: aggregated slot %d overflows 64 bits", i)
		}
		sums[i] = v
	}
	return c.Quant.DequantizeSumVec(sums, parties)
}

// PlaintextCount returns how many HE plaintexts carry n gradient values
// under the context's encoding (packed or one-per-value).
func (c *Context) PlaintextCount(n int) int {
	if n <= 0 {
		return 0
	}
	if c.Packer != nil {
		return c.Packer.NumPlaintexts(n)
	}
	return n
}

// EncryptGradientsStream runs the client-side encryption phase chunked:
// the gradient vector is quantized once, then packed and encrypted
// Profile.Chunk plaintexts at a time through the backend's streaming
// session. Chunk boundaries align to plaintext groups, and the nonce stream
// is indexed by global position, so the concatenated ciphertexts are
// bit-exact with the whole-batch EncryptGradients path. emit receives each
// chunk in order with its sequential HE sim cost; an emit error stops the
// stream and is returned. An empty gradient vector emits one empty chunk so
// protocol consumers still see the upload.
func (c *Context) EncryptGradientsStream(grads []float64, emit func(index int, cts []paillier.Ciphertext, heSim time.Duration) error) error {
	sb, ok := c.Backend.(paillier.StreamBackend)
	if !ok {
		return fmt.Errorf("fl: backend %s does not support streamed encryption", c.Backend.Name())
	}
	totalPts := c.PlaintextCount(len(grads))
	chunk := c.Profile.Chunk
	if chunk <= 0 || chunk > totalPts {
		chunk = totalPts
	}
	if totalPts == 0 {
		return emit(0, nil, 0)
	}
	encStart := time.Now()
	vals := c.Quant.QuantizeVec(grads)
	c.Costs.AddEncode(time.Since(encStart), encodeSim(len(grads)), int64(len(grads)))
	slots := 1
	if c.Packer != nil {
		slots = c.Packer.Slots()
	}
	if err := c.armPool(totalPts); err != nil {
		return err
	}
	sess, err := sb.BeginEncrypt(&c.Key.PublicKey, c.nextSeed())
	if err != nil {
		return err
	}
	defer sess.Close()
	var totalCts int64
	for index, base := 0, 0; base < totalPts; index, base = index+1, base+chunk {
		endPt := base + chunk
		if endPt > totalPts {
			endPt = totalPts
		}
		lo, hi := base*slots, endPt*slots
		if hi > len(vals) {
			hi = len(vals)
		}
		var pts []mpint.Nat
		if c.Packer != nil {
			// Pack works in independent groups of `slots` values, so packing
			// an aligned sub-slice reproduces the whole-batch plaintexts.
			pts, err = c.Packer.Pack(vals[lo:hi])
			if err != nil {
				return err
			}
		} else {
			pts = make([]mpint.Nat, hi-lo)
			for i, v := range vals[lo:hi] {
				pts[i] = mpint.FromUint64(v)
			}
		}
		start := time.Now()
		cts, seqSim, err := sess.Next(pts)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		heSim := seqSim
		if c.Device == nil && c.DevSet == nil {
			heSim = wall
		}
		c.Costs.AddHE(wall, heSim, int64(len(cts)), int64(hi-lo))
		totalCts += int64(len(cts))
		if err := emit(index, cts, heSim); err != nil {
			return err
		}
	}
	c.Costs.AddCompression(int64(len(grads)), totalCts)
	return nil
}

// EncryptGradients runs the full client-side encryption phase (steps ①–④ of
// Fig. 4): encode, quantize, pack, encrypt. Costs are charged to the HE
// component; the plainval/ciphertext counts feed the compression ratio.
// With a positive Profile.Chunk the phase runs through the streamed,
// device-pipelined path and returns the concatenated (bit-exact) result.
func (c *Context) EncryptGradients(grads []float64) ([]paillier.Ciphertext, error) {
	if c.Profile.Chunk > 0 {
		var out []paillier.Ciphertext
		if err := c.EncryptGradientsStream(grads, func(_ int, cts []paillier.Ciphertext, _ time.Duration) error {
			out = append(out, cts...)
			return nil
		}); err != nil {
			return nil, err
		}
		return out, nil
	}
	encStart := time.Now()
	pts, err := c.EncodePlaintexts(grads)
	if err != nil {
		return nil, err
	}
	c.Costs.AddEncode(time.Since(encStart), encodeSim(len(grads)), int64(len(grads)))
	if err := c.armPool(len(pts)); err != nil {
		return nil, err
	}
	base := c.simBase()
	start := time.Now()
	cts, err := c.Backend.EncryptVec(&c.Key.PublicKey, pts, c.nextSeed())
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	c.Costs.AddHE(wall, c.simSince(base, wall), int64(len(cts)), int64(len(grads)))
	c.Costs.AddCompression(int64(len(grads)), int64(len(cts)))
	return cts, nil
}

// AggregateCiphertexts homomorphically sums per-party ciphertext batches
// (the server side of Fig. 2). All batches must have equal length.
func (c *Context) AggregateCiphertexts(batches [][]paillier.Ciphertext) ([]paillier.Ciphertext, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("fl: no batches to aggregate")
	}
	acc := batches[0]
	for i := 1; i < len(batches); i++ {
		if len(batches[i]) != len(acc) {
			return nil, fmt.Errorf("fl: batch %d has %d ciphertexts, want %d", i, len(batches[i]), len(acc))
		}
		base := c.simBase()
		start := time.Now()
		sum, err := c.Backend.AddVec(&c.Key.PublicKey, acc, batches[i])
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		c.Costs.AddHE(wall, c.simSince(base, wall), int64(len(acc)), int64(len(acc)))
		acc = sum
	}
	return acc, nil
}

// AggregateGrouped homomorphically sums each group's per-party ciphertext
// batches through an independent paillier.Accumulator — one aggregation
// context per secure-aggregation group, so group sub-aggregates never mix.
// Every fold is charged to the HE component exactly like the single-group
// AggregateCiphertexts path.
func (c *Context) AggregateGrouped(groups [][][]paillier.Ciphertext) ([][]paillier.Ciphertext, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("fl: no groups to aggregate")
	}
	out := make([][]paillier.Ciphertext, len(groups))
	for g, batches := range groups {
		acc, err := paillier.NewAccumulator(&c.Key.PublicKey, c.Backend)
		if err != nil {
			return nil, err
		}
		for i, cts := range batches {
			if acc.Batches() == 0 {
				if err := acc.Add(cts); err != nil {
					return nil, fmt.Errorf("fl: group %d batch %d: %w", g, i, err)
				}
				continue
			}
			base := c.simBase()
			start := time.Now()
			if err := acc.Add(cts); err != nil {
				return nil, fmt.Errorf("fl: group %d batch %d: %w", g, i, err)
			}
			wall := time.Since(start)
			c.Costs.AddHE(wall, c.simSince(base, wall), int64(len(cts)), int64(len(cts)))
		}
		sum, err := acc.Sum()
		if err != nil {
			return nil, fmt.Errorf("fl: group %d: %w", g, err)
		}
		out[g] = sum
	}
	return out, nil
}

// NewAggTree builds a hierarchical aggregation tree over this context's key
// and backend, with the cost model wired in: every fold into a non-empty
// level accumulator is charged to the HE component exactly like the flat
// AggregateCiphertexts path (the first child of a level is adopted by copy,
// not HE-added — mirroring AggregateGrouped), and every partial forwarded up
// a level is framed (flnet partial-aggregate framing) and charged to the
// communication component as interior-link traffic.
func (c *Context) NewAggTree(fanout int) (*AggTree, error) {
	newAcc := func() (*paillier.Accumulator, error) {
		return paillier.NewAccumulator(&c.Key.PublicKey, c.Backend)
	}
	fold := func(acc *paillier.Accumulator, cts []paillier.Ciphertext) (time.Duration, error) {
		if acc.Batches() == 0 {
			return 0, acc.Add(cts)
		}
		base := c.simBase()
		start := time.Now()
		if err := acc.Add(cts); err != nil {
			return 0, err
		}
		wall := time.Since(start)
		sim := c.simSince(base, wall)
		c.Costs.AddHE(wall, sim, int64(len(cts)), int64(len(cts)))
		return sim, nil
	}
	forward := func(level int, cts []paillier.Ciphertext) {
		payload := flnet.EncodePartialAgg(uint32(level), encodeCiphertexts(cts))
		c.RecordTransfer(int64(len(payload)))
		c.metricAdd("tree_partials", 1)
	}
	return NewAggTree(fanout, newAcc, fold, forward)
}

// DecryptAggregated runs the decryption phase (steps ⑤–⑨ of Fig. 4) for an
// aggregate of `parties` contributions carrying `count` gradient values.
func (c *Context) DecryptAggregated(cts []paillier.Ciphertext, count, parties int) ([]float64, error) {
	base := c.simBase()
	start := time.Now()
	pts, err := c.Backend.DecryptVec(c.Key, cts)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	c.Costs.AddHE(wall, c.simSince(base, wall), int64(len(cts)), int64(count))
	return c.DecodeAggregates(pts, count, parties)
}

// MulPlainCiphertexts multiplies each ciphertext by a plaintext scalar — the
// E(g)·x step vertical models use. Scalars are quantized values.
func (c *Context) MulPlainCiphertexts(cts []paillier.Ciphertext, scalars []mpint.Nat) ([]paillier.Ciphertext, error) {
	base := c.simBase()
	start := time.Now()
	out, err := c.Backend.MulPlainVec(&c.Key.PublicKey, cts, scalars)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	c.Costs.AddHE(wall, c.simSince(base, wall), int64(len(cts)), int64(len(cts)))
	return out, nil
}

// CiphertextWireBytes is the encoded size of a ciphertext batch on the wire.
func (c *Context) CiphertextWireBytes(n int) int64 {
	return int64(n) * (int64(c.Key.CiphertextBytes()) + 4)
}

// RecordTransfer charges one message of n bytes to the communication
// component through the link model.
func (c *Context) RecordTransfer(n int64) {
	c.Costs.AddComm(c.Link.TransferTime(n), n)
}

// TrackOther measures fn as model-computation ("other") time.
func (c *Context) TrackOther(fn func()) {
	start := time.Now()
	fn()
	c.Costs.AddOther(time.Since(start))
}

// Utilization reports the device's average SM utilization (0 for CPU
// profiles) — the Fig. 6 reading.
func (c *Context) Utilization() float64 {
	switch {
	case c.Device != nil:
		return c.Device.Stats().AvgUtilization()
	case c.DevSet != nil:
		return c.DevSet.AvgUtilization()
	}
	return 0
}

// FaultReport aggregates the context's device fault, retry, and fallback
// counters — the resilience anatomy benchmarks print alongside sim/wall
// timings. CPU profiles report a healthy zero-valued record.
type FaultReport struct {
	// Health is the device health state ("healthy" when no device exists).
	Health gpu.HealthState
	// Injected counts the faults the injector decided, by kind.
	Injected gpu.FaultStats
	// LaunchFailures and WatchdogTrips are the device-observed failures.
	LaunchFailures int64
	WatchdogTrips  int64
	// SimFaultTime is the modelled time lost to faults (watchdog windows,
	// retry backoff, degraded host execution).
	SimFaultTime time.Duration
	// Checked is the checked-execution layer's retry/verify/fallback view.
	Checked ghe.CheckedStats
}

// FaultReport returns the current fault/resilience counters. Multi-device
// profiles report fleet-wide sums: the worst member health, every member's
// injector decisions, and the sharded engine's checked-layer view.
func (c *Context) FaultReport() FaultReport {
	if c.DevSet != nil {
		ds := c.DevSet.StatsSum()
		rep := FaultReport{
			Health:         ds.Health,
			LaunchFailures: ds.LaunchFailures,
			WatchdogTrips:  ds.WatchdogTrips,
			SimFaultTime:   ds.SimFaultTime,
		}
		for i := 0; i < c.DevSet.Size(); i++ {
			if fi := c.DevSet.Device(i).Injector(); fi != nil {
				fs := fi.Stats()
				rep.Injected.Launches += fs.Launches
				rep.Injected.Aborts += fs.Aborts
				rep.Injected.Corruptions += fs.Corruptions
				rep.Injected.Stalls += fs.Stalls
				rep.Injected.OOMs += fs.OOMs
				rep.Injected.Kills += fs.Kills
			}
		}
		if c.Sharded != nil {
			rep.Checked = c.Sharded.Stats()
		}
		return rep
	}
	if c.Device == nil {
		return FaultReport{Health: gpu.DeviceHealthy}
	}
	ds := c.Device.Stats()
	rep := FaultReport{
		Health:         ds.Health,
		LaunchFailures: ds.LaunchFailures,
		WatchdogTrips:  ds.WatchdogTrips,
		SimFaultTime:   ds.SimFaultTime,
	}
	if fi := c.Device.Injector(); fi != nil {
		rep.Injected = fi.Stats()
	}
	if c.Checked != nil {
		rep.Checked = c.Checked.Stats()
	}
	return rep
}
