package fl

import (
	"testing"

	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

// poolGrads is a small gradient vector for pool tests.
func poolGrads(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i%7)/10 - 0.3
	}
	return out
}

// TestNoncePoolBitExactWithUnpooled: the NoncePool knob must not change a
// single ciphertext — same profile, same seed chain, with and without the
// pool.
func TestNoncePoolBitExactWithUnpooled(t *testing.T) {
	grads := poolGrads(40)
	plain := testProfile(SystemHAFLO)
	ctx, err := NewContext(plain)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ctx.EncryptGradients(grads)
	if err != nil {
		t.Fatal(err)
	}

	pooled := testProfile(SystemHAFLO)
	pooled.NoncePool = 64
	pctx, err := NewContext(pooled)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pctx.EncryptGradients(grads)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pooled batch has %d ciphertexts, want %d", len(got), len(want))
	}
	for i := range want {
		if mpint.Cmp(got[i].C, want[i].C) != 0 {
			t.Fatalf("ciphertext %d differs under the pool", i)
		}
	}
	if st := pctx.Pool.Stats(); st.Hits == 0 {
		t.Error("prefilled pool served nothing")
	}
}

// TestNoncePoolChunkedBitExact: pool + chunked streaming still concatenates
// to the whole-batch result.
func TestNoncePoolChunkedBitExact(t *testing.T) {
	grads := poolGrads(30)
	whole := testProfile(SystemFLBooster)
	wctx, err := NewContext(whole)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wctx.EncryptGradients(grads)
	if err != nil {
		t.Fatal(err)
	}

	chunked := testProfile(SystemFLBooster)
	chunked.Chunk = 3
	chunked.NoncePool = 16
	cctx, err := NewContext(chunked)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cctx.EncryptGradients(grads)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("chunked pooled batch has %d ciphertexts, want %d", len(got), len(want))
	}
	for i := range want {
		if mpint.Cmp(got[i].C, want[i].C) != 0 {
			t.Fatalf("ciphertext %d differs under chunked pool", i)
		}
	}
}

// TestNoncePoolMovesWorkOffline: prefill charges SimPrecomputeTime, and the
// online HE sim cost of the warmed batch undercuts the unpooled run.
func TestNoncePoolMovesWorkOffline(t *testing.T) {
	grads := poolGrads(40)
	run := func(depth int) (*Context, error) {
		p := testProfile(SystemHAFLO)
		p.NoncePool = depth
		ctx, err := NewContext(p)
		if err != nil {
			return nil, err
		}
		_, err = ctx.EncryptGradients(grads)
		return ctx, err
	}
	cold, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := run(64)
	if err != nil {
		t.Fatal(err)
	}
	ws, cs := warm.Device.Stats(), cold.Device.Stats()
	if ws.SimPrecomputeTime == 0 {
		t.Error("prefill charged no precompute time")
	}
	if cs.SimPrecomputeTime != 0 {
		t.Errorf("unpooled run charged %v precompute", cs.SimPrecomputeTime)
	}
	if warm.Costs.Snapshot().HESim >= cold.Costs.Snapshot().HESim {
		t.Errorf("warm online HE sim %v should undercut cold %v",
			warm.Costs.Snapshot().HESim, cold.Costs.Snapshot().HESim)
	}
}

// TestNoncePoolRearmBetweenBatches: PrefillNonces retargets the pool at the
// next batch's seed, so a second batch also hits.
func TestNoncePoolRearmBetweenBatches(t *testing.T) {
	grads := poolGrads(20)
	p := testProfile(SystemHAFLO)
	p.NoncePool = 32
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.EncryptGradients(grads); err != nil {
		t.Fatal(err)
	}
	hits1 := ctx.Pool.Stats().Hits
	if hits1 == 0 {
		t.Fatal("first batch missed the pool")
	}
	if _, err := ctx.PrefillNonces(32); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.EncryptGradients(grads); err != nil {
		t.Fatal(err)
	}
	if hits2 := ctx.Pool.Stats().Hits; hits2 <= hits1 {
		t.Errorf("re-armed pool hits %d did not grow past %d", hits2, hits1)
	}
}

// TestNoncePoolObs: pool metrics publish under "pool.<label>" and the
// reconciled cost mirror stays intact.
func TestNoncePoolObs(t *testing.T) {
	p := testProfile(SystemHAFLO)
	p.NoncePool = 16
	p.Observe = true
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.EncryptGradients(poolGrads(20)); err != nil {
		t.Fatal(err)
	}
	ctx.PublishMetrics()
	if err := ctx.ReconcileObs(); err != nil {
		t.Fatal(err)
	}
	reg := ctx.Obs.Metrics()
	pre := "pool." + ctx.ObsLabel() + "."
	if reg.Counter(pre+"precomputed") == 0 {
		t.Errorf("%sprecomputed not published", pre)
	}
	if reg.Counter(pre+"hits") == 0 {
		t.Errorf("%shits not published", pre)
	}
	if reg.Counter(pre+"refill_sim_ns") == 0 {
		t.Errorf("%srefill_sim_ns not published", pre)
	}
}

// TestNoncePoolValidationAndCPU: negative depth is rejected; CPU profiles
// ignore the knob.
func TestNoncePoolValidationAndCPU(t *testing.T) {
	bad := testProfile(SystemHAFLO)
	bad.NoncePool = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative pool depth accepted")
	}
	cpu := testProfile(SystemFATE)
	cpu.NoncePool = 16
	ctx, err := NewContext(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Pool != nil {
		t.Error("CPU profile built a nonce pool")
	}
	if _, ok := ctx.Backend.(paillier.CPUBackend); !ok {
		t.Errorf("CPU profile backend is %T", ctx.Backend)
	}
}
