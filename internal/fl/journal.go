package fl

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
)

// The epoch-durability layer: a write-ahead journal of round state-machine
// transitions. The coordinator appends a record at every durable boundary —
// round start, aggregate computed, round done/failed — before acting on it,
// so a restarted coordinator replays the journal and resumes the epoch from
// the last safe boundary instead of from round zero. Records carry the
// nonce-stream cursor, so a re-run round encrypts the exact bytes the
// crashed attempt would have: recovery is bit-exact, not merely eventual.

// EventKind names one journaled state-machine transition.
type EventKind string

// The journal grammar, in the order a round emits them. A round is "open"
// from its round-start until a terminal record (done, failed, or drained);
// EventAggregated is the optional mid-round safe point.
const (
	// EventRoundStart: a round began; Cursor is the nonce-stream cursor
	// before any client encrypted, Members the active roster.
	EventRoundStart EventKind = "round-start"
	// EventAggregated: the homomorphic aggregate is durable; Payload holds
	// the encoded ciphertexts, Digest their checksum, Members the included
	// clients, Cursor the post-upload nonce cursor. A crash after this
	// record resumes at the broadcast boundary without re-gathering.
	EventAggregated EventKind = "aggregated"
	// EventRoundDone: the round completed; Digest is the aggregate digest.
	EventRoundDone EventKind = "round-done"
	// EventRoundFailed: the round failed with a typed error; Phase/Party/
	// Reason record where and why.
	EventRoundFailed EventKind = "round-failed"
	// EventDrained: the coordinator stopped cleanly mid-round (SIGTERM
	// drain) — the open round is abandoned at a phase boundary, not lost.
	EventDrained EventKind = "drained"
)

// JournalRecord is one durable state transition.
type JournalRecord struct {
	// Seq is the journal-assigned sequence number, 1-based and contiguous.
	Seq  uint64    `json:"seq"`
	Kind EventKind `json:"kind"`
	// Epoch and Round locate the transition; Attempt counts re-runs of the
	// same round across coordinator restarts (1 = first execution).
	Epoch   uint64 `json:"epoch"`
	Round   uint64 `json:"round"`
	Attempt uint32 `json:"attempt,omitempty"`
	// Cursor is the context's nonce-stream cursor at record time.
	Cursor uint64 `json:"cursor,omitempty"`
	// Members is kind-dependent: the active roster at round-start, the
	// included (quorum) clients at aggregated/done.
	Members []string `json:"members,omitempty"`
	// Cohort is the round's sampled cohort (round-start only, and only when
	// cohort sampling actually narrowed the roster). Recovery re-samples
	// from the restored roster and cross-checks against this record — the
	// replayed round must schedule the identical cohort.
	Cohort []string `json:"cohort,omitempty"`
	// Phase, Party, Reason describe a failure (EventRoundFailed/Drained).
	Phase  RoundPhase `json:"phase,omitempty"`
	Party  string     `json:"party,omitempty"`
	Reason string     `json:"reason,omitempty"`
	// Digest is the FNV-1a checksum of the aggregate payload; Payload the
	// encoded aggregate ciphertexts (EventAggregated only).
	Digest  uint64 `json:"digest,omitempty"`
	Payload []byte `json:"payload,omitempty"`
}

// PayloadDigest is the journal's payload checksum (FNV-1a 64). It guards
// the recovery path against torn or bit-rotted aggregate records, and gives
// tests a stable fingerprint for "byte-identical aggregate" assertions.
func PayloadDigest(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// JournalStore is the pluggable persistence behind a Journal.
type JournalStore interface {
	// Append durably writes one record. A record whose Append returned is
	// recoverable; one that did not may be torn and is discarded on Load.
	Append(rec JournalRecord) error
	// Load returns every durable record in append order.
	Load() ([]JournalRecord, error)
	// Close releases the store.
	Close() error
}

// MemStore is the in-memory JournalStore: durable for the life of the
// process, shared between a "crashed" federation and its recovered
// successor in tests and the soak harness.
type MemStore struct {
	mu   sync.Mutex
	recs []JournalRecord
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements JournalStore.
func (s *MemStore) Append(rec JournalRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, rec)
	return nil
}

// Load implements JournalStore.
func (s *MemStore) Load() ([]JournalRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JournalRecord, len(s.recs))
	copy(out, s.recs)
	return out, nil
}

// Close implements JournalStore (a no-op; the records stay readable).
func (s *MemStore) Close() error { return nil }

// FileStore is the file-backed JournalStore: one JSON record per line,
// fsynced per append (write-ahead semantics — the record is on disk before
// the round acts on it). Load tolerates a torn final line, the artifact of
// dying mid-append, by discarding it; corruption anywhere earlier is an
// error, not something to guess around.
type FileStore struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// dirSync fsyncs the directory so a just-created journal file's entry is
// durable — without it a crash can lose the file itself even though every
// record in it was fsynced. Swappable for tests asserting the
// open-create-sync sequence.
var dirSync = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// OpenFileStore opens (creating if absent) an append-only journal file.
// When the call creates the file, the parent directory is fsynced too:
// per-record fsyncs make the *contents* durable, but only a directory sync
// makes the file's existence durable across a crash.
func OpenFileStore(path string) (*FileStore, error) {
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fl: open journal: %w", err)
	}
	if created {
		if err := dirSync(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, fmt.Errorf("fl: sync journal directory: %w", err)
		}
	}
	return &FileStore{path: path, f: f}, nil
}

// Path returns the backing file path.
func (s *FileStore) Path() string { return s.path }

// Append implements JournalStore.
func (s *FileStore) Append(rec JournalRecord) error {
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fl: journal encode: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("fl: append on closed journal store")
	}
	if _, err := s.f.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("fl: journal write: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("fl: journal sync: %w", err)
	}
	return nil
}

// Load implements JournalStore.
func (s *FileStore) Load() ([]JournalRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, err := os.ReadFile(s.path)
	if err != nil {
		return nil, fmt.Errorf("fl: read journal: %w", err)
	}
	var recs []JournalRecord
	sc := bufio.NewScanner(bytes.NewReader(blob))
	sc.Buffer(nil, 1<<26)
	lines := 0
	var parseErr error
	for sc.Scan() {
		lines++
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			parseErr = fmt.Errorf("fl: journal line %d: %w", lines, err)
			continue
		}
		if parseErr != nil {
			// A parseable record after a corrupt one means real corruption,
			// not a torn tail.
			return nil, parseErr
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fl: scan journal: %w", err)
	}
	// A trailing unparsable line (or a file not ending in '\n') is the torn
	// final append of a crash mid-write: everything before it is intact.
	return recs, nil
}

// Close implements JournalStore.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("fl: journal store already closed")
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// ErrCoordinatorCrash is the sentinel a Journal.Fail hook returns to
// simulate the coordinator process dying at a durable boundary: the record
// it fired on IS durable, but nothing after it happens. The soak harness
// and the recovery tests use it to kill a coordinator at chosen boundaries
// without leaving the test process.
var ErrCoordinatorCrash = errors.New("fl: simulated coordinator crash")

// Journal sequences records into a store.
type Journal struct {
	mu    sync.Mutex
	store JournalStore
	seq   uint64

	// Fail, when non-nil, is consulted after every durable append; a
	// non-nil return is handed to the caller as if the coordinator died at
	// that boundary (conventionally ErrCoordinatorCrash). Chaos-test hook.
	Fail func(rec JournalRecord) error
}

// NewJournal positions a journal at the end of the store's existing
// records, so appends continue the sequence across restarts.
func NewJournal(store JournalStore) (*Journal, error) {
	if store == nil {
		return nil, fmt.Errorf("fl: NewJournal needs a store")
	}
	recs, err := store.Load()
	if err != nil {
		return nil, err
	}
	j := &Journal{store: store}
	if n := len(recs); n > 0 {
		j.seq = recs[n-1].Seq
	}
	return j, nil
}

// Append stamps the next sequence number onto rec and writes it durably.
func (j *Journal) Append(rec JournalRecord) error {
	j.mu.Lock()
	j.seq++
	rec.Seq = j.seq
	fail := j.Fail
	j.mu.Unlock()
	if err := j.store.Append(rec); err != nil {
		return err
	}
	if fail != nil {
		if err := fail(rec); err != nil {
			return err
		}
	}
	return nil
}

// Records returns every durable record in order.
func (j *Journal) Records() ([]JournalRecord, error) { return j.store.Load() }

// ResumePoint describes where a recovered coordinator picks an incomplete
// round back up.
type ResumePoint struct {
	Round   uint64
	Attempt uint32 // the attempt that crashed; the re-run bumps it
	// Phase is the safe boundary to resume from: PhaseUpload re-runs the
	// round from its start, PhaseBroadcast replays the journaled aggregate.
	Phase  RoundPhase
	Cursor uint64
	// Included and Payload/Digest carry the aggregate for a broadcast
	// resume; empty for an upload restart.
	Included []string
	Payload  []byte
	Digest   uint64
	// Cohort is the crashed attempt's sampled cohort (nil when the round
	// scheduled the whole roster). The re-run cross-checks its own sample
	// against it: a mismatch means the roster or profile diverged and the
	// replay would not be bit-exact.
	Cohort []string
}

// RecoveryState is the replayed summary of a journal.
type RecoveryState struct {
	// Records is how many journal records were replayed.
	Records int
	Epoch   uint64
	// LastRound is the highest round with a terminal record.
	LastRound uint64
	// Cursor is the nonce-stream cursor to restore when Resume is nil.
	Cursor uint64
	// Members is the active roster at the most recent round-start.
	Members []string
	// Resume is non-nil when a round was open (mid-flight) at the crash.
	Resume *ResumePoint
	// Completed/Failed/Drained count terminal records; Digests maps each
	// completed round to its aggregate digest.
	Completed int
	Failed    int
	Drained   int
	Digests   map[uint64]uint64
}

// Replay folds a journal into the state a restarted coordinator needs. It
// validates the record grammar (contiguous sequence numbers, transitions
// only on the open round, digest-checked aggregates) and fails loudly on
// violations — a journal that does not parse cleanly is not a journal to
// resume from.
func Replay(recs []JournalRecord) (RecoveryState, error) {
	st := RecoveryState{Records: len(recs), Digests: make(map[uint64]uint64)}
	var open *JournalRecord // the round-start of the currently open round
	var agg *JournalRecord  // its aggregated record, when reached
	for i := range recs {
		rec := recs[i]
		if rec.Seq != uint64(i)+1 {
			return st, fmt.Errorf("fl: journal record %d has seq %d", i, rec.Seq)
		}
		switch rec.Kind {
		case EventRoundStart:
			if open != nil && open.Round != rec.Round {
				return st, fmt.Errorf("fl: round %d started while round %d still open", rec.Round, open.Round)
			}
			open, agg = &recs[i], nil
			st.Epoch = rec.Epoch
			st.Members = rec.Members
		case EventAggregated:
			if open == nil || open.Round != rec.Round {
				return st, fmt.Errorf("fl: aggregate record for round %d without an open round-start", rec.Round)
			}
			if PayloadDigest(rec.Payload) != rec.Digest {
				return st, fmt.Errorf("fl: round %d aggregate record fails its digest", rec.Round)
			}
			agg = &recs[i]
		case EventRoundDone:
			if open == nil || open.Round != rec.Round {
				return st, fmt.Errorf("fl: round-done for round %d without an open round-start", rec.Round)
			}
			st.Completed++
			st.Digests[rec.Round] = rec.Digest
			st.LastRound, st.Cursor = rec.Round, rec.Cursor
			open, agg = nil, nil
		case EventRoundFailed:
			if open == nil || open.Round != rec.Round {
				return st, fmt.Errorf("fl: round-failed for round %d without an open round-start", rec.Round)
			}
			st.Failed++
			st.LastRound, st.Cursor = rec.Round, rec.Cursor
			open, agg = nil, nil
		case EventDrained:
			if open != nil && open.Round == rec.Round {
				open, agg = nil, nil
			}
			st.Drained++
			st.LastRound, st.Cursor = rec.Round, rec.Cursor
		default:
			return st, fmt.Errorf("fl: unknown journal event %q", rec.Kind)
		}
	}
	if open != nil {
		rp := &ResumePoint{Round: open.Round, Attempt: open.Attempt, Phase: PhaseUpload,
			Cursor: open.Cursor, Cohort: open.Cohort}
		if agg != nil {
			rp.Phase = PhaseBroadcast
			rp.Cursor = agg.Cursor
			rp.Included = agg.Members
			rp.Payload = agg.Payload
			rp.Digest = agg.Digest
		}
		st.Resume = rp
	}
	return st, nil
}
