package fl

import (
	"bytes"
	"testing"

	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

func arenaFed(t *testing.T) *Federation {
	t.Helper()
	ctx, err := NewContext(testProfile(SystemFATE))
	if err != nil {
		t.Fatal(err)
	}
	return NewFederation(ctx)
}

func arenaCts(n int) []paillier.Ciphertext {
	rng := mpint.NewRNG(31)
	cts := make([]paillier.Ciphertext, n)
	for i := range cts {
		cts[i] = paillier.Ciphertext{C: rng.RandBits(256)}
	}
	return cts
}

// TestArenaCodecRoundtrip: the arena-backed codec is byte- and value-exact
// with the plain codec, including across pool reuse cycles.
func TestArenaCodecRoundtrip(t *testing.T) {
	f := arenaFed(t)
	defer f.Close()
	cts := arenaCts(9)
	want := encodeCiphertexts(cts)
	for cycle := 0; cycle < 3; cycle++ {
		got := f.encodeCts(cts)
		if !bytes.Equal(got, want) {
			t.Fatalf("cycle %d: arena encoding differs from plain codec", cycle)
		}
		dec, err := f.decodeCts(got)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(cts) {
			t.Fatalf("cycle %d: decoded %d ciphertexts, want %d", cycle, len(dec), len(cts))
		}
		for i := range dec {
			if mpint.Cmp(dec[i].C, cts[i].C) != 0 {
				t.Fatalf("cycle %d: ciphertext %d corrupted by pooling", cycle, i)
			}
		}
		f.arena.putCts(dec)
	}
}

// TestArenaCodecAllocs is the allocation regression guard for the flat round
// path's codec primitives: with a warm arena, encoding a batch costs exactly
// the payload buffer, and decoding costs only the per-value nat parses.
func TestArenaCodecAllocs(t *testing.T) {
	f := arenaFed(t)
	defer f.Close()
	const n = 16
	cts := arenaCts(n)
	payload := f.encodeCts(cts) // warm the nat pool

	if got := testing.AllocsPerRun(100, func() {
		f.encodeCts(cts)
	}); got > 2 {
		t.Errorf("warm arena encode: %.1f allocs per batch, want <= 2", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		dec, err := f.decodeCts(payload)
		if err != nil {
			t.Fatal(err)
		}
		f.arena.putCts(dec)
	}); got > n+2 {
		t.Errorf("warm arena decode: %.1f allocs per batch, want <= %d", got, n+2)
	}
}
