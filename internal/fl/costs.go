package fl

import (
	"sync"
	"time"

	"flbooster/internal/obs"
)

// CostSnapshot is the per-run cost anatomy the paper reports: HE-operation
// time, communication time, and everything else, plus the operation and byte
// counts behind the throughput and compression tables. Wall times are real
// host measurements at the experiment's (possibly reduced) scale; Sim times
// come from the device and link models and represent the paper's
// full-hardware testbed (see DESIGN.md §1, "Wall-clock scale").
type CostSnapshot struct {
	// HEWall is host time spent inside HE batches; HESim is the modelled
	// device time for the same batches (equal to HEWall on CPU profiles).
	HEWall time.Duration
	HESim  time.Duration
	// HEOps counts HE operations (encrypt/decrypt/hom-add elements).
	HEOps int64
	// Instances counts logical gradient values pushed through HE — the
	// numerator of Table IV's throughput. With batch compression this is
	// larger than HEOps.
	Instances int64

	// CommSim is modelled wire time; CommBytes/CommMsgs the raw traffic.
	CommSim   time.Duration
	CommBytes int64
	CommMsgs  int64
	// RetryMsgs counts retransmission attempts; their bytes and wire time
	// are already folded into the Comm totals above.
	RetryMsgs int64

	// OtherWall is host time in model computation (gradients, trees,
	// forward/backward passes) outside HE and communication.
	OtherWall time.Duration

	// EncodeWall is host time spent quantizing and packing gradients into
	// plaintexts; EncodeSim is the modelled client-side cost of the same work
	// and EncodeVals the values encoded. Encode used to hide inside the
	// untimed gap before each HE batch; the round anatomy needs it split out.
	EncodeWall time.Duration
	EncodeSim  time.Duration
	EncodeVals int64

	// CompSim is modelled per-party model computation (forward/backward
	// passes) charged by the round runtime. Unlike OtherWall it is a sim-time
	// quantity, so the round anatomy stays deterministic across runs.
	CompSim time.Duration

	// PipeSeqSim and PipeSim are the streamed-pipeline view of the phases
	// that ran chunked: the sequential sum of their HE and wire time (already
	// included in HESim/CommSim above) and the measured critical path of the
	// same chunks overlapped across the encrypt and send streams. PipeChunks
	// counts the chunks scheduled.
	PipeSeqSim time.Duration
	PipeSim    time.Duration
	PipeChunks int64

	// LateChunks and LateBytes count chunked-upload traffic the late-arrival
	// cutoff discarded: chunks that were received and buffered (their wire
	// time and bytes already charged to Comm at send) but whose upload never
	// completed before the deadline, so the buffers were released
	// unaggregated.
	LateChunks int64
	LateBytes  int64

	// Ciphertexts counts ciphertexts produced (the compression denominator).
	Ciphertexts int64
	// Plainvals counts plaintext values before packing (the numerator).
	Plainvals int64
}

// encodeSimPerValue is the modelled client-side cost of quantizing and
// packing one gradient value into an HE plaintext. A fixed constant rather
// than a wall measurement so the per-phase round anatomy is deterministic
// across runs and machines.
const encodeSimPerValue = 35 * time.Nanosecond

// encodeSim returns the modelled encode cost of n gradient values.
func encodeSim(n int) time.Duration { return time.Duration(n) * encodeSimPerValue }

// Costs is the concurrency-safe accumulator behind CostSnapshot. When
// Observe attaches a metrics registry, every Add also mirrors its counter
// deltas into the registry at event time, so the registry view and the
// snapshot can be reconciled after a run (Context.ReconcileObs).
type Costs struct {
	mu     sync.Mutex
	s      CostSnapshot
	reg    *obs.Registry
	prefix string
}

// costMirrorNames are the registry counter names (relative to the prefix)
// that mirror CostSnapshot; Reset zeroes exactly this set.
var costMirrorNames = []string{
	"he_ops", "instances", "he_sim_ns",
	"comm_msgs", "comm_bytes", "comm_sim_ns", "retry_msgs",
	"pipe_chunks", "pipe_seq_ns", "pipe_ns",
	"late_chunks", "late_bytes",
	"plainvals", "ciphertexts",
	"encode_sim_ns", "encode_vals", "comp_sim_ns",
}

// Observe mirrors future cost deltas into reg as counters named
// <prefix>.<name>. A nil registry detaches.
func (c *Costs) Observe(reg *obs.Registry, prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = reg
	c.prefix = prefix
}

// mirror adds one counter delta under the attached prefix; callers hold c.mu.
func (c *Costs) mirror(name string, delta int64) {
	if c.reg == nil || delta == 0 {
		return
	}
	c.reg.Add(c.prefix+"."+name, delta)
}

// AddHE accounts one HE batch.
func (c *Costs) AddHE(wall, sim time.Duration, ops, instances int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.HEWall += wall
	c.s.HESim += sim
	c.s.HEOps += ops
	c.s.Instances += instances
	c.mirror("he_sim_ns", int64(sim))
	c.mirror("he_ops", ops)
	c.mirror("instances", instances)
}

// AddComm accounts one transfer.
func (c *Costs) AddComm(sim time.Duration, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.CommSim += sim
	c.s.CommBytes += bytes
	c.s.CommMsgs++
	c.mirror("comm_sim_ns", int64(sim))
	c.mirror("comm_bytes", bytes)
	c.mirror("comm_msgs", 1)
}

// AddRetry accounts one retransmission attempt: the wasted bytes and wire
// time join the communication totals so degraded rounds report their true
// cost, and the retry counter records how much of it was rework.
func (c *Costs) AddRetry(sim time.Duration, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.CommSim += sim
	c.s.CommBytes += bytes
	c.s.CommMsgs++
	c.s.RetryMsgs++
	c.mirror("comm_sim_ns", int64(sim))
	c.mirror("comm_bytes", bytes)
	c.mirror("comm_msgs", 1)
	c.mirror("retry_msgs", 1)
}

// AddPipeline accounts one streamed upload: seq is the sequential sum of
// the chunks' HE + wire time, overlapped their measured critical path.
func (c *Costs) AddPipeline(seq, overlapped time.Duration, chunks int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.PipeSeqSim += seq
	c.s.PipeSim += overlapped
	c.s.PipeChunks += chunks
	c.mirror("pipe_seq_ns", int64(seq))
	c.mirror("pipe_ns", int64(overlapped))
	c.mirror("pipe_chunks", chunks)
}

// AddLate accounts one late-arrival cutoff: chunks received from an upload
// that never completed, released unaggregated. Their wire time and bytes
// were already charged to Comm at send time; these counters record how much
// of that traffic was wasted.
func (c *Costs) AddLate(chunks, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.LateChunks += chunks
	c.s.LateBytes += bytes
	c.mirror("late_chunks", chunks)
	c.mirror("late_bytes", bytes)
}

// AddOther accounts model-computation time.
func (c *Costs) AddOther(wall time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.OtherWall += wall
}

// AddEncode accounts one quantize/pack step: host time measured, sim time
// modelled, vals the gradient values encoded.
func (c *Costs) AddEncode(wall, sim time.Duration, vals int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.EncodeWall += wall
	c.s.EncodeSim += sim
	c.s.EncodeVals += vals
	c.mirror("encode_sim_ns", int64(sim))
	c.mirror("encode_vals", vals)
}

// AddComp accounts modelled per-party model computation scheduled by the
// round runtime.
func (c *Costs) AddComp(sim time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.CompSim += sim
	c.mirror("comp_sim_ns", int64(sim))
}

// AddCompression accounts a packing step: plainvals in, ciphertexts out.
func (c *Costs) AddCompression(plainvals, ciphertexts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Plainvals += plainvals
	c.s.Ciphertexts += ciphertexts
	c.mirror("plainvals", plainvals)
	c.mirror("ciphertexts", ciphertexts)
}

// Snapshot returns a copy safe to read.
func (c *Costs) Snapshot() CostSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}

// Reset zeroes every counter, including the mirrored registry counters so
// the reconciliation invariant survives a reset.
func (c *Costs) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s = CostSnapshot{}
	if c.reg != nil {
		for _, name := range costMirrorNames {
			c.reg.Set(c.prefix+"."+name, 0)
		}
	}
}

// TotalSim is the modelled end-to-end time: device-scale HE + wire time +
// measured model computation. This is the quantity Tables III and V report.
func (c *Costs) TotalSim() time.Duration { return c.Snapshot().TotalSim() }

// TotalSim is the modelled end-to-end time of the snapshot.
func (s CostSnapshot) TotalSim() time.Duration {
	return s.HESim + s.CommSim + s.OtherWall + s.EncodeSim + s.CompSim
}

// TotalSimOverlapped is the modelled end-to-end time with the streamed
// phases at their measured critical path instead of their sequential sum:
// the sequential pipeline portion is swapped for the overlapped one. With
// no streamed phases it equals TotalSim.
func (c *Costs) TotalSimOverlapped() time.Duration { return c.Snapshot().TotalSimOverlapped() }

// TotalSimOverlapped is the overlapped end-to-end time of the snapshot.
// Clamped at zero: a client dropped mid-pipeline keeps its sequential charge
// (the overlap accounting only credits completed uploads), so on a round
// where nearly everything was both streamed and dropped the subtraction can
// otherwise go negative.
func (s CostSnapshot) TotalSimOverlapped() time.Duration {
	t := s.TotalSim() - s.PipeSeqSim + s.PipeSim
	if t < 0 {
		return 0
	}
	return t
}

// TotalWall is the measured end-to-end host time plus modelled wire time.
func (c *Costs) TotalWall() time.Duration { return c.Snapshot().TotalWall() }

// TotalWall is the measured end-to-end host time plus modelled wire time.
func (s CostSnapshot) TotalWall() time.Duration {
	return s.HEWall + s.CommSim + s.OtherWall + s.EncodeWall + s.CompSim
}

// Shares returns the fractions (other, HE, comm) of TotalSim — the rows of
// Table VI.
func (c *Costs) Shares() (other, he, comm float64) { return c.Snapshot().Shares() }

// Shares returns the fractions (other, HE, comm) of the run's end-to-end
// time. The "other" share folds in encode and model compute alongside
// OtherWall. On runs with streamed phases (PipeChunks > 0) the denominator
// is TotalSimOverlapped — the headline those runs report — so the shares sum
// against the number printed next to them; sequential runs divide by
// TotalSim as before. (On overlapped runs the fractions sum above 1: the
// overlap hides part of the sequential cost inside the critical path.)
func (s CostSnapshot) Shares() (other, he, comm float64) {
	total := s.TotalSim()
	if s.PipeChunks > 0 {
		total = s.TotalSimOverlapped()
	}
	if total <= 0 {
		return 0, 0, 0
	}
	t := float64(total)
	return float64(s.OtherWall+s.EncodeSim+s.CompSim) / t, float64(s.HESim) / t, float64(s.CommSim) / t
}

// Throughput returns HE instances per second of modelled HE time — the
// cells of Table IV.
func (c *Costs) Throughput() float64 { return c.Snapshot().Throughput() }

// Throughput returns HE instances per second of modelled HE time.
func (s CostSnapshot) Throughput() float64 {
	if s.HESim <= 0 {
		return 0
	}
	return float64(s.Instances) / s.HESim.Seconds()
}

// CompressionRatio returns plaintext values per ciphertext — Fig. 7.
func (c *Costs) CompressionRatio() float64 { return c.Snapshot().CompressionRatio() }

// CompressionRatio returns plaintext values per ciphertext — Fig. 7.
func (s CostSnapshot) CompressionRatio() float64 {
	if s.Ciphertexts == 0 {
		return 1
	}
	return float64(s.Plainvals) / float64(s.Ciphertexts)
}
