package fl

import (
	"fmt"
	"time"

	"flbooster/internal/paillier"
)

// AggTree is the hierarchical aggregation abstraction behind cross-device
// rounds: cohort uploads are folded leaf-by-leaf into fan-out-bounded
// levels of paillier.Accumulator contexts. When a level has absorbed
// `fanout` children it emits one partial (its homomorphic sum), forwards it
// up a level, and resets — so at any instant each level holds at most one
// running partial and the coordinator's live ciphertext set is bounded by
// fanout·depth, not by the cohort size. Homomorphic addition is commutative
// and associative and the backend's AddVec is deterministic, so the tree's
// root is bit-identical to the flat left-fold over the same batches
// regardless of fold order or association.
//
// The tree is pure structure: the cost model plugs in through the fold and
// forward hooks (Context.NewAggTree charges HE time per fold and frames +
// charges each forwarded partial as interior-link traffic).
type AggTree struct {
	fanout  int
	newAcc  func() (*paillier.Accumulator, error)
	fold    func(acc *paillier.Accumulator, cts []paillier.Ciphertext) (time.Duration, error)
	forward func(level int, cts []paillier.Ciphertext)

	levels   []*treeLevel
	levelSim []time.Duration

	leaves   int
	folds    int64 // HE additions (folds into a non-empty accumulator)
	forwards int64
	live     int64 // ciphertexts currently held across all level accumulators
	peak     int64
}

// treeLevel is one level's running partial: the accumulator and how many
// children it has absorbed since it last emitted.
type treeLevel struct {
	acc  *paillier.Accumulator
	kids int
}

// TreeStats describes one completed tree aggregation.
type TreeStats struct {
	// Fanout is the configured fan-out; Depth the number of levels the
	// aggregation actually used; Leaves the client batches folded in.
	Fanout int `json:"fanout"`
	Depth  int `json:"depth"`
	Leaves int `json:"leaves"`
	// Folds counts HE additions; Forwards counts partials that moved up a
	// level (the root's final hop to the coordinator included).
	Folds    int64 `json:"folds"`
	Forwards int64 `json:"forwards"`
	// PeakLiveCts is the high-water count of ciphertexts simultaneously live
	// in the tree (level partials plus the batch being folded).
	PeakLiveCts int64 `json:"peak_live_cts"`
	// LevelSimNs is the modelled HE time spent folding at each level.
	LevelSimNs []int64 `json:"level_sim_ns,omitempty"`
}

// NewAggTree builds an empty aggregation tree. newAcc constructs one level's
// aggregation context, fold merges a batch into it (returning the modelled
// HE time), and forward (optional) observes each partial leaving a level.
func NewAggTree(fanout int, newAcc func() (*paillier.Accumulator, error),
	fold func(acc *paillier.Accumulator, cts []paillier.Ciphertext) (time.Duration, error),
	forward func(level int, cts []paillier.Ciphertext)) (*AggTree, error) {
	if fanout < 2 {
		return nil, fmt.Errorf("fl: aggregation fan-out %d must be ≥ 2", fanout)
	}
	if newAcc == nil || fold == nil {
		return nil, fmt.Errorf("fl: NewAggTree needs accumulator and fold hooks")
	}
	return &AggTree{fanout: fanout, newAcc: newAcc, fold: fold, forward: forward}, nil
}

// Add folds one client's ciphertext batch into the tree, cascading partials
// up through any levels the fold fills.
func (t *AggTree) Add(cts []paillier.Ciphertext) error {
	if len(cts) == 0 {
		return fmt.Errorf("fl: aggregate an empty batch")
	}
	t.leaves++
	return t.addAt(0, cts)
}

func (t *AggTree) addAt(level int, cts []paillier.Ciphertext) error {
	for len(t.levels) <= level {
		t.levels = append(t.levels, &treeLevel{})
		t.levelSim = append(t.levelSim, 0)
	}
	lv := t.levels[level]
	if lv.acc == nil {
		acc, err := t.newAcc()
		if err != nil {
			return err
		}
		lv.acc = acc
	}
	// The incoming batch is live while it folds; folding into a non-empty
	// accumulator momentarily holds both it and the running partial.
	if cand := t.live + int64(len(cts)); cand > t.peak {
		t.peak = cand
	}
	wasEmpty := lv.kids == 0
	sim, err := t.fold(lv.acc, cts)
	if err != nil {
		return err
	}
	t.levelSim[level] += sim
	lv.kids++
	if wasEmpty {
		t.live += int64(len(cts))
	} else {
		t.folds++
	}
	if lv.kids < t.fanout {
		return nil
	}
	return t.emit(level)
}

// emit flushes one level's partial up a level (or hands it to Root's carry
// via the recursion's caller when this is the flush path).
func (t *AggTree) emit(level int) error {
	partial, err := t.flush(level)
	if err != nil {
		return err
	}
	return t.addAt(level+1, partial)
}

// flush takes a level's partial, resets the level, and accounts the forward.
func (t *AggTree) flush(level int) ([]paillier.Ciphertext, error) {
	lv := t.levels[level]
	partial, err := lv.acc.Sum()
	if err != nil {
		return nil, err
	}
	lv.acc, lv.kids = nil, 0
	t.live -= int64(len(partial))
	t.forwards++
	if t.forward != nil {
		t.forward(level, partial)
	}
	return partial, nil
}

// Root flushes every partially filled level bottom-up and returns the tree's
// homomorphic sum. The final partial's forward is the root reaching the
// coordinator. The tree is spent afterwards.
func (t *AggTree) Root() ([]paillier.Ciphertext, error) {
	var carry []paillier.Ciphertext
	for level := 0; level < len(t.levels); level++ {
		lv := t.levels[level]
		if lv.kids == 0 {
			continue // the carry passes an empty level untouched
		}
		if carry != nil {
			if cand := t.live + int64(len(carry)); cand > t.peak {
				t.peak = cand
			}
			sim, err := t.fold(lv.acc, carry)
			if err != nil {
				return nil, err
			}
			t.levelSim[level] += sim
			t.folds++
		}
		partial, err := t.flush(level)
		if err != nil {
			return nil, err
		}
		carry = partial
	}
	if carry == nil {
		return nil, fmt.Errorf("fl: root of an empty aggregation tree")
	}
	return carry, nil
}

// LiveCts returns the ciphertexts currently held across the level
// accumulators.
func (t *AggTree) LiveCts() int64 { return t.live }

// Leaves returns how many client batches were folded in.
func (t *AggTree) Leaves() int { return t.leaves }

// Stats returns the tree's aggregation anatomy.
func (t *AggTree) Stats() TreeStats {
	st := TreeStats{
		Fanout:      t.fanout,
		Depth:       len(t.levels),
		Leaves:      t.leaves,
		Folds:       t.folds,
		Forwards:    t.forwards,
		PeakLiveCts: t.peak,
	}
	if len(t.levelSim) > 0 {
		st.LevelSimNs = make([]int64, len(t.levelSim))
		for i, d := range t.levelSim {
			st.LevelSimNs[i] = int64(d)
		}
	}
	return st
}

// merge folds another tree's stats in (defended rounds run one tree per
// group): depth is the maximum, peaks are summed — the groups' partials are
// live simultaneously, so the sum is the coordinator's conservative
// simultaneous-live bound — and per-level times add elementwise.
func (s *TreeStats) merge(o TreeStats) {
	if s.Fanout == 0 {
		s.Fanout = o.Fanout
	}
	if o.Depth > s.Depth {
		s.Depth = o.Depth
	}
	s.Leaves += o.Leaves
	s.Folds += o.Folds
	s.Forwards += o.Forwards
	s.PeakLiveCts += o.PeakLiveCts
	for len(s.LevelSimNs) < len(o.LevelSimNs) {
		s.LevelSimNs = append(s.LevelSimNs, 0)
	}
	for i, ns := range o.LevelSimNs {
		s.LevelSimNs[i] += ns
	}
}
