package fl

import (
	"testing"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
)

// TestSecureAggregateSurvivesDeviceDeath kills the GPU after its first
// kernel launch: the round must still complete through the CPU fallback with
// an aggregate identical to a healthy run, and the fault report must show
// the failover.
func TestSecureAggregateSurvivesDeviceDeath(t *testing.T) {
	grads := [][]float64{
		{0.1, -0.2, 0.3}, {0.05, 0.1, -0.1}, {-0.2, 0.2, 0.0}, {0.4, -0.1, 0.05},
	}
	runOnce := func(pol FaultPolicy) ([]float64, *Context) {
		t.Helper()
		p := testProfile(SystemFLBooster)
		p.Faults = pol
		ctx, err := NewContext(p)
		if err != nil {
			t.Fatal(err)
		}
		fed := NewFederation(ctx)
		defer fed.Close()
		var agg []float64
		for round := 0; round < 2; round++ {
			if agg, err = fed.SecureAggregate(grads); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		return agg, ctx
	}

	clean, _ := runOnce(FaultPolicy{})
	killed, ctx := runOnce(FaultPolicy{
		Inject: gpu.FaultConfig{Seed: 1, KillAtLaunch: 2},
	})

	if len(killed) != len(clean) {
		t.Fatalf("aggregate length %d, want %d", len(killed), len(clean))
	}
	for i := range clean {
		if killed[i] != clean[i] {
			t.Fatalf("aggregate[%d] = %v after failover, want %v (bit-exact)", i, killed[i], clean[i])
		}
	}
	rep := ctx.FaultReport()
	if rep.Health != gpu.DeviceFailed {
		t.Fatalf("device health %s, want failed", rep.Health)
	}
	if !rep.Checked.FellBack || rep.Checked.FallbackOps == 0 {
		t.Fatalf("failover not recorded: %+v", rep.Checked)
	}
	if rep.Injected.Kills == 0 || rep.LaunchFailures == 0 {
		t.Fatalf("fault counters empty: %+v", rep)
	}
	if rep.SimFaultTime <= 0 {
		t.Fatal("degraded-mode time not charged to the modelled clock")
	}
}

// TestFaultReportCPUProfile: CPU profiles report a healthy zero record.
func TestFaultReportCPUProfile(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFATE))
	if err != nil {
		t.Fatal(err)
	}
	rep := ctx.FaultReport()
	if rep.Health != gpu.DeviceHealthy || rep.Checked != (ghe.CheckedStats{}) {
		t.Fatalf("CPU profile fault report not zero: %+v", rep)
	}
}

// TestProfileRejectsUnknownSystem: the former constructor panic is now a
// validation error surfaced through NewContext.
func TestProfileRejectsUnknownSystem(t *testing.T) {
	p := NewProfile(System("no-such-system"), 128, 4)
	if _, err := NewContext(p); err == nil {
		t.Fatal("unknown system must be rejected, not panic")
	}
}
