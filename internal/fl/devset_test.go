package fl

import (
	"errors"
	"fmt"
	"testing"

	"flbooster/internal/gpu"
)

// devsetProfile is testProfile sharded across d simulated devices.
func devsetProfile(d int) Profile {
	p := testProfile(SystemFLBooster)
	p.Devices = d
	return p
}

// refEpoch runs the uninterrupted single-device reference epoch.
func refEpoch(t *testing.T, rounds int, grads [][][]float64) [][]float64 {
	t.Helper()
	ctx, err := NewContext(testProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	out := make([][]float64, rounds)
	for r := 0; r < rounds; r++ {
		if out[r], err = fed.SecureAggregate(grads[r]); err != nil {
			t.Fatalf("reference round %d: %v", r+1, err)
		}
	}
	return out
}

// TestShardedBitExactWithSequential is the fl-layer acceptance property: a
// secure-aggregation epoch over a D-device sharded context produces results
// bit-identical to the single-device run, for every D, with pooled nonces,
// with a device killed mid-epoch, and across a coordinator crash/recovery.
func TestShardedBitExactWithSequential(t *testing.T) {
	// 64 gradient values per party span several packed plaintexts, so every
	// HE batch really shards across the fleet (one plaintext would collapse
	// each op to a single shard on device 0).
	const rounds = 3
	parties := testProfile(SystemFLBooster).Parties
	grads := epochGrads(rounds, parties, 64)
	ref := refEpoch(t, rounds, grads)

	runEpoch := func(t *testing.T, ctx *Context) [][]float64 {
		t.Helper()
		fed := NewFederation(ctx)
		defer fed.Close()
		out := make([][]float64, rounds)
		var err error
		for r := 0; r < rounds; r++ {
			if out[r], err = fed.SecureAggregate(grads[r]); err != nil {
				t.Fatalf("round %d: %v", r+1, err)
			}
		}
		return out
	}
	checkRef := func(t *testing.T, got [][]float64) {
		t.Helper()
		for r := range got {
			if !sameBits(got[r], ref[r]) {
				t.Fatalf("round %d diverged from single-device reference\n got %v\nwant %v", r+1, got[r], ref[r])
			}
		}
	}

	for _, d := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("D=%d/plain", d), func(t *testing.T) {
			p := devsetProfile(d)
			p.Observe = true // exercise per-device metric reconciliation too
			ctx, err := NewContext(p)
			if err != nil {
				t.Fatal(err)
			}
			if ctx.DevSet == nil || ctx.DevSet.Size() != d || ctx.Device != nil {
				t.Fatalf("context wiring: DevSet %v Device %v", ctx.DevSet, ctx.Device)
			}
			checkRef(t, runEpoch(t, ctx))
			if st := ctx.DevSet.Stats(); st.Shards == 0 || st.SimParallelTime <= 0 {
				t.Fatalf("epoch ran without sharded dispatch: %+v", st)
			}
			if err := ctx.ReconcileObs(); err != nil {
				t.Fatal(err)
			}
		})

		t.Run(fmt.Sprintf("D=%d/pooled-nonce", d), func(t *testing.T) {
			p := devsetProfile(d)
			p.NoncePool = 8
			ctx, err := NewContext(p)
			if err != nil {
				t.Fatal(err)
			}
			checkRef(t, runEpoch(t, ctx))
			if st := ctx.Pool.Stats(); st.Hits == 0 || st.RefillSim <= 0 {
				t.Fatalf("pool never served sharded encryptions: %+v", st)
			}
			if st := ctx.DevSet.Stats(); st.SimPrecomputeTime <= 0 {
				t.Fatalf("prefill charged no set precompute time: %+v", st)
			}
		})

		t.Run(fmt.Sprintf("D=%d/mid-batch-kill", d), func(t *testing.T) {
			ctx, err := NewContext(devsetProfile(d))
			if err != nil {
				t.Fatal(err)
			}
			// Kill one device a few launches into the first round's encrypts:
			// every shard it still holds must migrate (or, at D=1, fall back to
			// the host) without changing a single result bit.
			kill := d - 1
			if kill > 1 {
				kill = 1
			}
			ctx.DevSet.Device(kill).SetFaultInjector(gpu.NewFaultInjector(gpu.FaultConfig{Seed: 7, KillAtLaunch: 3}))
			checkRef(t, runEpoch(t, ctx))
			st := ctx.DevSet.Stats()
			if d > 1 {
				if st.Steals == 0 || st.RebalanceSim <= 0 {
					t.Fatalf("kill at D=%d triggered no work stealing: %+v", d, st)
				}
			} else if st.HostShards == 0 {
				t.Fatalf("kill at D=1 never fell back to the host: %+v", st)
			}
			if rep := ctx.FaultReport(); rep.Health != gpu.DeviceFailed || rep.Injected.Kills == 0 {
				t.Fatalf("fault report missed the dead member: %+v", rep)
			}
		})

		t.Run(fmt.Sprintf("D=%d/crash-recovery", d), func(t *testing.T) {
			const crashRound = 2
			p := devsetProfile(d)
			store := NewMemStore()
			j, err := NewJournal(store)
			if err != nil {
				t.Fatal(err)
			}
			j.Fail = func(rec JournalRecord) error {
				if rec.Kind == EventAggregated && rec.Round == crashRound {
					return ErrCoordinatorCrash
				}
				return nil
			}
			ctx, err := NewContext(p)
			if err != nil {
				t.Fatal(err)
			}
			fed := NewFederation(ctx)
			fed.AttachJournal(j)
			results := make([][]float64, rounds)
			crashed := false
			for r := 0; r < rounds && !crashed; r++ {
				results[r], err = fed.SecureAggregate(grads[r])
				if err != nil {
					if !errors.Is(err, ErrCoordinatorCrash) {
						t.Fatalf("round %d: %v", r+1, err)
					}
					crashed = true
				}
			}
			fed.Close()
			if !crashed {
				t.Fatal("crash hook never fired")
			}
			ctx2, err := NewContext(p)
			if err != nil {
				t.Fatal(err)
			}
			fed2, state, err := Recover(ctx2, store)
			if err != nil {
				t.Fatal(err)
			}
			defer fed2.Close()
			if state.Resume == nil || state.Resume.Round != crashRound {
				t.Fatalf("no resume point for round %d: %+v", crashRound, state)
			}
			for r := crashRound - 1; r < rounds; r++ {
				if results[r], err = fed2.SecureAggregate(grads[r]); err != nil {
					t.Fatalf("recovered round %d: %v", r+1, err)
				}
			}
			checkRef(t, results)
		})
	}
}
