package fl

import (
	"testing"

	"flbooster/internal/gpu"
	"flbooster/internal/paillier"
)

// testProfile returns a fast configuration for unit tests: small key, small
// device.
func testProfile(sys System) Profile {
	p := NewProfile(sys, 128, 4)
	p.Device = gpu.SmallTestDevice()
	p.RBits = 14 // keep several slots per 128-bit plaintext
	return p
}

func TestProfileToggles(t *testing.T) {
	cases := []struct {
		sys                    System
		useGPU, useBatch, fine bool
	}{
		{SystemFATE, false, false, false},
		{SystemHAFLO, true, false, false},
		{SystemFLBooster, true, true, true},
		{SystemNoGHE, false, true, false},
		{SystemNoBC, true, false, true},
	}
	for _, c := range cases {
		p := NewProfile(c.sys, 1024, 4)
		if p.UseGPU != c.useGPU || p.UseBatch != c.useBatch || p.FineRM != c.fine {
			t.Errorf("%s toggles = %v/%v/%v", c.sys, p.UseGPU, p.UseBatch, p.FineRM)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s default profile invalid: %v", c.sys, err)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	bad := NewProfile(SystemFATE, 1024, 4)
	bad.KeyBits = 8
	if err := bad.Validate(); err == nil {
		t.Error("tiny key should fail")
	}
	bad = NewProfile(SystemFATE, 1024, 0)
	if err := bad.Validate(); err == nil {
		t.Error("zero parties should fail")
	}
	bad = NewProfile(SystemHAFLO, 1024, 4)
	bad.Device = gpu.Config{}
	if err := bad.Validate(); err == nil {
		t.Error("GPU profile with bad device should fail")
	}
}

func TestNewContextPerSystem(t *testing.T) {
	for _, sys := range AllSystems() {
		ctx, err := NewContext(testProfile(sys))
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if (ctx.Device != nil || ctx.DevSet != nil) != ctx.Profile.UseGPU {
			t.Errorf("%s: device presence mismatch", sys)
		}
		if (ctx.Packer != nil) != ctx.Profile.UseBatch {
			t.Errorf("%s: packer presence mismatch", sys)
		}
		if ctx.Key.KeyBits() != 128 {
			t.Errorf("%s: key bits = %d", sys, ctx.Key.KeyBits())
		}
	}
}

func TestEncryptDecryptRoundTripAllSystems(t *testing.T) {
	grads := []float64{-0.9, -0.5, 0, 0.25, 0.8, 0.001, -0.0001, 0.333}
	for _, sys := range AllSystems() {
		sys := sys
		t.Run(string(sys), func(t *testing.T) {
			ctx, err := NewContext(testProfile(sys))
			if err != nil {
				t.Fatal(err)
			}
			cts, err := ctx.EncryptGradients(grads)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ctx.DecryptAggregated(cts, len(grads), 1)
			if err != nil {
				t.Fatal(err)
			}
			bound := ctx.Quant.MaxError()
			for i := range grads {
				if d := got[i] - grads[i]; d > bound || d < -bound {
					t.Fatalf("grad %d error %v > %v", i, d, bound)
				}
			}
		})
	}
}

func TestBatchCompressionReducesCiphertexts(t *testing.T) {
	grads := make([]float64, 64)
	noBC, err := NewContext(testProfile(SystemNoBC))
	if err != nil {
		t.Fatal(err)
	}
	withBC, err := NewContext(testProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	ctsNo, err := noBC.EncryptGradients(grads)
	if err != nil {
		t.Fatal(err)
	}
	ctsYes, err := withBC.EncryptGradients(grads)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctsNo) != 64 {
		t.Fatalf("w/o BC should emit one ciphertext per value, got %d", len(ctsNo))
	}
	if len(ctsYes) >= len(ctsNo)/4 {
		t.Fatalf("batching should cut ciphertexts sharply: %d vs %d", len(ctsYes), len(ctsNo))
	}
	if r := withBC.Costs.CompressionRatio(); r < 4 {
		t.Fatalf("compression ratio %v too small", r)
	}
	if r := noBC.Costs.CompressionRatio(); r != 1 {
		t.Fatalf("uncompressed ratio %v, want 1", r)
	}
}

func TestSecureAggregateSumsAcrossParties(t *testing.T) {
	for _, sys := range []System{SystemFATE, SystemFLBooster} {
		sys := sys
		t.Run(string(sys), func(t *testing.T) {
			ctx, err := NewContext(testProfile(sys))
			if err != nil {
				t.Fatal(err)
			}
			fed := NewFederation(ctx)
			defer fed.Close()
			const n = 10
			grads := make([][]float64, 4)
			want := make([]float64, n)
			for p := range grads {
				grads[p] = make([]float64, n)
				for i := range grads[p] {
					grads[p][i] = float64((p+1)*(i+1)) / 100 * 0.1
					want[i] += grads[p][i]
				}
			}
			got, err := fed.SecureAggregate(grads)
			if err != nil {
				t.Fatal(err)
			}
			bound := 4 * ctx.Quant.MaxError()
			for i := range want {
				if d := got[i] - want[i]; d > bound || d < -bound {
					t.Fatalf("sum[%d] = %v, want %v ± %v", i, got[i], want[i], bound)
				}
			}
			// Cost anatomy must be populated.
			c := ctx.Costs.Snapshot()
			if c.HEOps == 0 || c.CommBytes == 0 || c.CommMsgs != 8 {
				t.Fatalf("costs incomplete: %+v", c)
			}
		})
	}
}

func TestSecureAggregateValidation(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFATE))
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	if _, err := fed.SecureAggregate(make([][]float64, 2)); err == nil {
		t.Fatal("wrong party count should fail")
	}
	grads := [][]float64{{1}, {1}, {1}, {1, 2}}
	if _, err := fed.SecureAggregate(grads); err == nil {
		t.Fatal("ragged gradient vectors should fail")
	}
}

func TestCompressionShrinksTraffic(t *testing.T) {
	run := func(sys System) int64 {
		ctx, err := NewContext(testProfile(sys))
		if err != nil {
			t.Fatal(err)
		}
		fed := NewFederation(ctx)
		defer fed.Close()
		grads := make([][]float64, 4)
		for p := range grads {
			grads[p] = make([]float64, 32)
		}
		if _, err := fed.SecureAggregate(grads); err != nil {
			t.Fatal(err)
		}
		return ctx.Costs.Snapshot().CommBytes
	}
	withBC := run(SystemFLBooster)
	noBC := run(SystemNoBC)
	if withBC*3 >= noBC {
		t.Fatalf("batch compression should cut traffic by ≥3×: %d vs %d bytes", withBC, noBC)
	}
}

func TestFasterSystemsOrdering(t *testing.T) {
	// The headline inequality at equal workload: FLBooster's modelled epoch
	// component times must beat HAFLO's, which must beat FATE's, on HE time.
	grads := make([]float64, 128)
	for i := range grads {
		grads[i] = 0.01 * float64(i%7)
	}
	times := map[System]float64{}
	for _, sys := range []System{SystemFATE, SystemHAFLO, SystemFLBooster} {
		ctx, err := NewContext(testProfile(sys))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.EncryptGradients(grads); err != nil {
			t.Fatal(err)
		}
		times[sys] = ctx.Costs.Snapshot().HESim.Seconds()
	}
	if !(times[SystemFLBooster] < times[SystemHAFLO] && times[SystemHAFLO] < times[SystemFATE]) {
		t.Fatalf("modelled HE ordering violated: %v", times)
	}
}

func TestCostsShares(t *testing.T) {
	c := &Costs{}
	c.AddHE(50, 100, 10, 10)
	c.AddComm(300, 1234)
	c.AddOther(100)
	o, h, m := c.Shares()
	if o < 0.19 || o > 0.21 || h < 0.19 || h > 0.21 || m < 0.59 || m > 0.61 {
		t.Fatalf("shares = %v/%v/%v", o, h, m)
	}
	if c.TotalSim() != 500 {
		t.Fatalf("TotalSim = %v", c.TotalSim())
	}
	if c.TotalWall() != 450 {
		t.Fatalf("TotalWall = %v", c.TotalWall())
	}
	empty := &Costs{}
	if o, h, m := empty.Shares(); o != 0 || h != 0 || m != 0 {
		t.Fatal("empty shares should be zero")
	}
	if empty.Throughput() != 0 {
		t.Fatal("empty throughput should be zero")
	}
	c.Reset()
	if c.TotalSim() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTrackOtherAndUtilization(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFLBooster))
	if err != nil {
		t.Fatal(err)
	}
	ctx.TrackOther(func() {
		s := 0.0
		for i := 0; i < 10000; i++ {
			s += float64(i)
		}
		_ = s
	})
	if ctx.Costs.Snapshot().OtherWall <= 0 {
		t.Fatal("TrackOther did not record time")
	}
	if _, err := ctx.EncryptGradients([]float64{0.1}); err != nil {
		t.Fatal(err)
	}
	if u := ctx.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
	cpu, err := NewContext(testProfile(SystemFATE))
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Utilization() != 0 {
		t.Fatal("CPU profile should report zero utilization")
	}
}

func TestAggregateValidation(t *testing.T) {
	ctx, err := NewContext(testProfile(SystemFATE))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.AggregateCiphertexts(nil); err == nil {
		t.Fatal("empty aggregation should fail")
	}
	a, err := ctx.EncryptGradients([]float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.EncryptGradients([]float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.AggregateCiphertexts([][]paillier.Ciphertext{a, b}); err == nil {
		t.Fatal("ragged batches should fail")
	}
}
