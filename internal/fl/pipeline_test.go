package fl

import (
	"testing"
	"time"

	"flbooster/internal/ghe"
	"flbooster/internal/gpu"
	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

func testGrads(parties, count int) [][]float64 {
	grads := make([][]float64, parties)
	for i := range grads {
		grads[i] = make([]float64, count)
		for j := range grads[i] {
			grads[i][j] = 0.001 * float64((i*31+j*7)%997) * float64(1-2*(j%2))
		}
	}
	return grads
}

// runRound executes `rounds` SecureAggregate rounds over a fresh context and
// returns the final aggregate, the context, and the report.
func runRound(t *testing.T, p Profile, grads [][]float64, rounds int) ([]float64, *Context, RoundReport) {
	t.Helper()
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	fed := NewFederation(ctx)
	defer fed.Close()
	var agg []float64
	var rep RoundReport
	for r := 0; r < rounds; r++ {
		if agg, rep, err = fed.SecureAggregateReport(grads); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	return agg, ctx, rep
}

func sameFloatsBitExact(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: aggregate[%d] = %v pipelined, %v sequential (must be bit-exact)", label, i, a[i], b[i])
		}
	}
}

// TestChunkedRoundBitExact: for every system profile, a round run through
// the chunked pipeline produces the exact aggregate of the sequential path,
// and records pipeline accounting that never exceeds the sequential sum.
func TestChunkedRoundBitExact(t *testing.T) {
	grads := testGrads(4, 40)
	for _, sys := range []System{SystemFLBooster, SystemHAFLO, SystemFATE} {
		seqAgg, seqCtx, _ := runRound(t, testProfile(sys), grads, 2)
		for _, chunk := range []int{1, 3, 8, 64} {
			p := testProfile(sys)
			p.Chunk = chunk
			agg, ctx, rep := runRound(t, p, grads, 2)
			sameFloatsBitExact(t, string(sys), agg, seqAgg)
			if len(rep.Included) != 4 {
				t.Fatalf("%s chunk=%d: %d clients included", sys, chunk, len(rep.Included))
			}
			cs := ctx.Costs.Snapshot()
			if cs.PipeChunks == 0 {
				t.Fatalf("%s chunk=%d: no pipeline chunks accounted", sys, chunk)
			}
			if cs.PipeSim <= 0 || cs.PipeSim > cs.PipeSeqSim {
				t.Fatalf("%s chunk=%d: overlapped %v outside (0, %v]", sys, chunk, cs.PipeSim, cs.PipeSeqSim)
			}
			if ov := cs.TotalSimOverlapped(); ov > cs.TotalSim() || ov <= 0 {
				t.Fatalf("%s chunk=%d: TotalSimOverlapped %v vs TotalSim %v", sys, chunk, ov, cs.TotalSim())
			}
			// The chunked path must not change what the cost model counts.
			seqCs := seqCtx.Costs.Snapshot()
			if cs.HEOps != seqCs.HEOps || cs.Ciphertexts != seqCs.Ciphertexts {
				t.Fatalf("%s chunk=%d: HE op counts diverge (%d/%d vs %d/%d)",
					sys, chunk, cs.HEOps, cs.Ciphertexts, seqCs.HEOps, seqCs.Ciphertexts)
			}
		}
	}
}

// TestChunkedRoundSequentialNoPipeline: chunk 0 keeps the legacy path with
// zero pipeline accounting.
func TestChunkedRoundSequentialNoPipeline(t *testing.T) {
	_, ctx, _ := runRound(t, testProfile(SystemFLBooster), testGrads(4, 16), 1)
	cs := ctx.Costs.Snapshot()
	if cs.PipeChunks != 0 || cs.PipeSim != 0 || cs.PipeSeqSim != 0 {
		t.Fatalf("sequential round recorded pipeline accounting: %+v", cs)
	}
	if cs.TotalSimOverlapped() != cs.TotalSim() {
		t.Fatalf("overlapped total %v != sequential %v with no pipeline", cs.TotalSimOverlapped(), cs.TotalSim())
	}
}

// TestChunkedRoundSurvivesDeviceDeath: the device dies mid-pipeline; chunk
// retries and the CPU failover run per chunk, and the chunked aggregate is
// still bit-exact with a healthy sequential run.
func TestChunkedRoundSurvivesDeviceDeath(t *testing.T) {
	grads := testGrads(4, 24)
	clean, _, _ := runRound(t, testProfile(SystemFLBooster), grads, 2)

	p := testProfile(SystemFLBooster)
	p.Chunk = 2
	p.Faults = FaultPolicy{Inject: gpu.FaultConfig{Seed: 1, KillAtLaunch: 8}}
	agg, ctx, _ := runRound(t, p, grads, 2)
	sameFloatsBitExact(t, "device-death", agg, clean)
	rep := ctx.FaultReport()
	if rep.Health != gpu.DeviceFailed || !rep.Checked.FellBack {
		t.Fatalf("expected mid-pipeline device death and failover, got %+v", rep)
	}
	if cs := ctx.Costs.Snapshot(); cs.PipeSim <= 0 || cs.PipeSim > cs.PipeSeqSim {
		t.Fatalf("pipeline accounting broken across failover: %+v", cs)
	}
}

// TestChunkedRoundSurvivesCorruptionRetries: a corrupting device with full
// verification retries individual chunks without changing the aggregate.
func TestChunkedRoundSurvivesCorruptionRetries(t *testing.T) {
	grads := testGrads(4, 24)
	clean, _, _ := runRound(t, testProfile(SystemFLBooster), grads, 1)

	p := testProfile(SystemFLBooster)
	p.Chunk = 2
	p.Faults = FaultPolicy{
		Inject: gpu.FaultConfig{Seed: 7, CorruptProb: 0.1},
		Check:  ghe.CheckedConfig{MaxRetries: 8, VerifyFraction: 1},
	}
	agg, ctx, _ := runRound(t, p, grads, 1)
	sameFloatsBitExact(t, "corruption-retry", agg, clean)
	rep := ctx.FaultReport()
	if rep.Checked.VerifyFailures == 0 {
		t.Fatalf("expected verification to catch injected corruption, got %+v", rep.Checked)
	}
}

// TestEncryptGradientsStreamMatchesWholeBatch: the streamed ciphertexts are
// the whole-batch ciphertexts for GPU and CPU backends alike.
func TestEncryptGradientsStreamMatchesWholeBatch(t *testing.T) {
	grads := testGrads(1, 37)[0]
	for _, sys := range []System{SystemFLBooster, SystemFATE} {
		seqCtx, err := NewContext(testProfile(sys))
		if err != nil {
			t.Fatal(err)
		}
		want, err := seqCtx.EncryptGradients(grads)
		if err != nil {
			t.Fatal(err)
		}
		p := testProfile(sys)
		p.Chunk = 3
		ctx, err := NewContext(p)
		if err != nil {
			t.Fatal(err)
		}
		var got []paillier.Ciphertext
		var indices []int
		var simTotal time.Duration
		err = ctx.EncryptGradientsStream(grads, func(index int, cts []paillier.Ciphertext, heSim time.Duration) error {
			indices = append(indices, index)
			got = append(got, cts...)
			simTotal += heSim
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d streamed ciphertexts, want %d", sys, len(got), len(want))
		}
		for i := range want {
			if mpint.Cmp(got[i].C, want[i].C) != 0 {
				t.Fatalf("%s: ciphertext %d differs between streamed and whole-batch paths", sys, i)
			}
		}
		for i, idx := range indices {
			if idx != i {
				t.Fatalf("%s: chunk indices out of order: %v", sys, indices)
			}
		}
		if simTotal <= 0 {
			t.Fatalf("%s: stream reported no HE time", sys)
		}
	}
}

// TestEncryptGradientsStreamEmptyVector: an empty vector emits exactly one
// empty chunk so the upload protocol still sees the client.
func TestEncryptGradientsStreamEmptyVector(t *testing.T) {
	p := testProfile(SystemFATE)
	p.Chunk = 4
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	err = ctx.EncryptGradientsStream(nil, func(index int, cts []paillier.Ciphertext, _ time.Duration) error {
		calls++
		if index != 0 || len(cts) != 0 {
			t.Fatalf("empty vector emitted chunk %d with %d ciphertexts", index, len(cts))
		}
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("empty vector: calls=%d err=%v", calls, err)
	}
}

// TestProfileRejectsNegativeChunk: validation catches a negative chunk size.
func TestProfileRejectsNegativeChunk(t *testing.T) {
	p := testProfile(SystemFLBooster)
	p.Chunk = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative chunk size accepted")
	}
}
