package fl

import (
	"testing"

	"flbooster/internal/flnet"
	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
)

// TestSecureAggregationOverTCP runs the Fig. 2 round over real TCP
// connections through a hub: clients encrypt and upload in goroutines, the
// server aggregates homomorphically and broadcasts, a client decrypts. This
// exercises the full stack — quantization, packing, Paillier, codec, net —
// end to end over the loopback.
func TestSecureAggregationOverTCP(t *testing.T) {
	const parties = 3
	const dim = 6

	p := NewProfile(SystemFLBooster, 128, parties)
	p.RBits = 14
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}

	hub, err := flnet.NewTCPHub("127.0.0.1:0", flnet.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	// Ground truth.
	grads := make([][]float64, parties)
	want := make([]float64, dim)
	for c := range grads {
		grads[c] = make([]float64, dim)
		for i := range grads[c] {
			grads[c][i] = float64(c+1) * float64(i-2) / 50
			want[i] += grads[c][i]
		}
	}

	// Server goroutine.
	serverDone := make(chan error, 1)
	go func() {
		serverDone <- func() error {
			conn, err := flnet.DialHub(hub.Addr(), ServerName)
			if err != nil {
				return err
			}
			defer conn.Close()
			batches := make([][]paillier.Ciphertext, 0, parties)
			for i := 0; i < parties; i++ {
				msg, err := conn.Recv(ServerName)
				if err != nil {
					return err
				}
				nats, err := flnet.DecodeNats(msg.Payload)
				if err != nil {
					return err
				}
				cts := make([]paillier.Ciphertext, len(nats))
				for j, n := range nats {
					cts[j] = paillier.Ciphertext{C: n}
				}
				batches = append(batches, cts)
			}
			agg, err := ctx.AggregateCiphertexts(batches)
			if err != nil {
				return err
			}
			aggNats := make([]mpint.Nat, len(agg))
			for i, c := range agg {
				aggNats[i] = c.C
			}
			payload := flnet.EncodeNats(aggNats)
			for i := 0; i < parties; i++ {
				if err := conn.Send(flnet.Message{
					From: ServerName, To: ClientName(i), Kind: "agg", Payload: payload,
				}); err != nil {
					return err
				}
			}
			return nil
		}()
	}()

	// Client goroutines.
	results := make(chan []float64, parties)
	clientErrs := make(chan error, parties)
	for c := 0; c < parties; c++ {
		go func(c int) {
			err := func() error {
				name := ClientName(c)
				conn, err := flnet.DialHub(hub.Addr(), name)
				if err != nil {
					return err
				}
				defer conn.Close()
				cts, err := ctx.EncryptGradients(grads[c])
				if err != nil {
					return err
				}
				nats := make([]mpint.Nat, len(cts))
				for i, ct := range cts {
					nats[i] = ct.C
				}
				if err := conn.Send(flnet.Message{
					From: name, To: ServerName, Kind: "grads", Payload: flnet.EncodeNats(nats),
				}); err != nil {
					return err
				}
				msg, err := conn.Recv(name)
				if err != nil {
					return err
				}
				aggNats, err := flnet.DecodeNats(msg.Payload)
				if err != nil {
					return err
				}
				aggCts := make([]paillier.Ciphertext, len(aggNats))
				for i, n := range aggNats {
					aggCts[i] = paillier.Ciphertext{C: n}
				}
				sums, err := ctx.DecryptAggregated(aggCts, dim, parties)
				if err != nil {
					return err
				}
				results <- sums
				return nil
			}()
			clientErrs <- err
		}(c)
	}

	for i := 0; i < parties; i++ {
		if err := <-clientErrs; err != nil {
			t.Fatal(err)
		}
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}

	bound := float64(parties) * ctx.Quant.MaxError()
	for i := 0; i < parties; i++ {
		sums := <-results
		for j := range want {
			if d := sums[j] - want[j]; d > bound || d < -bound {
				t.Fatalf("client copy %d: sum[%d] = %v, want %v ± %v", i, j, sums[j], want[j], bound)
			}
		}
	}
	bytes, msgs, _ := hub.Meter().Snapshot()
	if msgs != 2*parties || bytes == 0 {
		t.Fatalf("hub saw %d msgs / %d bytes", msgs, bytes)
	}
}
