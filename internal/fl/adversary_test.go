package fl

import (
	"math"
	"testing"
)

func TestAdversaryDisabledIsNil(t *testing.T) {
	adv, err := NewAdversary(AdversaryConfig{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if adv != nil {
		t.Fatal("zero config should yield the nil (honest) injector")
	}
	// The nil injector is safe to call and a strict no-op.
	if adv.IsMalicious(0) {
		t.Error("nil adversary compromises nobody")
	}
	g := []float64{0.1, -0.2}
	if out := adv.Apply(1, 0, g); &out[0] != &g[0] {
		t.Error("nil adversary must return the input slice untouched")
	}
	if got := adv.Stats(); got.Compromised != 0 || got.Applications != 0 {
		t.Errorf("nil adversary stats = %+v", got)
	}
	if adv.Kind() != AttackNone {
		t.Error("nil adversary kind should be AttackNone")
	}
}

func TestAdversaryValidation(t *testing.T) {
	bad := []AdversaryConfig{
		{Kind: "martian"},
		{Kind: AttackScale, Fraction: -0.1},
		{Kind: AttackScale, Fraction: 1},
		{Kind: AttackScale, Count: -1},
		{Kind: AttackScale, Count: 4}, // all 4 parties compromised
		{Kind: AttackScale, Count: 1, Factor: -1},
		{Kind: AttackNoise, Count: 1, NoiseStd: -1},
		{Kind: AttackCollude, Count: 1, Drift: -1},
		{Count: 1}, // cohort without an attack kind
	}
	for i, cfg := range bad {
		if err := cfg.Validate(4); err == nil {
			t.Errorf("config %d should fail validation: %+v", i, cfg)
		}
	}
}

func TestAdversaryCohortDeterministic(t *testing.T) {
	cfg := AdversaryConfig{Seed: 42, Kind: AttackSignFlip, Fraction: 0.4}
	a1, err := NewAdversary(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAdversary(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := a1.Malicious(), a2.Malicious()
	if len(m1) != 4 {
		t.Fatalf("fraction 0.4 of 10 should compromise 4, got %v", m1)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("cohorts diverge for the same seed: %v vs %v", m1, m2)
		}
	}
	cfg.Seed = 43
	a3, err := NewAdversary(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	m3 := a3.Malicious()
	for i := range m1 {
		if m1[i] != m3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should (generically) draw different cohorts")
	}
	// An armed fractional config always compromises at least one client.
	small, err := NewAdversary(AdversaryConfig{Kind: AttackZero, Fraction: 0.01}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := small.Stats().Compromised; got != 1 {
		t.Errorf("armed config compromised %d, want floor of 1", got)
	}
}

func TestAdversaryAttackSemantics(t *testing.T) {
	g := []float64{0.5, -0.25, 0}
	mk := func(kind AttackKind) *Adversary {
		t.Helper()
		adv, err := NewAdversary(AdversaryConfig{Seed: 7, Kind: kind, Count: 2, Factor: 3}, 5)
		if err != nil {
			t.Fatal(err)
		}
		return adv
	}

	flip := mk(AttackSignFlip)
	mal := flip.Malicious()[0]
	honest := -1
	for i := 0; i < 5; i++ {
		if !flip.IsMalicious(i) {
			honest = i
			break
		}
	}
	if out := flip.Apply(3, honest, g); &out[0] != &g[0] {
		t.Error("honest client's gradients must pass through untouched")
	}
	out := flip.Apply(3, mal, g)
	if &out[0] == &g[0] {
		t.Error("malicious rewrite must be a fresh copy")
	}
	for i := range g {
		if out[i] != -g[i] {
			t.Fatalf("sign-flip[%d] = %v, want %v", i, out[i], -g[i])
		}
	}

	scale := mk(AttackScale)
	out = scale.Apply(3, scale.Malicious()[0], g)
	for i := range g {
		if out[i] != 3*g[i] {
			t.Fatalf("scale[%d] = %v, want %v", i, out[i], 3*g[i])
		}
	}

	zero := mk(AttackZero)
	out = zero.Apply(3, zero.Malicious()[0], g)
	for i := range out {
		if out[i] != 0 {
			t.Fatalf("zero[%d] = %v", i, out[i])
		}
	}

	noise := mk(AttackNoise)
	nm := noise.Malicious()[0]
	n1 := noise.Apply(3, nm, g)
	n2 := noise.Apply(3, nm, g)
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatal("noise draw must be deterministic per (round, client)")
		}
	}
	n3 := noise.Apply(4, nm, g)
	if n1[0] == n3[0] && n1[1] == n3[1] && n1[2] == n3[2] {
		t.Error("different rounds should draw different noise")
	}

	if got := noise.Stats(); got.Applications != 3 || got.ByKind[AttackNoise] != 3 {
		t.Errorf("noise stats = %+v", got)
	}
}

func TestAdversaryColludersShareTarget(t *testing.T) {
	adv, err := NewAdversary(AdversaryConfig{Seed: 9, Kind: AttackCollude, Count: 3, Drift: 0.5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	mal := adv.Malicious()
	g := []float64{1, 2, 3, 4}
	first := adv.Apply(11, mal[0], g)
	for _, m := range mal[1:] {
		out := adv.Apply(11, m, g)
		for i := range first {
			if out[i] != first[i] {
				t.Fatal("colluders must upload the identical per-round target")
			}
		}
	}
	for i, v := range first {
		if math.Abs(v) > 0.5 {
			t.Errorf("collude target[%d] = %v outside drift bound", i, v)
		}
	}
	next := adv.Apply(12, mal[0], g)
	if first[0] == next[0] && first[1] == next[1] {
		t.Error("collusion target should move between rounds")
	}
}

func TestAdversarySetKind(t *testing.T) {
	adv, err := NewAdversary(AdversaryConfig{Seed: 1, Kind: AttackSignFlip, Count: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := adv.SetKind(AttackZero); err != nil {
		t.Fatal(err)
	}
	if adv.Kind() != AttackZero {
		t.Fatalf("kind = %q after SetKind", adv.Kind())
	}
	out := adv.Apply(1, adv.Malicious()[0], []float64{5})
	if out[0] != 0 {
		t.Error("rotated kind should apply")
	}
	if err := adv.SetKind(AttackNone); err == nil {
		t.Error("SetKind(AttackNone) should fail")
	}
	if err := (*Adversary)(nil).SetKind(AttackZero); err == nil {
		t.Error("SetKind on nil adversary should fail")
	}
}
