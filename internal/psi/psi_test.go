package psi

import (
	"fmt"
	"testing"

	"flbooster/internal/mpint"
)

func TestAlignBasicIntersection(t *testing.T) {
	rng := mpint.NewRNG(1)
	host := []string{"alice", "bob", "carol", "dave"}
	guest := []string{"bob", "dave", "erin"}
	got, err := Align(host, guest, rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bob", "dave"}
	if len(got) != len(want) {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intersection = %v, want %v (guest order)", got, want)
		}
	}
}

func TestAlignDisjointAndEmpty(t *testing.T) {
	rng := mpint.NewRNG(2)
	got, err := Align([]string{"a", "b"}, []string{"c", "d"}, rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("disjoint sets intersected: %v", got)
	}
	got, err = Align(nil, []string{"x"}, rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty host set intersected: %v", got)
	}
	got, err = Align([]string{"x"}, nil, rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty guest set intersected: %v", got)
	}
}

func TestAlignLargeSets(t *testing.T) {
	rng := mpint.NewRNG(3)
	var host, guest []string
	for i := 0; i < 120; i++ {
		host = append(host, fmt.Sprintf("id-%04d", i))
	}
	for i := 60; i < 180; i++ {
		guest = append(guest, fmt.Sprintf("id-%04d", i))
	}
	got, err := Align(host, guest, rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("intersection size %d, want 60", len(got))
	}
	for i, id := range got {
		if id != fmt.Sprintf("id-%04d", 60+i) {
			t.Fatalf("element %d = %s", i, id)
		}
	}
}

func TestBlindedValuesHideIDs(t *testing.T) {
	// Blinding the same ID twice must give different values (fresh r), and
	// neither may equal the raw hash — the host must not learn the ID.
	rng := mpint.NewRNG(4)
	host, err := NewHost(rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuest(host.PublicKey(), rng)
	b1, err := g.Blind([]string{"secret-id"})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := g.Blind([]string{"secret-id"})
	if err != nil {
		t.Fatal(err)
	}
	if mpint.Cmp(b1[0], b2[0]) == 0 {
		t.Fatal("blinding is deterministic — IDs leak across sessions")
	}
	raw := hashToZn("secret-id", host.PublicKey().N)
	if mpint.Cmp(b1[0], raw) == 0 || mpint.Cmp(b2[0], raw) == 0 {
		t.Fatal("blinded value equals the raw hash")
	}
}

func TestUnblindValidatesLength(t *testing.T) {
	rng := mpint.NewRNG(5)
	host, err := NewHost(rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuest(host.PublicKey(), rng)
	if _, err := g.Blind([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Unblind([]mpint.Nat{mpint.One()}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestIntersectValidatesLength(t *testing.T) {
	rng := mpint.NewRNG(6)
	host, err := NewHost(rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuest(host.PublicKey(), rng)
	if _, err := g.Blind([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Intersect(nil, nil); err == nil {
		t.Fatal("token/id mismatch should fail")
	}
}

func TestTokensMatchAcrossSides(t *testing.T) {
	// The fundamental identity: unblind(sign(blind(x))) has the same token
	// as the host's direct signature of x.
	rng := mpint.NewRNG(7)
	host, err := NewHost(rng, 256)
	if err != nil {
		t.Fatal(err)
	}
	hostTokens, err := host.SignedSet([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuest(host.PublicKey(), rng)
	blinded, err := g.Blind([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	signed, err := host.SignBlinded(blinded)
	if err != nil {
		t.Fatal(err)
	}
	guestTokens, err := g.Unblind(signed)
	if err != nil {
		t.Fatal(err)
	}
	if guestTokens[0] != hostTokens[0] {
		t.Fatal("tokens diverge — the PSI identity is broken")
	}
}

func BenchmarkAlign64(b *testing.B) {
	rng := mpint.NewRNG(8)
	var host, guest []string
	for i := 0; i < 64; i++ {
		host = append(host, fmt.Sprintf("h%d", i))
		guest = append(guest, fmt.Sprintf("h%d", i+32))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Align(host, guest, rng, 256); err != nil {
			b.Fatal(err)
		}
	}
}
