// Package psi implements RSA blind-signature private set intersection —
// the sample-alignment step every vertical federated learning job runs
// before training (FATE's "intersect" component). The paper's heterogeneous
// models assume aligned sample IDs; this package provides that alignment
// without either side revealing its non-intersecting IDs.
//
// Protocol (semi-honest, host-keyed):
//
//  1. The host holds an RSA key (n, e, d) and publishes (n, e). For each of
//     its IDs y it computes the token t_y = H2(H1(y)^d mod n) and sends the
//     token set to the guest.
//  2. The guest blinds each of its IDs x with a fresh random r:
//     b = H1(x)·r^e mod n, and sends the blinded values.
//  3. The host signs blindly: s = b^d = H1(x)^d·r mod n.
//  4. The guest unblinds u = s·r⁻¹ = H1(x)^d mod n, hashes t_x = H2(u), and
//     intersects {t_x} with the host's token set.
//
// The guest learns exactly the intersection; the host learns only the
// guest's set size. Uses the textbook RSA of internal/rsa (blind signatures
// require the unpadded homomorphism).
package psi

import (
	"crypto/sha256"
	"fmt"

	"flbooster/internal/mpint"
	"flbooster/internal/rsa"
)

// Host is the key-holding party.
type Host struct {
	key *rsa.PrivateKey
}

// NewHost generates a fresh RSA key of the given size.
func NewHost(rng *mpint.RNG, bits int) (*Host, error) {
	key, err := rsa.GenerateKey(rng, bits)
	if err != nil {
		return nil, fmt.Errorf("psi: %w", err)
	}
	return &Host{key: key}, nil
}

// NewHostWithKey wraps an existing key.
func NewHostWithKey(key *rsa.PrivateKey) *Host { return &Host{key: key} }

// PublicKey returns the key material the guest needs.
func (h *Host) PublicKey() *rsa.PublicKey { return &h.key.PublicKey }

// hashToZn maps an ID into Z_n via SHA-256 (rejection-free: the digest is
// reduced mod n, which is safe for n ≥ 2²⁵⁶·ε since H1 only needs to be a
// random oracle into the group).
func hashToZn(id string, n mpint.Nat) mpint.Nat {
	sum := sha256.Sum256([]byte(id))
	return mpint.Mod(mpint.FromBytes(sum[:]), n)
}

// token is H2: the final one-way hash of a signature.
func token(sig mpint.Nat) [32]byte {
	return sha256.Sum256(sig.Bytes())
}

// SignedSet computes the host-side tokens t_y for its IDs.
func (h *Host) SignedSet(ids []string) ([][32]byte, error) {
	out := make([][32]byte, len(ids))
	for i, id := range ids {
		sig, err := h.key.Sign(hashToZn(id, h.key.N))
		if err != nil {
			return nil, fmt.Errorf("psi: signing id %d: %w", i, err)
		}
		out[i] = token(sig)
	}
	return out, nil
}

// SignBlinded signs the guest's blinded values (step 3). The host cannot
// link them to IDs.
func (h *Host) SignBlinded(blinded []mpint.Nat) ([]mpint.Nat, error) {
	out := make([]mpint.Nat, len(blinded))
	for i, b := range blinded {
		s, err := h.key.Sign(b)
		if err != nil {
			return nil, fmt.Errorf("psi: blind-signing element %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// Guest is the querying party.
type Guest struct {
	pub *rsa.PublicKey
	rng *mpint.RNG

	ids      []string
	blindInv []mpint.Nat // r⁻¹ per element, kept until Unblind
}

// NewGuest prepares a guest against the host's public key.
func NewGuest(pub *rsa.PublicKey, rng *mpint.RNG) *Guest {
	return &Guest{pub: pub, rng: rng}
}

// Blind produces the blinded values for the guest's IDs (step 2). The blind
// factors are retained for Unblind; calling Blind again discards them.
func (g *Guest) Blind(ids []string) ([]mpint.Nat, error) {
	g.ids = ids
	g.blindInv = make([]mpint.Nat, len(ids))
	out := make([]mpint.Nat, len(ids))
	mont := g.pub.Mont()
	for i, id := range ids {
		r := g.rng.RandCoprime(g.pub.N)
		inv, ok := mpint.ModInverse(r, g.pub.N)
		if !ok {
			return nil, fmt.Errorf("psi: blind factor not invertible (element %d)", i)
		}
		g.blindInv[i] = inv
		re := mont.Exp(r, g.pub.E)
		out[i] = mpint.ModMul(hashToZn(id, g.pub.N), re, g.pub.N)
	}
	return out, nil
}

// Unblind strips the blind factors from the host's signatures and returns
// the guest-side tokens (step 4).
func (g *Guest) Unblind(signed []mpint.Nat) ([][32]byte, error) {
	if len(signed) != len(g.blindInv) {
		return nil, fmt.Errorf("psi: %d signatures for %d blinded values", len(signed), len(g.blindInv))
	}
	out := make([][32]byte, len(signed))
	for i, s := range signed {
		u := mpint.ModMul(s, g.blindInv[i], g.pub.N)
		out[i] = token(u)
	}
	return out, nil
}

// Intersect matches the guest's tokens against the host's token set and
// returns the guest IDs in the intersection, in the guest's order.
func (g *Guest) Intersect(guestTokens, hostTokens [][32]byte) ([]string, error) {
	if len(guestTokens) != len(g.ids) {
		return nil, fmt.Errorf("psi: %d tokens for %d ids", len(guestTokens), len(g.ids))
	}
	set := make(map[[32]byte]bool, len(hostTokens))
	for _, t := range hostTokens {
		set[t] = true
	}
	var out []string
	for i, t := range guestTokens {
		if set[t] {
			out = append(out, g.ids[i])
		}
	}
	return out, nil
}

// Align runs the whole protocol in-process: the intersection of hostIDs and
// guestIDs, computed privately. Convenience for tests, examples, and
// single-machine pipelines.
func Align(hostIDs, guestIDs []string, rng *mpint.RNG, keyBits int) ([]string, error) {
	host, err := NewHost(rng, keyBits)
	if err != nil {
		return nil, err
	}
	hostTokens, err := host.SignedSet(hostIDs)
	if err != nil {
		return nil, err
	}
	guest := NewGuest(host.PublicKey(), rng)
	blinded, err := guest.Blind(guestIDs)
	if err != nil {
		return nil, err
	}
	signed, err := host.SignBlinded(blinded)
	if err != nil {
		return nil, err
	}
	guestTokens, err := guest.Unblind(signed)
	if err != nil {
		return nil, err
	}
	return guest.Intersect(guestTokens, hostTokens)
}
