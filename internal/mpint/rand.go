package mpint

import (
	"crypto/rand"
	"encoding/binary"
)

// RNG produces random multi-precision integers. It is the host-side analogue
// of the per-thread generators the paper assigns to each warp: a small-state
// xoshiro256** generator seeded via splitmix64, deterministic for
// reproducible experiments. NewCryptoRNG seeds from crypto/rand for real key
// generation.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a deterministic generator seeded from the given value.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 stream expands the seed into the 256-bit xoshiro state.
	for i := range r.s {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// NewCryptoRNG returns a generator seeded from the operating system's
// entropy source. The stream itself is still xoshiro256**; use it for
// demo/test key generation, not as a CSPRNG replacement for production HSMs.
func NewCryptoRNG() *RNG {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic("mpint: crypto/rand unavailable: " + err.Error())
	}
	return NewRNG(binary.LittleEndian.Uint64(buf[:]))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Word returns a random limb.
func (r *RNG) Word() Word { return Word(r.Uint64()) }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (polar Box–Muller,
// discarding the second value for simplicity).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * sqrtNewton(-2*lnTaylor(s)/s)
		}
	}
}

// sqrtNewton computes √x by Newton iteration (kept dependency-free so the
// package avoids even math; accuracy ~1e-15 after the loop converges).
func sqrtNewton(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 64; i++ {
		ng := 0.5 * (g + x/g)
		if ng == g {
			break
		}
		g = ng
	}
	return g
}

// lnTaylor computes ln(x) for x in (0, 1] via atanh series after range
// reduction by halving toward 1.
func lnTaylor(x float64) float64 {
	if x <= 0 {
		panic("mpint: lnTaylor domain")
	}
	var shift float64
	const ln2 = 0.6931471805599453
	for x < 0.5 {
		x *= 2
		shift -= ln2
	}
	for x > 1.5 {
		x /= 2
		shift += ln2
	}
	// ln(x) = 2·atanh((x−1)/(x+1))
	t := (x - 1) / (x + 1)
	t2 := t * t
	term := t
	sum := 0.0
	for k := 1; k < 60; k += 2 {
		sum += term / float64(k)
		term *= t2
		if term < 1e-18 && term > -1e-18 {
			break
		}
	}
	return 2*sum + shift
}

// Intn returns a uniform integer in [0, n). Panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mpint: Intn non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// RandBits returns a uniform Nat with exactly `bits` significant bits
// (the top bit is forced to 1). bits must be positive.
func (r *RNG) RandBits(bits int) Nat {
	if bits <= 0 {
		panic("mpint: RandBits non-positive width")
	}
	limbs := (bits + WordBits - 1) / WordBits
	z := make(Nat, limbs)
	for i := range z {
		z[i] = r.Word()
	}
	top := uint((bits-1)%WordBits + 1)
	z[limbs-1] &= Word(1<<top) - 1
	z[limbs-1] |= 1 << (top - 1)
	return trim(z)
}

// RandBelow returns a uniform Nat in [0, n) by rejection sampling.
func (r *RNG) RandBelow(n Nat) Nat {
	n = trim(n)
	if len(n) == 0 {
		panic("mpint: RandBelow zero bound")
	}
	bits := n.BitLen()
	limbs := (bits + WordBits - 1) / WordBits
	topMask := Word(1<<uint((bits-1)%WordBits+1)) - 1
	for {
		z := make(Nat, limbs)
		for i := range z {
			z[i] = r.Word()
		}
		z[limbs-1] &= topMask
		z = trim(z)
		if Cmp(z, n) < 0 {
			return z
		}
	}
}

// RandCoprime returns a uniform Nat in [1, n) that is coprime with n —
// the r parameter of Paillier encryption.
func (r *RNG) RandCoprime(n Nat) Nat {
	for {
		z := r.RandBelow(n)
		if z.IsZero() {
			continue
		}
		if GCD(z, n).IsOne() {
			return z
		}
	}
}
