package mpint

import "math/bits"

// DivMod returns the quotient and remainder of x / y.
// It panics when y == 0.
func DivMod(x, y Nat) (q, r Nat) {
	x, y = trim(x), trim(y)
	if len(y) == 0 {
		panic("mpint: division by zero")
	}
	if Cmp(x, y) < 0 {
		return nil, x.Clone()
	}
	if len(y) == 1 {
		q, rw := divModWord(x, y[0])
		if rw == 0 {
			return q, nil
		}
		return q, Nat{rw}
	}
	return divKnuth(x, y)
}

// Div returns x / y.
func Div(x, y Nat) Nat { q, _ := DivMod(x, y); return q }

// Mod returns x mod y.
func Mod(x, y Nat) Nat { _, r := DivMod(x, y); return r }

// divModWord divides x by a single limb.
func divModWord(x Nat, w Word) (Nat, Word) {
	q := make(Nat, len(x))
	var r uint64
	for i := len(x) - 1; i >= 0; i-- {
		cur := r<<WordBits | uint64(x[i])
		q[i] = Word(cur / uint64(w))
		r = cur % uint64(w)
	}
	return trim(q), Word(r)
}

// divKnuth implements Knuth TAOCP vol. 2, Algorithm 4.3.1 D for len(y) ≥ 2
// and x ≥ y. The divisor is normalized so its top limb has its high bit set;
// each quotient limb is estimated from the top two limbs of the running
// remainder and the top limb of the divisor, then corrected at most twice.
func divKnuth(x, y Nat) (Nat, Nat) {
	// D1: normalize.
	shift := uint(bits.LeadingZeros32(y[len(y)-1]))
	yn := Lsh(y, shift)
	xn := Lsh(x, shift)
	n := len(yn)
	// Ensure the dividend has an explicit extra high limb.
	u := make(Nat, len(xn)+1)
	copy(u, xn)
	m := len(u) - n - 1 // number of quotient limbs minus one

	q := make(Nat, m+1)
	vTop := uint64(yn[n-1])
	vNext := uint64(yn[n-2])

	// D2..D7: loop over quotient digits from most significant down.
	for j := m; j >= 0; j-- {
		// D3: estimate qhat from the top two limbs of u[j..j+n].
		u2 := uint64(u[j+n])<<WordBits | uint64(u[j+n-1])
		qhat := u2 / vTop
		rhat := u2 % vTop
		if qhat > 0xFFFFFFFF {
			qhat = 0xFFFFFFFF
			rhat = u2 - qhat*vTop
		}
		for rhat <= 0xFFFFFFFF && qhat*vNext > rhat<<WordBits|uint64(u[j+n-2]) {
			qhat--
			rhat += vTop
		}
		// D4: multiply and subtract u[j..j+n] -= qhat * yn.
		var borrow, mulCarry uint64
		for i := 0; i < n; i++ {
			p := qhat*uint64(yn[i]) + mulCarry
			mulCarry = p >> WordBits
			d := uint64(u[j+i]) - (p & 0xFFFFFFFF) - borrow
			u[j+i] = Word(d)
			borrow = (d >> 32) & 1
		}
		d := uint64(u[j+n]) - mulCarry - borrow
		u[j+n] = Word(d)
		borrow = (d >> 32) & 1

		// D5/D6: if we subtracted one time too many, add yn back.
		if borrow != 0 {
			qhat--
			var carry uint64
			for i := 0; i < n; i++ {
				s := uint64(u[j+i]) + uint64(yn[i]) + carry
				u[j+i] = Word(s)
				carry = s >> WordBits
			}
			u[j+n] = Word(uint64(u[j+n]) + carry)
		}
		q[j] = Word(qhat)
	}
	// D8: denormalize the remainder.
	r := Rsh(trim(u[:n]), shift)
	return trim(q), r
}

// GCD returns the greatest common divisor of x and y (binary GCD).
func GCD(x, y Nat) Nat {
	x, y = trim(x).Clone(), trim(y).Clone()
	if len(x) == 0 {
		return y
	}
	if len(y) == 0 {
		return x
	}
	sx := x.TrailingZeroBits()
	sy := y.TrailingZeroBits()
	shift := sx
	if sy < shift {
		shift = sy
	}
	x = Rsh(x, sx)
	y = Rsh(y, sy)
	for {
		if Cmp(x, y) > 0 {
			x, y = y, x
		}
		y = Sub(y, x)
		if y.IsZero() {
			return Lsh(x, shift)
		}
		y = Rsh(y, y.TrailingZeroBits())
	}
}

// LCM returns the least common multiple of x and y.
func LCM(x, y Nat) Nat {
	if x.IsZero() || y.IsZero() {
		return nil
	}
	return Mul(Div(x, GCD(x, y)), y)
}

// ModInverse returns x⁻¹ mod n and true when gcd(x, n) == 1, or nil and
// false otherwise. It uses the extended Euclidean algorithm with signed
// bookkeeping carried in (value, sign) pairs since Nat is unsigned.
func ModInverse(x, n Nat) (Nat, bool) {
	x, n = trim(x), trim(n)
	if len(n) == 0 || n.IsOne() {
		return nil, false
	}
	x = Mod(x, n)
	if x.IsZero() {
		return nil, false
	}
	// Invariants: r0 = s0*x mod n, r1 = s1*x mod n, with signs g0, g1.
	r0, r1 := n.Clone(), x.Clone()
	s0, s1 := Zero(), One()
	g0, g1 := 1, 1
	for !r1.IsZero() {
		q, r := DivMod(r0, r1)
		r0, r1 = r1, r
		// ns = s0 - q*s1 with explicit sign tracking (sign 0 means value 0).
		qs1 := Mul(q, s1)
		var ns Nat
		var ng int
		switch {
		case s0.IsZero():
			ns, ng = qs1, -g1
		case qs1.IsZero():
			ns, ng = s0, g0
		case g0 == g1:
			d, sign := CmpSub(s0, qs1)
			ns, ng = d, sign*g0
		default:
			ns, ng = Add(s0, qs1), g0
		}
		if ns.IsZero() {
			ng = 0
		}
		s0, s1, g0, g1 = s1, ns, g1, ng
	}
	if !r0.IsOne() {
		return nil, false
	}
	if g0 < 0 {
		return Sub(n, Mod(s0, n)), true
	}
	return Mod(s0, n), true
}
