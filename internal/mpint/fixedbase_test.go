package mpint

import (
	"math/big"
	"testing"
)

// TestFixedBaseExpMatchesExp is the comb ≡ sliding-window differential: every
// height against random exponents of every width up to the table bound.
func TestFixedBaseExpMatchesExp(t *testing.T) {
	r := NewRNG(0xC0B)
	for _, bits := range []int{64, 256, 521} {
		n := r.RandBits(bits)
		n[0] |= 1
		m := NewMont(n)
		base := r.RandBelow(n)
		for h := 1; h <= 8; h++ {
			tbl := NewFixedBaseTable(m, base, bits, h)
			for trial := 0; trial < 8; trial++ {
				e := r.RandBits(1 + r.Intn(bits))
				want := m.Exp(base, e)
				if got := tbl.Exp(e); Cmp(got, want) != 0 {
					t.Fatalf("%d-bit modulus, h=%d: comb Exp diverges from Mont.Exp for e=%s", bits, h, e)
				}
			}
		}
	}
}

// TestFixedBaseExpEdgeCases drives the comb through the degenerate exponents
// and shapes the clamping rules exist for.
func TestFixedBaseExpEdgeCases(t *testing.T) {
	r := NewRNG(0xC0C)
	n := r.RandBits(192)
	n[0] |= 1
	m := NewMont(n)
	base := r.RandBelow(n)
	tests := []struct {
		name    string
		base    Nat
		maxBits int
		h       int
		e       Nat
	}{
		{"zero exponent", base, 192, 4, Zero()},
		{"one-bit exponent", base, 192, 4, One()},
		{"two", base, 192, 4, FromUint64(2)},
		{"all-ones exponent", base, 192, 4, Sub(Lsh(One(), 192), One())},
		{"height above cap", base, 192, 99, r.RandBits(150)},
		{"height below floor", base, 192, -3, r.RandBits(150)},
		{"one-bit table", base, 1, 8, One()},
		{"tiny table, tiny exponent", base, 3, 8, FromUint64(5)},
		{"oversize exponent falls back", base, 64, 4, r.RandBits(200)},
		{"zero base", Zero(), 128, 4, r.RandBits(100)},
		{"one base", One(), 128, 4, r.RandBits(100)},
		{"unreduced base", Add(n, FromUint64(7)), 128, 4, r.RandBits(100)},
	}
	for _, tc := range tests {
		tbl := NewFixedBaseTable(m, tc.base, tc.maxBits, tc.h)
		want := m.Exp(tc.base, tc.e)
		if got := tbl.Exp(tc.e); Cmp(got, want) != 0 {
			t.Errorf("%s: comb=%s want=%s", tc.name, got, want)
		}
	}
}

// TestClampFixedBaseHeight pins the clamping contract: [1, 8], never wider
// than the exponent.
func TestClampFixedBaseHeight(t *testing.T) {
	tests := []struct {
		h, maxBits, want int
	}{
		{0, 2048, 1},
		{-5, 2048, 1},
		{4, 2048, 4},
		{8, 2048, 8},
		{12, 2048, 8},
		{8, 3, 3},
		{8, 1, 1},
		{2, 1, 1},
	}
	for _, tc := range tests {
		if got := ClampFixedBaseHeight(tc.h, tc.maxBits); got != tc.want {
			t.Errorf("ClampFixedBaseHeight(%d, %d) = %d, want %d", tc.h, tc.maxBits, got, tc.want)
		}
	}
}

// TestChooseFixedBaseHeight sanity-checks the auto-height heuristic: larger
// batches amortize bigger tables, and the choice respects the clamp.
func TestChooseFixedBaseHeight(t *testing.T) {
	small := ChooseFixedBaseHeight(2048, 1)
	large := ChooseFixedBaseHeight(2048, 100000)
	if small > large {
		t.Errorf("height should grow with batch size: n=1 → %d, n=100000 → %d", small, large)
	}
	if large != 8 {
		t.Errorf("huge batches should saturate the height cap: got %d", large)
	}
	if got := ChooseFixedBaseHeight(1, 1000); got != 1 {
		t.Errorf("1-bit exponents must use height 1, got %d", got)
	}
}

// TestCompileExpTrivial pins the no-table guarantee: exponents 0 and 1 compile
// to empty schedules, and the width clamps to the exponent bit length.
func TestCompileExpTrivial(t *testing.T) {
	for _, e := range []Nat{Zero(), One()} {
		s := CompileExp(e, 8)
		if s.TableSize() != 0 || s.Ops() != 0 {
			t.Errorf("CompileExp(%s): table=%d ops=%d, want empty schedule", e, s.TableSize(), s.Ops())
		}
	}
	if s := CompileExp(FromUint64(3), 12); s.WindowBits() != 2 {
		t.Errorf("2-bit exponent at width 12 should clamp to 2, got %d", s.WindowBits())
	}
	if s := CompileExpAuto(FromUint64(1)); s.TableSize() != 0 {
		t.Errorf("auto-compiled exponent 1 should build no table")
	}
}

// TestExpSchedSharedAcrossBases is the vector-op usage pattern: one compiled
// schedule reused for many bases must equal per-base Exp.
func TestExpSchedSharedAcrossBases(t *testing.T) {
	r := NewRNG(0xC0D)
	n := r.RandBits(256)
	n[0] |= 1
	m := NewMont(n)
	e := r.RandBits(230)
	s := CompileExpAuto(e)
	for i := 0; i < 16; i++ {
		base := r.RandBelow(n)
		want := m.Exp(base, e)
		if got := m.ExpSched(base, s); Cmp(got, want) != 0 {
			t.Fatalf("shared schedule diverges on base %d", i)
		}
	}
}

// TestExpTinyExponents pins Exp against math/big on the exponents the window
// clamping exists for, across widths.
func TestExpTinyExponents(t *testing.T) {
	r := NewRNG(0xC0E)
	n := r.RandBits(128)
	n[0] |= 1
	m := NewMont(n)
	bn := toBig(n)
	base := r.RandBelow(n)
	bb := toBig(base)
	for _, ev := range []uint64{0, 1, 2, 3, 4, 5, 7, 8, 255, 256, 65537} {
		e := FromUint64(ev)
		want := new(big.Int).Exp(bb, toBig(e), bn)
		for w := uint(1); w <= 12; w++ {
			if got := m.ExpWindow(base, e, w); toBig(got).Cmp(want) != 0 {
				t.Fatalf("ExpWindow(e=%d, w=%d) = %s, want %s", ev, w, got, want)
			}
		}
	}
}

// FuzzFixedBaseExp cross-checks the comb against math/big modular
// exponentiation on arbitrary base/exponent bytes.
func FuzzFixedBaseExp(f *testing.F) {
	f.Add([]byte{2}, []byte{10}, uint8(4))
	f.Add([]byte{0xff, 0xff}, []byte{1}, uint8(1))
	f.Add([]byte{7}, []byte{0}, uint8(8))
	r := NewRNG(0xC0F)
	n := r.RandBits(160)
	n[0] |= 1
	m := NewMont(n)
	bn := toBig(n)
	f.Fuzz(func(t *testing.T, baseB, expB []byte, h uint8) {
		if len(baseB) > 64 || len(expB) > 24 {
			return // keep the modular reduction and comb bounded
		}
		base := FromBytes(baseB)
		e := FromBytes(expB)
		tbl := NewFixedBaseTable(m, base, 192, int(h%10))
		want := new(big.Int).Exp(toBig(Mod(base, n)), toBig(e), bn)
		if got := tbl.Exp(e); toBig(got).Cmp(want) != 0 {
			t.Fatalf("comb(%x^%x mod n) = %s, want %s", baseB, expB, got, want)
		}
	})
}

// Benchmarks for the scratch-reuse work: allocation counts are the point, so
// every benchmark reports them (run with -benchmem to see bytes as well).

func BenchmarkExpSliding2048(b *testing.B) { benchFixedVsSliding(b, false, 0) }

func BenchmarkFixedBaseExp2048H4(b *testing.B) { benchFixedVsSliding(b, true, 4) }
func BenchmarkFixedBaseExp2048H8(b *testing.B) { benchFixedVsSliding(b, true, 8) }

func benchFixedVsSliding(b *testing.B, comb bool, h int) {
	r := NewRNG(81)
	n := r.RandBits(2048)
	n[0] |= 1
	m := NewMont(n)
	base := r.RandBelow(n)
	e := r.RandBits(2048)
	var tbl *FixedBaseTable
	if comb {
		tbl = NewFixedBaseTable(m, base, 2048, h)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comb {
			tbl.Exp(e)
		} else {
			m.Exp(base, e)
		}
	}
}

func BenchmarkFixedBaseBuild2048H8(b *testing.B) {
	r := NewRNG(82)
	n := r.RandBits(2048)
	n[0] |= 1
	m := NewMont(n)
	base := r.RandBelow(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewFixedBaseTable(m, base, 2048, 8)
	}
}
