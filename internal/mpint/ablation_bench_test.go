package mpint

import "testing"

// Ablation benchmarks for the arithmetic design choices DESIGN.md §4 calls
// out: the Karatsuba threshold and the multiplication algorithms behind it.

func benchMulAlgo(b *testing.B, bits int, fn func(x, y Nat) Nat) {
	r := NewRNG(70)
	x := r.RandBits(bits)
	y := r.RandBits(bits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(x, y)
	}
}

func BenchmarkMulSchoolbook1024(b *testing.B) { benchMulAlgo(b, 1024, mulSchoolbook) }
func BenchmarkMulSchoolbook2048(b *testing.B) { benchMulAlgo(b, 2048, mulSchoolbook) }
func BenchmarkMulSchoolbook4096(b *testing.B) { benchMulAlgo(b, 4096, mulSchoolbook) }
func BenchmarkMulKaratsuba1024(b *testing.B)  { benchMulAlgo(b, 1024, mulKaratsuba) }
func BenchmarkMulKaratsuba2048(b *testing.B)  { benchMulAlgo(b, 2048, mulKaratsuba) }
func BenchmarkMulKaratsuba4096(b *testing.B)  { benchMulAlgo(b, 4096, mulKaratsuba) }

func BenchmarkExpWindow1(b *testing.B) { benchExpWindow(b, 1) }
func BenchmarkExpWindow3(b *testing.B) { benchExpWindow(b, 3) }
func BenchmarkExpWindow5(b *testing.B) { benchExpWindow(b, 5) }

func benchExpWindow(b *testing.B, w uint) {
	r := NewRNG(71)
	n := r.RandBits(1024)
	n[0] |= 1
	m := NewMont(n)
	base := r.RandBelow(n)
	e := r.RandBits(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ExpWindow(base, e, w)
	}
}

func TestExpWindowMatchesExp(t *testing.T) {
	r := NewRNG(72)
	n := r.RandBits(256)
	n[0] |= 1
	m := NewMont(n)
	base := r.RandBelow(n)
	e := r.RandBits(200)
	want := m.Exp(base, e)
	for w := uint(1); w <= 8; w++ {
		if got := m.ExpWindow(base, e, w); Cmp(got, want) != 0 {
			t.Fatalf("ExpWindow(w=%d) diverges", w)
		}
	}
}

func TestExpWindowRejectsBadWidth(t *testing.T) {
	m := NewMont(FromUint64(1000003))
	for _, w := range []uint{0, 13} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d should panic", w)
				}
			}()
			m.ExpWindow(FromUint64(2), FromUint64(3), w)
		}()
	}
}
