package mpint

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

// toBig converts a Nat into the math/big oracle representation.
func toBig(x Nat) *big.Int {
	return new(big.Int).SetBytes(x.Bytes())
}

// fromBig converts a non-negative big.Int into a Nat.
func fromBig(b *big.Int) Nat {
	if b.Sign() < 0 {
		panic("fromBig: negative")
	}
	return FromBytes(b.Bytes())
}

// randNat draws a random Nat with up to maxBits bits (possibly zero).
func randNat(r *RNG, maxBits int) Nat {
	bits := r.Intn(maxBits + 1)
	if bits == 0 {
		return nil
	}
	return r.RandBits(bits)
}

func TestFromUint64RoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 2, 0xFFFFFFFF, 0x100000000, 0xFFFFFFFFFFFFFFFF, 12345678901234}
	for _, v := range cases {
		got, ok := FromUint64(v).Uint64()
		if !ok || got != v {
			t.Errorf("FromUint64(%d) round trip = %d, ok=%v", v, got, ok)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 500; i++ {
		x := randNat(r, 300)
		got := FromBytes(x.Bytes())
		if Cmp(got, x) != 0 {
			t.Fatalf("bytes round trip failed for %s", x)
		}
		if !bytes.Equal(x.Bytes(), toBig(x).Bytes()) {
			t.Fatalf("Bytes disagrees with big.Int for %s", x)
		}
	}
}

func TestFillBytes(t *testing.T) {
	x := FromUint64(0xDEADBEEF)
	buf := x.FillBytes(make([]byte, 8))
	want := []byte{0, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF}
	if !bytes.Equal(buf, want) {
		t.Fatalf("FillBytes = %x, want %x", buf, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FillBytes should panic when the value does not fit")
		}
	}()
	x.FillBytes(make([]byte, 3))
}

func TestDecimalRoundTrip(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 200; i++ {
		x := randNat(r, 256)
		s := x.String()
		if s != toBig(x).String() {
			t.Fatalf("String() = %s, big says %s", s, toBig(x))
		}
		back, err := ParseDecimal(s)
		if err != nil {
			t.Fatalf("ParseDecimal(%s): %v", s, err)
		}
		if Cmp(back, x) != 0 {
			t.Fatalf("decimal round trip failed for %s", s)
		}
	}
}

func TestParseDecimalErrors(t *testing.T) {
	for _, s := range []string{"", "12a3", "-5", " 1"} {
		if _, err := ParseDecimal(s); err == nil {
			t.Errorf("ParseDecimal(%q) should fail", s)
		}
	}
}

func TestAddSubDifferential(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 2000; i++ {
		x, y := randNat(r, 400), randNat(r, 400)
		sum := Add(x, y)
		want := new(big.Int).Add(toBig(x), toBig(y))
		if toBig(sum).Cmp(want) != 0 {
			t.Fatalf("Add(%s,%s) = %s, want %s", x, y, sum, want)
		}
		back := Sub(sum, y)
		if Cmp(back, x) != 0 {
			t.Fatalf("Sub(Add(x,y),y) != x for x=%s y=%s", x, y)
		}
	}
}

func TestSubUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sub should panic on underflow")
		}
	}()
	Sub(FromUint64(1), FromUint64(2))
}

func TestCmpSub(t *testing.T) {
	d, sign := CmpSub(FromUint64(5), FromUint64(9))
	if sign != -1 || Cmp(d, FromUint64(4)) != 0 {
		t.Fatalf("CmpSub(5,9) = %s, %d", d, sign)
	}
	d, sign = CmpSub(FromUint64(9), FromUint64(5))
	if sign != 1 || Cmp(d, FromUint64(4)) != 0 {
		t.Fatalf("CmpSub(9,5) = %s, %d", d, sign)
	}
	if _, sign = CmpSub(FromUint64(7), FromUint64(7)); sign != 0 {
		t.Fatalf("CmpSub(7,7) sign = %d", sign)
	}
}

func TestMulDifferential(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 800; i++ {
		x, y := randNat(r, 600), randNat(r, 600)
		got := Mul(x, y)
		want := new(big.Int).Mul(toBig(x), toBig(y))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("Mul mismatch for %s * %s", x, y)
		}
	}
}

func TestMulKaratsubaLarge(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 40; i++ {
		// Force the Karatsuba path (> 32 limbs = 1024 bits), including
		// lopsided operand sizes.
		x := r.RandBits(2048 + r.Intn(2048))
		y := r.RandBits(1100 + r.Intn(4096))
		got := Mul(x, y)
		want := new(big.Int).Mul(toBig(x), toBig(y))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("Karatsuba mismatch at %d x %d bits", x.BitLen(), y.BitLen())
		}
	}
}

func TestShifts(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 500; i++ {
		x := randNat(r, 300)
		s := uint(r.Intn(200))
		if toBig(Lsh(x, s)).Cmp(new(big.Int).Lsh(toBig(x), s)) != 0 {
			t.Fatalf("Lsh(%s, %d) wrong", x, s)
		}
		if toBig(Rsh(x, s)).Cmp(new(big.Int).Rsh(toBig(x), s)) != 0 {
			t.Fatalf("Rsh(%s, %d) wrong", x, s)
		}
	}
}

func TestBitLenAndBit(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 300; i++ {
		x := randNat(r, 200)
		if x.BitLen() != toBig(x).BitLen() {
			t.Fatalf("BitLen(%s) = %d, want %d", x, x.BitLen(), toBig(x).BitLen())
		}
		for _, b := range []int{0, 1, 31, 32, 63, 199} {
			if x.Bit(b) != toBig(x).Bit(b) {
				t.Fatalf("Bit(%s, %d) mismatch", x, b)
			}
		}
	}
}

func TestTrailingZeroBits(t *testing.T) {
	cases := []struct {
		v    uint64
		want uint
	}{{0, 0}, {1, 0}, {2, 1}, {8, 3}, {0x100000000, 32}, {3 << 20, 20}}
	for _, c := range cases {
		if got := FromUint64(c.v).TrailingZeroBits(); got != c.want {
			t.Errorf("TrailingZeroBits(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestDivModDifferential(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 1500; i++ {
		x := randNat(r, 700)
		y := randNat(r, 350)
		if y.IsZero() {
			y = One()
		}
		q, rem := DivMod(x, y)
		bq, br := new(big.Int).QuoRem(toBig(x), toBig(y), new(big.Int))
		if toBig(q).Cmp(bq) != 0 || toBig(rem).Cmp(br) != 0 {
			t.Fatalf("DivMod(%s, %s) = (%s, %s), want (%s, %s)", x, y, q, rem, bq, br)
		}
	}
}

func TestDivKnuthCornerCases(t *testing.T) {
	// The D5/D6 add-back path triggers rarely with random inputs; construct
	// dividends of the form q*y + r with extreme quotient digits.
	r := NewRNG(9)
	maxWord := FromUint64(0xFFFFFFFF)
	for i := 0; i < 300; i++ {
		y := r.RandBits(64 + r.Intn(200))
		q := Lsh(maxWord, uint(32*r.Intn(4)))
		rem := r.RandBelow(y)
		x := Add(Mul(q, y), rem)
		gq, gr := DivMod(x, y)
		if Cmp(gq, q) != 0 || Cmp(gr, rem) != 0 {
			t.Fatalf("constructed DivMod failed: y=%s q=%s", y, q)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DivMod by zero should panic")
		}
	}()
	DivMod(FromUint64(5), nil)
}

func TestGCDLCMDifferential(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 400; i++ {
		x, y := randNat(r, 300), randNat(r, 300)
		g := GCD(x, y)
		want := new(big.Int).GCD(nil, nil, toBig(x), toBig(y))
		if toBig(g).Cmp(want) != 0 {
			t.Fatalf("GCD(%s, %s) = %s, want %s", x, y, g, want)
		}
		if !x.IsZero() && !y.IsZero() {
			l := LCM(x, y)
			bl := new(big.Int).Div(new(big.Int).Mul(toBig(x), toBig(y)), want)
			if toBig(l).Cmp(bl) != 0 {
				t.Fatalf("LCM(%s, %s) wrong", x, y)
			}
		}
	}
}

func TestModInverse(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 300; i++ {
		n := AddWord(randNat(r, 200), 2)
		x := r.RandBelow(n)
		inv, ok := ModInverse(x, n)
		wantOK := new(big.Int).GCD(nil, nil, toBig(x), toBig(n)).Cmp(big.NewInt(1)) == 0
		if ok != wantOK {
			t.Fatalf("ModInverse(%s, %s) ok=%v, want %v", x, n, ok, wantOK)
		}
		if ok {
			prod := Mod(Mul(x, inv), n)
			if !prod.IsOne() {
				t.Fatalf("x*inv mod n = %s for x=%s n=%s", prod, x, n)
			}
		}
	}
}

func TestModInverseEdges(t *testing.T) {
	if _, ok := ModInverse(FromUint64(3), One()); ok {
		t.Error("inverse mod 1 should fail")
	}
	if _, ok := ModInverse(Zero(), FromUint64(7)); ok {
		t.Error("inverse of 0 should fail")
	}
	inv, ok := ModInverse(One(), FromUint64(7))
	if !ok || !inv.IsOne() {
		t.Errorf("inverse of 1 mod 7 = %s, ok=%v", inv, ok)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	x := FromUint64(0x1122334455667788)
	w := x.Words(4)
	if len(w) != 4 || w[0] != 0x55667788 || w[1] != 0x11223344 || w[2] != 0 {
		t.Fatalf("Words = %x", w)
	}
	if Cmp(FromWords(w), x) != 0 {
		t.Fatal("FromWords round trip failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Words should panic when truncating")
		}
	}()
	x.Words(1)
}

// Property tests on algebraic invariants.

func TestPropertyAddCommutative(t *testing.T) {
	r := NewRNG(20)
	f := func(a, b uint64) bool {
		x, y := Mul(FromUint64(a), FromUint64(b)), Add(FromUint64(a), FromUint64(b))
		return Cmp(Add(x, y), Add(y, x)) == 0
	}
	if err := quick.Check(f, quickConfig(r)); err != nil {
		t.Error(err)
	}
}

func TestPropertyMulDistributes(t *testing.T) {
	r := NewRNG(21)
	for i := 0; i < 300; i++ {
		a, b, c := randNat(r, 256), randNat(r, 256), randNat(r, 256)
		left := Mul(a, Add(b, c))
		right := Add(Mul(a, b), Mul(a, c))
		if Cmp(left, right) != 0 {
			t.Fatalf("a(b+c) != ab+ac for a=%s b=%s c=%s", a, b, c)
		}
	}
}

func TestPropertyDivModIdentity(t *testing.T) {
	r := NewRNG(22)
	for i := 0; i < 500; i++ {
		x, y := randNat(r, 512), AddWord(randNat(r, 256), 1)
		q, rem := DivMod(x, y)
		if Cmp(Add(Mul(q, y), rem), x) != 0 {
			t.Fatalf("q*y + r != x for x=%s y=%s", x, y)
		}
		if Cmp(rem, y) >= 0 {
			t.Fatalf("remainder %s >= divisor %s", rem, y)
		}
	}
}

func quickConfig(r *RNG) *quick.Config {
	return &quick.Config{MaxCount: 200}
}
