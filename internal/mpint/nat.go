// Package mpint implements arbitrary-precision unsigned integer arithmetic
// from scratch on 32-bit limbs.
//
// The representation mirrors the paper's FRNS ("radix-based multi-precision
// number system"): an integer is a little-endian vector of w-bit words with
// w = 32, so that one simulated GPU thread can own a contiguous run of words
// (see internal/ghe for the limb-parallel kernels built on top).
//
// The package provides the full arithmetic substrate required by Paillier
// and RSA: addition, subtraction, multiplication (schoolbook and Karatsuba),
// Knuth Algorithm-D division, Montgomery multiplication (the CIOS method of
// Algorithm 1 in the paper), sliding-window modular exponentiation, binary
// extended-GCD modular inverse, and Miller–Rabin prime generation.
//
// math/big is deliberately not used anywhere in this package; the test suite
// uses it only as a differential oracle.
package mpint

import "fmt"

// Word is a single limb. The paper's FRNS uses the machine word size; we fix
// w = 32 so that every carry chain fits in a uint64 intermediate.
type Word = uint32

// WordBits is the number of bits per limb.
const WordBits = 32

// Nat is an unsigned multi-precision integer stored as little-endian limbs.
// The canonical form has no trailing zero limbs; the zero value (nil) is 0.
// Nat values are immutable by convention: arithmetic functions allocate
// fresh results and never alias their inputs.
type Nat []Word

// trim removes trailing zero limbs, returning the canonical form.
func trim(x Nat) Nat {
	i := len(x)
	for i > 0 && x[i-1] == 0 {
		i--
	}
	return x[:i]
}

// Zero returns the canonical zero.
func Zero() Nat { return nil }

// One returns the canonical one.
func One() Nat { return Nat{1} }

// FromUint64 converts a uint64 into a Nat.
func FromUint64(v uint64) Nat {
	if v == 0 {
		return nil
	}
	if v <= 0xFFFFFFFF {
		return Nat{Word(v)}
	}
	return Nat{Word(v), Word(v >> 32)}
}

// Uint64 returns the low 64 bits of x and whether x fits in a uint64.
func (x Nat) Uint64() (v uint64, ok bool) {
	switch len(x) {
	case 0:
		return 0, true
	case 1:
		return uint64(x[0]), true
	case 2:
		return uint64(x[0]) | uint64(x[1])<<32, true
	default:
		return uint64(x[0]) | uint64(x[1])<<32, false
	}
}

// IsZero reports whether x == 0.
func (x Nat) IsZero() bool { return len(trim(x)) == 0 }

// IsOne reports whether x == 1.
func (x Nat) IsOne() bool {
	t := trim(x)
	return len(t) == 1 && t[0] == 1
}

// IsEven reports whether x is even.
func (x Nat) IsEven() bool { return len(x) == 0 || x[0]&1 == 0 }

// Clone returns an independent copy of x.
func (x Nat) Clone() Nat {
	if len(x) == 0 {
		return nil
	}
	c := make(Nat, len(x))
	copy(c, x)
	return c
}

// BitLen returns the length of x in bits; BitLen(0) == 0.
func (x Nat) BitLen() int {
	t := trim(x)
	if len(t) == 0 {
		return 0
	}
	top := t[len(t)-1]
	n := (len(t) - 1) * WordBits
	for top != 0 {
		n++
		top >>= 1
	}
	return n
}

// Bit returns bit i of x (0 or 1). Bits beyond BitLen are 0.
func (x Nat) Bit(i int) uint {
	if i < 0 {
		panic("mpint: negative bit index")
	}
	w, b := i/WordBits, uint(i%WordBits)
	if w >= len(x) {
		return 0
	}
	return uint(x[w]>>b) & 1
}

// Cmp compares x and y, returning -1, 0, or +1.
func Cmp(x, y Nat) int {
	x, y = trim(x), trim(y)
	if len(x) != len(y) {
		if len(x) < len(y) {
			return -1
		}
		return 1
	}
	for i := len(x) - 1; i >= 0; i-- {
		if x[i] != y[i] {
			if x[i] < y[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Add returns x + y.
func Add(x, y Nat) Nat {
	if len(x) < len(y) {
		x, y = y, x
	}
	z := make(Nat, len(x)+1)
	var carry uint64
	for i := 0; i < len(y); i++ {
		s := uint64(x[i]) + uint64(y[i]) + carry
		z[i] = Word(s)
		carry = s >> WordBits
	}
	for i := len(y); i < len(x); i++ {
		s := uint64(x[i]) + carry
		z[i] = Word(s)
		carry = s >> WordBits
	}
	z[len(x)] = Word(carry)
	return trim(z)
}

// AddWord returns x + w.
func AddWord(x Nat, w Word) Nat { return Add(x, Nat{w}) }

// Sub returns x - y. It panics if y > x; unsigned arithmetic has no
// representation for negative values (use CmpSub when the sign is unknown).
func Sub(x, y Nat) Nat {
	d, borrow := subBorrow(x, y)
	if borrow != 0 {
		panic("mpint: Sub underflow")
	}
	return d
}

// CmpSub returns |x-y| together with the sign of x-y (-1, 0, +1).
func CmpSub(x, y Nat) (diff Nat, sign int) {
	switch Cmp(x, y) {
	case 0:
		return nil, 0
	case 1:
		return Sub(x, y), 1
	default:
		return Sub(y, x), -1
	}
}

// subBorrow computes x - y, returning the difference and the final borrow
// (1 when y > x, in which case diff is the two's-complement wraparound).
func subBorrow(x, y Nat) (Nat, Word) {
	x, y = trim(x), trim(y)
	n := len(x)
	if len(y) > n {
		n = len(y)
	}
	z := make(Nat, n)
	var borrow uint64
	for i := 0; i < n; i++ {
		var xi, yi uint64
		if i < len(x) {
			xi = uint64(x[i])
		}
		if i < len(y) {
			yi = uint64(y[i])
		}
		d := xi - yi - borrow
		z[i] = Word(d)
		borrow = (d >> 32) & 1 // d went negative iff bit 32.. set after wrap
	}
	return trim(z), Word(borrow)
}

// SubWord returns x - w, panicking on underflow.
func SubWord(x Nat, w Word) Nat { return Sub(x, Nat{w}) }

// Lsh returns x << s.
func Lsh(x Nat, s uint) Nat {
	x = trim(x)
	if len(x) == 0 || s == 0 {
		return x.Clone()
	}
	words := int(s / WordBits)
	bits := s % WordBits
	z := make(Nat, len(x)+words+1)
	if bits == 0 {
		copy(z[words:], x)
		return trim(z)
	}
	var carry Word
	for i, xi := range x {
		z[words+i] = xi<<bits | carry
		carry = Word(uint64(xi) >> (WordBits - bits))
	}
	z[words+len(x)] = carry
	return trim(z)
}

// Rsh returns x >> s.
func Rsh(x Nat, s uint) Nat {
	x = trim(x)
	words := int(s / WordBits)
	if len(x) == 0 || words >= len(x) {
		return nil
	}
	bits := s % WordBits
	z := make(Nat, len(x)-words)
	if bits == 0 {
		copy(z, x[words:])
		return trim(z)
	}
	for i := 0; i < len(z); i++ {
		lo := x[words+i] >> bits
		var hi Word
		if words+i+1 < len(x) {
			hi = x[words+i+1] << (WordBits - bits)
		}
		z[i] = lo | hi
	}
	return trim(z)
}

// TrailingZeroBits returns the number of consecutive zero bits starting at
// bit 0. TrailingZeroBits(0) == 0 by convention.
func (x Nat) TrailingZeroBits() uint {
	x = trim(x)
	if len(x) == 0 {
		return 0
	}
	var n uint
	for i, w := range x {
		if w == 0 {
			continue
		}
		n = uint(i) * WordBits
		for w&1 == 0 {
			n++
			w >>= 1
		}
		return n
	}
	return 0
}

// String formats x in decimal.
func (x Nat) String() string {
	x = trim(x)
	if len(x) == 0 {
		return "0"
	}
	// Repeatedly divide by 1e9 and emit 9-digit chunks.
	const chunk = 1_000_000_000
	rem := x.Clone()
	var groups []uint32
	for !rem.IsZero() {
		var r uint64
		q := make(Nat, len(rem))
		for i := len(rem) - 1; i >= 0; i-- {
			cur := r<<WordBits | uint64(rem[i])
			q[i] = Word(cur / chunk)
			r = cur % chunk
		}
		groups = append(groups, uint32(r))
		rem = trim(q)
	}
	s := fmt.Sprintf("%d", groups[len(groups)-1])
	for i := len(groups) - 2; i >= 0; i-- {
		s += fmt.Sprintf("%09d", groups[i])
	}
	return s
}

// ParseDecimal parses a base-10 string into a Nat.
func ParseDecimal(s string) (Nat, error) {
	if len(s) == 0 {
		return nil, fmt.Errorf("mpint: empty decimal string")
	}
	var z Nat
	for i := 0; i < len(s); i += 9 {
		end := i + 9
		if end > len(s) {
			end = len(s)
		}
		var chunk uint64
		var pow uint64 = 1
		for _, c := range s[i:end] {
			if c < '0' || c > '9' {
				return nil, fmt.Errorf("mpint: invalid digit %q", c)
			}
			chunk = chunk*10 + uint64(c-'0')
			pow *= 10
		}
		z = Add(mulWord(z, Word(pow)), FromUint64(chunk))
	}
	return z, nil
}

// Bytes returns the big-endian byte encoding of x with no leading zeros;
// Bytes(0) is an empty slice.
func (x Nat) Bytes() []byte {
	return x.AppendBytes(nil)
}

// AppendBytes appends the big-endian byte encoding of x (no leading zeros)
// to dst and returns the extended slice; zero appends nothing. Encoders with
// a reusable buffer avoid the per-value allocation Bytes pays.
func (x Nat) AppendBytes(dst []byte) []byte {
	x = trim(x)
	if len(x) == 0 {
		return dst
	}
	switch top := x[len(x)-1]; {
	case top >= 1<<24:
		dst = append(dst, byte(top>>24), byte(top>>16), byte(top>>8), byte(top))
	case top >= 1<<16:
		dst = append(dst, byte(top>>16), byte(top>>8), byte(top))
	case top >= 1<<8:
		dst = append(dst, byte(top>>8), byte(top))
	default:
		dst = append(dst, byte(top))
	}
	for i := len(x) - 2; i >= 0; i-- {
		w := x[i]
		dst = append(dst, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	return dst
}

// FromBytes parses a big-endian byte slice into a Nat.
func FromBytes(b []byte) Nat {
	z := make(Nat, (len(b)+3)/4)
	for i := 0; i < len(b); i++ {
		// byte i from the big end contributes to bit position 8*(len-1-i)
		shift := uint(8 * (len(b) - 1 - i))
		z[shift/32] |= Word(b[i]) << (shift % 32)
	}
	return trim(z)
}

// FillBytes writes x into buf as a fixed-width big-endian value, zero-padded
// on the left. It panics if x does not fit.
func (x Nat) FillBytes(buf []byte) []byte {
	b := x.Bytes()
	if len(b) > len(buf) {
		panic("mpint: FillBytes buffer too small")
	}
	for i := range buf[:len(buf)-len(b)] {
		buf[i] = 0
	}
	copy(buf[len(buf)-len(b):], b)
	return buf
}

// Words returns the little-endian limbs of x padded (or truncated, panicking
// if information would be lost) to exactly n limbs. This is the layout the
// GPU kernels operate on.
func (x Nat) Words(n int) []Word {
	x = trim(x)
	if len(x) > n {
		panic(fmt.Sprintf("mpint: value needs %d limbs, requested %d", len(x), n))
	}
	w := make([]Word, n)
	copy(w, x)
	return w
}

// FromWords builds a Nat from a little-endian limb slice.
func FromWords(w []Word) Nat {
	z := make(Nat, len(w))
	copy(z, w)
	return trim(z)
}
