package mpint

// karatsubaThreshold is the limb count above which multiplication switches
// from schoolbook to Karatsuba. 32 limbs = 1024 bits, around where the
// asymptotics win for 32-bit limbs.
const karatsubaThreshold = 32

// Mul returns x * y.
func Mul(x, y Nat) Nat {
	x, y = trim(x), trim(y)
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	if len(x) == 1 {
		return mulWord(y, x[0])
	}
	if len(y) == 1 {
		return mulWord(x, y[0])
	}
	if len(x) < karatsubaThreshold || len(y) < karatsubaThreshold {
		return mulSchoolbook(x, y)
	}
	return mulKaratsuba(x, y)
}

// mulWord returns x * w.
func mulWord(x Nat, w Word) Nat {
	x = trim(x)
	if len(x) == 0 || w == 0 {
		return nil
	}
	z := make(Nat, len(x)+1)
	var carry uint64
	for i, xi := range x {
		p := uint64(xi)*uint64(w) + carry
		z[i] = Word(p)
		carry = p >> WordBits
	}
	z[len(x)] = Word(carry)
	return trim(z)
}

// mulSchoolbook is the O(n·m) product.
func mulSchoolbook(x, y Nat) Nat {
	z := make(Nat, len(x)+len(y))
	for i, yi := range y {
		if yi == 0 {
			continue
		}
		var carry uint64
		for j, xj := range x {
			p := uint64(xj)*uint64(yi) + uint64(z[i+j]) + carry
			z[i+j] = Word(p)
			carry = p >> WordBits
		}
		z[i+len(x)] = Word(carry)
	}
	return trim(z)
}

// mulKaratsuba splits both operands at half the shorter length and recurses:
// x = x1·B + x0, y = y1·B + y0,
// xy = x1y1·B² + ((x1+x0)(y1+y0) − x1y1 − x0y0)·B + x0y0.
func mulKaratsuba(x, y Nat) Nat {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	half := n / 2
	x0, x1 := trim(x[:half]), trim(x[half:])
	y0, y1 := trim(y[:half]), trim(y[half:])

	z0 := Mul(x0, y0)
	z2 := Mul(x1, y1)
	mid := Mul(Add(x0, x1), Add(y0, y1))
	mid = Sub(Sub(mid, z0), z2)

	res := Add(z0, Lsh(mid, uint(half*WordBits)))
	res = Add(res, Lsh(z2, uint(2*half*WordBits)))
	return res
}

// Sqr returns x².
func Sqr(x Nat) Nat { return Mul(x, x) }
