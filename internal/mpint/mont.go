package mpint

// Mont is a Montgomery multiplication context for a fixed odd modulus n.
// It precomputes n' = -n⁻¹ mod 2³² (the per-word inverse used by CIOS,
// Algorithm 1 in the paper) and R² mod n for conversion into Montgomery
// form, where R = 2^(32·k) and k = len(n) in limbs.
type Mont struct {
	n      Nat    // the modulus, trimmed
	k      int    // limb count of n; R = 2^(32k)
	n0inv  Word   // -n[0]⁻¹ mod 2³²
	rr     Nat    // R² mod n
	one    Nat    // R mod n (the Montgomery form of 1)
	nWords []Word // n padded to exactly k limbs
}

// NewMont builds a context for odd modulus n ≥ 3. It panics on even or
// too-small moduli, which indicate programmer error upstream.
func NewMont(n Nat) *Mont {
	n = trim(n)
	if len(n) == 0 || n.IsEven() || (len(n) == 1 && n[0] < 3) {
		panic("mpint: Montgomery modulus must be odd and >= 3")
	}
	k := len(n)
	m := &Mont{n: n.Clone(), k: k, nWords: n.Words(k)}
	m.n0inv = negInvWord(n[0])
	// R mod n and R² mod n via plain division (setup cost only).
	r := Lsh(One(), uint(k*WordBits))
	m.one = Mod(r, n)
	m.rr = Mod(Mul(m.one, m.one), n)
	return m
}

// negInvWord returns -w⁻¹ mod 2³² for odd w using Newton iteration:
// each step doubles the number of correct low bits.
func negInvWord(w Word) Word {
	inv := w // 2^3 correct bits to start (w·w ≡ 1 mod 8 for odd w)
	for i := 0; i < 4; i++ {
		inv *= 2 - w*inv
	}
	return -inv
}

// N returns the modulus.
func (m *Mont) N() Nat { return m.n }

// Limbs returns the limb count k of the modulus (R = 2^(32k)).
func (m *Mont) Limbs() int { return m.k }

// N0Inv returns -n⁻¹ mod 2³², the CIOS per-word constant.
func (m *Mont) N0Inv() Word { return m.n0inv }

// RR returns R² mod n.
func (m *Mont) RR() Nat { return m.rr }

// ToMont converts x (< n) into Montgomery form: x·R mod n.
func (m *Mont) ToMont(x Nat) Nat { return m.Mul(x, m.rr) }

// FromMont converts out of Montgomery form: x·R⁻¹ mod n.
func (m *Mont) FromMont(x Nat) Nat { return m.Mul(x, One()) }

// MontOne returns the Montgomery form of 1 (R mod n).
func (m *Mont) MontOne() Nat { return m.one.Clone() }

// Mul returns a·b·R⁻¹ mod n using the CIOS (coarsely integrated operand
// scanning) method — the serial reference for the paper's Algorithm 1/2.
// Inputs must be < n.
func (m *Mont) Mul(a, b Nat) Nat {
	k := m.k
	aw := a.Words(k)
	bw := b.Words(k)
	t := make([]uint64, k+2) // t[k+1] never exceeds 1
	for i := 0; i < k; i++ {
		// t += a * b[i]
		var carry uint64
		bi := uint64(bw[i])
		for j := 0; j < k; j++ {
			s := t[j] + uint64(aw[j])*bi + carry
			t[j] = s & 0xFFFFFFFF
			carry = s >> WordBits
		}
		s := t[k] + carry
		t[k] = s & 0xFFFFFFFF
		t[k+1] += s >> WordBits

		// mi = t[0] * n' mod 2³²; t += mi * n; t >>= 32
		mi := uint64(Word(t[0]) * m.n0inv)
		s = t[0] + mi*uint64(m.nWords[0])
		carry = s >> WordBits
		for j := 1; j < k; j++ {
			s = t[j] + mi*uint64(m.nWords[j]) + carry
			t[j-1] = s & 0xFFFFFFFF
			carry = s >> WordBits
		}
		s = t[k] + carry
		t[k-1] = s & 0xFFFFFFFF
		t[k] = t[k+1] + s>>WordBits
		t[k+1] = 0
	}
	// Final conditional subtraction.
	z := make(Nat, k)
	for i := 0; i < k; i++ {
		z[i] = Word(t[i])
	}
	if t[k] != 0 || Cmp(z, m.n) >= 0 {
		// z may exceed n by less than n (t[k] ≤ 1), so one subtraction with
		// the implicit 2^(32k) bit suffices.
		var borrow uint64
		for i := 0; i < k; i++ {
			d := uint64(z[i]) - uint64(m.nWords[i]) - borrow
			z[i] = Word(d)
			borrow = (d >> 32) & 1
		}
	}
	return trim(z)
}

// expWindowBits chooses the sliding-window width for an exponent of the
// given bit length, balancing table precomputation against saved multiplies.
func expWindowBits(expBits int) uint {
	switch {
	case expBits <= 8:
		return 1
	case expBits <= 64:
		return 3
	case expBits <= 512:
		return 4
	case expBits <= 2048:
		return 5
	default:
		return 6
	}
}

// Exp returns base^e mod n using left-to-right sliding-window exponentiation
// over Montgomery multiplication — the paper's "extension of the sliding
// window exponential method", reducing the multiply count from e to
// roughly log₂(e)·(1 + 1/w) plus 2^(w−1) table entries. The window width is
// chosen from the exponent size; ExpWindow fixes it explicitly.
func (m *Mont) Exp(base, e Nat) Nat {
	return m.ExpWindow(base, e, expWindowBits(e.BitLen()))
}

// ExpWindow is Exp with a caller-chosen window width w ∈ [1, 12] — exposed
// for the window-size ablation benchmark.
func (m *Mont) ExpWindow(base, e Nat, w uint) Nat {
	if w < 1 || w > 12 {
		panic("mpint: ExpWindow width out of range")
	}
	base = Mod(base, m.n)
	if e.IsZero() {
		return One()
	}
	bm := m.ToMont(base)
	// Precompute odd powers base^1, base^3, ..., base^(2^w - 1) in Montgomery
	// form.
	tbl := make([]Nat, 1<<(w-1))
	tbl[0] = bm
	if w > 1 {
		b2 := m.Mul(bm, bm)
		for i := 1; i < len(tbl); i++ {
			tbl[i] = m.Mul(tbl[i-1], b2)
		}
	}
	acc := m.one.Clone()
	i := e.BitLen() - 1
	for i >= 0 {
		if e.Bit(i) == 0 {
			acc = m.Mul(acc, acc)
			i--
			continue
		}
		// Find the longest window [i..j] (≤ w bits) ending in a 1 bit.
		j := i - int(w) + 1
		if j < 0 {
			j = 0
		}
		for e.Bit(j) == 0 {
			j++
		}
		var win uint
		for b := i; b >= j; b-- {
			acc = m.Mul(acc, acc)
			win = win<<1 | e.Bit(b)
		}
		acc = m.Mul(acc, tbl[win>>1])
		i = j - 1
	}
	return m.FromMont(acc)
}

// ModExp returns base^e mod n for any modulus n ≥ 1. Odd moduli use
// Montgomery sliding-window exponentiation; even moduli fall back to
// square-and-multiply with explicit division (rare in this codebase —
// Paillier and RSA moduli are odd).
func ModExp(base, e, n Nat) Nat {
	n = trim(n)
	if len(n) == 0 {
		panic("mpint: ModExp modulus is zero")
	}
	if n.IsOne() {
		return nil
	}
	if !n.IsEven() {
		return NewMont(n).Exp(base, e)
	}
	result := One()
	b := Mod(base, n)
	for i := 0; i < e.BitLen(); i++ {
		if e.Bit(i) == 1 {
			result = Mod(Mul(result, b), n)
		}
		b = Mod(Mul(b, b), n)
	}
	return result
}

// ModMul returns a*b mod n.
func ModMul(a, b, n Nat) Nat { return Mod(Mul(a, b), n) }

// ModAdd returns (a+b) mod n.
func ModAdd(a, b, n Nat) Nat { return Mod(Add(a, b), n) }

// ModSub returns (a-b) mod n for a, b < n.
func ModSub(a, b, n Nat) Nat {
	d, sign := CmpSub(Mod(a, n), Mod(b, n))
	if sign < 0 {
		return Sub(n, d)
	}
	return d
}
