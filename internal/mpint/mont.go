package mpint

import (
	"fmt"
	"sync"
)

// Mont is a Montgomery multiplication context for a fixed odd modulus n.
// It precomputes n' = -n⁻¹ mod 2³² (the per-word inverse used by CIOS,
// Algorithm 1 in the paper) and R² mod n for conversion into Montgomery
// form, where R = 2^(32·k) and k = len(n) in limbs.
type Mont struct {
	n      Nat    // the modulus, trimmed
	k      int    // limb count of n; R = 2^(32k)
	n0inv  Word   // -n[0]⁻¹ mod 2³²
	rr     Nat    // R² mod n
	one    Nat    // R mod n (the Montgomery form of 1)
	nWords []Word // n padded to exactly k limbs

	scratch sync.Pool // *mulScratch, reused across multiply chains
}

// NewMont builds a context for odd modulus n ≥ 3. It panics on even or
// too-small moduli, which indicate programmer error upstream.
func NewMont(n Nat) *Mont {
	n = trim(n)
	if len(n) == 0 || n.IsEven() || (len(n) == 1 && n[0] < 3) {
		panic("mpint: Montgomery modulus must be odd and >= 3")
	}
	k := len(n)
	m := &Mont{n: n.Clone(), k: k, nWords: n.Words(k)}
	m.n0inv = negInvWord(n[0])
	// R mod n and R² mod n via plain division (setup cost only).
	r := Lsh(One(), uint(k*WordBits))
	m.one = Mod(r, n)
	m.rr = Mod(Mul(m.one, m.one), n)
	return m
}

// negInvWord returns -w⁻¹ mod 2³² for odd w using Newton iteration:
// each step doubles the number of correct low bits.
func negInvWord(w Word) Word {
	inv := w // 2^3 correct bits to start (w·w ≡ 1 mod 8 for odd w)
	for i := 0; i < 4; i++ {
		inv *= 2 - w*inv
	}
	return -inv
}

// N returns the modulus.
func (m *Mont) N() Nat { return m.n }

// Limbs returns the limb count k of the modulus (R = 2^(32k)).
func (m *Mont) Limbs() int { return m.k }

// N0Inv returns -n⁻¹ mod 2³², the CIOS per-word constant.
func (m *Mont) N0Inv() Word { return m.n0inv }

// RR returns R² mod n.
func (m *Mont) RR() Nat { return m.rr }

// ToMont converts x (< n) into Montgomery form: x·R mod n.
func (m *Mont) ToMont(x Nat) Nat { return m.Mul(x, m.rr) }

// FromMont converts out of Montgomery form: x·R⁻¹ mod n.
func (m *Mont) FromMont(x Nat) Nat { return m.Mul(x, One()) }

// MontOne returns the Montgomery form of 1 (R mod n).
func (m *Mont) MontOne() Nat { return m.one.Clone() }

// mulScratch holds the working buffers of one CIOS multiplication — the
// uint64 accumulator and the zero-padded operand copies — so a multiply
// chain (an exponentiation, a comb evaluation) reuses one buffer set instead
// of allocating three slices per Mul.
type mulScratch struct {
	t      []uint64
	aw, bw []Word
}

// getScratch returns a scratch buffer set sized for this modulus, drawing
// from a pool so concurrent exponentiations (the simulated GPU lanes) each
// get their own set without contention.
func (m *Mont) getScratch() *mulScratch {
	if sc, ok := m.scratch.Get().(*mulScratch); ok {
		return sc
	}
	return &mulScratch{
		t:  make([]uint64, m.k+2),
		aw: make([]Word, m.k),
		bw: make([]Word, m.k),
	}
}

func (m *Mont) putScratch(sc *mulScratch) { m.scratch.Put(sc) }

// padInto copies trimmed x into dst, zero-filling the tail. It panics when x
// needs more limbs than dst holds (operands must be < n).
func padInto(dst []Word, x Nat) {
	x = trim(x)
	if len(x) > len(dst) {
		panic(fmt.Sprintf("mpint: operand needs %d limbs, scratch has %d", len(x), len(dst)))
	}
	n := copy(dst, x)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// Mul returns a·b·R⁻¹ mod n using the CIOS (coarsely integrated operand
// scanning) method — the serial reference for the paper's Algorithm 1/2.
// Inputs must be < n.
func (m *Mont) Mul(a, b Nat) Nat {
	sc := m.getScratch()
	z := m.mulInto(make(Nat, m.k), a, b, sc)
	m.putScratch(sc)
	return z
}

// mulInto is Mul writing its result into dst (which must hold at least k
// limbs) through caller-provided scratch. Both operands are staged into the
// scratch copies first, so dst may alias a or b. The returned Nat is dst
// trimmed to canonical form.
func (m *Mont) mulInto(dst Nat, a, b Nat, sc *mulScratch) Nat {
	k := m.k
	padInto(sc.aw, a)
	padInto(sc.bw, b)
	aw, bw, t := sc.aw, sc.bw, sc.t
	for i := range t {
		t[i] = 0 // t[k+1] never exceeds 1 during the scan
	}
	for i := 0; i < k; i++ {
		// t += a * b[i]
		var carry uint64
		bi := uint64(bw[i])
		for j := 0; j < k; j++ {
			s := t[j] + uint64(aw[j])*bi + carry
			t[j] = s & 0xFFFFFFFF
			carry = s >> WordBits
		}
		s := t[k] + carry
		t[k] = s & 0xFFFFFFFF
		t[k+1] += s >> WordBits

		// mi = t[0] * n' mod 2³²; t += mi * n; t >>= 32
		mi := uint64(Word(t[0]) * m.n0inv)
		s = t[0] + mi*uint64(m.nWords[0])
		carry = s >> WordBits
		for j := 1; j < k; j++ {
			s = t[j] + mi*uint64(m.nWords[j]) + carry
			t[j-1] = s & 0xFFFFFFFF
			carry = s >> WordBits
		}
		s = t[k] + carry
		t[k-1] = s & 0xFFFFFFFF
		t[k] = t[k+1] + s>>WordBits
		t[k+1] = 0
	}
	// Final conditional subtraction.
	z := dst[:k]
	for i := 0; i < k; i++ {
		z[i] = Word(t[i])
	}
	if t[k] != 0 || Cmp(z, m.n) >= 0 {
		// z may exceed n by less than n (t[k] ≤ 1), so one subtraction with
		// the implicit 2^(32k) bit suffices.
		var borrow uint64
		for i := 0; i < k; i++ {
			d := uint64(z[i]) - uint64(m.nWords[i]) - borrow
			z[i] = Word(d)
			borrow = (d >> 32) & 1
		}
	}
	return trim(z)
}

// expWindowBits chooses the sliding-window width for an exponent of the
// given bit length, balancing table precomputation against saved multiplies.
// The returned width never exceeds the exponent's own bit length, so tiny
// exponents (0, 1, a few bits) cannot provision oversized tables.
func expWindowBits(expBits int) uint {
	var w uint
	switch {
	case expBits <= 8:
		w = 1
	case expBits <= 64:
		w = 3
	case expBits <= 512:
		w = 4
	case expBits <= 2048:
		w = 5
	default:
		w = 6
	}
	if expBits >= 1 && w > uint(expBits) {
		w = uint(expBits)
	}
	return w
}

// opSquare marks a squaring step in a compiled schedule; non-negative
// entries index the odd-power table (tbl[i] holds base^(2i+1)).
const opSquare = -1

// ExpSchedule is the recoded sliding-window plan of one exponent: the exact
// square/multiply sequence ExpWindow derives by scanning the exponent bits,
// compiled once so vector operations sharing an exponent pay the scan and
// window recoding a single time instead of once per element. A compiled
// schedule is immutable and safe for concurrent use.
type ExpSchedule struct {
	w      uint
	bits   int
	maxIdx int
	ops    []int16
	isZero bool
	isOne  bool
}

// CompileExp recodes exponent e into its sliding-window schedule at width
// w ∈ [1, 12]. The width is clamped to e's bit length; e == 0 and e == 1
// compile to empty schedules that require no odd-power table at all.
func CompileExp(e Nat, w uint) *ExpSchedule {
	if w < 1 || w > 12 {
		panic("mpint: CompileExp width out of range")
	}
	bits := e.BitLen()
	s := &ExpSchedule{w: w, bits: bits}
	switch bits {
	case 0:
		s.isZero = true
		s.w = 1
		return s
	case 1:
		s.isOne = true
		s.w = 1
		return s
	}
	if int(w) > bits {
		w = uint(bits)
		s.w = w
	}
	s.ops = make([]int16, 0, bits+bits/int(w)+1)
	i := bits - 1
	for i >= 0 {
		if e.Bit(i) == 0 {
			s.ops = append(s.ops, opSquare)
			i--
			continue
		}
		// Find the longest window [i..j] (≤ w bits) ending in a 1 bit.
		j := i - int(w) + 1
		if j < 0 {
			j = 0
		}
		for e.Bit(j) == 0 {
			j++
		}
		var win uint
		for b := i; b >= j; b-- {
			s.ops = append(s.ops, opSquare)
			win = win<<1 | e.Bit(b)
		}
		idx := int(win >> 1)
		if idx > s.maxIdx {
			s.maxIdx = idx
		}
		s.ops = append(s.ops, int16(idx))
		i = j - 1
	}
	return s
}

// CompileExpAuto recodes e at the window width Exp itself would pick.
func CompileExpAuto(e Nat) *ExpSchedule { return CompileExp(e, expWindowBits(e.BitLen())) }

// WindowBits returns the schedule's effective window width (clamped to the
// exponent bit length).
func (s *ExpSchedule) WindowBits() uint { return s.w }

// ExpBits returns the bit length of the compiled exponent.
func (s *ExpSchedule) ExpBits() int { return s.bits }

// TableSize returns how many odd-power table entries one execution needs —
// zero for the trivial exponents 0 and 1, which build no table.
func (s *ExpSchedule) TableSize() int {
	if s.isZero || s.isOne {
		return 0
	}
	return s.maxIdx + 1
}

// Ops returns the length of the square/multiply sequence.
func (s *ExpSchedule) Ops() int { return len(s.ops) }

// Exp returns base^e mod n using left-to-right sliding-window exponentiation
// over Montgomery multiplication — the paper's "extension of the sliding
// window exponential method", reducing the multiply count from e to
// roughly log₂(e)·(1 + 1/w) plus 2^(w−1) table entries. The window width is
// chosen from the exponent size; ExpWindow fixes it explicitly.
func (m *Mont) Exp(base, e Nat) Nat {
	return m.ExpSched(base, CompileExpAuto(e))
}

// ExpWindow is Exp with a caller-chosen window width w ∈ [1, 12] — exposed
// for the window-size ablation benchmark.
func (m *Mont) ExpWindow(base, e Nat, w uint) Nat {
	if w < 1 || w > 12 {
		panic("mpint: ExpWindow width out of range")
	}
	return m.ExpSched(base, CompileExp(e, w))
}

// ExpSched executes a compiled schedule against one base: base^e mod n where
// s = CompileExp(e, ·). The multiply chain runs through two ping-pong
// accumulator buffers and one pooled scratch, so an exponentiation costs a
// handful of allocations (the table) instead of three per multiply.
func (m *Mont) ExpSched(base Nat, s *ExpSchedule) Nat {
	base = Mod(base, m.n)
	if s.isZero {
		return One()
	}
	if s.isOne {
		return base
	}
	sc := m.getScratch()
	defer m.putScratch(sc)
	// Odd powers base^1, base^3, ..., in Montgomery form, up to the highest
	// index the schedule references.
	bm := m.mulInto(make(Nat, m.k), base, m.rr, sc)
	tbl := make([]Nat, s.maxIdx+1)
	tbl[0] = bm
	if s.maxIdx > 0 {
		b2 := m.mulInto(make(Nat, m.k), bm, bm, sc)
		for i := 1; i <= s.maxIdx; i++ {
			tbl[i] = m.mulInto(make(Nat, m.k), tbl[i-1], b2, sc)
		}
	}
	bufs := [2]Nat{make(Nat, m.k), make(Nat, m.k)}
	cur := m.one
	which := 0
	for _, op := range s.ops {
		x := cur
		if op != opSquare {
			x = tbl[op]
		}
		cur = m.mulInto(bufs[which], cur, x, sc)
		which ^= 1
	}
	// Fresh allocation out of Montgomery form: the result must not alias the
	// ping-pong buffers.
	return m.mulInto(make(Nat, m.k), cur, One(), sc)
}

// ModExp returns base^e mod n for any modulus n ≥ 1. Odd moduli use
// Montgomery sliding-window exponentiation; even moduli fall back to
// square-and-multiply with explicit division (rare in this codebase —
// Paillier and RSA moduli are odd).
func ModExp(base, e, n Nat) Nat {
	n = trim(n)
	if len(n) == 0 {
		panic("mpint: ModExp modulus is zero")
	}
	if n.IsOne() {
		return nil
	}
	if !n.IsEven() {
		return NewMont(n).Exp(base, e)
	}
	result := One()
	b := Mod(base, n)
	for i := 0; i < e.BitLen(); i++ {
		if e.Bit(i) == 1 {
			result = Mod(Mul(result, b), n)
		}
		b = Mod(Mul(b, b), n)
	}
	return result
}

// ModMul returns a*b mod n.
func ModMul(a, b, n Nat) Nat { return Mod(Mul(a, b), n) }

// ModAdd returns (a+b) mod n.
func ModAdd(a, b, n Nat) Nat { return Mod(Add(a, b), n) }

// ModSub returns (a-b) mod n for a, b < n.
func ModSub(a, b, n Nat) Nat {
	d, sign := CmpSub(Mod(a, n), Mod(b, n))
	if sign < 0 {
		return Sub(n, d)
	}
	return d
}
