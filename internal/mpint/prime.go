package mpint

// smallPrimes covers trial division before the Miller–Rabin rounds; the
// product-of-residues trick is unnecessary at the key sizes we target.
var smallPrimes = []Word{
	2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
	71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
	151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
	233, 239, 241, 251,
}

// millerRabinRounds gives a 2⁻⁸⁰-ish error bound for random candidates at
// the sizes used here; key generation additionally benefits from the
// structure of random search.
const millerRabinRounds = 20

// IsPrime reports whether n is (probably) prime, using trial division by
// small primes followed by Miller–Rabin with rounds random bases drawn from
// rng. This is the generator the paper runs per GPU thread during key
// generation.
func IsPrime(n Nat, rng *RNG) bool {
	n = trim(n)
	if len(n) == 0 {
		return false
	}
	if v, ok := n.Uint64(); ok && v < 4 {
		return v == 2 || v == 3
	}
	if n.IsEven() {
		return false
	}
	for _, p := range smallPrimes[1:] {
		if _, r := divModWord(n, p); r == 0 {
			return Cmp(n, Nat{p}) == 0
		}
	}
	// Write n-1 = d·2^s with d odd.
	nm1 := SubWord(n, 1)
	s := nm1.TrailingZeroBits()
	d := Rsh(nm1, s)
	mont := NewMont(n)
	for round := 0; round < millerRabinRounds; round++ {
		// Uniform base in [2, n-2].
		a := AddWord(rng.RandBelow(SubWord(n, 3)), 2)
		x := mont.Exp(a, d)
		if x.IsOne() || Cmp(x, nm1) == 0 {
			continue
		}
		composite := true
		for i := uint(1); i < s; i++ {
			x = Mod(Mul(x, x), n)
			if Cmp(x, nm1) == 0 {
				composite = false
				break
			}
			if x.IsOne() {
				return false
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// RandPrime returns a random prime with exactly bits significant bits.
// The low bit is forced to 1 and candidates advance by 2 until a probable
// prime is found, mirroring the per-thread search the paper describes.
func (r *RNG) RandPrime(bits int) Nat {
	if bits < 4 {
		panic("mpint: RandPrime width too small")
	}
	for {
		cand := r.RandBits(bits)
		cand[0] |= 1
		// Walk odd candidates; restart with fresh randomness if the walk
		// drifts past the requested bit length.
		for attempt := 0; attempt < 512; attempt++ {
			if cand.BitLen() != bits {
				break
			}
			if IsPrime(cand, r) {
				return cand
			}
			cand = AddWord(cand, 2)
		}
	}
}

// RandSafePrimePair returns distinct primes p, q of the given bit width with
// p ≠ q, suitable for Paillier/RSA modulus construction. ("Safe" here means
// safe for the cryptosystems' requirements — distinct, full-width — not
// Sophie-Germain safe primes, which key sizes in the benchmarks don't need.)
func (r *RNG) RandSafePrimePair(bits int) (p, q Nat) {
	p = r.RandPrime(bits)
	for {
		q = r.RandPrime(bits)
		if Cmp(p, q) != 0 {
			return p, q
		}
	}
}
