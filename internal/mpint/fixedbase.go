package mpint

import "math/bits"

// Lim–Lee fixed-base comb exponentiation. When one base serves a whole
// vector of exponents — Paillier's r^n noise terms, fixed-generator
// commitments — the standard sliding window wastes its table on every
// element: the table depends only on the base. The comb instead precomputes
// 2^h combined powers of the shared base once, after which every exponent of
// up to maxExpBits bits costs only ⌈maxExpBits/h⌉ squarings plus at most
// that many multiplies, independent of h's table size.
//
// Layout: write the exponent's bits in an h-row matrix, row i holding bits
// {i·cols, i·cols+1, ...} (cols = ⌈maxExpBits/h⌉). Column `col` then selects
// the table entry tbl[j] = ∏_{i : bit_i(j)=1} base^(2^(i·cols)), and scanning
// columns high→low with one squaring per step reassembles base^e.

// FixedBaseTable is the per-base precomputation: 2^h combined powers in
// Montgomery form. Building one costs (h−1)·cols squarings and 2^h−h−1
// multiplies; it is immutable afterwards and safe for concurrent Exp calls
// (the simulated GPU lanes share one table).
type FixedBaseTable struct {
	m       *Mont
	base    Nat // base mod n
	h       int // comb height (rows)
	cols    int // ⌈maxExpBits/h⌉ columns = squarings per evaluation
	maxBits int
	tbl     []Nat // 2^h entries, Montgomery form; tbl[0] = R mod n
}

// ClampFixedBaseHeight bounds a comb height to [1, 8] and to the exponent
// width itself: a 1-bit exponent gets a 1-row comb (2-entry table), never a
// 2^h-entry one.
func ClampFixedBaseHeight(h, maxExpBits int) int {
	if h < 1 {
		h = 1
	}
	if h > 8 {
		h = 8
	}
	if maxExpBits >= 1 && h > maxExpBits {
		h = maxExpBits
	}
	return h
}

// ChooseFixedBaseHeight picks the comb height minimizing total Montgomery
// multiplies for a batch of n exponents of maxExpBits bits: the one-off
// build cost ((h−1)·cols squarings + 2^h−h−1 products) plus n evaluations of
// ≈ 2·cols multiplies each.
func ChooseFixedBaseHeight(maxExpBits, n int) int {
	if maxExpBits < 1 {
		maxExpBits = 1
	}
	if n < 1 {
		n = 1
	}
	best, bestCost := 1, int64(1)<<62
	for h := 1; h <= 8 && h <= maxExpBits; h++ {
		cols := int64((maxExpBits + h - 1) / h)
		build := int64(h-1)*cols + int64(1)<<h - int64(h) - 1
		cost := build + int64(n)*2*cols
		if cost < bestCost {
			best, bestCost = h, cost
		}
	}
	return best
}

// FixedBaseBuildMuls returns the Montgomery multiply count of building a
// table at height h for maxExpBits-bit exponents — the number the ghe cost
// model charges for the table-build launch.
func FixedBaseBuildMuls(maxExpBits, h int) int64 {
	h = ClampFixedBaseHeight(h, maxExpBits)
	cols := int64((maxExpBits + h - 1) / h)
	return int64(h-1)*cols + int64(1)<<h - int64(h) - 1
}

// FixedBaseExpMuls returns the worst-case Montgomery multiply count of one
// comb evaluation (cols squarings + cols multiplies) at height h.
func FixedBaseExpMuls(maxExpBits, h int) int64 {
	h = ClampFixedBaseHeight(h, maxExpBits)
	return 2 * int64((maxExpBits+h-1)/h)
}

// NewFixedBaseTable precomputes the comb for base over m's modulus, covering
// exponents up to maxExpBits bits at height h (clamped to [1, 8] and to
// maxExpBits; pass h ≤ 0 to auto-pick for a single evaluation).
func NewFixedBaseTable(m *Mont, base Nat, maxExpBits, h int) *FixedBaseTable {
	if maxExpBits < 1 {
		maxExpBits = 1
	}
	if h <= 0 {
		h = ChooseFixedBaseHeight(maxExpBits, 1)
	}
	h = ClampFixedBaseHeight(h, maxExpBits)
	cols := (maxExpBits + h - 1) / h
	t := &FixedBaseTable{m: m, base: Mod(base, m.n), h: h, cols: cols, maxBits: maxExpBits}

	sc := m.getScratch()
	defer m.putScratch(sc)
	// Row generators g[i] = base^(2^(i·cols)) in Montgomery form: each row
	// squares the previous one cols times.
	g := make([]Nat, h)
	g[0] = m.mulInto(make(Nat, m.k), t.base, m.rr, sc)
	bufs := [2]Nat{make(Nat, m.k), make(Nat, m.k)}
	for i := 1; i < h; i++ {
		cur := g[i-1]
		which := 0
		for s := 0; s < cols; s++ {
			cur = m.mulInto(bufs[which], cur, cur, sc)
			which ^= 1
		}
		g[i] = cur.Clone()
	}
	// tbl[j] = ∏_{i : bit_i(j)=1} g[i], built by peeling the lowest set bit so
	// each entry costs at most one multiply.
	tbl := make([]Nat, 1<<h)
	tbl[0] = m.one.Clone()
	for j := 1; j < len(tbl); j++ {
		low := j & -j
		i := bits.TrailingZeros(uint(low))
		if j == low {
			tbl[j] = g[i]
		} else {
			tbl[j] = m.mulInto(make(Nat, m.k), tbl[j^low], g[i], sc)
		}
	}
	t.tbl = tbl
	return t
}

// Height returns the comb height h.
func (t *FixedBaseTable) Height() int { return t.h }

// Cols returns the column count — the squarings one evaluation performs.
func (t *FixedBaseTable) Cols() int { return t.cols }

// Entries returns the table size 2^h.
func (t *FixedBaseTable) Entries() int { return len(t.tbl) }

// MaxExpBits returns the widest exponent the comb covers.
func (t *FixedBaseTable) MaxExpBits() int { return t.maxBits }

// Base returns the (reduced) base the table was built for.
func (t *FixedBaseTable) Base() Nat { return t.base }

// Exp returns base^e mod n via the comb. Exponents wider than the table's
// maxExpBits fall back to the generic sliding window (correct, just not
// precomputed); e == 0 and e == 1 short-circuit without running the comb
// loop.
func (t *FixedBaseTable) Exp(e Nat) Nat {
	eBits := e.BitLen()
	if eBits == 0 {
		return One()
	}
	if eBits == 1 {
		return t.base.Clone()
	}
	if eBits > t.maxBits {
		return t.m.Exp(t.base, e)
	}
	m := t.m
	sc := m.getScratch()
	defer m.putScratch(sc)
	bufs := [2]Nat{make(Nat, m.k), make(Nat, m.k)}
	var acc Nat // nil until the first non-zero column seeds it
	which := 0
	for col := t.cols - 1; col >= 0; col-- {
		if acc != nil {
			acc = m.mulInto(bufs[which], acc, acc, sc)
			which ^= 1
		}
		idx := 0
		for i := 0; i < t.h; i++ {
			if b := i*t.cols + col; b < eBits && e.Bit(b) == 1 {
				idx |= 1 << i
			}
		}
		if idx == 0 {
			continue
		}
		if acc == nil {
			acc = t.tbl[idx]
		} else {
			acc = m.mulInto(bufs[which], acc, t.tbl[idx], sc)
			which ^= 1
		}
	}
	if acc == nil {
		return One()
	}
	// Fresh allocation out of Montgomery form (must not alias the buffers).
	return m.mulInto(make(Nat, m.k), acc, One(), sc)
}
