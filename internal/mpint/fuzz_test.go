package mpint

import (
	"math/big"
	"testing"
)

// TestMixedOpsDifferential drives long random sequences of mixed operations
// through both mpint and math/big, comparing after every step — the closest
// a deterministic suite gets to fuzzing the arithmetic core.
func TestMixedOpsDifferential(t *testing.T) {
	r := NewRNG(0xF00D)
	for seq := 0; seq < 20; seq++ {
		x := randNat(r, 256)
		bx := toBig(x)
		for step := 0; step < 150; step++ {
			y := randNat(r, 200)
			by := toBig(y)
			op := r.Intn(8)
			switch op {
			case 0:
				x = Add(x, y)
				bx.Add(bx, by)
			case 1:
				if Cmp(x, y) >= 0 {
					x = Sub(x, y)
					bx.Sub(bx, by)
				}
			case 2:
				x = Mul(x, y)
				bx.Mul(bx, by)
			case 3:
				if !y.IsZero() {
					x = Div(x, y)
					bx.Quo(bx, by)
				}
			case 4:
				if !y.IsZero() {
					x = Mod(x, y)
					bx.Mod(bx, by)
				}
			case 5:
				s := uint(r.Intn(64))
				x = Lsh(x, s)
				bx.Lsh(bx, s)
			case 6:
				s := uint(r.Intn(64))
				x = Rsh(x, s)
				bx.Rsh(bx, s)
			case 7:
				x = GCD(x, y)
				bx.GCD(nil, nil, bx, by)
			}
			if toBig(x).Cmp(bx) != 0 {
				t.Fatalf("seq %d step %d op %d diverged: mpint=%s big=%s", seq, step, op, x, bx)
			}
			// Keep the working value from exploding (mul chains).
			if x.BitLen() > 4096 {
				x = Rsh(x, uint(x.BitLen()-512))
				bx.Rsh(bx, uint(bx.BitLen()-512))
			}
		}
	}
}

// TestModExpCrossCheckLargeSweep sweeps modulus widths around word
// boundaries where limb logic is most fragile.
func TestModExpCrossCheckLargeSweep(t *testing.T) {
	r := NewRNG(0xBEEF)
	for _, bits := range []int{33, 63, 64, 65, 95, 96, 97, 127, 128, 129, 255, 257} {
		n := r.RandBits(bits)
		n[0] |= 1
		if n.IsOne() {
			continue
		}
		m := NewMont(n)
		for i := 0; i < 10; i++ {
			base := r.RandBelow(n)
			e := r.RandBits(1 + r.Intn(bits))
			got := m.Exp(base, e)
			want := new(big.Int).Exp(toBig(base), toBig(e), toBig(n))
			if toBig(got).Cmp(want) != 0 {
				t.Fatalf("bits=%d: Exp mismatch", bits)
			}
		}
	}
}
