package mpint

import (
	"math/big"
	"testing"
)

// randOdd returns a random odd modulus with the given bit width.
func randOdd(r *RNG, bits int) Nat {
	n := r.RandBits(bits)
	n[0] |= 1
	return n
}

func TestNegInvWord(t *testing.T) {
	r := NewRNG(30)
	for i := 0; i < 1000; i++ {
		w := r.Word() | 1
		inv := negInvWord(w)
		if w*(-inv) != 1 { // w * w^-1 == 1 mod 2^32
			t.Fatalf("negInvWord(%#x) = %#x invalid", w, inv)
		}
	}
}

func TestMontMulDifferential(t *testing.T) {
	r := NewRNG(31)
	for i := 0; i < 300; i++ {
		n := randOdd(r, 64+r.Intn(512))
		m := NewMont(n)
		a, b := r.RandBelow(n), r.RandBelow(n)
		// mont.Mul computes a*b*R^-1; check via Montgomery round trip.
		got := m.FromMont(m.Mul(m.ToMont(a), m.ToMont(b)))
		want := new(big.Int).Mod(new(big.Int).Mul(toBig(a), toBig(b)), toBig(n))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("mont mul mismatch: %s * %s mod %s = %s, want %s", a, b, n, got, want)
		}
	}
}

func TestMontRoundTrip(t *testing.T) {
	r := NewRNG(32)
	for i := 0; i < 200; i++ {
		n := randOdd(r, 32+r.Intn(256))
		m := NewMont(n)
		x := r.RandBelow(n)
		if got := m.FromMont(m.ToMont(x)); Cmp(got, x) != 0 {
			t.Fatalf("Montgomery round trip failed: %s -> %s (mod %s)", x, got, n)
		}
	}
}

func TestMontOne(t *testing.T) {
	m := NewMont(FromUint64(1000003))
	if got := m.FromMont(m.MontOne()); !got.IsOne() {
		t.Fatalf("FromMont(MontOne) = %s", got)
	}
}

func TestMontRejectsBadModulus(t *testing.T) {
	for _, n := range []Nat{nil, FromUint64(8), FromUint64(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMont(%s) should panic", n)
				}
			}()
			NewMont(n)
		}()
	}
}

func TestExpDifferential(t *testing.T) {
	r := NewRNG(33)
	for i := 0; i < 150; i++ {
		n := randOdd(r, 64+r.Intn(384))
		m := NewMont(n)
		base := r.RandBelow(n)
		e := randNat(r, 300)
		got := m.Exp(base, e)
		want := new(big.Int).Exp(toBig(base), toBig(e), toBig(n))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("Exp(%s, %s) mod %s = %s, want %s", base, e, n, got, want)
		}
	}
}

func TestExpEdgeCases(t *testing.T) {
	m := NewMont(FromUint64(1000003))
	if got := m.Exp(FromUint64(5), Zero()); !got.IsOne() {
		t.Errorf("x^0 = %s", got)
	}
	if got := m.Exp(Zero(), FromUint64(17)); !got.IsZero() {
		t.Errorf("0^e = %s", got)
	}
	if got := m.Exp(Zero(), Zero()); !got.IsOne() {
		t.Errorf("0^0 = %s (convention: 1)", got)
	}
	// base >= n must be reduced first.
	if got := m.Exp(FromUint64(2000006), FromUint64(3)); !got.IsZero() {
		t.Errorf("(2n)^3 mod n = %s", got)
	}
}

func TestModExpEvenModulus(t *testing.T) {
	r := NewRNG(34)
	for i := 0; i < 100; i++ {
		n := AddWord(Lsh(randNat(r, 128), 1), 2) // even, >= 2
		base := randNat(r, 128)
		e := randNat(r, 64)
		got := ModExp(base, e, n)
		want := new(big.Int).Exp(toBig(base), toBig(e), toBig(n))
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("even ModExp(%s,%s,%s) = %s, want %s", base, e, n, got, want)
		}
	}
}

func TestModExpModulusOne(t *testing.T) {
	if got := ModExp(FromUint64(5), FromUint64(3), One()); !got.IsZero() {
		t.Fatalf("x^e mod 1 = %s", got)
	}
}

func TestModArithHelpers(t *testing.T) {
	r := NewRNG(35)
	for i := 0; i < 300; i++ {
		n := AddWord(randNat(r, 128), 2)
		a, b := r.RandBelow(n), r.RandBelow(n)
		bn := toBig(n)
		if toBig(ModMul(a, b, n)).Cmp(new(big.Int).Mod(new(big.Int).Mul(toBig(a), toBig(b)), bn)) != 0 {
			t.Fatal("ModMul mismatch")
		}
		if toBig(ModAdd(a, b, n)).Cmp(new(big.Int).Mod(new(big.Int).Add(toBig(a), toBig(b)), bn)) != 0 {
			t.Fatal("ModAdd mismatch")
		}
		wantSub := new(big.Int).Mod(new(big.Int).Sub(toBig(a), toBig(b)), bn)
		if toBig(ModSub(a, b, n)).Cmp(wantSub) != 0 {
			t.Fatalf("ModSub(%s,%s,%s) mismatch", a, b, n)
		}
	}
}

func TestFermatLittleTheorem(t *testing.T) {
	// a^(p-1) ≡ 1 mod p for prime p and gcd(a,p)=1 — an end-to-end sanity
	// check tying Exp, Mont and the prime generator together.
	r := NewRNG(36)
	p := r.RandPrime(96)
	m := NewMont(p)
	for i := 0; i < 20; i++ {
		a := AddWord(r.RandBelow(SubWord(p, 1)), 1)
		if got := m.Exp(a, SubWord(p, 1)); !got.IsOne() {
			t.Fatalf("Fermat failed: %s^(p-1) mod %s = %s", a, p, got)
		}
	}
}

func BenchmarkMontMul1024(b *testing.B) { benchMontMul(b, 1024) }
func BenchmarkMontMul2048(b *testing.B) { benchMontMul(b, 2048) }
func BenchmarkMontMul4096(b *testing.B) { benchMontMul(b, 4096) }

func benchMontMul(b *testing.B, bits int) {
	r := NewRNG(40)
	n := randOdd(r, bits)
	m := NewMont(n)
	x := m.ToMont(r.RandBelow(n))
	y := m.ToMont(r.RandBelow(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = m.Mul(x, y)
	}
}

func BenchmarkModExp1024(b *testing.B) { benchModExp(b, 1024) }
func BenchmarkModExp2048(b *testing.B) { benchModExp(b, 2048) }

func benchModExp(b *testing.B, bits int) {
	r := NewRNG(41)
	n := randOdd(r, bits)
	m := NewMont(n)
	base := r.RandBelow(n)
	e := r.RandBits(bits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Exp(base, e)
	}
}
