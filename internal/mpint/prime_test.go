package mpint

import (
	"math/big"
	"testing"
)

func TestIsPrimeSmall(t *testing.T) {
	r := NewRNG(50)
	primes := []uint64{2, 3, 5, 7, 11, 13, 97, 251, 257, 65537, 1000003, 4294967291}
	composites := []uint64{0, 1, 4, 9, 15, 100, 255, 65535, 1000001,
		341, 561, 645, 1105, 1729, 2465, 2821, 6601} // includes Carmichael numbers
	for _, p := range primes {
		if !IsPrime(FromUint64(p), r) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	for _, c := range composites {
		if IsPrime(FromUint64(c), r) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestIsPrimeDifferential(t *testing.T) {
	r := NewRNG(51)
	for i := 0; i < 200; i++ {
		n := AddWord(randNat(r, 80), 2)
		got := IsPrime(n, r)
		want := toBig(n).ProbablyPrime(30)
		if got != want {
			t.Fatalf("IsPrime(%s) = %v, big says %v", n, got, want)
		}
	}
}

func TestRandPrime(t *testing.T) {
	r := NewRNG(52)
	for _, bits := range []int{16, 32, 64, 128, 256} {
		p := r.RandPrime(bits)
		if p.BitLen() != bits {
			t.Errorf("RandPrime(%d) has %d bits", bits, p.BitLen())
		}
		if !toBig(p).ProbablyPrime(30) {
			t.Errorf("RandPrime(%d) = %s is composite", bits, p)
		}
	}
}

func TestRandPrimePanicsOnTinyWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RandPrime(2) should panic")
		}
	}()
	NewRNG(1).RandPrime(2)
}

func TestRandSafePrimePair(t *testing.T) {
	r := NewRNG(53)
	p, q := r.RandSafePrimePair(96)
	if Cmp(p, q) == 0 {
		t.Fatal("prime pair not distinct")
	}
	if p.BitLen() != 96 || q.BitLen() != 96 {
		t.Fatalf("pair widths: %d, %d", p.BitLen(), q.BitLen())
	}
	if !toBig(p).ProbablyPrime(30) || !toBig(q).ProbablyPrime(30) {
		t.Fatal("pair contains composite")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(7).Uint64() != c.Uint64() {
			same = false
		}
		c = NewRNG(8)
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandBelowUniformBounds(t *testing.T) {
	r := NewRNG(54)
	n := FromUint64(1000)
	seen := make(map[uint64]bool)
	for i := 0; i < 5000; i++ {
		v, _ := r.RandBelow(n).Uint64()
		if v >= 1000 {
			t.Fatalf("RandBelow(1000) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 900 {
		t.Fatalf("RandBelow coverage suspiciously low: %d/1000 values", len(seen))
	}
}

func TestRandBitsWidth(t *testing.T) {
	r := NewRNG(55)
	for _, bits := range []int{1, 2, 31, 32, 33, 64, 65, 1024} {
		for i := 0; i < 20; i++ {
			if got := r.RandBits(bits).BitLen(); got != bits {
				t.Fatalf("RandBits(%d).BitLen() = %d", bits, got)
			}
		}
	}
}

func TestRandCoprime(t *testing.T) {
	r := NewRNG(56)
	n := FromUint64(2 * 3 * 5 * 7 * 11 * 13)
	for i := 0; i < 100; i++ {
		z := r.RandCoprime(n)
		if !GCD(z, n).IsOne() {
			t.Fatalf("RandCoprime returned non-coprime %s", z)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(57)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(58)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("normal mean %v far from 0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("normal variance %v far from 1", variance)
	}
}

func TestLnSqrtHelpers(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0}, {0.5, -0.6931471805599453}, {0.25, -1.3862943611198906},
	}
	for _, c := range cases {
		if got := lnTaylor(c.x); got < c.want-1e-12 || got > c.want+1e-12 {
			t.Errorf("lnTaylor(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	for _, x := range []float64{0, 1, 2, 4, 100, 0.25} {
		got := sqrtNewton(x)
		if d := got*got - x; d > 1e-9*(x+1) || d < -1e-9*(x+1) {
			t.Errorf("sqrtNewton(%v) = %v", x, got)
		}
	}
}

func TestBigOracleConversions(t *testing.T) {
	// Guard the test helpers themselves.
	x := FromUint64(123456789)
	if fromBig(toBig(x)).String() != "123456789" {
		t.Fatal("test oracle conversion broken")
	}
	if fromBig(big.NewInt(0)).String() != "0" {
		t.Fatal("zero conversion broken")
	}
}

func BenchmarkRandPrime256(b *testing.B) {
	r := NewRNG(60)
	for i := 0; i < b.N; i++ {
		r.RandPrime(256)
	}
}

func BenchmarkIsPrime512(b *testing.B) {
	r := NewRNG(61)
	p := r.RandPrime(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IsPrime(p, r)
	}
}
