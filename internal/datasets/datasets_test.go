package datasets

import (
	"testing"
)

func TestSpecsMatchTableII(t *testing.T) {
	if RCV1Spec.Instances != 677_399 || RCV1Spec.Features != 47_236 {
		t.Error("RCV1 spec drifted from Table II")
	}
	if AvazuSpec.Instances != 1_719_304 || AvazuSpec.Features != 1_000_000 {
		t.Error("Avazu spec drifted from Table II")
	}
	if SyntheticSpec.Instances != 100_000 || SyntheticSpec.Features != 10_000 || !SyntheticSpec.Dense {
		t.Error("Synthetic spec drifted from Table II")
	}
	if len(AllSpecs()) != 3 {
		t.Error("AllSpecs should list the three evaluation datasets")
	}
}

func TestScaled(t *testing.T) {
	s := RCV1Spec.Scaled(0.01)
	if s.Instances != 6773 || s.Features != 472 {
		t.Errorf("Scaled(0.01) = %d × %d", s.Instances, s.Features)
	}
	if s.AvgActive > s.Features {
		t.Error("AvgActive must not exceed feature count")
	}
	// Degenerate scales clamp to identity.
	if RCV1Spec.Scaled(0).Instances != RCV1Spec.Instances {
		t.Error("scale 0 should fall back to full size")
	}
	if RCV1Spec.Scaled(2).Instances != RCV1Spec.Instances {
		t.Error("scale > 1 should fall back to full size")
	}
	d := SyntheticSpec.Scaled(0.01)
	if d.AvgActive != d.Features {
		t.Error("dense spec must stay dense after scaling")
	}
}

func TestGenerateSparseShape(t *testing.T) {
	spec := RCV1Spec.Scaled(0.002)
	ds, err := Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Stats()
	if st.Instances != spec.Instances || st.Features != spec.Features {
		t.Fatalf("shape %d × %d, want %d × %d", st.Instances, st.Features, spec.Instances, spec.Features)
	}
	if st.AvgNNZ < float64(spec.AvgActive)/3 || st.AvgNNZ > float64(spec.AvgActive)*3 {
		t.Fatalf("avg active %v far from spec %d", st.AvgNNZ, spec.AvgActive)
	}
	if st.Positives < 0.05 || st.Positives > 0.95 {
		t.Fatalf("label balance degenerate: %v", st.Positives)
	}
	for i, ex := range ds.Examples {
		for j := 1; j < len(ex.Features.Idx); j++ {
			if ex.Features.Idx[j] <= ex.Features.Idx[j-1] {
				t.Fatalf("example %d has unsorted or duplicate indices", i)
			}
		}
		if int(ex.Features.Idx[len(ex.Features.Idx)-1]) >= spec.Features {
			t.Fatalf("example %d has out-of-range index", i)
		}
	}
}

func TestGenerateDenseShape(t *testing.T) {
	spec := SyntheticSpec.Scaled(0.002)
	ds, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, ex := range ds.Examples {
		if ex.Features.NNZ() != spec.Features {
			t.Fatalf("dense example %d has %d features, want %d", i, ex.Features.NNZ(), spec.Features)
		}
	}
	st := ds.Stats()
	if st.Positives < 0.2 || st.Positives > 0.8 {
		t.Fatalf("dense label balance degenerate: %v", st.Positives)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := AvazuSpec.Scaled(0.0005)
	a, _ := Generate(spec, 9)
	b, _ := Generate(spec, 9)
	if a.Len() != b.Len() {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Examples {
		ea, eb := a.Examples[i], b.Examples[i]
		if ea.Label != eb.Label || ea.Features.NNZ() != eb.Features.NNZ() {
			t.Fatalf("example %d differs between equal-seed runs", i)
		}
	}
	c, _ := Generate(spec, 10)
	same := true
	for i := range a.Examples {
		if a.Examples[i].Label != c.Examples[i].Label {
			same = false
			break
		}
	}
	if same && a.Len() > 50 {
		t.Fatal("different seeds produced identical labels")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Name: "bad"}, 1); err == nil {
		t.Fatal("zero-dimension spec should fail")
	}
}

func TestDotAndAddScaled(t *testing.T) {
	v := SparseVec{Idx: []int32{1, 3, 4}, Val: []float64{2, -1, 0.5}}
	w := []float64{10, 20, 30, 40, 50}
	if got := v.Dot(w); got != 2*20-40+0.5*50 {
		t.Fatalf("Dot = %v", got)
	}
	dst := make([]float64, 5)
	v.AddScaledInto(dst, 2)
	want := []float64{0, 4, 0, -2, 1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AddScaledInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestPartitionHorizontal(t *testing.T) {
	ds, _ := Generate(RCV1Spec.Scaled(0.001), 3)
	parts, err := PartitionHorizontal(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, p := range parts {
		if p.NumFeatures != ds.NumFeatures {
			t.Fatal("horizontal parts must share the feature space")
		}
		total += p.Len()
	}
	if total != ds.Len() {
		t.Fatalf("partition lost instances: %d of %d", total, ds.Len())
	}
	if _, err := PartitionHorizontal(ds, 0); err == nil {
		t.Fatal("zero parts should fail")
	}
	if _, err := PartitionHorizontal(ds, ds.Len()+1); err == nil {
		t.Fatal("more parts than instances should fail")
	}
}

func TestPartitionVertical(t *testing.T) {
	ds, _ := Generate(RCV1Spec.Scaled(0.001), 4)
	parts, err := PartitionVertical(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	var featTotal int
	for pi, p := range parts {
		if p.Len() != ds.Len() {
			t.Fatal("vertical parts must share the sample space")
		}
		featTotal += p.NumFeatures
		for i, ex := range p.Examples {
			if pi == 0 && ex.Label != ds.Examples[i].Label {
				t.Fatal("guest must keep the labels")
			}
			if pi > 0 && ex.Label != -1 {
				t.Fatal("hosts must not see labels")
			}
			for _, idx := range ex.Features.Idx {
				if int(idx) >= p.NumFeatures {
					t.Fatalf("part %d has out-of-range remapped index %d", pi, idx)
				}
			}
		}
	}
	if featTotal != ds.NumFeatures {
		t.Fatalf("vertical partition lost features: %d of %d", featTotal, ds.NumFeatures)
	}
	// NNZ conservation: every stored entry lands in exactly one part.
	var nnzParts int64
	for _, p := range parts {
		for _, ex := range p.Examples {
			nnzParts += int64(ex.Features.NNZ())
		}
	}
	var nnzOrig int64
	for _, ex := range ds.Examples {
		nnzOrig += int64(ex.Features.NNZ())
	}
	if nnzParts != nnzOrig {
		t.Fatalf("vertical partition lost entries: %d of %d", nnzParts, nnzOrig)
	}
	if _, err := PartitionVertical(ds, ds.NumFeatures+1); err == nil {
		t.Fatal("more parts than features should fail")
	}
}

func TestBatches(t *testing.T) {
	ds, _ := Generate(SyntheticSpec.Scaled(0.001), 5)
	bs := ds.Batches(32)
	var covered int
	prevHi := 0
	for _, b := range bs {
		if b[0] != prevHi {
			t.Fatal("batches must tile the instance range")
		}
		covered += b[1] - b[0]
		prevHi = b[1]
	}
	if covered != ds.Len() {
		t.Fatalf("batches cover %d of %d", covered, ds.Len())
	}
	if got := ds.Batches(0); len(got) != 1 || got[0][1] != ds.Len() {
		t.Fatal("batch size 0 should produce one full batch")
	}
}

func TestMathHelpers(t *testing.T) {
	if d := Exp(0) - 1; d > 1e-12 || d < -1e-12 {
		t.Error("Exp(0) != 1")
	}
	if d := Exp(1) - 2.718281828459045; d > 1e-9 || d < -1e-9 {
		t.Errorf("Exp(1) error %v", d)
	}
	if d := Log(Exp(3)) - 3; d > 1e-9 || d < -1e-9 {
		t.Errorf("Log(Exp(3)) error %v", d)
	}
	if s := Sigmoid(0); s != 0.5 {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(100); s < 0.999 {
		t.Errorf("Sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s > 0.001 {
		t.Errorf("Sigmoid(-100) = %v", s)
	}
	if Exp(-800) != 0 {
		t.Error("Exp underflow should clamp to 0")
	}
}

func BenchmarkGenerateRCV1Scaled(b *testing.B) {
	spec := RCV1Spec.Scaled(0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSplitTrainTest(t *testing.T) {
	ds, _ := Generate(SyntheticSpec.Scaled(0.001), 8)
	train, test, err := SplitTrainTest(ds, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != ds.Len() {
		t.Fatalf("split lost instances: %d + %d != %d", train.Len(), test.Len(), ds.Len())
	}
	if train.Len() != int(0.75*float64(ds.Len())) {
		t.Fatalf("train size %d", train.Len())
	}
	if train.NumFeatures != ds.NumFeatures || test.NumFeatures != ds.NumFeatures {
		t.Fatal("split changed the feature space")
	}
	for _, bad := range []float64{0, 1, -0.5, 2} {
		if _, _, err := SplitTrainTest(ds, bad); err == nil {
			t.Errorf("fraction %v should fail", bad)
		}
	}
}
