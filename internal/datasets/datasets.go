// Package datasets provides the three evaluation datasets of the paper —
// RCV1, Avazu, and LEAF Synthetic — as deterministic generators that
// reproduce each dataset's *shape*: instance count, feature dimension,
// sparsity pattern, and label balance. The real corpora are not available
// offline; running time and throughput in the paper's experiments depend on
// these shape statistics, not on the underlying text or ad semantics (see
// DESIGN.md §1), so generated data preserves the evaluation's behaviour.
//
// Every generator accepts a scale factor so the benches run laptop-sized
// while keeping the inter-dataset ratios of Table II.
package datasets

import (
	"fmt"
	"sort"

	"flbooster/internal/mpint"
)

// SparseVec is a sparse feature vector with strictly increasing indices.
type SparseVec struct {
	Idx []int32
	Val []float64
}

// NNZ returns the number of stored (non-zero) entries.
func (v SparseVec) NNZ() int { return len(v.Idx) }

// Dot computes v · w for a dense weight vector w.
func (v SparseVec) Dot(w []float64) float64 {
	var s float64
	for i, idx := range v.Idx {
		s += v.Val[i] * w[idx]
	}
	return s
}

// AddScaledInto accumulates dst += scale * v for a dense dst.
func (v SparseVec) AddScaledInto(dst []float64, scale float64) {
	for i, idx := range v.Idx {
		dst[idx] += scale * v.Val[i]
	}
}

// Example is one labelled training instance. Label is 0 or 1.
type Example struct {
	Features SparseVec
	Label    float64
}

// Dataset is an in-memory dataset.
type Dataset struct {
	Name        string
	NumFeatures int
	Examples    []Example
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.Examples) }

// Stats summarizes the dataset for reports (Table II analogue).
type Stats struct {
	Name      string
	Instances int
	Features  int
	AvgNNZ    float64
	Positives float64 // fraction of label-1 instances
	Bytes     int64   // approximate in-memory payload
}

// Stats computes summary statistics.
func (d *Dataset) Stats() Stats {
	var nnz, pos int64
	for _, ex := range d.Examples {
		nnz += int64(ex.Features.NNZ())
		if ex.Label > 0.5 {
			pos++
		}
	}
	n := len(d.Examples)
	s := Stats{Name: d.Name, Instances: n, Features: d.NumFeatures, Bytes: nnz * 12}
	if n > 0 {
		s.AvgNNZ = float64(nnz) / float64(n)
		s.Positives = float64(pos) / float64(n)
	}
	return s
}

// Spec describes one of the paper's datasets at full scale (Table II).
type Spec struct {
	Name      string
	Instances int
	Features  int
	// AvgActive is the mean active features per instance (the sparsity).
	AvgActive int
	// Dense marks the Synthetic dataset, which has no sparsity.
	Dense bool
}

// The paper's three datasets at full scale.
var (
	// RCV1Spec: newswire text categorization, 677,399 × 47,236, sparse.
	RCV1Spec = Spec{Name: "RCV1", Instances: 677_399, Features: 47_236, AvgActive: 75}
	// AvazuSpec: CTR prediction, 1,719,304 × 1,000,000, one-hot categorical
	// fields (~22 active per row).
	AvazuSpec = Spec{Name: "Avazu", Instances: 1_719_304, Features: 1_000_000, AvgActive: 22}
	// SyntheticSpec: the LEAF synthetic classification task, 100,000 × 10,000
	// dense.
	SyntheticSpec = Spec{Name: "Synthetic", Instances: 100_000, Features: 10_000, AvgActive: 10_000, Dense: true}
)

// AllSpecs lists the evaluation datasets in the paper's order.
func AllSpecs() []Spec { return []Spec{RCV1Spec, AvazuSpec, SyntheticSpec} }

// Scaled returns the spec shrunk by the given factor (instances and, for
// very high-dimensional data, features), keeping at least one instance.
func (s Spec) Scaled(scale float64) Spec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	out := s
	out.Instances = int(float64(s.Instances) * scale)
	if out.Instances < 1 {
		out.Instances = 1
	}
	out.Features = int(float64(s.Features) * scale)
	if out.Features < 16 {
		out.Features = 16
	}
	if out.AvgActive > out.Features {
		out.AvgActive = out.Features
	}
	if s.Dense {
		out.AvgActive = out.Features
	}
	return out
}

// Generate materializes a dataset from a spec. Generation is deterministic
// in (spec, seed).
func Generate(spec Spec, seed uint64) (*Dataset, error) {
	if spec.Instances < 1 || spec.Features < 1 {
		return nil, fmt.Errorf("datasets: spec %q needs positive dimensions", spec.Name)
	}
	if spec.Dense {
		return generateDense(spec, seed), nil
	}
	return generateSparse(spec, seed), nil
}

// generateSparse draws documents with log-normal-ish lengths over a Zipfian
// feature popularity distribution — the shape of bag-of-words (RCV1) and
// hashed one-hot categorical (Avazu) data. Labels come from a sparse ground-
// truth linear model so that LR training has signal to converge on.
func generateSparse(spec Spec, seed uint64) *Dataset {
	rng := mpint.NewRNG(seed)
	truth := make([]float64, spec.Features)
	for i := range truth {
		if rng.Float64() < 0.05 {
			truth[i] = rng.NormFloat64()
		}
	}
	ds := &Dataset{Name: spec.Name, NumFeatures: spec.Features, Examples: make([]Example, spec.Instances)}
	for i := range ds.Examples {
		// Document length: AvgActive scaled by a heavy-ish multiplicative
		// factor, clamped to [1, 4·avg].
		ln := rng.NormFloat64()*0.5 + 1
		nActive := int(float64(spec.AvgActive) * ln)
		if nActive < 1 {
			nActive = 1
		}
		if max := 4 * spec.AvgActive; nActive > max {
			nActive = max
		}
		if nActive > spec.Features {
			nActive = spec.Features
		}
		seen := make(map[int32]bool, nActive)
		idx := make([]int32, 0, nActive)
		// Popular features collide often; bound the rejection sampling and
		// fill any remainder with a deterministic sweep so documents that
		// need most of a (scaled-down) vocabulary still terminate.
		for attempts := 0; len(idx) < nActive && attempts < 16*nActive; attempts++ {
			f := zipfIndex(rng, spec.Features)
			if !seen[f] {
				seen[f] = true
				idx = append(idx, f)
			}
		}
		for f := int32(0); len(idx) < nActive; f++ {
			if !seen[f] {
				seen[f] = true
				idx = append(idx, f)
			}
		}
		sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
		val := make([]float64, nActive)
		var dot float64
		for j, f := range idx {
			val[j] = 1 // binary bag-of-words / one-hot
			dot += truth[f]
		}
		label := 0.0
		if sigmoid(dot+rng.NormFloat64()*0.3) > 0.5 {
			label = 1
		}
		ds.Examples[i] = Example{Features: SparseVec{Idx: idx, Val: val}, Label: label}
	}
	return ds
}

// zipfIndex draws a feature index with power-law popularity: index
// ⌊n·u³⌋ for uniform u concentrates mass on low indices (popular features)
// while covering the whole range.
func zipfIndex(rng *mpint.RNG, n int) int32 {
	u := rng.Float64()
	idx := int64(float64(n) * u * u * u)
	if idx >= int64(n) {
		idx = int64(n) - 1
	}
	return int32(idx)
}

func lnFloat(x float64) float64 {
	if x <= 0 {
		panic("datasets: ln domain")
	}
	const ln2 = 0.6931471805599453
	var shift float64
	for x < 0.5 {
		x *= 2
		shift -= ln2
	}
	for x > 1.5 {
		x /= 2
		shift += ln2
	}
	t := (x - 1) / (x + 1)
	t2 := t * t
	term, sum := t, 0.0
	for k := 1; k < 60; k += 2 {
		sum += term / float64(k)
		term *= t2
		if term < 1e-18 && term > -1e-18 {
			break
		}
	}
	return 2*sum + shift
}

func expFloat(x float64) float64 {
	if x > 700 {
		x = 700
	}
	if x < -700 {
		return 0
	}
	// Range-reduce: x = k·ln2 + r, |r| ≤ ln2/2; e^x = 2^k · e^r.
	const ln2 = 0.6931471805599453
	k := int(x/ln2 + 0.5)
	if x < 0 {
		k = int(x/ln2 - 0.5)
	}
	r := x - float64(k)*ln2
	term, sum := 1.0, 1.0
	for i := 1; i < 30; i++ {
		term *= r / float64(i)
		sum += term
		if term < 1e-18 && term > -1e-18 {
			break
		}
	}
	// Scale by 2^k.
	for ; k > 0; k-- {
		sum *= 2
	}
	for ; k < 0; k++ {
		sum /= 2
	}
	return sum
}

func sigmoid(x float64) float64 { return 1 / (1 + expFloat(-x)) }

// Sigmoid exposes the dependency-free logistic function for the models.
func Sigmoid(x float64) float64 { return sigmoid(x) }

// Exp exposes the dependency-free exponential for the models.
func Exp(x float64) float64 { return expFloat(x) }

// Log exposes the dependency-free natural logarithm for the models.
func Log(x float64) float64 { return lnFloat(x) }

// generateDense reproduces the LEAF synthetic recipe: x ~ N(0, I),
// y = 1{w·x + b + ε > 0} with a dense ground-truth w.
func generateDense(spec Spec, seed uint64) *Dataset {
	rng := mpint.NewRNG(seed)
	truth := make([]float64, spec.Features)
	for i := range truth {
		truth[i] = rng.NormFloat64() / float64(spec.Features)
	}
	ds := &Dataset{Name: spec.Name, NumFeatures: spec.Features, Examples: make([]Example, spec.Instances)}
	for i := range ds.Examples {
		idx := make([]int32, spec.Features)
		val := make([]float64, spec.Features)
		var dot float64
		for f := 0; f < spec.Features; f++ {
			idx[f] = int32(f)
			val[f] = rng.NormFloat64()
			dot += val[f] * truth[f] * float64(spec.Features)
		}
		label := 0.0
		if dot+rng.NormFloat64()*0.1 > 0 {
			label = 1
		}
		ds.Examples[i] = Example{Features: SparseVec{Idx: idx, Val: val}, Label: label}
	}
	return ds
}

// PartitionHorizontal splits instances across `parts` parties with identical
// feature spaces — the homogeneous (cross-device) FL layout.
func PartitionHorizontal(d *Dataset, parts int) ([]*Dataset, error) {
	if parts < 1 || parts > d.Len() {
		return nil, fmt.Errorf("datasets: cannot split %d instances into %d parts", d.Len(), parts)
	}
	out := make([]*Dataset, parts)
	per := d.Len() / parts
	for p := 0; p < parts; p++ {
		lo := p * per
		hi := lo + per
		if p == parts-1 {
			hi = d.Len()
		}
		out[p] = &Dataset{
			Name:        fmt.Sprintf("%s/h%d", d.Name, p),
			NumFeatures: d.NumFeatures,
			Examples:    d.Examples[lo:hi],
		}
	}
	return out, nil
}

// PartitionVertical splits the feature space across `parts` parties that
// share the same sample IDs — the heterogeneous (cross-silo) layout. The
// label stays with party 0 (the "guest" in FATE terminology); other parties
// receive label −1 as a sentinel for "not visible".
func PartitionVertical(d *Dataset, parts int) ([]*Dataset, error) {
	if parts < 1 || parts > d.NumFeatures {
		return nil, fmt.Errorf("datasets: cannot split %d features into %d parts", d.NumFeatures, parts)
	}
	per := d.NumFeatures / parts
	out := make([]*Dataset, parts)
	for p := 0; p < parts; p++ {
		loF := int32(p * per)
		hiF := loF + int32(per)
		if p == parts-1 {
			hiF = int32(d.NumFeatures)
		}
		exs := make([]Example, d.Len())
		for i, ex := range d.Examples {
			// Binary search the index window [loF, hiF).
			start := sort.Search(len(ex.Features.Idx), func(j int) bool { return ex.Features.Idx[j] >= loF })
			end := sort.Search(len(ex.Features.Idx), func(j int) bool { return ex.Features.Idx[j] >= hiF })
			idx := make([]int32, end-start)
			for j := start; j < end; j++ {
				idx[j-start] = ex.Features.Idx[j] - loF
			}
			label := -1.0
			if p == 0 {
				label = ex.Label
			}
			exs[i] = Example{
				Features: SparseVec{Idx: idx, Val: ex.Features.Val[start:end]},
				Label:    label,
			}
		}
		out[p] = &Dataset{
			Name:        fmt.Sprintf("%s/v%d", d.Name, p),
			NumFeatures: int(hiF - loF),
			Examples:    exs,
		}
	}
	return out, nil
}

// Batches cuts the instance range into minibatches of the given size,
// returning [lo, hi) index pairs.
func (d *Dataset) Batches(batchSize int) [][2]int {
	if batchSize < 1 {
		batchSize = d.Len()
	}
	var out [][2]int
	for lo := 0; lo < d.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > d.Len() {
			hi = d.Len()
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// SplitTrainTest cuts the dataset into a training prefix and test suffix by
// fraction (e.g. 0.8 keeps 80% for training). The generators already shuffle
// implicitly (instances are i.i.d.), so a prefix split is unbiased.
func SplitTrainTest(d *Dataset, trainFrac float64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("datasets: train fraction must be in (0, 1), got %v", trainFrac)
	}
	cut := int(float64(d.Len()) * trainFrac)
	if cut < 1 || cut >= d.Len() {
		return nil, nil, fmt.Errorf("datasets: split of %d instances at %v leaves an empty side", d.Len(), trainFrac)
	}
	train = &Dataset{Name: d.Name + "/train", NumFeatures: d.NumFeatures, Examples: d.Examples[:cut]}
	test = &Dataset{Name: d.Name + "/test", NumFeatures: d.NumFeatures, Examples: d.Examples[cut:]}
	return train, test, nil
}
