package datasets

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadLIBSVMBasic(t *testing.T) {
	in := `+1 1:0.5 3:1.25
-1 2:2
# comment line

0 1:1 2:1 3:1
`
	ds, err := LoadLIBSVM(strings.NewReader(in), "test", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 || ds.NumFeatures != 3 {
		t.Fatalf("shape %d × %d", ds.Len(), ds.NumFeatures)
	}
	if ds.Examples[0].Label != 1 || ds.Examples[1].Label != 0 || ds.Examples[2].Label != 0 {
		t.Fatal("label mapping wrong")
	}
	ex := ds.Examples[0]
	if ex.Features.NNZ() != 2 || ex.Features.Idx[0] != 0 || ex.Features.Idx[1] != 2 || ex.Features.Val[1] != 1.25 {
		t.Fatalf("first example parsed wrong: %+v", ex.Features)
	}
}

func TestLoadLIBSVMUnsortedIndices(t *testing.T) {
	ds, err := LoadLIBSVM(strings.NewReader("+1 5:5 1:1 3:3\n"), "x", 0)
	if err != nil {
		t.Fatal(err)
	}
	f := ds.Examples[0].Features
	want := []int32{0, 2, 4}
	for i, idx := range f.Idx {
		if idx != want[i] || f.Val[i] != float64(want[i]+1) {
			t.Fatalf("sorted features wrong: %+v", f)
		}
	}
}

func TestLoadLIBSVMErrors(t *testing.T) {
	cases := []string{
		"abc 1:1\n",    // bad label
		"+1 0:1\n",     // index below 1
		"+1 1\n",       // missing colon
		"+1 1:xyz\n",   // bad value
		"+1 1:1 1:2\n", // duplicate index
		"",             // empty input
		"# only comments\n",
	}
	for i, in := range cases {
		if _, err := LoadLIBSVM(strings.NewReader(in), "bad", 0); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Declared dimension too small.
	if _, err := LoadLIBSVM(strings.NewReader("+1 10:1\n"), "bad", 5); err == nil {
		t.Error("out-of-dimension index should fail")
	}
}

func TestLIBSVMRoundTrip(t *testing.T) {
	orig, err := Generate(RCV1Spec.Scaled(0.0002), 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLIBSVM(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLIBSVM(&buf, orig.Name, orig.NumFeatures)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip lost examples: %d vs %d", back.Len(), orig.Len())
	}
	for i := range orig.Examples {
		a, b := orig.Examples[i], back.Examples[i]
		if a.Label != b.Label || a.Features.NNZ() != b.Features.NNZ() {
			t.Fatalf("example %d diverged", i)
		}
		for k := range a.Features.Idx {
			if a.Features.Idx[k] != b.Features.Idx[k] || a.Features.Val[k] != b.Features.Val[k] {
				t.Fatalf("example %d feature %d diverged", i, k)
			}
		}
	}
}
