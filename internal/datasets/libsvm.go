package datasets

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// LoadLIBSVM parses a dataset in LIBSVM/SVMlight format — the distribution
// format of the real RCV1 and Avazu corpora — so users who have the files
// can run every experiment on the genuine data instead of the
// shape-preserving generators:
//
//	<label> <index>:<value> <index>:<value> ...
//
// Labels are mapped to {0, 1}: anything > 0 becomes 1. Indices are 1-based
// in the format and converted to 0-based. numFeatures == 0 infers the
// dimension from the data.
func LoadLIBSVM(r io.Reader, name string, numFeatures int) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	ds := &Dataset{Name: name, NumFeatures: numFeatures}
	maxIdx := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		rawLabel, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("datasets: line %d: bad label %q", lineNo, fields[0])
		}
		label := 0.0
		if rawLabel > 0 {
			label = 1
		}
		idx := make([]int32, 0, len(fields)-1)
		val := make([]float64, 0, len(fields)-1)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("datasets: line %d: feature %q lacks ':'", lineNo, f)
			}
			i, err := strconv.Atoi(f[:colon])
			if err != nil || i < 1 {
				return nil, fmt.Errorf("datasets: line %d: bad index %q", lineNo, f[:colon])
			}
			v, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("datasets: line %d: bad value %q", lineNo, f[colon+1:])
			}
			idx = append(idx, int32(i-1))
			val = append(val, v)
		}
		// The format does not require sorted indices; our SparseVec does.
		if !sort.SliceIsSorted(idx, func(a, b int) bool { return idx[a] < idx[b] }) {
			perm := make([]int, len(idx))
			for i := range perm {
				perm[i] = i
			}
			sort.Slice(perm, func(a, b int) bool { return idx[perm[a]] < idx[perm[b]] })
			si := make([]int32, len(idx))
			sv := make([]float64, len(val))
			for k, p := range perm {
				si[k], sv[k] = idx[p], val[p]
			}
			idx, val = si, sv
		}
		for k := 1; k < len(idx); k++ {
			if idx[k] == idx[k-1] {
				return nil, fmt.Errorf("datasets: line %d: duplicate index %d", lineNo, idx[k]+1)
			}
		}
		if len(idx) > 0 && idx[len(idx)-1] > maxIdx {
			maxIdx = idx[len(idx)-1]
		}
		ds.Examples = append(ds.Examples, Example{
			Features: SparseVec{Idx: idx, Val: val},
			Label:    label,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("datasets: reading LIBSVM input: %w", err)
	}
	if ds.NumFeatures == 0 {
		ds.NumFeatures = int(maxIdx) + 1
	}
	if int(maxIdx) >= ds.NumFeatures {
		return nil, fmt.Errorf("datasets: index %d exceeds declared dimension %d", maxIdx+1, ds.NumFeatures)
	}
	if len(ds.Examples) == 0 {
		return nil, fmt.Errorf("datasets: no examples in LIBSVM input")
	}
	return ds, nil
}

// WriteLIBSVM serializes a dataset in LIBSVM format (inverse of LoadLIBSVM;
// labels are written as ±1).
func WriteLIBSVM(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, ex := range ds.Examples {
		label := "-1"
		if ex.Label > 0.5 {
			label = "+1"
		}
		if _, err := bw.WriteString(label); err != nil {
			return err
		}
		for k, idx := range ex.Features.Idx {
			if _, err := fmt.Fprintf(bw, " %d:%g", idx+1, ex.Features.Val[k]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
