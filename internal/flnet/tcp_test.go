package flnet

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

func TestDialHubFailure(t *testing.T) {
	// Grab a port and close it so the dial target is guaranteed dead.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := DialHub(addr, "x"); err == nil {
		t.Fatal("dialing a closed port should fail")
	}
}

func TestTCPClientRecvTimeout(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0", GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	c, err := DialHub(hub.Addr(), "quiet")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.RecvTimeout("quiet", 50*time.Millisecond)
	if !IsTimeout(err) {
		t.Fatalf("want timeout error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline ignored")
	}
}

func TestTCPClientPeerDisconnectMidFrame(t *testing.T) {
	// A raw listener that sends a frame header promising 100 bytes, delivers
	// 10, and slams the connection: Recv must error, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		readFrame(conn) // consume the hello
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], 100)
		conn.Write(hdr[:])
		conn.Write(make([]byte, 10))
		conn.Close()
	}()
	c, err := DialHub(ln.Addr().String(), "victim")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv("victim")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("truncated frame should surface an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv hung on a truncated frame")
	}
}

func TestTCPClientCloseUnblocksRecv(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0", GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	c, err := DialHub(hub.Addr(), "blocked")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv("blocked")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the receiver block
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv on a closed client should error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Recv")
	}
}

func TestTCPHubCloseUnblocksClientRecv(t *testing.T) {
	// The hub going down mid-round must error out blocked receivers.
	hub, err := NewTCPHub("127.0.0.1:0", GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialHub(hub.Addr(), "orphan")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv("orphan")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("hub shutdown should surface as a recv error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hub close did not unblock client Recv")
	}
}

func TestTCPRoundStampSurvivesTheWire(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0", GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, err := DialHub(hub.Addr(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := DialHub(hub.Addr(), "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Send(Message{From: "a", To: "b", Kind: "grads", Round: 1<<40 + 3}); err != nil {
		t.Fatal(err)
	}
	msg, err := b.RecvTimeout("b", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Round != 1<<40+3 {
		t.Fatalf("round stamp corrupted: %d", msg.Round)
	}
}
