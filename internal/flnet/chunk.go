package flnet

import (
	"encoding/binary"
	"fmt"
)

// Chunk framing for streamed uploads: a message that carries piece `index`
// of `total` for one logical payload, so a sender can put chunk i on the
// wire while chunk i+1 is still being computed and the receiver can
// reassemble in order regardless of arrival interleaving.

// EncodeChunk frames one chunk body with its (index, total) header.
func EncodeChunk(index, total uint32, body []byte) []byte {
	buf := make([]byte, 0, 8+len(body))
	buf = binary.LittleEndian.AppendUint32(buf, index)
	buf = binary.LittleEndian.AppendUint32(buf, total)
	return append(buf, body...)
}

// DecodeChunk parses a frame built by EncodeChunk. The header is untrusted:
// an index at or beyond total, or a zero total, is corrupt. The returned
// body is a copy: chunks await reassembly long after the call returns, and
// a transport that recycles its receive buffers must not be able to corrupt
// them in place.
func DecodeChunk(b []byte) (index, total uint32, body []byte, err error) {
	if len(b) < 8 {
		return 0, 0, nil, fmt.Errorf("flnet: chunk truncated header (%d bytes)", len(b))
	}
	index = binary.LittleEndian.Uint32(b)
	total = binary.LittleEndian.Uint32(b[4:])
	if total == 0 {
		return 0, 0, nil, fmt.Errorf("flnet: chunk with zero total")
	}
	if index >= total {
		return 0, 0, nil, fmt.Errorf("flnet: chunk index %d out of range (total %d)", index, total)
	}
	return index, total, append([]byte(nil), b[8:]...), nil
}
