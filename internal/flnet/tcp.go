package flnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPHub is a star-topology transport over real TCP connections: every
// party dials the hub, which routes framed messages to the destination
// party's connection. It exists so the federated protocols are exercised
// over the net package end to end (cmd/flserver and the integration tests);
// benches use SimTransport for deterministic timing.
type TCPHub struct {
	ln    net.Listener
	meter *Meter

	mu      sync.Mutex
	conns   map[string]net.Conn
	pending map[string][][]byte // frames for parties that have not dialed yet
	closed  bool
	wg      sync.WaitGroup
}

// NewTCPHub listens on addr (e.g. "127.0.0.1:0") and routes messages among
// `parties` expected participants.
func NewTCPHub(addr string, link Link) (*TCPHub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("flnet: hub listen: %w", err)
	}
	h := &TCPHub{
		ln:      ln,
		meter:   NewMeter(link),
		conns:   make(map[string]net.Conn),
		pending: make(map[string][][]byte),
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address.
func (h *TCPHub) Addr() string { return h.ln.Addr().String() }

// Meter exposes the hub-side traffic meter.
func (h *TCPHub) Meter() *Meter { return h.meter }

func (h *TCPHub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		// First frame on a connection is the party name.
		hello, err := readFrame(conn)
		if err != nil {
			conn.Close()
			continue
		}
		name := string(hello)
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			conn.Close()
			return
		}
		h.conns[name] = conn
		// Deliver anything queued while the party was still dialing.
		queued := h.pending[name]
		delete(h.pending, name)
		h.mu.Unlock()
		for _, frame := range queued {
			writeFrame(conn, frame)
		}
		h.wg.Add(1)
		go h.routeLoop(name, conn)
	}
}

func (h *TCPHub) routeLoop(name string, conn net.Conn) {
	defer h.wg.Done()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		msg, err := decodeMessage(frame)
		if err != nil {
			continue
		}
		h.meter.Record(msg.WireSize())
		h.mu.Lock()
		dst, ok := h.conns[msg.To]
		if !ok {
			// The destination has not completed its hello yet (clients race
			// the server at startup); queue until it registers.
			h.pending[msg.To] = append(h.pending[msg.To], frame)
		}
		h.mu.Unlock()
		if ok {
			writeFrame(dst, frame)
		}
	}
}

// Close shuts down the hub and all party connections.
func (h *TCPHub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return fmt.Errorf("flnet: hub already closed")
	}
	h.closed = true
	conns := make([]net.Conn, 0, len(h.conns))
	for _, c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	h.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	h.wg.Wait()
	return nil
}

// TCPClient is one party's connection to a hub; it implements Transport for
// that single party (Recv must be called with the party's own name).
type TCPClient struct {
	name string
	conn net.Conn

	mu     sync.Mutex // serializes writes
	closed bool
}

// DialHub connects a named party to a hub.
func DialHub(addr, party string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("flnet: dial hub: %w", err)
	}
	if err := writeFrame(conn, []byte(party)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("flnet: hello: %w", err)
	}
	return &TCPClient{name: party, conn: conn}, nil
}

// Send implements Transport.
func (c *TCPClient) Send(msg Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("flnet: send on closed client")
	}
	return writeFrame(c.conn, encodeMessage(msg))
}

// Recv implements Transport. party must equal the client's own name.
func (c *TCPClient) Recv(party string) (Message, error) {
	return c.RecvTimeout(party, 0)
}

// RecvTimeout implements Transport via a read deadline on the connection.
// A deadline expiry mid-frame leaves the stream desynchronized, so treat a
// timeout as fatal for this connection's round (dial a fresh one to rejoin).
func (c *TCPClient) RecvTimeout(party string, d time.Duration) (Message, error) {
	if party != c.name {
		return Message{}, fmt.Errorf("flnet: client %q cannot receive for %q", c.name, party)
	}
	if d > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(d)); err != nil {
			return Message{}, fmt.Errorf("flnet: set deadline: %w", err)
		}
		defer c.conn.SetReadDeadline(time.Time{})
	}
	frame, err := readFrame(c.conn)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return Message{}, fmt.Errorf("%w: party %q (%v)", ErrTimeout, party, err)
		}
		return Message{}, fmt.Errorf("flnet: recv: %w", err)
	}
	return decodeMessage(frame)
}

// Close implements Transport.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("flnet: client already closed")
	}
	c.closed = true
	return c.conn.Close()
}

// ---- framing ---------------------------------------------------------

func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	const maxFrame = 1 << 30
	if n > maxFrame {
		return nil, fmt.Errorf("flnet: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func encodeMessage(m Message) []byte {
	buf := make([]byte, 0, m.WireSize())
	buf = binary.LittleEndian.AppendUint64(buf, m.Round)
	for _, s := range []string{m.From, m.To, m.Kind} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	buf = append(buf, m.Payload...)
	return buf
}

func decodeMessage(b []byte) (Message, error) {
	if len(b) < 8 {
		return Message{}, fmt.Errorf("flnet: message truncated")
	}
	round := binary.LittleEndian.Uint64(b)
	b = b[8:]
	var fields [3]string
	for i := range fields {
		if len(b) < 4 {
			return Message{}, fmt.Errorf("flnet: message truncated")
		}
		l := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < l {
			return Message{}, fmt.Errorf("flnet: message field truncated")
		}
		fields[i] = string(b[:l])
		b = b[l:]
	}
	return Message{From: fields[0], To: fields[1], Kind: fields[2], Round: round, Payload: b}, nil
}
