package flnet

import (
	"sync"
	"testing"
	"time"

	"flbooster/internal/mpint"
)

func TestLinkTransferTime(t *testing.T) {
	l := GigabitEthernet()
	// 1 MB at 1 Gb/s ≈ 8 ms + latency.
	got := l.TransferTime(1 << 20)
	if got < 8*time.Millisecond || got > 9*time.Millisecond {
		t.Fatalf("TransferTime(1MiB) = %v", got)
	}
	if (Link{}).TransferTime(100) != 0 {
		t.Fatal("zero link should cost nothing")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter(GigabitEthernet())
	m.Record(1000)
	m.Record(2000)
	bytes, msgs, sim := m.Snapshot()
	if bytes != 3000 || msgs != 2 || sim <= 0 {
		t.Fatalf("meter snapshot: %d bytes, %d msgs, %v", bytes, msgs, sim)
	}
	m.Reset()
	if b, n, s := m.Snapshot(); b != 0 || n != 0 || s != 0 {
		t.Fatal("reset did not clear the meter")
	}
}

func TestSimTransportRoundTrip(t *testing.T) {
	tr := NewSimTransport(GigabitEthernet(), "a", "b")
	msg := Message{From: "a", To: "b", Kind: "test", Payload: []byte("hello")}
	if err := tr.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Recv("b")
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.Kind != "test" || string(got.Payload) != "hello" {
		t.Fatalf("received %+v", got)
	}
	bytes, msgs, _ := tr.Meter().Snapshot()
	if msgs != 1 || bytes != msg.WireSize() {
		t.Fatalf("meter recorded %d bytes %d msgs", bytes, msgs)
	}
}

func TestSimTransportErrors(t *testing.T) {
	tr := NewSimTransport(GigabitEthernet(), "a")
	if err := tr.Send(Message{To: "ghost"}); err == nil {
		t.Fatal("unknown destination should fail")
	}
	if _, err := tr.Recv("ghost"); err == nil {
		t.Fatal("unknown receiver should fail")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err == nil {
		t.Fatal("double close should fail")
	}
	if err := tr.Send(Message{To: "a"}); err == nil {
		t.Fatal("send after close should fail")
	}
	if _, err := tr.Recv("a"); err == nil {
		t.Fatal("recv after close should fail")
	}
}

func TestEncodeDecodeNats(t *testing.T) {
	r := mpint.NewRNG(1)
	batch := []mpint.Nat{nil, mpint.One(), r.RandBits(100), r.RandBits(2048)}
	buf := EncodeNats(batch)
	got, err := DecodeNats(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("decoded %d of %d", len(got), len(batch))
	}
	for i := range batch {
		if mpint.Cmp(got[i], batch[i]) != 0 {
			t.Fatalf("element %d mismatch", i)
		}
	}
}

func TestDecodeNatsErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 0, 0},                // truncated header
		{1, 0, 0, 0},             // missing element length
		{1, 0, 0, 0, 5, 0, 0, 0}, // missing body
		append(EncodeNats([]mpint.Nat{mpint.One()}), 0xFF), // trailing bytes
	}
	for i, b := range cases {
		if _, err := DecodeNats(b); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestEncodeDecodeFloats(t *testing.T) {
	v := []float64{0, 1, -1, 0.5, -123.456, 1e-300, 1e300}
	got, err := DecodeFloats(EncodeFloats(v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], v[i])
		}
	}
	if _, err := DecodeFloats([]byte{1, 2}); err == nil {
		t.Fatal("truncated header should fail")
	}
	if _, err := DecodeFloats([]byte{1, 0, 0, 0, 9}); err == nil {
		t.Fatal("short body should fail")
	}
}

func TestTCPHubRoundTrip(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0", GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	alice, err := DialHub(hub.Addr(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	bob, err := DialHub(hub.Addr(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	payload := EncodeNats([]mpint.Nat{mpint.FromUint64(12345), mpint.NewRNG(2).RandBits(512)})
	if err := alice.Send(Message{From: "alice", To: "bob", Kind: "ct", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got, err := bob.Recv("bob")
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "alice" || got.Kind != "ct" {
		t.Fatalf("routed message header wrong: %+v", got)
	}
	nats, err := DecodeNats(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := nats[0].Uint64(); v != 12345 {
		t.Fatalf("payload corrupted: %v", v)
	}
	if _, err := bob.Recv("alice"); err == nil {
		t.Fatal("receiving for another party should fail")
	}
}

func TestTCPHubMetersTraffic(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0", GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, _ := DialHub(hub.Addr(), "a")
	defer a.Close()
	b, _ := DialHub(hub.Addr(), "b")
	defer b.Close()
	msg := Message{From: "a", To: "b", Kind: "x", Payload: make([]byte, 1000)}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv("b"); err != nil {
		t.Fatal(err)
	}
	bytes, msgs, _ := hub.Meter().Snapshot()
	if msgs != 1 || bytes != msg.WireSize() {
		t.Fatalf("hub metered %d bytes %d msgs, want %d/1", bytes, msgs, msg.WireSize())
	}
}

func TestTCPClientClose(t *testing.T) {
	hub, err := NewTCPHub("127.0.0.1:0", GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	c, _ := DialHub(hub.Addr(), "c")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err == nil {
		t.Fatal("double close should fail")
	}
	if err := c.Send(Message{To: "c"}); err == nil {
		t.Fatal("send after close should fail")
	}
}

func TestMessageWireSize(t *testing.T) {
	m := Message{From: "ab", To: "cde", Kind: "f", Round: 7, Payload: []byte{1, 2, 3, 4}}
	if got := m.WireSize(); got != 20+2+3+1+4 {
		t.Fatalf("WireSize = %d", got)
	}
	// encode/decode agreement
	dec, err := decodeMessage(encodeMessage(m))
	if err != nil {
		t.Fatal(err)
	}
	if dec.From != m.From || dec.To != m.To || dec.Kind != m.Kind || dec.Round != 7 || len(dec.Payload) != 4 {
		t.Fatalf("codec mismatch: %+v", dec)
	}
}

func TestTCPHubBuffersEarlyMessages(t *testing.T) {
	// Regression: a message sent before its destination completes the hello
	// handshake must be queued and delivered, not dropped (clients race the
	// server at startup in the demo topology).
	hub, err := NewTCPHub("127.0.0.1:0", GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	early, err := DialHub(hub.Addr(), "early")
	if err != nil {
		t.Fatal(err)
	}
	defer early.Close()
	if err := early.Send(Message{From: "early", To: "late", Kind: "hello", Payload: []byte("queued")}); err != nil {
		t.Fatal(err)
	}
	// Give the hub a moment to route (and queue) the frame.
	time.Sleep(50 * time.Millisecond)
	late, err := DialHub(hub.Addr(), "late")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	msg, err := late.Recv("late")
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Payload) != "queued" {
		t.Fatalf("early message corrupted: %q", msg.Payload)
	}
}

func TestSimTransportCloseSendRace(t *testing.T) {
	// Regression: Send used to deliver on the queue channel after dropping
	// the lock, so a concurrent Close could panic with "send on closed
	// channel". Hammer the pair under -race; any panic fails the test.
	for iter := 0; iter < 25; iter++ {
		tr := NewSimTransport(GigabitEthernet(), "a", "b")
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					if err := tr.Send(Message{From: "a", To: "b"}); err != nil {
						return // transport closed underneath us: expected
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_ = tr.Close()
		}()
		close(start)
		wg.Wait()
	}
}

func TestSimTransportRecvTimeout(t *testing.T) {
	tr := NewSimTransport(GigabitEthernet(), "a", "b")
	defer tr.Close()
	start := time.Now()
	_, err := tr.RecvTimeout("b", 30*time.Millisecond)
	if !IsTimeout(err) {
		t.Fatalf("want timeout error, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
	// A queued message beats the deadline.
	if err := tr.Send(Message{From: "a", To: "b", Kind: "x"}); err != nil {
		t.Fatal(err)
	}
	msg, err := tr.RecvTimeout("b", time.Minute)
	if err != nil || msg.Kind != "x" {
		t.Fatalf("RecvTimeout = %+v, %v", msg, err)
	}
	// d <= 0 behaves like Recv for a ready message.
	if err := tr.Send(Message{From: "a", To: "b", Kind: "y"}); err != nil {
		t.Fatal(err)
	}
	if msg, err := tr.RecvTimeout("b", 0); err != nil || msg.Kind != "y" {
		t.Fatalf("RecvTimeout(0) = %+v, %v", msg, err)
	}
}

func TestSimTransportDrainsAfterClose(t *testing.T) {
	// Messages delivered before Close stay receivable afterwards.
	tr := NewSimTransport(GigabitEthernet(), "a", "b")
	if err := tr.Send(Message{From: "a", To: "b", Kind: "pre"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	msg, err := tr.Recv("b")
	if err != nil || msg.Kind != "pre" {
		t.Fatalf("drain after close = %+v, %v", msg, err)
	}
	if _, err := tr.Recv("b"); err == nil {
		t.Fatal("empty queue after close should error")
	}
}

func TestDecodeNatsBoundsCountHeader(t *testing.T) {
	// A corrupt frame claiming 2^32-1 elements must fail the header check,
	// not attempt a multi-GB slice allocation.
	b := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeNats(b); err == nil {
		t.Fatal("absurd count header should fail fast")
	}
	// Count that exceeds what the body could possibly hold.
	b = append([]byte{100, 0, 0, 0}, make([]byte, 16)...)
	if _, err := DecodeNats(b); err == nil {
		t.Fatal("count beyond body capacity should fail")
	}
}

func TestDecodeFloatsBoundsCountHeader(t *testing.T) {
	// n = 2^29 makes 8*n wrap to 0 in uint32 arithmetic; the old check
	// passed and then allocated 4 GiB. Must now fail.
	b := []byte{0, 0, 0, 0x20}
	if _, err := DecodeFloats(b); err == nil {
		t.Fatal("wrapping count header should fail")
	}
}
