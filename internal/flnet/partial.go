package flnet

import (
	"encoding/binary"
	"fmt"
)

// Partial-aggregate framing for hierarchical (tree) aggregation: an interior
// node that has HE-summed its fan-out of children forwards exactly one
// partial up a level instead of relaying every child ciphertext. The frame
// carries the tree level it leaves, so receivers can attribute the traffic
// per level and reject frames claiming impossible depths.

// KindPartialAgg is the message kind carrying one forwarded tree partial.
const KindPartialAgg = "pagg"

// MaxTreeLevel bounds the declared level of a partial-aggregate frame. The
// level arrives from the (untrusted) wire; any fan-out ≥ 2 tree over a
// feasible cohort is far shallower than this.
const MaxTreeLevel = 64

// EncodePartialAgg frames one forwarded partial: the tree level it leaves
// plus the encoded ciphertext batch.
func EncodePartialAgg(level uint32, body []byte) []byte {
	buf := make([]byte, 0, 4+len(body))
	buf = binary.LittleEndian.AppendUint32(buf, level)
	return append(buf, body...)
}

// DecodePartialAgg parses a frame built by EncodePartialAgg. The header is
// untrusted: a level beyond MaxTreeLevel is corrupt. The returned body is a
// copy, for the same reason DecodeChunk copies — partials outlive the
// transport's reusable receive buffer.
func DecodePartialAgg(b []byte) (level uint32, body []byte, err error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("flnet: partial-aggregate truncated header (%d bytes)", len(b))
	}
	level = binary.LittleEndian.Uint32(b)
	if level > MaxTreeLevel {
		return 0, nil, fmt.Errorf("flnet: partial-aggregate level %d out of range", level)
	}
	return level, append([]byte(nil), b[4:]...), nil
}
