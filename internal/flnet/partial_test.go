package flnet

import (
	"bytes"
	"testing"
)

func TestPartialAggRoundTrip(t *testing.T) {
	body := []byte("partial-sum")
	for _, level := range []uint32{0, 1, MaxTreeLevel} {
		frame := EncodePartialAgg(level, body)
		gotLevel, gotBody, err := DecodePartialAgg(frame)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if gotLevel != level || !bytes.Equal(gotBody, body) {
			t.Fatalf("level %d: decoded (%d, %q)", level, gotLevel, gotBody)
		}
		// The decoded body must be a copy, not an alias into the frame.
		gotBody[0] ^= 0xff
		if frame[4] != body[0] {
			t.Fatal("decoded body aliases the frame")
		}
	}
	if _, got, err := DecodePartialAgg(EncodePartialAgg(2, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty body: %q, %v", got, err)
	}
}

func TestPartialAggRejectsMalformedFrames(t *testing.T) {
	for name, frame := range map[string][]byte{
		"empty":     nil,
		"short":     {1, 2, 3},
		"level-cap": EncodePartialAgg(MaxTreeLevel+1, []byte("x")),
	} {
		if _, _, err := DecodePartialAgg(frame); err == nil {
			t.Errorf("%s frame decoded without error", name)
		}
	}
}
