package flnet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"flbooster/internal/mpint"
)

// RetryPolicy configures RetryTransport: how many times a failed Send is
// re-attempted and how long to back off between attempts.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure; zero
	// means Send fails immediately (a plain transport).
	MaxRetries int
	// Backoff is the delay before the first retry; each further retry
	// doubles it (capped exponential backoff).
	Backoff time.Duration
	// MaxBackoff caps the doubled delay; zero means 32×Backoff.
	MaxBackoff time.Duration
	// Seed drives the jitter stream so retry schedules are reproducible.
	Seed uint64
}

// delay returns the backoff before retry `attempt` (0-based), scaled by a
// jitter factor in [0.5, 1.5) that decorrelates simultaneous retriers.
// Every arithmetic step saturates instead of wrapping: a large Backoff with
// MaxBackoff unset must clamp to a huge positive delay, never overflow into
// a negative one.
func (p RetryPolicy) delay(attempt int, jitter float64) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	if attempt > 30 {
		attempt = 30 // keep the shift in range; the cap applies anyway
	}
	d := p.Backoff << uint(attempt)
	limit := p.MaxBackoff
	if limit <= 0 {
		limit = 32 * p.Backoff
		if limit/32 != p.Backoff { // 32×Backoff wrapped: saturate the default cap
			limit = math.MaxInt64
		}
	}
	if d > limit || d <= 0 {
		d = limit
	}
	scaled := float64(d) * (0.5 + jitter)
	if scaled >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return time.Duration(scaled)
}

// RetryTransport wraps a Transport and re-attempts failed sends with capped
// exponential backoff plus seeded jitter. Receives and Close pass through.
type RetryTransport struct {
	inner  Transport
	policy RetryPolicy

	// OnRetry, when set, observes every re-attempt before its backoff sleep
	// — the hook the cost model uses to account retransmitted bytes.
	OnRetry func(msg Message, attempt int, err error)

	mu      sync.Mutex
	rng     *mpint.RNG
	retries int64
}

// NewRetryTransport wraps inner with the given policy.
func NewRetryTransport(inner Transport, policy RetryPolicy) *RetryTransport {
	return &RetryTransport{inner: inner, policy: policy, rng: mpint.NewRNG(policy.Seed)}
}

// Send implements Transport: on failure it retries up to MaxRetries times,
// sleeping the policy's jittered backoff between attempts.
func (r *RetryTransport) Send(msg Message) error {
	for attempt := 0; ; attempt++ {
		err := r.inner.Send(msg)
		if err == nil {
			return nil
		}
		if attempt >= r.policy.MaxRetries {
			if r.policy.MaxRetries == 0 {
				return err
			}
			return fmt.Errorf("flnet: send to %q gave up after %d attempts: %w", msg.To, attempt+1, err)
		}
		r.mu.Lock()
		r.retries++
		jitter := r.rng.Float64()
		r.mu.Unlock()
		if r.OnRetry != nil {
			r.OnRetry(msg, attempt+1, err)
		}
		if d := r.policy.delay(attempt, jitter); d > 0 {
			time.Sleep(d)
		}
	}
}

// Recv implements Transport.
func (r *RetryTransport) Recv(party string) (Message, error) { return r.inner.Recv(party) }

// RecvTimeout implements Transport.
func (r *RetryTransport) RecvTimeout(party string, d time.Duration) (Message, error) {
	return r.inner.RecvTimeout(party, d)
}

// Close implements Transport.
func (r *RetryTransport) Close() error { return r.inner.Close() }

// Retries reports how many re-attempts have been made.
func (r *RetryTransport) Retries() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}
