package flnet

import (
	"encoding/binary"
	"fmt"
)

// Session-resume handshake for client churn: a client that dropped off and
// came back announces where it believes the protocol is (epoch, round,
// attempt), and the coordinator either lets it resume the in-flight round —
// only when the token matches exactly, so its retransmitted chunks dedup
// idempotently — or tells it to wait for the next round boundary. A stale
// client can therefore never inject traffic into a round it did not start.

// The handshake message kinds.
const (
	// KindResume: client → coordinator, payload = the client's SessionToken.
	KindResume = "resume"
	// KindResumeOK: coordinator → client, the token matched the in-flight
	// round; the client may continue uploading into it.
	KindResumeOK = "resume-ok"
	// KindResumeWait: coordinator → client, the token is stale (or from the
	// future); the payload token names the round the client may join.
	KindResumeWait = "resume-wait"
)

// SessionToken pins a client's protocol position: which epoch and round it
// is part of, and which attempt of that round (a crash-recovered round is
// re-run with a bumped attempt, invalidating pre-crash chunks).
type SessionToken struct {
	Epoch   uint64
	Round   uint64
	Attempt uint32
}

// tokenWireBytes is the fixed encoded size of a SessionToken.
const tokenWireBytes = 20

// Encode frames the token for the wire (little endian, fixed 20 bytes).
func (t SessionToken) Encode() []byte {
	buf := make([]byte, 0, tokenWireBytes)
	buf = binary.LittleEndian.AppendUint64(buf, t.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, t.Round)
	buf = binary.LittleEndian.AppendUint32(buf, t.Attempt)
	return buf
}

// DecodeSessionToken parses a frame built by Encode.
func DecodeSessionToken(b []byte) (SessionToken, error) {
	if len(b) != tokenWireBytes {
		return SessionToken{}, fmt.Errorf("flnet: session token of %d bytes, want %d", len(b), tokenWireBytes)
	}
	return SessionToken{
		Epoch:   binary.LittleEndian.Uint64(b),
		Round:   binary.LittleEndian.Uint64(b[8:]),
		Attempt: binary.LittleEndian.Uint32(b[16:]),
	}, nil
}

// Admission is the coordinator-side rejoin policy: the token of the round
// currently in flight.
type Admission struct {
	Current SessionToken
}

// AdmissionDecision is the coordinator's reply to one resume request.
type AdmissionDecision struct {
	// Kind is KindResumeOK or KindResumeWait.
	Kind string
	// Token is the position the client is admitted to: the in-flight round
	// on OK, the next round boundary on Wait.
	Token SessionToken
}

// Decide maps a client's claimed token to an admission decision. Only an
// exact (epoch, round, attempt) match resumes the in-flight round; any
// mismatch — an earlier round, a pre-crash attempt, a different epoch, or a
// token from the future — waits for the next round boundary. Deterministic
// and side-effect free.
func (a Admission) Decide(tok SessionToken) AdmissionDecision {
	if tok == a.Current {
		return AdmissionDecision{Kind: KindResumeOK, Token: a.Current}
	}
	return AdmissionDecision{
		Kind:  KindResumeWait,
		Token: SessionToken{Epoch: a.Current.Epoch, Round: a.Current.Round + 1, Attempt: 1},
	}
}
