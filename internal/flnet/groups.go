package flnet

import (
	"encoding/binary"
	"fmt"
)

// Grouped-aggregate framing for group-wise robust secure aggregation: the
// broadcast of a defended round carries G per-group sub-aggregates, each
// with the number of clients securely summed into it, so every decrypting
// client can dequantize per group and re-run the robust combiner. The group
// metadata (count and sizes) is part of the round's wire payload — and,
// via the journaled aggregate record, of its durable metadata.

// KindGroupAgg is the message kind of a grouped aggregate broadcast; plain
// (undefended) rounds keep broadcasting "agg".
const KindGroupAgg = "gagg"

// MaxAggGroups bounds the declared group count of a grouped frame. The
// header is untrusted input: without a bound a corrupt frame could declare
// ~4 billion groups and size the decoder's allocations off an attacker
// integer.
const MaxAggGroups = 1 << 16

// EncodeGroupAgg frames per-group aggregate blobs with their contributor
// counts. Layout: u32 G, then G×(u32 size, u32 blobLen), then the blobs.
func EncodeGroupAgg(sizes []int, blobs [][]byte) ([]byte, error) {
	if len(sizes) == 0 || len(sizes) != len(blobs) {
		return nil, fmt.Errorf("flnet: group frame with %d sizes for %d blobs", len(sizes), len(blobs))
	}
	if len(sizes) > MaxAggGroups {
		return nil, fmt.Errorf("flnet: %d groups exceed the frame bound %d", len(sizes), MaxAggGroups)
	}
	total := 4 + 8*len(sizes)
	for _, b := range blobs {
		total += len(b)
	}
	buf := make([]byte, 0, total)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sizes)))
	for g, size := range sizes {
		if size < 1 {
			return nil, fmt.Errorf("flnet: group %d has contributor count %d", g, size)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(size))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blobs[g])))
	}
	for _, b := range blobs {
		buf = append(buf, b...)
	}
	return buf, nil
}

// DecodeGroupAgg parses a frame built by EncodeGroupAgg. The header is
// untrusted: group counts, contributor counts, and blob lengths are all
// validated against the frame's actual size before anything is allocated
// from them. Returned blobs are copies — safe to hold after the transport
// recycles its receive buffer.
func DecodeGroupAgg(b []byte) (sizes []int, blobs [][]byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("flnet: group frame truncated header (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 {
		return nil, nil, fmt.Errorf("flnet: group frame with zero groups")
	}
	if n > MaxAggGroups {
		return nil, nil, fmt.Errorf("flnet: group frame declares %d groups (bound %d)", n, MaxAggGroups)
	}
	need := 4 + 8*int(n)
	if len(b) < need {
		return nil, nil, fmt.Errorf("flnet: group frame truncated directory (%d bytes for %d groups)", len(b), n)
	}
	sizes = make([]int, n)
	lens := make([]int, n)
	remaining := len(b) - need
	for g := 0; g < int(n); g++ {
		size := binary.LittleEndian.Uint32(b[4+8*g:])
		bl := binary.LittleEndian.Uint32(b[8+8*g:])
		if size == 0 {
			return nil, nil, fmt.Errorf("flnet: group %d declares zero contributors", g)
		}
		if int(bl) > remaining {
			return nil, nil, fmt.Errorf("flnet: group %d declares %d blob bytes, %d remain", g, bl, remaining)
		}
		remaining -= int(bl)
		sizes[g] = int(size)
		lens[g] = int(bl)
	}
	if remaining != 0 {
		return nil, nil, fmt.Errorf("flnet: group frame has %d trailing bytes", remaining)
	}
	blobs = make([][]byte, n)
	off := need
	for g := 0; g < int(n); g++ {
		blobs[g] = append([]byte(nil), b[off:off+lens[g]]...)
		off += lens[g]
	}
	return sizes, blobs, nil
}
