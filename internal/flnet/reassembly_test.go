package flnet

import (
	"bytes"
	"errors"
	"testing"
)

func TestReassemblerInOrderAndOutOfOrder(t *testing.T) {
	for _, order := range [][]uint32{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		r, err := NewReassembler(3)
		if err != nil {
			t.Fatal(err)
		}
		bodies := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
		for i, idx := range order {
			done, err := r.Accept(idx, 3, bodies[idx])
			if err != nil {
				t.Fatalf("order %v: accept %d: %v", order, idx, err)
			}
			if wantDone := i == len(order)-1; done != wantDone {
				t.Fatalf("order %v: done = %v after %d chunks", order, done, i+1)
			}
		}
		got, err := r.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		for i := range bodies {
			if string(got[i]) != string(bodies[i]) {
				t.Fatalf("order %v: chunk %d = %q", order, i, got[i])
			}
		}
	}
}

func TestReassemblerRejectsDuplicateWithoutOverwrite(t *testing.T) {
	r, err := NewReassembler(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Accept(0, 2, []byte("original")); err != nil {
		t.Fatal(err)
	}
	// An exact retransmission is an ignorable typed rejection.
	_, err = r.Accept(0, 2, []byte("original"))
	var ce *ChunkError
	if !errors.As(err, &ce) || ce.Reject != RejectDuplicate || !ce.Ignorable() {
		t.Fatalf("exact dup: got %v", err)
	}
	if r.Duplicates() != 1 {
		t.Fatalf("Duplicates = %d", r.Duplicates())
	}
	// A same-index chunk with different bytes is corruption, not a dup.
	_, err = r.Accept(0, 2, []byte("rewritten"))
	if !errors.As(err, &ce) || ce.Reject != RejectConflict || ce.Ignorable() {
		t.Fatalf("conflicting dup: got %v", err)
	}
	// The first-written body must have survived both rejections.
	if _, err := r.Accept(1, 2, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	got, err := r.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "original" {
		t.Fatalf("chunk 0 overwritten to %q", got[0])
	}
}

func TestReassemblerRejectsRangeAndTotalViolations(t *testing.T) {
	if _, err := NewReassembler(0); err == nil {
		t.Fatal("zero total accepted")
	}
	r, err := NewReassembler(2)
	if err != nil {
		t.Fatal(err)
	}
	var ce *ChunkError
	if _, err := r.Accept(2, 2, nil); !errors.As(err, &ce) || ce.Reject != RejectRange {
		t.Fatalf("out-of-range index: got %v", err)
	}
	if _, err := r.Accept(0, 3, nil); !errors.As(err, &ce) || ce.Reject != RejectTotal {
		t.Fatalf("total mismatch: got %v", err)
	}
	if _, err := r.Assemble(); err == nil {
		t.Fatal("assemble of incomplete payload succeeded")
	}
}

func TestReassemblerTracksAndReleasesBytes(t *testing.T) {
	r, err := NewReassembler(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes() != 0 {
		t.Fatalf("fresh reassembler holds %d bytes", r.Bytes())
	}
	if _, err := r.Accept(0, 3, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Accept(2, 3, []byte("cc")); err != nil {
		t.Fatal(err)
	}
	// Rejections must not count: a duplicate leaves the tally unchanged.
	if _, err := r.Accept(0, 3, []byte("aaaa")); err == nil {
		t.Fatal("duplicate accepted")
	}
	if r.Bytes() != 6 {
		t.Fatalf("buffered %d bytes, want 6", r.Bytes())
	}
	if freed := r.Release(); freed != 6 {
		t.Fatalf("released %d bytes, want 6", freed)
	}
	if r.Bytes() != 0 {
		t.Fatalf("%d bytes survive release", r.Bytes())
	}
	// A released reassembler is spent: further chunks are a typed rejection,
	// not a silent resurrection of the buffers.
	var ce *ChunkError
	if _, err := r.Accept(1, 3, []byte("b")); !errors.As(err, &ce) || ce.Reject != RejectReleased {
		t.Fatalf("post-release accept: got %v", err)
	}
	if _, err := r.Assemble(); err == nil {
		t.Fatal("assemble after release succeeded")
	}
	if freed := r.Release(); freed != 0 {
		t.Fatalf("double release freed %d bytes", freed)
	}
}

func TestReassemblerRejectsOversizedTotal(t *testing.T) {
	// The declared total is untrusted wire input sizing the assembly: above
	// the cap it is rejected up front, before any allocation grows with it.
	var ce *ChunkError
	if _, err := NewReassembler(MaxChunkTotal + 1); !errors.As(err, &ce) || ce.Reject != RejectOversize {
		t.Fatalf("oversized total: got %v", err)
	}
	r, err := NewReassembler(MaxChunkTotal)
	if err != nil {
		t.Fatalf("cap itself must be accepted: %v", err)
	}
	if _, err := r.Accept(0, MaxChunkTotal+1, nil); !errors.As(err, &ce) || ce.Reject != RejectOversize {
		t.Fatalf("oversized total on Accept: got %v", err)
	}
}

// FuzzReassembler throws arbitrary chunk streams — out-of-range indices,
// flip-flopping totals, oversized declarations, duplicate and conflicting
// bodies — at one reassembler and checks the contract: every rejection is a
// typed *ChunkError (never a panic, never an untyped error), accepted state
// is never overwritten, and completion implies a full in-order assembly.
func FuzzReassembler(f *testing.F) {
	f.Add(uint32(3), []byte{0, 0, 1, 2, 0, 1, 0})
	f.Add(uint32(1), []byte{7, 7, 7})
	f.Add(uint32(5), []byte{4, 3, 2, 1, 0, 9, 255})
	f.Fuzz(func(t *testing.T, declared uint32, ops []byte) {
		r, err := NewReassembler(declared)
		if err != nil {
			var ce *ChunkError
			if !errors.As(err, &ce) {
				t.Fatalf("NewReassembler(%d) returned untyped error %v", declared, err)
			}
			if declared != 0 && declared <= MaxChunkTotal {
				t.Fatalf("NewReassembler(%d) rejected a valid total: %v", declared, err)
			}
			return
		}
		if declared == 0 || declared > MaxChunkTotal {
			t.Fatalf("NewReassembler(%d) accepted an invalid total", declared)
		}

		seen := make(map[uint32][]byte)
		for i, op := range ops {
			// Derive a chunk from each op byte: hostile indices and totals
			// (including far out-of-range and oversized ones) and bodies that
			// sometimes collide with an index that already landed.
			index := uint32(op) % (declared + 2)
			total := declared
			switch op % 5 {
			case 1:
				total = declared + 1 // mid-upload total change
			case 2:
				total = MaxChunkTotal + uint32(op) + 1 // oversized declaration
			case 3:
				index = declared + uint32(op) // out of range
			}
			body := []byte{op, byte(i)}
			if prev, ok := seen[index]; ok && op%2 == 0 {
				body = prev // exact retransmission
			}

			done, err := r.Accept(index, total, body)
			if err != nil {
				var ce *ChunkError
				if !errors.As(err, &ce) {
					t.Fatalf("op %d: untyped reject %v", i, err)
				}
				if done {
					t.Fatalf("op %d: rejected chunk reported completion", i)
				}
				continue
			}
			if total != declared || index >= declared {
				t.Fatalf("op %d: invalid chunk (%d/%d) accepted", i, index, total)
			}
			if _, dup := seen[index]; dup {
				t.Fatalf("op %d: index %d accepted twice", i, index)
			}
			seen[index] = body
			if done != (len(seen) == int(declared)) {
				t.Fatalf("op %d: done=%v with %d/%d chunks", i, done, len(seen), declared)
			}
		}
		if r.Received() != len(seen) {
			t.Fatalf("received %d, accepted %d", r.Received(), len(seen))
		}
		if r.Done() {
			parts, err := r.Assemble()
			if err != nil {
				t.Fatalf("assemble after completion: %v", err)
			}
			for i, part := range parts {
				if !bytes.Equal(part, seen[uint32(i)]) {
					t.Fatalf("chunk %d came back rewritten", i)
				}
			}
		} else if _, err := r.Assemble(); err == nil {
			t.Fatal("assemble of incomplete payload succeeded")
		}
	})
}

func TestSessionTokenRoundTrip(t *testing.T) {
	tok := SessionToken{Epoch: 3, Round: 17, Attempt: 2}
	got, err := DecodeSessionToken(tok.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != tok {
		t.Fatalf("round trip %+v != %+v", got, tok)
	}
	if _, err := DecodeSessionToken([]byte{1, 2, 3}); err == nil {
		t.Fatal("short token accepted")
	}
}

func TestAdmissionDecisions(t *testing.T) {
	adm := Admission{Current: SessionToken{Epoch: 1, Round: 5, Attempt: 2}}
	// Exact match resumes the in-flight round.
	if d := adm.Decide(adm.Current); d.Kind != KindResumeOK || d.Token != adm.Current {
		t.Fatalf("exact match: %+v", d)
	}
	next := SessionToken{Epoch: 1, Round: 6, Attempt: 1}
	for name, tok := range map[string]SessionToken{
		"stale round":       {Epoch: 1, Round: 4, Attempt: 1},
		"pre-crash attempt": {Epoch: 1, Round: 5, Attempt: 1},
		"future round":      {Epoch: 1, Round: 9, Attempt: 1},
		"other epoch":       {Epoch: 0, Round: 5, Attempt: 2},
	} {
		if d := adm.Decide(tok); d.Kind != KindResumeWait || d.Token != next {
			t.Fatalf("%s: %+v", name, d)
		}
	}
}
