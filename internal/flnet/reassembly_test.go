package flnet

import (
	"errors"
	"testing"
)

func TestReassemblerInOrderAndOutOfOrder(t *testing.T) {
	for _, order := range [][]uint32{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		r, err := NewReassembler(3)
		if err != nil {
			t.Fatal(err)
		}
		bodies := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
		for i, idx := range order {
			done, err := r.Accept(idx, 3, bodies[idx])
			if err != nil {
				t.Fatalf("order %v: accept %d: %v", order, idx, err)
			}
			if wantDone := i == len(order)-1; done != wantDone {
				t.Fatalf("order %v: done = %v after %d chunks", order, done, i+1)
			}
		}
		got, err := r.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		for i := range bodies {
			if string(got[i]) != string(bodies[i]) {
				t.Fatalf("order %v: chunk %d = %q", order, i, got[i])
			}
		}
	}
}

func TestReassemblerRejectsDuplicateWithoutOverwrite(t *testing.T) {
	r, err := NewReassembler(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Accept(0, 2, []byte("original")); err != nil {
		t.Fatal(err)
	}
	// An exact retransmission is an ignorable typed rejection.
	_, err = r.Accept(0, 2, []byte("original"))
	var ce *ChunkError
	if !errors.As(err, &ce) || ce.Reject != RejectDuplicate || !ce.Ignorable() {
		t.Fatalf("exact dup: got %v", err)
	}
	if r.Duplicates() != 1 {
		t.Fatalf("Duplicates = %d", r.Duplicates())
	}
	// A same-index chunk with different bytes is corruption, not a dup.
	_, err = r.Accept(0, 2, []byte("rewritten"))
	if !errors.As(err, &ce) || ce.Reject != RejectConflict || ce.Ignorable() {
		t.Fatalf("conflicting dup: got %v", err)
	}
	// The first-written body must have survived both rejections.
	if _, err := r.Accept(1, 2, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	got, err := r.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "original" {
		t.Fatalf("chunk 0 overwritten to %q", got[0])
	}
}

func TestReassemblerRejectsRangeAndTotalViolations(t *testing.T) {
	if _, err := NewReassembler(0); err == nil {
		t.Fatal("zero total accepted")
	}
	r, err := NewReassembler(2)
	if err != nil {
		t.Fatal(err)
	}
	var ce *ChunkError
	if _, err := r.Accept(2, 2, nil); !errors.As(err, &ce) || ce.Reject != RejectRange {
		t.Fatalf("out-of-range index: got %v", err)
	}
	if _, err := r.Accept(0, 3, nil); !errors.As(err, &ce) || ce.Reject != RejectTotal {
		t.Fatalf("total mismatch: got %v", err)
	}
	if _, err := r.Assemble(); err == nil {
		t.Fatal("assemble of incomplete payload succeeded")
	}
}

func TestSessionTokenRoundTrip(t *testing.T) {
	tok := SessionToken{Epoch: 3, Round: 17, Attempt: 2}
	got, err := DecodeSessionToken(tok.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != tok {
		t.Fatalf("round trip %+v != %+v", got, tok)
	}
	if _, err := DecodeSessionToken([]byte{1, 2, 3}); err == nil {
		t.Fatal("short token accepted")
	}
}

func TestAdmissionDecisions(t *testing.T) {
	adm := Admission{Current: SessionToken{Epoch: 1, Round: 5, Attempt: 2}}
	// Exact match resumes the in-flight round.
	if d := adm.Decide(adm.Current); d.Kind != KindResumeOK || d.Token != adm.Current {
		t.Fatalf("exact match: %+v", d)
	}
	next := SessionToken{Epoch: 1, Round: 6, Attempt: 1}
	for name, tok := range map[string]SessionToken{
		"stale round":       {Epoch: 1, Round: 4, Attempt: 1},
		"pre-crash attempt": {Epoch: 1, Round: 5, Attempt: 1},
		"future round":      {Epoch: 1, Round: 9, Attempt: 1},
		"other epoch":       {Epoch: 0, Round: 5, Attempt: 2},
	} {
		if d := adm.Decide(tok); d.Kind != KindResumeWait || d.Token != next {
			t.Fatalf("%s: %+v", name, d)
		}
	}
}
