package flnet

import (
	"strings"
	"testing"
)

func TestFaultyTransportSendFailure(t *testing.T) {
	inner := NewSimTransport(GigabitEthernet(), "a", "b")
	ft := NewFaultyTransport(inner)
	ft.FailSendAt = 2
	if err := ft.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	err := ft.Send(Message{From: "a", To: "b"})
	if err == nil || !strings.Contains(err.Error(), "injected send failure") {
		t.Fatalf("second send should fail with the injected error, got %v", err)
	}
	// Third send passes again (the fault fires once).
	if err := ft.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	sends, _ := ft.Counts()
	if sends != 3 {
		t.Fatalf("send count = %d", sends)
	}
}

func TestFaultyTransportRecvFailure(t *testing.T) {
	inner := NewSimTransport(GigabitEthernet(), "a", "b")
	ft := NewFaultyTransport(inner)
	ft.FailRecvAt = 1
	if err := ft.Send(Message{From: "a", To: "b", Kind: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ft.Recv("b"); err == nil {
		t.Fatal("first recv should fail")
	}
	msg, err := ft.Recv("b")
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != "x" {
		t.Fatal("message lost after injected failure")
	}
}

func TestFaultyTransportDropKind(t *testing.T) {
	inner := NewSimTransport(GigabitEthernet(), "a", "b")
	ft := NewFaultyTransport(inner)
	ft.DropKind = "grads"
	if err := ft.Send(Message{From: "a", To: "b", Kind: "grads"}); err != nil {
		t.Fatal(err)
	}
	if err := ft.Send(Message{From: "a", To: "b", Kind: "agg"}); err != nil {
		t.Fatal(err)
	}
	msg, err := ft.Recv("b")
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != "agg" {
		t.Fatalf("dropped message was delivered: %q", msg.Kind)
	}
	if err := ft.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ft.Close(); err == nil {
		t.Fatal("double close should propagate from the inner transport")
	}
}
