package flnet

import (
	"strings"
	"testing"
	"time"
)

func TestFaultyTransportSendFailure(t *testing.T) {
	inner := NewSimTransport(GigabitEthernet(), "a", "b")
	ft := NewFaultyTransport(inner)
	ft.FailSendAt = 2
	if err := ft.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	err := ft.Send(Message{From: "a", To: "b"})
	if err == nil || !strings.Contains(err.Error(), "injected send failure") {
		t.Fatalf("second send should fail with the injected error, got %v", err)
	}
	// Third send passes again (the fault fires once).
	if err := ft.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	sends, _ := ft.Counts()
	if sends != 3 {
		t.Fatalf("send count = %d", sends)
	}
}

func TestFaultyTransportRecvFailure(t *testing.T) {
	inner := NewSimTransport(GigabitEthernet(), "a", "b")
	ft := NewFaultyTransport(inner)
	ft.FailRecvAt = 1
	if err := ft.Send(Message{From: "a", To: "b", Kind: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ft.Recv("b"); err == nil {
		t.Fatal("first recv should fail")
	}
	msg, err := ft.Recv("b")
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != "x" {
		t.Fatal("message lost after injected failure")
	}
}

func TestFaultyTransportDropKind(t *testing.T) {
	inner := NewSimTransport(GigabitEthernet(), "a", "b")
	ft := NewFaultyTransport(inner)
	ft.DropKind = "grads"
	if err := ft.Send(Message{From: "a", To: "b", Kind: "grads"}); err != nil {
		t.Fatal(err)
	}
	if err := ft.Send(Message{From: "a", To: "b", Kind: "agg"}); err != nil {
		t.Fatal(err)
	}
	msg, err := ft.Recv("b")
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != "agg" {
		t.Fatalf("dropped message was delivered: %q", msg.Kind)
	}
	if err := ft.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ft.Close(); err == nil {
		t.Fatal("double close should propagate from the inner transport")
	}
}

func TestFaultyTransportDropFrom(t *testing.T) {
	inner := NewSimTransport(GigabitEthernet(), "a", "b", "c")
	ft := NewFaultyTransport(inner)
	ft.DropFrom = "a"
	ft.DropKind = "grads"
	// Matching both (from a, kind grads): dropped.
	if err := ft.Send(Message{From: "a", To: "c", Kind: "grads"}); err != nil {
		t.Fatal(err)
	}
	// Matching only one of the two: delivered.
	if err := ft.Send(Message{From: "a", To: "c", Kind: "agg"}); err != nil {
		t.Fatal(err)
	}
	if err := ft.Send(Message{From: "b", To: "c", Kind: "grads"}); err != nil {
		t.Fatal(err)
	}
	first, err := ft.Recv("c")
	if err != nil || first.From != "a" || first.Kind != "agg" {
		t.Fatalf("first delivered = %+v, %v", first, err)
	}
	second, err := ft.Recv("c")
	if err != nil || second.From != "b" {
		t.Fatalf("second delivered = %+v, %v", second, err)
	}
}

func chaosRun(t *testing.T, cfg ChaosConfig, n int) ([]uint64, ChaosStats) {
	t.Helper()
	inner := NewSimTransport(GigabitEthernet(), "a", "b")
	ct := NewChaosTransport(inner, cfg)
	for i := 0; i < n; i++ {
		if err := ct.Send(Message{From: "a", To: "b", Round: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	ct.Flush()
	var got []uint64
	for {
		msg, err := ct.RecvTimeout("b", 20*time.Millisecond)
		if err != nil {
			break
		}
		got = append(got, msg.Round)
	}
	ct.Close()
	return got, ct.Stats()
}

func TestChaosTransportDeterministicUnderSeed(t *testing.T) {
	cfg := ChaosConfig{Seed: 42, DropProb: 0.2, DupProb: 0.2, ReorderProb: 0.2}
	got1, stats1 := chaosRun(t, cfg, 200)
	got2, stats2 := chaosRun(t, cfg, 200)
	if stats1 != stats2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", stats1, stats2)
	}
	if len(got1) != len(got2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("delivery order differs at %d: %d vs %d", i, got1[i], got2[i])
		}
	}
	if stats1.Dropped == 0 || stats1.Duplicated == 0 || stats1.Reordered == 0 {
		t.Fatalf("faults not exercised: %+v", stats1)
	}
	// A different seed produces a different pattern.
	cfg.Seed = 43
	got3, _ := chaosRun(t, cfg, 200)
	same := len(got3) == len(got1)
	if same {
		for i := range got1 {
			if got1[i] != got3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

func TestChaosTransportDropAll(t *testing.T) {
	got, stats := chaosRun(t, ChaosConfig{Seed: 1, DropProb: 1}, 10)
	if len(got) != 0 || stats.Dropped != 10 {
		t.Fatalf("DropProb=1 delivered %d, stats %+v", len(got), stats)
	}
}

func TestChaosTransportDuplicateAll(t *testing.T) {
	got, stats := chaosRun(t, ChaosConfig{Seed: 1, DupProb: 1}, 5)
	if len(got) != 10 || stats.Duplicated != 5 {
		t.Fatalf("DupProb=1 delivered %d, stats %+v", len(got), stats)
	}
}

func TestChaosTransportReordersNeighbours(t *testing.T) {
	// Reorder only the first message: it must arrive after the second.
	inner := NewSimTransport(GigabitEthernet(), "a", "b")
	// With ReorderProb=1 every send draws reorder=true, so message 1 is held
	// and released behind message 2, then message 3 held behind 4, etc.
	ct := NewChaosTransport(inner, ChaosConfig{Seed: 7, ReorderProb: 1})
	defer ct.Close()
	for i := uint64(1); i <= 4; i++ {
		if err := ct.Send(Message{From: "a", To: "b", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{2, 1, 4, 3}
	for i, w := range want {
		msg, err := ct.RecvTimeout("b", 50*time.Millisecond)
		if err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
		if msg.Round != w {
			t.Fatalf("delivery %d = round %d, want %d", i, msg.Round, w)
		}
	}
}

func TestChaosTransportStragglerDelay(t *testing.T) {
	inner := NewSimTransport(GigabitEthernet(), "slow", "fast", "dst")
	ct := NewChaosTransport(inner, ChaosConfig{
		Seed: 3, StragglerParty: "slow", StragglerDelay: 60 * time.Millisecond,
	})
	defer ct.Close()
	start := time.Now()
	if err := ct.Send(Message{From: "slow", To: "dst", Kind: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := ct.Send(Message{From: "fast", To: "dst", Kind: "f"}); err != nil {
		t.Fatal(err)
	}
	// The fast sender's message arrives first even though it was sent second.
	first, err := ct.RecvTimeout("dst", time.Second)
	if err != nil || first.Kind != "f" {
		t.Fatalf("first = %+v, %v", first, err)
	}
	second, err := ct.RecvTimeout("dst", time.Second)
	if err != nil || second.Kind != "s" {
		t.Fatalf("second = %+v, %v", second, err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("straggler arrived too early: %v", elapsed)
	}
}
