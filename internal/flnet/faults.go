package flnet

import (
	"fmt"
	"sync"
	"time"

	"flbooster/internal/mpint"
)

// FaultyTransport wraps a Transport and injects deterministic failures —
// used to verify that federated protocols surface transport errors instead
// of hanging or silently corrupting training state.
type FaultyTransport struct {
	inner Transport

	mu        sync.Mutex
	sendCount int64
	recvCount int64
	// FailSendAt and FailRecvAt are 1-based operation indices at which the
	// corresponding call fails; zero disables the fault.
	FailSendAt int64
	FailRecvAt int64
	// DropKind silently drops (rather than fails) sends of this Kind.
	DropKind string
	// DropFrom silently drops sends from this party. When both DropKind and
	// DropFrom are set, only messages matching both are dropped.
	DropFrom string
}

// NewFaultyTransport wraps inner.
func NewFaultyTransport(inner Transport) *FaultyTransport {
	return &FaultyTransport{inner: inner}
}

// Send implements Transport with injected failures.
func (f *FaultyTransport) Send(msg Message) error {
	f.mu.Lock()
	f.sendCount++
	n := f.sendCount
	failAt := f.FailSendAt
	drop := (f.DropKind != "" || f.DropFrom != "") &&
		(f.DropKind == "" || msg.Kind == f.DropKind) &&
		(f.DropFrom == "" || msg.From == f.DropFrom)
	f.mu.Unlock()
	if failAt != 0 && n == failAt {
		return fmt.Errorf("flnet: injected send failure at operation %d", n)
	}
	if drop {
		return nil // delivered nowhere
	}
	return f.inner.Send(msg)
}

// Recv implements Transport with injected failures.
func (f *FaultyTransport) Recv(party string) (Message, error) {
	if err := f.recvFault(); err != nil {
		return Message{}, err
	}
	return f.inner.Recv(party)
}

// RecvTimeout implements Transport with injected failures.
func (f *FaultyTransport) RecvTimeout(party string, d time.Duration) (Message, error) {
	if err := f.recvFault(); err != nil {
		return Message{}, err
	}
	return f.inner.RecvTimeout(party, d)
}

func (f *FaultyTransport) recvFault() error {
	f.mu.Lock()
	f.recvCount++
	n := f.recvCount
	failAt := f.FailRecvAt
	f.mu.Unlock()
	if failAt != 0 && n == failAt {
		return fmt.Errorf("flnet: injected recv failure at operation %d", n)
	}
	return nil
}

// Close implements Transport.
func (f *FaultyTransport) Close() error { return f.inner.Close() }

// Counts reports how many sends and recvs have passed through.
func (f *FaultyTransport) Counts() (sends, recvs int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sendCount, f.recvCount
}

// ---- Chaos toolkit -------------------------------------------------------

// ChaosConfig parameterizes ChaosTransport. All probabilistic decisions come
// from one xoshiro stream seeded by Seed and drawn in send order, so a fixed
// seed and a fixed send sequence reproduce the exact same fault pattern.
type ChaosConfig struct {
	// Seed drives every probabilistic decision.
	Seed uint64
	// DropProb is the probability a send is silently discarded.
	DropProb float64
	// DupProb is the probability a send is delivered twice.
	DupProb float64
	// ReorderProb is the probability a send is held back and delivered only
	// after the next message — swapping the arrival order of neighbours.
	ReorderProb float64
	// Delay is an added delivery latency applied to every message.
	Delay time.Duration
	// StragglerParty, when non-empty, adds StragglerDelay to every message
	// sent by that party — the slow-client scenario of quorum aggregation.
	StragglerParty string
	// StragglerDelay is the extra latency for the straggler's messages.
	StragglerDelay time.Duration
}

// ChaosStats counts the faults a ChaosTransport has injected.
type ChaosStats struct {
	Sent       int64 // messages offered to Send
	Dropped    int64 // silently discarded
	Duplicated int64 // delivered twice
	Reordered  int64 // held back behind a later message
	Delayed    int64 // delivered asynchronously after a latency
}

// ChaosTransport wraps a Transport with seeded probabilistic faults: drops,
// duplication, neighbour reordering, and per-message delivery delay. Delayed
// messages are delivered from a timer goroutine; delivery errors after the
// inner transport closes are discarded, mirroring packets in flight when a
// link goes down.
type ChaosTransport struct {
	inner Transport
	cfg   ChaosConfig

	mu      sync.Mutex
	rng     *mpint.RNG
	held    *Message
	stats   ChaosStats
	pending sync.WaitGroup
}

// NewChaosTransport wraps inner with the given fault configuration.
func NewChaosTransport(inner Transport, cfg ChaosConfig) *ChaosTransport {
	return &ChaosTransport{inner: inner, cfg: cfg, rng: mpint.NewRNG(cfg.Seed)}
}

// Send implements Transport with injected chaos.
func (c *ChaosTransport) Send(msg Message) error {
	c.mu.Lock()
	c.stats.Sent++
	// Draw all three decisions every send, in a fixed order, so the fault
	// pattern is a pure function of (seed, send index) regardless of which
	// faults are enabled.
	drop := c.rng.Float64() < c.cfg.DropProb
	dup := c.rng.Float64() < c.cfg.DupProb
	reorder := c.rng.Float64() < c.cfg.ReorderProb

	var deliver []Message
	switch {
	case drop:
		c.stats.Dropped++
	case reorder && c.held == nil:
		held := msg
		c.held = &held
		c.stats.Reordered++
	default:
		deliver = append(deliver, msg)
		if dup {
			deliver = append(deliver, msg)
			c.stats.Duplicated++
		}
	}
	// A held message is released behind the next delivered one.
	if c.held != nil && len(deliver) > 0 {
		deliver = append(deliver, *c.held)
		c.held = nil
	}
	delay := c.cfg.Delay
	if c.cfg.StragglerParty != "" && msg.From == c.cfg.StragglerParty {
		delay += c.cfg.StragglerDelay
	}
	if delay > 0 && len(deliver) > 0 {
		c.stats.Delayed++
	}
	c.mu.Unlock()

	if len(deliver) == 0 {
		return nil
	}
	if delay > 0 {
		c.pending.Add(1)
		time.AfterFunc(delay, func() {
			defer c.pending.Done()
			for _, m := range deliver {
				_ = c.inner.Send(m) // best effort: the round may have moved on
			}
		})
		return nil
	}
	for _, m := range deliver {
		if err := c.inner.Send(m); err != nil {
			return err
		}
	}
	return nil
}

// Recv implements Transport.
func (c *ChaosTransport) Recv(party string) (Message, error) { return c.inner.Recv(party) }

// RecvTimeout implements Transport.
func (c *ChaosTransport) RecvTimeout(party string, d time.Duration) (Message, error) {
	return c.inner.RecvTimeout(party, d)
}

// Close implements Transport. Pending delayed deliveries are abandoned.
func (c *ChaosTransport) Close() error { return c.inner.Close() }

// Flush blocks until all delayed deliveries have been attempted — call in
// tests before asserting on received traffic.
func (c *ChaosTransport) Flush() { c.pending.Wait() }

// Stats returns a snapshot of the injected-fault counters.
func (c *ChaosTransport) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
