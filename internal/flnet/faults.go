package flnet

import (
	"fmt"
	"sync"
)

// FaultyTransport wraps a Transport and injects deterministic failures —
// used to verify that federated protocols surface transport errors instead
// of hanging or silently corrupting training state.
type FaultyTransport struct {
	inner Transport

	mu        sync.Mutex
	sendCount int64
	recvCount int64
	// FailSendAt and FailRecvAt are 1-based operation indices at which the
	// corresponding call fails; zero disables the fault.
	FailSendAt int64
	FailRecvAt int64
	// DropKind silently drops (rather than fails) sends of this Kind.
	DropKind string
}

// NewFaultyTransport wraps inner.
func NewFaultyTransport(inner Transport) *FaultyTransport {
	return &FaultyTransport{inner: inner}
}

// Send implements Transport with injected failures.
func (f *FaultyTransport) Send(msg Message) error {
	f.mu.Lock()
	f.sendCount++
	n := f.sendCount
	failAt := f.FailSendAt
	drop := f.DropKind != "" && msg.Kind == f.DropKind
	f.mu.Unlock()
	if failAt != 0 && n == failAt {
		return fmt.Errorf("flnet: injected send failure at operation %d", n)
	}
	if drop {
		return nil // delivered nowhere
	}
	return f.inner.Send(msg)
}

// Recv implements Transport with injected failures.
func (f *FaultyTransport) Recv(party string) (Message, error) {
	f.mu.Lock()
	f.recvCount++
	n := f.recvCount
	failAt := f.FailRecvAt
	f.mu.Unlock()
	if failAt != 0 && n == failAt {
		return Message{}, fmt.Errorf("flnet: injected recv failure at operation %d", n)
	}
	return f.inner.Recv(party)
}

// Close implements Transport.
func (f *FaultyTransport) Close() error { return f.inner.Close() }

// Counts reports how many sends and recvs have passed through.
func (f *FaultyTransport) Counts() (sends, recvs int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sendCount, f.recvCount
}
