package flnet

import (
	"bytes"
	"testing"
)

func TestChunkRoundTrip(t *testing.T) {
	body := []byte{1, 2, 3, 4, 5}
	idx, total, got, err := DecodeChunk(EncodeChunk(3, 7, body))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 || total != 7 || !bytes.Equal(got, body) {
		t.Fatalf("round trip gave (%d, %d, %v)", idx, total, got)
	}
	// Empty body is legal (an empty upload still announces itself).
	if _, _, got, err := DecodeChunk(EncodeChunk(0, 1, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty chunk: %v, body %v", err, got)
	}
}

func TestChunkRejectsCorruptHeaders(t *testing.T) {
	cases := map[string][]byte{
		"truncated":        {1, 2, 3},
		"zero total":       EncodeChunk(0, 0, nil),
		"index at total":   EncodeChunk(2, 2, nil),
		"index past total": EncodeChunk(9, 2, []byte{1}),
	}
	for name, b := range cases {
		if _, _, _, err := DecodeChunk(b); err == nil {
			t.Errorf("%s: corrupt chunk accepted", name)
		}
	}
}

// TestDecodeChunkCopiesBody: a transport that recycles its receive buffer
// must not be able to corrupt an already-decoded chunk body awaiting
// reassembly. Fails on the aliasing DecodeChunk that returned b[8:].
func TestDecodeChunkCopiesBody(t *testing.T) {
	frame := EncodeChunk(1, 3, []byte{10, 20, 30, 40})
	_, _, body, err := DecodeChunk(frame)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), body...)
	for i := range frame {
		frame[i] = 0xAA // the transport reuses its buffer for the next frame
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("decoded body aliases the inbound frame: %v, want %v", body, want)
	}
}
