package flnet

import (
	"bytes"
	"testing"
)

func TestChunkRoundTrip(t *testing.T) {
	body := []byte{1, 2, 3, 4, 5}
	idx, total, got, err := DecodeChunk(EncodeChunk(3, 7, body))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 || total != 7 || !bytes.Equal(got, body) {
		t.Fatalf("round trip gave (%d, %d, %v)", idx, total, got)
	}
	// Empty body is legal (an empty upload still announces itself).
	if _, _, got, err := DecodeChunk(EncodeChunk(0, 1, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty chunk: %v, body %v", err, got)
	}
}

func TestChunkRejectsCorruptHeaders(t *testing.T) {
	cases := map[string][]byte{
		"truncated":        {1, 2, 3},
		"zero total":       EncodeChunk(0, 0, nil),
		"index at total":   EncodeChunk(2, 2, nil),
		"index past total": EncodeChunk(9, 2, []byte{1}),
	}
	for name, b := range cases {
		if _, _, _, err := DecodeChunk(b); err == nil {
			t.Errorf("%s: corrupt chunk accepted", name)
		}
	}
}
