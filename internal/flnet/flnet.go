// Package flnet is the communication substrate: a message codec for
// ciphertext and gradient payloads, an in-process transport that really
// moves the encoded bytes between parties, a TCP transport over net for
// integration realism, and a link model calibrated to the paper's testbed
// (Gigabit Ethernet) that converts bytes on the wire into simulated
// communication time — the quantity Tables III/V/VI measure.
package flnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"flbooster/internal/mpint"
	"flbooster/internal/obs"
)

// ErrTimeout is returned (wrapped) by RecvTimeout when the deadline expires
// before a message arrives. Callers distinguish a quiet link from a broken
// one with IsTimeout.
var ErrTimeout = errors.New("flnet: receive timed out")

// IsTimeout reports whether err is a receive-deadline expiry.
func IsTimeout(err error) bool { return errors.Is(err, ErrTimeout) }

// Link models one network link.
type Link struct {
	// BandwidthBps is the link bandwidth in bits per second.
	BandwidthBps float64
	// LatencySec is the one-way message latency in seconds.
	LatencySec float64
}

// GigabitEthernet returns the paper's raw cluster interconnect: 1 Gb/s with
// a LAN-typical 200 µs round-trip budget per message.
func GigabitEthernet() Link {
	return Link{BandwidthBps: 1e9, LatencySec: 100e-6}
}

// FATEEffectiveLink returns the *effective* federation transport of a
// FATE-style deployment on Gigabit Ethernet — the calibration the
// experiment harness uses by default.
//
// The raw wire moves a 256-byte ciphertext in ~2 µs, but the paper's own
// measurements imply ciphertexts cost three orders of magnitude more end to
// end: Table IV puts HAFLO's HE throughput at ~58.8k instances/s (17 µs per
// instance) while Table VI attributes >99% of HAFLO's epoch to
// communication, so one instance's transfer costs ≳1.7 ms — an effective
// ~1–2 Mb/s per stream once rollsite proxying, serialization, and per-round
// synchronization are included. Reproducing the paper's component shares
// therefore requires the effective link, not the raw wire.
func FATEEffectiveLink() Link {
	return Link{BandwidthBps: 1.2e6, LatencySec: 10e-3}
}

// TransferTime returns the modelled wire time for a payload of n bytes.
func (l Link) TransferTime(n int64) time.Duration {
	if l.BandwidthBps <= 0 {
		return 0
	}
	sec := l.LatencySec + float64(n)*8/l.BandwidthBps
	return time.Duration(sec * float64(time.Second))
}

// Meter accumulates traffic per direction plus the modelled wire time.
// It is safe for concurrent use.
type Meter struct {
	link Link

	mu       sync.Mutex
	txBytes  int64
	messages int64
	simTime  time.Duration
}

// NewMeter builds a meter over a link model.
func NewMeter(link Link) *Meter { return &Meter{link: link} }

// Record accounts one message of n bytes.
func (m *Meter) Record(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.txBytes += n
	m.messages++
	m.simTime += m.link.TransferTime(n)
}

// Snapshot returns (bytes, messages, simulated time).
func (m *Meter) Snapshot() (int64, int64, time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.txBytes, m.messages, m.simTime
}

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.txBytes, m.messages, m.simTime = 0, 0, 0
}

// Publish sets the meter's totals as absolute counters in reg under prefix
// (e.g. "net.tcp" → net.tcp.bytes / net.tcp.msgs / net.tcp.sim_ns).
func (m *Meter) Publish(reg *obs.Registry, prefix string) {
	bytes, msgs, sim := m.Snapshot()
	reg.Set(prefix+".bytes", bytes)
	reg.Set(prefix+".msgs", msgs)
	reg.Set(prefix+".sim_ns", int64(sim))
}

// Message is one party-to-party transfer.
type Message struct {
	From    string
	To      string
	Kind    string // protocol step label, e.g. "grads", "agg"
	Round   uint64 // federation round the message belongs to (0 = unversioned)
	Payload []byte
}

// WireSize is the framed size of the message on the wire: three length
// prefixes, the 8-byte round stamp, strings, and payload.
func (msg Message) WireSize() int64 {
	return int64(20 + len(msg.From) + len(msg.To) + len(msg.Kind) + len(msg.Payload))
}

// Transport moves messages between named parties.
type Transport interface {
	// Send delivers msg to its destination party's queue.
	Send(msg Message) error
	// Recv blocks until a message for the named party arrives.
	Recv(party string) (Message, error)
	// RecvTimeout blocks like Recv but gives up after d, returning an error
	// satisfying IsTimeout. d <= 0 means no deadline.
	RecvTimeout(party string, d time.Duration) (Message, error)
	// Close releases transport resources; subsequent calls fail.
	Close() error
}

// simQueue is one party's unbounded FIFO. A plain slice under a mutex grows
// with the actual backlog — a flat cross-device round parks every client's
// upload at the server before the gather loop drains any of them, so the
// server queue must absorb one message per party without Send ever blocking
// (a fixed channel would deadlock the single-threaded round protocol against
// its own backlog, and pre-sizing a channel per party costs O(parties²)
// memory). wake carries at most one token; pop re-arms it while messages
// remain so no waiting receiver misses a backlog.
type simQueue struct {
	mu    sync.Mutex
	items []Message
	head  int
	wake  chan struct{}
}

func (q *simQueue) push(m Message) {
	q.mu.Lock()
	q.items = append(q.items, m)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

func (q *simQueue) pop() (Message, bool) {
	q.mu.Lock()
	if q.head == len(q.items) {
		q.mu.Unlock()
		return Message{}, false
	}
	m := q.items[q.head]
	q.items[q.head] = Message{} // release the payload to the GC while queued
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	more := q.head < len(q.items)
	q.mu.Unlock()
	if more {
		select {
		case q.wake <- struct{}{}:
		default:
		}
	}
	return m, true
}

// SimTransport is the in-process transport: per-party unbounded queues with
// every byte metered through the link model. Closing never closes any
// channel a sender writes — a broadcast `done` channel unblocks receivers —
// so Send racing Close cannot panic.
type SimTransport struct {
	meter *Meter

	mu     sync.Mutex
	queues map[string]*simQueue
	done   chan struct{}
	closed bool
}

// NewSimTransport creates a transport for the named parties.
func NewSimTransport(link Link, parties ...string) *SimTransport {
	t := &SimTransport{
		meter:  NewMeter(link),
		queues: make(map[string]*simQueue, len(parties)),
		done:   make(chan struct{}),
	}
	for _, p := range parties {
		t.queues[p] = &simQueue{wake: make(chan struct{}, 1)}
	}
	return t
}

// Meter exposes the transport's traffic meter.
func (t *SimTransport) Meter() *Meter { return t.meter }

// Send implements Transport. The queues are unbounded, so Send never blocks.
func (t *SimTransport) Send(msg Message) error {
	t.mu.Lock()
	q, ok := t.queues[msg.To]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return fmt.Errorf("flnet: send on closed transport")
	}
	if !ok {
		return fmt.Errorf("flnet: unknown party %q", msg.To)
	}
	q.push(msg)
	t.meter.Record(msg.WireSize())
	return nil
}

// Recv implements Transport.
func (t *SimTransport) Recv(party string) (Message, error) {
	return t.recv(party, nil)
}

// RecvTimeout implements Transport.
func (t *SimTransport) RecvTimeout(party string, d time.Duration) (Message, error) {
	if d <= 0 {
		return t.recv(party, nil)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	return t.recv(party, timer.C)
}

func (t *SimTransport) recv(party string, timeout <-chan time.Time) (Message, error) {
	t.mu.Lock()
	q, ok := t.queues[party]
	t.mu.Unlock()
	if !ok {
		return Message{}, fmt.Errorf("flnet: unknown party %q", party)
	}
	for {
		// Drain already-delivered messages even after Close.
		if msg, ok := q.pop(); ok {
			return msg, nil
		}
		select {
		case <-q.wake:
			// Retry the pop; a concurrent receiver may have raced us to the
			// message, in which case we wait for the next token.
		case <-t.done:
			if msg, ok := q.pop(); ok { // a send landed before the close won
				return msg, nil
			}
			return Message{}, fmt.Errorf("flnet: transport closed")
		case <-timeout:
			return Message{}, fmt.Errorf("%w: party %q", ErrTimeout, party)
		}
	}
}

// Close implements Transport.
func (t *SimTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("flnet: already closed")
	}
	t.closed = true
	close(t.done)
	return nil
}

// ---- Payload codec -------------------------------------------------------
//
// Length-prefixed little-endian framing. Ciphertext batches are the dominant
// payload; the codec writes a count followed by per-element length + bytes,
// so a batch's wire size directly reflects key size × element count — the
// quantity batch compression shrinks.

// EncodeNats frames a batch of multi-precision integers in exactly one
// allocation, sized from the values' bit lengths.
func EncodeNats(v []mpint.Nat) []byte {
	size := 4
	for _, x := range v {
		size += 4 + (x.BitLen()+7)/8
	}
	return AppendNats(make([]byte, 0, size), v)
}

// AppendNats appends the EncodeNats framing of v to dst and returns the
// extended slice — the zero-extra-allocation form for callers that reuse an
// encode buffer.
func AppendNats(dst []byte, v []mpint.Nat) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
	for _, x := range v {
		at := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		dst = x.AppendBytes(dst)
		binary.LittleEndian.PutUint32(dst[at:], uint32(len(dst)-at-4))
	}
	return dst
}

// DecodeNats parses a batch framed by EncodeNats.
func DecodeNats(b []byte) ([]mpint.Nat, error) {
	return DecodeNatsInto(nil, b)
}

// DecodeNatsInto parses a batch framed by EncodeNats, appending into
// dst[:0] — callers with a pooled scratch slice skip the output allocation.
// The parsed values are freshly allocated either way; only the slice header
// array is reused.
func DecodeNatsInto(dst []mpint.Nat, b []byte) ([]mpint.Nat, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("flnet: nat batch truncated header")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// The count header is untrusted: every element needs at least a 4-byte
	// length prefix, so a count beyond len(b)/4 is corrupt. Checking before
	// the allocation stops a truncated frame from demanding gigabytes.
	if uint64(n) > uint64(len(b))/4 {
		return nil, fmt.Errorf("flnet: nat batch count %d exceeds %d-byte body", n, len(b))
	}
	out := dst[:0]
	if cap(out) < int(n) {
		out = make([]mpint.Nat, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("flnet: nat %d truncated length", i)
		}
		l := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < l {
			return nil, fmt.Errorf("flnet: nat %d truncated body (%d < %d)", i, len(b), l)
		}
		out = append(out, mpint.FromBytes(b[:l]))
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("flnet: %d trailing bytes after nat batch", len(b))
	}
	return out, nil
}

// EncodeFloats frames a float64 vector (IEEE-754 bits, little endian).
func EncodeFloats(v []float64) []byte {
	buf := make([]byte, 0, 4+8*len(v))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
	for _, f := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

// DecodeFloats parses a vector framed by EncodeFloats.
func DecodeFloats(b []byte) ([]float64, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("flnet: float batch truncated header")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// Compare in uint64 so a count near 2^32 cannot wrap 8*n past the body
	// length and trigger a multi-GB allocation below.
	if uint64(len(b)) != 8*uint64(n) {
		return nil, fmt.Errorf("flnet: float batch length %d, want %d", len(b), 8*uint64(n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}
