package flnet

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// flakySender fails the first n sends, then delegates to an inner transport.
type flakySender struct {
	Transport
	mu       sync.Mutex
	failures int
	attempts int
}

func (f *flakySender) Send(msg Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts++
	if f.attempts <= f.failures {
		return fmt.Errorf("flaky: transient failure %d", f.attempts)
	}
	return f.Transport.Send(msg)
}

func TestRetryTransportRecoversTransientFailures(t *testing.T) {
	inner := NewSimTransport(GigabitEthernet(), "a", "b")
	defer inner.Close()
	flaky := &flakySender{Transport: inner, failures: 2}
	var observed []int
	rt := NewRetryTransport(flaky, RetryPolicy{MaxRetries: 3, Backoff: time.Microsecond, Seed: 1})
	rt.OnRetry = func(msg Message, attempt int, err error) { observed = append(observed, attempt) }
	if err := rt.Send(Message{From: "a", To: "b", Kind: "x"}); err != nil {
		t.Fatalf("retries should absorb two transient failures: %v", err)
	}
	if rt.Retries() != 2 || len(observed) != 2 || observed[0] != 1 || observed[1] != 2 {
		t.Fatalf("retries = %d, observed = %v", rt.Retries(), observed)
	}
	msg, err := inner.Recv("b")
	if err != nil || msg.Kind != "x" {
		t.Fatalf("message not delivered after retries: %+v, %v", msg, err)
	}
}

func TestRetryTransportGivesUp(t *testing.T) {
	inner := NewSimTransport(GigabitEthernet(), "a", "b")
	defer inner.Close()
	flaky := &flakySender{Transport: inner, failures: 100}
	rt := NewRetryTransport(flaky, RetryPolicy{MaxRetries: 2, Backoff: time.Microsecond, Seed: 1})
	err := rt.Send(Message{From: "a", To: "b"})
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("want give-up error after 1+2 attempts, got %v", err)
	}
	if flaky.attempts != 3 {
		t.Fatalf("attempts = %d, want 3", flaky.attempts)
	}
}

func TestRetryPolicyBackoffCappedAndJittered(t *testing.T) {
	p := RetryPolicy{Backoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	for attempt := 0; attempt < 40; attempt++ {
		for _, jitter := range []float64{0, 0.5, 0.999} {
			d := p.delay(attempt, jitter)
			// jitter factor is in [0.5, 1.5); the cap bounds the base.
			if d < 0 || d >= time.Duration(1.5*float64(40*time.Millisecond)) {
				t.Fatalf("delay(%d, %v) = %v out of range", attempt, jitter, d)
			}
		}
	}
	if (RetryPolicy{}).delay(3, 0.5) != 0 {
		t.Fatal("zero backoff must not sleep")
	}
	// Exponential growth before the cap: attempt 1 doubles attempt 0.
	d0 := p.delay(0, 0.5)
	d1 := p.delay(1, 0.5)
	if d1 != 2*d0 {
		t.Fatalf("backoff not exponential: %v then %v", d0, d1)
	}
}

func TestRetryTransportPassesThroughRecv(t *testing.T) {
	inner := NewSimTransport(GigabitEthernet(), "a", "b")
	rt := NewRetryTransport(inner, RetryPolicy{MaxRetries: 1, Seed: 9})
	if err := rt.Send(Message{From: "a", To: "b", Kind: "k"}); err != nil {
		t.Fatal(err)
	}
	if msg, err := rt.Recv("b"); err != nil || msg.Kind != "k" {
		t.Fatalf("Recv = %+v, %v", msg, err)
	}
	if _, err := rt.RecvTimeout("b", 10*time.Millisecond); !IsTimeout(err) {
		t.Fatalf("want timeout, got %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err == nil {
		t.Fatal("double close should propagate")
	}
}

// TestRetryPolicyDelayNeverNegative: a huge Backoff with MaxBackoff unset
// used to wrap 32×Backoff negative and hand time.Sleep a negative delay
// (an instant retry storm). Every (attempt, jitter) combination must now
// saturate to a non-negative delay.
func TestRetryPolicyDelayNeverNegative(t *testing.T) {
	huge := []time.Duration{
		math.MaxInt64 / 4,
		math.MaxInt64/32 + 1, // the exact wrap point of the default cap
		math.MaxInt64,
	}
	for _, backoff := range huge {
		p := RetryPolicy{MaxRetries: 5, Backoff: backoff}
		for attempt := 0; attempt <= 35; attempt++ {
			for _, jitter := range []float64{0, 0.25, 0.5, 0.999999} {
				if d := p.delay(attempt, jitter); d < 0 {
					t.Fatalf("backoff=%d attempt=%d jitter=%v: negative delay %v",
						backoff, attempt, jitter, d)
				}
			}
		}
	}
	// An explicit MaxBackoff keeps its capping role.
	p := RetryPolicy{MaxRetries: 5, Backoff: math.MaxInt64 / 4, MaxBackoff: time.Second}
	if d := p.delay(10, 0.999999); d < 0 || d > 2*time.Second {
		t.Fatalf("capped delay %v outside [0, 2s]", d)
	}
}
