package flnet

import (
	"encoding/binary"
	"testing"
)

func TestGroupAggRoundtrip(t *testing.T) {
	sizes := []int{3, 2, 4}
	blobs := [][]byte{{1, 2, 3}, {}, {9, 8}}
	frame, err := EncodeGroupAgg(sizes, blobs)
	if err != nil {
		t.Fatal(err)
	}
	gotSizes, gotBlobs, err := DecodeGroupAgg(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSizes) != len(sizes) || len(gotBlobs) != len(blobs) {
		t.Fatalf("decoded %d/%d groups, want %d", len(gotSizes), len(gotBlobs), len(sizes))
	}
	for g := range sizes {
		if gotSizes[g] != sizes[g] {
			t.Errorf("group %d size = %d, want %d", g, gotSizes[g], sizes[g])
		}
		if string(gotBlobs[g]) != string(blobs[g]) {
			t.Errorf("group %d blob diverged", g)
		}
	}
	// Decoded blobs must be copies: mutating the frame must not alias them.
	for i := range frame {
		frame[i] = 0xFF
	}
	if string(gotBlobs[0]) != "\x01\x02\x03" {
		t.Error("decoded blob aliases the frame buffer")
	}
}

func TestEncodeGroupAggRejects(t *testing.T) {
	if _, err := EncodeGroupAgg(nil, nil); err == nil {
		t.Error("empty frame should fail")
	}
	if _, err := EncodeGroupAgg([]int{1, 2}, [][]byte{{1}}); err == nil {
		t.Error("size/blob count mismatch should fail")
	}
	if _, err := EncodeGroupAgg([]int{0}, [][]byte{{1}}); err == nil {
		t.Error("zero-contributor group should fail")
	}
	big := make([]int, MaxAggGroups+1)
	for i := range big {
		big[i] = 1
	}
	if _, err := EncodeGroupAgg(big, make([][]byte, len(big))); err == nil {
		t.Error("over-bound group count should fail")
	}
}

func TestDecodeGroupAggRejectsMalformed(t *testing.T) {
	good, err := EncodeGroupAgg([]int{2, 1}, [][]byte{{1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated header":    good[:3],
		"truncated directory": good[:10],
		"trailing bytes":      append(append([]byte(nil), good...), 0),
	}
	zero := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(zero, 0)
	cases["zero groups"] = zero

	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge, MaxAggGroups+1)
	cases["over-bound group count"] = huge

	zsize := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(zsize[4:], 0)
	cases["zero contributors"] = zsize

	overlen := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(overlen[8:], 1<<30)
	cases["oversized blob length"] = overlen

	for name, frame := range cases {
		if _, _, err := DecodeGroupAgg(frame); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
}
