package flnet

import (
	"bytes"
	"fmt"
)

// ChunkReject classifies why a Reassembler refused a chunk.
type ChunkReject string

// The reject reasons, from benign to fatal.
const (
	// RejectDuplicate: the same index arrived again with identical bytes — a
	// retransmission or transport duplication. Idempotent to ignore.
	RejectDuplicate ChunkReject = "duplicate"
	// RejectConflict: the same index arrived again with *different* bytes.
	// Something rewrote the chunk in flight; accepting either copy silently
	// would be corruption, so the upload is poisoned.
	RejectConflict ChunkReject = "conflict"
	// RejectRange: the index is at or beyond the declared total.
	RejectRange ChunkReject = "range"
	// RejectTotal: the declared total changed mid-upload.
	RejectTotal ChunkReject = "total-mismatch"
	// RejectOversize: the declared total exceeds MaxChunkTotal. The total is
	// attacker-controlled wire input; without a cap it sizes allocations.
	RejectOversize ChunkReject = "oversize"
	// RejectReleased: the chunk arrived after the reassembler released its
	// buffers (on completion or at the late-arrival cutoff). The upload is
	// over; late chunks are counted by the caller, never buffered again.
	RejectReleased ChunkReject = "released"
)

// MaxChunkTotal bounds the declared chunk count of one logical payload. The
// declared total arrives from the (untrusted) wire and drives the assembly
// allocation, so it is capped far above any real upload but far below
// anything that could exhaust memory.
const MaxChunkTotal = 1 << 20

// ChunkError is the typed rejection of one chunk. Callers branch on
// Ignorable: a duplicate is counted and dropped, everything else fails the
// sender's upload rather than silently overwriting received state.
type ChunkError struct {
	Index  uint32
	Total  uint32
	Reject ChunkReject
}

// Error implements error.
func (e *ChunkError) Error() string {
	return fmt.Sprintf("flnet: chunk %d/%d rejected (%s)", e.Index, e.Total, e.Reject)
}

// Ignorable reports whether the rejected chunk is safe to drop and continue
// (an exact retransmission). Conflicts, range and total violations are not.
func (e *ChunkError) Ignorable() bool { return e.Reject == RejectDuplicate }

// Reassembler collects the chunks of one logical payload in any arrival
// order and hands back the bodies in index order once every piece landed.
// It enforces the invariants a chaotic transport can break: indices stay in
// range, the total never changes, and an index that already landed is only
// accepted again if it is byte-identical (and then rejected as an ignorable
// duplicate — never overwritten).
type Reassembler struct {
	total    int
	bodies   map[int][]byte
	dups     int64
	bytes    int64
	released bool
}

// NewReassembler starts reassembly of a payload declared to span `total`
// chunks.
func NewReassembler(total uint32) (*Reassembler, error) {
	if total == 0 {
		return nil, &ChunkError{Total: total, Reject: RejectTotal}
	}
	if total > MaxChunkTotal {
		return nil, &ChunkError{Total: total, Reject: RejectOversize}
	}
	return &Reassembler{total: int(total), bodies: make(map[int][]byte)}, nil
}

// Total returns the declared chunk count.
func (r *Reassembler) Total() int { return r.total }

// Received returns how many distinct chunks have landed.
func (r *Reassembler) Received() int { return len(r.bodies) }

// Duplicates returns how many ignorable duplicate chunks were rejected.
func (r *Reassembler) Duplicates() int64 { return r.dups }

// Bytes returns how many chunk-body bytes are currently buffered. Callers
// track the sum across in-flight reassemblers as the coordinator's live
// reassembly memory — the high-water reading behind reassembly_bytes_peak.
func (r *Reassembler) Bytes() int64 { return r.bytes }

// Release drops the buffered chunk bodies and returns how many bytes were
// freed. Callers release on completion (the assembled payload has been
// decoded) and at the late-arrival cutoff (the upload will never complete);
// either way the buffers must not outlive their usefulness — coordinator
// memory is the scarce resource at cross-device scale. A released
// reassembler rejects every further chunk with RejectReleased.
func (r *Reassembler) Release() int64 {
	n := r.bytes
	r.bodies = nil
	r.bytes = 0
	r.released = true
	return n
}

// Done reports whether every chunk has landed.
func (r *Reassembler) Done() bool { return len(r.bodies) == r.total }

// Accept folds one chunk in. It returns true when this chunk completed the
// payload. Rejections are typed *ChunkError values; only Ignorable ones
// leave the reassembler usable for further chunks.
func (r *Reassembler) Accept(index, total uint32, body []byte) (bool, error) {
	if r.released {
		return false, &ChunkError{Index: index, Total: total, Reject: RejectReleased}
	}
	if total > MaxChunkTotal {
		return false, &ChunkError{Index: index, Total: total, Reject: RejectOversize}
	}
	if total == 0 || int(total) != r.total {
		return false, &ChunkError{Index: index, Total: total, Reject: RejectTotal}
	}
	if int(index) >= r.total {
		return false, &ChunkError{Index: index, Total: total, Reject: RejectRange}
	}
	if prev, ok := r.bodies[int(index)]; ok {
		if bytes.Equal(prev, body) {
			r.dups++
			return false, &ChunkError{Index: index, Total: total, Reject: RejectDuplicate}
		}
		return false, &ChunkError{Index: index, Total: total, Reject: RejectConflict}
	}
	r.bodies[int(index)] = body
	r.bytes += int64(len(body))
	return r.Done(), nil
}

// Assemble returns the chunk bodies in index order. It fails while chunks
// are still missing.
func (r *Reassembler) Assemble() ([][]byte, error) {
	if !r.Done() {
		return nil, fmt.Errorf("flnet: assemble with %d/%d chunks received", len(r.bodies), r.total)
	}
	out := make([][]byte, r.total)
	for i := 0; i < r.total; i++ {
		out[i] = r.bodies[i]
	}
	return out, nil
}
