// Package quant implements FLBooster's Encoding-Quantization layer (§IV-B).
//
// Homomorphic encryption operates on unsigned integers, so signed gradients
// must be encoded first. Existing FL systems encrypt the significand and
// ship the exponent in plaintext, leaking the magnitude interval; FLBooster
// instead linearly translates a bounded gradient m ∈ [−α, α] to
// e = m + α (Eq. 6), amplifies it to r bits q = e·(2^r − 1) (Eq. 7), and
// reserves b = ⌈log₂ p⌉ zero "overflow bits" above the value (Eq. 8) so the
// homomorphic sum of p participants cannot spill into the neighbouring slot.
//
// Eq. 7 as printed assumes e ∈ [0, 1], i.e. α = ½; this implementation
// normalizes by the interval width (q = e/(2α)·(2^r − 1)), which reduces to
// the paper's formula at α = ½ and keeps every α usable.
package quant

import "fmt"

// Quantizer converts bounded floats to fixed-width unsigned integers and
// back. The zero value is not usable; construct with New.
type Quantizer struct {
	alpha        float64 // gradient bound: inputs live in [−α, α]
	rBits        uint    // quantization bits per value
	participants int     // p, the number of parties whose values are summed
	bBits        uint    // overflow headroom ⌈log₂ p⌉
	maxQ         uint64  // 2^r − 1
}

// New builds a quantizer for gradients bounded by alpha, quantized to rBits,
// with headroom for summing values from `participants` parties.
func New(alpha float64, rBits uint, participants int) (*Quantizer, error) {
	switch {
	case alpha <= 0:
		return nil, fmt.Errorf("quant: gradient bound must be positive, got %v", alpha)
	case rBits < 2 || rBits > 52:
		// Above 52 bits a float64 cannot address individual steps.
		return nil, fmt.Errorf("quant: r must be in [2, 52], got %d", rBits)
	case participants < 1:
		return nil, fmt.Errorf("quant: need at least one participant, got %d", participants)
	}
	b := ceilLog2(participants)
	if b == 0 {
		b = 1 // a single party still gets one guard bit, as Eq. 8 draws it
	}
	if rBits+b > 63 {
		return nil, fmt.Errorf("quant: r+b = %d exceeds 63 bits", rBits+b)
	}
	return &Quantizer{
		alpha:        alpha,
		rBits:        rBits,
		participants: participants,
		bBits:        b,
		maxQ:         1<<rBits - 1,
	}, nil
}

// MustNew is New for known-good parameters.
func MustNew(alpha float64, rBits uint, participants int) *Quantizer {
	q, err := New(alpha, rBits, participants)
	if err != nil {
		panic(err)
	}
	return q
}

func ceilLog2(n int) uint {
	var b uint
	v := 1
	for v < n {
		v <<= 1
		b++
	}
	return b
}

// Alpha returns the gradient bound α.
func (q *Quantizer) Alpha() float64 { return q.alpha }

// RBits returns r, the data bits per value.
func (q *Quantizer) RBits() uint { return q.rBits }

// BBits returns b, the overflow-guard bits per value.
func (q *Quantizer) BBits() uint { return q.bBits }

// SlotBits returns r+b, the total width of one packed slot (Eq. 8).
func (q *Quantizer) SlotBits() uint { return q.rBits + q.bBits }

// Participants returns p.
func (q *Quantizer) Participants() int { return q.participants }

// Step returns the quantization step 2α/(2^r − 1); the worst-case error of
// one value is Step()/2.
func (q *Quantizer) Step() float64 { return 2 * q.alpha / float64(q.maxQ) }

// MaxError returns the worst-case absolute error introduced by quantizing a
// single in-range value.
func (q *Quantizer) MaxError() float64 { return q.Step() / 2 }

// Quantize maps m ∈ [−α, α] to an unsigned integer in [0, 2^r−1]. Values
// outside the bound are clamped — the behaviour gradient clipping gives FL
// training — never wrapped.
func (q *Quantizer) Quantize(m float64) uint64 {
	if m <= -q.alpha {
		return 0
	}
	if m >= q.alpha {
		return q.maxQ
	}
	e := m + q.alpha                                 // Eq. 6
	v := uint64(e/(2*q.alpha)*float64(q.maxQ) + 0.5) // Eq. 7, normalized
	if v > q.maxQ {
		v = q.maxQ
	}
	return v
}

// Dequantize inverts Quantize for a single value.
func (q *Quantizer) Dequantize(v uint64) float64 {
	return float64(v)/float64(q.maxQ)*(2*q.alpha) - q.alpha
}

// DequantizeSum decodes the homomorphic sum of `count` quantized values:
// Σqᵢ = Σ(mᵢ+α)/(2α)·(2^r−1), so Σmᵢ = sum/(2^r−1)·2α − count·α.
// count must not exceed the participant capacity declared at construction.
func (q *Quantizer) DequantizeSum(sum uint64, count int) (float64, error) {
	if count < 1 || count > q.participants {
		return 0, fmt.Errorf("quant: sum of %d values exceeds declared capacity %d",
			count, q.participants)
	}
	if max := uint64(count) * q.maxQ; sum > max {
		return 0, fmt.Errorf("quant: aggregated value %d exceeds maximum %d — slot corruption", sum, max)
	}
	return float64(sum)/float64(q.maxQ)*(2*q.alpha) - float64(count)*q.alpha, nil
}

// QuantizeVec quantizes a gradient vector.
func (q *Quantizer) QuantizeVec(ms []float64) []uint64 {
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = q.Quantize(m)
	}
	return out
}

// DequantizeSumVec decodes a vector of aggregated sums.
func (q *Quantizer) DequantizeSumVec(sums []uint64, count int) ([]float64, error) {
	out := make([]float64, len(sums))
	for i, s := range sums {
		v, err := q.DequantizeSum(s, count)
		if err != nil {
			return nil, fmt.Errorf("quant: element %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
