package quant

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		alpha float64
		r     uint
		p     int
	}{
		{0, 32, 4}, {-1, 32, 4}, {1, 1, 4}, {1, 60, 4}, {1, 32, 0}, {1, 62, 4},
	}
	for _, c := range cases {
		if _, err := New(c.alpha, c.r, c.p); err == nil {
			t.Errorf("New(%v, %d, %d) should fail", c.alpha, c.r, c.p)
		}
	}
	if _, err := New(1, 30, 64); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestOverflowBits(t *testing.T) {
	cases := []struct {
		p    int
		want uint
	}{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {64, 6}, {65, 7}, {1024, 10}}
	for _, c := range cases {
		q := MustNew(1, 20, c.p)
		if q.BBits() != c.want {
			t.Errorf("BBits(p=%d) = %d, want %d", c.p, q.BBits(), c.want)
		}
		if q.SlotBits() != 20+c.want {
			t.Errorf("SlotBits(p=%d) = %d", c.p, q.SlotBits())
		}
	}
}

func TestQuantizeEndpoints(t *testing.T) {
	q := MustNew(1, 16, 4)
	if q.Quantize(-1) != 0 {
		t.Errorf("Quantize(-α) = %d, want 0", q.Quantize(-1))
	}
	if got := q.Quantize(1); got != 1<<16-1 {
		t.Errorf("Quantize(α) = %d, want %d", got, 1<<16-1)
	}
	if got := q.Quantize(0); got != 1<<15 && got != 1<<15-1 {
		t.Errorf("Quantize(0) = %d, want ~%d", got, 1<<15)
	}
	// Clamping outside the bound.
	if q.Quantize(-5) != 0 || q.Quantize(5) != 1<<16-1 {
		t.Error("out-of-range values should clamp")
	}
}

func TestRoundTripErrorBound(t *testing.T) {
	q := MustNew(0.5, 24, 8)
	bound := q.MaxError()
	vals := []float64{-0.5, -0.499, -0.25, -0.1, 0, 1e-6, 0.123456, 0.25, 0.4999, 0.5}
	for _, m := range vals {
		got := q.Dequantize(q.Quantize(m))
		if d := got - m; d > bound+1e-12 || d < -bound-1e-12 {
			t.Errorf("round trip error %v exceeds bound %v for %v", d, bound, m)
		}
	}
}

func TestPropertyRoundTripWithinStep(t *testing.T) {
	q := MustNew(1, 32, 16)
	f := func(raw int32) bool {
		m := float64(raw) / float64(1<<31) // in (−1, 1)
		got := q.Dequantize(q.Quantize(m))
		d := got - m
		return d <= q.MaxError()+1e-12 && d >= -q.MaxError()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDequantizeSum(t *testing.T) {
	q := MustNew(1, 30, 4)
	// Simulate 4 participants quantizing values; homomorphic sum = Σ qᵢ.
	ms := []float64{0.25, -0.75, 0.5, -0.125}
	var sum uint64
	var want float64
	for _, m := range ms {
		sum += q.Quantize(m)
		want += m
	}
	got, err := q.DequantizeSum(sum, len(ms))
	if err != nil {
		t.Fatal(err)
	}
	bound := 4 * q.MaxError()
	if d := got - want; d > bound || d < -bound {
		t.Fatalf("aggregated decode error %v exceeds %v", d, bound)
	}
}

func TestDequantizeSumErrors(t *testing.T) {
	q := MustNew(1, 16, 2)
	if _, err := q.DequantizeSum(1, 0); err == nil {
		t.Error("count 0 should fail")
	}
	if _, err := q.DequantizeSum(1, 3); err == nil {
		t.Error("count above declared capacity should fail")
	}
	if _, err := q.DequantizeSum(3*(1<<16-1), 2); err == nil {
		t.Error("sum above count*maxQ should be flagged as corruption")
	}
}

func TestVecHelpers(t *testing.T) {
	q := MustNew(1, 20, 2)
	ms := []float64{-1, -0.5, 0, 0.5, 1}
	vs := q.QuantizeVec(ms)
	if len(vs) != len(ms) {
		t.Fatal("length mismatch")
	}
	// Sum of two identical client vectors.
	sums := make([]uint64, len(vs))
	for i := range vs {
		sums[i] = 2 * vs[i]
	}
	got, err := q.DequantizeSumVec(sums, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ms {
		want := 2 * ms[i]
		if d := got[i] - want; d > 2*q.MaxError() || d < -2*q.MaxError() {
			t.Errorf("element %d error %v", i, d)
		}
	}
	if _, err := q.DequantizeSumVec(sums, 5); err == nil {
		t.Error("over-capacity vector decode should fail")
	}
}

func TestStepShrinksWithRBits(t *testing.T) {
	prev := MustNew(1, 8, 2).Step()
	for _, r := range []uint{16, 24, 32, 40} {
		s := MustNew(1, r, 2).Step()
		if s >= prev {
			t.Fatalf("step did not shrink at r=%d", r)
		}
		prev = s
	}
}

func TestNoExponentLeakage(t *testing.T) {
	// The encoding is a single unsigned integer — no (significand, exponent)
	// split. Two values with very different magnitudes must produce outputs
	// in the same integer domain, indistinguishable in format.
	q := MustNew(1, 32, 2)
	small, large := q.Quantize(1e-9), q.Quantize(0.9)
	if small>>uint(q.RBits()) != 0 || large>>uint(q.RBits()) != 0 {
		t.Fatal("quantized values must fit in r bits with zero guard bits")
	}
}

// TestDequantizeSumDeclaredCapacityBoundary pins the extreme legal
// aggregate: count equal to the declared participant capacity with every
// party clipped at +α (sum = count·maxQ). That decodes to exactly count·α;
// one past it in either dimension is rejected.
func TestDequantizeSumDeclaredCapacityBoundary(t *testing.T) {
	q := MustNew(1, 8, 4)
	maxQ := uint64(1<<8 - 1)
	got, err := q.DequantizeSum(4*maxQ, 4)
	if err != nil {
		t.Fatalf("boundary aggregate rejected: %v", err)
	}
	if got != 4 { // 4·α with α = 1
		t.Fatalf("boundary decode = %v, want 4", got)
	}
	if _, err := q.DequantizeSum(4*maxQ+1, 4); err == nil {
		t.Error("sum one past count*maxQ should be flagged as corruption")
	}
	if _, err := q.DequantizeSum(4*maxQ, 5); err == nil {
		t.Error("count above declared capacity should fail")
	}
	// The boundary also holds at count 1: a single clipped party.
	if got, err := q.DequantizeSum(maxQ, 1); err != nil || got != 1 {
		t.Fatalf("single-party boundary = (%v, %v), want (1, nil)", got, err)
	}
}
