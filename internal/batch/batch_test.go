package batch

import (
	"testing"

	"flbooster/internal/mpint"
	"flbooster/internal/paillier"
	"flbooster/internal/quant"
)

func testPacker(t testing.TB, rBits uint, parties, keyBits int) *Packer {
	t.Helper()
	return MustNew(quant.MustNew(1, rBits, parties), keyBits)
}

func TestSlotsMatchEq9(t *testing.T) {
	// r+b = 32 ⇒ ~32 slots at 1024-bit keys, ~64 at 2048, ~128 at 4096 — the
	// headline §IV-C numbers, minus the one slot the aggregation-overflow
	// safety bound costs when r+b divides k exactly (see New).
	q := quant.MustNew(1, 30, 4) // r=30, b=2 ⇒ 32-bit slots
	for _, c := range []struct{ key, want int }{{1024, 31}, {2048, 63}, {4096, 127}} {
		p := MustNew(q, c.key)
		if p.Slots() != c.want {
			t.Errorf("Slots(k=%d) = %d, want %d", c.key, p.Slots(), c.want)
		}
	}
	// With a non-divisor slot width, the paper formula is already safe.
	q2 := quant.MustNew(1, 28, 4) // 30-bit slots
	if p := MustNew(q2, 1024); p.Slots() != 1024/30 {
		t.Errorf("non-divisor Slots = %d, want %d", p.Slots(), 1024/30)
	}
}

func TestAggregatedPackingNeverExceedsModulusBits(t *testing.T) {
	// The invariant behind the safety bound: a p-fold aggregated packing
	// must stay below 2^(k−1) ≤ n for every slot geometry.
	for _, r := range []uint{14, 22, 30} {
		for _, key := range []int{128, 256, 512, 1024} {
			q := quant.MustNew(1, r, 4)
			p, err := New(q, key)
			if err != nil {
				continue
			}
			maxVal := uint64(1)<<r - 1
			vals := make([]uint64, p.Slots())
			for i := range vals {
				vals[i] = maxVal
			}
			packed, err := p.Pack(vals)
			if err != nil {
				t.Fatal(err)
			}
			// Worst case: four parties at the clamp value.
			agg := packed[0]
			for i := 0; i < 3; i++ {
				agg = mpint.Add(agg, packed[0])
			}
			if agg.BitLen() > key-1 {
				t.Fatalf("r=%d k=%d: aggregate needs %d bits, modulus only guarantees %d",
					r, key, agg.BitLen(), key-1)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 1024); err == nil {
		t.Error("nil quantizer should fail")
	}
	if _, err := New(quant.MustNew(1, 40, 4), 16); err == nil {
		t.Error("key too small for one slot should fail")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	p := testPacker(t, 30, 4, 1024)
	r := mpint.NewRNG(1)
	for _, n := range []int{1, 31, 32, 33, 64, 100, 1000} {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = r.Uint64() & (1<<30 - 1)
		}
		packed, err := p.Pack(vals)
		if err != nil {
			t.Fatal(err)
		}
		if len(packed) != p.NumPlaintexts(n) {
			t.Fatalf("n=%d: %d plaintexts, want %d", n, len(packed), p.NumPlaintexts(n))
		}
		got, err := p.Unpack(packed, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("n=%d: slot %d = %d, want %d", n, i, got[i], vals[i])
			}
		}
	}
}

func TestPackRejectsOversizedValue(t *testing.T) {
	p := testPacker(t, 16, 2, 256)
	if _, err := p.Pack([]uint64{1 << 16}); err == nil {
		t.Fatal("value wider than r bits should be rejected")
	}
}

func TestUnpackValidation(t *testing.T) {
	p := testPacker(t, 16, 2, 256)
	packed, _ := p.Pack([]uint64{1, 2, 3})
	if _, err := p.Unpack(packed, -1); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := p.Unpack(packed, 1000); err == nil {
		t.Error("count/plaintext mismatch should fail")
	}
}

func TestPackedValueBelowModulusBound(t *testing.T) {
	// The top slot's guard bits are the packed integer's MSBs, so every
	// packed plaintext must have strictly fewer than keyBits bits.
	p := testPacker(t, 31, 2, 1024) // 32-bit slots, 31 slots after the bound
	vals := make([]uint64, p.Slots())
	for i := range vals {
		vals[i] = 1<<31 - 1 // max slot value
	}
	packed, err := p.Pack(vals)
	if err != nil {
		t.Fatal(err)
	}
	if got := packed[0].BitLen(); got >= 1024 {
		t.Fatalf("packed plaintext has %d bits, must stay under the key size", got)
	}
}

func TestCompressionRatioFormulas(t *testing.T) {
	p := testPacker(t, 30, 4, 1024) // 31 slots
	if got := p.CompressionRatio(31 * 100); got != 31 {
		t.Errorf("CompressionRatio = %v, want 31", got)
	}
	if got := p.CompressionRatio(1); got != 1 {
		t.Errorf("CompressionRatio(1) = %v, want 1", got)
	}
	if got := p.CompressionRatio(0); got != 1 {
		t.Errorf("CompressionRatio(0) = %v", got)
	}
	// PSU ≤ 1 always; near-1 at full plaintexts (992 of 1024 bits carried).
	if got := p.PlaintextSpaceUtilization(31 * 100); got < 0.9 || got > 1 {
		t.Errorf("PSU at full packing = %v", got)
	}
	if got := p.PlaintextSpaceUtilization(1); got <= 0 || got > 1 {
		t.Errorf("PSU(1) = %v out of range", got)
	}
}

func TestHomomorphicAggregationThroughPacking(t *testing.T) {
	// The core §IV-C claim: pack, encrypt, homomorphically add p ciphertexts,
	// decrypt, unpack — slot sums are exact, guard bits absorb the carries.
	const parties = 4
	q := quant.MustNew(1, 14, parties)
	sk, err := paillier.GenerateKey(mpint.NewRNG(77), 128)
	if err != nil {
		t.Fatal(err)
	}
	p := MustNew(q, sk.KeyBits())
	r := mpint.NewRNG(2)
	rng := mpint.NewRNG(3)

	const n = 20
	wantSums := make([]uint64, n)
	var aggregate []paillier.Ciphertext
	for party := 0; party < parties; party++ {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = r.Uint64() & (1<<14 - 1)
			wantSums[i] += vals[i]
		}
		packed, err := p.Pack(vals)
		if err != nil {
			t.Fatal(err)
		}
		cts := make([]paillier.Ciphertext, len(packed))
		for i, pt := range packed {
			cts[i], err = sk.Encrypt(pt, rng)
			if err != nil {
				t.Fatal(err)
			}
		}
		if aggregate == nil {
			aggregate = cts
		} else {
			for i := range cts {
				aggregate[i] = sk.Add(aggregate[i], cts[i])
			}
		}
	}
	plain := make([]mpint.Nat, len(aggregate))
	for i, ct := range aggregate {
		m, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		plain[i] = m
	}
	got, err := p.Unpack(plain, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantSums {
		if got[i] != wantSums[i] {
			t.Fatalf("slot %d: aggregated %d, want %d", i, got[i], wantSums[i])
		}
	}
}

func TestEncodeDecodeGradients(t *testing.T) {
	const parties = 2
	q := quant.MustNew(0.5, 20, parties)
	p := MustNew(q, 512)
	grads := []float64{-0.5, -0.25, 0, 0.125, 0.49, 0.0001, -0.3}

	packed, err := p.EncodeGradients(grads)
	if err != nil {
		t.Fatal(err)
	}
	// Two parties send identical gradients; sum plaintexts directly (the
	// crypto path is covered above).
	sums := make([]mpint.Nat, len(packed))
	for i := range packed {
		sums[i] = mpint.Add(packed[i], packed[i])
	}
	got, err := p.DecodeAggregated(sums, len(grads), parties)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range grads {
		want := 2 * g
		bound := 2 * q.MaxError()
		if d := got[i] - want; d > bound || d < -bound {
			t.Fatalf("gradient %d decoded to %v, want %v ± %v", i, got[i], want, bound)
		}
	}
	if _, err := p.DecodeAggregated(sums, 1000, parties); err == nil {
		t.Fatal("mismatched count should fail")
	}
}

func TestSlotBoundaryBitPatterns(t *testing.T) {
	// Slot widths that do not divide 32 exercise the cross-word OR/extract
	// paths: every slot boundary lands at a different bit offset.
	for _, r := range []uint{7, 13, 17, 23, 29, 37, 45} {
		q := quant.MustNew(1, r, 3) // b=2
		p := MustNew(q, 512)
		n := p.Slots() * 3
		vals := make([]uint64, n)
		rng := mpint.NewRNG(uint64(r))
		for i := range vals {
			vals[i] = rng.Uint64() & (1<<r - 1)
		}
		packed, err := p.Pack(vals)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Unpack(packed, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("r=%d: slot %d = %d, want %d", r, i, got[i], vals[i])
			}
		}
	}
}

func BenchmarkPack1024Values(b *testing.B) {
	p := testPacker(b, 30, 4, 1024)
	vals := make([]uint64, 1024)
	r := mpint.NewRNG(9)
	for i := range vals {
		vals[i] = r.Uint64() & (1<<30 - 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Pack(vals); err != nil {
			b.Fatal(err)
		}
	}
}
