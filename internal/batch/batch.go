// Package batch implements FLBooster's Batch Compression layer (§IV-C):
// packing n = ⌊k/(r+b)⌋ quantized gradients into a single k-bit plaintext
// (Eq. 9) before encryption, so one HE operation and one ciphertext carry n
// values. Because each slot keeps b zero guard bits above its r data bits,
// homomorphic addition of up to p = 2^b ciphertexts cannot carry across slot
// boundaries, and — since the top slot's guard bits are the integer's most
// significant bits — a packed plaintext is always < 2^(k−b) < n, so it never
// exceeds the Paillier modulus.
//
// The compression ratio (Eq. 11) and plaintext-space utilization (Eq. 12)
// formulas are exposed for the Fig. 7 experiment.
package batch

import (
	"fmt"

	"flbooster/internal/mpint"
	"flbooster/internal/quant"
)

// Packer packs quantized values into multi-precision plaintexts.
type Packer struct {
	q       *quant.Quantizer
	keyBits int
	slots   int // values per plaintext: ⌊k/(r+b)⌋
}

// New builds a packer for a key of keyBits bits over the given quantizer.
func New(q *quant.Quantizer, keyBits int) (*Packer, error) {
	if q == nil {
		return nil, fmt.Errorf("batch: nil quantizer")
	}
	slotBits := int(q.SlotBits())
	slots := keyBits / slotBits
	// Safety bound the paper's n = ⌊k/(r+b)⌋ formula glosses: an aggregated
	// plaintext is < 2^(slots·(r+b)), and the Paillier modulus only
	// guarantees n ≥ 2^(k−1). When r+b divides k exactly, a full packing
	// could wrap mod n after homomorphic addition, silently corrupting every
	// slot — so keep slots·(r+b) ≤ k−1 (one slot fewer in the exact-divisor
	// case, e.g. 31 instead of 32 at k=1024, r+b=32).
	if slots*slotBits > keyBits-1 {
		slots--
	}
	if slots < 1 {
		return nil, fmt.Errorf("batch: key of %d bits cannot hold one %d-bit slot", keyBits, slotBits)
	}
	return &Packer{q: q, keyBits: keyBits, slots: slots}, nil
}

// MustNew is New for known-good parameters.
func MustNew(q *quant.Quantizer, keyBits int) *Packer {
	p, err := New(q, keyBits)
	if err != nil {
		panic(err)
	}
	return p
}

// Slots returns n, the number of values per plaintext.
func (p *Packer) Slots() int { return p.slots }

// Quantizer returns the underlying quantizer.
func (p *Packer) Quantizer() *quant.Quantizer { return p.q }

// NumPlaintexts returns how many plaintexts carry n values (⌈n/slots⌉).
func (p *Packer) NumPlaintexts(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.slots - 1) / p.slots
}

// CompressionRatio is Eq. 11/13: the factor by which batching reduces both
// ciphertext count and HE-operation count for a payload of n values.
func (p *Packer) CompressionRatio(n int) float64 {
	if n <= 0 {
		return 1
	}
	return float64(n) / float64(p.NumPlaintexts(n))
}

// PlaintextSpaceUtilization is Eq. 12: the fraction of the key's plaintext
// bits carrying data for a payload of n values.
func (p *Packer) PlaintextSpaceUtilization(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * float64(p.q.SlotBits()) / (float64(p.keyBits) * float64(p.NumPlaintexts(n)))
}

// Pack lays out quantized values into plaintexts, slot 0 at the least
// significant position (Eq. 9 read right-to-left). Values must fit in r
// bits; a violation is a programming error upstream and is reported.
func (p *Packer) Pack(vals []uint64) ([]mpint.Nat, error) {
	maxV := uint64(1)<<p.q.RBits() - 1
	slotBits := uint(p.q.SlotBits())
	out := make([]mpint.Nat, 0, p.NumPlaintexts(len(vals)))
	for base := 0; base < len(vals); base += p.slots {
		end := base + p.slots
		if end > len(vals) {
			end = len(vals)
		}
		// Assemble limb-by-limb: accumulate 32-bit words from slot bits.
		words := make([]mpint.Word, (p.slots*int(slotBits)+31)/32)
		for s := base; s < end; s++ {
			v := vals[s]
			if v > maxV {
				return nil, fmt.Errorf("batch: value %d at index %d exceeds %d-bit slot", v, s, p.q.RBits())
			}
			bitPos := uint(s-base) * slotBits
			orBits(words, bitPos, v)
		}
		out = append(out, mpint.FromWords(words))
	}
	return out, nil
}

// orBits ORs the low 64 bits of v into the word array starting at bitPos.
func orBits(words []mpint.Word, bitPos uint, v uint64) {
	w, off := bitPos/32, bitPos%32
	words[w] |= mpint.Word(v << off)
	if off != 0 || v>>32 != 0 {
		rest := v >> (32 - off)
		if off == 0 {
			rest = v >> 32
		}
		if rest != 0 && int(w+1) < len(words) {
			words[w+1] |= mpint.Word(rest)
			if hi := rest >> 32; hi != 0 && int(w+2) < len(words) {
				words[w+2] |= mpint.Word(hi)
			}
		}
	}
}

// Unpack extracts `count` aggregated slot values from packed plaintexts.
// After homomorphic aggregation each slot holds a sum that may occupy up to
// r+b bits; the full slot is returned so quant.DequantizeSum sees the carry.
func (p *Packer) Unpack(packed []mpint.Nat, count int) ([]uint64, error) {
	if count < 0 {
		return nil, fmt.Errorf("batch: negative count %d", count)
	}
	if need := p.NumPlaintexts(count); need != len(packed) {
		return nil, fmt.Errorf("batch: %d values need %d plaintexts, got %d", count, need, len(packed))
	}
	slotBits := uint(p.q.SlotBits())
	mask := uint64(1)<<slotBits - 1
	out := make([]uint64, 0, count)
	for pi, pt := range packed {
		words := pt.Words((p.slots*int(slotBits) + 31) / 32)
		slotsHere := p.slots
		if remaining := count - pi*p.slots; remaining < slotsHere {
			slotsHere = remaining
		}
		for s := 0; s < slotsHere; s++ {
			out = append(out, extractBits(words, uint(s)*slotBits, slotBits)&mask)
		}
	}
	return out, nil
}

// extractBits reads `width` (≤ 64) bits starting at bitPos.
func extractBits(words []mpint.Word, bitPos, width uint) uint64 {
	w, off := bitPos/32, bitPos%32
	var v uint64
	if int(w) < len(words) {
		v = uint64(words[w]) >> off
	}
	for shift := 32 - off; shift < width; shift += 32 {
		w++
		if int(w) >= len(words) {
			break
		}
		v |= uint64(words[w]) << shift
	}
	return v & (uint64(1)<<width - 1)
}

// EncodeGradients is the full client-side path: quantize a float gradient
// vector and pack it into plaintexts ready for encryption.
func (p *Packer) EncodeGradients(grads []float64) ([]mpint.Nat, error) {
	return p.Pack(p.q.QuantizeVec(grads))
}

// DecodeAggregated is the full server→client path after decryption: unpack
// `count` slots and dequantize sums of `parties` contributions.
func (p *Packer) DecodeAggregated(packed []mpint.Nat, count, parties int) ([]float64, error) {
	sums, err := p.Unpack(packed, count)
	if err != nil {
		return nil, err
	}
	return p.q.DequantizeSumVec(sums, parties)
}
