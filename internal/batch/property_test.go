package batch

import (
	"testing"
	"testing/quick"

	"flbooster/internal/mpint"
	"flbooster/internal/quant"
)

// TestPropertyPackUnpackIdentity quantifies pack∘unpack = id over random
// value vectors and slot geometries.
func TestPropertyPackUnpackIdentity(t *testing.T) {
	f := func(seed uint32, rBitsRaw uint8, nRaw uint16) bool {
		r := uint(rBitsRaw)%30 + 4 // r ∈ [4, 33]
		q, err := quant.New(1, r, 4)
		if err != nil {
			return true // invalid geometry, skip
		}
		p, err := New(q, 512)
		if err != nil {
			return true
		}
		n := int(nRaw)%200 + 1
		local := mpint.NewRNG(uint64(seed))
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = local.Uint64() & (1<<r - 1)
		}
		packed, err := p.Pack(vals)
		if err != nil {
			return false
		}
		got, err := p.Unpack(packed, n)
		if err != nil {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPackedAdditionIsSlotwise: adding packed plaintexts as integers
// equals slot-wise addition of the values, for any sum that respects the
// guard bits — the algebraic fact batch compression rests on.
func TestPropertyPackedAdditionIsSlotwise(t *testing.T) {
	q := quant.MustNew(1, 12, 8) // b = 3 guard bits: up to 8 addends
	p := MustNew(q, 256)
	rng := mpint.NewRNG(2)
	for trial := 0; trial < 100; trial++ {
		n := int(rng.Uint64()%60) + 1
		addends := int(rng.Uint64()%8) + 1
		sums := make([]uint64, n)
		var accum []mpint.Nat
		for a := 0; a < addends; a++ {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = rng.Uint64() & (1<<12 - 1)
				sums[i] += vals[i]
			}
			packed, err := p.Pack(vals)
			if err != nil {
				t.Fatal(err)
			}
			if accum == nil {
				accum = packed
			} else {
				for i := range accum {
					accum[i] = mpint.Add(accum[i], packed[i])
				}
			}
		}
		got, err := p.Unpack(accum, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sums {
			if got[i] != sums[i] {
				t.Fatalf("trial %d: slot %d = %d, want %d (addends %d)", trial, i, got[i], sums[i], addends)
			}
		}
	}
}
