package gpu

import (
	"fmt"
	"time"

	"flbooster/internal/obs"
)

// Simulated CUDA streams (§V-B / Fig. 4): the device executes H2D copies,
// kernels, and D2H copies on independent in-order queues, so the PCIe
// transfer of one chunk overlaps the kernel of the previous one. The paper's
// pipelined-processing gain used to be a closed-form estimate over aggregate
// counters; with streams it is *measured*: every chunk of a streamed vector
// op is scheduled onto the three queues with its real modelled durations and
// buffer-recycling dependencies, and the op's overlapped cost is the critical
// path across the queues instead of the sum of the stages.

// Event is the completion of one scheduled stream operation, usable as a
// dependency for operations on other streams (cudaStreamWaitEvent).
type Event struct {
	// At is the simulated completion time, relative to the pipeline origin.
	At time.Duration
}

// Stream is one in-order simulated execution queue with its own clock.
// Operations on the same stream serialize; operations on different streams
// overlap unless ordered through Events.
type Stream struct {
	name  string
	clock time.Duration
}

// NewStream creates an idle stream.
func NewStream(name string) *Stream { return &Stream{name: name} }

// Name returns the stream label.
func (s *Stream) Name() string { return s.name }

// Clock returns the completion time of the stream's last scheduled event.
func (s *Stream) Clock() time.Duration { return s.clock }

// Schedule appends an operation of duration d to the stream: it starts once
// the stream is free AND every dependency event has completed, and its
// completion is returned for downstream ordering.
func (s *Stream) Schedule(d time.Duration, after ...Event) Event {
	start := s.clock
	for _, ev := range after {
		if ev.At > start {
			start = ev.At
		}
	}
	if d < 0 {
		d = 0
	}
	s.clock = start + d
	return Event{At: s.clock}
}

// Pipeline schedules the chunks of one streamed vector op across three
// device streams — H2D copy, compute, D2H copy (the RTX 3090 exposes two
// async copy engines, so input and output transfers overlap each other as
// well as the kernel) — with a bounded number of staging buffers: chunk c's
// upload cannot start until the kernel of chunk c-depth has released its
// buffer (depth 2 = classic double buffering).
//
// A Pipeline is not safe for concurrent use; one streamed op drives it from
// a single goroutine and calls Close when done.
type Pipeline struct {
	dev   *Device
	depth int

	h2d, kern, d2h *Stream
	kernDone       []Event // kernel completions, indexed by chunk, for buffer recycling

	seq     time.Duration // what the scheduled chunks would cost run back-to-back
	chunks  int64
	mark    Stats // Begin() snapshot of the device counters
	marked  bool
	closed  bool
	misuses int64 // Begin/Chunk/End calls after Close, all refused

	rec      *obs.Recorder // device recorder at open time (nil = tracing off)
	recParty string
	recDev   string        // device label at open time, tags every stage span
	origin   time.Duration // device sim clock when the pipeline opened
}

// NewPipeline opens a pipeline of `depth` staging buffers on the device.
// Depths below 2 are raised to 2: one buffer would serialize every stage.
func (d *Device) NewPipeline(depth int) *Pipeline {
	if depth < 2 {
		depth = 2
	}
	rec, party := d.obsRecorder()
	return &Pipeline{
		dev:      d,
		depth:    depth,
		h2d:      NewStream("h2d"),
		kern:     NewStream("compute"),
		d2h:      NewStream("d2h"),
		rec:      rec,
		recParty: party,
		recDev:   d.DeviceLabel(),
		origin:   d.Stats().SimTime(),
	}
}

// Depth returns the staging-buffer count.
func (p *Pipeline) Depth() int { return p.depth }

// Chunks returns how many chunks have been scheduled.
func (p *Pipeline) Chunks() int64 { return p.chunks }

// Span is the pipeline's critical path: the simulated time at which every
// scheduled chunk has fully drained through all three streams.
func (p *Pipeline) Span() time.Duration {
	span := p.h2d.Clock()
	if c := p.kern.Clock(); c > span {
		span = c
	}
	if c := p.d2h.Clock(); c > span {
		span = c
	}
	return span
}

// SeqTime is the sequential cost of the scheduled chunks: the sum of every
// stage duration, i.e. what the same work costs without overlap.
func (p *Pipeline) SeqTime() time.Duration { return p.seq }

// Misuses counts scheduling calls (Begin/Chunk/End) made after Close.
// Post-Close scheduling is refused: the pipeline's span was already charged
// to the device, so mutating the stream clocks afterwards would corrupt the
// accounting. Each refusal is counted here instead.
func (p *Pipeline) Misuses() int64 { return p.misuses }

// StreamClocks returns the three per-stream completion clocks — the
// observability view the trace and metrics layers read.
func (p *Pipeline) StreamClocks() (h2d, compute, d2h time.Duration) {
	return p.h2d.Clock(), p.kern.Clock(), p.d2h.Clock()
}

// Chunk schedules one H2D → kernel → D2H stage triple and returns the
// chunk's incremental contribution to the pipeline's critical path (the
// overlapped cost of this chunk given everything already in flight).
// Scheduling on a closed pipeline is refused (see Misuses).
func (p *Pipeline) Chunk(h2d, kernel, d2h time.Duration) time.Duration {
	if p.closed {
		p.misuses++
		return 0
	}
	before := p.Span()
	var deps []Event
	if n := len(p.kernDone); n >= p.depth {
		// The staging buffer this chunk uploads into is busy until the kernel
		// `depth` chunks back has consumed it.
		deps = append(deps, p.kernDone[n-p.depth])
	}
	up := p.h2d.Schedule(h2d, deps...)
	k := p.kern.Schedule(kernel, up)
	p.kernDone = append(p.kernDone, k)
	dn := p.d2h.Schedule(d2h, k)
	h2d, kernel, d2h = maxDur(h2d, 0), maxDur(kernel, 0), maxDur(d2h, 0)
	if p.rec != nil {
		chunk := fmt.Sprintf("chunk%d", p.chunks)
		p.recordStage(chunk, "pipe.h2d", up.At, h2d)
		p.recordStage(chunk, "pipe.compute", k.At, kernel)
		p.recordStage(chunk, "pipe.d2h", dn.At, d2h)
	}
	p.seq += h2d + kernel + d2h
	p.chunks++
	return p.Span() - before
}

// recordStage emits one scheduled stage as a span on the device timeline:
// `end` is the stage's stream completion, `dur` its clamped duration.
func (p *Pipeline) recordStage(chunk, lane string, end, dur time.Duration) {
	if dur <= 0 {
		return
	}
	p.rec.Record(obs.Span{
		Phase: chunk, Party: p.recParty, Lane: lane, Device: p.recDev,
		Start: p.origin + end - dur, Dur: dur,
	})
}

// Begin snapshots the device counters ahead of one chunk's real execution
// (copies + launches, including any retries or fallback the checked layer
// performs). Pair with End. Begin on a closed pipeline is refused (see
// Misuses).
func (p *Pipeline) Begin() {
	if p.closed {
		p.misuses++
		return
	}
	p.mark = p.dev.Stats()
	p.marked = true
}

// End measures the device work since Begin, splits it into the three stream
// stages, and schedules it as one pipeline chunk. It returns the chunk's
// sequential cost (exactly what the device's Eq. 10 counters accrued) and
// its overlapped incremental cost on the pipeline's critical path. Fault
// time — watchdog windows, retry backoff, degraded host execution — occupies
// the compute stream: a retried chunk keeps its kernel slot busy longer.
func (p *Pipeline) End() (seq, overlapped time.Duration) {
	if p.closed {
		p.misuses++
		return 0, 0
	}
	if !p.marked {
		return 0, 0
	}
	p.marked = false
	now := p.dev.Stats()
	transfer := now.SimTransferTime - p.mark.SimTransferTime
	compute := (now.SimComputeTime - p.mark.SimComputeTime) + (now.SimFaultTime - p.mark.SimFaultTime)
	bH := now.BytesHostToDev - p.mark.BytesHostToDev
	bD := now.BytesDevToHost - p.mark.BytesDevToHost
	// Split the measured transfer between the two copy engines by byte
	// share; the remainder assignment keeps h2d+d2h exactly equal to the
	// accrued transfer time, so overlapped totals stay consistent with the
	// sequential counters. With no bytes moved (pure-latency copies, e.g.
	// zero-length staging), there is no byte share to split by: charge the
	// engines evenly instead of silently serializing it all onto D2H.
	var h2d time.Duration
	if total := bH + bD; total > 0 {
		h2d = time.Duration(int64(transfer) * bH / total)
	} else if transfer > 0 {
		h2d = transfer / 2
	}
	d2h := transfer - h2d
	seq = transfer + compute
	overlapped = p.Chunk(h2d, compute, d2h)
	return seq, overlapped
}

// Close charges the pipeline's measured overlap to the device counters:
// SimStreamTime accrues the critical path, SimStreamSeqTime what the same
// chunks cost sequentially. Closing an empty or already-closed pipeline is a
// no-op.
func (p *Pipeline) Close() {
	if p.closed || p.chunks == 0 {
		p.closed = true
		return
	}
	p.closed = true
	p.dev.mu.Lock()
	defer p.dev.mu.Unlock()
	p.dev.stats.SimStreamTime += p.Span()
	p.dev.stats.SimStreamSeqTime += p.seq
	p.dev.stats.StreamChunks += p.chunks
	p.dev.stats.StreamOps++
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
