package gpu

import (
	"testing"
	"time"
)

func TestSimTimePipelinedBounds(t *testing.T) {
	s := Stats{
		SimTransferTime: 100 * time.Millisecond,
		SimComputeTime:  300 * time.Millisecond,
		KernelLaunches:  10,
	}
	seq := s.SimTime()
	pipe := s.SimTimePipelined()
	if pipe >= seq {
		t.Fatalf("pipelining should help: %v vs %v", pipe, seq)
	}
	// Lower bound: never below the longer stream.
	if pipe < 300*time.Millisecond {
		t.Fatalf("pipelined time %v below the compute stream", pipe)
	}
	// With many launches the overlap approaches max(transfer, compute).
	s.KernelLaunches = 1 << 20
	if d := s.SimTimePipelined() - 300*time.Millisecond; d > time.Millisecond {
		t.Fatalf("steady-state pipeline should approach the longer stream, off by %v", d)
	}
}

func TestSimTimePipelinedDegenerate(t *testing.T) {
	// No launches: fill term must not divide by zero.
	s := Stats{SimTransferTime: 10, SimComputeTime: 5}
	if s.SimTimePipelined() != 15 {
		t.Fatalf("zero-launch pipeline = %v", s.SimTimePipelined())
	}
	// Transfer-dominated workloads overlap the compute stream instead.
	s = Stats{SimTransferTime: 400, SimComputeTime: 100, KernelLaunches: 100}
	if got := s.SimTimePipelined(); got < 400 || got > 500 {
		t.Fatalf("transfer-dominated pipeline = %v", got)
	}
}

func TestPipelinedNeverExceedsSequential(t *testing.T) {
	for launches := int64(1); launches < 100; launches *= 3 {
		for _, tr := range []time.Duration{0, 1, 50, 1000} {
			for _, cp := range []time.Duration{0, 1, 50, 1000} {
				s := Stats{SimTransferTime: tr, SimComputeTime: cp, KernelLaunches: launches}
				if s.SimTimePipelined() > s.SimTime() {
					t.Fatalf("pipeline slower than sequential at tr=%v cp=%v l=%d", tr, cp, launches)
				}
			}
		}
	}
}
