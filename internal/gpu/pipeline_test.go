package gpu

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestStreamInOrderAndDeps(t *testing.T) {
	a := NewStream("a")
	b := NewStream("b")
	e1 := a.Schedule(ms(10))
	if e1.At != ms(10) {
		t.Fatalf("first event at %v, want 10ms", e1.At)
	}
	// Same stream serializes even with no dependency.
	if e2 := a.Schedule(ms(5)); e2.At != ms(15) {
		t.Fatalf("in-order event at %v, want 15ms", e2.At)
	}
	// A dependent event on another stream waits for the dependency.
	if e3 := b.Schedule(ms(1), e1); e3.At != ms(11) {
		t.Fatalf("dependent event at %v, want 11ms", e3.At)
	}
	// An independent stream starts at its own clock.
	c := NewStream("c")
	if e4 := c.Schedule(ms(3)); e4.At != ms(3) {
		t.Fatalf("independent event at %v, want 3ms", e4.At)
	}
	// Negative durations clamp to zero instead of rewinding the clock.
	if e5 := c.Schedule(-ms(5)); e5.At != ms(3) {
		t.Fatalf("negative-duration event at %v, want 3ms", e5.At)
	}
}

// TestPipelineSteadyState checks the Fig. 4 shape on the measured pipeline:
// with many uniform chunks the critical path approaches
// max(transfer, compute) per chunk, plus one fill of the other stages.
func TestPipelineSteadyState(t *testing.T) {
	dev := MustNew(SmallTestDevice(), true)
	p := dev.NewPipeline(2)
	const chunks = 64
	for i := 0; i < chunks; i++ {
		p.Chunk(ms(1), ms(3), ms(1)) // compute-bound chunk
	}
	span, seq := p.Span(), p.SeqTime()
	if seq != ms(5*chunks) {
		t.Fatalf("sequential sum %v, want %v", seq, ms(5*chunks))
	}
	// Steady state: one H2D fill + chunks × compute + one D2H drain.
	want := ms(1) + ms(3*chunks) + ms(1)
	if span != want {
		t.Fatalf("compute-bound span %v, want %v", span, want)
	}
	if span >= seq {
		t.Fatalf("pipelining should beat the sequential sum: %v vs %v", span, seq)
	}
}

// TestPipelineTransferBound checks the other steady state: when transfers
// dominate, the span approaches the H2D stream total plus fills, and the
// double-buffer dependency never lets uploads run unboundedly ahead.
func TestPipelineTransferBound(t *testing.T) {
	dev := MustNew(SmallTestDevice(), true)
	p := dev.NewPipeline(2)
	const chunks = 32
	for i := 0; i < chunks; i++ {
		p.Chunk(ms(4), ms(1), ms(2))
	}
	// H2D dominates: span = chunks×4 (uploads back-to-back) + kernel + D2H
	// of the last chunk.
	want := ms(4*chunks) + ms(1) + ms(2)
	if got := p.Span(); got != want {
		t.Fatalf("transfer-bound span %v, want %v", got, want)
	}
}

// TestPipelineDoubleBuffering: with depth 2 and a slow kernel, chunk c's
// upload must wait for kernel c-2, so the H2D stream is gated by compute
// instead of racing ahead through unlimited buffers.
func TestPipelineDoubleBuffering(t *testing.T) {
	dev := MustNew(SmallTestDevice(), true)
	p := dev.NewPipeline(2)
	const chunks = 10
	for i := 0; i < chunks; i++ {
		p.Chunk(ms(1), ms(10), ms(1))
	}
	// Kernel stream: fill (1ms) + 10 kernels back-to-back.
	wantSpan := ms(1) + ms(10*chunks) + ms(1)
	if got := p.Span(); got != wantSpan {
		t.Fatalf("double-buffered span %v, want %v", got, wantSpan)
	}
	// The upload of the last chunk cannot have finished before kernel
	// chunks-2 completed: h2d clock ≥ fill + (chunks-2) kernels + upload.
	minH2D := ms(1) + ms(10*(chunks-2)) + ms(1)
	if got := p.h2d.Clock(); got < minH2D {
		t.Fatalf("H2D stream ran ahead of the buffer budget: %v < %v", got, minH2D)
	}
}

func TestPipelineNeverExceedsSequential(t *testing.T) {
	dev := MustNew(SmallTestDevice(), true)
	durs := []time.Duration{0, ms(1), ms(7), ms(50)}
	for _, h := range durs {
		for _, k := range durs {
			for _, d := range durs {
				p := dev.NewPipeline(2)
				for i := 0; i < 9; i++ {
					p.Chunk(h, k, d)
				}
				if p.Span() > p.SeqTime() {
					t.Fatalf("pipeline slower than sequential at h=%v k=%v d=%v: %v > %v",
						h, k, d, p.Span(), p.SeqTime())
				}
				// Lower bound: the busiest stream.
				low := maxDur(9*h, maxDur(9*k, 9*d))
				if p.Span() < low {
					t.Fatalf("span %v below busiest stream %v", p.Span(), low)
				}
			}
		}
	}
}

// TestPipelineEndMeasuresDevice brackets real device work with Begin/End and
// checks the measured chunk matches the device's sequential counters, and
// that Close accrues the stream stats.
func TestPipelineEndMeasuresDevice(t *testing.T) {
	dev := MustNew(SmallTestDevice(), true)
	p := dev.NewPipeline(2)
	var seqSum time.Duration
	for i := 0; i < 4; i++ {
		before := dev.Stats()
		p.Begin()
		dev.CopyToDevice(1 << 16)
		if _, err := dev.Launch(Kernel{Name: "busy", Items: 64, WordOps: 1 << 16}, func(int) {}); err != nil {
			t.Fatal(err)
		}
		dev.CopyFromDevice(1 << 15)
		seq, overlapped := p.End()
		after := dev.Stats()
		wantSeq := after.SimTime() - before.SimTime()
		if seq != wantSeq {
			t.Fatalf("chunk %d: measured seq %v, want device delta %v", i, seq, wantSeq)
		}
		if overlapped < 0 || overlapped > seq {
			t.Fatalf("chunk %d: overlapped %v outside [0, %v]", i, overlapped, seq)
		}
		seqSum += seq
	}
	if p.SeqTime() != seqSum {
		t.Fatalf("pipeline seq %v, want %v", p.SeqTime(), seqSum)
	}
	span := p.Span()
	p.Close()
	p.Close() // idempotent
	st := dev.Stats()
	if st.SimStreamTime != span || st.SimStreamSeqTime != seqSum {
		t.Fatalf("stream stats (%v, %v), want (%v, %v)",
			st.SimStreamTime, st.SimStreamSeqTime, span, seqSum)
	}
	if st.StreamChunks != 4 || st.StreamOps != 1 {
		t.Fatalf("stream counters chunks=%d ops=%d, want 4 and 1", st.StreamChunks, st.StreamOps)
	}
	if ov := st.SimTimeOverlapped(); ov > st.SimTime() || ov != st.SimTime()-seqSum+span {
		t.Fatalf("overlapped total %v inconsistent with seq %v stream (%v, %v)",
			ov, st.SimTime(), seqSum, span)
	}
}

// TestPipelineEndWithoutBegin is a no-op rather than a bogus chunk.
func TestPipelineEndWithoutBegin(t *testing.T) {
	dev := MustNew(SmallTestDevice(), true)
	p := dev.NewPipeline(2)
	if seq, ov := p.End(); seq != 0 || ov != 0 || p.Chunks() != 0 {
		t.Fatalf("unmatched End scheduled a chunk: seq=%v ov=%v chunks=%d", seq, ov, p.Chunks())
	}
	p.Close() // empty close must not touch device stats
	if st := dev.Stats(); st.StreamOps != 0 {
		t.Fatalf("empty pipeline counted as a stream op")
	}
}

// TestPipelineEndSplitsLatencyOnlyTransfer: copies that move zero bytes
// still cost the fixed transfer latency. End used to split transfer time by
// byte share and silently dump the whole thing on D2H when no bytes moved;
// it must charge the two copy engines evenly instead.
func TestPipelineEndSplitsLatencyOnlyTransfer(t *testing.T) {
	dev := MustNew(SmallTestDevice(), true)
	p := dev.NewPipeline(2)
	before := dev.Stats()
	p.Begin()
	dev.CopyToDevice(0) // latency-only staging copies
	dev.CopyFromDevice(0)
	seq, _ := p.End()
	transfer := dev.Stats().SimTransferTime - before.SimTransferTime
	if transfer <= 0 {
		t.Fatal("latency-only copies accrued no transfer time")
	}
	if seq != transfer {
		t.Fatalf("seq %v, want the accrued transfer %v", seq, transfer)
	}
	h2d, _, d2h := p.StreamClocks()
	// The kernel stage is empty, so the D2H stage starts when H2D finishes:
	// h2d clock = the H2D half, d2h clock = the full transfer. Under the
	// old split h2d was 0 and the whole transfer landed on D2H.
	if h2d != transfer/2 {
		t.Fatalf("h2d engine charged %v, want half the transfer (%v)", h2d, transfer/2)
	}
	if d2h != transfer {
		t.Fatalf("d2h clock %v, want %v (H2D half + D2H half)", d2h, transfer)
	}
	p.Close()
}

// TestPipelineRefusesSchedulingAfterClose: Close charges the pipeline's
// span to the device, so later Begin/Chunk/End calls must not mutate the
// already-charged stream clocks — they are refused and counted as misuses.
func TestPipelineRefusesSchedulingAfterClose(t *testing.T) {
	dev := MustNew(SmallTestDevice(), true)
	p := dev.NewPipeline(2)
	p.Chunk(time.Millisecond, 2*time.Millisecond, time.Millisecond)
	p.Close()
	span, seq, chunks := p.Span(), p.SeqTime(), p.Chunks()
	devStream, devChunks := dev.Stats().SimStreamTime, dev.Stats().StreamChunks

	if ov := p.Chunk(time.Second, time.Second, time.Second); ov != 0 {
		t.Fatalf("post-Close Chunk returned %v, want 0", ov)
	}
	p.Begin()
	dev.CopyToDevice(1 << 10)
	if s, ov := p.End(); s != 0 || ov != 0 {
		t.Fatalf("post-Close Begin/End measured (%v, %v), want zeros", s, ov)
	}
	if p.Span() != span || p.SeqTime() != seq || p.Chunks() != chunks {
		t.Fatalf("post-Close scheduling mutated charged clocks: span %v→%v seq %v→%v chunks %d→%d",
			span, p.Span(), seq, p.SeqTime(), chunks, p.Chunks())
	}
	if st := dev.Stats(); st.SimStreamTime != devStream || st.StreamChunks != devChunks {
		t.Fatalf("device stream accounting changed after Close: %v/%d → %v/%d",
			devStream, devChunks, st.SimStreamTime, st.StreamChunks)
	}
	if p.Misuses() != 3 {
		t.Fatalf("Misuses = %d, want 3 (Chunk, Begin, End)", p.Misuses())
	}
}
