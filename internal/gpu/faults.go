package gpu

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flbooster/internal/mpint"
)

// Device fault model (DESIGN.md §7). Real accelerator deployments treat
// kernel failures as routine events; this file gives the simulated device
// the same fault surface so the layers above can be tested against it:
// a seeded injector producing four transient fault kinds plus permanent
// device death, a typed launch error, and a health state machine driven by
// consecutive launch failures.

// FaultKind classifies a device fault.
type FaultKind string

// The fault kinds a launch can report.
const (
	// FaultAbort is a kernel that terminates without producing results.
	FaultAbort FaultKind = "abort"
	// FaultCorrupt is a kernel that completes but silently corrupts one
	// item's result. The device reports success; only result verification
	// (ghe.CheckedEngine) detects it.
	FaultCorrupt FaultKind = "corrupt"
	// FaultStall is a kernel that hangs past the watchdog deadline.
	FaultStall FaultKind = "stall"
	// FaultOOM is a launch whose working set cannot be satisfied from the
	// resource manager's device memory table.
	FaultOOM FaultKind = "oom"
	// FaultDeviceFailed reports a launch refused because the device health
	// machine has reached the Failed state.
	FaultDeviceFailed FaultKind = "device-failed"
)

// KernelError is the typed failure of one kernel launch.
type KernelError struct {
	// Kind classifies the failure.
	Kind FaultKind
	// Kernel is the launch's diagnostic name.
	Kernel string
	// Attempt is the device-wide 1-based launch ordinal that failed.
	Attempt int64
}

// Error implements error.
func (e *KernelError) Error() string {
	return fmt.Sprintf("gpu: kernel %q launch %d failed: %s", e.Kernel, e.Attempt, e.Kind)
}

// IsKernelError reports whether err is (or wraps) a typed device fault — the
// retryable/re-queueable class, as opposed to a caller bug.
func IsKernelError(err error) bool {
	var ke *KernelError
	return errors.As(err, &ke)
}

// HealthState is the device health machine's state.
type HealthState string

// Health machine states: Healthy → Degraded → Failed. Failed is terminal —
// callers fail over to host execution (ghe.CheckedEngine).
const (
	DeviceHealthy  HealthState = "healthy"
	DeviceDegraded HealthState = "degraded"
	DeviceFailed   HealthState = "failed"
)

// HealthPolicy sets the consecutive-failure thresholds of the health
// machine. A successful launch resets the counter and recovers a Degraded
// device; a Failed device never recovers.
type HealthPolicy struct {
	// DegradeAfter is the consecutive-failure count that enters Degraded.
	DegradeAfter int
	// FailAfter is the consecutive-failure count that enters Failed.
	FailAfter int
}

// DefaultHealthPolicy degrades on the first failure and fails the device on
// the third consecutive one — tight enough that a dead device is latched
// within one retry budget, loose enough that a single transient fault never
// takes the device out.
func DefaultHealthPolicy() HealthPolicy { return HealthPolicy{DegradeAfter: 1, FailAfter: 3} }

// withDefaults fills zero thresholds.
func (p HealthPolicy) withDefaults() HealthPolicy {
	d := DefaultHealthPolicy()
	if p.DegradeAfter <= 0 {
		p.DegradeAfter = d.DegradeAfter
	}
	if p.FailAfter <= 0 {
		p.FailAfter = d.FailAfter
	}
	if p.FailAfter < p.DegradeAfter {
		p.FailAfter = p.DegradeAfter
	}
	return p
}

// FaultConfig parameterizes a FaultInjector. All probabilistic decisions
// come from one stream seeded by Seed and drawn in launch order with a
// fixed number of draws per launch, so a fixed seed and a fixed launch
// sequence reproduce the exact same fault pattern (the determinism contract
// mirrors flnet.ChaosConfig).
type FaultConfig struct {
	// Seed drives every probabilistic decision.
	Seed uint64
	// AbortProb is the probability a launch aborts without results.
	AbortProb float64
	// CorruptProb is the probability a launch silently corrupts one item's
	// result through the kernel's Poison callback.
	CorruptProb float64
	// StallProb is the probability a launch hangs (until the watchdog
	// cancels it, or for StallFor when no watchdog is armed).
	StallProb float64
	// OOMProb is the probability a launch's scratch demand is inflated past
	// the free device memory, so the allocation fails from the resource
	// manager's real memory table.
	OOMProb float64
	// KillAtLaunch, when positive, permanently kills the device starting at
	// that 1-based launch ordinal: every launch from then on aborts, which
	// drives the health machine to Failed. This is the "device dies
	// mid-round" scenario of the resilience experiment.
	KillAtLaunch int64
	// StallFor bounds how long an injected stall blocks when no watchdog
	// cancels it first. Zero defaults to 50ms.
	StallFor time.Duration
}

// Enabled reports whether the config injects any fault at all.
func (c FaultConfig) Enabled() bool {
	return c.AbortProb > 0 || c.CorruptProb > 0 || c.StallProb > 0 || c.OOMProb > 0 ||
		c.KillAtLaunch > 0
}

// FaultStats counts the faults an injector has decided, by kind.
type FaultStats struct {
	Launches    int64 // launches the injector saw
	Aborts      int64
	Corruptions int64
	Stalls      int64
	OOMs        int64
	Kills       int64 // launches refused because the kill ordinal passed
}

// Total is the number of faulted launches.
func (s FaultStats) Total() int64 {
	return s.Aborts + s.Corruptions + s.Stalls + s.OOMs + s.Kills
}

// FaultInjector decides, per launch, whether and how the device misbehaves.
// Attach one to a device with Device.SetFaultInjector.
type FaultInjector struct {
	cfg FaultConfig

	mu    sync.Mutex
	rng   *mpint.RNG
	stats FaultStats
}

// NewFaultInjector builds an injector from cfg.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.StallFor <= 0 {
		cfg.StallFor = 50 * time.Millisecond
	}
	return &FaultInjector{cfg: cfg, rng: mpint.NewRNG(cfg.Seed)}
}

// Stats returns a snapshot of the decided-fault counters.
func (fi *FaultInjector) Stats() FaultStats {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.stats
}

// decide draws this launch's fault. Every launch consumes exactly five
// draws in a fixed order regardless of which faults are enabled, so the
// fault pattern is a pure function of (seed, launch index). poisonItem is
// the item index to corrupt when kind is FaultCorrupt, -1 otherwise.
func (fi *FaultInjector) decide(items int) (kind FaultKind, poisonItem int) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.stats.Launches++
	abort := fi.rng.Float64() < fi.cfg.AbortProb
	corrupt := fi.rng.Float64() < fi.cfg.CorruptProb
	stall := fi.rng.Float64() < fi.cfg.StallProb
	oom := fi.rng.Float64() < fi.cfg.OOMProb
	itemDraw := fi.rng.Float64()

	if fi.cfg.KillAtLaunch > 0 && fi.stats.Launches >= fi.cfg.KillAtLaunch {
		fi.stats.Kills++
		return FaultAbort, -1
	}
	switch {
	case abort:
		fi.stats.Aborts++
		return FaultAbort, -1
	case corrupt:
		fi.stats.Corruptions++
		item := int(itemDraw * float64(items))
		if item >= items {
			item = items - 1
		}
		return FaultCorrupt, item
	case stall:
		fi.stats.Stalls++
		return FaultStall, -1
	case oom:
		fi.stats.OOMs++
		return FaultOOM, -1
	}
	return "", -1
}

// stall blocks an injected hung kernel until the launch's watchdog cancels
// it or StallFor elapses, whichever comes first — so stalled goroutines are
// always reclaimed.
func (fi *FaultInjector) stall(cancel <-chan struct{}) {
	select {
	case <-cancel:
	case <-time.After(fi.cfg.StallFor):
	}
}
