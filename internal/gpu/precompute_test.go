package gpu

import (
	"testing"

	"flbooster/internal/obs"
)

// chargeWork runs one costed launch plus transfers so the bracketed interval
// has every online counter populated.
func chargeWork(t *testing.T, d *Device) {
	t.Helper()
	d.CopyToDevice(1 << 20)
	_, err := d.Launch(Kernel{Name: "precomp_test", Items: 64, RegsPerThread: 32, WordOps: 5000}, func(int) {})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	d.CopyFromDevice(1 << 20)
}

func TestReclassifyPrecomputeMovesClock(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	chargeWork(t, d) // online work that must stay online
	before := d.Stats()

	mark := d.Stats()
	chargeWork(t, d)
	after := d.Stats()
	if after.SimTime() <= before.SimTime() {
		t.Fatalf("bracketed work charged nothing")
	}
	moved := d.ReclassifyPrecompute(mark)
	got := d.Stats()

	if got.SimTime() != before.SimTime() {
		t.Errorf("online clock: got %v, want the pre-bracket %v", got.SimTime(), before.SimTime())
	}
	if moved != after.SimTime()-before.SimTime() {
		t.Errorf("moved %v, want the bracketed accrual %v", moved, after.SimTime()-before.SimTime())
	}
	if got.SimPrecomputeTime != moved {
		t.Errorf("SimPrecomputeTime %v, want %v", got.SimPrecomputeTime, moved)
	}
	// The work itself is not erased: launches and bytes remain.
	if got.KernelLaunches != after.KernelLaunches || got.BytesHostToDev != after.BytesHostToDev {
		t.Errorf("reclassification must not touch work counters")
	}
	// SimTime excludes the precompute bill by contract.
	if got.SimTime() != got.SimTransferTime+got.SimComputeTime+got.SimFaultTime {
		t.Errorf("SimTime must not include SimPrecomputeTime")
	}
}

func TestReclassifyPrecomputeWithStreamedChunks(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	mark := d.Stats()
	pipe := d.NewPipeline(2)
	for i := 0; i < 4; i++ {
		pipe.Begin()
		chargeWork(t, d)
		pipe.End()
	}
	pipe.Close()
	moved := d.ReclassifyPrecompute(mark)
	got := d.Stats()
	if moved <= 0 {
		t.Fatalf("streamed refill should move a positive overlapped duration")
	}
	if got.SimTime() != 0 || got.SimTimeOverlapped() != 0 {
		t.Errorf("online clocks should return to the mark: seq %v overlapped %v", got.SimTime(), got.SimTimeOverlapped())
	}
	if got.StreamChunks != 4 {
		t.Errorf("stream work counters must survive: chunks %d", got.StreamChunks)
	}
	if got.SimPrecomputeTime != moved {
		t.Errorf("SimPrecomputeTime %v, want %v", got.SimPrecomputeTime, moved)
	}
}

func TestPublishMetricsIncludesPrecompute(t *testing.T) {
	d := MustNew(SmallTestDevice(), true)
	mark := d.Stats()
	chargeWork(t, d)
	d.ReclassifyPrecompute(mark)
	reg := obs.NewRegistry()
	d.PublishMetrics(reg, "dev")
	if v := reg.Counter("dev.sim_precompute_ns"); v == 0 || v != int64(d.Stats().SimPrecomputeTime) {
		t.Errorf("sim_precompute_ns: got %d, want %d", v, int64(d.Stats().SimPrecomputeTime))
	}
}
