package gpu

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"flbooster/internal/obs"
)

// Device is a simulated GPU. Kernel bodies run for real on a host goroutine
// pool (one worker per core by default) while a simulated clock integrates
// the paper's Eq. 10 cost model so experiments can report device-scale
// timings independent of the host.
type Device struct {
	cfg Config
	rm  *ResourceManager

	workers int
	sem     chan struct{} // bounds concurrently running blocks

	mu        sync.Mutex
	stats     Stats
	injector  *FaultInjector
	healthPol HealthPolicy
	launchSeq int64 // 1-based launch ordinal, attempted launches included

	rec      *obs.Recorder // nil when tracing is off: every record is one nil check
	recParty string        // trace process the device's spans belong to
	devID    string        // device label inside a DeviceSet ("dev0"…); empty standalone
}

// Stats aggregates device activity.
type Stats struct {
	KernelLaunches  int64
	ThreadsExecuted int64
	WarpsExecuted   int64
	BytesHostToDev  int64
	BytesDevToHost  int64
	SimTransferTime time.Duration // modelled PCIe time (Eq. 10 transfer term)
	SimComputeTime  time.Duration // modelled kernel time (Eq. 10 compute term)
	SimFaultTime    time.Duration // modelled time lost to faults: watchdog windows, retry backoff, degraded host execution
	// SimPrecomputeTime holds device work reclassified as offline
	// precomputation (nonce-pool refills run during idle sim-time). It is
	// excluded from SimTime(): the online clock only pays for work the
	// critical path actually waits on, while the precompute bill stays
	// visible here.
	SimPrecomputeTime time.Duration
	WallKernelTime    time.Duration // real host time spent in kernel bodies
	UtilizationSum    float64       // Σ occupancy per launch, for averaging
	UtilizationCount  int64

	// Stream-pipeline observability: ops executed as chunked streams
	// (Pipeline) report their measured critical path in SimStreamTime and
	// the sequential cost of the same chunks in SimStreamSeqTime, so the
	// overlap gain is (SimStreamSeqTime - SimStreamTime) of real schedule,
	// not a closed-form estimate.
	SimStreamTime    time.Duration
	SimStreamSeqTime time.Duration
	StreamChunks     int64
	StreamOps        int64

	// Fault/health observability (DESIGN.md §7). Per-kind counters record
	// *observed* failures: silent corruptions appear only once detected and
	// reported back via ReportFailure.
	LaunchFailures      int64
	WatchdogTrips       int64
	FaultAborts         int64
	FaultCorruptions    int64
	FaultStalls         int64
	FaultOOMs           int64
	Health              HealthState
	ConsecutiveFailures int
}

// SimTime is the total modelled device time with sequential stages:
// transfer in, compute, transfer out (the three stages of §V-B), plus any
// time lost to faults — degraded runs report their true cost.
func (s Stats) SimTime() time.Duration {
	return s.SimTransferTime + s.SimComputeTime + s.SimFaultTime
}

// SimTimeOverlapped is the modelled device time with stream overlap: ops
// executed as chunked pipelines contribute their measured critical path
// (SimStreamTime) in place of their sequential stage sum, while everything
// that ran whole-batch keeps its sequential cost. It never exceeds
// SimTime(), and equals it when nothing was streamed.
func (s Stats) SimTimeOverlapped() time.Duration {
	return s.SimTime() - s.SimStreamSeqTime + s.SimStreamTime
}

// AvgUtilization is the mean SM utilization across launches, in [0,1].
func (s Stats) AvgUtilization() float64 {
	if s.UtilizationCount == 0 {
		return 0
	}
	return s.UtilizationSum / float64(s.UtilizationCount)
}

// New creates a device from cfg with a resource manager using the
// fine-grained policy when fineRM is true (FLBooster) or the coarse policy
// otherwise (HAFLO-style).
func New(cfg Config, fineRM bool) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := cfg.HostWorkers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	d := &Device{
		cfg:       cfg,
		rm:        NewResourceManager(cfg, fineRM),
		workers:   w,
		sem:       make(chan struct{}, w),
		healthPol: DefaultHealthPolicy(),
	}
	d.stats.Health = DeviceHealthy
	return d, nil
}

// MustNew is New for known-good configs; it panics on error.
func MustNew(cfg Config, fineRM bool) *Device {
	d, err := New(cfg, fineRM)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// RM returns the device's resource manager.
func (d *Device) RM() *ResourceManager { return d.rm }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the device counters (between experiment phases). Health
// state survives the reset — a failed device does not heal by bookkeeping.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	health, consec := d.stats.Health, d.stats.ConsecutiveFailures
	d.stats = Stats{Health: health, ConsecutiveFailures: consec}
}

// SetRecorder attaches (or, with nil, detaches) a span recorder. Every
// kernel launch, PCIe copy, and fault-time charge then lands as a sim-time
// span under the given trace party.
func (d *Device) SetRecorder(rec *obs.Recorder, party string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rec = rec
	d.recParty = party
}

// SetDeviceLabel names the device inside a multi-device set; the label tags
// every kernel/copy/fault span the device emits.
func (d *Device) SetDeviceLabel(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.devID = id
}

// DeviceLabel returns the device's set label, empty for a standalone device.
func (d *Device) DeviceLabel() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.devID
}

// obsRecorder returns the attached recorder and party label.
func (d *Device) obsRecorder() (*obs.Recorder, string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rec, d.recParty
}

// recordLocked emits one span on the device's sim timeline. Callers hold
// d.mu; zero-duration spans are skipped to keep traces readable.
func (d *Device) recordLocked(phase, lane string, start, dur time.Duration) {
	if d.rec == nil || dur <= 0 {
		return
	}
	d.rec.Record(obs.Span{Phase: phase, Party: d.recParty, Lane: lane, Device: d.devID, Start: start, Dur: dur})
}

// PublishMetrics snapshots the device counters into a metrics registry
// under the given prefix — launches, bytes, fault/watchdog events, stream
// clocks, the DESIGN.md §9 pull-publishing contract.
func (d *Device) PublishMetrics(reg *obs.Registry, prefix string) {
	publishDeviceStats(reg, prefix, d.Stats())
}

// publishDeviceStats writes one Stats snapshot under a prefix — shared by
// standalone devices, DeviceSet members, and the set's aggregate row.
func publishDeviceStats(reg *obs.Registry, prefix string, s Stats) {
	reg.Set(prefix+".launches", s.KernelLaunches)
	reg.Set(prefix+".threads", s.ThreadsExecuted)
	reg.Set(prefix+".warps", s.WarpsExecuted)
	reg.Set(prefix+".bytes_h2d", s.BytesHostToDev)
	reg.Set(prefix+".bytes_d2h", s.BytesDevToHost)
	reg.Set(prefix+".sim_transfer_ns", int64(s.SimTransferTime))
	reg.Set(prefix+".sim_compute_ns", int64(s.SimComputeTime))
	reg.Set(prefix+".sim_fault_ns", int64(s.SimFaultTime))
	reg.Set(prefix+".sim_precompute_ns", int64(s.SimPrecomputeTime))
	reg.Set(prefix+".stream_chunks", s.StreamChunks)
	reg.Set(prefix+".stream_ops", s.StreamOps)
	reg.Set(prefix+".sim_stream_ns", int64(s.SimStreamTime))
	reg.Set(prefix+".sim_stream_seq_ns", int64(s.SimStreamSeqTime))
	reg.Set(prefix+".launch_failures", s.LaunchFailures)
	reg.Set(prefix+".watchdog_trips", s.WatchdogTrips)
	reg.Set(prefix+".fault_aborts", s.FaultAborts)
	reg.Set(prefix+".fault_corruptions", s.FaultCorruptions)
	reg.Set(prefix+".fault_stalls", s.FaultStalls)
	reg.Set(prefix+".fault_ooms", s.FaultOOMs)
	reg.SetGauge(prefix+".avg_utilization", s.AvgUtilization())
	reg.SetGauge(prefix+".health", healthRank(s.Health))
}

// healthRank maps the health machine to a numeric gauge: 0 healthy,
// 1 degraded, 2 failed.
func healthRank(h HealthState) float64 {
	switch h {
	case DeviceDegraded:
		return 1
	case DeviceFailed:
		return 2
	default:
		return 0
	}
}

// SetFaultInjector attaches (or, with nil, detaches) a fault injector.
func (d *Device) SetFaultInjector(fi *FaultInjector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.injector = fi
}

// Injector returns the attached fault injector, nil when none.
func (d *Device) Injector() *FaultInjector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.injector
}

// SetHealthPolicy replaces the consecutive-failure thresholds.
func (d *Device) SetHealthPolicy(p HealthPolicy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.healthPol = p.withDefaults()
}

// Health returns the device health state.
func (d *Device) Health() HealthState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats.Health
}

// ReportFailure feeds an externally detected launch failure — typically a
// result-verification miss on a kernel that reported success — into the
// health machine and the per-kind counters.
func (d *Device) ReportFailure(kernel string, kind FaultKind) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.recordFailureLocked(kind)
}

// ReclassifyPrecompute moves every modelled cost the device accrued since
// `mark` (a Stats snapshot taken before the work) out of the online clock
// and into SimPrecomputeTime, returning the overlapped duration moved. This
// is how offline work — nonce-pool refills driven through the ordinary
// kernel/copy/pipeline paths — is billed to idle sim-time instead of the
// round's critical path: the work still happened (bytes, launches, and spans
// remain), but its clock contribution is reclassified. The caller must
// bracket the work single-threadedly; concurrent online work between mark
// and the call would be reclassified with it.
func (d *Device) ReclassifyPrecompute(mark Stats) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	dT := d.stats.SimTransferTime - mark.SimTransferTime
	dC := d.stats.SimComputeTime - mark.SimComputeTime
	dF := d.stats.SimFaultTime - mark.SimFaultTime
	dSS := d.stats.SimStreamSeqTime - mark.SimStreamSeqTime
	dS := d.stats.SimStreamTime - mark.SimStreamTime
	// The overlapped view of the bracketed work: sequential stages, minus the
	// chunks that were streamed, plus their measured critical path.
	moved := dT + dC + dF - dSS + dS
	if moved < 0 {
		moved = 0
	}
	d.stats.SimTransferTime = mark.SimTransferTime
	d.stats.SimComputeTime = mark.SimComputeTime
	d.stats.SimFaultTime = mark.SimFaultTime
	d.stats.SimStreamSeqTime = mark.SimStreamSeqTime
	d.stats.SimStreamTime = mark.SimStreamTime
	d.stats.SimPrecomputeTime += moved
	return moved
}

// ChargeFaultTime adds externally incurred fault cost — retry backoff and
// degraded-mode host execution — to the modelled clock (Eq. 10 terms stay
// untouched; the loss is reported separately as SimFaultTime).
func (d *Device) ChargeFaultTime(dur time.Duration) {
	if dur <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.recordLocked("fault", "gpu.fault", d.stats.SimTime(), dur)
	d.stats.SimFaultTime += dur
}

// recordFailureLocked counts one failed launch and advances the health
// machine. Callers hold d.mu.
func (d *Device) recordFailureLocked(kind FaultKind) {
	d.stats.LaunchFailures++
	switch kind {
	case FaultAbort:
		d.stats.FaultAborts++
	case FaultCorrupt:
		d.stats.FaultCorruptions++
	case FaultStall:
		d.stats.FaultStalls++
	case FaultOOM:
		d.stats.FaultOOMs++
	}
	if d.stats.Health == DeviceFailed {
		return
	}
	d.stats.ConsecutiveFailures++
	switch {
	case d.stats.ConsecutiveFailures >= d.healthPol.FailAfter:
		d.stats.Health = DeviceFailed
	case d.stats.ConsecutiveFailures >= d.healthPol.DegradeAfter:
		d.stats.Health = DeviceDegraded
	}
}

// recordSuccessLocked resets the failure streak; a Degraded device
// recovers, a Failed one never does. Callers hold d.mu.
func (d *Device) recordSuccessLocked() {
	d.stats.ConsecutiveFailures = 0
	if d.stats.Health == DeviceDegraded {
		d.stats.Health = DeviceHealthy
	}
}

// CopyToDevice accounts a host→device transfer of n bytes.
func (d *Device) CopyToDevice(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dur := d.transferTime(n)
	d.recordLocked("h2d_copy", "gpu.h2d", d.stats.SimTime(), dur)
	d.stats.BytesHostToDev += n
	d.stats.SimTransferTime += dur
}

// CopyFromDevice accounts a device→host transfer of n bytes.
func (d *Device) CopyFromDevice(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dur := d.transferTime(n)
	d.recordLocked("d2h_copy", "gpu.d2h", d.stats.SimTime(), dur)
	d.stats.BytesDevToHost += n
	d.stats.SimTransferTime += dur
}

func (d *Device) transferTime(n int64) time.Duration {
	sec := d.cfg.TransferLatencySec + float64(n)/d.cfg.TransferBytesPerSec
	return time.Duration(sec * float64(time.Second))
}

// Kernel describes one launch.
type Kernel struct {
	// Name labels the launch in diagnostics.
	Name string
	// Items is the number of independent work items (e.g. ciphertexts).
	Items int
	// RegsPerThread is the kernel's register demand, which drives occupancy.
	RegsPerThread int
	// SharedPerBlock is per-block shared memory in bytes.
	SharedPerBlock int
	// WordOps is the modelled 32-bit multiply-add count *per item*, used by
	// the simulated clock. Callers compute it from the arithmetic they run
	// (e.g. CIOS cost k²+k per Montgomery multiplication).
	WordOps int64
	// DivergentLanes reports how many lanes of a warp take a divergent
	// branch; the resource manager converts this into a cost factor.
	DivergentLanes int
	// Poison, when set, is how an attached FaultInjector corrupts one item's
	// result after the kernel body runs (the transient bit-flip model). The
	// launch still reports success — only downstream verification can catch
	// it. A corrupt fault on a kernel without Poison fails visibly instead.
	Poison func(item int)
}

// Launch executes fn(i) for every item i of the kernel, distributing items
// across the host worker pool, and charges the simulated clock with the
// Eq. 10 compute term. It is the data-parallel path used for "one thread
// block per ciphertext" kernels. It returns the launch's modelled occupancy.
//
// Failure surface: a Failed device refuses the launch outright; an attached
// FaultInjector may abort, stall, corrupt, or OOM the launch; and when
// Config.KernelDeadline is set, a watchdog cancels stragglers. All of these
// return a typed *KernelError and drive the health machine.
func (d *Device) Launch(k Kernel, fn func(item int)) (float64, error) {
	if k.Items < 0 {
		return 0, fmt.Errorf("gpu: kernel %q has negative item count", k.Name)
	}
	if k.RegsPerThread > d.cfg.MaxRegistersPerThread {
		return 0, fmt.Errorf("gpu: kernel %q wants %d regs/thread, device caps at %d",
			k.Name, k.RegsPerThread, d.cfg.MaxRegistersPerThread)
	}
	if k.Items == 0 {
		return 0, nil
	}

	d.mu.Lock()
	if d.stats.Health == DeviceFailed {
		attempt := d.launchSeq + 1
		d.mu.Unlock()
		return 0, &KernelError{Kind: FaultDeviceFailed, Kernel: k.Name, Attempt: attempt}
	}
	d.launchSeq++
	attempt := d.launchSeq
	injector := d.injector
	d.mu.Unlock()

	fault, poisonItem := FaultKind(""), -1
	if injector != nil {
		fault, poisonItem = injector.decide(k.Items)
	}

	switch fault {
	case FaultAbort:
		d.failLaunch(FaultAbort)
		return 0, &KernelError{Kind: FaultAbort, Kernel: k.Name, Attempt: attempt}
	case FaultOOM:
		// The failure surfaces from the real memory table: the fault inflates
		// the launch's scratch demand past the free bytes, and the allocator
		// rejects it without touching the table's accounting.
		want := d.rm.FreeBytes() + 1 + int64(k.Items)*4
		if buf, err := d.rm.Alloc(want); err != nil {
			d.failLaunch(FaultOOM)
			return 0, &KernelError{Kind: FaultOOM, Kernel: k.Name, Attempt: attempt}
		} else {
			_ = buf.Free()
		}
	case FaultCorrupt:
		if k.Poison == nil {
			// Nothing to poison — the corruption is visible as a hard fault.
			d.failLaunch(FaultCorrupt)
			return 0, &KernelError{Kind: FaultCorrupt, Kernel: k.Name, Attempt: attempt}
		}
	}

	blockSize := d.rm.PickBlockSize(k.Items, k.RegsPerThread, k.SharedPerBlock)
	occ := d.rm.Occupancy(blockSize, k.RegsPerThread, k.SharedPerBlock)
	execFactor, regFactor := d.rm.BranchCost(k.DivergentLanes)
	if regFactor > 1 {
		// Splitting the warp doubles register pressure, reducing occupancy.
		occ = d.rm.Occupancy(blockSize, int(float64(k.RegsPerThread)*regFactor), k.SharedPerBlock)
	}

	start := time.Now()
	deadline := d.cfg.KernelDeadline
	if fault == FaultStall || deadline > 0 {
		done := make(chan struct{})
		cancel := make(chan struct{})
		go func() {
			if fault == FaultStall {
				injector.stall(cancel)
			}
			d.runParallel(k.Items, fn, cancel)
			close(done)
		}()
		if deadline <= 0 {
			// Stall injected but no watchdog armed: the launch is merely slow.
			<-done
		} else {
			timer := time.NewTimer(deadline)
			select {
			case <-done:
				timer.Stop()
			case <-timer.C:
				close(cancel)
				d.mu.Lock()
				d.stats.WatchdogTrips++
				// The watchdog window is real device time lost to the hang.
				d.recordLocked(k.Name+".watchdog", "gpu.fault", d.stats.SimTime(), deadline)
				d.stats.SimFaultTime += deadline
				d.recordFailureLocked(FaultStall)
				d.mu.Unlock()
				return 0, &KernelError{Kind: FaultStall, Kernel: k.Name, Attempt: attempt}
			}
		}
	} else {
		d.runParallel(k.Items, fn, nil)
	}
	wall := time.Since(start)

	if fault == FaultCorrupt {
		// Silent from the device's point of view: the launch succeeds and the
		// health machine sees no failure until verification reports one.
		k.Poison(poisonItem)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	d.recordSuccessLocked()
	d.stats.KernelLaunches++
	d.stats.ThreadsExecuted += int64(k.Items)
	d.stats.WarpsExecuted += int64((k.Items + d.cfg.WarpSize - 1) / d.cfg.WarpSize)
	d.stats.WallKernelTime += wall
	d.stats.UtilizationSum += occ
	d.stats.UtilizationCount++
	// Eq. 10 compute term: total word-ops divided by the device's effective
	// throughput at this occupancy, times the divergence penalty.
	if k.WordOps > 0 && occ > 0 {
		throughput := d.cfg.WordOpsPerSec * float64(d.cfg.SMs) * occ
		sec := float64(k.WordOps) * float64(k.Items) / throughput * execFactor
		dur := time.Duration(sec * float64(time.Second))
		d.recordLocked(k.Name, "gpu.kernel", d.stats.SimTime(), dur)
		d.stats.SimComputeTime += dur
	}
	return occ, nil
}

// failLaunch records one failed launch under the device mutex.
func (d *Device) failLaunch(kind FaultKind) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.recordFailureLocked(kind)
}

// runParallel spreads items across the worker pool in contiguous chunks.
// A closed cancel channel (the launch watchdog tripping) stops every worker
// at its next item boundary, so a cancelled launch does not keep burning
// host CPU behind the caller's retry.
func (d *Device) runParallel(items int, fn func(int), cancel <-chan struct{}) {
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if cancel != nil {
				select {
				case <-cancel:
					return
				default:
				}
			}
			fn(i)
		}
	}
	workers := d.workers
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		run(0, items)
		return
	}
	var wg sync.WaitGroup
	chunk := (items + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > items {
			hi = items
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ThreadCtx is the per-thread view inside a cooperative launch: the thread
// and block index, the block's shared memory, and a barrier for intra-block
// synchronization (the "inter-thread communication" of the paper's
// Algorithm 2).
type ThreadCtx struct {
	Block   int
	Thread  int
	Threads int
	Shared  []uint32
	bar     *barrier
}

// SyncThreads blocks until every thread in the block reaches the barrier.
func (t *ThreadCtx) SyncThreads() { t.bar.await() }

// LaunchCooperative runs a kernel whose threads within a block cooperate
// through shared memory and barriers — the execution model of the paper's
// limb-parallel Montgomery multiplication (Algorithm 2). blocks × threads
// goroutines are spawned, block-by-block through the worker semaphore.
// sharedWords is the size of each block's shared memory in 32-bit words.
func (d *Device) LaunchCooperative(name string, blocks, threads, sharedWords int, fn func(*ThreadCtx)) error {
	if threads <= 0 || blocks < 0 {
		return fmt.Errorf("gpu: cooperative kernel %q has invalid geometry %dx%d", name, blocks, threads)
	}
	if threads > d.cfg.MaxThreadsPerSM {
		return fmt.Errorf("gpu: cooperative kernel %q block of %d exceeds SM capacity %d",
			name, threads, d.cfg.MaxThreadsPerSM)
	}
	d.mu.Lock()
	if d.stats.Health == DeviceFailed {
		attempt := d.launchSeq + 1
		d.mu.Unlock()
		return &KernelError{Kind: FaultDeviceFailed, Kernel: name, Attempt: attempt}
	}
	d.launchSeq++
	d.mu.Unlock()
	var wg sync.WaitGroup
	for b := 0; b < blocks; b++ {
		d.sem <- struct{}{}
		wg.Add(1)
		go func(b int) {
			defer func() { <-d.sem; wg.Done() }()
			shared := make([]uint32, sharedWords)
			bar := newBarrier(threads)
			var tw sync.WaitGroup
			for t := 0; t < threads; t++ {
				tw.Add(1)
				go func(t int) {
					defer tw.Done()
					fn(&ThreadCtx{Block: b, Thread: t, Threads: threads, Shared: shared, bar: bar})
				}(t)
			}
			tw.Wait()
		}(b)
	}
	wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.KernelLaunches++
	d.stats.ThreadsExecuted += int64(blocks * threads)
	d.stats.WarpsExecuted += int64(blocks * ((threads + d.cfg.WarpSize - 1) / d.cfg.WarpSize))
	return nil
}

// barrier is a reusable counting barrier for one block's threads.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	phase   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.n {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for b.phase == phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
