package gpu

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// checkShardCover fails unless shards tile [0, n) exactly with contiguous,
// non-empty ranges.
func checkShardCover(t *testing.T, shards []Shard, n int) {
	t.Helper()
	lo := 0
	for i, sh := range shards {
		if sh.Lo != lo {
			t.Fatalf("shard %d starts at %d, want %d", i, sh.Lo, lo)
		}
		if sh.Len() <= 0 {
			t.Fatalf("shard %d is empty: %+v", i, sh)
		}
		lo = sh.Hi
	}
	if lo != n {
		t.Fatalf("shards cover [0,%d), want [0,%d)", lo, n)
	}
}

func TestSplitShards(t *testing.T) {
	cases := []struct{ n, parts, want int }{
		{0, 4, 0},
		{-3, 4, 0},
		{10, 0, 0},
		{10, -1, 0},
		{10, 1, 1},
		{10, 3, 3},
		{10, 10, 10},
		{3, 8, 3}, // parts > n collapses to n singleton shards
		{1, 1, 1},
		{97, 8, 8},
	}
	for _, c := range cases {
		shards := SplitShards(c.n, c.parts)
		if len(shards) != c.want {
			t.Fatalf("SplitShards(%d,%d) = %d shards, want %d", c.n, c.parts, len(shards), c.want)
		}
		if c.want > 0 {
			checkShardCover(t, shards, c.n)
			// Near-equal: sizes differ by at most one.
			min, max := shards[0].Len(), shards[0].Len()
			for _, sh := range shards {
				if sh.Len() < min {
					min = sh.Len()
				}
				if sh.Len() > max {
					max = sh.Len()
				}
			}
			if max-min > 1 {
				t.Fatalf("SplitShards(%d,%d) sizes span [%d,%d], want near-equal", c.n, c.parts, min, max)
			}
		}
	}
}

func FuzzSplitShards(f *testing.F) {
	f.Add(0, 0)
	f.Add(1, 1)
	f.Add(100, 7)
	f.Add(3, 64)
	f.Add(-5, 3)
	f.Add(1<<20, 64)
	f.Fuzz(func(t *testing.T, n, parts int) {
		if n > 1<<22 || parts > 1<<22 {
			t.Skip("cap work per input")
		}
		shards := SplitShards(n, parts)
		if n <= 0 || parts <= 0 {
			if shards != nil {
				t.Fatalf("SplitShards(%d,%d) = %v, want nil", n, parts, shards)
			}
			return
		}
		want := parts
		if want > n {
			want = n
		}
		if len(shards) != want {
			t.Fatalf("SplitShards(%d,%d) = %d shards, want %d", n, parts, len(shards), want)
		}
		lo := 0
		for i, sh := range shards {
			if sh.Lo != lo || sh.Len() <= 0 {
				t.Fatalf("shard %d = %+v breaks contiguity at %d", i, sh, lo)
			}
			lo = sh.Hi
		}
		if lo != n {
			t.Fatalf("shards cover [0,%d), want [0,%d)", lo, n)
		}
	})
}

// testSet builds a small D-device set.
func testSet(t *testing.T, d int) *DeviceSet {
	t.Helper()
	s, err := NewDeviceSet(SmallTestDevice(), true, d)
	if err != nil {
		t.Fatalf("NewDeviceSet(%d): %v", d, err)
	}
	return s
}

// doubleOp builds a sharded op computing out[i] = in[i]*2 through the real
// device kernel path (H2D, launch, D2H) so clocks and fault injection engage.
func doubleOp(s *DeviceSet, in, out []int64) ShardOp {
	return ShardOp{
		Name:         "double",
		Items:        len(in),
		BytesPerItem: 8,
		Run: func(devID int, sh Shard) error {
			dev := s.Device(devID)
			dev.CopyToDevice(int64(sh.Len()) * 8)
			k := Kernel{Name: "double", Items: sh.Len(), RegsPerThread: 16, WordOps: 4}
			if _, err := dev.Launch(k, func(i int) {
				out[sh.Lo+i] = in[sh.Lo+i] * 2
			}); err != nil {
				return err
			}
			dev.CopyFromDevice(int64(sh.Len()) * 8)
			return nil
		},
		Host: func(sh Shard) error {
			for i := sh.Lo; i < sh.Hi; i++ {
				out[i] = in[i] * 2
			}
			return nil
		},
	}
}

func seqInput(n int) []int64 {
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(i*i + 3)
	}
	return in
}

func TestDeviceSetValidation(t *testing.T) {
	if _, err := NewDeviceSet(SmallTestDevice(), true, 0); err == nil {
		t.Fatal("0 devices must be rejected")
	}
	if _, err := NewDeviceSet(SmallTestDevice(), true, MaxDevices+1); err == nil {
		t.Fatal("MaxDevices+1 must be rejected")
	}
	s := testSet(t, 3)
	for i := 0; i < 3; i++ {
		want := fmt.Sprintf("dev%d", i)
		if got := s.Device(i).DeviceLabel(); got != want {
			t.Fatalf("device %d label = %q, want %q", i, got, want)
		}
	}
}

func TestDeviceSetRunMatchesSequential(t *testing.T) {
	const n = 37
	in := seqInput(n)
	want := make([]int64, n)
	for i := range want {
		want[i] = in[i] * 2
	}
	for _, d := range []int{1, 2, 4, 8} {
		s := testSet(t, d)
		out := make([]int64, n)
		if err := s.Run(doubleOp(s, in, out)); err != nil {
			t.Fatalf("D=%d: %v", d, err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("D=%d: out[%d] = %d, want %d", d, i, out[i], want[i])
			}
		}
		st := s.Stats()
		if st.Ops != 1 || st.Shards != int64(min(d, n)) {
			t.Fatalf("D=%d: stats = %+v, want 1 op, %d shards", d, st, min(d, n))
		}
		if st.SimParallelTime <= 0 || st.SimSequentialTime < st.SimParallelTime {
			t.Fatalf("D=%d: parallel %v vs sequential %v out of order", d, st.SimParallelTime, st.SimSequentialTime)
		}
	}
}

// TestDeviceSetParallelSpeedup: the same work on D=4 must cost roughly 1/4
// of its sequential span on the merged parallel clock — the cost model's
// occupancy is shard-size-independent, so scaling is near-linear.
func TestDeviceSetParallelSpeedup(t *testing.T) {
	const n = 256
	in := seqInput(n)
	out := make([]int64, n)
	s := testSet(t, 4)
	if err := s.Run(doubleOp(s, in, out)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	ratio := float64(st.SimSequentialTime) / float64(st.SimParallelTime)
	if ratio < 3.5 {
		t.Fatalf("D=4 speedup %.2fx, want ≥3.5x (par %v, seq %v)", ratio, st.SimParallelTime, st.SimSequentialTime)
	}
}

func TestDeviceSetWorkStealingOnKill(t *testing.T) {
	const n = 64
	in := seqInput(n)
	want := make([]int64, n)
	for i := range want {
		want[i] = in[i] * 2
	}
	s := testSet(t, 4)
	// Device 1 dies at its first launch: every attempt aborts.
	s.Device(1).SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 7, KillAtLaunch: 1}))
	out := make([]int64, n)
	if err := s.Run(doubleOp(s, in, out)); err != nil {
		t.Fatalf("Run with dead device: %v", err)
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d (bit-exactness must survive migration)", i, out[i], want[i])
		}
	}
	st := s.Stats()
	if st.Steals == 0 {
		t.Fatalf("expected stolen shards, stats = %+v", st)
	}
	if st.RebalanceSim <= 0 {
		t.Fatalf("rework wave must charge RebalanceSim, stats = %+v", st)
	}
	if st.HostShards != 0 {
		t.Fatalf("healthy peers should absorb the work, not the host: %+v", st)
	}
	// The dead device recorded its failed launch.
	if s.Device(1).Stats().FaultAborts == 0 {
		t.Fatal("device 1 should have recorded the abort")
	}
}

func TestDeviceSetHostFallbackWhenAllDevicesDie(t *testing.T) {
	const n = 16
	in := seqInput(n)
	s := testSet(t, 2)
	for i := 0; i < 2; i++ {
		s.Device(i).SetFaultInjector(NewFaultInjector(FaultConfig{Seed: uint64(i + 1), KillAtLaunch: 1}))
	}
	out := make([]int64, n)
	if err := s.Run(doubleOp(s, in, out)); err != nil {
		t.Fatalf("Run with all devices dead: %v", err)
	}
	for i := range out {
		if out[i] != in[i]*2 {
			t.Fatalf("host fallback out[%d] = %d, want %d", i, out[i], in[i]*2)
		}
	}
	st := s.Stats()
	if st.HostShards == 0 || st.HostSim <= 0 {
		t.Fatalf("expected host-fallback shards with charged time: %+v", st)
	}
	if st.SimParallelTime+st.HostSim != s.SimTime() {
		t.Fatalf("SimTime %v != parallel %v + host %v", s.SimTime(), st.SimParallelTime, st.HostSim)
	}
}

func TestDeviceSetFatalErrorAborts(t *testing.T) {
	s := testSet(t, 2)
	wantErr := errors.New("caller bug")
	err := s.Run(ShardOp{
		Name:  "broken",
		Items: 8,
		Run: func(devID int, sh Shard) error {
			return wantErr
		},
	})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("fatal error must surface, got %v", err)
	}
}

func TestDeviceSetNoHostFnSurfacesLastError(t *testing.T) {
	s := testSet(t, 1)
	s.Device(0).SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 3, KillAtLaunch: 1}))
	in := seqInput(4)
	op := doubleOp(s, in, make([]int64, 4))
	op.Host = nil
	if err := s.Run(op); err == nil {
		t.Fatal("no host fallback and no eligible device must error")
	}
}

// TestSetPipelineNoIdleDoubleCharge is the satellite-2 regression test: when
// every member device runs its own stream pipeline inside one sharded op,
// the set must charge the measured parallel span — the max over the devices'
// overlapped deltas — and never the sum, which would double-charge the idle
// time a device spends waiting for the slowest peer.
func TestSetPipelineNoIdleDoubleCharge(t *testing.T) {
	const n = 48
	s := testSet(t, 4)
	base := make([]time.Duration, 4)
	for i := range base {
		base[i] = s.Device(i).Stats().SimTimeOverlapped()
	}
	op := ShardOp{
		Name:  "piped",
		Items: n,
		Run: func(devID int, sh Shard) error {
			dev := s.Device(devID)
			pipe := dev.NewPipeline(2)
			for lo := sh.Lo; lo < sh.Hi; lo += 4 {
				hi := lo + 4
				if hi > sh.Hi {
					hi = sh.Hi
				}
				pipe.Begin()
				dev.CopyToDevice(int64(hi-lo) * 8)
				k := Kernel{Name: "piped", Items: hi - lo, RegsPerThread: 16, WordOps: 64}
				if _, err := dev.Launch(k, func(int) {}); err != nil {
					pipe.Close()
					return err
				}
				dev.CopyFromDevice(int64(hi-lo) * 8)
				pipe.End()
			}
			pipe.Close()
			return nil
		},
	}
	if err := s.Run(op); err != nil {
		t.Fatal(err)
	}
	var sum, max time.Duration
	for i := range base {
		delta := s.Device(i).Stats().SimTimeOverlapped() - base[i]
		sum += delta
		if delta > max {
			max = delta
		}
	}
	st := s.Stats()
	if st.SimParallelTime != max {
		t.Fatalf("set parallel time %v, want max-over-devices %v", st.SimParallelTime, max)
	}
	if st.SimSequentialTime != sum {
		t.Fatalf("set sequential time %v, want sum-over-devices %v", st.SimSequentialTime, sum)
	}
	if st.SimParallelTime >= sum {
		t.Fatalf("parallel span %v must be strictly below the naive sum %v", st.SimParallelTime, sum)
	}
	// Each device streamed its chunks: the overlapped delta must be below its
	// own sequential stage sum too.
	for i := range base {
		ds := s.Device(i).Stats()
		if ds.SimStreamTime >= ds.SimStreamSeqTime {
			t.Fatalf("dev%d streamed span %v not below sequential %v", i, ds.SimStreamTime, ds.SimStreamSeqTime)
		}
	}
}

func TestDeviceSetP2PMigrationCharged(t *testing.T) {
	const n = 64
	in := seqInput(n)
	run := func(p2p bool) SetStats {
		s := testSet(t, 4)
		if p2p {
			s.SetP2P(5e-6, 25e9)
		}
		s.Device(1).SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 7, KillAtLaunch: 1}))
		out := make([]int64, n)
		if err := s.Run(doubleOp(s, in, out)); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	without := run(false)
	with := run(true)
	if with.Steals != without.Steals {
		t.Fatalf("steals differ with topology: %d vs %d", with.Steals, without.Steals)
	}
	if with.RebalanceSim <= without.RebalanceSim {
		t.Fatalf("p2p migration must add modelled cost: %v vs %v", with.RebalanceSim, without.RebalanceSim)
	}
}

func TestDeviceSetBeginOffline(t *testing.T) {
	const n = 32
	in := seqInput(n)
	s := testSet(t, 2)
	finish := s.BeginOffline()
	out := make([]int64, n)
	if err := s.Run(doubleOp(s, in, out)); err != nil {
		t.Fatal(err)
	}
	if s.SimTime() <= 0 {
		t.Fatal("online clock should have accrued before reclassification")
	}
	moved := finish()
	if moved <= 0 {
		t.Fatal("reclassification should move accrued time")
	}
	if got := s.SimTime(); got != 0 {
		t.Fatalf("online clock after reclassification = %v, want 0", got)
	}
	st := s.Stats()
	if st.SimPrecomputeTime != moved {
		t.Fatalf("set precompute %v, want %v", st.SimPrecomputeTime, moved)
	}
	for i := 0; i < 2; i++ {
		ds := s.Device(i).Stats()
		if ds.SimTime() != 0 || ds.SimPrecomputeTime <= 0 {
			t.Fatalf("dev%d not reclassified: %+v", i, ds)
		}
	}
}

func TestDeviceSetResetStatsPreservesHealth(t *testing.T) {
	s := testSet(t, 2)
	s.Device(1).SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 1, KillAtLaunch: 1}))
	in := seqInput(8)
	if err := s.Run(doubleOp(s, in, make([]int64, 8))); err != nil {
		t.Fatal(err)
	}
	health := s.Device(1).Health()
	if health == DeviceHealthy {
		t.Fatal("device 1 should have degraded")
	}
	s.ResetStats()
	if got := s.Stats(); got != (SetStats{}) {
		t.Fatalf("set stats after reset = %+v", got)
	}
	if s.Device(1).Health() != health {
		t.Fatal("health must survive ResetStats")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
