// Package gpu implements a software model of a CUDA-class GPU: stream
// multiprocessors (SMs) executing warps of threads in blocks, a resource
// manager for block sizes, device memory, and registers, and a calibrated
// cost model for host↔device transfers and kernel execution.
//
// The paper runs its HE kernels on an NVIDIA RTX 3090. No GPU is available
// in this environment, so this package substitutes a simulator that (a)
// really executes kernel bodies concurrently on the host's cores, so the
// measured speedups over the serial CPU path are genuine, and (b) integrates
// the paper's Eq. 10 cost model (transfer time + parallel compute time) on a
// simulated clock, so paper-scale projections and utilization figures keep
// their shape. See DESIGN.md §1 for the substitution argument.
package gpu

import (
	"fmt"
	"time"
)

// Config describes the modelled device.
type Config struct {
	// Name identifies the device model in reports.
	Name string
	// SMs is the number of stream multiprocessors.
	SMs int
	// WarpSize is the number of threads that execute in lock-step.
	WarpSize int
	// MaxThreadsPerSM bounds resident threads per SM.
	MaxThreadsPerSM int
	// MaxWarpsPerSM bounds resident warps per SM.
	MaxWarpsPerSM int
	// RegistersPerSM is the size of each SM's register file (32-bit regs).
	RegistersPerSM int
	// MaxRegistersPerThread is the hardware cap per thread.
	MaxRegistersPerThread int
	// SharedMemPerSM is per-SM shared memory in bytes.
	SharedMemPerSM int
	// GlobalMemBytes is total device memory.
	GlobalMemBytes int64
	// TransferBytesPerSec models the PCIe link (β_transfer⁻¹ in Eq. 10).
	TransferBytesPerSec float64
	// TransferLatencySec is the fixed per-transfer launch cost.
	TransferLatencySec float64
	// WordOpsPerSec is the aggregate 32-bit multiply-add throughput of one
	// fully occupied SM (β_gpu⁻¹ in Eq. 10, per SM).
	WordOpsPerSec float64
	// HostWorkers caps the real goroutines used to execute kernels. Zero
	// means one per host core.
	HostWorkers int
	// KernelDeadline arms a per-launch watchdog: a kernel still running after
	// this long is cancelled and reported as a stall (*KernelError). Zero
	// disables the watchdog. The deadline bounds real host time, so size it
	// for the host, not the modelled device.
	KernelDeadline time.Duration
}

// Validate reports configuration errors; a zero-valued field that has no
// sensible default is an error rather than a silent misconfiguration.
func (c Config) Validate() error {
	switch {
	case c.SMs <= 0:
		return fmt.Errorf("gpu: config needs SMs > 0, got %d", c.SMs)
	case c.WarpSize <= 0:
		return fmt.Errorf("gpu: config needs WarpSize > 0, got %d", c.WarpSize)
	case c.MaxThreadsPerSM <= 0:
		return fmt.Errorf("gpu: config needs MaxThreadsPerSM > 0")
	case c.WarpSize > c.MaxThreadsPerSM:
		// A warp cannot exceed the SM's resident-thread capacity; allowing it
		// would push the one-warp occupancy floor past 1.
		return fmt.Errorf("gpu: config needs WarpSize <= MaxThreadsPerSM, got %d > %d",
			c.WarpSize, c.MaxThreadsPerSM)
	case c.MaxWarpsPerSM <= 0:
		return fmt.Errorf("gpu: config needs MaxWarpsPerSM > 0")
	case c.RegistersPerSM <= 0:
		return fmt.Errorf("gpu: config needs RegistersPerSM > 0")
	case c.SharedMemPerSM <= 0:
		return fmt.Errorf("gpu: config needs SharedMemPerSM > 0")
	case c.GlobalMemBytes <= 0:
		return fmt.Errorf("gpu: config needs GlobalMemBytes > 0")
	case c.TransferBytesPerSec <= 0:
		return fmt.Errorf("gpu: config needs TransferBytesPerSec > 0")
	case c.WordOpsPerSec <= 0:
		return fmt.Errorf("gpu: config needs WordOpsPerSec > 0")
	case c.KernelDeadline < 0:
		return fmt.Errorf("gpu: config needs KernelDeadline >= 0, got %v", c.KernelDeadline)
	case c.HostWorkers < 0:
		return fmt.Errorf("gpu: config needs HostWorkers >= 0, got %d", c.HostWorkers)
	}
	return nil
}

// MaxResidentThreads is the device-wide thread bound (T_max in Eq. 10).
func (c Config) MaxResidentThreads() int { return c.SMs * c.MaxThreadsPerSM }

// RTX3090 returns the configuration of the paper's evaluation GPU
// (82 SMs, 128 threads/warp-scheduler slots, 24 GB, PCIe 4.0 x16).
func RTX3090() Config {
	return Config{
		Name:                  "NVIDIA GeForce RTX 3090 (modelled)",
		SMs:                   82,
		WarpSize:              32,
		MaxThreadsPerSM:       1536,
		MaxWarpsPerSM:         48,
		RegistersPerSM:        65536,
		MaxRegistersPerThread: 255,
		SharedMemPerSM:        100 << 10,
		GlobalMemBytes:        24 << 30,
		TransferBytesPerSec:   24e9, // ~PCIe 4.0 x16 effective
		TransferLatencySec:    10e-6,
		WordOpsPerSec:         18e9, // per-SM 32-bit IMAD throughput
	}
}

// SmallTestDevice returns a tiny configuration for fast unit tests.
func SmallTestDevice() Config {
	return Config{
		Name:                  "test-device",
		SMs:                   4,
		WarpSize:              8,
		MaxThreadsPerSM:       64,
		MaxWarpsPerSM:         8,
		RegistersPerSM:        4096,
		MaxRegistersPerThread: 128,
		SharedMemPerSM:        16 << 10,
		GlobalMemBytes:        1 << 20,
		TransferBytesPerSec:   1e9,
		TransferLatencySec:    1e-6,
		WordOpsPerSec:         1e9,
		HostWorkers:           2,
	}
}
